package storage

import (
	"bytes"
	"testing"

	"harmony/internal/versioning"
	"harmony/internal/wire"
)

func clockv(data string, ts int64, entries ...wire.ClockEntry) wire.Value {
	return wire.Value{Data: []byte(data), Timestamp: ts, Clock: entries}
}

// TestSiblingConvergence applies the same pair of concurrent versions to two
// engines in opposite orders: both must keep the same winner byte-for-byte
// (the anti-entropy convergence requirement) and count one sibling each.
func TestSiblingConvergence(t *testing.T) {
	s1 := clockv("from-a", 7, wire.ClockEntry{Node: "a", Counter: 7})
	s2 := clockv("from-b", 7, wire.ClockEntry{Node: "b", Counter: 7})
	key := []byte("k")

	e1 := NewEngine(Options{Shards: 1})
	e2 := NewEngine(Options{Shards: 1})
	mustApply := func(e *Engine, v wire.Value) bool {
		ok, err := e.Apply(key, v)
		if err != nil {
			t.Fatal(err)
		}
		return ok
	}
	mustApply(e1, s1)
	mustApply(e1, s2)
	mustApply(e2, s2)
	mustApply(e2, s1)

	v1, ok1 := e1.Get(key)
	v2, ok2 := e2.Get(key)
	if !ok1 || !ok2 {
		t.Fatal("value missing after sibling resolution")
	}
	if !bytes.Equal(v1.Data, v2.Data) {
		t.Fatalf("replicas diverged: %q vs %q", v1.Data, v2.Data)
	}
	if e1.Stats().Siblings != 1 || e2.Stats().Siblings != 1 {
		t.Errorf("sibling counters: e1=%d e2=%d, want 1 and 1",
			e1.Stats().Siblings, e2.Stats().Siblings)
	}
}

// TestCausalDescendReplaces pins that vector-clock order overrides nothing
// the timestamp order wouldn't — a descendant always replaces its ancestor,
// an ancestor never replaces a descendant, and replays are no-ops.
func TestCausalDescendReplaces(t *testing.T) {
	e := NewEngine(Options{Shards: 1})
	key := []byte("k")
	base := clockv("v1", 5, wire.ClockEntry{Node: "a", Counter: 5})
	next := clockv("v2", 9,
		wire.ClockEntry{Node: "a", Counter: 5}, wire.ClockEntry{Node: "b", Counter: 9})
	if ok, _ := e.Apply(key, base); !ok {
		t.Fatal("first write rejected")
	}
	if ok, _ := e.Apply(key, next); !ok {
		t.Fatal("descendant rejected")
	}
	if ok, _ := e.Apply(key, base); ok {
		t.Fatal("ancestor replaced descendant")
	}
	if ok, _ := e.Apply(key, next); ok {
		t.Fatal("replay applied twice")
	}
	if v, _ := e.Get(key); string(v.Data) != "v2" {
		t.Fatalf("held %q, want v2", v.Data)
	}
	if e.Stats().Siblings != 0 {
		t.Errorf("causal ordering miscounted as siblings: %d", e.Stats().Siblings)
	}
}

// countingResolver proves the Resolver option is actually threaded through
// Apply for clock-less values.
type countingResolver struct {
	calls int
	lww   versioning.LWW
}

func (c *countingResolver) Resolve(in, cur wire.Value) bool {
	c.calls++
	return c.lww.Resolve(in, cur)
}

func TestResolverOptionThreaded(t *testing.T) {
	r := &countingResolver{}
	e := NewEngine(Options{Shards: 1, Resolver: r})
	key := []byte("k")
	e.Apply(key, wire.Value{Data: []byte("a"), Timestamp: 1})
	e.Apply(key, wire.Value{Data: []byte("b"), Timestamp: 2})
	if r.calls != 1 {
		t.Fatalf("resolver called %d times, want 1 (first write has no current)", r.calls)
	}
}

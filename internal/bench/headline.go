package bench

import (
	"fmt"
	"strings"
	"time"

	"harmony/internal/ycsb"
)

// HeadlineSummary quantifies the paper's §I claims: "Harmony with 20%
// tolerated stale reads reduces the stale data being read by almost 80%
// while adding only minimal latency" (the restrictive tolerance) and
// "improves the throughput of the system by 45% ... compared to the strong
// consistency model" (stated in §V-E for the permissive tolerance, 40% on
// Grid'5000 / 60% on EC2).
type HeadlineSummary struct {
	Scenario string
	Threads  int
	// Tolerance is the restrictive Harmony setting (stale-cut claim);
	// PermissiveTolerance is the setting behind the throughput claim.
	Tolerance           float64
	PermissiveTolerance float64
	// StaleReductionVsEventual is 1 - stale(Harmony)/stale(Eventual).
	StaleReductionVsEventual float64
	// ThroughputGainVsStrong is tput(Harmony)/tput(Strong) - 1.
	ThroughputGainVsStrong float64
	// LatencyOverheadVsEventual is p99(Harmony)/p99(Eventual) - 1.
	LatencyOverheadVsEventual float64
	// LatencyVsStrong is p99(Harmony)/p99(Strong).
	LatencyVsStrong float64
	// Raw numbers backing the ratios.
	HarmonyStale, EventualStale        uint64
	HarmonyTput, StrongTput            float64
	HarmonyP99, EventualP99, StrongP99 time.Duration
}

// Format renders the summary.
func (h HeadlineSummary) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== headline (%s, %d threads) ==\n", h.Scenario, h.Threads)
	fmt.Fprintf(&b, "stale reads (Harmony-%d%%):  harmony=%d eventual=%d -> rate reduction %.0f%% (paper: ~80%%)\n",
		int(h.Tolerance*100+0.5), h.HarmonyStale, h.EventualStale, h.StaleReductionVsEventual*100)
	fmt.Fprintf(&b, "throughput (Harmony-%d%%):   harmony=%.0f strong=%.0f ops/s -> gain %.0f%% (paper: ~45%%)\n",
		int(h.PermissiveTolerance*100+0.5), h.HarmonyTput, h.StrongTput, h.ThroughputGainVsStrong*100)
	fmt.Fprintf(&b, "p99 latency (Harmony-%d%%):  harmony=%v eventual=%v strong=%v -> overhead vs eventual %.0f%%, vs strong %.2fx\n",
		int(h.Tolerance*100+0.5), h.HarmonyP99.Round(10*time.Microsecond), h.EventualP99.Round(10*time.Microsecond),
		h.StrongP99.Round(10*time.Microsecond), h.LatencyOverheadVsEventual*100, h.LatencyVsStrong)
	return b.String()
}

// Headline runs the four policies the claims compare — Harmony at the
// scenario's restrictive and permissive tolerances, eventual, strong — at a
// high thread count and computes the claim ratios: the stale-read cut uses
// the restrictive setting, the throughput gain the permissive one.
func Headline(sc Scenario, opts Options) (HeadlineSummary, error) {
	opts = opts.withDefaults()
	threads := 90
	restrictive := sc.HarmonyTolerances[0]
	permissive := sc.HarmonyTolerances[1]
	policies := []PolicySpec{
		{Kind: PolicyHarmony, Tolerance: restrictive},
		{Kind: PolicyHarmony, Tolerance: permissive},
		{Kind: PolicyEventual},
		{Kind: PolicyStrong},
	}
	var results []RunResult
	for i, pol := range policies {
		res, err := RunPolicy(RunSpec{
			Scenario: sc,
			Policy:   pol,
			Workload: ycsb.WorkloadA(),
			Threads:  threads,
			Ops:      opts.OpsPerPoint,
			Seed:     opts.Seed + int64(i),
		})
		if err != nil {
			return HeadlineSummary{}, err
		}
		opts.progress("headline %-12s tput=%8.0f p99=%8s stale=%d/%d",
			pol.Name(), res.Report.ThroughputOps,
			res.Report.ReadLatency.P99().Round(10*time.Microsecond),
			res.Report.StaleReads, res.Report.ShadowSamples)
		results = append(results, res)
	}
	tight, loose, eventual, strong := results[0].Report, results[1].Report, results[2].Report, results[3].Report
	h := HeadlineSummary{
		Scenario:            sc.Name,
		Threads:             threads,
		Tolerance:           restrictive,
		PermissiveTolerance: permissive,
		HarmonyStale:        tight.StaleReads,
		EventualStale:       eventual.StaleReads,
		HarmonyTput:         loose.ThroughputOps,
		StrongTput:          strong.ThroughputOps,
		HarmonyP99:          tight.ReadLatency.P99(),
		EventualP99:         eventual.ReadLatency.P99(),
		StrongP99:           strong.ReadLatency.P99(),
	}
	// Normalize stale counts by probe volume before comparing.
	tightRate := ratio(tight.StaleReads, tight.ShadowSamples)
	eventualRate := ratio(eventual.StaleReads, eventual.ShadowSamples)
	if eventualRate > 0 {
		h.StaleReductionVsEventual = 1 - tightRate/eventualRate
	}
	if strong.ThroughputOps > 0 {
		h.ThroughputGainVsStrong = loose.ThroughputOps/strong.ThroughputOps - 1
	}
	if eventual.ReadLatency.P99() > 0 {
		h.LatencyOverheadVsEventual = float64(tight.ReadLatency.P99())/float64(eventual.ReadLatency.P99()) - 1
	}
	if strong.ReadLatency.P99() > 0 {
		h.LatencyVsStrong = float64(tight.ReadLatency.P99()) / float64(strong.ReadLatency.P99())
	}
	return h, nil
}

func ratio(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

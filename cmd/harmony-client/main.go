// Command harmony-client talks to a live harmony-server cluster over TCP:
// get/put/delete single keys, watch a node's stats, or run a small
// adaptive-consistency session that monitors the cluster and prints the
// level Harmony would choose.
//
// Examples:
//
//	harmony-client -servers n1=127.0.0.1:7001,n2=127.0.0.1:7002 put user42 hello
//	harmony-client -servers n1=127.0.0.1:7001 -level QUORUM get user42
//	harmony-client -servers n1=127.0.0.1:7001,n2=127.0.0.1:7002 monitor
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"
	"time"

	"harmony/internal/client"
	"harmony/internal/core"
	"harmony/internal/obs"
	"harmony/internal/ring"
	"harmony/internal/sim"
	"harmony/internal/transport"
	"harmony/internal/wire"
)

func parseServers(spec string) (map[ring.NodeID]string, []ring.NodeID, error) {
	peers := map[ring.NodeID]string{}
	var ids []ring.NodeID
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		kv := strings.SplitN(entry, "=", 2)
		if len(kv) != 2 {
			return nil, nil, fmt.Errorf("server entry %q: want id=addr", entry)
		}
		id := ring.NodeID(kv[0])
		peers[id] = kv[1]
		ids = append(ids, id)
	}
	if len(ids) == 0 {
		return nil, nil, fmt.Errorf("no servers given")
	}
	return peers, ids, nil
}

func parseLevel(s string) (wire.ConsistencyLevel, error) {
	switch strings.ToUpper(s) {
	case "ONE":
		return wire.One, nil
	case "TWO":
		return wire.Two, nil
	case "THREE":
		return wire.Three, nil
	case "QUORUM":
		return wire.Quorum, nil
	case "ALL":
		return wire.All, nil
	case "SESSION":
		return wire.Session, nil
	}
	return 0, fmt.Errorf("unknown consistency level %q", s)
}

func main() {
	var (
		servers = flag.String("servers", "", "comma list of id=addr")
		level   = flag.String("level", "ONE", "read consistency level: ONE|SESSION|TWO|THREE|QUORUM|ALL")
		timeout = flag.Duration("timeout", 5*time.Second, "per-operation timeout")
		verify  = flag.Bool("verify", false, "get only: dual-read staleness check")
		streams = flag.Int("streams", 1, "pooled TCP connections per server (pipelining)")
		stats   = flag.Bool("stats", false, "print p50/p99/max latency and per-level op counts after the run")
		count   = flag.Int("count", 1, "repeat the operation this many times (stats sampling)")
	)
	flag.Parse()
	args := flag.Args()
	if *servers == "" || len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: harmony-client -servers id=addr[,...] get|put|del|monitor [key] [value]")
		os.Exit(2)
	}
	peers, ids, err := parseServers(*servers)
	if err != nil {
		log.Fatalf("harmony-client: %v", err)
	}
	lvl, err := parseLevel(*level)
	if err != nil {
		log.Fatalf("harmony-client: %v", err)
	}

	rt := sim.NewRealRuntime()
	defer rt.Stop()
	tcp, err := transport.NewTCPNode(transport.TCPConfig{ID: "harmony-client", Peers: peers, Streams: *streams}, rt, transport.HandlerFunc(func(ring.NodeID, wire.Message) {}))
	if err != nil {
		log.Fatalf("harmony-client: %v", err)
	}
	defer tcp.Close()

	switch args[0] {
	case "get", "put", "del":
		runKV(rt, tcp, ids, lvl, *timeout, *verify, *stats, *count, args)
	case "monitor":
		runMonitor(rt, tcp, ids)
	default:
		log.Fatalf("harmony-client: unknown command %q", args[0])
	}
}

func runKV(rt *sim.RealRuntime, tcp *transport.TCPNode, ids []ring.NodeID, lvl wire.ConsistencyLevel, timeout time.Duration, verify, stats bool, count int, args []string) {
	drv, err := client.New(client.Options{
		ID:           "harmony-client",
		Coordinators: ids,
		Policy:       client.Fixed{Read: lvl, Write: wire.One},
		Timeout:      timeout,
	}, rt, tcp)
	if err != nil {
		log.Fatalf("harmony-client: %v", err)
	}
	// Route replies from the TCP endpoint into the driver. The session wrap
	// makes -level SESSION meaningful across this process's operations: each
	// read carries the token of everything the command already wrote or read.
	rebind(tcp, rt, drv)
	sess := client.NewSession(drv)

	if count < 1 {
		count = 1
	}
	// quiet suppresses per-operation output on repeated runs: with -count
	// the deliverable is the latency distribution, not N result lines.
	quiet := count > 1
	hist := obs.NewOpLevelHist()
	exit := 0
	for i := 0; i < count && exit == 0; i++ {
		exit = runOne(rt, drv, sess, hist, lvl, verify, quiet, args)
	}
	if stats {
		printStats(os.Stderr, hist)
	}
	os.Exit(exit)
}

// runOne executes one get/put/del on the runtime and records its latency
// into hist keyed by op kind and the consistency level the operation
// actually ran at (the achieved level for reads).
func runOne(rt *sim.RealRuntime, drv *client.Driver, sess *client.Session, hist *obs.OpLevelHist, lvl wire.ConsistencyLevel, verify, quiet bool, args []string) int {
	done := make(chan int, 1)
	start := time.Now()
	readDone := func(res client.ReadResult) {
		achieved := res.Achieved
		if achieved == 0 {
			achieved = lvl
		}
		hist.Record(obs.OpRead, achieved, time.Since(start))
		if !quiet {
			printRead(res)
		}
		done <- exitFor(res.Err)
	}
	writeDone := func(res client.WriteResult, what string) {
		hist.Record(obs.OpWrite, wire.One, time.Since(start))
		if !quiet {
			if res.Err != nil {
				fmt.Printf("error: %v\n", res.Err)
			} else {
				fmt.Println(what)
			}
		}
		done <- exitFor(res.Err)
	}
	rt.Post(func() {
		switch args[0] {
		case "get":
			if len(args) < 2 {
				log.Println("get needs a key")
				done <- 2
				return
			}
			if verify {
				drv.VerifyRead([]byte(args[1]), func(res client.ReadResult, stale bool) {
					if !quiet {
						printRead(res)
						fmt.Printf("stale=%v\n", stale)
					}
					hist.Record(obs.OpRead, wire.All, time.Since(start))
					done <- exitFor(res.Err)
				})
				return
			}
			sess.Read([]byte(args[1]), readDone)
		case "put":
			if len(args) < 3 {
				log.Println("put needs a key and a value")
				done <- 2
				return
			}
			sess.Write([]byte(args[1]), []byte(args[2]), func(res client.WriteResult) {
				writeDone(res, fmt.Sprintf("ok ts=%d", res.Ts))
			})
		case "del":
			if len(args) < 2 {
				log.Println("del needs a key")
				done <- 2
				return
			}
			sess.Delete([]byte(args[1]), func(res client.WriteResult) {
				writeDone(res, "deleted")
			})
		}
	})
	return <-done
}

// printStats renders the client-side latency histogram: one line per
// populated op × level cell with its count and p50/p99/max.
func printStats(w io.Writer, hist *obs.OpLevelHist) {
	cells := hist.Snapshot()
	if len(cells) == 0 {
		fmt.Fprintln(w, "stats: no operations recorded")
		return
	}
	var total uint64
	for _, c := range cells {
		total += c.Hist.Count()
	}
	fmt.Fprintf(w, "stats: %d ops\n", total)
	for _, c := range cells {
		h := c.Hist
		fmt.Fprintf(w, "  %-5s %-7s n=%-6d p50=%-10v p99=%-10v max=%v\n",
			c.Op, c.Level, h.Count(), h.Median(), h.P99(), h.Max())
	}
}

// rebind points the TCP endpoint's inbound path at the driver. NewTCPNode
// was constructed with a noop handler because the driver needs the endpoint
// first; the client package correlates responses by ID, so late binding is
// safe.
func rebind(tcp *transport.TCPNode, rt *sim.RealRuntime, h transport.Handler) {
	tcp.SetHandler(h)
}

func printRead(res client.ReadResult) {
	switch {
	case res.Err != nil:
		fmt.Printf("error: %v\n", res.Err)
	case !res.Found:
		fmt.Println("(not found)")
	default:
		fmt.Printf("%s (ts=%d, level=%s)\n", res.Value, res.Ts, res.Achieved)
	}
}

func exitFor(err error) int {
	if err != nil {
		return 1
	}
	return 0
}

func runMonitor(rt *sim.RealRuntime, tcp *transport.TCPNode, ids []ring.NodeID) {
	ctl := core.NewController(core.ControllerConfig{
		Policy: core.Policy{Name: "observer", ToleratedStaleRate: 0.2},
		N:      len(ids),
		OnDecision: func(d core.Decision) {
			fmt.Printf("%s estimate=%.3f Xn=%d level=%s (%s)\n",
				d.At.Format("15:04:05"), d.Estimate, d.Xn, d.Level, d.Model)
		},
	})
	mon := core.NewMonitor(core.MonitorConfig{
		ID:             "harmony-client",
		Nodes:          ids,
		Interval:       time.Second,
		ReplicaSetSize: len(ids),
		OnObservation:  ctl.Observe,
	}, rt, tcp)
	tcp.SetHandler(mon)
	mon.Start()
	fmt.Println("monitoring; ctrl-c to stop")
	select {}
}

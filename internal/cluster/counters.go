package cluster

import (
	"sync/atomic"

	"harmony/internal/wire"
)

// nodeCounters are the node's live per-operation tallies as lock-free
// atomics. The node used to guard a Metrics struct with a mutex, which put
// one lock acquisition (and a closure allocation) on every counter bump of
// every coordinated operation; counters are now striped per field and the
// per-group slices hang off one atomically swapped pointer so a grouping
// epoch change re-baselines them without a lock.
//
// Writers are the node's runtime; readers (Snapshot, the monitor poll path,
// experiment drivers) may run on any goroutine. A snapshot loads each field
// independently — counters are monotonic, so a concurrent snapshot can skew
// by at most the operations in flight during the loads, which the
// delta-based monitor math absorbs. Nothing tears: every field is a single
// atomic word.
type nodeCounters struct {
	reads           atomic.Uint64
	writes          atomic.Uint64
	replicaOps      atomic.Uint64
	bytesRead       atomic.Uint64
	bytesWritten    atomic.Uint64
	repairsSent     atomic.Uint64
	hintsQueued     atomic.Uint64
	hintsReplayed   atomic.Uint64
	hintsDropped    atomic.Uint64
	readTimeouts    atomic.Uint64
	writeTimeouts   atomic.Uint64
	unavailable     atomic.Uint64
	overloaded      atomic.Uint64
	repairRows      atomic.Uint64
	repairAgeMs     atomic.Uint64
	shadowSamples   atomic.Uint64
	shadowStale     atomic.Uint64
	sessionUpgrades atomic.Uint64
	sessionRepolls  atomic.Uint64
	levelUse        [8]atomic.Uint64
	hintDepth       atomic.Int64 // live hint-queue depth (mirrors hintCount)
	groups          atomic.Pointer[groupTallies]
}

// groupTallies are the per-key-group counters of one grouping epoch. A
// GroupUpdate installs a fresh zeroed instance (the old epoch's groups no
// longer exist), so late increments against the old epoch land in a retired
// object instead of corrupting the new epoch's groups — the same exactly-
// once re-baseline the mutex-guarded slices provided, without the lock.
type groupTallies struct {
	epoch         uint64
	reads         []atomic.Uint64
	writes        []atomic.Uint64
	bytesWritten  []atomic.Uint64
	shadowSamples []atomic.Uint64
	shadowStale   []atomic.Uint64
	repairRows    []atomic.Uint64
	repairAgeMs   []atomic.Uint64
	// levelUse is the per-group consistency-level tally, flattened as
	// group*8 + level (the observability layer's "which level did each
	// group's traffic actually run at" gauge).
	levelUse []atomic.Uint64
}

func newGroupTallies(epoch uint64, groups int) *groupTallies {
	return &groupTallies{
		epoch:         epoch,
		reads:         make([]atomic.Uint64, groups),
		writes:        make([]atomic.Uint64, groups),
		bytesWritten:  make([]atomic.Uint64, groups),
		shadowSamples: make([]atomic.Uint64, groups),
		shadowStale:   make([]atomic.Uint64, groups),
		repairRows:    make([]atomic.Uint64, groups),
		repairAgeMs:   make([]atomic.Uint64, groups),
		levelUse:      make([]atomic.Uint64, groups*8),
	}
}

// bumpLevelUse tallies one coordinated operation for (group, level). The
// caller has already range-checked level against [1, 8).
func (t *groupTallies) bumpLevelUse(group int, level wire.ConsistencyLevel) {
	if idx := group*8 + int(level); idx >= 0 && idx < len(t.levelUse) {
		t.levelUse[idx].Add(1)
	}
}

func loadCounters(s []atomic.Uint64) []uint64 {
	out := make([]uint64, len(s))
	for i := range s {
		out[i] = s[i].Load()
	}
	return out
}

// snapshot assembles a plain Metrics from the live atomics.
func (c *nodeCounters) snapshot() Metrics {
	m := Metrics{
		Reads:           c.reads.Load(),
		Writes:          c.writes.Load(),
		ReplicaOps:      c.replicaOps.Load(),
		BytesRead:       c.bytesRead.Load(),
		BytesWritten:    c.bytesWritten.Load(),
		RepairsSent:     c.repairsSent.Load(),
		HintsQueued:     c.hintsQueued.Load(),
		HintsReplayed:   c.hintsReplayed.Load(),
		HintsDropped:    c.hintsDropped.Load(),
		ReadTimeouts:    c.readTimeouts.Load(),
		WriteTimeouts:   c.writeTimeouts.Load(),
		Unavailable:     c.unavailable.Load(),
		Overloaded:      c.overloaded.Load(),
		RepairRows:      c.repairRows.Load(),
		RepairAgeMs:     c.repairAgeMs.Load(),
		ShadowSamples:   c.shadowSamples.Load(),
		ShadowStale:     c.shadowStale.Load(),
		SessionUpgrades: c.sessionUpgrades.Load(),
		SessionRepolls:  c.sessionRepolls.Load(),
	}
	for i := range c.levelUse {
		m.LevelUse[i] = c.levelUse[i].Load()
	}
	t := c.groups.Load()
	m.GroupEpoch = t.epoch
	if groups := len(t.reads); groups > 0 && len(t.levelUse) == groups*8 {
		m.GroupLevelUse = make([][8]uint64, groups)
		for g := 0; g < groups; g++ {
			for l := 0; l < 8; l++ {
				m.GroupLevelUse[g][l] = t.levelUse[g*8+l].Load()
			}
		}
	}
	m.GroupReads = loadCounters(t.reads)
	m.GroupWrites = loadCounters(t.writes)
	m.GroupBytesWritten = loadCounters(t.bytesWritten)
	m.GroupShadowSamples = loadCounters(t.shadowSamples)
	m.GroupShadowStale = loadCounters(t.shadowStale)
	m.GroupRepairRows = loadCounters(t.repairRows)
	m.GroupRepairAgeMs = loadCounters(t.repairAgeMs)
	return m
}

package gossip

import (
	"fmt"
	"testing"
	"time"

	"harmony/internal/ring"
	"harmony/internal/sim"
	"harmony/internal/simnet"
	"harmony/internal/transport"
)

// gossipCluster wires n gossipers over a simulated LAN.
func gossipCluster(t *testing.T, s *sim.Sim, n int) (*transport.Bus, *simnet.Net, []*Gossiper, []ring.NodeID) {
	t.Helper()
	var infos []ring.NodeInfo
	var ids []ring.NodeID
	for i := 0; i < n; i++ {
		id := ring.NodeID(fmt.Sprintf("g%02d", i))
		ids = append(ids, id)
		infos = append(infos, ring.NodeInfo{ID: id, DC: "dc1", Rack: fmt.Sprintf("r%d", i%3)})
	}
	topo, err := ring.NewTopology(infos)
	if err != nil {
		t.Fatal(err)
	}
	net := simnet.New(topo, simnet.UniformProfile(500*time.Microsecond), s.NewStream())
	bus := transport.NewBus(net)
	var gs []*Gossiper
	for i, id := range ids {
		g := New(Config{ID: id, Peers: ids, Interval: time.Second, Seed: int64(i)}, s, bus)
		bus.Register(id, s, g)
		g.Start()
		gs = append(gs, g)
	}
	return bus, net, gs, ids
}

func TestGossipConvergesMembership(t *testing.T) {
	s := sim.New(11)
	_, _, gs, ids := gossipCluster(t, s, 12)
	s.RunFor(15 * time.Second)
	for i, g := range gs {
		if got := len(g.Members()); got != len(ids) {
			t.Fatalf("gossiper %d knows %d members, want %d", i, got, len(ids))
		}
	}
}

func TestGossipAllAliveUnderNormalOperation(t *testing.T) {
	s := sim.New(12)
	_, _, gs, ids := gossipCluster(t, s, 8)
	s.RunFor(30 * time.Second)
	for _, g := range gs {
		for _, id := range ids {
			if !g.Alive(id) {
				t.Fatalf("%v convicted healthy peer %v (phi=%v)", g.cfg.ID, id, g.Phi(id))
			}
		}
	}
}

func TestGossipDetectsDeadNode(t *testing.T) {
	s := sim.New(13)
	_, net, gs, ids := gossipCluster(t, s, 8)
	s.RunFor(20 * time.Second) // warm up arrival windows
	victim := ids[3]
	net.Isolate(victim, ids)
	s.RunFor(60 * time.Second)
	convicted := 0
	for i, g := range gs {
		if ids[i] == victim {
			continue
		}
		if !g.Alive(victim) {
			convicted++
		}
	}
	if convicted < 6 {
		t.Fatalf("only %d/7 peers convicted the dead node", convicted)
	}
	// Unrelated peers stay alive.
	for i, g := range gs {
		if ids[i] == victim {
			continue
		}
		for _, id := range ids {
			if id == victim || id == ids[i] {
				continue
			}
			if !g.Alive(id) {
				t.Fatalf("%v wrongly convicted %v", ids[i], id)
			}
		}
	}
}

func TestGossipRecoversAfterHeal(t *testing.T) {
	s := sim.New(14)
	_, net, gs, ids := gossipCluster(t, s, 6)
	s.RunFor(20 * time.Second)
	victim := ids[0]
	net.Isolate(victim, ids)
	s.RunFor(60 * time.Second)
	if gs[1].Alive(victim) {
		t.Fatal("victim not convicted while isolated")
	}
	net.Rejoin(victim, ids)
	s.RunFor(30 * time.Second)
	if !gs[1].Alive(victim) {
		t.Fatalf("victim not resurrected after heal (phi=%v)", gs[1].Phi(victim))
	}
}

func TestGossipTransitiveSpread(t *testing.T) {
	// A node that can only talk to one peer still learns the full view.
	s := sim.New(15)
	_, net, gs, ids := gossipCluster(t, s, 10)
	// Cut node 0 off from everyone except node 1.
	for _, id := range ids[2:] {
		net.Partition(ids[0], id)
	}
	s.RunFor(30 * time.Second)
	if got := len(gs[0].Members()); got != len(ids) {
		t.Fatalf("partially-connected node sees %d members, want %d", got, len(ids))
	}
}

func TestPhiGrowsWithSilence(t *testing.T) {
	s := sim.New(16)
	_, net, gs, ids := gossipCluster(t, s, 4)
	s.RunFor(20 * time.Second)
	victim := ids[2]
	phiBefore := gs[0].Phi(victim)
	net.Isolate(victim, ids)
	s.RunFor(10 * time.Second)
	phi10 := gs[0].Phi(victim)
	s.RunFor(20 * time.Second)
	phi30 := gs[0].Phi(victim)
	if !(phiBefore < phi10 && phi10 < phi30) {
		t.Fatalf("phi not monotone under silence: %v, %v, %v", phiBefore, phi10, phi30)
	}
}

func TestUnknownPeerOptimisticallyAlive(t *testing.T) {
	s := sim.New(17)
	g := New(Config{ID: "solo", Peers: []ring.NodeID{"solo", "other"}}, s, transport.NewLoopback())
	if !g.Alive("other") {
		t.Fatal("unknown peer not optimistically alive")
	}
	if !g.Alive("solo") {
		t.Fatal("self not alive")
	}
}

func TestGossipStopHaltsRounds(t *testing.T) {
	s := sim.New(18)
	_, _, gs, _ := gossipCluster(t, s, 3)
	s.RunFor(5 * time.Second)
	r := gs[0].Rounds()
	gs[0].Stop()
	s.RunFor(10 * time.Second)
	if gs[0].Rounds() != r {
		t.Fatalf("rounds advanced after Stop: %d -> %d", r, gs[0].Rounds())
	}
}

func TestArrivalWindowStats(t *testing.T) {
	w := &arrivalWindow{}
	t0 := time.Unix(0, 0)
	for i := 1; i <= 50; i++ {
		w.observe(t0.Add(time.Duration(i) * time.Second))
	}
	if m := w.mean(); m < 0.99 || m > 1.01 {
		t.Fatalf("mean interval = %v, want ~1s", m)
	}
	// After 10 missing heartbeats, phi should be well above the threshold.
	phi := w.phi(t0.Add(60 * time.Second))
	if phi < 4 {
		t.Fatalf("phi after 10s silence = %v, want > 4", phi)
	}
	// Immediately after a heartbeat, phi is ~0.
	if p := w.phi(t0.Add(50*time.Second + time.Millisecond)); p > 0.1 {
		t.Fatalf("phi right after heartbeat = %v", p)
	}
}

// TestOnRecoverFiresOncePerTransition verifies the anti-entropy trigger: a
// convicted peer that starts heartbeating again fires OnRecover exactly
// once, and a healthy peer never fires it.
func TestOnRecoverFiresOncePerTransition(t *testing.T) {
	s := sim.New(15)
	var infos []ring.NodeInfo
	var ids []ring.NodeID
	for i := 0; i < 6; i++ {
		id := ring.NodeID(fmt.Sprintf("g%02d", i))
		ids = append(ids, id)
		infos = append(infos, ring.NodeInfo{ID: id, DC: "dc1", Rack: "r1"})
	}
	topo, err := ring.NewTopology(infos)
	if err != nil {
		t.Fatal(err)
	}
	net := simnet.New(topo, simnet.UniformProfile(500*time.Microsecond), s.NewStream())
	bus := transport.NewBus(net)
	recovered := map[ring.NodeID]int{}
	var gs []*Gossiper
	for i, id := range ids {
		cfg := Config{ID: id, Peers: ids, Interval: time.Second, Seed: int64(i)}
		if i == 1 {
			cfg.OnRecover = func(peer ring.NodeID) { recovered[peer]++ }
		}
		g := New(cfg, s, bus)
		bus.Register(id, s, g)
		g.Start()
		gs = append(gs, g)
	}
	s.RunFor(20 * time.Second)
	if len(recovered) != 0 {
		t.Fatalf("OnRecover fired with no failures: %v", recovered)
	}
	victim := ids[0]
	net.Isolate(victim, ids)
	s.RunFor(60 * time.Second)
	if gs[1].Alive(victim) {
		t.Fatal("victim not convicted while isolated")
	}
	net.Rejoin(victim, ids)
	s.RunFor(30 * time.Second)
	if got := recovered[victim]; got != 1 {
		t.Fatalf("OnRecover fired %d times for the recovered victim, want 1", got)
	}
	for id, n := range recovered {
		if id != victim {
			t.Fatalf("OnRecover fired %d times for healthy peer %v", n, id)
		}
	}
}

package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"harmony/internal/client"
	"harmony/internal/ring"
	"harmony/internal/sim"
	"harmony/internal/transport"
)

// reservePort grabs an ephemeral loopback port and frees it for the server
// to bind — the same trick the live bench uses to pre-agree addresses.
func reservePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func httpGet(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

// TestServerAdminEndpoint drives traffic through a real single-node server
// and checks the admin surfaces reflect it: /metrics exposes the cluster,
// storage, transport and latency families; /status round-trips as JSON with
// live counters; /trace answers well-formed.
func TestServerAdminEndpoint(t *testing.T) {
	addr := reservePort(t)
	s, err := New(Config{
		ID:        "n1",
		Listen:    addr,
		Members:   []Member{{ID: "n1", Addr: addr}},
		RF:        1,
		AdminAddr: "127.0.0.1:0",
		LogLevel:  "error",
		Logf:      func(string, ...any) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.AdminAddr() == "" {
		t.Fatal("admin endpoint not started")
	}

	rt := sim.NewRealRuntime()
	defer rt.Stop()
	tcp, err := transport.NewTCPNode(transport.TCPConfig{
		ID:    "cli",
		Peers: map[ring.NodeID]string{"n1": addr},
		Logf:  func(string, ...any) {},
	}, rt, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer tcp.Close()
	drv, err := client.New(client.Options{
		ID:           "cli",
		Coordinators: []ring.NodeID{"n1"},
		Timeout:      2 * time.Second,
	}, rt, tcp)
	if err != nil {
		t.Fatal(err)
	}
	tcp.SetHandler(drv)

	const ops = 16
	for i := 0; i < ops; i++ {
		key := []byte(fmt.Sprintf("user%d", i))
		done := make(chan error, 1)
		rt.Post(func() {
			drv.Write(key, []byte("v"), func(w client.WriteResult) { done <- w.Err })
		})
		if err := <-done; err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		rt.Post(func() {
			drv.Read(key, func(r client.ReadResult) { done <- r.Err })
		})
		if err := <-done; err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
	}

	base := "http://" + s.AdminAddr()
	code, body := httpGet(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	for _, want := range []string{
		`harmony_writes_total{node="n1"} `,
		`harmony_reads_total{node="n1"} `,
		"# TYPE harmony_storage_live_keys gauge",
		"# TYPE harmony_transport_frames_received_total counter",
		`harmony_op_latency_seconds_count{node="n1",op="read",level="ONE"} `,
		`harmony_op_latency_seconds_count{node="n1",op="write",level="ONE"} `,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	code, body = httpGet(t, base+"/status")
	if code != http.StatusOK {
		t.Fatalf("/status status %d", code)
	}
	var st Status
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("/status decode: %v\n%s", err, body)
	}
	if st.Node != "n1" {
		t.Errorf("status node = %q", st.Node)
	}
	if st.Metrics.Writes < ops || st.Metrics.Reads < ops {
		t.Errorf("status counters reads=%d writes=%d, want >= %d each", st.Metrics.Reads, st.Metrics.Writes, ops)
	}
	if st.Storage.LiveKeys < ops {
		t.Errorf("status live keys = %d, want >= %d", st.Storage.LiveKeys, ops)
	}
	if len(st.Groups) == 0 || st.Groups[0].Level != "ONE" {
		t.Errorf("status groups = %+v, want group 0 served at ONE", st.Groups)
	}

	if code, _ := httpGet(t, base+"/trace"); code != http.StatusOK {
		t.Fatalf("/trace status %d", code)
	}
	if code, _ := httpGet(t, base+"/debug/vars"); code != http.StatusOK {
		t.Fatalf("/debug/vars status %d", code)
	}

	// Counters must be monotone across scrapes: drive more traffic and
	// re-parse the same series.
	_, body = httpGet(t, base+"/metrics")
	before := promValue(t, body, `harmony_writes_total{node="n1"}`)
	done := make(chan error, 1)
	rt.Post(func() {
		drv.Write([]byte("monotone"), []byte("v"), func(w client.WriteResult) { done <- w.Err })
	})
	if err := <-done; err != nil {
		t.Fatalf("monotone write: %v", err)
	}
	_, body2 := httpGet(t, base+"/metrics")
	after := promValue(t, body2, `harmony_writes_total{node="n1"}`)
	if after <= before {
		t.Errorf("harmony_writes_total not monotone: %v then %v", before, after)
	}
}

// promValue parses one series' value out of a /metrics exposition body.
func promValue(t *testing.T, body, series string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, series+" ") {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(line[len(series):]), 64)
		if err != nil {
			t.Fatalf("series %q: bad value in %q: %v", series, line, err)
		}
		return v
	}
	t.Fatalf("series %q not found in /metrics body", series)
	return 0
}

// TestServerRejectsBadLogLevel pins the -log-level validation path.
func TestServerRejectsBadLogLevel(t *testing.T) {
	addr := reservePort(t)
	_, err := New(Config{
		ID:       "n1",
		Listen:   addr,
		Members:  []Member{{ID: "n1", Addr: addr}},
		RF:       1,
		LogLevel: "loud",
	})
	if err == nil || !strings.Contains(err.Error(), "log level") {
		t.Fatalf("err = %v, want log level error", err)
	}
}

package storage

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"harmony/internal/wire"
)

func val(data string, ts int64) wire.Value {
	return wire.Value{Data: []byte(data), Timestamp: ts}
}

func TestApplyGetRoundTrip(t *testing.T) {
	e := NewEngine(Options{})
	applied, err := e.Apply([]byte("k"), val("v1", 10))
	if err != nil || !applied {
		t.Fatalf("apply: %v %v", applied, err)
	}
	got, ok := e.Get([]byte("k"))
	if !ok || string(got.Data) != "v1" || got.Timestamp != 10 {
		t.Fatalf("get = %+v ok=%v", got, ok)
	}
	if _, ok := e.Get([]byte("missing")); ok {
		t.Fatal("missing key found")
	}
}

func TestApplyEmptyKey(t *testing.T) {
	e := NewEngine(Options{})
	if _, err := e.Apply(nil, val("v", 1)); err == nil {
		t.Fatal("empty key accepted")
	}
}

func TestLastWriterWins(t *testing.T) {
	e := NewEngine(Options{})
	e.Apply([]byte("k"), val("new", 20))
	applied, _ := e.Apply([]byte("k"), val("old", 10))
	if applied {
		t.Fatal("older write applied over newer")
	}
	got, _ := e.Get([]byte("k"))
	if string(got.Data) != "new" {
		t.Fatalf("got %q, want new", got.Data)
	}
	// Equal timestamps: existing value wins (stable merges).
	applied, _ = e.Apply([]byte("k"), val("tie", 20))
	if applied {
		t.Fatal("tie write applied")
	}
}

func TestTombstone(t *testing.T) {
	e := NewEngine(Options{})
	e.Apply([]byte("k"), val("v", 10))
	e.Apply([]byte("k"), wire.Value{Timestamp: 20, Tombstone: true})
	got, ok := e.Get([]byte("k"))
	if !ok || !got.Tombstone {
		t.Fatalf("tombstone not visible: %+v ok=%v", got, ok)
	}
	// A write newer than the tombstone resurrects the key.
	e.Apply([]byte("k"), val("v2", 30))
	got, _ = e.Get([]byte("k"))
	if got.Tombstone || string(got.Data) != "v2" {
		t.Fatalf("resurrect failed: %+v", got)
	}
}

func TestFlushAndReadAcrossTables(t *testing.T) {
	// Shards:1 keeps the exact flush/table counts host-independent (with
	// auto-striping the keys spread over GOMAXPROCS-dependent shards).
	e := NewEngine(Options{Shards: 1})
	e.Apply([]byte("a"), val("a1", 1))
	e.Flush()
	e.Apply([]byte("b"), val("b1", 2))
	e.Flush()
	e.Apply([]byte("a"), val("a2", 3)) // newer version in memtable
	for _, tc := range []struct{ k, want string }{{"a", "a2"}, {"b", "b1"}} {
		got, ok := e.Get([]byte(tc.k))
		if !ok || string(got.Data) != tc.want {
			t.Fatalf("Get(%s) = %q ok=%v, want %q", tc.k, got.Data, ok, tc.want)
		}
	}
	st := e.Stats()
	if st.FlushedTables != 2 || st.Flushes != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestOldVersionInFlushedTableLoses(t *testing.T) {
	e := NewEngine(Options{})
	e.Apply([]byte("k"), val("new", 100))
	e.Flush()
	// An older remote version arriving later (e.g. via repair) must lose
	// even though the newer one lives in a flushed table.
	applied, _ := e.Apply([]byte("k"), val("old", 50))
	if applied {
		t.Fatal("older version applied over flushed newer version")
	}
	got, _ := e.Get([]byte("k"))
	if string(got.Data) != "new" {
		t.Fatalf("got %q", got.Data)
	}
}

func TestAutoFlushAndCompaction(t *testing.T) {
	e := NewEngine(Options{Shards: 1, FlushThresholdBytes: 64, MaxFlushedTables: 2})
	for i := 0; i < 100; i++ {
		e.Apply([]byte(fmt.Sprintf("key-%03d", i)), val("0123456789abcdef", int64(i+1)))
	}
	st := e.Stats()
	if st.Flushes == 0 {
		t.Fatal("no automatic flushes at tiny threshold")
	}
	if st.Compactions == 0 {
		t.Fatal("no compactions with MaxFlushedTables=2")
	}
	if st.FlushedTables > 3 {
		t.Fatalf("tables grew unboundedly: %+v", st)
	}
	// All data still readable post-compaction.
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("key-%03d", i)
		if _, ok := e.Get([]byte(k)); !ok {
			t.Fatalf("key %s lost after compaction", k)
		}
	}
}

func TestCompactKeepsNewest(t *testing.T) {
	e := NewEngine(Options{Shards: 1})
	e.Apply([]byte("k"), val("v1", 1))
	e.Flush()
	e.Apply([]byte("k"), val("v2", 2))
	e.Flush()
	e.Apply([]byte("k"), val("v3", 3))
	e.Flush()
	e.Compact()
	got, ok := e.Get([]byte("k"))
	if !ok || string(got.Data) != "v3" {
		t.Fatalf("after compact got %q ok=%v", got.Data, ok)
	}
	if st := e.Stats(); st.FlushedTables != 1 {
		t.Fatalf("tables = %d, want 1", st.FlushedTables)
	}
}

func TestScan(t *testing.T) {
	e := NewEngine(Options{})
	for i := 0; i < 10; i++ {
		e.Apply([]byte(fmt.Sprintf("k%d", i)), val(fmt.Sprintf("v%d", i), int64(i+1)))
	}
	e.Apply([]byte("k3"), wire.Value{Timestamp: 100, Tombstone: true})
	e.Flush()
	e.Apply([]byte("k5"), val("v5-new", 200))

	var keys []string
	e.Scan([]byte("k2"), []byte("k7"), func(k []byte, v wire.Value) bool {
		keys = append(keys, string(k))
		if string(k) == "k5" && string(v.Data) != "v5-new" {
			t.Fatalf("scan returned stale k5: %q", v.Data)
		}
		return true
	})
	want := []string{"k2", "k4", "k5", "k6"} // k3 tombstoned, k7 excluded
	if len(keys) != len(want) {
		t.Fatalf("scan keys = %v, want %v", keys, want)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("scan keys = %v, want %v", keys, want)
		}
	}
}

// TestScanMergeMatchesModel pits the k-way merge scan against a naive
// model over random write/flush/tombstone histories, including versions of
// the same key shadowed across multiple flushed tables and arbitrary
// bounds.
func TestScanMergeMatchesModel(t *testing.T) {
	if err := quick.Check(func(seed int64, opsRaw uint8, loRaw, hiRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine(Options{MaxFlushedTables: 3})
		model := map[string]wire.Value{}
		ops := int(opsRaw)%120 + 10
		ts := int64(0)
		for i := 0; i < ops; i++ {
			switch rng.Intn(10) {
			case 9:
				e.Flush()
			default:
				ts++
				k := fmt.Sprintf("k%02d", rng.Intn(25))
				v := wire.Value{Data: []byte(fmt.Sprintf("v%d", ts)), Timestamp: ts, Tombstone: rng.Intn(8) == 0}
				e.Apply([]byte(k), v)
				model[k] = v
			}
		}
		var start, end []byte
		if loRaw%4 != 0 {
			start = []byte(fmt.Sprintf("k%02d", int(loRaw)%25))
		}
		if hiRaw%4 != 0 {
			end = []byte(fmt.Sprintf("k%02d", int(hiRaw)%25))
		}
		// Model answer: live, in-bounds keys in order.
		var want []string
		for k, v := range model {
			if v.Tombstone {
				continue
			}
			if start != nil && k < string(start) {
				continue
			}
			if end != nil && k >= string(end) {
				continue
			}
			want = append(want, k)
		}
		sort.Strings(want)
		var got []string
		e.Scan(start, end, func(k []byte, v wire.Value) bool {
			got = append(got, string(k))
			if string(v.Data) != string(model[string(k)].Data) {
				t.Errorf("seed %d: key %s has value %q, want %q", seed, k, v.Data, model[string(k)].Data)
				return false
			}
			return true
		})
		if len(got) != len(want) {
			t.Errorf("seed %d: scan keys %v, want %v", seed, got, want)
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("seed %d: scan keys %v, want %v", seed, got, want)
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestScanEarlyStop(t *testing.T) {
	e := NewEngine(Options{})
	for i := 0; i < 10; i++ {
		e.Apply([]byte(fmt.Sprintf("k%d", i)), val("v", int64(i+1)))
	}
	n := 0
	e.Scan(nil, nil, func([]byte, wire.Value) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Fatalf("scan visited %d, want 3", n)
	}
}

func TestConcurrentReadWrite(t *testing.T) {
	e := NewEngine(Options{FlushThresholdBytes: 1 << 10})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 2000; i++ {
				k := []byte(fmt.Sprintf("k%d", r.Intn(100)))
				if r.Intn(2) == 0 {
					e.Apply(k, val("v", int64(i)))
				} else {
					e.Get(k)
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestLWWProperty(t *testing.T) {
	// Applying any permutation of timestamped versions yields the max-ts one.
	if err := quick.Check(func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		count := int(n%20) + 1
		e := NewEngine(Options{FlushThresholdBytes: 32}) // force frequent flushes
		maxTS := int64(-1)
		for i := 0; i < count; i++ {
			ts := int64(r.Intn(1000)) + 1
			e.Apply([]byte("k"), val(fmt.Sprintf("v%d", ts), ts))
			if ts > maxTS {
				maxTS = ts
			}
		}
		got, ok := e.Get([]byte("k"))
		return ok && got.Timestamp == maxTS
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestFileCommitLogReplay(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "commit.log")
	log, err := OpenFileCommitLog(path)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(Options{CommitLog: log})
	for i := 0; i < 50; i++ {
		if _, err := e.Apply([]byte(fmt.Sprintf("k%d", i%10)), val(fmt.Sprintf("v%d", i), int64(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}

	// Recover into a fresh engine.
	e2 := NewEngine(Options{})
	if err := Replay(path, func(k []byte, v wire.Value) error {
		_, err := e2.Apply(k, v)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		k := []byte(fmt.Sprintf("k%d", i))
		want, ok1 := e.Get(k)
		got, ok2 := e2.Get(k)
		if ok1 != ok2 || string(want.Data) != string(got.Data) || want.Timestamp != got.Timestamp {
			t.Fatalf("replayed %s = %+v, want %+v", k, got, want)
		}
	}
}

func TestReplayMissingFile(t *testing.T) {
	if err := Replay(filepath.Join(t.TempDir(), "nope.log"), func([]byte, wire.Value) error {
		t.Fatal("callback on missing file")
		return nil
	}); err != nil {
		t.Fatalf("missing file should be a clean no-op: %v", err)
	}
}

func TestStatsLiveKeys(t *testing.T) {
	e := NewEngine(Options{})
	e.Apply([]byte("a"), val("1", 1))
	e.Apply([]byte("b"), val("2", 2))
	e.Flush()
	e.Apply([]byte("a"), val("3", 3)) // same key again in memtable
	st := e.Stats()
	if st.LiveKeys != 2 {
		t.Fatalf("live keys = %d, want 2", st.LiveKeys)
	}
	if st.Writes != 3 {
		t.Fatalf("writes = %d, want 3", st.Writes)
	}
}

// The engine benchmarks (Apply/Get at 8 goroutines, Scan) live in
// internal/bench/micro — one set of bodies serves `go test -bench`, the
// tracked out/micro.json baseline, and cmd/bench-micro.

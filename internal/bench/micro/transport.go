package micro

import (
	"testing"

	"harmony/internal/ring"
	"harmony/internal/sim"
	"harmony/internal/transport"
	"harmony/internal/wire"
)

// transportPair builds a client/server TCP endpoint pair over loopback.
// Only the server listens; the client dials and replies come back over the
// accepted connections, the same path harmony-client and the live bench
// use. Handlers are installed after construction (SetHandler) because the
// server's echo handler needs the server node to reply through.
func transportPair(b *testing.B, streams int, noBatch bool) (cli, srv *transport.TCPNode) {
	b.Helper()
	rtC, rtS := sim.NewRealRuntime(), sim.NewRealRuntime()
	noop := transport.HandlerFunc(func(ring.NodeID, wire.Message) {})
	silent := func(string, ...any) {}
	srv, err := transport.NewTCPNode(transport.TCPConfig{
		ID: "micro-srv", Listen: "127.0.0.1:0", Streams: streams, NoBatch: noBatch, Logf: silent,
	}, rtS, noop)
	if err != nil {
		b.Fatal(err)
	}
	cli, err = transport.NewTCPNode(transport.TCPConfig{
		ID: "micro-cli", Streams: streams, NoBatch: noBatch, Logf: silent,
	}, rtC, noop)
	if err != nil {
		srv.Close()
		b.Fatal(err)
	}
	cli.AddPeer("micro-srv", srv.Addr().String())
	b.Cleanup(func() {
		cli.Close()
		srv.Close()
		rtC.Stop()
		rtS.Stop()
	})
	return cli, srv
}

func echoPings(srv *transport.TCPNode) {
	srv.SetHandler(transport.HandlerFunc(func(from ring.NodeID, m wire.Message) {
		srv.Send("micro-srv", from, wire.Pong{ID: m.(wire.Ping).ID, Sent: m.(wire.Ping).Sent})
	}))
}

// TransportSerialRPC measures one strictly serial ping/pong round trip per
// iteration over a single TCP stream — the request/response latency floor
// every coordinator hop pays when nothing is pipelined.
func TransportSerialRPC(b *testing.B) {
	cli, srv := transportPair(b, 1, false)
	echoPings(srv)
	done := make(chan uint64, 1)
	cli.SetHandler(transport.HandlerFunc(func(_ ring.NodeID, m wire.Message) {
		done <- m.(wire.Pong).ID
	}))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cli.Send("micro-cli", "micro-srv", wire.Ping{ID: uint64(i)})
		if got := <-done; got != uint64(i) {
			b.Fatalf("pong %d, want %d", got, i)
		}
	}
}

// TransportPipelinedRPC measures the same ping/pong exchange with 64
// requests in flight across a 4-stream pool — what connection pooling plus
// pipelining buys over TransportSerialRPC.
func TransportPipelinedRPC(b *testing.B) {
	const window = 64
	cli, srv := transportPair(b, 4, false)
	echoPings(srv)
	recv := make(chan struct{}, window)
	cli.SetHandler(transport.HandlerFunc(func(ring.NodeID, wire.Message) {
		recv <- struct{}{}
	}))
	b.ReportAllocs()
	b.ResetTimer()
	inflight := 0
	for i := 0; i < b.N; i++ {
		if inflight == window {
			<-recv
			inflight--
		}
		cli.Send("micro-cli", "micro-srv", wire.Ping{ID: uint64(i)})
		inflight++
	}
	for ; inflight > 0; inflight-- {
		<-recv
	}
}

// transportThroughput drives acked ~128-byte mutations through a bounded
// in-flight window — the replica write fan-out shape — with coalescing on
// or off. The window (well under MaxPending) keeps the backlog cap out of
// play so the two variants differ only in conn.Write granularity.
func transportThroughput(b *testing.B, noBatch bool) {
	const window = 512
	cli, srv := transportPair(b, 1, noBatch)
	srv.SetHandler(transport.HandlerFunc(func(from ring.NodeID, m wire.Message) {
		srv.Send("micro-srv", from, wire.MutationAck{ID: m.(wire.Mutation).ID})
	}))
	recv := make(chan struct{}, window)
	cli.SetHandler(transport.HandlerFunc(func(ring.NodeID, wire.Message) {
		recv <- struct{}{}
	}))
	payload := make([]byte, 128)
	for i := range payload {
		payload[i] = byte('a' + i%26)
	}
	key := []byte("user00001234")
	b.ReportAllocs()
	b.ResetTimer()
	inflight := 0
	for i := 0; i < b.N; i++ {
		if inflight == window {
			<-recv
			inflight--
		}
		cli.Send("micro-cli", "micro-srv", wire.Mutation{
			ID: uint64(i), Key: key, Value: wire.Value{Data: payload, Timestamp: int64(i + 1)},
		})
		inflight++
	}
	for ; inflight > 0; inflight-- {
		<-recv
	}
}

// TransportBatchedThroughput measures acked mutation throughput with write
// coalescing on (production configuration).
func TransportBatchedThroughput(b *testing.B) { transportThroughput(b, false) }

// TransportUnbatchedThroughput is the frame-per-write baseline the
// coalescing path is tracked against.
func TransportUnbatchedThroughput(b *testing.B) { transportThroughput(b, true) }

package micro

import "testing"

// Standard harness entry points so `go test -bench` (and bench-smoke) runs
// the same bodies cmd/bench-micro snapshots into out/micro.json.

func BenchmarkEngineApply(b *testing.B)             { EngineApply(b) }
func BenchmarkEngineGet(b *testing.B)               { EngineGet(b) }
func BenchmarkEngineScan(b *testing.B)              { EngineScan(b) }
func BenchmarkPersistApply(b *testing.B)            { PersistApply(b) }
func BenchmarkPersistGet(b *testing.B)              { PersistGet(b) }
func BenchmarkPersistRecover(b *testing.B)          { PersistRecover(b) }
func BenchmarkWireEncode(b *testing.B)              { WireEncode(b) }
func BenchmarkWireDecode(b *testing.B)              { WireDecode(b) }
func BenchmarkWireDecodeShared(b *testing.B)        { WireDecodeShared(b) }
func BenchmarkWireSize(b *testing.B)                { WireSize(b) }
func BenchmarkTransportSerialRPC(b *testing.B)      { TransportSerialRPC(b) }
func BenchmarkTransportPipelinedRPC(b *testing.B)   { TransportPipelinedRPC(b) }
func BenchmarkTransportBatched(b *testing.B)        { TransportBatchedThroughput(b) }
func BenchmarkTransportUnbatched(b *testing.B)      { TransportUnbatchedThroughput(b) }
func BenchmarkMerkleWritePath(b *testing.B)         { MerkleWritePath(b) }
func BenchmarkMerkleInvalidateRebuild(b *testing.B) { MerkleInvalidateRebuild(b) }
func BenchmarkClusterOps(b *testing.B)              { ClusterOps(b) }

// Package micro is the tracked micro-benchmark suite over the hot paths:
// storage engine Apply/Get/Scan (both the in-memory default and the
// persistent bitcask engine, including crash recovery), wire codec
// Encode/Decode/Size, Merkle write-path maintenance, and end-to-end
// simulated-cluster throughput.
//
// The same benchmark bodies run two ways: as ordinary `go test -bench`
// benchmarks (micro_test.go) and through cmd/bench-micro, which executes
// them with testing.Benchmark and emits out/micro.json — the per-PR
// baseline CI uploads and diffs, so a hot-path regression shows up as a
// delta in the next run's log instead of silently compounding.
package micro

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"harmony/internal/bench"
	"harmony/internal/obs"
	"harmony/internal/repair"
	"harmony/internal/storage"
	"harmony/internal/wire"
	"harmony/internal/ycsb"
)

// goroutines is the concurrency the engine benchmarks drive: the tracked
// baseline pins engine throughput at 8 concurrent workers across PRs.
const goroutines = 8

func keys(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = []byte(fmt.Sprintf("user%08d", i))
	}
	return out
}

// fan runs fn(worker, i) b.N times split across the worker pool.
func fan(b *testing.B, fn func(w, i int)) {
	var wg sync.WaitGroup
	per := b.N/goroutines + 1
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				fn(w, w*per+i)
			}
		}(w)
	}
	wg.Wait()
}

// EngineApply measures sharded-engine writes: 8 goroutines overwriting a
// 4096-key working set (steady state, allocation-free path). Each worker
// owns the keys congruent to its index (4096 % 8 == 0), so per-key
// timestamps are monotonic and every Apply is an ACCEPTED write — a
// shared key cycle would let the highest-timestamp worker win every key
// once and turn the other workers' operations into cheap LWW rejects.
func EngineApply(b *testing.B) {
	e := storage.NewEngine(storage.Options{})
	ks := keys(4096)
	payload := []byte("0123456789abcdef0123456789abcdef")
	b.ReportAllocs()
	b.ResetTimer()
	fan(b, func(w, i int) {
		e.Apply(ks[(i*goroutines+w)%len(ks)], wire.Value{Data: payload, Timestamp: int64(i + 1)})
	})
}

// EngineGet measures sharded-engine reads: 8 goroutines over a resident
// 4096-key working set.
func EngineGet(b *testing.B) {
	e := storage.NewEngine(storage.Options{})
	ks := keys(4096)
	for i, k := range ks {
		e.Apply(k, wire.Value{Data: []byte("payload-0123456789abcdef"), Timestamp: int64(i + 1)})
	}
	b.ReportAllocs()
	b.ResetTimer()
	fan(b, func(w, i int) {
		e.Get(ks[i%len(ks)])
	})
}

// EngineApplyObserved is EngineApply with the observability tax included:
// every write also records into a per-level latency histogram, exactly as a
// server node with metrics enabled does. The delta against engine/apply-8g
// is the price of observation; the tracked allocs/op pins it at zero.
func EngineApplyObserved(b *testing.B) {
	e := storage.NewEngine(storage.Options{})
	hist := obs.NewOpLevelHist()
	ks := keys(4096)
	payload := []byte("0123456789abcdef0123456789abcdef")
	b.ReportAllocs()
	b.ResetTimer()
	fan(b, func(w, i int) {
		start := time.Now()
		e.Apply(ks[(i*goroutines+w)%len(ks)], wire.Value{Data: payload, Timestamp: int64(i + 1)})
		hist.Record(obs.OpWrite, wire.One, time.Since(start))
	})
}

// EngineGetObserved is EngineGet with per-level histogram recording on every
// read (see EngineApplyObserved).
func EngineGetObserved(b *testing.B) {
	e := storage.NewEngine(storage.Options{})
	hist := obs.NewOpLevelHist()
	ks := keys(4096)
	for i, k := range ks {
		e.Apply(k, wire.Value{Data: []byte("payload-0123456789abcdef"), Timestamp: int64(i + 1)})
	}
	b.ReportAllocs()
	b.ResetTimer()
	fan(b, func(w, i int) {
		start := time.Now()
		e.Get(ks[i%len(ks)])
		hist.Record(obs.OpRead, wire.One, time.Since(start))
	})
}

// EngineScan measures a full ordered scan over 4096 keys spread across
// memtable and flushed tables (the k-way shard merge).
func EngineScan(b *testing.B) {
	e := storage.NewEngine(storage.Options{})
	ks := keys(4096)
	for i, k := range ks {
		e.Apply(k, wire.Value{Data: []byte("payload-0123456789abcdef"), Timestamp: int64(i + 1)})
		if i == len(ks)/2 {
			e.Flush()
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := 0
		e.Scan(nil, nil, func([]byte, wire.Value) bool {
			rows++
			return true
		})
		if rows != len(ks) {
			b.Fatalf("scan saw %d rows, want %d", rows, len(ks))
		}
	}
}

// persistFixture opens a persistent (bitcask) engine over a fresh benchmark
// temp dir. FsyncInterval 0 keeps group commit: every Apply is durable when
// it returns, with the fsync amortized across the concurrent writers.
func persistFixture(b *testing.B) *storage.Engine {
	b.Helper()
	e, err := storage.Open(storage.Options{
		Persist: &storage.PersistOptions{Path: b.TempDir()},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { e.Close() })
	return e
}

// PersistApply measures durable writes: 8 goroutines overwriting a 4096-key
// working set on the persistent engine, group-commit fsync per round. The
// same key-ownership discipline as EngineApply keeps every Apply accepted.
// The delta against engine/apply-8g is the price of durability; the tracked
// allocs/op pins the steady-state write path at <=2 allocations.
func PersistApply(b *testing.B) {
	e := persistFixture(b)
	ks := keys(4096)
	payload := []byte("0123456789abcdef0123456789abcdef")
	for i, k := range ks {
		e.Apply(k, wire.Value{Data: payload, Timestamp: int64(i + 1)})
	}
	b.ReportAllocs()
	b.ResetTimer()
	fan(b, func(w, i int) {
		e.Apply(ks[(i*goroutines+w)%len(ks)], wire.Value{Data: payload, Timestamp: int64(len(ks) + i + 1)})
	})
}

// PersistApplyObserved is PersistApply with per-level histogram recording on
// every durable write (see EngineApplyObserved). The tracked allocs/op pins
// the observed durable write path at <= 2 allocations.
func PersistApplyObserved(b *testing.B) {
	e := persistFixture(b)
	hist := obs.NewOpLevelHist()
	ks := keys(4096)
	payload := []byte("0123456789abcdef0123456789abcdef")
	for i, k := range ks {
		e.Apply(k, wire.Value{Data: payload, Timestamp: int64(i + 1)})
	}
	b.ReportAllocs()
	b.ResetTimer()
	fan(b, func(w, i int) {
		start := time.Now()
		e.Apply(ks[(i*goroutines+w)%len(ks)], wire.Value{Data: payload, Timestamp: int64(len(ks) + i + 1)})
		hist.Record(obs.OpWrite, wire.Quorum, time.Since(start))
	})
}

// PersistGet measures reads against the persistent engine: a keydir lookup
// plus one pread per hit, 8 goroutines over a resident 4096-key set.
func PersistGet(b *testing.B) {
	e := persistFixture(b)
	ks := keys(4096)
	for i, k := range ks {
		e.Apply(k, wire.Value{Data: []byte("payload-0123456789abcdef"), Timestamp: int64(i + 1)})
	}
	b.ReportAllocs()
	b.ResetTimer()
	fan(b, func(w, i int) {
		e.Get(ks[i%len(ks)])
	})
}

// PersistRecover measures crash-recovery speed: reopening a 4096-row data
// dir and rebuilding the in-memory index (hint files plus tail replay). The
// per-row rebuild cost rides in wall_ns/op; the raw ns/op column is one full
// reopen.
func PersistRecover(b *testing.B) {
	const rows = 4096
	dir := b.TempDir()
	e, err := storage.Open(storage.Options{Persist: &storage.PersistOptions{Path: dir}})
	if err != nil {
		b.Fatal(err)
	}
	ks := keys(rows)
	for i, k := range ks {
		e.Apply(k, wire.Value{Data: []byte("payload-0123456789abcdef"), Timestamp: int64(i + 1)})
	}
	if err := e.Close(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		re, err := storage.Open(storage.Options{Persist: &storage.PersistOptions{Path: dir}})
		if err != nil {
			b.Fatal(err)
		}
		if got := re.Recovered(); got != rows {
			b.Fatalf("recovered %d rows, want %d", got, rows)
		}
		if err := re.Close(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(time.Since(start).Nanoseconds())/float64(b.N*rows), "wall_ns/op")
}

func benchMutation() wire.Message {
	data := make([]byte, 1024)
	for i := range data {
		data[i] = byte('a' + i%26)
	}
	return wire.Mutation{ID: 42, Key: []byte("user00001234/column/value-x"), Value: wire.Value{Data: data, Timestamp: 1234567}}
}

// WireEncode measures zero-copy frame encoding of a 1 KiB mutation into a
// reused buffer.
func WireEncode(b *testing.B) {
	m := benchMutation()
	var buf []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = wire.Encode(buf[:0], m)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// WireDecode measures the copying decode of the same frame.
func WireDecode(b *testing.B) {
	buf, err := wire.Encode(nil, benchMutation())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := wire.Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// WireDecodeShared measures the borrow-mode decode (fields alias the input).
func WireDecodeShared(b *testing.B) {
	buf, err := wire.Encode(nil, benchMutation())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := wire.DecodeShared(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// WireSize measures the pure-computation frame sizing the simulated fabric
// calls on every send.
func WireSize(b *testing.B) {
	m := benchMutation()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if wire.Size(m) == 0 {
			b.Fatal("zero size")
		}
	}
}

// merkleFixture is an engine + cache pair with the production wiring
// (accepted mutations fold into the tree in place) over one full-ring arc,
// pre-seeded and with the tree built.
func merkleFixture(b *testing.B, seedRows int) (*storage.Engine, *repair.TreeCache, []wire.TokenRange) {
	b.Helper()
	full := []wire.TokenRange{{Start: 0, End: 0}}
	var c *repair.TreeCache
	e := storage.NewEngine(storage.Options{
		OnReplace: func(key []byte, old wire.Value, hadOld bool, v wire.Value) {
			c.Update(key, old, hadOld, v)
		},
	})
	c = repair.NewTreeCache(e, full, 8)
	for i := 0; i < seedRows; i++ {
		e.Apply([]byte(fmt.Sprintf("user%08d", i)), wire.Value{Data: []byte("0123456789abcdef"), Timestamp: int64(i + 1)})
	}
	c.Trees(full)
	return e, c, full
}

// MerkleWritePath measures the per-mutation cost of keeping Merkle trees
// current on the write path — apply + in-place leaf update + a session-start
// Trees call, against a 4096-row arc. Before incremental maintenance each
// iteration paid a full-arc rebuild scan here.
func MerkleWritePath(b *testing.B) {
	e, c, full := merkleFixture(b, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := []byte(fmt.Sprintf("user%08d", i%4096))
		e.Apply(k, wire.Value{Data: []byte("0123456789abcdef"), Timestamp: int64(4096 + i + 1)})
		c.Trees(full) // session start: must not rebuild
	}
	b.StopTimer()
	if _, scans := c.Builds(); scans != 1 {
		b.Fatalf("write path rebuilt trees: %d scans", scans)
	}
}

// MerkleInvalidateRebuild measures the conservative fallback for contrast:
// every mutation invalidates its arc and the next Trees call pays the
// full-arc engine scan.
func MerkleInvalidateRebuild(b *testing.B) {
	e, c, full := merkleFixture(b, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := []byte(fmt.Sprintf("user%08d", i%4096))
		e.Apply(k, wire.Value{Data: []byte("0123456789abcdef"), Timestamp: int64(4096 + i + 1)})
		c.Invalidate(k)
		c.Trees(full) // pays the O(arc) rebuild
	}
}

// ClusterOps measures end-to-end simulated-cluster throughput: YCSB
// Workload A at eventual consistency over the 20-node Grid'5000 scenario —
// wall-clock ns per simulated operation, the substrate cost every
// experiment pays. The per-op cost rides in the wall_ns/op metric (the raw
// ns/op column measures one whole run including the fixed warmup, because
// the operation count — not the iteration count — is what scales with b.N).
func ClusterOps(b *testing.B) {
	// Large fixed floor: one run amortizes cluster construction and keyspace
	// preload to a few percent of the measured window.
	ops := int64(b.N) + 20000
	start := time.Now()
	res, err := bench.RunPolicy(bench.RunSpec{
		Scenario: bench.Grid5000(),
		Policy:   bench.PolicySpec{Kind: bench.PolicyEventual},
		Workload: ycsb.WorkloadA(),
		Threads:  40,
		Ops:      ops,
		Seed:     1,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(time.Since(start).Nanoseconds())/float64(ops), "wall_ns/op")
	b.ReportMetric(res.Report.ThroughputOps, "virtual_ops/s")
}

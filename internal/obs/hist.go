// Package obs is the runtime observability layer: concurrent latency
// histograms the hot paths can record into without contending, a metric
// registry every subsystem exports gauges through (Prometheus text
// exposition), a bounded ring buffer of structured control-loop decision
// events, an admin HTTP endpoint serving all three plus pprof/expvar, and
// the leveled logger multi-process deployments prefix their diagnostics
// with.
//
// The package sits below the control plane: it depends only on the
// measurement primitives (internal/stats) and the wire vocabulary
// (internal/wire), so storage, transport, cluster, core, and grouping can
// all emit into it without import cycles.
package obs

import (
	"sync"
	"sync/atomic"
	"time"

	"harmony/internal/stats"
	"harmony/internal/wire"
)

// histStripes is the stripe count of a ConcurrentHist. Eight stripes keep
// the TryLock cascade short while making same-instant collisions rare at
// the parallelism the hot paths run (GOMAXPROCS-ish goroutines).
const (
	histStripes    = 8
	histStripeMask = histStripes - 1
)

// histStripe is one lock + histogram pair. stats.Histogram is itself
// several cache lines, so stripes never share a line and no explicit
// padding is needed.
type histStripe struct {
	mu sync.Mutex
	h  stats.Histogram
}

// ConcurrentHist is a striped, merge-able latency histogram safe for
// concurrent recording. Record takes one of histStripes independent locks —
// chosen by a rotating index, falling through to the first free stripe via
// TryLock — so concurrent recorders almost never serialize on each other,
// and never allocate. Snapshot merges the stripes into one plain
// stats.Histogram (bucket counts are exact under merge; see
// stats.Histogram.Merge).
//
// The zero value is ready to use.
type ConcurrentHist struct {
	rotor   atomic.Uint32
	stripes [histStripes]histStripe
}

// Record adds one observation. It is safe for concurrent use and performs
// no allocation.
func (c *ConcurrentHist) Record(d time.Duration) {
	start := c.rotor.Add(1)
	for i := uint32(0); i < histStripes; i++ {
		s := &c.stripes[(start+i)&histStripeMask]
		if s.mu.TryLock() {
			s.h.Record(d)
			s.mu.Unlock()
			return
		}
	}
	// Every stripe momentarily busy: wait on ours rather than drop.
	s := &c.stripes[start&histStripeMask]
	s.mu.Lock()
	s.h.Record(d)
	s.mu.Unlock()
}

// Snapshot merges every stripe into one histogram. Each stripe is copied
// consistently under its lock; the merge is not a cross-stripe
// point-in-time snapshot (counters are monotonic, so concurrent recording
// skews the result by at most the records in flight).
func (c *ConcurrentHist) Snapshot() stats.Histogram {
	var out stats.Histogram
	for i := range c.stripes {
		s := &c.stripes[i]
		s.mu.Lock()
		h := s.h
		s.mu.Unlock()
		out.Merge(&h)
	}
	return out
}

// Reset clears every stripe.
func (c *ConcurrentHist) Reset() {
	for i := range c.stripes {
		s := &c.stripes[i]
		s.mu.Lock()
		s.h.Reset()
		s.mu.Unlock()
	}
}

// OpKind names a coordinated operation class for latency accounting.
type OpKind uint8

const (
	OpRead OpKind = iota
	OpWrite
	opKindCount
)

// String returns the metric label for the kind.
func (k OpKind) String() string {
	switch k {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	}
	return "unknown"
}

// levelSlots bounds the consistency-level dimension (wire levels are 1..6;
// slot 0 absorbs out-of-range input).
const levelSlots = 8

// OpLevelHist holds one ConcurrentHist per (operation kind, consistency
// level) pair — the per-operation latency surface the paper's analysis
// wants split by the level the operation was served at. Both dimensions are
// fixed arrays, so recording involves no map lookups and no allocation; a
// nil *OpLevelHist is an always-off recorder (Record is a no-op), which is
// how the hot paths stay untouched when observability is disabled.
type OpLevelHist struct {
	hists [opKindCount][levelSlots]ConcurrentHist
}

// NewOpLevelHist allocates an operation × level histogram family.
func NewOpLevelHist() *OpLevelHist { return &OpLevelHist{} }

// Record adds one observation for (op, level). Out-of-range levels clamp to
// slot 0; a nil receiver drops the observation.
func (o *OpLevelHist) Record(op OpKind, level wire.ConsistencyLevel, d time.Duration) {
	if o == nil {
		return
	}
	if op >= opKindCount {
		return
	}
	l := int(level)
	if l < 0 || l >= levelSlots {
		l = 0
	}
	o.hists[op][l].Record(d)
}

// OpLevelSnapshot is one populated (op, level) cell of an OpLevelHist.
type OpLevelSnapshot struct {
	Op    OpKind
	Level wire.ConsistencyLevel
	Hist  stats.Histogram
}

// Snapshot returns the non-empty cells, op-major then level-ascending —
// a deterministic order exposition and tests rely on.
func (o *OpLevelHist) Snapshot() []OpLevelSnapshot {
	if o == nil {
		return nil
	}
	var out []OpLevelSnapshot
	for op := OpKind(0); op < opKindCount; op++ {
		for l := 0; l < levelSlots; l++ {
			h := o.hists[op][l].Snapshot()
			if h.Count() == 0 {
				continue
			}
			out = append(out, OpLevelSnapshot{Op: op, Level: wire.ConsistencyLevel(l), Hist: h})
		}
	}
	return out
}

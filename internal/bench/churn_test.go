package bench

import (
	"testing"
)

// TestChurnRepairBoundsPostRecoveryStaleness is the acceptance regression
// for the anti-entropy subsystem: on an identical failure schedule (node
// down, hints capped and lost, node back), the repair-enabled cluster
// returns every key group within its staleness tolerance in bounded time
// and beats hints-only on post-recovery staleness, while hints-only keeps
// serving divergent data that only sampled read repair slowly drains.
func TestChurnRepairBoundsPostRecoveryStaleness(t *testing.T) {
	if testing.Short() {
		t.Skip("churn schedule needs its full virtual timeline")
	}
	// The full default spec — the exact configuration the CI churn
	// experiment publishes — so the pinned numbers and the artifact agree.
	res, err := Churn(DefaultChurnSpec(), Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.Format())

	// Repair: every group returns within tolerance in a bounded window.
	const boundMs = 3000
	for _, g := range res.Repair.Groups {
		if g.RecoveredWithinMs < 0 || g.RecoveredWithinMs > boundMs {
			t.Errorf("repair: group %s recovered in %.0fms, want within [0, %d]", g.Name, g.RecoveredWithinMs, boundMs)
		}
		if g.PostFraction > g.Tolerance {
			t.Errorf("repair: group %s post-recovery stale fraction %.3f exceeds tolerance %.2f",
				g.Name, g.PostFraction, g.Tolerance)
		}
	}

	// The schedule must actually lose mutations — otherwise hints healed
	// everything and the comparison proves nothing.
	if res.Repair.HintsDropped < 500 || res.HintsOnly.HintsDropped < 500 {
		t.Fatalf("failure schedule dropped too few hints (repair=%d hints-only=%d): no divergence injected",
			res.Repair.HintsDropped, res.HintsOnly.HintsDropped)
	}
	// Anti-entropy did the healing; hints-only had nothing to heal with.
	if res.Repair.RowsHealed < 200 {
		t.Errorf("repair healed only %d rows; sessions did not catch the dropped-hint divergence", res.Repair.RowsHealed)
	}
	if res.HintsOnly.RowsHealed != 0 {
		t.Errorf("hints-only run reports %d repair-healed rows; fixture is not hints-only", res.HintsOnly.RowsHealed)
	}

	// The headline: repair beats hints-only on post-recovery staleness for
	// the divergence-exposed cold group, with real staleness to beat.
	rc, hc := res.Repair.Groups[1], res.HintsOnly.Groups[1]
	if hc.PostStale < 20 {
		t.Errorf("hints-only cold group saw only %d stale reads; scenario lost its divergence signal", hc.PostStale)
	}
	if floor := 5 * maxU64(1, rc.PostStale); hc.PostStale < floor {
		t.Errorf("repair did not clearly beat hints-only on cold staleness: repair=%d hints-only=%d (want >= %d)",
			rc.PostStale, hc.PostStale, floor)
	}
	// Bounded versus unbounded: by the tail of the watch repair has fully
	// converged while hints-only is still serving stale data.
	if rc.TailFraction > 0.001 {
		t.Errorf("repair cold tail stale fraction %.4f, want ~0 (converged)", rc.TailFraction)
	}
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

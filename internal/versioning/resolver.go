package versioning

import (
	"bytes"

	"harmony/internal/wire"
)

// Resolver decides which of two concurrent (sibling) versions a replica
// keeps. Decisions MUST be deterministic and symmetric — every replica
// resolving the same pair picks the same winner regardless of arrival order
// — or anti-entropy cannot converge replicas byte-for-byte.
type Resolver interface {
	// Resolve reports whether incoming should replace current, given that
	// the two are causally concurrent (or clock-less). It is never called
	// when one version causally descends the other.
	Resolve(incoming, current wire.Value) bool
}

// LWW is the default resolver: last-writer-wins on the coordinator write
// timestamp, ties kept (incoming loses), matching the engine's historical
// Fresh() comparison exactly. For true siblings with identical timestamps
// it falls back to a deterministic byte-order tie-break so replicas that
// received the siblings in different orders still converge.
type LWW struct{}

// Resolve implements Resolver.
func (LWW) Resolve(incoming, current wire.Value) bool {
	if incoming.Timestamp != current.Timestamp {
		return incoming.Timestamp > current.Timestamp
	}
	// Identical timestamps. Legacy clock-less values keep the historical
	// "ties keep current" rule — idempotent replays must not churn state.
	// Concurrent same-timestamp siblings (both clock-bearing, different
	// content) need a content tie-break: tombstones win (deletes are
	// explicit intent), then higher byte-order data.
	if len(incoming.Clock) == 0 || len(current.Clock) == 0 {
		return false
	}
	if incoming.Tombstone != current.Tombstone {
		return incoming.Tombstone
	}
	return bytes.Compare(incoming.Data, current.Data) > 0
}

// Decide is the engine's version-comparison gate: it reports whether
// incoming should replace current, and whether the pair was concurrent
// (siblings handed to the resolver rather than settled causally). When both
// values carry clocks the causal order is authoritative; otherwise the
// resolver arbitrates directly, which for LWW reproduces the legacy
// timestamp comparison bit-for-bit.
func Decide(incoming, current wire.Value, r Resolver) (take, concurrent bool) {
	if r == nil {
		r = LWW{}
	}
	if len(incoming.Clock) > 0 && len(current.Clock) > 0 {
		switch Compare(Clock(incoming.Clock), Clock(current.Clock)) {
		case Descends:
			return true, false
		case DescendedBy, Equal:
			return false, false
		case Concurrent:
			return r.Resolve(incoming, current), true
		}
	}
	return r.Resolve(incoming, current), false
}

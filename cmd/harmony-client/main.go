// Command harmony-client talks to a live harmony-server cluster over TCP:
// get/put/delete single keys, watch a node's stats, or run a small
// adaptive-consistency session that monitors the cluster and prints the
// level Harmony would choose.
//
// Examples:
//
//	harmony-client -servers n1=127.0.0.1:7001,n2=127.0.0.1:7002 put user42 hello
//	harmony-client -servers n1=127.0.0.1:7001 -level QUORUM get user42
//	harmony-client -servers n1=127.0.0.1:7001,n2=127.0.0.1:7002 monitor
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"harmony/internal/client"
	"harmony/internal/core"
	"harmony/internal/ring"
	"harmony/internal/sim"
	"harmony/internal/transport"
	"harmony/internal/wire"
)

func parseServers(spec string) (map[ring.NodeID]string, []ring.NodeID, error) {
	peers := map[ring.NodeID]string{}
	var ids []ring.NodeID
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		kv := strings.SplitN(entry, "=", 2)
		if len(kv) != 2 {
			return nil, nil, fmt.Errorf("server entry %q: want id=addr", entry)
		}
		id := ring.NodeID(kv[0])
		peers[id] = kv[1]
		ids = append(ids, id)
	}
	if len(ids) == 0 {
		return nil, nil, fmt.Errorf("no servers given")
	}
	return peers, ids, nil
}

func parseLevel(s string) (wire.ConsistencyLevel, error) {
	switch strings.ToUpper(s) {
	case "ONE":
		return wire.One, nil
	case "TWO":
		return wire.Two, nil
	case "THREE":
		return wire.Three, nil
	case "QUORUM":
		return wire.Quorum, nil
	case "ALL":
		return wire.All, nil
	case "SESSION":
		return wire.Session, nil
	}
	return 0, fmt.Errorf("unknown consistency level %q", s)
}

func main() {
	var (
		servers = flag.String("servers", "", "comma list of id=addr")
		level   = flag.String("level", "ONE", "read consistency level: ONE|SESSION|TWO|THREE|QUORUM|ALL")
		timeout = flag.Duration("timeout", 5*time.Second, "per-operation timeout")
		verify  = flag.Bool("verify", false, "get only: dual-read staleness check")
		streams = flag.Int("streams", 1, "pooled TCP connections per server (pipelining)")
	)
	flag.Parse()
	args := flag.Args()
	if *servers == "" || len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: harmony-client -servers id=addr[,...] get|put|del|monitor [key] [value]")
		os.Exit(2)
	}
	peers, ids, err := parseServers(*servers)
	if err != nil {
		log.Fatalf("harmony-client: %v", err)
	}
	lvl, err := parseLevel(*level)
	if err != nil {
		log.Fatalf("harmony-client: %v", err)
	}

	rt := sim.NewRealRuntime()
	defer rt.Stop()
	tcp, err := transport.NewTCPNode(transport.TCPConfig{ID: "harmony-client", Peers: peers, Streams: *streams}, rt, transport.HandlerFunc(func(ring.NodeID, wire.Message) {}))
	if err != nil {
		log.Fatalf("harmony-client: %v", err)
	}
	defer tcp.Close()

	switch args[0] {
	case "get", "put", "del":
		runKV(rt, tcp, ids, lvl, *timeout, *verify, args)
	case "monitor":
		runMonitor(rt, tcp, ids)
	default:
		log.Fatalf("harmony-client: unknown command %q", args[0])
	}
}

func runKV(rt *sim.RealRuntime, tcp *transport.TCPNode, ids []ring.NodeID, lvl wire.ConsistencyLevel, timeout time.Duration, verify bool, args []string) {
	drv, err := client.New(client.Options{
		ID:           "harmony-client",
		Coordinators: ids,
		Policy:       client.Fixed{Read: lvl, Write: wire.One},
		Timeout:      timeout,
	}, rt, tcp)
	if err != nil {
		log.Fatalf("harmony-client: %v", err)
	}
	// Route replies from the TCP endpoint into the driver. The session wrap
	// makes -level SESSION meaningful across this process's operations: each
	// read carries the token of everything the command already wrote or read.
	rebind(tcp, rt, drv)
	sess := client.NewSession(drv)

	done := make(chan int, 1)
	rt.Post(func() {
		switch args[0] {
		case "get":
			if len(args) < 2 {
				log.Println("get needs a key")
				done <- 2
				return
			}
			if verify {
				drv.VerifyRead([]byte(args[1]), func(res client.ReadResult, stale bool) {
					printRead(res)
					fmt.Printf("stale=%v\n", stale)
					done <- exitFor(res.Err)
				})
				return
			}
			sess.Read([]byte(args[1]), func(res client.ReadResult) {
				printRead(res)
				done <- exitFor(res.Err)
			})
		case "put":
			if len(args) < 3 {
				log.Println("put needs a key and a value")
				done <- 2
				return
			}
			sess.Write([]byte(args[1]), []byte(args[2]), func(res client.WriteResult) {
				if res.Err != nil {
					fmt.Printf("error: %v\n", res.Err)
				} else {
					fmt.Printf("ok ts=%d\n", res.Ts)
				}
				done <- exitFor(res.Err)
			})
		case "del":
			if len(args) < 2 {
				log.Println("del needs a key")
				done <- 2
				return
			}
			sess.Delete([]byte(args[1]), func(res client.WriteResult) {
				if res.Err != nil {
					fmt.Printf("error: %v\n", res.Err)
				} else {
					fmt.Println("deleted")
				}
				done <- exitFor(res.Err)
			})
		}
	})
	os.Exit(<-done)
}

// rebind points the TCP endpoint's inbound path at the driver. NewTCPNode
// was constructed with a noop handler because the driver needs the endpoint
// first; the client package correlates responses by ID, so late binding is
// safe.
func rebind(tcp *transport.TCPNode, rt *sim.RealRuntime, h transport.Handler) {
	tcp.SetHandler(h)
}

func printRead(res client.ReadResult) {
	switch {
	case res.Err != nil:
		fmt.Printf("error: %v\n", res.Err)
	case !res.Found:
		fmt.Println("(not found)")
	default:
		fmt.Printf("%s (ts=%d, level=%s)\n", res.Value, res.Ts, res.Achieved)
	}
}

func exitFor(err error) int {
	if err != nil {
		return 1
	}
	return 0
}

func runMonitor(rt *sim.RealRuntime, tcp *transport.TCPNode, ids []ring.NodeID) {
	ctl := core.NewController(core.ControllerConfig{
		Policy: core.Policy{Name: "observer", ToleratedStaleRate: 0.2},
		N:      len(ids),
		OnDecision: func(d core.Decision) {
			fmt.Printf("%s estimate=%.3f Xn=%d level=%s (%s)\n",
				d.At.Format("15:04:05"), d.Estimate, d.Xn, d.Level, d.Model)
		},
	})
	mon := core.NewMonitor(core.MonitorConfig{
		ID:             "harmony-client",
		Nodes:          ids,
		Interval:       time.Second,
		ReplicaSetSize: len(ids),
		OnObservation:  ctl.Observe,
	}, rt, tcp)
	tcp.SetHandler(mon)
	mon.Start()
	fmt.Println("monitoring; ctrl-c to stop")
	select {}
}

package faults

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"harmony/internal/ring"
	"harmony/internal/sim"
	"harmony/internal/transport"
	"harmony/internal/wire"
)

// recorder collects deliveries per destination with arrival times.
type recorder struct {
	mu   sync.Mutex
	rt   sim.Runtime
	got  map[ring.NodeID][]wire.Message
	when map[ring.NodeID][]time.Time
}

func newRecorder(rt sim.Runtime) *recorder {
	return &recorder{rt: rt, got: map[ring.NodeID][]wire.Message{}, when: map[ring.NodeID][]time.Time{}}
}

func (r *recorder) sender() transport.Sender {
	return sendFunc(func(from, to ring.NodeID, m wire.Message) {
		r.mu.Lock()
		r.got[to] = append(r.got[to], m)
		r.when[to] = append(r.when[to], r.rt.Now())
		r.mu.Unlock()
	})
}

func (r *recorder) count(to ring.NodeID) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.got[to])
}

type sendFunc func(from, to ring.NodeID, m wire.Message)

func (f sendFunc) Send(from, to ring.NodeID, m wire.Message) { f(from, to, m) }

func ping(id uint64) wire.Message { return wire.Ping{ID: id} }

func TestUnarmedPassThrough(t *testing.T) {
	s := sim.New(1)
	rec := newRecorder(s)
	in := New(s, 7, rec.sender())
	for i := 0; i < 100; i++ {
		in.Send("a", "b", ping(uint64(i)))
	}
	if rec.count("b") != 100 {
		t.Fatalf("delivered %d of 100 with no rules", rec.count("b"))
	}
	if st := in.Stats(); st != (Stats{}) {
		t.Fatalf("counters moved with no rules: %+v", st)
	}
}

func TestDropRuleIsDirected(t *testing.T) {
	s := sim.New(2)
	rec := newRecorder(s)
	in := New(s, 7, rec.sender())
	in.SetRule("a", "b", Rule{Drop: 1})
	for i := 0; i < 50; i++ {
		in.Send("a", "b", ping(uint64(i)))
		in.Send("b", "a", ping(uint64(i)))
	}
	if rec.count("b") != 0 {
		t.Fatalf("a->b delivered %d frames through a 100%% drop rule", rec.count("b"))
	}
	if rec.count("a") != 50 {
		t.Fatalf("reverse direction impaired: %d of 50", rec.count("a"))
	}
	if st := in.Stats(); st.Dropped != 50 {
		t.Fatalf("dropped = %d, want 50", st.Dropped)
	}
	// Removing the rule (zero Rule) restores pass-through.
	in.SetRule("a", "b", Rule{})
	in.Send("a", "b", ping(99))
	if rec.count("b") != 1 {
		t.Fatal("rule removal did not restore delivery")
	}
}

func TestDelayDefersDelivery(t *testing.T) {
	s := sim.New(3)
	rec := newRecorder(s)
	in := New(s, 7, rec.sender())
	in.SetRule("a", "b", Rule{Delay: 40 * time.Millisecond})
	start := s.Now()
	in.Send("a", "b", ping(1))
	if rec.count("b") != 0 {
		t.Fatal("delayed frame delivered synchronously")
	}
	s.RunUntilIdle(100)
	if rec.count("b") != 1 {
		t.Fatal("delayed frame never delivered")
	}
	if got := rec.when["b"][0].Sub(start); got < 40*time.Millisecond {
		t.Fatalf("delivered after %s, want >= 40ms", got)
	}
}

func TestDuplicateDeliversTwice(t *testing.T) {
	s := sim.New(4)
	rec := newRecorder(s)
	in := New(s, 7, rec.sender())
	in.SetRule("a", "b", Rule{Duplicate: 1})
	for i := 0; i < 20; i++ {
		in.Send("a", "b", ping(uint64(i)))
	}
	s.RunUntilIdle(1000)
	if rec.count("b") != 40 {
		t.Fatalf("delivered %d frames, want 40 (every frame duplicated)", rec.count("b"))
	}
	if st := in.Stats(); st.Duplicated != 20 {
		t.Fatalf("duplicated = %d, want 20", st.Duplicated)
	}
}

func TestReorderOvertakes(t *testing.T) {
	s := sim.New(5)
	rec := newRecorder(s)
	in := New(s, 7, rec.sender())
	// Reorder every frame with a latency scale, so consecutive sends at
	// the same instant land shuffled.
	in.SetRule("a", "b", Rule{Delay: time.Millisecond, Jitter: 10 * time.Millisecond, Reorder: 0.5})
	for i := 0; i < 64; i++ {
		in.Send("a", "b", ping(uint64(i)))
	}
	s.RunUntilIdle(10_000)
	if rec.count("b") != 64 {
		t.Fatalf("delivered %d of 64", rec.count("b"))
	}
	inOrder := true
	for i, m := range rec.got["b"] {
		if m.(wire.Ping).ID != uint64(i) {
			inOrder = false
			break
		}
	}
	if inOrder {
		t.Fatal("64 reordered frames arrived in exact send order")
	}
}

func TestWildcardPrecedence(t *testing.T) {
	s := sim.New(6)
	rec := newRecorder(s)
	in := New(s, 7, rec.sender())
	in.SetRule(Wildcard, Wildcard, Rule{Drop: 1})
	in.SetRule("a", "b", Rule{Delay: time.Millisecond}) // exact beats wildcard
	in.Send("a", "b", ping(1))
	in.Send("a", "c", ping(2)) // falls to *->*: dropped
	s.RunUntilIdle(100)
	if rec.count("b") != 1 || rec.count("c") != 0 {
		t.Fatalf("precedence wrong: b=%d c=%d", rec.count("b"), rec.count("c"))
	}
}

func TestSymmetricAndAsymmetricPartition(t *testing.T) {
	s := sim.New(7)
	rec := newRecorder(s)
	in := New(s, 7, rec.sender())
	in.Partition(PartitionSpec{A: []string{"n1", "n2"}, B: []string{"n3"}}, nil)
	in.Send("n1", "n3", ping(1))
	in.Send("n3", "n2", ping(2))
	in.Send("n1", "n2", ping(3)) // same side: unaffected
	if rec.count("n3") != 0 || rec.count("n2") != 1 {
		t.Fatalf("symmetric cut leaked: n3=%d n2=%d", rec.count("n3"), rec.count("n2"))
	}
	if st := in.Stats(); st.Cut != 2 {
		t.Fatalf("cut = %d, want 2", st.Cut)
	}
	in.Heal()
	in.Send("n1", "n3", ping(4))
	if rec.count("n3") != 1 {
		t.Fatal("heal did not restore delivery")
	}

	// Asymmetric: n1->n3 blocked, n3->n1 flows.
	in.Partition(PartitionSpec{A: []string{"n1"}, B: []string{"n3"}, Asymmetric: true}, nil)
	in.Send("n1", "n3", ping(5))
	in.Send("n3", "n1", ping(6))
	if rec.count("n3") != 1 {
		t.Fatal("asymmetric cut leaked n1->n3")
	}
	if rec.count("n1") != 1 {
		t.Fatal("asymmetric cut blocked the open direction")
	}
}

func TestWildcardPartitionSide(t *testing.T) {
	s := sim.New(8)
	rec := newRecorder(s)
	in := New(s, 7, rec.sender())
	members := []string{"n1", "n2", "n3", "n4"}
	in.Partition(PartitionSpec{A: []string{"n4"}, B: []string{Wildcard}}, members)
	in.Send("n4", "n1", ping(1))
	in.Send("n2", "n4", ping(2))
	in.Send("n1", "n2", ping(3))
	if rec.count("n1") != 0 || rec.count("n4") != 0 {
		t.Fatal("wildcard isolation leaked")
	}
	if rec.count("n2") != 1 {
		t.Fatal("wildcard isolation cut an unrelated pair")
	}
}

func TestApplyUpdateAndSnapshot(t *testing.T) {
	s := sim.New(9)
	rec := newRecorder(s)
	in := New(s, 7, rec.sender())
	err := in.Apply(Update{
		Set:       []RuleUpdate{{From: "a", To: "b", Rule: Rule{Drop: 0.5}}},
		Partition: &PartitionSpec{A: []string{"x"}, B: []string{"y"}},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	st := in.Snapshot()
	if len(st.Rules) != 1 || st.Rules[0].From != "a" || st.Rules[0].Drop != 0.5 {
		t.Fatalf("snapshot rules = %+v", st.Rules)
	}
	if len(st.Partitions) != 1 {
		t.Fatalf("snapshot partitions = %+v", st.Partitions)
	}
	if err := in.Apply(Update{Clear: true}, nil); err != nil {
		t.Fatal(err)
	}
	if st := in.Snapshot(); len(st.Rules) != 0 || len(st.Partitions) != 0 {
		t.Fatal("clear left state behind")
	}
}

func TestScenarioSchedulesSteps(t *testing.T) {
	Register(Scenario{
		Name: "test-cut-then-heal",
		Steps: []Step{
			{After: 0, Update: Update{Partition: &PartitionSpec{A: []string{"a"}, B: []string{"b"}}}},
			{After: 100 * time.Millisecond, Update: Update{Heal: true}},
		},
	})
	s := sim.New(10)
	rec := newRecorder(s)
	in := New(s, 7, rec.sender())
	if err := in.Apply(Update{Scenario: "test-cut-then-heal"}, nil); err != nil {
		t.Fatal(err)
	}
	s.RunFor(10 * time.Millisecond)
	in.Send("a", "b", ping(1))
	if rec.count("b") != 0 {
		t.Fatal("scenario cut not applied")
	}
	s.RunFor(200 * time.Millisecond)
	in.Send("a", "b", ping(2))
	if rec.count("b") != 1 {
		t.Fatal("scenario heal not applied")
	}
	if _, ok := Lookup("flaky-network"); !ok {
		t.Fatal("builtin scenario missing")
	}
	if err := in.Apply(Update{Scenario: "no-such"}, nil); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

func TestHTTPHandlerRoundTrip(t *testing.T) {
	s := sim.New(11)
	rec := newRecorder(s)
	in := New(s, 7, rec.sender())
	h := Handler{Inj: in, Membership: []string{"n1", "n2", "n3"}}

	body, _ := json.Marshal(Update{Partition: &PartitionSpec{A: []string{"n1"}, B: []string{Wildcard}}})
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("POST", "/faults", bytes.NewReader(body)))
	if w.Code != 200 {
		t.Fatalf("POST status %d: %s", w.Code, w.Body.String())
	}
	in.Send("n1", "n2", ping(1))
	if rec.count("n2") != 0 {
		t.Fatal("posted partition not applied")
	}

	w = httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("GET", "/faults", nil))
	var st State
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatalf("GET body: %v", err)
	}
	if len(st.Partitions) != 1 || st.Stats.Cut != 1 {
		t.Fatalf("GET state = %+v", st)
	}

	w = httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("POST", "/faults", strings.NewReader("{bad")))
	if w.Code != 400 {
		t.Fatalf("bad JSON status %d", w.Code)
	}

	body, _ = json.Marshal(Update{Heal: true})
	w = httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("POST", "/faults", bytes.NewReader(body)))
	if w.Code != 200 {
		t.Fatalf("heal status %d", w.Code)
	}
	in.Send("n1", "n2", ping(2))
	if rec.count("n2") != 1 {
		t.Fatal("posted heal not applied")
	}
}

// TestConcurrentSendsUnderMutation pins -race cleanliness: senders on many
// goroutines while rules and partitions churn.
func TestConcurrentSendsUnderMutation(t *testing.T) {
	rt := sim.NewRealRuntime()
	defer rt.Stop()
	rec := newRecorder(rt)
	in := New(rt, 7, rec.sender())
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				in.Send(ring.NodeID("a"), ring.NodeID("b"), ping(uint64(i)))
			}
		}(g)
	}
	for i := 0; i < 200; i++ {
		in.SetRule("a", "b", Rule{Drop: 0.1, Delay: time.Microsecond})
		in.Partition(PartitionSpec{A: []string{"a"}, B: []string{"c"}}, nil)
		in.Heal()
		in.Clear()
		_ = in.Snapshot()
	}
	close(stop)
	wg.Wait()
}

package transport

import (
	"net"
	"testing"
	"time"

	"harmony/internal/ring"
	"harmony/internal/sim"
	"harmony/internal/wire"
)

// deadAddr reserves a loopback port and releases it, yielding an address
// that refuses connections immediately.
func deadAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// forceRedial clears the group's dial gate so the next streamTo attempts a
// dial immediately — the tests drive the backoff state machine through its
// transitions without sleeping out real backoff windows.
func forceRedial(g *peerGroup) {
	g.mu.Lock()
	g.nextDial = time.Time{}
	g.mu.Unlock()
}

func backoffState(g *peerGroup) (backoff time.Duration, fails, dials uint64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.backoff, g.dialFails, g.dials
}

// TestDialBackoffDoublesToCap pins the redial schedule: the first failed
// dial arms DialBackoff, each subsequent failure doubles it, and it clamps
// at DialBackoffMax while the failure counter keeps climbing monotonically.
func TestDialBackoffDoublesToCap(t *testing.T) {
	rt := sim.NewRealRuntime()
	defer rt.Stop()
	n, err := NewTCPNode(TCPConfig{
		ID:             "a",
		Peers:          map[ring.NodeID]string{"b": deadAddr(t)},
		DialBackoff:    10 * time.Millisecond,
		DialBackoffMax: 80 * time.Millisecond,
		Logf:           func(string, ...any) {},
	}, rt, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()

	g := n.group("b")
	want := []time.Duration{10, 20, 40, 80, 80, 80} // ms
	var lastFails uint64
	for i, w := range want {
		forceRedial(g)
		if _, err := n.streamTo("b"); err == nil {
			t.Fatalf("dial %d to dead address succeeded", i)
		}
		backoff, fails, dials := backoffState(g)
		if backoff != w*time.Millisecond {
			t.Fatalf("after failure %d: backoff = %v, want %v", i+1, backoff, w*time.Millisecond)
		}
		if fails != lastFails+1 {
			t.Fatalf("after failure %d: dialFails = %d, want %d", i+1, fails, lastFails+1)
		}
		lastFails = fails
		if dials != 0 {
			t.Fatalf("phantom successful dial: %d", dials)
		}
	}
	if st := n.Stats(); st.DialFailures != uint64(len(want)) {
		t.Fatalf("Stats().DialFailures = %d, want %d", st.DialFailures, len(want))
	}
}

// TestDialBackoffGateFailsFast pins what happens inside the backoff window:
// streamTo refuses without dialing (errBackoff), Send drops the frame
// without blocking, and the failure counter does NOT advance — the gate is
// not an attempt.
func TestDialBackoffGateFailsFast(t *testing.T) {
	rt := sim.NewRealRuntime()
	defer rt.Stop()
	n, err := NewTCPNode(TCPConfig{
		ID:             "a",
		Peers:          map[ring.NodeID]string{"b": deadAddr(t)},
		DialBackoff:    time.Minute, // nothing re-arms during the test
		DialBackoffMax: time.Minute,
		Logf:           func(string, ...any) {},
	}, rt, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()

	if _, err := n.streamTo("b"); err == nil {
		t.Fatal("dial to dead address succeeded")
	}
	_, failsAfterDial, _ := backoffState(n.group("b"))

	if _, err := n.streamTo("b"); err != errBackoff {
		t.Fatalf("streamTo inside backoff window: err = %v, want errBackoff", err)
	}
	dropsBefore := n.Stats().FramesDropped
	start := time.Now()
	n.Send("a", "b", wire.Ping{ID: 1})
	if took := time.Since(start); took > time.Second {
		t.Fatalf("send during backoff took %v — it must drop fast", took)
	}
	if drops := n.Stats().FramesDropped; drops != dropsBefore+1 {
		t.Fatalf("FramesDropped = %d, want %d", drops, dropsBefore+1)
	}
	if _, fails, _ := backoffState(n.group("b")); fails != failsAfterDial {
		t.Fatalf("backoff gate advanced dialFails: %d -> %d", failsAfterDial, fails)
	}
}

// TestDialBackoffResetsOnSuccess grows the backoff against a dead address,
// then brings a real listener up at that address and verifies a successful
// dial resets the schedule to zero so the next failure starts over at
// DialBackoff, not where the last outage left off.
func TestDialBackoffResetsOnSuccess(t *testing.T) {
	rtA, rtB := sim.NewRealRuntime(), sim.NewRealRuntime()
	defer rtA.Stop()
	defer rtB.Stop()
	addr := deadAddr(t)
	a, err := NewTCPNode(TCPConfig{
		ID:             "a",
		Peers:          map[ring.NodeID]string{"b": addr},
		DialBackoff:    10 * time.Millisecond,
		DialBackoffMax: 80 * time.Millisecond,
		Logf:           func(string, ...any) {},
	}, rtA, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	g := a.group("b")
	for i := 0; i < 3; i++ {
		forceRedial(g)
		if _, err := a.streamTo("b"); err == nil {
			t.Fatalf("dial %d to dead address succeeded", i)
		}
	}
	if backoff, _, _ := backoffState(g); backoff != 40*time.Millisecond {
		t.Fatalf("pre-recovery backoff = %v, want 40ms", backoff)
	}

	// The peer comes up at the exact address the failed dials targeted.
	b, err := NewTCPNode(TCPConfig{ID: "b", Listen: addr, Logf: func(string, ...any) {}}, rtB, newSyncCapture())
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	forceRedial(g)
	if _, err := a.streamTo("b"); err != nil {
		t.Fatalf("dial to recovered peer: %v", err)
	}
	backoff, fails, dials := backoffState(g)
	if backoff != 0 {
		t.Fatalf("post-recovery backoff = %v, want 0 (reset)", backoff)
	}
	if dials != 1 {
		t.Fatalf("post-recovery dials = %d, want 1", dials)
	}
	if fails != 3 {
		t.Fatalf("dialFails rewrote history: %d, want 3", fails)
	}
	ps := a.PeerStats()
	if len(ps) != 1 || ps[0].Streams == 0 || ps[0].Dials != 1 || ps[0].DialFailures != 3 {
		t.Fatalf("PeerStats = %+v", ps)
	}
}

// TestCloseDuringBackoffReleasesFast: an endpoint closed while a peer sits
// in a long backoff window must tear down promptly, and subsequent sends
// must refuse instead of attempting to dial.
func TestCloseDuringBackoffReleasesFast(t *testing.T) {
	rt := sim.NewRealRuntime()
	defer rt.Stop()
	n, err := NewTCPNode(TCPConfig{
		ID:             "a",
		Peers:          map[ring.NodeID]string{"b": deadAddr(t)},
		DialBackoff:    time.Hour,
		DialBackoffMax: time.Hour,
		Logf:           func(string, ...any) {},
	}, rt, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.streamTo("b"); err == nil {
		t.Fatal("dial to dead address succeeded")
	}
	start := time.Now()
	if err := n.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if took := time.Since(start); took > 2*time.Second {
		t.Fatalf("close during backoff took %v", took)
	}
	if _, err := n.streamTo("b"); err != errClosed {
		t.Fatalf("streamTo after close: err = %v, want errClosed", err)
	}
}

package repair

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"harmony/internal/ring"
	"harmony/internal/sim"
	"harmony/internal/storage"
	"harmony/internal/transport"
	"harmony/internal/wire"
)

func testRing(t *testing.T, nodes int) (*ring.Ring, ring.Strategy) {
	t.Helper()
	infos := make([]ring.NodeInfo, 0, nodes)
	for i := 0; i < nodes; i++ {
		infos = append(infos, ring.NodeInfo{ID: ring.NodeID(fmt.Sprintf("n%d", i)), DC: "dc1", Rack: "r1"})
	}
	topo, err := ring.NewTopology(infos)
	if err != nil {
		t.Fatal(err)
	}
	rng, err := ring.Build(topo, 8)
	if err != nil {
		t.Fatal(err)
	}
	return rng, ring.SimpleStrategy{RF: nodes}
}

// pair wires two managers over a synchronous loopback fabric so a whole
// session runs to completion within one startSession call.
type pair struct {
	s        *sim.Sim
	ea, eb   *storage.Engine
	ma, mb   *Manager
	lb       *transport.Loopback
	aID, bID ring.NodeID
}

func newPair(t *testing.T, opts Options) *pair {
	return newPairOpts(t, opts, opts)
}

// newPairOpts allows asymmetric configurations (mismatched leaf counts).
func newPairOpts(t *testing.T, optsA, optsB Options) *pair {
	t.Helper()
	rng, strat := testRing(t, 2)
	s := sim.New(1)
	lb := transport.NewLoopback()
	p := &pair{s: s, lb: lb, aID: "n0", bID: "n1"}
	var ma, mb *Manager
	p.ea = storage.NewEngine(storage.Options{OnApply: func(k []byte, _ wire.Value) {
		if ma != nil {
			ma.Invalidate(k)
		}
	}})
	p.eb = storage.NewEngine(storage.Options{OnApply: func(k []byte, _ wire.Value) {
		if mb != nil {
			mb.Invalidate(k)
		}
	}})
	ma = NewManager(Config{Self: p.aID, Ring: rng, Strategy: strat, Engine: p.ea, Options: optsA}, s, lb)
	mb = NewManager(Config{Self: p.bID, Ring: rng, Strategy: strat, Engine: p.eb, Options: optsB}, s, lb)
	p.ma, p.mb = ma, mb
	lb.Register(p.aID, ma)
	lb.Register(p.bID, mb)
	return p
}

// dump renders an engine's full contents (tombstones included) for equality
// checks.
func dump(e *storage.Engine) string {
	out := ""
	e.ScanVersions(nil, nil, func(key []byte, v wire.Value) bool {
		out += fmt.Sprintf("%s|%d|%v|%x\n", key, v.Timestamp, v.Tombstone, v.Data)
		return true
	})
	return out
}

func TestLeafIndexStaysInBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 2000; trial++ {
		r := wire.TokenRange{Start: rng.Uint64(), End: rng.Uint64()}
		leaves := 1 + rng.Intn(32)
		s := span(r)
		if s == 0 {
			continue
		}
		off := rng.Uint64() % s
		tok := r.Start + 1 + off // modular: inside the arc by construction
		if !r.Contains(tok) {
			t.Fatalf("constructed token %d outside range %+v", tok, r)
		}
		idx := leafIndex(r, leaves, tok)
		if idx < 0 || idx >= leaves {
			t.Fatalf("leafIndex(%+v, %d, %d) = %d out of bounds", r, leaves, tok, idx)
		}
	}
}

func TestPlanSharedRangesAreSymmetric(t *testing.T) {
	rng, _ := testRing(t, 5)
	strat := ring.SimpleStrategy{RF: 3}
	plans := map[ring.NodeID]Plan{}
	for i := 0; i < 5; i++ {
		id := ring.NodeID(fmt.Sprintf("n%d", i))
		plans[id] = BuildPlan(rng, strat, id)
	}
	asSet := func(rs []wire.TokenRange) map[wire.TokenRange]bool {
		out := make(map[wire.TokenRange]bool, len(rs))
		for _, r := range rs {
			out[r] = true
		}
		return out
	}
	for a, pa := range plans {
		for b, shared := range pa.Shared {
			back := asSet(plans[b].Shared[a])
			if len(back) != len(shared) {
				t.Fatalf("asymmetric shared ranges: %s->%s %d vs %s->%s %d",
					a, b, len(shared), b, a, len(back))
			}
			for _, r := range shared {
				if !back[r] {
					t.Fatalf("range %+v in %s->%s but not %s->%s", r, a, b, b, a)
				}
			}
		}
	}
	// Every arc of the ring must be covered by RF plans.
	tokens := rng.Tokens()
	covered := map[wire.TokenRange]int{}
	for _, p := range plans {
		for _, r := range p.Ranges {
			covered[r]++
		}
	}
	if len(covered) != len(tokens) {
		t.Fatalf("expected %d arcs, plans cover %d", len(tokens), len(covered))
	}
	for r, n := range covered {
		if n != 3 {
			t.Fatalf("arc %+v replicated by %d plans, want RF=3", r, n)
		}
	}
}

func TestTreeCacheRebuildsOnlyInvalidatedRanges(t *testing.T) {
	rng, strat := testRing(t, 2)
	e := storage.NewEngine(storage.Options{})
	plan := BuildPlan(rng, strat, "n0")
	c := NewTreeCache(e, plan.Ranges, 8)
	for i := 0; i < 500; i++ {
		key := []byte(fmt.Sprintf("key%04d", i))
		if _, err := e.Apply(key, wire.Value{Data: []byte("v"), Timestamp: int64(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	c.Trees(plan.Ranges)
	builds1, scans1 := c.Builds()
	if builds1 != uint64(len(plan.Ranges)) {
		t.Fatalf("first Trees built %d ranges, want all %d", builds1, len(plan.Ranges))
	}
	if scans1 != 1 {
		t.Fatalf("first Trees took %d engine passes, want 1 (batched)", scans1)
	}
	// A quiescent second fetch rebuilds nothing.
	c.Trees(plan.Ranges)
	if builds2, _ := c.Builds(); builds2 != builds1 {
		t.Fatalf("quiescent Trees rebuilt %d ranges", builds2-builds1)
	}
	// One write invalidates exactly one range.
	key := []byte("key0007")
	if _, err := e.Apply(key, wire.Value{Data: []byte("w"), Timestamp: 10_000}); err != nil {
		t.Fatal(err)
	}
	c.Invalidate(key)
	before := c.Trees(plan.Ranges)
	builds3, _ := c.Builds()
	if builds3 != builds1+1 {
		t.Fatalf("after one invalidation Trees rebuilt %d ranges, want 1", builds3-builds1)
	}
	// And the rebuilt tree actually reflects the write.
	c2 := NewTreeCache(e, plan.Ranges, 8)
	fresh := c2.Trees(plan.Ranges)
	for i := range before {
		if before[i].Root != fresh[i].Root {
			t.Fatalf("cached tree %d diverged from fresh build", i)
		}
	}
}

// TestSessionMakesEnginesIdentical injects missing rows, stale rows, and a
// tombstone-vs-live conflict, then runs one session and expects both engines
// byte-identical (the acceptance criterion's convergence property).
func TestSessionMakesEnginesIdentical(t *testing.T) {
	p := newPair(t, Options{Enabled: true})
	base := p.s.Now().UnixNano()
	for i := 0; i < 400; i++ {
		key := []byte(fmt.Sprintf("user%07d", i))
		v := wire.Value{Data: []byte(fmt.Sprintf("common-%d", i)), Timestamp: base + int64(i)}
		p.ea.Apply(key, v)
		p.eb.Apply(key, v)
	}
	// A holds rows B misses, B holds newer versions of a few, and A deleted
	// one key B still serves.
	for i := 0; i < 12; i++ {
		key := []byte(fmt.Sprintf("only-a-%03d", i))
		p.ea.Apply(key, wire.Value{Data: []byte("a"), Timestamp: base + 1000 + int64(i)})
	}
	for i := 0; i < 7; i++ {
		key := []byte(fmt.Sprintf("user%07d", i*13))
		p.eb.Apply(key, wire.Value{Data: []byte("newer"), Timestamp: base + 2000 + int64(i)})
	}
	p.ea.Apply([]byte("user0000099"), wire.Value{Tombstone: true, Timestamp: base + 3000})

	if dump(p.ea) == dump(p.eb) {
		t.Fatal("fixture failed to diverge the engines")
	}
	p.ma.startSession(p.bID)
	if got, want := dump(p.ea), dump(p.eb); got != want {
		t.Fatalf("engines differ after session:\nA:\n%s\nB:\n%s", got, want)
	}
	st := p.ma.Stats()
	if st.SessionsCompleted != 1 {
		t.Fatalf("SessionsCompleted = %d, want 1", st.SessionsCompleted)
	}
	if st.RowsHealed == 0 || p.mb.Stats().RowsHealed == 0 {
		t.Fatalf("expected healing on both sides, got initiator=%d responder=%d",
			st.RowsHealed, p.mb.Stats().RowsHealed)
	}
	// A second session over converged engines finds nothing and streams
	// nothing.
	s1 := p.ma.Stats()
	p.ma.startSession(p.bID)
	s2 := p.ma.Stats()
	if s2.RowsStreamed != s1.RowsStreamed || s2.RangesDivergent != s1.RangesDivergent {
		t.Fatalf("converged session still streamed rows: %+v -> %+v", s1, s2)
	}
}

// TestBytesStreamedTracksDivergence is the acceptance property: streamed
// bytes grow with the injected divergence and stay far below the dataset
// size, because Merkle diffing localizes the transfer to divergent leaves.
func TestBytesStreamedTracksDivergence(t *testing.T) {
	const totalKeys = 3000
	const valueBytes = 64
	measure := func(divergent int) uint64 {
		// Fine leaves localize scattered divergence (an outage diverges rows
		// all over the token space, not in one contiguous arc).
		p := newPair(t, Options{Enabled: true, LeavesPerRange: 64})
		base := p.s.Now().UnixNano()
		payload := make([]byte, valueBytes)
		for i := 0; i < totalKeys; i++ {
			key := []byte(fmt.Sprintf("user%07d", i))
			v := wire.Value{Data: payload, Timestamp: base + int64(i)}
			p.ea.Apply(key, v)
			p.eb.Apply(key, v)
		}
		for i := 0; i < divergent; i++ {
			key := []byte(fmt.Sprintf("user%07d", i*(totalKeys/divergent)))
			p.eb.Apply(key, wire.Value{Data: payload, Timestamp: base + 100_000 + int64(i)})
		}
		p.ma.startSession(p.bID)
		st := p.ma.Stats()
		if st.SessionsCompleted != 1 {
			t.Fatalf("session did not complete: %+v", st)
		}
		if got, want := dump(p.ea), dump(p.eb); got != want {
			t.Fatal("engines differ after session")
		}
		return st.BytesStreamed + p.mb.Stats().BytesStreamed
	}

	small := measure(10)
	large := measure(100)
	if small == 0 || large == 0 {
		t.Fatalf("no bytes streamed (small=%d large=%d)", small, large)
	}
	if large < 3*small {
		t.Fatalf("10x divergence only grew bytes %.1fx (small=%d large=%d): not divergence-proportional",
			float64(large)/float64(small), small, large)
	}
	dataset := uint64(totalKeys * valueBytes)
	if large > dataset/2 {
		t.Fatalf("streamed %d bytes for 100 divergent rows of a %d-byte dataset: not localized", large, dataset)
	}
}

// TestZeroDivergenceStreamsNothing pins the no-op fast path.
func TestZeroDivergenceStreamsNothing(t *testing.T) {
	p := newPair(t, Options{Enabled: true})
	base := p.s.Now().UnixNano()
	for i := 0; i < 500; i++ {
		key := []byte(fmt.Sprintf("user%07d", i))
		v := wire.Value{Data: []byte("same"), Timestamp: base + int64(i)}
		p.ea.Apply(key, v)
		p.eb.Apply(key, v)
	}
	p.ma.startSession(p.bID)
	st := p.ma.Stats()
	if st.SessionsCompleted != 1 || st.RowsStreamed != 0 || st.BytesStreamed != 0 {
		t.Fatalf("identical engines still streamed: %+v", st)
	}
	if rb := p.mb.Stats().RowsStreamed; rb != 0 {
		t.Fatalf("responder streamed %d rows for identical engines", rb)
	}
}

// TestPeerRecoveredJumpsQueue verifies the recovery trigger starts a session
// with the recovered peer ahead of the round-robin order.
func TestPeerRecoveredJumpsQueue(t *testing.T) {
	rng, strat := testRing(t, 4)
	s := sim.New(3)
	lb := transport.NewLoopback()
	engines := map[ring.NodeID]*storage.Engine{}
	managers := map[ring.NodeID]*Manager{}
	for i := 0; i < 4; i++ {
		id := ring.NodeID(fmt.Sprintf("n%d", i))
		e := storage.NewEngine(storage.Options{})
		m := NewManager(Config{Self: id, Ring: rng, Strategy: strat, Engine: e,
			Options: Options{Enabled: true, Interval: time.Second, Concurrency: 1}}, s, lb)
		engines[id], managers[id] = e, m
		lb.Register(id, m)
	}
	m0 := managers["n0"]
	m0.PeerRecovered("n3")
	s.RunFor(10 * time.Millisecond)
	st := m0.Stats()
	if st.SessionsStarted != 1 || st.SessionsCompleted != 1 {
		t.Fatalf("recovery trigger did not run a session: %+v", st)
	}
	if _, busy := m0.byPeer["n3"]; busy {
		t.Fatal("session with n3 still marked active")
	}
}

// TestPeriodicSchedulerCyclesPeers runs the ticker and expects sessions with
// every peer over a full cycle, never exceeding the concurrency cap.
func TestPeriodicSchedulerCyclesPeers(t *testing.T) {
	rng, strat := testRing(t, 4)
	s := sim.New(4)
	lb := transport.NewLoopback()
	var mgr *Manager
	for i := 0; i < 4; i++ {
		id := ring.NodeID(fmt.Sprintf("n%d", i))
		e := storage.NewEngine(storage.Options{})
		m := NewManager(Config{Self: id, Ring: rng, Strategy: strat, Engine: e,
			Options: Options{Enabled: true, Interval: 100 * time.Millisecond, Concurrency: 2}}, s, lb)
		if i == 0 {
			mgr = m
		}
		lb.Register(id, m)
	}
	mgr.Start()
	defer mgr.Stop()
	s.RunFor(time.Second)
	st := mgr.Stats()
	if st.SessionsCompleted < 3 {
		t.Fatalf("expected at least one full cycle over 3 peers, completed %d", st.SessionsCompleted)
	}
}

// TestMismatchedLeafCountsStillConverge pins the heterogeneous-config path:
// the diff conservatively marks every leaf divergent when peers disagree on
// LeavesPerRange, and the responder selects reply rows at the initiator's
// resolution (RangeSync.LeafCount), so the session still converges both
// engines byte-identically.
func TestMismatchedLeafCountsStillConverge(t *testing.T) {
	p := newPairOpts(t,
		Options{Enabled: true, LeavesPerRange: 8},
		Options{Enabled: true, LeavesPerRange: 64})
	base := p.s.Now().UnixNano()
	for i := 0; i < 300; i++ {
		key := []byte(fmt.Sprintf("user%07d", i))
		v := wire.Value{Data: []byte("common"), Timestamp: base + int64(i)}
		p.ea.Apply(key, v)
		p.eb.Apply(key, v)
	}
	// Divergence in both directions.
	for i := 0; i < 9; i++ {
		p.ea.Apply([]byte(fmt.Sprintf("only-a-%02d", i)), wire.Value{Data: []byte("a"), Timestamp: base + 1000 + int64(i)})
		p.eb.Apply([]byte(fmt.Sprintf("user%07d", i*17)), wire.Value{Data: []byte("newer"), Timestamp: base + 2000 + int64(i)})
	}
	p.ma.startSession(p.bID)
	if got, want := dump(p.ea), dump(p.eb); got != want {
		t.Fatalf("engines differ after mismatched-leaf session:\nA:\n%s\nB:\n%s", got, want)
	}
	if p.ma.Stats().SessionsCompleted != 1 {
		t.Fatalf("session did not complete: %+v", p.ma.Stats())
	}
	// And in the other direction (the 64-leaf node initiating).
	p.eb.Apply([]byte("late-b"), wire.Value{Data: []byte("b"), Timestamp: base + 3000})
	p.mb.startSession(p.aID)
	if got, want := dump(p.ea), dump(p.eb); got != want {
		t.Fatal("engines differ after reverse mismatched-leaf session")
	}
}

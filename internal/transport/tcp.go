package transport

import (
	"errors"
	"fmt"
	"log"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"harmony/internal/ring"
	"harmony/internal/sim"
	"harmony/internal/wire"
)

// The TCP backend runs the same wire protocol as the simulated fabric over
// real connections. Every stream starts with a hello frame naming the
// remote endpoint — encoded as a wire.GossipSyn whose From field carries the
// dialer's ID with no digests, reusing the codec instead of inventing a
// second framing — after which raw frames flow both ways.
//
// The hot path is built around three ideas:
//
//   - Write coalescing: senders encode into pooled scratch and append to a
//     per-stream pending buffer; a flusher goroutine drains whatever has
//     accumulated into ONE conn.Write. Under load, many small frames
//     collapse into a single syscall; idle, the flusher wakes per frame and
//     latency matches the old frame-per-write path.
//   - Zero-copy receive: each connection runs a wire.FrameReader — frames
//     land in owned pooled buffers, decode via DecodeShared (byte fields
//     borrow from the buffer), and the buffer is recycled only after the
//     handler's post completes. Fields that escape delivery are copied by
//     promote (see promote.go) before the message crosses goroutines.
//   - Pooled streams + redial: an endpoint keeps up to Streams parallel
//     connections per peer, picking the least-backlogged for each send so a
//     head-of-line-blocked stream doesn't stall independent requests. Dead
//     connections are dropped on the first error and redialed on demand
//     with capped exponential backoff; sends during backoff drop fast, like
//     packet loss, leaving recovery to protocol timeouts.

// TCPConfig configures a TCP endpoint.
type TCPConfig struct {
	// ID is this endpoint's logical name.
	ID ring.NodeID
	// Listen is the local address ("host:port"); empty disables accepting
	// (pure client endpoints).
	Listen string
	// Peers maps endpoint IDs to dialable addresses.
	Peers map[ring.NodeID]string
	// Logf receives connection diagnostics; nil uses log.Printf.
	Logf func(string, ...any)
	// Streams is how many parallel connections this endpoint dials per
	// peer; zero means 1. Extra streams pipeline independent requests past
	// a slow response at the cost of per-peer FIFO ordering (the protocol
	// tolerates reordering — the simulated fabric delivers with random
	// delays — but single-stream peers keep strict order).
	Streams int
	// NoBatch disables write coalescing: every frame is written to the
	// kernel individually, the pre-batching behavior. Benchmarks use it to
	// measure what coalescing buys; production configs leave it false.
	NoBatch bool
	// MaxPending caps one stream's unflushed bytes; enqueues past the cap
	// drop the frame (counted, like packet loss under overload). Zero
	// means 4 MiB.
	MaxPending int
	// DialTimeout bounds one dial attempt; zero means 2s.
	DialTimeout time.Duration
	// DialBackoff is the first redial delay after a failed dial and
	// DialBackoffMax the cap it doubles toward. Zero means 50ms and 2s.
	DialBackoff    time.Duration
	DialBackoffMax time.Duration
}

// TCPStats is a snapshot of an endpoint's transport counters.
type TCPStats struct {
	FramesSent     uint64 // frames accepted for transmission
	FramesDropped  uint64 // frames dropped (backlog cap, dead peer, backoff)
	FramesReceived uint64 // frames decoded and posted to the handler
	BytesSent      uint64 // payload bytes handed to the kernel
	Batches        uint64 // conn.Write calls issued by flushers
	Dials          uint64 // successful outbound dials
	DialFailures   uint64 // failed outbound dials
}

// TCPNode serves a transport endpoint over real TCP: it accepts connections
// from peers and clients, decodes frames into pooled buffers, and posts
// messages to the handler's runtime. Outbound sends go through a per-peer
// stream pool that batches writes and redials dead connections.
type TCPNode struct {
	id   ring.NodeID
	rt   sim.Runtime
	ln   net.Listener
	logf func(string, ...any)

	streamsPerPeer int
	noBatch        bool
	maxPending     int
	dialTimeout    time.Duration
	backoffMin     time.Duration
	backoffMax     time.Duration

	framesSent     atomic.Uint64
	framesDropped  atomic.Uint64
	framesReceived atomic.Uint64
	bytesSent      atomic.Uint64
	batches        atomic.Uint64
	dials          atomic.Uint64
	dialFailures   atomic.Uint64

	mu      sync.Mutex
	handler Handler
	peers   map[ring.NodeID]string // static address book
	groups  map[ring.NodeID]*peerGroup
	closed  bool
}

// peerGroup is the stream pool for one peer: every live connection to or
// from that peer (dialed and accepted alike), plus redial backoff state.
type peerGroup struct {
	id ring.NodeID

	mu        sync.Mutex
	streams   []*stream
	backoff   time.Duration
	nextDial  time.Time
	dials     uint64 // successful dials to this peer (redials after the first)
	dialFails uint64 // failed dial attempts to this peer
}

// stream is one TCP connection: a pending write buffer drained by a flusher
// goroutine and a reader goroutine pumping inbound frames.
type stream struct {
	n      *TCPNode
	peer   ring.NodeID
	c      net.Conn
	wake   chan struct{} // cap 1: flusher doorbell
	done   chan struct{}
	closer sync.Once

	mu      sync.Mutex
	pending []byte // frames awaiting flush
	spare   []byte // the flusher's previous batch, recycled
	err     error  // first fatal error; stream is dead once set
}

// NewTCPNode starts listening (when configured) and returns the endpoint.
// The handler's callbacks run on rt, preserving the single-threaded actor
// contract. A nil handler drops inbound messages until SetHandler binds one
// — endpoints whose handler needs the TCPNode as its Sender construct with
// nil and rebind; messages arriving in the window are lost like packets.
func NewTCPNode(cfg TCPConfig, rt sim.Runtime, h Handler) (*TCPNode, error) {
	n := &TCPNode{
		id:             cfg.ID,
		rt:             rt,
		logf:           cfg.Logf,
		handler:        h,
		streamsPerPeer: cfg.Streams,
		noBatch:        cfg.NoBatch,
		maxPending:     cfg.MaxPending,
		dialTimeout:    cfg.DialTimeout,
		backoffMin:     cfg.DialBackoff,
		backoffMax:     cfg.DialBackoffMax,
		peers:          make(map[ring.NodeID]string, len(cfg.Peers)),
		groups:         make(map[ring.NodeID]*peerGroup),
	}
	if n.logf == nil {
		n.logf = log.Printf
	}
	if n.streamsPerPeer <= 0 {
		n.streamsPerPeer = 1
	}
	if n.maxPending <= 0 {
		n.maxPending = 4 << 20
	}
	if n.dialTimeout <= 0 {
		n.dialTimeout = 2 * time.Second
	}
	if n.backoffMin <= 0 {
		n.backoffMin = 50 * time.Millisecond
	}
	if n.backoffMax <= 0 {
		n.backoffMax = 2 * time.Second
	}
	for id, addr := range cfg.Peers {
		n.peers[id] = addr
	}
	if cfg.Listen != "" {
		ln, err := net.Listen("tcp", cfg.Listen)
		if err != nil {
			return nil, fmt.Errorf("transport: listen %s: %w", cfg.Listen, err)
		}
		n.ln = ln
		go n.acceptLoop()
	}
	return n, nil
}

// SetHandler rebinds the inbound message handler.
func (n *TCPNode) SetHandler(h Handler) {
	n.mu.Lock()
	n.handler = h
	n.mu.Unlock()
}

func (n *TCPNode) currentHandler() Handler {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.handler
}

// Addr returns the bound listen address (nil when not listening).
func (n *TCPNode) Addr() net.Addr {
	if n.ln == nil {
		return nil
	}
	return n.ln.Addr()
}

// AddPeer registers (or updates) a peer address.
func (n *TCPNode) AddPeer(id ring.NodeID, addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.peers[id] = addr
}

// Stats snapshots the endpoint's transport counters.
func (n *TCPNode) Stats() TCPStats {
	return TCPStats{
		FramesSent:     n.framesSent.Load(),
		FramesDropped:  n.framesDropped.Load(),
		FramesReceived: n.framesReceived.Load(),
		BytesSent:      n.bytesSent.Load(),
		Batches:        n.batches.Load(),
		Dials:          n.dials.Load(),
		DialFailures:   n.dialFailures.Load(),
	}
}

// PeerStat is one peer's live send-side state: pool size, queued (unflushed)
// bytes across the pool's pending buffers, and this peer's dial history.
type PeerStat struct {
	Peer         ring.NodeID
	Streams      int
	PendingBytes int
	Dials        uint64
	DialFailures uint64
}

// PeerStats snapshots per-peer send-queue depth, sorted by peer id. The
// pending-byte reads take each stream's lock briefly; queue depth is the
// backpressure gauge (bytes appended but not yet handed to the kernel).
func (n *TCPNode) PeerStats() []PeerStat {
	n.mu.Lock()
	groups := make([]*peerGroup, 0, len(n.groups))
	for _, g := range n.groups {
		groups = append(groups, g)
	}
	n.mu.Unlock()
	out := make([]PeerStat, 0, len(groups))
	for _, g := range groups {
		g.mu.Lock()
		ps := PeerStat{Peer: g.id, Streams: len(g.streams), Dials: g.dials, DialFailures: g.dialFails}
		streams := append([]*stream(nil), g.streams...)
		g.mu.Unlock()
		for _, st := range streams {
			st.mu.Lock()
			ps.PendingBytes += len(st.pending)
			st.mu.Unlock()
		}
		out = append(out, ps)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Peer < out[j].Peer })
	return out
}

func (n *TCPNode) acceptLoop() {
	for {
		c, err := n.ln.Accept()
		if err != nil {
			n.mu.Lock()
			closed := n.closed
			n.mu.Unlock()
			if !closed {
				n.logf("transport %s: accept: %v", n.id, err)
			}
			return
		}
		go n.serveConn(c)
	}
}

// serveConn reads the hello frame, joins the connection to the peer's
// stream pool (replies ride it — clients need no listener), then pumps
// inbound frames.
func (n *TCPNode) serveConn(c net.Conn) {
	fr := wire.NewFrameReader(c)
	hello, f, err := fr.Next()
	if err != nil {
		_ = c.Close()
		return
	}
	syn, ok := hello.(wire.GossipSyn)
	f.Release() // GossipSyn decodes into fresh strings; nothing aliases
	if !ok || syn.From == "" {
		n.logf("transport %s: bad hello from %s", n.id, c.RemoteAddr())
		_ = c.Close()
		return
	}
	from := ring.NodeID(syn.From)
	st := n.newStream(from, c)
	if st == nil { // endpoint closed
		_ = c.Close()
		return
	}
	g := n.group(from)
	g.mu.Lock()
	g.streams = append(g.streams, st)
	g.mu.Unlock()
	// Re-check after publication: a Close racing the hello exchange has
	// already swapped the group map and would never see this stream.
	n.mu.Lock()
	closed := n.closed
	n.mu.Unlock()
	if closed {
		st.close()
		return
	}
	n.readFrames(fr, st)
}

// newStream wires a connection into a stream and starts its flusher. The
// caller owns starting/driving the read side.
func (n *TCPNode) newStream(peer ring.NodeID, c net.Conn) *stream {
	n.mu.Lock()
	closed := n.closed
	n.mu.Unlock()
	if closed {
		return nil
	}
	st := &stream{
		n:    n,
		peer: peer,
		c:    c,
		wake: make(chan struct{}, 1),
		done: make(chan struct{}),
	}
	if !n.noBatch {
		go st.flushLoop()
	}
	return st
}

// group returns (creating on demand) the peer's stream pool.
func (n *TCPNode) group(peer ring.NodeID) *peerGroup {
	n.mu.Lock()
	defer n.mu.Unlock()
	g := n.groups[peer]
	if g == nil {
		g = &peerGroup{id: peer}
		n.groups[peer] = g
	}
	return g
}

// Send implements Sender. Errors are handled like packet loss: logged,
// counted, and dropped, leaving recovery to protocol timeouts — but unlike
// the old dial-once transport, a send error also tears the stream down so
// the next send redials instead of failing forever against a poisoned
// cached connection.
//
// The frame is encoded into pooled scratch before any lock is taken;
// concurrent senders contend only on the cheap pending-buffer append.
func (n *TCPNode) Send(from, to ring.NodeID, m wire.Message) {
	if to == n.id {
		// Loopback fast path: a node sending to itself (a coordinator that
		// is a replica of the key, gossip bookkeeping) skips the codec and
		// the kernel entirely and delivers like the in-memory fabrics do —
		// the message is caller-owned, the ownership contract those fabrics
		// already impose on handlers, so no promotion is needed.
		n.rt.Post(func() {
			if h := n.currentHandler(); h != nil {
				h.Deliver(from, m)
			}
		})
		return
	}
	st, err := n.streamTo(to)
	if err != nil {
		n.framesDropped.Add(1)
		n.logf("transport %s: send to %s: %v", n.id, to, err)
		return
	}
	buf, err := wire.GetFrame(m)
	if err != nil {
		n.framesDropped.Add(1)
		n.logf("transport %s: encode for %s: %v", n.id, to, err)
		return
	}
	err = st.enqueue(*buf)
	wire.PutFrame(buf)
	if err != nil {
		n.framesDropped.Add(1)
		n.logf("transport %s: write to %s: %v", n.id, to, err)
		n.dropStream(st)
	}
}

var (
	errUnknownPeer = errors.New("unknown peer")
	errBackoff     = errors.New("peer in dial backoff")
	errClosed      = errors.New("endpoint closed")
)

// streamTo picks the best live stream to a peer, dialing a new one when the
// pool is below target and not backing off.
func (n *TCPNode) streamTo(to ring.NodeID) (*stream, error) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil, errClosed
	}
	addr, haveAddr := n.peers[to]
	n.mu.Unlock()

	g := n.group(to)
	g.mu.Lock()
	defer g.mu.Unlock()
	g.prune()
	if len(g.streams) < n.streamsPerPeer && haveAddr && time.Now().After(g.nextDial) {
		st, err := n.dial(to, addr)
		if err != nil {
			n.dialFailures.Add(1)
			g.dialFails++
			if g.backoff <= 0 {
				g.backoff = n.backoffMin
			} else if g.backoff < n.backoffMax {
				g.backoff = min(2*g.backoff, n.backoffMax)
			}
			g.nextDial = time.Now().Add(g.backoff)
			if len(g.streams) == 0 {
				return nil, err
			}
		} else {
			n.dials.Add(1)
			g.dials++
			g.backoff = 0
			g.nextDial = time.Time{}
			g.streams = append(g.streams, st)
		}
	}
	if len(g.streams) == 0 {
		if !haveAddr {
			return nil, errUnknownPeer
		}
		return nil, errBackoff
	}
	return g.pick(n.streamsPerPeer), nil
}

// prune drops dead streams from the pool (their goroutines have already
// torn the connection down; this just forgets them).
func (g *peerGroup) prune() {
	live := g.streams[:0]
	for _, st := range g.streams {
		if st.alive() {
			live = append(live, st)
		}
	}
	for i := len(live); i < len(g.streams); i++ {
		g.streams[i] = nil
	}
	g.streams = live
}

// pick selects the send stream: with a single-stream target the first (and
// normally only) stream, keeping per-peer FIFO; with a pooled target the
// least-backlogged stream, so one slow consumer doesn't head-of-line-block
// the rest — the in-flight tracking that makes pipelining pay.
func (g *peerGroup) pick(target int) *stream {
	if target <= 1 || len(g.streams) == 1 {
		return g.streams[0]
	}
	best, bestLoad := g.streams[0], g.streams[0].backlog()
	for _, st := range g.streams[1:] {
		if l := st.backlog(); l < bestLoad {
			best, bestLoad = st, l
		}
	}
	return best
}

// dial opens a connection to a peer, sends the hello frame, and starts the
// stream's goroutines.
func (n *TCPNode) dial(to ring.NodeID, addr string) (*stream, error) {
	raw, err := net.DialTimeout("tcp", addr, n.dialTimeout)
	if err != nil {
		return nil, err
	}
	hello, err := wire.GetFrame(wire.GossipSyn{From: string(n.id)})
	if err != nil {
		_ = raw.Close()
		return nil, err
	}
	_, err = raw.Write(*hello)
	wire.PutFrame(hello)
	if err != nil {
		_ = raw.Close()
		return nil, err
	}
	st := n.newStream(to, raw)
	if st == nil {
		_ = raw.Close()
		return nil, errClosed
	}
	go n.readFrames(wire.NewFrameReader(raw), st)
	return st, nil
}

// readFrames pumps one connection's inbound frames to the handler. Each
// message rides its own pooled buffer: escaping fields are promoted to
// owned copies here, and the buffer is recycled only after the handler's
// post has run — the DecodeShared contract, end to end.
func (n *TCPNode) readFrames(fr *wire.FrameReader, st *stream) {
	for {
		m, f, err := fr.Next()
		if err != nil {
			n.dropStream(st)
			return
		}
		n.framesReceived.Add(1)
		msg := promote(m)
		from := st.peer
		n.rt.Post(func() {
			if h := n.currentHandler(); h != nil {
				h.Deliver(from, msg)
			}
			f.Release()
		})
	}
}

// dropStream tears a stream down and forgets it, so the next send redials.
func (n *TCPNode) dropStream(st *stream) {
	st.close()
	n.mu.Lock()
	g := n.groups[st.peer]
	n.mu.Unlock()
	if g == nil {
		return
	}
	g.mu.Lock()
	g.prune()
	g.mu.Unlock()
}

// Close shuts the listener and all connections.
func (n *TCPNode) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	groups := n.groups
	n.groups = make(map[ring.NodeID]*peerGroup)
	n.mu.Unlock()
	for _, g := range groups {
		g.mu.Lock()
		streams := append([]*stream(nil), g.streams...)
		g.streams = nil
		g.mu.Unlock()
		for _, st := range streams {
			st.close()
		}
	}
	if n.ln != nil {
		return n.ln.Close()
	}
	return nil
}

// enqueue hands one encoded frame to the stream. In batching mode it
// appends to the pending buffer (copying out of the caller's pooled
// scratch) and rings the flusher; in NoBatch mode it writes the frame
// directly, the pre-coalescing behavior. Frames beyond the backlog cap are
// dropped like packets lost to a full queue — the error return is reserved
// for a dead stream, which tells the caller to drop it and redial.
func (st *stream) enqueue(frame []byte) error {
	if st.n.noBatch {
		st.mu.Lock()
		if st.err != nil {
			err := st.err
			st.mu.Unlock()
			return err
		}
		_, err := st.c.Write(frame)
		if err != nil {
			st.err = err
		}
		st.mu.Unlock()
		if err == nil {
			st.n.framesSent.Add(1)
			st.n.batches.Add(1)
			st.n.bytesSent.Add(uint64(len(frame)))
		}
		return err
	}
	st.mu.Lock()
	if st.err != nil {
		err := st.err
		st.mu.Unlock()
		return err
	}
	if len(st.pending)+len(frame) > st.n.maxPending {
		st.mu.Unlock()
		st.n.framesDropped.Add(1)
		return nil
	}
	st.pending = append(st.pending, frame...)
	st.mu.Unlock()
	st.n.framesSent.Add(1)
	select {
	case st.wake <- struct{}{}:
	default:
	}
	return nil
}

// backlog is the stream's unflushed byte count, the load signal pick uses.
func (st *stream) backlog() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.pending)
}

func (st *stream) alive() bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.err == nil
}

// maxRetainedBatch bounds the flusher's recycled batch buffer; a burst that
// ballooned past it is returned to the allocator rather than pinned.
const maxRetainedBatch = 1 << 20

// flushLoop drains the pending buffer into single writes. Senders append
// while a flush is in flight — the two buffers swap roles each round — so
// under load each conn.Write carries every frame that arrived during the
// previous syscall: batching that adapts to the consumer's speed with no
// timers and no added latency when idle.
func (st *stream) flushLoop() {
	for {
		select {
		case <-st.done:
			return
		case <-st.wake:
		}
		for {
			st.mu.Lock()
			if len(st.pending) == 0 || st.err != nil {
				st.mu.Unlock()
				break
			}
			batch := st.pending
			st.pending = st.spare[:0]
			st.spare = nil
			st.mu.Unlock()

			_, err := st.c.Write(batch)

			st.mu.Lock()
			if cap(batch) <= maxRetainedBatch {
				st.spare = batch[:0]
			}
			if err != nil {
				if st.err == nil {
					st.err = err
				}
				st.pending = nil
				st.mu.Unlock()
				st.n.dropStream(st)
				return
			}
			st.mu.Unlock()
			st.n.batches.Add(1)
			st.n.bytesSent.Add(uint64(len(batch)))
		}
	}
}

// close marks the stream dead and closes the connection; safe to call from
// any goroutine, any number of times.
func (st *stream) close() {
	st.closer.Do(func() {
		st.mu.Lock()
		if st.err == nil {
			st.err = net.ErrClosed
		}
		st.pending = nil
		st.mu.Unlock()
		close(st.done)
		_ = st.c.Close()
	})
}

var _ Sender = (*TCPNode)(nil)

package bench

import (
	"strings"
	"testing"
	"time"

	"harmony/internal/obs"
)

// passingPartitionResult returns a synthetic result that satisfies every pin.
func passingPartitionResult() PartitionResult {
	return PartitionResult{
		Backend:           "sim",
		Nodes:             6,
		RF:                5,
		BaselineTputOps:   5000,
		CutTputOps:        4600,
		AvailabilityRatio: 0.92,
		ProbeBaseline: PartitionProbe{
			OneOK: 40, QuorumOK: 40, WriteOK: 40, DeadlineMs: 750,
		},
		ProbeCut: PartitionProbe{
			OneOK: 90, OneErr: 8,
			QuorumErr: 98, WriteErr: 98,
			WorstQuorumErrMs: 780, DeadlineMs: 750,
		},
		Holds: 2,
		Groups: []ChurnGroup{
			{Name: "hot", Tolerance: 0.05, RecoveredWithinMs: 1200, TailFraction: 0.01},
			{Name: "cold", Tolerance: 0.30, RecoveredWithinMs: 2400, TailFraction: 0.04},
		},
	}
}

func TestCheckPartitionPasses(t *testing.T) {
	if v := CheckPartition(passingPartitionResult()); len(v) != 0 {
		t.Fatalf("clean result flagged: %v", v)
	}
	// A live-shaped result with a bounded detection window also passes.
	r := passingPartitionResult()
	r.Backend = "live"
	r.DetectBoundMs, r.DetectMs = 5000, 2800
	if v := CheckPartition(r); len(v) != 0 {
		t.Fatalf("live result with in-bound detection flagged: %v", v)
	}
}

// TestCheckPartitionCatchesViolations mutates the passing result one pin at
// a time and asserts each mutation is flagged with a recognizable message.
func TestCheckPartitionCatchesViolations(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*PartitionResult)
		keyword string
	}{
		{"availability", func(r *PartitionResult) { r.AvailabilityRatio = 0.5 }, "availability ratio"},
		{"one-dark", func(r *PartitionResult) { r.ProbeCut.OneOK = 0 }, "no CL=ONE"},
		{"one-degraded", func(r *PartitionResult) { r.ProbeCut.OneErr = 90 }, "CL=ONE availability"},
		{"split-brain", func(r *PartitionResult) { r.ProbeCut.QuorumOK = 3 }, "split brain"},
		{"no-refusals", func(r *PartitionResult) {
			r.ProbeCut.QuorumErr, r.ProbeCut.WriteErr = 0, 0
		}, "never bit"},
		{"hang", func(r *PartitionResult) { r.ProbeCut.WorstQuorumErrMs = 5000 }, "fail-fast"},
		{"never-recovered", func(r *PartitionResult) { r.Groups[1].RecoveredWithinMs = -1 }, "never re-converged"},
		{"tail-stale", func(r *PartitionResult) { r.Groups[0].TailFraction = 0.2 }, "tail staleness"},
		{"no-holds", func(r *PartitionResult) { r.Holds = 0 }, "divergence holds"},
		{"baseline-dead", func(r *PartitionResult) { r.ProbeBaseline.QuorumOK = 0 }, "baseline probe"},
		{"slow-detection", func(r *PartitionResult) {
			r.DetectBoundMs, r.DetectMs = 4000, 6500
		}, "detection"},
		{"never-convicted", func(r *PartitionResult) {
			r.DetectBoundMs, r.DetectMs = 4000, -1
		}, "detection"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := passingPartitionResult()
			tc.mutate(&r)
			v := CheckPartition(r)
			if len(v) == 0 {
				t.Fatalf("mutation not flagged")
			}
			found := false
			for _, msg := range v {
				if strings.Contains(msg, tc.keyword) {
					found = true
				}
			}
			if !found {
				t.Fatalf("violations %v do not mention %q", v, tc.keyword)
			}
		})
	}
}

// TestCheckPartitionHoldsPinIsSimOnly: live timing is too noisy to demand a
// recorded hold, so only the deterministic backend pins it.
func TestCheckPartitionHoldsPinIsSimOnly(t *testing.T) {
	r := passingPartitionResult()
	r.Backend = "live"
	r.Holds = 0
	if v := CheckPartition(r); len(v) != 0 {
		t.Fatalf("live result without holds flagged: %v", v)
	}
}

func TestCountHolds(t *testing.T) {
	events := []obs.Event{
		{Kind: obs.EventLevel},
		{Kind: obs.EventDivergenceHold},
		{Kind: obs.EventDivergenceRelease},
		{Kind: obs.EventDivergenceHold},
	}
	if n := countHolds(events); n != 2 {
		t.Fatalf("countHolds = %d, want 2", n)
	}
}

// TestPartitionSim drives a scaled-down simulated partition end to end and
// requires the full checker contract to hold: majority availability, honest
// minority unavailability at quorum with CL=ONE still served, fail-fast
// refusals, divergence holds, post-heal re-convergence.
func TestPartitionSim(t *testing.T) {
	if testing.Short() {
		t.Skip("partition sim experiment is seconds of virtual time")
	}
	spec := DefaultPartitionSpec()
	spec.TotalKeys = 2000
	spec.HotKeys = 200
	spec.HotThreads, spec.ColdThreads = 4, 8
	spec.HotArrival, spec.ColdArrival = 600, 1500
	spec.Baseline = 1500 * time.Millisecond
	spec.Cut = 4 * time.Second
	spec.PostWatch = 8 * time.Second
	res, err := Partition(spec, Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if v := CheckPartition(res); len(v) != 0 {
		t.Fatalf("partition contract violated:\n  %s\n%s", strings.Join(v, "\n  "), res.Format())
	}
	if res.ProbeCut.QuorumErr == 0 || res.ProbeCut.WriteErr == 0 {
		t.Fatalf("cut probe did not exercise quorum refusals: %+v", res.ProbeCut)
	}
	if len(res.Trace) == 0 {
		t.Fatal("decision trace is empty")
	}
}

package cluster

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"harmony/internal/client"
	"harmony/internal/dist"
	"harmony/internal/ring"
	"harmony/internal/sim"
	"harmony/internal/simnet"
	"harmony/internal/wire"
)

// testHarness bundles a simulated cluster with a client driver.
type testHarness struct {
	s   *sim.Sim
	c   *Cluster
	drv *client.Driver
}

func newHarness(t *testing.T, spec Spec, clientOpts client.Options) *testHarness {
	t.Helper()
	s := sim.New(1234)
	c, err := BuildSim(s, spec)
	if err != nil {
		t.Fatal(err)
	}
	if clientOpts.ID == "" {
		clientOpts.ID = "client-0"
	}
	if clientOpts.Coordinators == nil {
		clientOpts.Coordinators = c.NodeIDs()
	}
	drv, err := client.New(clientOpts, s, c.Bus)
	if err != nil {
		t.Fatal(err)
	}
	c.Bus.Register(clientOpts.ID, s, drv)
	return &testHarness{s: s, c: c, drv: drv}
}

// write synchronously performs a write and returns its result.
func (h *testHarness) write(t *testing.T, key, value string) client.WriteResult {
	t.Helper()
	var res client.WriteResult
	done := false
	h.drv.Write([]byte(key), []byte(value), func(r client.WriteResult) {
		res = r
		done = true
	})
	h.s.RunFor(5 * time.Second)
	if !done {
		t.Fatalf("write %q did not complete", key)
	}
	return res
}

func (h *testHarness) read(t *testing.T, key string, level wire.ConsistencyLevel) client.ReadResult {
	t.Helper()
	var res client.ReadResult
	done := false
	h.drv.ReadAt([]byte(key), level, func(r client.ReadResult) {
		res = r
		done = true
	})
	h.s.RunFor(5 * time.Second)
	if !done {
		t.Fatalf("read %q did not complete", key)
	}
	return res
}

func TestWriteThenStrongRead(t *testing.T) {
	h := newHarness(t, DefaultSpec(), client.Options{Policy: client.Fixed{Write: wire.One}})
	if res := h.write(t, "user1", "hello"); res.Err != nil {
		t.Fatalf("write: %v", res.Err)
	}
	res := h.read(t, "user1", wire.All)
	if res.Err != nil || !res.Found || string(res.Value) != "hello" {
		t.Fatalf("strong read = %+v", res)
	}
}

func TestReadMissingKey(t *testing.T) {
	h := newHarness(t, DefaultSpec(), client.Options{})
	res := h.read(t, "ghost", wire.One)
	if res.Err != nil {
		t.Fatalf("read err: %v", res.Err)
	}
	if res.Found {
		t.Fatal("missing key reported found")
	}
}

func TestDeleteTombstones(t *testing.T) {
	h := newHarness(t, DefaultSpec(), client.Options{Policy: client.Fixed{Write: wire.All}})
	h.write(t, "k", "v")
	var res client.WriteResult
	h.drv.Delete([]byte("k"), func(r client.WriteResult) { res = r })
	h.s.RunFor(5 * time.Second)
	if res.Err != nil {
		t.Fatalf("delete: %v", res.Err)
	}
	got := h.read(t, "k", wire.All)
	if got.Found {
		t.Fatalf("deleted key still found: %+v", got)
	}
}

func TestQuorumIntersectionFreshness(t *testing.T) {
	// R+W > N guarantees a read observes the latest acknowledged write.
	// With W=QUORUM and R=QUORUM on RF=5 (3+3 > 5), reads must always be
	// fresh no matter the interleaving.
	h := newHarness(t, DefaultSpec(), client.Options{Policy: client.Fixed{Write: wire.Quorum}})
	for i := 0; i < 30; i++ {
		want := fmt.Sprintf("v%d", i)
		if res := h.write(t, "counter", want); res.Err != nil {
			t.Fatalf("write %d: %v", i, res.Err)
		}
		res := h.read(t, "counter", wire.Quorum)
		if res.Err != nil || string(res.Value) != want {
			t.Fatalf("iteration %d: quorum read = %q (err %v), want %q", i, res.Value, res.Err, want)
		}
	}
}

// delayPropagation arranges a deterministic staleness window for key: the
// write coordinator's links to all other replicas are degraded by extra, so
// a ONE write acks from the coordinator's local replica while the rest keep
// the old version for ~extra. It returns the write coordinator (also a
// replica of the key) and a reader coordinator that is a different replica.
func delayPropagation(t *testing.T, h *testHarness, key string, extra time.Duration) (writer, reader ring.NodeID) {
	t.Helper()
	reps := ring.ReplicasForKey(h.c.Ring, h.c.Strategy, []byte(key))
	if len(reps) < 2 {
		t.Fatalf("key %q has %d replicas", key, len(reps))
	}
	writer = reps[0]
	reader = reps[1]
	for _, other := range h.c.NodeIDs() {
		if other != writer {
			h.c.Net.Degrade(writer, other, extra)
		}
	}
	return writer, reader
}

func TestEventualReadMayBeStaleThenConverges(t *testing.T) {
	// With W=ONE, a read at ONE racing update propagation observes the old
	// version; after propagation quiesces it must observe the new one.
	spec := DefaultSpec()
	h := newHarness(t, spec, client.Options{Policy: client.Fixed{Write: wire.One}})
	h.write(t, "k", "old")
	h.s.RunFor(time.Second) // quiesce propagation

	writer, reader := delayPropagation(t, h, "k", 500*time.Millisecond)

	// Write "new" through the delayed coordinator: it acks from its own
	// replica while the others still hold "old".
	wdrv, err := client.New(client.Options{ID: "w", Coordinators: []ring.NodeID{writer}, Policy: client.Fixed{Write: wire.One}}, h.s, h.c.Bus)
	if err != nil {
		t.Fatal(err)
	}
	h.c.Bus.Register("w", h.s, wdrv)
	rdrv, err := client.New(client.Options{ID: "r", Coordinators: []ring.NodeID{reader}}, h.s, h.c.Bus)
	if err != nil {
		t.Fatal(err)
	}
	h.c.Bus.Register("r", h.s, rdrv)

	wdone := false
	wdrv.Write([]byte("k"), []byte("new"), func(r client.WriteResult) {
		if r.Err != nil {
			t.Errorf("write: %v", r.Err)
		}
		wdone = true
	})
	for !wdone {
		if !h.s.Step() {
			t.Fatal("write stalled")
		}
	}
	// Read at ONE via the other coordinator: its fastest responder is its
	// own replica, which has not yet seen "new".
	var res client.ReadResult
	rdone := false
	rdrv.ReadAt([]byte("k"), wire.One, func(r client.ReadResult) { res = r; rdone = true })
	for !rdone {
		if !h.s.Step() {
			t.Fatal("read stalled")
		}
	}
	if res.Err != nil || string(res.Value) != "old" {
		t.Fatalf("racing ONE read = %q (err %v), want the stale value old", res.Value, res.Err)
	}
	// Convergence: once the delayed mutations land, ONE reads see "new".
	h.c.Net.ClearDegradations()
	h.s.RunFor(2 * time.Second)
	after := h.read(t, "k", wire.One)
	if string(after.Value) != "new" {
		t.Fatalf("after quiesce read = %q, want new", after.Value)
	}
}

func TestReadRepairConvergesReplicas(t *testing.T) {
	spec := DefaultSpec()
	spec.ReadRepairChance = 1.0
	h := newHarness(t, spec, client.Options{Policy: client.Fixed{Write: wire.One}})
	h.write(t, "rr", "v1")
	h.s.RunFor(time.Second)

	// Diverge one replica: partition it, overwrite the key, heal. The
	// partitioned replica still holds v1 while the rest hold v2.
	reps := ring.ReplicasForKey(h.c.Ring, h.c.Strategy, []byte("rr"))
	victim := reps[len(reps)-1]
	h.c.Net.Isolate(victim, h.c.NodeIDs())
	h.write(t, "rr", "v2")
	h.s.RunFor(time.Second)
	h.c.Net.Rejoin(victim, h.c.NodeIDs())
	if v, _ := h.c.Node(victim).Engine().Get([]byte("rr")); string(v.Data) != "v1" {
		t.Fatalf("victim should still hold v1, has %q", v.Data)
	}

	// A strong read triggers read repair of the stale replica.
	if res := h.read(t, "rr", wire.All); res.Err != nil || string(res.Value) != "v2" {
		t.Fatalf("ALL read = %+v", res)
	}
	h.s.RunFor(time.Second)

	for _, rid := range reps {
		v, ok := h.c.Node(rid).Engine().Get([]byte("rr"))
		if !ok || string(v.Data) != "v2" {
			t.Fatalf("replica %s = %q ok=%v, want v2", rid, v.Data, ok)
		}
	}
	if m := h.c.AggregateMetrics(); m.RepairsSent == 0 {
		t.Fatal("no repairs recorded")
	}
}

func TestAllReplicasHoldDataAfterQuiesce(t *testing.T) {
	h := newHarness(t, DefaultSpec(), client.Options{Policy: client.Fixed{Write: wire.One}})
	keys := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	for _, k := range keys {
		h.write(t, k, "val-"+k)
	}
	h.s.RunFor(5 * time.Second)
	for _, k := range keys {
		reps := ring.ReplicasForKey(h.c.Ring, h.c.Strategy, []byte(k))
		if len(reps) != 5 {
			t.Fatalf("key %s has %d replicas", k, len(reps))
		}
		for _, rid := range reps {
			v, ok := h.c.Node(rid).Engine().Get([]byte(k))
			if !ok || string(v.Data) != "val-"+k {
				t.Fatalf("replica %s of %s = %q ok=%v", rid, k, v.Data, ok)
			}
		}
	}
}

func TestShadowStalenessCounters(t *testing.T) {
	spec := DefaultSpec()
	h := newHarness(t, spec, client.Options{Policy: client.Fixed{Write: wire.One}})
	h.write(t, "sk", "old")
	h.s.RunFor(time.Second)

	writer, reader := delayPropagation(t, h, "sk", 500*time.Millisecond)
	wdrv, err := client.New(client.Options{ID: "w2", Coordinators: []ring.NodeID{writer}, Policy: client.Fixed{Write: wire.One}}, h.s, h.c.Bus)
	if err != nil {
		t.Fatal(err)
	}
	h.c.Bus.Register("w2", h.s, wdrv)
	rdrv, err := client.New(client.Options{ID: "r2", Coordinators: []ring.NodeID{reader}, ShadowEvery: 1}, h.s, h.c.Bus)
	if err != nil {
		t.Fatal(err)
	}
	h.c.Bus.Register("r2", h.s, rdrv)

	wdone := false
	wdrv.Write([]byte("sk"), []byte("new"), func(client.WriteResult) { wdone = true })
	for !wdone {
		if !h.s.Step() {
			t.Fatal("write stalled")
		}
	}
	rdone := false
	rdrv.ReadAt([]byte("sk"), wire.One, func(client.ReadResult) { rdone = true })
	for !rdone {
		if !h.s.Step() {
			t.Fatal("read stalled")
		}
	}
	// Let the delayed replica responses arrive so the shadow comparison
	// completes at the coordinator.
	h.c.Net.ClearDegradations()
	h.s.RunFor(3 * time.Second)
	m := h.c.AggregateMetrics()
	if m.ShadowSamples == 0 {
		t.Fatal("no shadow samples recorded")
	}
	if m.ShadowStale == 0 {
		t.Fatal("the racing ONE read was not counted stale by the shadow probe")
	}
	if m.ShadowStale > m.ShadowSamples {
		t.Fatalf("stale (%d) exceeds samples (%d)", m.ShadowStale, m.ShadowSamples)
	}
}

func TestStrongReadsNeverStale(t *testing.T) {
	spec := DefaultSpec()
	spec.Profile = simnet.UniformProfile(10 * time.Millisecond)
	h := newHarness(t, spec, client.Options{Policy: client.Fixed{Write: wire.One}, ShadowEvery: 1})
	for i := 0; i < 30; i++ {
		key := []byte(fmt.Sprintf("st%d", i%5))
		h.drv.Write(key, []byte(fmt.Sprintf("v%d", i)), func(client.WriteResult) {})
		h.drv.ReadAt(key, wire.All, func(client.ReadResult) {})
		h.s.RunFor(15 * time.Millisecond)
	}
	h.s.RunFor(2 * time.Second)
	m := h.c.AggregateMetrics()
	if m.ShadowStale != 0 {
		t.Fatalf("ALL reads recorded %d stale of %d", m.ShadowStale, m.ShadowSamples)
	}
}

func TestHintedHandoffDelivery(t *testing.T) {
	spec := DefaultSpec()
	spec.HintedHandoff = true
	s := sim.New(7)
	c, err := BuildSim(s, spec)
	if err != nil {
		t.Fatal(err)
	}
	// Mark one replica of key "hh" down via the Alive hook.
	reps := ring.ReplicasForKey(c.Ring, c.Strategy, []byte("hh"))
	down := reps[len(reps)-1]
	downFlag := true
	for _, n := range c.Nodes {
		n.cfg.Alive = func(id ring.NodeID) bool { return !(downFlag && id == down) }
	}
	drv, err := client.New(client.Options{ID: "cl", Coordinators: []ring.NodeID{reps[0]}, Policy: client.Fixed{Write: wire.One}}, s, c.Bus)
	if err != nil {
		t.Fatal(err)
	}
	c.Bus.Register("cl", s, drv)

	done := false
	drv.Write([]byte("hh"), []byte("v"), func(r client.WriteResult) {
		if r.Err != nil {
			t.Errorf("write: %v", r.Err)
		}
		done = true
	})
	s.RunFor(time.Second)
	if !done {
		t.Fatal("write did not complete")
	}
	coord := c.Node(reps[0])
	if coord.PendingHints() == 0 {
		t.Fatal("no hint queued for the down replica")
	}
	if v, ok := c.Node(down).Engine().Get([]byte("hh")); ok && string(v.Data) == "v" {
		t.Fatal("down replica received the write while down")
	}
	// Node comes back; hints replay on the next tick.
	downFlag = false
	s.RunFor(30 * time.Second)
	if v, ok := c.Node(down).Engine().Get([]byte("hh")); !ok || string(v.Data) != "v" {
		t.Fatalf("hint not replayed: %q ok=%v", v.Data, ok)
	}
	if coord.PendingHints() != 0 {
		t.Fatalf("%d hints still queued after replay", coord.PendingHints())
	}
}

func TestPartitionCausesTimeoutThenHeals(t *testing.T) {
	spec := DefaultSpec()
	spec.ReadTimeout = 200 * time.Millisecond
	spec.WriteTimeout = 200 * time.Millisecond
	h := newHarness(t, spec, client.Options{Policy: client.Fixed{Write: wire.One}, Timeout: 3 * time.Second})
	h.write(t, "pk", "v")
	h.s.RunFor(time.Second)

	reps := ring.ReplicasForKey(h.c.Ring, h.c.Strategy, []byte("pk"))
	// Cut every replica off from the chosen coordinator except itself.
	coord := reps[0]
	for _, r := range reps[1:] {
		h.c.Net.Partition(coord, r)
	}
	var res client.ReadResult
	done := false
	// Use the partitioned coordinator directly.
	drv2, err := client.New(client.Options{ID: "cl2", Coordinators: []ring.NodeID{coord}, Timeout: 3 * time.Second}, h.s, h.c.Bus)
	if err != nil {
		t.Fatal(err)
	}
	h.c.Bus.Register("cl2", h.s, drv2)
	drv2.ReadAt([]byte("pk"), wire.All, func(r client.ReadResult) { res = r; done = true })
	h.s.RunFor(5 * time.Second)
	if !done {
		t.Fatal("read never completed")
	}
	if res.Err == nil {
		t.Fatal("ALL read across a partition succeeded")
	}
	// Heal and retry: must succeed.
	for _, r := range reps[1:] {
		h.c.Net.Heal(coord, r)
	}
	done = false
	drv2.ReadAt([]byte("pk"), wire.All, func(r client.ReadResult) { res = r; done = true })
	h.s.RunFor(5 * time.Second)
	if !done || res.Err != nil || string(res.Value) != "v" {
		t.Fatalf("post-heal read = %+v done=%v", res, done)
	}
}

func TestConsistencyLevelUseCounters(t *testing.T) {
	h := newHarness(t, DefaultSpec(), client.Options{})
	h.write(t, "k", "v")
	// A known mix of read levels: the tallies must match exactly, slot by
	// slot, with nothing bleeding into unused slots and writes not counted.
	mix := map[wire.ConsistencyLevel]int{
		wire.One: 3, wire.Two: 1, wire.Three: 2, wire.Quorum: 2, wire.All: 1,
	}
	total := 0
	for lvl, n := range mix {
		for i := 0; i < n; i++ {
			if res := h.read(t, "k", lvl); res.Err != nil {
				t.Fatalf("read at %v: %v", lvl, res.Err)
			}
			total++
		}
	}
	m := h.c.AggregateMetrics()
	for lvl, n := range mix {
		if m.LevelUse[lvl] != uint64(n) {
			t.Fatalf("LevelUse[%v] = %d, want %d (all: %v)", lvl, m.LevelUse[lvl], n, m.LevelUse)
		}
	}
	if m.LevelUse[0] != 0 {
		t.Fatalf("unused slot 0 tallied: %v", m.LevelUse)
	}
	var sum uint64
	for _, v := range m.LevelUse {
		sum += v
	}
	if sum != m.Reads || sum != uint64(total) {
		t.Fatalf("level tallies sum to %d, reads = %d, issued = %d", sum, m.Reads, total)
	}
	if m.Writes != 1 {
		t.Fatalf("writes = %d; writes must not enter LevelUse", m.Writes)
	}
}

func TestBlockingReadRepairAtAll(t *testing.T) {
	// Paper Fig. 1, strong consistency: at CL=ALL with divergent replicas
	// the coordinator writes the newest version to the out-of-date
	// replicas and answers the client only after their acks. With
	// ReadRepairChance=0 there is no background repair at all, so replica
	// convergence by response time can only come from the blocking path.
	spec := DefaultSpec()
	spec.ReadRepairChance = 0
	h := newHarness(t, spec, client.Options{})
	key := []byte("brr-key")
	reps := ring.ReplicasForKey(h.c.Ring, h.c.Strategy, key)
	if len(reps) != 5 {
		t.Fatalf("replicas = %d", len(reps))
	}
	oldV := wire.Value{Data: []byte("old"), Timestamp: 10}
	newV := wire.Value{Data: []byte("new"), Timestamp: 20}
	for _, r := range reps {
		if _, err := h.c.Node(r).Engine().Apply(key, oldV); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := h.c.Node(reps[2]).Engine().Apply(key, newV); err != nil {
		t.Fatal(err)
	}

	done, converged := false, false
	var res client.ReadResult
	h.drv.ReadAt(key, wire.All, func(r client.ReadResult) {
		res = r
		done = true
		// The repairs were acknowledged before the response was sent, so
		// every replica must already hold the newest version now.
		converged = true
		for _, rep := range reps {
			if v, ok := h.c.Node(rep).Engine().Get(key); !ok || v.Timestamp != newV.Timestamp {
				converged = false
			}
		}
	})
	h.s.RunFor(5 * time.Second)
	if !done {
		t.Fatal("ALL read never completed")
	}
	if res.Err != nil || string(res.Value) != "new" {
		t.Fatalf("ALL read = %+v, want the newest version", res)
	}
	if !converged {
		t.Fatal("response was not blocked on repair: stale replicas at response time")
	}
	m := h.c.AggregateMetrics()
	if m.RepairsSent != 4 {
		t.Fatalf("repairs sent = %d, want 4 (one per stale replica)", m.RepairsSent)
	}
	// A second ALL read finds agreement: no further repairs.
	if r2 := h.read(t, string(key), wire.All); r2.Err != nil || string(r2.Value) != "new" {
		t.Fatalf("second ALL read = %+v", r2)
	}
	if m2 := h.c.AggregateMetrics(); m2.RepairsSent != 4 {
		t.Fatalf("converged read sent repairs: %d", m2.RepairsSent)
	}
}

func TestBlockingReadRepairTimesOutWithDeadReplica(t *testing.T) {
	// If a stale replica is unreachable, the blocking repair cannot
	// complete and the ALL read must fail with a timeout rather than
	// answer with unrepaired replicas.
	spec := DefaultSpec()
	spec.ReadRepairChance = 0
	spec.ReadTimeout = 500 * time.Millisecond
	h := newHarness(t, spec, client.Options{})
	key := []byte("brr-dead")
	reps := ring.ReplicasForKey(h.c.Ring, h.c.Strategy, key)
	oldV := wire.Value{Data: []byte("old"), Timestamp: 10}
	newV := wire.Value{Data: []byte("new"), Timestamp: 20}
	for _, r := range reps {
		h.c.Node(r).Engine().Apply(key, oldV)
	}
	h.c.Node(reps[0]).Engine().Apply(key, newV)
	// Cut reps[1] off from everything after it would have answered the
	// replica read... simpler: make it answer reads but never ack the
	// repair by partitioning it after seeding. Since replica reads and
	// repair mutations travel the same links, partitioning now makes the
	// ALL read itself time out — which is the same guarantee: no answer
	// with unrepaired replicas.
	for _, other := range h.c.NodeIDs() {
		if other != reps[1] {
			h.c.Net.Partition(reps[1], other)
		}
	}
	done := false
	var res client.ReadResult
	h.drv.ReadAt(key, wire.All, func(r client.ReadResult) { res = r; done = true })
	h.s.RunFor(5 * time.Second)
	if !done {
		t.Fatal("read never completed")
	}
	if res.Err == nil {
		t.Fatalf("ALL read with unreachable replica succeeded: %+v", res)
	}
}

// groupByPrefix maps 'a'-prefixed keys to group 0, 'b' to 1, everything
// else deliberately out of range (exercising the clamp).
func groupByPrefix(key []byte) int {
	switch {
	case len(key) > 0 && key[0] == 'a':
		return 0
	case len(key) > 0 && key[0] == 'b':
		return 1
	}
	return 99
}

func TestPerGroupMetricsPartitionTotals(t *testing.T) {
	spec := DefaultSpec()
	spec.Groups = 2
	spec.GroupFn = groupByPrefix
	h := newHarness(t, spec, client.Options{ShadowEvery: 1})
	for i := 0; i < 4; i++ {
		h.write(t, fmt.Sprintf("a%d", i), "v")
	}
	h.write(t, "b0", "v")
	h.write(t, "zz", "v") // out-of-range group clamps to 0
	for i := 0; i < 3; i++ {
		h.read(t, fmt.Sprintf("a%d", i), wire.One)
	}
	h.read(t, "b0", wire.One)
	h.read(t, "b0", wire.Quorum)

	m := h.c.AggregateMetrics()
	if len(m.GroupReads) != 2 || len(m.GroupWrites) != 2 {
		t.Fatalf("group slices = %d/%d", len(m.GroupReads), len(m.GroupWrites))
	}
	if got := m.GroupWrites[0]; got != 5 { // 4 'a' writes + 1 clamped 'zz'
		t.Fatalf("group 0 writes = %d, want 5", got)
	}
	if got := m.GroupWrites[1]; got != 1 {
		t.Fatalf("group 1 writes = %d, want 1", got)
	}
	if m.GroupReads[0] != 3 || m.GroupReads[1] != 2 {
		t.Fatalf("group reads = %v", m.GroupReads)
	}
	if m.GroupReads[0]+m.GroupReads[1] != m.Reads || m.GroupWrites[0]+m.GroupWrites[1] != m.Writes {
		t.Fatalf("group counters do not partition totals: %+v", m)
	}
	var samples uint64
	for _, v := range m.GroupShadowSamples {
		samples += v
	}
	if samples != m.ShadowSamples || samples == 0 {
		t.Fatalf("group shadow samples %d vs total %d", samples, m.ShadowSamples)
	}
	// Snapshot isolation: mutating a snapshot must not touch the node.
	n := h.c.Nodes[0]
	snap := n.Snapshot()
	if len(snap.GroupReads) > 0 {
		snap.GroupReads[0] += 1000
		if n.Snapshot().GroupReads[0] == snap.GroupReads[0] {
			t.Fatal("Snapshot aliases live group counters")
		}
	}
}

func TestBuilderValidation(t *testing.T) {
	s := sim.New(1)
	if _, err := BuildSim(s, Spec{}); err == nil {
		t.Fatal("empty spec accepted")
	}
	bad := DefaultSpec()
	bad.RF = 0
	if _, err := BuildSim(s, bad); err == nil {
		t.Fatal("RF=0 accepted")
	}
}

func TestLinearizableSingleKeyProperty(t *testing.T) {
	// Property: with R=ALL, W=ALL, sequential operations on one key always
	// read the last written value, for any operation interleaving pattern.
	if err := quick.Check(func(seed int64, opsRaw uint8) bool {
		s := sim.New(seed)
		spec := DefaultSpec()
		c, err := BuildSim(s, spec)
		if err != nil {
			return false
		}
		drv, err := client.New(client.Options{ID: "qc", Coordinators: c.NodeIDs(), Policy: client.Fixed{Write: wire.All}}, s, c.Bus)
		if err != nil {
			return false
		}
		c.Bus.Register("qc", s, drv)
		r := rand.New(rand.NewSource(seed))
		last := ""
		ok := true
		nops := int(opsRaw%12) + 2
		for i := 0; i < nops; i++ {
			if r.Intn(2) == 0 || last == "" {
				last = fmt.Sprintf("v%d", i)
				done := false
				drv.Write([]byte("key"), []byte(last), func(res client.WriteResult) {
					done = true
					if res.Err != nil {
						ok = false
					}
				})
				s.RunFor(5 * time.Second)
				if !done {
					return false
				}
			} else {
				done := false
				drv.ReadAt([]byte("key"), wire.All, func(res client.ReadResult) {
					done = true
					if res.Err != nil || string(res.Value) != last {
						ok = false
					}
				})
				s.RunFor(5 * time.Second)
				if !done {
					return false
				}
			}
		}
		return ok
	}, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestClientDriverTimeoutOnUnknownCoordinator(t *testing.T) {
	s := sim.New(3)
	spec := DefaultSpec()
	c, err := BuildSim(s, spec)
	if err != nil {
		t.Fatal(err)
	}
	drv, err := client.New(client.Options{ID: "lost", Coordinators: []ring.NodeID{"nonexistent"}, Timeout: 100 * time.Millisecond}, s, c.Bus)
	if err != nil {
		t.Fatal(err)
	}
	c.Bus.Register("lost", s, drv)
	var res client.ReadResult
	done := false
	drv.ReadAt([]byte("k"), wire.One, func(r client.ReadResult) { res = r; done = true })
	s.RunFor(time.Second)
	if !done || res.Err == nil {
		t.Fatalf("expected timeout, got %+v done=%v", res, done)
	}
	if drv.Pending() != 0 {
		t.Fatal("pending op leaked after timeout")
	}
}

func TestRealTimeClusterSmoke(t *testing.T) {
	// The same protocol code must work on real goroutine runtimes.
	spec := DefaultSpec()
	spec.DCs, spec.RacksPerDC, spec.NodesPerRack = 1, 2, 3 // keep it small
	spec.RF = 3
	spec.Profile = simnet.UniformProfile(200 * time.Microsecond)
	c, err := BuildReal(spec, 42)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	rt := sim.NewRealRuntime()
	defer rt.Stop()
	drv, err := client.New(client.Options{ID: "real-client", Coordinators: c.NodeIDs(), Policy: client.Fixed{Write: wire.Quorum}}, rt, c.Bus)
	if err != nil {
		t.Fatal(err)
	}
	c.Bus.Register("real-client", rt, drv)

	wrote := make(chan error, 1)
	rt.Post(func() {
		drv.Write([]byte("rt-key"), []byte("rt-val"), func(r client.WriteResult) { wrote <- r.Err })
	})
	select {
	case err := <-wrote:
		if err != nil {
			t.Fatalf("write: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("write timed out in real time")
	}
	readBack := make(chan client.ReadResult, 1)
	rt.Post(func() {
		drv.ReadAt([]byte("rt-key"), wire.Quorum, func(r client.ReadResult) { readBack <- r })
	})
	select {
	case r := <-readBack:
		if r.Err != nil || string(r.Value) != "rt-val" {
			t.Fatalf("read = %+v", r)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("read timed out in real time")
	}
}

// TestServiceProfileCustomJitter covers the dist.Sampler override: an
// arbitrary sampler replaces the built-in lognormal multiplier, and Scale
// must carry both jitter knobs through.
func TestServiceProfileCustomJitter(t *testing.T) {
	p := DefaultServiceProfile()
	p.Jitter = dist.Constant{V: 10}
	timer := p.Timer(rand.New(rand.NewSource(1)))
	if got, want := timer(wire.ReadRequest{}), 10*p.CoordRead; got != want {
		t.Fatalf("jittered coord read = %v, want %v", got, want)
	}
	if got, want := timer(wire.Mutation{}), 10*p.ReplicaWrite; got != want {
		t.Fatalf("jittered replica write = %v, want %v", got, want)
	}
	// Response-class messages are fixed-cost and bypass jitter.
	if got := timer(wire.MutationAck{}); got != p.Response {
		t.Fatalf("response handling = %v, want %v", got, p.Response)
	}

	sc := p.Scale(2)
	if sc.Jitter == nil || sc.JitterP99 != p.JitterP99 {
		t.Fatalf("Scale dropped jitter configuration: %+v", sc)
	}
	if got, want := sc.Scale(1).CoordRead, 2*p.CoordRead; got != want {
		t.Fatalf("scaled coord read = %v, want %v", got, want)
	}

	// Without an override the multiplier is stochastic with the
	// configured p99: the default profile must vary its service times.
	d := DefaultServiceProfile()
	dt := d.Timer(rand.New(rand.NewSource(2)))
	seen := map[time.Duration]bool{}
	for i := 0; i < 50; i++ {
		seen[dt(wire.ReplicaRead{})] = true
	}
	if len(seen) < 10 {
		t.Fatalf("default jitter produced only %d distinct service times", len(seen))
	}
}

package bench

import (
	"fmt"
	"os"
	"strings"
	"time"

	"harmony/internal/client"
	"harmony/internal/core"
	"harmony/internal/dist"
	"harmony/internal/obs"
	"harmony/internal/ring"
	"harmony/internal/wire"
)

// LiveHotColdSpec parameterizes the live hot/cold experiment — the same
// comparison as HotColdSpec (per-group multi-model controller vs one global
// knob) but over a spawned process cluster.
type LiveHotColdSpec struct {
	Procs int
	RF    int
	// HotKeys / TotalKeys split the keyspace as in the simulated variant.
	HotKeys   int64
	TotalKeys int64
	// HotWorkers / ColdWorkers size the closed-loop client pools.
	HotWorkers, ColdWorkers int
	// HotTolerance / ColdTolerance are the per-group stale targets; the
	// global arm runs everything at the hot tolerance.
	HotTolerance, ColdTolerance float64
	ValueBytes                  int
	// VerifyEvery probes every k-th read with a dual read (§V-F literal).
	VerifyEvery int
	// ClientStreams / ServerStreams set transport pool sizes on each side.
	ClientStreams, ServerStreams int
	// ControllerBandwidth parameterizes Tp's transfer term. Loopback RTTs
	// are microseconds, so the latency term alone would let the estimator
	// serve everything at ONE; the bandwidth term stands in for the
	// provisioned per-replica bandwidth of a real deployment, exactly as
	// the scenario profiles do for the simulated benches.
	ControllerBandwidth float64
	MonitorInterval     time.Duration
	Warmup, Measure     time.Duration
	// LogDir keeps member logs (empty = temp, removed).
	LogDir string
}

// DefaultLiveHotColdSpec returns a configuration sized for a laptop/CI
// machine: a 5-process cluster and a few seconds of measured load.
func DefaultLiveHotColdSpec() LiveHotColdSpec {
	return LiveHotColdSpec{
		Procs:               5,
		RF:                  3,
		HotKeys:             200,
		TotalKeys:           4000,
		HotWorkers:          5,
		ColdWorkers:         10,
		HotTolerance:        0.05,
		ColdTolerance:       0.60,
		ValueBytes:          3072,
		VerifyEvery:         8,
		ClientStreams:       2,
		ServerStreams:       2,
		ControllerBandwidth: 8 << 20,
		MonitorInterval:     500 * time.Millisecond,
		Warmup:              3 * time.Second,
		Measure:             8 * time.Second,
	}
}

// LiveHotColdResult compares the two controller arms over the live cluster.
type LiveHotColdResult struct {
	Procs     int        `json:"procs"`
	RF        int        `json:"rf"`
	HotKeys   int64      `json:"hot_keys"`
	TotalKeys int64      `json:"total_keys"`
	MeasureMs float64    `json:"measure_ms"`
	PerGroup  HotColdRun `json:"per_group"`
	Global    HotColdRun `json:"global"`
	// ThroughputGain is PerGroup/Global - 1, the headline of the live run.
	ThroughputGain float64 `json:"throughput_gain"`
	// PerGroupSeries / GlobalSeries are the scraped per-second time series
	// of each arm's measured interval, including the merged decision trace.
	PerGroupSeries *LiveSeries `json:"per_group_series,omitempty"`
	GlobalSeries   *LiveSeries `json:"global_series,omitempty"`
}

// Format renders the comparison.
func (r LiveHotColdResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== live hotcold (%d procs, rf=%d, %d hot / %d total keys, %.0fms measured) ==\n",
		r.Procs, r.RF, r.HotKeys, r.TotalKeys, r.MeasureMs)
	for _, run := range []HotColdRun{r.PerGroup, r.Global} {
		fmt.Fprintf(&b, "%-10s tput=%8.0f ops/s readP99=%6.2fms errors=%d\n",
			run.Policy, run.ThroughputOps, run.ReadP99Ms, run.Errors)
		for _, g := range run.Groups {
			status := "within"
			if !g.WithinTolerance {
				status = "EXCEEDED"
			}
			fmt.Fprintf(&b, "  %-5s level=%-7s stale=%d/%d (%.3f vs tol %.2f, %s) reads=%d writes=%d\n",
				g.Name, g.FinalLevel, g.StaleReads, g.ShadowSamples,
				g.StaleFraction, g.Tolerance, status, g.Reads, g.Writes)
		}
	}
	fmt.Fprintf(&b, "throughput gain per-group vs global: %+.0f%%\n", r.ThroughputGain*100)
	return b.String()
}

// LiveHotCold runs both arms against freshly spawned clusters and compares
// them. opts supplies Seed and Progress; the spec supplies durations (live
// runs are time-bounded, not op-bounded — wall clock is real here).
func LiveHotCold(spec LiveHotColdSpec, opts Options) (LiveHotColdResult, error) {
	opts = opts.withDefaults()
	if spec.HotKeys <= 0 || spec.TotalKeys <= spec.HotKeys {
		return LiveHotColdResult{}, fmt.Errorf("bench: live hotcold needs 0 < HotKeys < TotalKeys, got %d/%d", spec.HotKeys, spec.TotalKeys)
	}
	res := LiveHotColdResult{
		Procs: spec.Procs, RF: spec.RF,
		HotKeys: spec.HotKeys, TotalKeys: spec.TotalKeys,
		MeasureMs: durMs(spec.Measure),
	}
	perGroup, perSeries, err := runLiveHotCold(spec, opts, true)
	if err != nil {
		return LiveHotColdResult{}, fmt.Errorf("bench: live hotcold per-group: %w", err)
	}
	global, globalSeries, err := runLiveHotCold(spec, opts, false)
	if err != nil {
		return LiveHotColdResult{}, fmt.Errorf("bench: live hotcold global: %w", err)
	}
	res.PerGroup, res.Global = perGroup, global
	res.PerGroupSeries, res.GlobalSeries = perSeries, globalSeries
	res.RF = max(spec.RF, 1)
	if global.ThroughputOps > 0 {
		res.ThroughputGain = perGroup.ThroughputOps/global.ThroughputOps - 1
	}
	opts.progress("live hotcold: per-group %.0f vs global %.0f ops/s (%+.0f%%)",
		perGroup.ThroughputOps, global.ThroughputOps, res.ThroughputGain*100)
	return res, nil
}

// liveController builds the controller for one arm: two models with split
// tolerances (per-group), or one global model at the hot tolerance. Its
// decisions land in trace, so the scraped series can account for every
// level change the experiment commanded.
func liveController(spec LiveHotColdSpec, perGroup bool, trace *obs.Trace) *core.Controller {
	cfg := core.ControllerConfig{
		Policy: core.Policy{
			Name:               "live-hotcold",
			ToleratedStaleRate: spec.HotTolerance,
		},
		N:                    spec.RF,
		BandwidthBytesPerSec: spec.ControllerBandwidth,
		Trace:                trace,
	}
	if perGroup {
		cfg.Groups = 2
		cfg.GroupFn = hotColdGroupFn(spec.HotKeys)
		cfg.GroupTolerances = []float64{spec.HotTolerance, spec.ColdTolerance}
	}
	return core.NewController(cfg)
}

// liveWorkerPool builds and starts the hot and cold closed-loop pools.
// coords restricts the workers' coordinator rotation (nil = every member);
// the partition experiment pins its load to the majority side with it.
func liveWorkerPool(spec LiveHotColdSpec, lc *LiveCluster, policy client.ConsistencyPolicy,
	tally *liveTally, timeout time.Duration, verifyEvery int, seed int64,
	coords []ring.NodeID) ([]*liveWorker, error) {
	peers := lc.Peers()
	if len(coords) == 0 {
		coords = lc.IDs()
	}
	groupFn := hotColdGroupFn(spec.HotKeys)
	var workers []*liveWorker
	mk := func(kind string, i int, readProp float64, chooser dist.KeyChooser, off int64) error {
		w, err := newLiveWorker(liveWorkerConfig{
			id:    fmt.Sprintf("live-%s-%d", kind, i),
			peers: peers, coords: coords,
			policy: policy, streams: spec.ClientStreams, timeout: timeout,
			readProp: readProp, chooser: chooser,
			valueBytes: spec.ValueBytes, verifyEvery: verifyEvery,
			groupFn: groupFn, seed: seed + off,
			// The hardened request path: a replica that died (or got cut
			// off) mid-conviction stalls one attempt, not the whole op —
			// the retry fails over with fresh replica choices once the
			// detector convicts the peer.
			maxAttempts: 2,
		}, tally)
		if err != nil {
			return err
		}
		workers = append(workers, w)
		return nil
	}
	for i := 0; i < spec.HotWorkers; i++ {
		// Hot pool: zipfian 50/50 over the hot range — contended, write-heavy.
		if err := mk("hot", i, 0.5, dist.NewZipfianChooser(spec.HotKeys), 101+int64(i)); err != nil {
			haltAll(workers)
			return nil, err
		}
	}
	for i := 0; i < spec.ColdWorkers; i++ {
		// Cold pool: uniform 95/5 over the whole keyspace — read-mostly.
		if err := mk("cold", i, 0.95, dist.NewUniformChooser(spec.TotalKeys), 10_101+int64(i)); err != nil {
			haltAll(workers)
			return nil, err
		}
	}
	for _, w := range workers {
		w.start()
	}
	return workers, nil
}

func haltAll(workers []*liveWorker) {
	for _, w := range workers {
		w.halt()
	}
}

// runLiveHotCold measures one arm: spawn, preload, warm up, measure. The
// returned series is the scraped per-second view of the measured interval.
func runLiveHotCold(spec LiveHotColdSpec, opts Options, perGroup bool) (HotColdRun, *LiveSeries, error) {
	arm := "global"
	if perGroup {
		arm = "per-group"
	}
	lc, err := StartLiveCluster(LiveClusterConfig{
		Procs: spec.Procs, RF: spec.RF,
		HotKeys: spec.HotKeys, Streams: spec.ServerStreams,
		LogDir: spec.LogDir,
	})
	if err != nil {
		return HotColdRun{}, nil, err
	}
	defer lc.Close()
	opts.progress("live hotcold %s: %d procs up, preloading %d keys", arm, spec.Procs, spec.TotalKeys)
	if err := livePreload(lc.Peers(), lc.IDs(), spec.TotalKeys, spec.ValueBytes); err != nil {
		return HotColdRun{}, nil, err
	}

	trace := obs.NewTrace(4096)
	ctl := liveController(spec, perGroup, trace)
	mon, err := startLiveMonitor(lc, ctl, spec.MonitorInterval)
	if err != nil {
		return HotColdRun{}, nil, err
	}
	defer mon.close()

	tally := &liveTally{}
	workers, err := liveWorkerPool(spec, lc, ctl, tally, 2*time.Second, spec.VerifyEvery, opts.Seed, nil)
	if err != nil {
		return HotColdRun{}, nil, err
	}
	time.Sleep(spec.Warmup)
	tally.reset()
	scraper := startLiveScraper(lc, tally, liveLevels(ctl, perGroup), trace, time.Second)
	start := time.Now()
	time.Sleep(spec.Measure)
	snap := tally.snapshot()
	elapsed := time.Since(start)
	series := scraper.finish()
	haltAll(workers)

	run := HotColdRun{
		Policy:     arm,
		Operations: snap.ops,
		Errors:     snap.errors,
		ReadP99Ms:  float64(snap.readP99) / 1e6,
	}
	if elapsed > 0 {
		run.ThroughputOps = float64(snap.ops) / elapsed.Seconds()
	}
	tols := []float64{spec.HotTolerance, spec.ColdTolerance}
	names := []string{"hot", "cold"}
	for g := 0; g < 2; g++ {
		hg := HotColdGroup{
			Name:          names[g],
			Tolerance:     tols[g],
			Reads:         snap.reads[g],
			Writes:        snap.writes[g],
			ShadowSamples: snap.samples[g],
			StaleReads:    snap.stale[g],
		}
		if hg.ShadowSamples > 0 {
			hg.StaleFraction = float64(hg.StaleReads) / float64(hg.ShadowSamples)
		}
		hg.WithinTolerance = hg.StaleFraction <= hg.Tolerance
		if perGroup {
			hg.FinalLevel = ctl.GroupLast(g).Level.String()
		} else {
			hg.FinalLevel = ctl.Last().Level.String()
		}
		run.Groups = append(run.Groups, hg)
	}
	return run, series, nil
}

// liveLevels returns the commanded-level sampler for the scraper: the level
// each group's model last decided (the global arm serves both groups at its
// single model's level).
func liveLevels(ctl *core.Controller, perGroup bool) func() []string {
	return func() []string {
		if perGroup {
			return []string{ctl.GroupLast(0).Level.String(), ctl.GroupLast(1).Level.String()}
		}
		l := ctl.Last().Level.String()
		return []string{l, l}
	}
}

// LiveChurnSpec parameterizes the live failure/churn experiment: a member
// is killed with SIGKILL mid-run, restarted empty, and the per-group
// staleness trajectory is watched while repair (or hints alone) heals it.
type LiveChurnSpec struct {
	Procs int
	RF    int
	// HotKeys / TotalKeys split the keyspace as in hotcold.
	HotKeys   int64
	TotalKeys int64
	// HotWorkers / ColdWorkers size the closed-loop pools.
	HotWorkers, ColdWorkers int
	// HotTolerance / ColdTolerance are the per-group stale targets.
	HotTolerance, ColdTolerance float64
	ValueBytes                  int
	// VerifyEvery probes every k-th read (staleness windows need density).
	VerifyEvery int
	// OpTimeout keeps workers cycling while the victim is down.
	OpTimeout time.Duration
	// ControllerBandwidth: see LiveHotColdSpec.
	ControllerBandwidth float64
	MonitorInterval     time.Duration
	GossipInterval      time.Duration
	// Warmup precedes measurement; Baseline is watched before the kill;
	// Outage is how long the victim stays dead; PostWatch how long recovery
	// is observed after the restart.
	Warmup, Baseline, Outage, PostWatch time.Duration
	// WindowLen is the staleness window; RecoverWindows the consecutive
	// within-tolerance windows that declare a group recovered.
	WindowLen      time.Duration
	RecoverWindows int
	// HintQueueLimit caps hints so the outage genuinely loses data.
	HintQueueLimit int
	// RepairInterval tunes anti-entropy cadence in the repair arm.
	RepairInterval time.Duration
	// FsyncInterval batches fsyncs in the persistent-restart arm (0 keeps
	// group commit: every acknowledged write is on disk before the kill).
	FsyncInterval time.Duration
	ClientStreams int
	ServerStreams int
	LogDir        string
}

// DefaultLiveChurnSpec returns the standard live failure schedule: a
// 5-process RF=4 cluster (a recovered replica's divergence is visible to a
// large share of CL=ONE reads), a 3s SIGKILL outage, capped hints.
func DefaultLiveChurnSpec() LiveChurnSpec {
	return LiveChurnSpec{
		Procs:               5,
		RF:                  4,
		HotKeys:             200,
		TotalKeys:           3000,
		HotWorkers:          4,
		ColdWorkers:         8,
		HotTolerance:        0.05,
		ColdTolerance:       0.50,
		ValueBytes:          256,
		VerifyEvery:         2,
		OpTimeout:           750 * time.Millisecond,
		ControllerBandwidth: 1 << 20,
		MonitorInterval:     400 * time.Millisecond,
		GossipInterval:      200 * time.Millisecond,
		Warmup:              2 * time.Second,
		Baseline:            2 * time.Second,
		Outage:              3 * time.Second,
		PostWatch:           8 * time.Second,
		WindowLen:           500 * time.Millisecond,
		RecoverWindows:      4,
		HintQueueLimit:      200,
		RepairInterval:      500 * time.Millisecond,
		ClientStreams:       2,
		ServerStreams:       2,
	}
}

// LiveChurnResult compares three recovery modes over identical live failure
// schedules: anti-entropy repair, hints alone, and a persistent restart
// where the victim recovers its pre-crash rows from its bitcask data dir.
type LiveChurnResult struct {
	Procs     int      `json:"procs"`
	RF        int      `json:"rf"`
	Victim    string   `json:"victim"`
	HotKeys   int64    `json:"hot_keys"`
	TotalKeys int64    `json:"total_keys"`
	OutageMs  float64  `json:"outage_ms"`
	Repair    ChurnRun `json:"repair"`
	HintsOnly ChurnRun `json:"hints_only"`
	Persist   ChurnRun `json:"persist"`
	// *Series are the scraped per-second time series of each arm's measured
	// interval (baseline through post-watch), including the decision trace.
	RepairSeries    *LiveSeries `json:"repair_series,omitempty"`
	HintsOnlySeries *LiveSeries `json:"hints_only_series,omitempty"`
	PersistSeries   *LiveSeries `json:"persist_series,omitempty"`
}

// Format renders the comparison.
func (r LiveChurnResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== live churn (%d procs, rf=%d, victim %s killed for %.0fms, %d hot / %d total keys) ==\n",
		r.Procs, r.RF, r.Victim, r.OutageMs, r.HotKeys, r.TotalKeys)
	for _, run := range []ChurnRun{r.Repair, r.HintsOnly, r.Persist} {
		fmt.Fprintf(&b, "%-10s tput=%8.0f ops/s errors=%d hints=%d healed=%d recovered=%d\n",
			run.Policy, run.ThroughputOps, run.Errors, run.HintsQueued, run.RowsHealed, run.RowsRecovered)
		for _, g := range run.Groups {
			rec := "NEVER"
			if g.RecoveredWithinMs >= 0 {
				rec = fmt.Sprintf("%.0fms", g.RecoveredWithinMs)
			}
			fmt.Fprintf(&b, "  %-5s tol=%.2f level=%-6s recovered=%-8s post-stale=%d/%d (%.3f) worst-window=%.3f tail=%.3f\n",
				g.Name, g.Tolerance, g.FinalLevel, rec, g.PostStale, g.PostSamples, g.PostFraction, g.WorstWindow, g.TailFraction)
		}
	}
	return b.String()
}

// liveChurnArm names one recovery mode through the failure schedule.
type liveChurnArm struct {
	name    string
	repair  bool // anti-entropy enabled on every member
	persist bool // members run persistent engines; the victim restarts with data
}

// LiveChurn runs the failure schedule for all three recovery modes over
// freshly spawned live clusters: repair, hints-only, and persistent restart.
func LiveChurn(spec LiveChurnSpec, opts Options) (LiveChurnResult, error) {
	opts = opts.withDefaults()
	if spec.HotKeys <= 0 || spec.TotalKeys <= spec.HotKeys {
		return LiveChurnResult{}, fmt.Errorf("bench: live churn needs 0 < HotKeys < TotalKeys, got %d/%d", spec.HotKeys, spec.TotalKeys)
	}
	if spec.WindowLen <= 0 || spec.Outage <= 0 || spec.PostWatch < spec.WindowLen {
		return LiveChurnResult{}, fmt.Errorf("bench: live churn needs positive WindowLen/Outage and PostWatch >= WindowLen")
	}
	withRepair, repairSeries, victim, err := runLiveChurn(spec, opts, liveChurnArm{name: "repair", repair: true})
	if err != nil {
		return LiveChurnResult{}, fmt.Errorf("bench: live churn repair: %w", err)
	}
	hintsOnly, hintsSeries, _, err := runLiveChurn(spec, opts, liveChurnArm{name: "hints-only"})
	if err != nil {
		return LiveChurnResult{}, fmt.Errorf("bench: live churn hints-only: %w", err)
	}
	persist, persistSeries, _, err := runLiveChurn(spec, opts, liveChurnArm{name: "persist", persist: true})
	if err != nil {
		return LiveChurnResult{}, fmt.Errorf("bench: live churn persist: %w", err)
	}
	res := LiveChurnResult{
		Procs: spec.Procs, RF: spec.RF,
		Victim:  victim,
		HotKeys: spec.HotKeys, TotalKeys: spec.TotalKeys,
		OutageMs:        durMs(spec.Outage),
		Repair:          withRepair,
		HintsOnly:       hintsOnly,
		Persist:         persist,
		RepairSeries:    repairSeries,
		HintsOnlySeries: hintsSeries,
		PersistSeries:   persistSeries,
	}
	opts.progress("live churn: post-stale hot/cold — repair %.3f/%.3f, hints-only %.3f/%.3f, persist %.3f/%.3f (%d rows recovered)",
		res.Repair.Groups[0].PostFraction, res.Repair.Groups[1].PostFraction,
		res.HintsOnly.Groups[0].PostFraction, res.HintsOnly.Groups[1].PostFraction,
		res.Persist.Groups[0].PostFraction, res.Persist.Groups[1].PostFraction,
		res.Persist.RowsRecovered)
	return res, nil
}

// runLiveChurn measures one arm through the kill/restart schedule.
func runLiveChurn(spec LiveChurnSpec, opts Options, arm liveChurnArm) (ChurnRun, *LiveSeries, string, error) {
	dataDir := ""
	if arm.persist {
		dir, err := os.MkdirTemp("", "harmony-churn-data-*")
		if err != nil {
			return ChurnRun{}, nil, "", fmt.Errorf("bench: churn data dir: %w", err)
		}
		defer os.RemoveAll(dir)
		dataDir = dir
	}
	lc, err := StartLiveCluster(LiveClusterConfig{
		Procs: spec.Procs, RF: spec.RF,
		GossipInterval: spec.GossipInterval,
		Repair:         arm.repair, RepairInterval: spec.RepairInterval,
		HotKeys: spec.HotKeys, HintQueueLimit: spec.HintQueueLimit,
		Streams: spec.ServerStreams,
		DataDir: dataDir, FsyncInterval: spec.FsyncInterval,
		LogDir: spec.LogDir,
	})
	if err != nil {
		return ChurnRun{}, nil, "", err
	}
	defer lc.Close()
	opts.progress("live churn %s: %d procs up, preloading %d keys", arm.name, spec.Procs, spec.TotalKeys)
	if err := livePreload(lc.Peers(), lc.IDs(), spec.TotalKeys, spec.ValueBytes); err != nil {
		return ChurnRun{}, nil, "", err
	}

	tols := []float64{spec.HotTolerance, spec.ColdTolerance}
	trace := obs.NewTrace(4096)
	ctl := core.NewController(core.ControllerConfig{
		Policy: core.Policy{
			Name:               "live-churn",
			ToleratedStaleRate: spec.HotTolerance,
		},
		N:                    spec.RF,
		BandwidthBytesPerSec: spec.ControllerBandwidth,
		Groups:               2,
		GroupFn:              hotColdGroupFn(spec.HotKeys),
		GroupTolerances:      tols,
		Trace:                trace,
	})
	mon, err := startLiveMonitor(lc, ctl, spec.MonitorInterval)
	if err != nil {
		return ChurnRun{}, nil, "", err
	}
	defer mon.close()

	tally := &liveTally{}
	hcSpec := LiveHotColdSpec{
		Procs: spec.Procs, RF: spec.RF,
		HotKeys: spec.HotKeys, TotalKeys: spec.TotalKeys,
		HotWorkers: spec.HotWorkers, ColdWorkers: spec.ColdWorkers,
		ValueBytes:    spec.ValueBytes,
		ClientStreams: spec.ClientStreams,
	}
	workers, err := liveWorkerPool(hcSpec, lc, ctl, tally, spec.OpTimeout, spec.VerifyEvery, opts.Seed, nil)
	if err != nil {
		return ChurnRun{}, nil, "", err
	}
	time.Sleep(spec.Warmup)
	tally.reset()
	scraper := startLiveScraper(lc, tally, liveLevels(ctl, true), trace, time.Second)
	measureStart := time.Now()

	// Staleness windows: cumulative probe counters sampled on a fixed
	// cadence by a real ticker; deltas between samples are the windows.
	tickerStart := time.Now()
	prevSamples, prevStale := tally.probes()
	var windows []ChurnWindow
	windowDone := make(chan struct{})
	windowStop := make(chan struct{})
	go func() {
		defer close(windowDone)
		tick := time.NewTicker(spec.WindowLen)
		defer tick.Stop()
		for {
			select {
			case <-windowStop:
				return
			case <-tick.C:
				curSamples, curStale := tally.probes()
				w := ChurnWindow{}
				for g := 0; g < 2; g++ {
					samples := curSamples[g] - prevSamples[g]
					stale := curStale[g] - prevStale[g]
					frac := 0.0
					if samples > 0 {
						frac = float64(stale) / float64(samples)
					}
					w.Samples = append(w.Samples, samples)
					w.Stale = append(w.Stale, stale)
					w.Fraction = append(w.Fraction, frac)
				}
				prevSamples, prevStale = curSamples, curStale
				windows = append(windows, w)
			}
		}
	}()

	// The schedule: baseline -> SIGKILL -> outage -> restart -> watch.
	victim := lc.IDs()[1]
	time.Sleep(spec.Baseline)
	if err := lc.Kill(victim); err != nil {
		close(windowStop)
		<-windowDone
		scraper.finish()
		haltAll(workers)
		return ChurnRun{}, nil, "", err
	}
	opts.progress("live churn %s: killed %s (SIGKILL)", arm.name, victim)
	time.Sleep(spec.Outage)
	if err := lc.Restart(victim); err != nil {
		close(windowStop)
		<-windowDone
		scraper.finish()
		haltAll(workers)
		return ChurnRun{}, nil, "", err
	}
	recoveredAt := time.Now()
	restartMode := "empty engine"
	if arm.persist {
		restartMode = "recovering from data dir"
	}
	opts.progress("live churn %s: restarted %s (%s)", arm.name, victim, restartMode)
	time.Sleep(spec.PostWatch)
	close(windowStop)
	<-windowDone
	snap := tally.snapshot()
	elapsed := time.Since(measureStart)
	series := scraper.finish()
	haltAll(workers)

	run := ChurnRun{Policy: arm.name, Windows: windows}
	run.Operations = snap.ops
	run.Errors = snap.errors
	if elapsed > 0 {
		run.ThroughputOps = float64(snap.ops) / elapsed.Seconds()
	}
	run.HintsQueued = mon.nodeStats(func(s wire.StatsResponse) uint64 { return s.HintsQueued })
	run.RowsHealed = mon.nodeStats(func(s wire.StatsResponse) uint64 { return s.RepairRows })
	// Every member other than the victim started on an empty data dir
	// (recovered 0), so this sum is the victim's startup index rebuild.
	run.RowsRecovered = mon.nodeStats(func(s wire.StatsResponse) uint64 { return s.RecoveredRows })

	// Window offsets relative to the victim's return; the post-recovery
	// horizon starts at the first window fully after it. Same assembly as
	// the simulated churn bench, driven by wall-clock instants.
	recoveryOffset := recoveredAt.Sub(tickerStart)
	postStart := len(windows)
	for i := range windows {
		start := time.Duration(i) * spec.WindowLen
		windows[i].OffsetMs = durMs(start - recoveryOffset)
		if start >= recoveryOffset && i < postStart {
			postStart = i
		}
	}
	names := []string{"hot", "cold"}
	tailStart := postStart + (len(windows)-postStart)*3/4
	for g := 0; g < 2; g++ {
		cg := ChurnGroup{Name: names[g], Tolerance: tols[g], RecoveredWithinMs: -1,
			FinalLevel: ctl.GroupLast(g).Level.String()}
		streak := 0
		var tailStale, tailSamples uint64
		for i := postStart; i < len(windows); i++ {
			w := windows[i]
			cg.PostSamples += w.Samples[g]
			cg.PostStale += w.Stale[g]
			if i >= tailStart {
				tailSamples += w.Samples[g]
				tailStale += w.Stale[g]
			}
			if w.Fraction[g] > cg.WorstWindow {
				cg.WorstWindow = w.Fraction[g]
			}
			within := w.Samples[g] < 10 || w.Fraction[g] <= tols[g]
			if within {
				streak++
				if streak == spec.RecoverWindows && cg.RecoveredWithinMs < 0 {
					first := i - spec.RecoverWindows + 1
					cg.RecoveredWithinMs = durMs(time.Duration(first)*spec.WindowLen - recoveryOffset)
					if cg.RecoveredWithinMs < 0 {
						cg.RecoveredWithinMs = 0
					}
				}
			} else {
				streak = 0
				cg.RecoveredWithinMs = -1
			}
		}
		if cg.PostSamples > 0 {
			cg.PostFraction = float64(cg.PostStale) / float64(cg.PostSamples)
		}
		if tailSamples > 0 {
			cg.TailFraction = float64(tailStale) / float64(tailSamples)
		}
		run.Groups = append(run.Groups, cg)
	}
	return run, series, string(victim), nil
}

package dist

import (
	"sync"
	"testing"
)

func choosersUnderTest(n int64) map[string]KeyChooser {
	return map[string]KeyChooser{
		"uniform":   NewUniformChooser(n),
		"zipfian":   NewZipfianChooser(n),
		"scrambled": NewScrambledZipfianChooser(n),
		"latest":    NewLatestChooser(n),
		"hotspot":   NewHotspotChooser(n, 0.2, 0.8),
	}
}

// TestChoosersStayInRange: every chooser must emit indices in [0, n),
// including after the keyspace grows.
func TestChoosersStayInRange(t *testing.T) {
	const n = 1000
	for name, ch := range choosersUnderTest(n) {
		rng := NewRand(7)
		limit := int64(n)
		for i := 0; i < 30000; i++ {
			if i == 15000 {
				limit = 1500
				ch.SetItemCount(limit)
			}
			k := ch.Next(rng)
			if k < 0 || k >= limit {
				t.Fatalf("%s: key %d outside [0,%d)", name, k, limit)
			}
		}
	}
}

// TestChoosersDeterministic: same seed, same stream.
func TestChoosersDeterministic(t *testing.T) {
	const n = 500
	for name := range choosersUnderTest(n) {
		a, b := choosersUnderTest(n)[name], choosersUnderTest(n)[name]
		ra, rb := NewRand(11), NewRand(11)
		for i := 0; i < 2000; i++ {
			if ka, kb := a.Next(ra), b.Next(rb); ka != kb {
				t.Fatalf("%s: draw %d differs under same seed: %d vs %d", name, i, ka, kb)
			}
		}
	}
}

// TestZipfianSkew: the YCSB zipfian must concentrate mass on low indices —
// with theta=0.99 the first 10% of a 10k keyspace absorbs well over half
// the draws — while uniform must not.
func TestZipfianSkew(t *testing.T) {
	const n = 10_000
	count := func(ch KeyChooser, seed int64) (inHead int) {
		rng := NewRand(seed)
		for i := 0; i < 50_000; i++ {
			if ch.Next(rng) < n/10 {
				inHead++
			}
		}
		return
	}
	if got := count(NewZipfianChooser(n), 3); got < 30_000 {
		t.Errorf("zipfian head mass = %d/50000, want > 30000", got)
	}
	if got := count(NewUniformChooser(n), 3); got < 4000 || got > 6000 {
		t.Errorf("uniform head mass = %d/50000, want ~5000", got)
	}
	// Scrambling preserves skew (some keys are hot) but moves it off the
	// low indices: the head must no longer dominate.
	if got := count(NewScrambledZipfianChooser(n), 3); got > 15_000 {
		t.Errorf("scrambled zipfian head mass = %d/50000, want scattered", got)
	}
}

// TestLatestFavorsNewest: workload D's chooser must concentrate on the
// high end of the keyspace, and follow the frontier as it grows.
func TestLatestFavorsNewest(t *testing.T) {
	const n = 10_000
	ch := NewLatestChooser(n)
	rng := NewRand(5)
	inTail := 0
	for i := 0; i < 20_000; i++ {
		if ch.Next(rng) >= n-n/10 {
			inTail++
		}
	}
	if inTail < 12_000 {
		t.Fatalf("latest tail mass = %d/20000, want > 12000", inTail)
	}
	ch.SetItemCount(2 * n)
	sawFrontier := false
	for i := 0; i < 1000; i++ {
		if ch.Next(rng) >= n {
			sawFrontier = true
			break
		}
	}
	if !sawFrontier {
		t.Fatal("latest chooser never reached the grown keyspace")
	}
}

// TestHotspotFractions pins the two knobs: ~80% of draws in the first 20%
// of keys.
func TestHotspotFractions(t *testing.T) {
	const n = 10_000
	ch := NewHotspotChooser(n, 0.2, 0.8)
	rng := NewRand(9)
	hot := 0
	const draws = 50_000
	for i := 0; i < draws; i++ {
		if ch.Next(rng) < n/5 {
			hot++
		}
	}
	if frac := float64(hot) / draws; frac < 0.77 || frac > 0.83 {
		t.Fatalf("hotspot hot fraction = %.3f, want ~0.8", frac)
	}
}

// TestChoosersConcurrent exercises Next and SetItemCount from parallel
// goroutines; meaningful under -race (the real-time runtime drives
// choosers from multiple mailbox goroutines).
func TestChoosersConcurrent(t *testing.T) {
	for name, ch := range choosersUnderTest(1000) {
		ch := ch
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			var wg sync.WaitGroup
			for g := 0; g < 4; g++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					rng := NewRand(seed)
					for i := 0; i < 3000; i++ {
						_ = ch.Next(rng)
						if i%100 == 0 {
							ch.SetItemCount(1000 + int64(i))
						}
					}
				}(int64(g))
			}
			wg.Wait()
		})
	}
}

package dist

import (
	"math"
	"math/rand"
	"slices"
	"sync"
	"testing"
	"time"
)

// samplersUnderTest enumerates every sampler with its closed-form moments;
// the property tests below run the same checks over all of them.
func samplersUnderTest() map[string]Sampler {
	return map[string]Sampler{
		"constant":    Constant{V: 3.5},
		"uniform":     Uniform{Lo: 2, Hi: 6},
		"exponential": NewExponential(1.7),
		"lognormal":   LognormalFromMeanP99(1.3, 12.0),
		"pareto":      ParetoFromMean(1.0, 2.5),
		"shifted":     Shifted{Base: NewExponential(0.5), Offset: 2},
		"bimodal":     NewBimodal(LognormalFromMeanP99(1.0, 2.0), Shifted{Base: NewExponential(2.0), Offset: 4}, 0.15),
		"mixture": NewMixture(
			Component{Weight: 2, Sampler: Uniform{Lo: 0, Hi: 1}},
			Component{Weight: 1, Sampler: NewExponential(3)},
			Component{Weight: 1, Sampler: Constant{V: 10}},
		),
		"drifting": driftingAt(0.35),
	}
}

// driftingAt freezes a Drifting sampler mid-drift so the shared property
// tests cover its instantaneous mixture.
func driftingAt(p float64) *Drifting {
	d := NewDrifting(LognormalFromMeanP99(1.0, 2.5), Shifted{Base: NewExponential(1.2), Offset: 0.8})
	d.SetProgress(p)
	return d
}

const sampleN = 200_000

func empirical(t *testing.T, s Sampler, seed int64) (mean float64, sorted []float64) {
	t.Helper()
	rng := NewRand(seed)
	sorted = make([]float64, sampleN)
	sum := 0.0
	for i := range sorted {
		v := s.Sample(rng)
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("sample %d is %v", i, v)
		}
		sorted[i] = v
		sum += v
	}
	slices.Sort(sorted)
	return sum / sampleN, sorted
}

// TestEmpiricalMeanMatchesAnalytic checks E[X] against Mean() for every
// sampler: the law of large numbers at n=200k should land within 3%.
func TestEmpiricalMeanMatchesAnalytic(t *testing.T) {
	for name, s := range samplersUnderTest() {
		mean, _ := empirical(t, s, 1)
		want := s.Mean()
		if want == 0 {
			if math.Abs(mean) > 0.01 {
				t.Errorf("%s: empirical mean %v, want ~0", name, mean)
			}
			continue
		}
		if rel := math.Abs(mean-want) / math.Abs(want); rel > 0.03 {
			t.Errorf("%s: empirical mean %.4f vs analytic %.4f (rel err %.3f)", name, mean, want, rel)
		}
	}
}

// TestEmpiricalQuantilesMatchAnalytic checks Quantile(p) against the
// sample in CDF space using the atom-safe quantile property
// P(X < q) <= p <= P(X <= q), each side widened by sampling tolerance.
// For continuous samplers both sides pinch to p; for point masses (the
// Constant sampler, the mixture's Constant component) the bracket is what
// a correct generalized inverse must satisfy.
func TestEmpiricalQuantilesMatchAnalytic(t *testing.T) {
	for name, s := range samplersUnderTest() {
		_, sorted := empirical(t, s, 2)
		n := float64(len(sorted))
		for _, p := range []float64{0.5, 0.9, 0.99} {
			q := s.Quantile(p)
			below, atOrBelow := 0, 0
			for _, v := range sorted {
				if v < q {
					below++
				}
				if v <= q {
					atOrBelow++
				} else {
					break // sorted: nothing later can be <= q
				}
			}
			if float64(below)/n > p+0.01 {
				t.Errorf("%s: P(X < Quantile(%.2f)=%.4f) = %.4f > p", name, p, q, float64(below)/n)
			}
			if float64(atOrBelow)/n < p-0.01 {
				t.Errorf("%s: P(X <= Quantile(%.2f)=%.4f) = %.4f < p", name, p, q, float64(atOrBelow)/n)
			}
		}
	}
}

// TestQuantileCDFRoundTrip pins Quantile and CDF as inverses for every
// sampler with a continuous CDF.
func TestQuantileCDFRoundTrip(t *testing.T) {
	for name, s := range samplersUnderTest() {
		if name == "constant" {
			continue // step CDF has no continuous inverse
		}
		c, ok := s.(CDFer)
		if !ok {
			t.Fatalf("%s does not implement CDF", name)
		}
		// The test mixture contains a point mass (Constant component) of
		// weight 0.25, so its CDF may jump past p at the quantile; all
		// other samplers must round-trip tightly.
		slack := 1e-6
		if name == "mixture" {
			slack = 0.2501
		}
		for _, p := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999} {
			q := s.Quantile(p)
			got := c.CDF(q)
			if got < p-1e-6 || got > p+slack {
				t.Errorf("%s: CDF(Quantile(%v)) = %v", name, p, got)
			}
		}
	}
}

// TestQuantileMonotone checks Quantile is nondecreasing in p.
func TestQuantileMonotone(t *testing.T) {
	for name, s := range samplersUnderTest() {
		prev := math.Inf(-1)
		for p := 0.001; p < 1; p += 0.007 {
			q := s.Quantile(p)
			if q < prev-1e-9 {
				t.Fatalf("%s: Quantile not monotone at p=%v: %v < %v", name, p, q, prev)
			}
			prev = q
		}
	}
}

// TestSeededDeterminism: the same seed must reproduce the identical stream
// for every sampler, and different seeds must diverge.
func TestSeededDeterminism(t *testing.T) {
	for name, s := range samplersUnderTest() {
		a, b := NewRand(42), NewRand(42)
		c := NewRand(43)
		diverged := false
		for i := 0; i < 1000; i++ {
			va, vb, vc := s.Sample(a), s.Sample(b), s.Sample(c)
			if va != vb {
				t.Fatalf("%s: draw %d differs under the same seed: %v vs %v", name, i, va, vb)
			}
			if va != vc {
				diverged = true
			}
		}
		if name != "constant" && !diverged {
			t.Errorf("%s: seeds 42 and 43 produced identical streams", name)
		}
	}
}

// TestLognormalFromMeanP99Fit checks the solved (mu, sigma) hit the
// requested mean and 99th percentile exactly.
func TestLognormalFromMeanP99Fit(t *testing.T) {
	cases := [][2]float64{{1.0, 2.5}, {1.3, 12.0}, {2.0, 9.0}, {1.0, 1.05}}
	for _, c := range cases {
		l := LognormalFromMeanP99(c[0], c[1])
		if got := l.Mean(); math.Abs(got-c[0])/c[0] > 1e-9 {
			t.Errorf("fit(%v, %v): Mean() = %v", c[0], c[1], got)
		}
		if got := l.Quantile(0.99); math.Abs(got-c[1])/c[1] > 1e-6 {
			t.Errorf("fit(%v, %v): Quantile(0.99) = %v", c[0], c[1], got)
		}
	}
	// Degenerate and unattainable requests must stay finite and positive.
	for _, c := range cases {
		l := LognormalFromMeanP99(c[0], c[0]*0.5) // p99 below mean
		if m := l.Mean(); math.IsNaN(m) || m <= 0 {
			t.Errorf("degenerate fit mean = %v", m)
		}
	}
	l := LognormalFromMeanP99(1.0, 100.0) // beyond lognormal reach
	if m := l.Mean(); math.IsNaN(m) || m <= 0 {
		t.Errorf("clamped fit mean = %v", m)
	}
}

// TestParetoTailHeavierThanLognormal pins the reason Pareto exists in this
// package: at matched means, its extreme tail must dominate.
func TestParetoTailHeavierThanLognormal(t *testing.T) {
	pa := ParetoFromMean(1.0, 2.2)
	ln := LognormalFromMeanP99(1.0, pa.Quantile(0.99))
	if pa.Quantile(0.99999) <= ln.Quantile(0.99999) {
		t.Fatalf("pareto p99.999 %v not above lognormal %v", pa.Quantile(0.99999), ln.Quantile(0.99999))
	}
}

// TestSampleDuration covers the unit bridge and its negative clamp.
func TestSampleDuration(t *testing.T) {
	rng := NewRand(1)
	if d := SampleDuration(Constant{V: 2.5}, rng, time.Millisecond); d != 2500*time.Microsecond {
		t.Fatalf("SampleDuration = %v", d)
	}
	if d := SampleDuration(Constant{V: -3}, rng, time.Second); d != 0 {
		t.Fatalf("negative sample not clamped: %v", d)
	}
}

// TestMixturePanicsOnEmpty documents the construction contract.
func TestMixturePanicsOnEmpty(t *testing.T) {
	for _, fn := range []func(){
		func() { NewMixture() },
		func() { NewMixture(Component{Weight: -1, Sampler: Constant{V: 1}}) },
		func() { NewBimodal(Constant{V: 1}, Constant{V: 2}, 1.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad construction did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestDriftingEndpointsAndMonotoneMean(t *testing.T) {
	from := Constant{V: 1}
	to := Constant{V: 4}
	d := NewDrifting(from, to)
	rng := NewRand(5)
	// Progress 0: pure From.
	for i := 0; i < 100; i++ {
		if v := d.Sample(rng); v != 1 {
			t.Fatalf("progress 0 sampled %v", v)
		}
	}
	if d.Mean() != 1 || d.Quantile(0.5) != 1 {
		t.Fatalf("progress 0 moments: mean=%v q50=%v", d.Mean(), d.Quantile(0.5))
	}
	// Progress 1: pure To.
	d.SetProgress(1)
	for i := 0; i < 100; i++ {
		if v := d.Sample(rng); v != 4 {
			t.Fatalf("progress 1 sampled %v", v)
		}
	}
	if d.Mean() != 4 {
		t.Fatalf("progress 1 mean = %v", d.Mean())
	}
	// Mean interpolates linearly and monotonically between the regimes.
	prev := math.Inf(-1)
	for p := 0.0; p <= 1.0001; p += 0.1 {
		d.SetProgress(p)
		m := d.Mean()
		if m < prev-1e-12 {
			t.Fatalf("mean not monotone at progress %v: %v < %v", p, m, prev)
		}
		want := 1 + 3*math.Min(p, 1)
		if math.Abs(m-want) > 1e-9 {
			t.Fatalf("mean at progress %v = %v, want %v", p, m, want)
		}
		prev = m
	}
	// Out-of-range progress clamps.
	d.SetProgress(7)
	if d.Progress() != 1 {
		t.Fatalf("progress not clamped: %v", d.Progress())
	}
	d.SetProgress(math.NaN())
	if d.Progress() != 0 {
		t.Fatalf("NaN progress = %v, want 0", d.Progress())
	}
}

func TestDriftingEmpiricalMeanTracksProgress(t *testing.T) {
	d := driftingAt(0.6)
	mean, _ := empirical(t, d, 42)
	want := d.Mean()
	if math.Abs(mean-want)/want > 0.03 {
		t.Fatalf("empirical mean %v vs analytic %v at progress 0.6", mean, want)
	}
}

// TestDriftingConcurrentSetProgress exercises the one mutable sampler
// under -race: samples race with drift advancement by design.
func TestDriftingConcurrentSetProgress(t *testing.T) {
	d := NewDrifting(Constant{V: 1}, Constant{V: 2})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i <= 1000; i++ {
			d.SetProgress(float64(i) / 1000)
		}
	}()
	go func() {
		defer wg.Done()
		rng := NewRand(1)
		for i := 0; i < 5000; i++ {
			if v := d.Sample(rng); v != 1 && v != 2 {
				t.Errorf("impossible sample %v", v)
				return
			}
		}
	}()
	wg.Wait()
}

// TestSamplersConcurrentUse shares one sampler value across goroutines,
// each with its own rng — the documented concurrency contract — and is
// meaningful under -race.
func TestSamplersConcurrentUse(t *testing.T) {
	for name, s := range samplersUnderTest() {
		s := s
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			var wg sync.WaitGroup
			for g := 0; g < 4; g++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					rng := NewRand(seed)
					for i := 0; i < 5000; i++ {
						_ = s.Sample(rng)
					}
					_ = s.Mean()
					_ = s.Quantile(0.99)
				}(int64(g))
			}
			wg.Wait()
		})
	}
}

var sinkF float64

func BenchmarkSamplers(b *testing.B) {
	for name, s := range samplersUnderTest() {
		b.Run(name, func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			for i := 0; i < b.N; i++ {
				sinkF = s.Sample(rng)
			}
		})
	}
}

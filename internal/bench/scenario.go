package bench

import (
	"fmt"
	"time"

	"harmony/internal/client"
	"harmony/internal/cluster"
	"harmony/internal/core"
	"harmony/internal/sim"
	"harmony/internal/simnet"
	"harmony/internal/wire"
	"harmony/internal/ycsb"
)

// Scenario bundles a testbed profile with the cluster and monitoring
// parameters the experiments share.
type Scenario struct {
	Name string
	Spec cluster.Spec
	// MonitorInterval is Harmony's collection cadence (virtual time).
	MonitorInterval time.Duration
	// HarmonyTolerances are the two tolerable-stale-rate settings the
	// paper evaluates on this testbed (Grid'5000: 20%/40%; EC2: 40%/60%).
	HarmonyTolerances [2]float64
	// Prepare, when set, is invoked after the cluster is built and before
	// load starts; scenarios use it to inject mid-run dynamics (the
	// drifting profile's jitter schedule). The returned stop function
	// (may be nil) runs when the measurement ends.
	Prepare func(s *sim.Sim, c *cluster.Cluster) (stop func())
	// RegimeChangeAt, when positive, is the virtual instant (measured from
	// Prepare) at which the scenario's mid-run regime change begins, and
	// RegimeStableBy when the environment has fully settled into the new
	// regime — the anchors re-adaptation-lag measurements need. Zero for
	// static scenarios.
	RegimeChangeAt time.Duration
	RegimeStableBy time.Duration
}

// Grid5000 is the paper's first testbed scaled to simulation: 20 physical
// LAN nodes (the paper used 84; staleness and percentile shapes are
// governed by rate×latency products, not node count), RF=5,
// topology-aware placement, read repair on.
func Grid5000() Scenario {
	spec := cluster.DefaultSpec()
	spec.Profile = simnet.Grid5000Profile()
	return Scenario{
		Name:              "grid5000",
		Spec:              spec,
		MonitorInterval:   250 * time.Millisecond,
		HarmonyTolerances: [2]float64{0.20, 0.40},
	}
}

// EC2 is the paper's second testbed: 20 virtualized nodes with ~5x the
// base latency, heavy-tailed jitter, and slower (virtualized) per-message
// service times.
func EC2() Scenario {
	spec := cluster.DefaultSpec()
	spec.Profile = simnet.EC2Profile()
	spec.Service = cluster.DefaultServiceProfile().Scale(1.5)
	return Scenario{
		Name:              "ec2",
		Spec:              spec,
		MonitorInterval:   250 * time.Millisecond,
		HarmonyTolerances: [2]float64{0.40, 0.60},
	}
}

// WANHeavyTail runs the cluster as two datacenters joined by heavy-tailed
// (Pareto-jitter) WAN links. It is the scenario where waiting on remote
// replicas is most expensive and most variable, so the gap between static
// strong reads and Harmony's adaptive level is widest. Tolerances match
// the EC2 settings: a high-variance network earns looser targets.
func WANHeavyTail() Scenario {
	spec := cluster.DefaultSpec()
	spec.DCs = 2
	spec.RacksPerDC = 2 // keep the node count at 20 (2x2x5)
	spec.Profile = simnet.WANHeavyTailProfile()
	spec.Service = cluster.DefaultServiceProfile().Scale(1.25)
	return Scenario{
		Name:              "wan-heavytail",
		Spec:              spec,
		MonitorInterval:   250 * time.Millisecond,
		HarmonyTolerances: [2]float64{0.40, 0.60},
	}
}

// Degraded runs the LAN topology through an incident: a latency floor
// plus exponential stalls on every link and slowed service times. It
// exercises the controller's re-adaptation when the network it calibrated
// on disappears from under it.
func Degraded() Scenario {
	spec := cluster.DefaultSpec()
	spec.Profile = simnet.DegradedProfile()
	spec.Service = cluster.DefaultServiceProfile().Scale(2)
	return Scenario{
		Name:              "degraded",
		Spec:              spec,
		MonitorInterval:   250 * time.Millisecond,
		HarmonyTolerances: [2]float64{0.40, 0.60},
	}
}

// CongestedBimodal keeps the Grid'5000-like topology but mixes a
// congested slow mode into 15% of deliveries: two latency regimes under
// one profile, the shape single-mode jitter models miss.
func CongestedBimodal() Scenario {
	spec := cluster.DefaultSpec()
	spec.Profile = simnet.CongestedBimodalProfile()
	return Scenario{
		Name:              "congested-bimodal",
		Spec:              spec,
		MonitorInterval:   250 * time.Millisecond,
		HarmonyTolerances: [2]float64{0.20, 0.40},
	}
}

// Drifting runs the LAN topology through a mid-run regime change: the
// network starts healthy and its jitter drifts into the degraded regime
// over DriftWindow of virtual time, starting after a stable lead-in. It
// is the re-adaptation-speed scenario — a controller calibrated on the
// healthy network watches its latency estimate decay underneath it.
func Drifting() Scenario {
	profile, knob := simnet.DriftingProfile()
	spec := cluster.DefaultSpec()
	spec.Profile = profile
	const (
		lead        = 2 * time.Second // healthy lead-in before the drift begins
		driftWindow = 5 * time.Second // full drift healthy -> degraded
	)
	return Scenario{
		Name:              "drifting",
		Spec:              spec,
		MonitorInterval:   250 * time.Millisecond,
		HarmonyTolerances: [2]float64{0.20, 0.40},
		RegimeChangeAt:    lead,
		RegimeStableBy:    lead + driftWindow,
		Prepare: func(s *sim.Sim, c *cluster.Cluster) func() {
			knob.SetProgress(0)
			start := s.Now()
			return sim.Every(s,
				func() time.Duration { return 100 * time.Millisecond },
				func() {
					elapsed := s.Now().Sub(start) - lead
					knob.SetProgress(elapsed.Seconds() / driftWindow.Seconds())
				})
		},
	}
}

// Scenarios returns every named scenario keyed by name, for CLIs and
// sweeps that select testbeds by string.
func Scenarios() map[string]Scenario {
	ss := map[string]Scenario{}
	for _, sc := range []Scenario{
		Grid5000(), EC2(), WANHeavyTail(), Degraded(), CongestedBimodal(), Drifting(),
	} {
		ss[sc.Name] = sc
	}
	return ss
}

// PolicyKind selects how read consistency levels are chosen during a run.
type PolicyKind int

// Policy kinds.
const (
	// PolicyEventual is Cassandra's static eventual consistency (CL=ONE).
	PolicyEventual PolicyKind = iota
	// PolicyStrong is static strong consistency (CL=ALL).
	PolicyStrong
	// PolicyQuorum is static quorum reads (ablation baseline).
	PolicyQuorum
	// PolicyHarmony adapts the level with the monitor + controller.
	PolicyHarmony
)

// PolicySpec names a consistency policy for a run.
type PolicySpec struct {
	Kind PolicyKind
	// Tolerance is app_stale_rate for PolicyHarmony.
	Tolerance float64
	// FixedTp, when positive, runs Harmony with a constant propagation
	// time — the no-latency-monitoring ablation.
	FixedTp time.Duration
}

// Name renders the policy the way the paper labels its curves.
func (p PolicySpec) Name() string {
	switch p.Kind {
	case PolicyEventual:
		return "Eventual"
	case PolicyStrong:
		return "Strong"
	case PolicyQuorum:
		return "Quorum"
	case PolicyHarmony:
		if p.FixedTp > 0 {
			return fmt.Sprintf("Harmony-%d%%-fixedTp", int(p.Tolerance*100+0.5))
		}
		return fmt.Sprintf("Harmony-%d%%", int(p.Tolerance*100+0.5))
	}
	return "unknown"
}

// policy builds the client.ConsistencyPolicy and (for Harmony) the
// controller that must be fed by a monitor.
func (p PolicySpec) policy(n int, w ycsb.Workload, profile simnet.Profile) (client.ConsistencyPolicy, *core.Controller) {
	switch p.Kind {
	case PolicyStrong:
		return client.Fixed{Read: wire.All}, nil
	case PolicyQuorum:
		return client.Fixed{Read: wire.Quorum}, nil
	case PolicyHarmony:
		ctl := core.NewController(core.ControllerConfig{
			Policy:               core.Policy{Name: p.Name(), ToleratedStaleRate: p.Tolerance},
			N:                    n,
			AvgWriteBytes:        float64(w.ValueBytes),
			BandwidthBytesPerSec: profile.BandwidthBytesPerSec,
			FixedTp:              p.FixedTp,
		})
		return ctl, ctl
	default:
		return client.Fixed{}, nil
	}
}

// StandardPolicies returns the four curves of Fig. 5/6 for a scenario: the
// two Harmony tolerances plus the two static baselines, in the paper's
// legend order.
func StandardPolicies(sc Scenario) []PolicySpec {
	return []PolicySpec{
		{Kind: PolicyHarmony, Tolerance: sc.HarmonyTolerances[1]},
		{Kind: PolicyHarmony, Tolerance: sc.HarmonyTolerances[0]},
		{Kind: PolicyEventual},
		{Kind: PolicyStrong},
	}
}

// ThreadSweep is the client-thread x-axis of Fig. 5 and 6.
var ThreadSweep = []int{1, 15, 40, 70, 90, 100}

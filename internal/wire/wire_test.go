package wire

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func allSampleMessages() []Message {
	return []Message{
		ReadRequest{ID: 1, Key: []byte("k1"), Level: Quorum, Shadow: true},
		ReadRequest{ID: 28, Key: []byte("dk"), Level: One, DeadlineMs: 1500},
		WriteRequest{ID: 29, Key: []byte("wk"), Value: []byte("wv"), Level: Quorum,
			DeadlineMs: 750, TsHint: 1348500000000000000},
		WriteRequest{ID: 30, Key: []byte("wk2"), Delete: true, Level: One, TsHint: -3},
		Error{ID: 31, Code: ErrOverloaded, Msg: "coordinator at capacity"},
		ReadResponse{ID: 2, Found: true, Value: Value{Data: []byte("v"), Timestamp: 12345}, Stale: true, Achieved: Two},
		WriteRequest{ID: 3, Key: []byte("k2"), Value: []byte("payload"), Level: One},
		WriteRequest{ID: 4, Key: []byte("k3"), Delete: true, Level: All},
		WriteResponse{ID: 5, OK: true, Timestamp: -42},
		ReplicaRead{ID: 6, Key: []byte("rk")},
		ReplicaReadResp{ID: 7, Found: false},
		Mutation{ID: 8, Key: []byte("mk"), Value: Value{Data: []byte("mv"), Timestamp: 99, Tombstone: true}, Hint: true},
		MutationAck{ID: 9},
		Repair{Key: []byte("rp"), Value: Value{Data: []byte("rv"), Timestamp: 7}},
		StatsRequest{ID: 10},
		StatsResponse{ID: 11, Reads: 1, Writes: 2, ReplicaOps: 3, BytesRead: 4, BytesWrit: 5, RepairsSent: 6, HintsQueued: 7},
		StatsResponse{ID: 15, Reads: 8, Writes: 9,
			Groups: []GroupCounters{{Reads: 5, Writes: 3, BytesWritten: 4096}, {Reads: 0, Writes: 0}, {Reads: 1 << 40, Writes: 7}}},
		StatsResponse{ID: 16, Reads: 2, Epoch: 9,
			Groups: []GroupCounters{{Reads: 1, Writes: 1, BytesWritten: 100}},
			KeySamples: []KeySample{
				{Key: []byte("hot0"), Reads: 12.5, Writes: 3.25},
				{Key: []byte("cold7"), Reads: 0.125, Writes: 0},
			}},
		Ping{ID: 12, Sent: 1234567890},
		Pong{ID: 13, Sent: -5},
		GossipSyn{From: "node-1", Digests: []GossipEntry{{Node: "node-2", Generation: 3, Version: 9}}},
		GossipAck{From: "node-2", Entries: []GossipEntry{{Node: "node-1", Generation: 1, Version: 2}, {Node: "node-3", Generation: 4, Version: 5}}},
		Error{ID: 14, Code: ErrTimeout, Msg: "replica timeout"},
		GroupUpdate{Epoch: 3, Tolerances: []float64{0.02, 0.4}, Default: 1,
			Entries: []GroupAssign{{Key: []byte("user0000000001"), Group: 0}, {Key: []byte("user0000000002"), Group: 1}}},
		GroupUpdate{Epoch: 1, Tolerances: []float64{0.5}},
		StatsResponse{ID: 17, RepairRows: 1 << 33, RepairAgeMs: 123456, RecoveredRows: 1 << 21,
			AliveMembers: 5,
			Groups:       []GroupCounters{{Reads: 4, RepairRows: 9, RepairAgeMs: 8000}}},
		TreeRequest{ID: 18, Ranges: []TokenRange{{Start: 1, End: 2}, {Start: 1 << 63, End: 5}}},
		TreeRequest{ID: 19},
		TreeResponse{ID: 20, Trees: []RangeTree{
			{Range: TokenRange{Start: 9, End: 1 << 62}, Root: 0xdeadbeef, Leaves: []uint64{1, 0, 1 << 50}},
			{Range: TokenRange{Start: 3, End: 4}, Root: 0},
		}},
		TreeResponse{ID: 21},
		RangeSync{ID: 22, LeafCount: 64,
			Leaves:  []LeafRef{{Range: TokenRange{Start: 7, End: 8}, Leaf: 31}},
			Entries: []SyncEntry{{Key: []byte("sk"), Value: Value{Data: []byte("sv"), Timestamp: 44}}, {Key: []byte("dead"), Value: Value{Timestamp: 45, Tombstone: true}}},
			Reply:   true},
		RangeSync{ID: 23, Done: true},
		ReadRequest{ID: 24, Key: []byte("sk"), Level: Session,
			Token: []ClockEntry{{Node: "n1", Counter: 7}, {Node: "n2", Counter: 1 << 40}}},
		ReadResponse{ID: 25, Found: true, Achieved: Session,
			Value: Value{Data: []byte("sv"), Timestamp: 88, Clock: []ClockEntry{{Node: "n1", Counter: 88}}}},
		WriteResponse{ID: 26, OK: true, Timestamp: 99,
			Clock: []ClockEntry{{Node: "a", Counter: 99}, {Node: "b", Counter: 3}}},
		Mutation{ID: 27, Key: []byte("ck"), Value: Value{Data: []byte("cv"), Timestamp: 5,
			Clock: []ClockEntry{{Node: "n3", Counter: 5}}}},
		Repair{Key: []byte("rp2"), Value: Value{Timestamp: 6, Tombstone: true,
			Clock: []ClockEntry{{Node: "", Counter: 1}, {Node: "n4", Counter: 6}}}},
	}
}

func TestRoundTripAllKinds(t *testing.T) {
	for _, m := range allSampleMessages() {
		b, err := Encode(nil, m)
		if err != nil {
			t.Fatalf("%T encode: %v", m, err)
		}
		got, n, err := Decode(b)
		if err != nil {
			t.Fatalf("%T decode: %v", m, err)
		}
		if n != len(b) {
			t.Fatalf("%T consumed %d of %d bytes", m, n, len(b))
		}
		if !reflect.DeepEqual(got, m) {
			t.Fatalf("round trip mismatch:\n got %#v\nwant %#v", got, m)
		}
	}
}

func TestDecodeTruncatedFrames(t *testing.T) {
	for _, m := range allSampleMessages() {
		b, err := Encode(nil, m)
		if err != nil {
			t.Fatal(err)
		}
		for cut := 0; cut < len(b); cut++ {
			_, _, err := Decode(b[:cut])
			if err == nil {
				t.Fatalf("%T: decoding %d/%d bytes succeeded", m, cut, len(b))
			}
		}
	}
}

func TestDecodeGarbageNeverPanics(t *testing.T) {
	if err := quick.Check(func(raw []byte) bool {
		_, _, _ = Decode(raw) // must not panic
		return true
	}, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTripPropertyReadRequest(t *testing.T) {
	if err := quick.Check(func(id uint64, key []byte, lvl uint8, shadow bool, deadline uint64) bool {
		level := ConsistencyLevel(lvl%5 + 1)
		in := ReadRequest{ID: id, Key: key, Level: level, Shadow: shadow, DeadlineMs: deadline}
		b, err := Encode(nil, in)
		if err != nil {
			return false
		}
		out, _, err := Decode(b)
		if err != nil {
			return false
		}
		got := out.(ReadRequest)
		return got.ID == in.ID && bytes.Equal(got.Key, in.Key) &&
			got.Level == in.Level && got.Shadow == in.Shadow && got.DeadlineMs == in.DeadlineMs
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTripPropertyMutation(t *testing.T) {
	if err := quick.Check(func(id uint64, key, data []byte, ts int64, tomb, hint bool) bool {
		in := Mutation{ID: id, Key: key, Value: Value{Data: data, Timestamp: ts, Tombstone: tomb}, Hint: hint}
		b, err := Encode(nil, in)
		if err != nil {
			return false
		}
		out, _, err := Decode(b)
		if err != nil {
			return false
		}
		got := out.(Mutation)
		return got.ID == in.ID && bytes.Equal(got.Key, in.Key) &&
			bytes.Equal(got.Value.Data, in.Value.Data) &&
			got.Value.Timestamp == in.Value.Timestamp &&
			got.Value.Tombstone == in.Value.Tombstone && got.Hint == in.Hint
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTripPropertyStatsResponse(t *testing.T) {
	if err := quick.Check(func(id, reads, writes uint64, groups []uint64) bool {
		in := StatsResponse{ID: id, Reads: reads, Writes: writes}
		for i, g := range groups {
			in.Groups = append(in.Groups, GroupCounters{Reads: g, Writes: uint64(i)})
		}
		b, err := Encode(nil, in)
		if err != nil {
			return false
		}
		out, _, err := Decode(b)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(out, in)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTripPropertyStatsResponseEpochSamples(t *testing.T) {
	if err := quick.Check(func(id, epoch uint64, keys [][]byte, reads, writes []float64, bytesW []uint64) bool {
		in := StatsResponse{ID: id, Epoch: epoch}
		for i, k := range keys {
			if len(k) == 0 {
				k = nil // empty keys decode as nil
			}
			ks := KeySample{Key: k}
			if i < len(reads) {
				ks.Reads = reads[i]
			}
			if i < len(writes) {
				ks.Writes = writes[i]
			}
			in.KeySamples = append(in.KeySamples, ks)
		}
		for i, b := range bytesW {
			in.Groups = append(in.Groups, GroupCounters{Reads: uint64(i), Writes: b % 7, BytesWritten: b})
		}
		b, err := Encode(nil, in)
		if err != nil {
			return false
		}
		out, n, err := Decode(b)
		if err != nil || n != len(b) {
			return false
		}
		return reflect.DeepEqual(out, in)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTripPropertyGroupUpdate(t *testing.T) {
	if err := quick.Check(func(epoch uint64, tols []float64, def uint32, keys [][]byte, groups []uint32) bool {
		if len(tols) == 0 {
			tols = nil // empty slices decode as nil
		}
		in := GroupUpdate{Epoch: epoch, Tolerances: tols, Default: def}
		for i, k := range keys {
			if len(k) == 0 {
				k = nil // empty keys decode as nil
			}
			e := GroupAssign{Key: k}
			if i < len(groups) {
				e.Group = groups[i]
			}
			in.Entries = append(in.Entries, e)
		}
		b, err := Encode(nil, in)
		if err != nil {
			return false
		}
		out, n, err := Decode(b)
		if err != nil || n != len(b) {
			return false
		}
		return reflect.DeepEqual(out, in)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStreamReaderWriter(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	msgs := allSampleMessages()
	for _, m := range msgs {
		if err := w.Write(m); err != nil {
			t.Fatal(err)
		}
	}
	r := NewReader(&buf)
	for i, want := range msgs {
		got, err := r.Read()
		if err != nil {
			t.Fatalf("msg %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("msg %d mismatch: %#v vs %#v", i, got, want)
		}
	}
	if _, err := r.Read(); !errors.Is(err, io.EOF) {
		t.Fatalf("expected EOF, got %v", err)
	}
}

// chunkReader returns data in tiny chunks to exercise reassembly.
type chunkReader struct {
	data []byte
	r    *rand.Rand
}

func (c *chunkReader) Read(p []byte) (int, error) {
	if len(c.data) == 0 {
		return 0, io.EOF
	}
	n := 1 + c.r.Intn(3)
	if n > len(c.data) {
		n = len(c.data)
	}
	if n > len(p) {
		n = len(p)
	}
	copy(p, c.data[:n])
	c.data = c.data[n:]
	return n, nil
}

func TestStreamReaderFragmented(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	msgs := allSampleMessages()
	for _, m := range msgs {
		if err := w.Write(m); err != nil {
			t.Fatal(err)
		}
	}
	r := NewReader(&chunkReader{data: buf.Bytes(), r: rand.New(rand.NewSource(3))})
	for i, want := range msgs {
		got, err := r.Read()
		if err != nil {
			t.Fatalf("msg %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("msg %d mismatch under fragmentation", i)
		}
	}
}

func TestBlockFor(t *testing.T) {
	cases := []struct {
		cl   ConsistencyLevel
		rf   int
		want int
	}{
		{One, 5, 1}, {Two, 5, 2}, {Three, 5, 3}, {Quorum, 5, 3}, {All, 5, 5},
		{Quorum, 3, 2}, {All, 3, 3}, {Three, 2, 2}, // clamp to rf
		{Quorum, 1, 1}, {One, 1, 1},
	}
	for _, c := range cases {
		if got := c.cl.BlockFor(c.rf); got != c.want {
			t.Errorf("BlockFor(%v, rf=%d) = %d, want %d", c.cl, c.rf, got, c.want)
		}
	}
}

func TestLevelForCount(t *testing.T) {
	// For RF=5 (the paper's setting): quorum = 3.
	cases := []struct {
		x, rf int
		want  ConsistencyLevel
	}{
		{0, 5, One}, {1, 5, One}, {2, 5, Two}, {3, 5, Quorum},
		{4, 5, All}, {5, 5, All}, {9, 5, All},
		{1, 3, One}, {2, 3, Quorum}, {3, 3, All},
	}
	for _, c := range cases {
		if got := LevelForCount(c.x, c.rf); got != c.want {
			t.Errorf("LevelForCount(%d, rf=%d) = %v, want %v", c.x, c.rf, got, c.want)
		}
	}
}

func TestLevelForCountRoundTripProperty(t *testing.T) {
	// The level chosen for x must block for at least min(x, rf) replicas.
	if err := quick.Check(func(xRaw, rfRaw uint8) bool {
		rf := int(rfRaw%9) + 1
		x := int(xRaw % 12)
		lvl := LevelForCount(x, rf)
		want := x
		if want > rf {
			want = rf
		}
		if want < 1 {
			want = 1
		}
		return lvl.BlockFor(rf) >= want
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSize(t *testing.T) {
	for _, m := range allSampleMessages() {
		if Size(m) <= 0 {
			t.Fatalf("%T: non-positive size", m)
		}
	}
}

func TestKindString(t *testing.T) {
	if KindReadRequest.String() != "read-req" {
		t.Fatal("kind name")
	}
	if Kind(200).String() == "" {
		t.Fatal("unknown kind must stringify")
	}
	if One.String() != "ONE" || Quorum.String() != "QUORUM" || All.String() != "ALL" {
		t.Fatal("consistency level names")
	}
}

func BenchmarkEncodeMutation(b *testing.B) {
	// Pre-boxed: the benchmark measures encoding, not interface conversion.
	var m Message = Mutation{ID: 42, Key: bytes.Repeat([]byte("k"), 24), Value: Value{Data: bytes.Repeat([]byte("v"), 1024), Timestamp: 1234567}}
	var buf []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = buf[:0]
		var err error
		buf, err = Encode(buf, m)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeMutation(b *testing.B) {
	m := Mutation{ID: 42, Key: bytes.Repeat([]byte("k"), 24), Value: Value{Data: bytes.Repeat([]byte("v"), 1024), Timestamp: 1234567}}
	buf, err := Encode(nil, m)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}

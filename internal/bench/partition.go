package bench

import (
	"fmt"
	"strings"
	"time"

	"harmony/internal/client"
	"harmony/internal/cluster"
	"harmony/internal/core"
	"harmony/internal/faults"
	"harmony/internal/obs"
	"harmony/internal/repair"
	"harmony/internal/ring"
	"harmony/internal/sim"
	"harmony/internal/wire"
	"harmony/internal/ycsb"
)

// The partition experiment is the availability half of the failure story:
// the cluster is split into a majority and a minority side by the fault
// injector (the network cut) plus a partition view (the failure detectors
// converging on it), load keeps arriving on the majority, and explicit-level
// probes interrogate the minority. The pins are the CAP ledger a quorum
// system owes its operators: the majority keeps serving at quorum with
// bounded degradation, the minority refuses quorum work fast (no hangs past
// the deadline) while still answering CL=ONE from its own replicas, the
// controller holds diverged groups at quorum once repair makes the
// divergence visible, and staleness drains back under tolerance after the
// heal. CheckPartition turns those pins into CI assertions on the result.

// PartitionSpec parameterizes the partition experiment.
type PartitionSpec struct {
	Scenario Scenario
	// HotKeys / TotalKeys split the keyspace as in the hotcold experiment.
	HotKeys   int64
	TotalKeys int64
	// HotThreads / ColdThreads size the majority-side load pools;
	// HotArrival / ColdArrival drive them open loop (ops/s) so offered load
	// does not pause for the cut.
	HotThreads, ColdThreads int
	HotArrival, ColdArrival float64
	// HotTolerance / ColdTolerance are the per-group stale-read targets.
	HotTolerance, ColdTolerance float64
	// MinorityNodes is how many nodes land on the small side of the cut
	// (the last ones in topology order; the monitor stays with the
	// majority).
	MinorityNodes int
	// Baseline is observed before the cut, Cut is how long the partition
	// holds, PostWatch how long re-convergence is observed after the heal.
	Baseline, Cut, PostWatch time.Duration
	// DetectionDelay models failure-detector convergence: the gap between
	// the network cut (or heal) and every node's liveness view reflecting
	// it. During it, cross-cut operations time out instead of failing fast.
	DetectionDelay time.Duration
	// OpTimeout bounds every client operation — the fail-fast pin is that
	// no probe error takes much longer than this.
	OpTimeout time.Duration
	// ProbeInterval is the minority prober's cadence: each tick issues a
	// CL=ONE read, a QUORUM read, and a QUORUM write at explicit levels.
	ProbeInterval time.Duration
	// WindowLen / RecoverWindows: staleness windowing as in churn.
	WindowLen      time.Duration
	RecoverWindows int
	// HintQueueLimit caps coordinator hint queues during the cut.
	HintQueueLimit int
	// RepairInterval / RepairConcurrency / RepairLeaves tune anti-entropy
	// (always enabled here: the post-heal convergence pin depends on it).
	RepairInterval    time.Duration
	RepairConcurrency int
	RepairLeaves      int
}

// DefaultPartitionSpec returns the standard configuration: the churn
// experiment's 6-node RF=5 cluster (full-enough replication that every key
// keeps a replica on both sides of any 4/2 split — minority CL=ONE
// availability holds by construction, and the majority always retains a
// quorum), a 5s cut, a 4/2 split.
func DefaultPartitionSpec() PartitionSpec {
	sc := Grid5000()
	sc.Name = "partition-grid5000"
	sc.Spec.RacksPerDC = 2
	sc.Spec.NodesPerRack = 3
	sc.Spec.HintedHandoff = true
	return PartitionSpec{
		Scenario:          sc,
		HotKeys:           400,
		TotalKeys:         8_000,
		HotThreads:        10,
		ColdThreads:       25,
		HotArrival:        1200,
		ColdArrival:       4000,
		HotTolerance:      0.05,
		ColdTolerance:     0.30,
		MinorityNodes:     2,
		Baseline:          2 * time.Second,
		Cut:               5 * time.Second,
		PostWatch:         10 * time.Second,
		DetectionDelay:    500 * time.Millisecond,
		OpTimeout:         750 * time.Millisecond,
		ProbeInterval:     50 * time.Millisecond,
		WindowLen:         250 * time.Millisecond,
		RecoverWindows:    4,
		HintQueueLimit:    2_000,
		RepairInterval:    300 * time.Millisecond,
		RepairConcurrency: 3,
		RepairLeaves:      64,
	}
}

// PartitionProbe tallies one phase of the minority prober: explicit-level
// operations issued against minority coordinators only.
type PartitionProbe struct {
	OneOK  int64 `json:"one_ok"`
	OneErr int64 `json:"one_err"`
	// Quorum* cover QUORUM reads, Write* QUORUM writes.
	QuorumOK  int64 `json:"quorum_ok"`
	QuorumErr int64 `json:"quorum_err"`
	WriteOK   int64 `json:"write_ok"`
	WriteErr  int64 `json:"write_err"`
	// WorstQuorumErrMs is the slowest failed quorum operation (read or
	// write) in the phase — the fail-fast pin: it must stay near the
	// operation deadline, never hang past it.
	WorstQuorumErrMs float64 `json:"worst_quorum_err_ms"`
	// DeadlineMs echoes the configured per-op budget the pin is against.
	DeadlineMs float64 `json:"deadline_ms"`
}

// OneFraction returns the CL=ONE success fraction of the phase.
func (p PartitionProbe) OneFraction() float64 {
	if p.OneOK+p.OneErr == 0 {
		return 0
	}
	return float64(p.OneOK) / float64(p.OneOK+p.OneErr)
}

// PartitionResult is the partition experiment's outcome, shared between the
// simulated and live backends (out/partition.json).
type PartitionResult struct {
	Backend  string   `json:"backend"` // "sim" or "live"
	Scenario string   `json:"scenario"`
	Nodes    int      `json:"nodes"`
	RF       int      `json:"rf"`
	Majority []string `json:"majority"`
	Minority []string `json:"minority"`
	CutMs    float64  `json:"cut_ms"`
	// BaselineTputOps / CutTputOps are the majority pool's goodput
	// (successful ops/s) before and during the cut; AvailabilityRatio is
	// their quotient — the majority-stays-available pin.
	BaselineTputOps   float64 `json:"baseline_tput_ops"`
	CutTputOps        float64 `json:"cut_tput_ops"`
	AvailabilityRatio float64 `json:"availability_ratio"`
	// DetectMs (live backend) is how long the majority's failure detectors
	// took to convict the cut — from installing the partition to every
	// majority member reporting a shrunken alive count. Until conviction,
	// operations whose replica choice touches a cut peer burn their full
	// deadline (phi accrual is detector physics, not a code path to
	// optimize away), so the availability ratio measures goodput from
	// conviction onward and this field pins the blind window separately
	// against DetectBoundMs. -1 means the detectors never convicted within
	// the experiment's wait budget. Zero bound (sim backend, where the
	// converged view is installed directly) skips the pin.
	DetectMs      float64 `json:"detect_ms,omitempty"`
	DetectBoundMs float64 `json:"detect_bound_ms,omitempty"`
	// ProbeBaseline / ProbeCut are the minority prober's phase tallies.
	ProbeBaseline PartitionProbe `json:"probe_baseline"`
	ProbeCut      PartitionProbe `json:"probe_cut"`
	// Holds counts divergence-hold transitions the controller recorded in
	// its decision trace (groups pinned to >= quorum while repair drains
	// the partition's divergence).
	Holds int `json:"divergence_holds"`
	// Windows is the staleness time series (offsets relative to the heal);
	// Groups the per-group recovery assembly over the post-heal horizon.
	Windows []ChurnWindow `json:"windows"`
	Groups  []ChurnGroup  `json:"groups"`
	// HintsQueued / RowsHealed summarize the repair ledger of the run.
	HintsQueued uint64 `json:"hints_queued"`
	RowsHealed  uint64 `json:"rows_healed"`
	// Trace is the controller's decision trace (level flips, divergence
	// hold/release) over the run.
	Trace []obs.Event `json:"trace,omitempty"`
	// Series is the scraped per-second time series (live backend only).
	Series *LiveSeries `json:"series,omitempty"`
}

// Format renders the result.
func (r PartitionResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== partition (%s %s, %d nodes rf=%d, cut %.0fms, majority %d / minority %d) ==\n",
		r.Backend, r.Scenario, r.Nodes, r.RF, r.CutMs, len(r.Majority), len(r.Minority))
	fmt.Fprintf(&b, "majority goodput: baseline %.0f ops/s, during cut %.0f ops/s (ratio %.2f)\n",
		r.BaselineTputOps, r.CutTputOps, r.AvailabilityRatio)
	if r.DetectBoundMs > 0 {
		det := "NEVER"
		if r.DetectMs >= 0 {
			det = fmt.Sprintf("%.0fms", r.DetectMs)
		}
		fmt.Fprintf(&b, "detector convicted the cut in %s (bound %.0fms); availability measured post-conviction\n",
			det, r.DetectBoundMs)
	}
	for _, ph := range []struct {
		name string
		p    PartitionProbe
	}{{"baseline", r.ProbeBaseline}, {"cut", r.ProbeCut}} {
		fmt.Fprintf(&b, "minority %-8s ONE %d/%d ok (%.2f)  QUORUM-read %d ok / %d err  QUORUM-write %d ok / %d err  worst-err %.0fms (deadline %.0fms)\n",
			ph.name, ph.p.OneOK, ph.p.OneOK+ph.p.OneErr, ph.p.OneFraction(),
			ph.p.QuorumOK, ph.p.QuorumErr, ph.p.WriteOK, ph.p.WriteErr,
			ph.p.WorstQuorumErrMs, ph.p.DeadlineMs)
	}
	fmt.Fprintf(&b, "divergence holds: %d  hints queued: %d  rows healed: %d\n",
		r.Holds, r.HintsQueued, r.RowsHealed)
	for _, g := range r.Groups {
		rec := "NEVER"
		if g.RecoveredWithinMs >= 0 {
			rec = fmt.Sprintf("%.0fms", g.RecoveredWithinMs)
		}
		fmt.Fprintf(&b, "  %-5s tol=%.2f level=%-6s recovered=%-8s post-stale=%d/%d (%.3f) worst-window=%.3f tail=%.3f\n",
			g.Name, g.Tolerance, g.FinalLevel, rec, g.PostStale, g.PostSamples, g.PostFraction, g.WorstWindow, g.TailFraction)
	}
	return b.String()
}

// CheckPartition pins the partition contract on a result and returns the
// violations (empty = pass). The pins are deliberately loose enough for the
// live backend's scheduler noise while still catching real regressions:
// majority availability >= 80% of baseline, minority CL=ONE mostly served,
// zero minority quorum successes during the cut, every quorum refusal
// bounded near the deadline, and post-heal staleness back within tolerance.
func CheckPartition(r PartitionResult) []string {
	var v []string
	fail := func(format string, args ...any) { v = append(v, fmt.Sprintf(format, args...)) }

	if r.ProbeBaseline.OneOK == 0 || r.ProbeBaseline.QuorumOK == 0 || r.ProbeBaseline.WriteOK == 0 {
		fail("baseline probe did not exercise all levels: %+v", r.ProbeBaseline)
	}
	if r.AvailabilityRatio < 0.8 {
		fail("majority availability ratio %.2f < 0.80 (baseline %.0f, cut %.0f ops/s)",
			r.AvailabilityRatio, r.BaselineTputOps, r.CutTputOps)
	}
	if r.DetectBoundMs > 0 && (r.DetectMs < 0 || r.DetectMs > r.DetectBoundMs) {
		fail("partition detection took %.0fms, past the %.0fms bound (-1 = never convicted)",
			r.DetectMs, r.DetectBoundMs)
	}
	p := r.ProbeCut
	if p.OneOK == 0 {
		fail("minority served no CL=ONE reads during the cut")
	} else if f := p.OneFraction(); f < 0.75 {
		fail("minority CL=ONE availability %.2f < 0.75 during the cut (%d ok / %d err)", f, p.OneOK, p.OneErr)
	}
	if p.QuorumOK != 0 || p.WriteOK != 0 {
		fail("minority served quorum work during the cut (reads %d, writes %d) — split brain", p.QuorumOK, p.WriteOK)
	}
	if p.QuorumErr == 0 && p.WriteErr == 0 {
		fail("cut probe recorded no quorum refusals — the partition never bit")
	}
	if bound := 1.5*p.DeadlineMs + 250; p.WorstQuorumErrMs > bound {
		fail("minority quorum refusal took %.0fms, past the fail-fast bound %.0fms", p.WorstQuorumErrMs, bound)
	}
	for _, g := range r.Groups {
		if g.RecoveredWithinMs < 0 {
			fail("group %s never re-converged within tolerance %.2f after the heal", g.Name, g.Tolerance)
		}
		if g.TailFraction > g.Tolerance {
			fail("group %s post-heal tail staleness %.3f still above tolerance %.2f", g.Name, g.TailFraction, g.Tolerance)
		}
	}
	if r.Backend == "sim" && r.Holds == 0 {
		// Deterministic backend: the cut's divergence must trip at least one
		// controller hold. (Live timing is too noisy to pin this.)
		fail("controller recorded no divergence holds in the decision trace")
	}
	return v
}

// countHolds counts divergence-hold transitions in a decision trace.
func countHolds(events []obs.Event) int {
	n := 0
	for _, e := range events {
		if e.Kind == obs.EventDivergenceHold {
			n++
		}
	}
	return n
}

// Partition runs the simulated partition experiment.
func Partition(spec PartitionSpec, opts Options) (PartitionResult, error) {
	opts = opts.withDefaults()
	if spec.HotKeys <= 0 || spec.TotalKeys <= spec.HotKeys {
		return PartitionResult{}, fmt.Errorf("bench: partition needs 0 < HotKeys < TotalKeys, got %d/%d", spec.HotKeys, spec.TotalKeys)
	}
	if spec.Cut <= spec.DetectionDelay || spec.PostWatch <= spec.DetectionDelay {
		return PartitionResult{}, fmt.Errorf("bench: partition needs Cut and PostWatch > DetectionDelay")
	}
	if spec.MinorityNodes <= 0 {
		return PartitionResult{}, fmt.Errorf("bench: partition needs a positive MinorityNodes")
	}

	s := sim.New(opts.Seed)
	cspec := spec.Scenario.Spec
	cspec.Groups = 2
	cspec.GroupFn = hotColdGroupFn(spec.HotKeys)
	cspec.HintedHandoff = true
	cspec.HintQueueLimit = spec.HintQueueLimit
	cspec.Repair = repair.Options{
		Enabled:        true,
		Interval:       spec.RepairInterval,
		Concurrency:    spec.RepairConcurrency,
		LeavesPerRange: spec.RepairLeaves,
	}
	c, err := cluster.BuildSim(s, cspec)
	if err != nil {
		return PartitionResult{}, err
	}
	ids := c.NodeIDs()
	if spec.MinorityNodes >= len(ids) {
		return PartitionResult{}, fmt.Errorf("bench: MinorityNodes %d must be < cluster size %d", spec.MinorityNodes, len(ids))
	}
	majority := ids[:len(ids)-spec.MinorityNodes]
	minority := ids[len(ids)-spec.MinorityNodes:]
	memberStrs := make([]string, len(ids))
	majStrs := make([]string, len(majority))
	minStrs := make([]string, len(minority))
	for i, id := range ids {
		memberStrs[i] = string(id)
	}
	for i, id := range majority {
		majStrs[i] = string(id)
	}
	for i, id := range minority {
		minStrs[i] = string(id)
	}

	tols := []float64{spec.HotTolerance, spec.ColdTolerance}
	trace := obs.NewTrace(4096)
	ctl := core.NewController(core.ControllerConfig{
		Policy: core.Policy{
			Name:               "partition",
			ToleratedStaleRate: spec.HotTolerance,
		},
		N:                    cspec.RF,
		BandwidthBytesPerSec: cspec.Profile.BandwidthBytesPerSec,
		Groups:               2,
		GroupFn:              cspec.GroupFn,
		GroupTolerances:      tols,
		Trace:                trace,
	})
	mon := core.NewMonitor(core.MonitorConfig{
		ID:             "harmony-monitor",
		Nodes:          ids,
		Interval:       spec.Scenario.MonitorInterval,
		ReplicaSetSize: cspec.RF,
		OnObservation:  ctl.Observe,
	}, s, c.Bus)
	c.Net.Colocate("harmony-monitor", majority[0])
	c.Bus.Register("harmony-monitor", s, mon)

	// Majority load: the hot/cold pools from churn, restricted to majority
	// coordinators (clients colocated with the big side of the cut).
	hotWl := ycsb.Workload{
		Name: "part-hot", ReadProportion: 0.5, UpdateProportion: 0.5,
		RecordCount: spec.HotKeys, ValueBytes: 1024,
		RequestDistribution: ycsb.DistZipfian,
	}
	coldWl := ycsb.Workload{
		Name: "part-cold", ReadProportion: 0.95, UpdateProportion: 0.05,
		RecordCount: spec.TotalKeys, ValueBytes: 1024,
		RequestDistribution: ycsb.DistUniform,
	}
	newRunner := func(wl ycsb.Workload, threads int, arrival float64, prefix string, seedOff int64) (*ycsb.Runner, error) {
		return ycsb.NewRunner(ycsb.RunConfig{
			Workload:     wl,
			Threads:      threads,
			ShadowEvery:  2,
			Seed:         opts.Seed + seedOff,
			ClientPrefix: prefix,
			Policy:       ctl,
			ArrivalRate:  arrival,
			OpTimeout:    spec.OpTimeout,
			Coordinators: majority,
		}, s, c)
	}
	hotR, err := newRunner(hotWl, spec.HotThreads, spec.HotArrival, "phot", 101)
	if err != nil {
		return PartitionResult{}, err
	}
	coldR, err := newRunner(coldWl, spec.ColdThreads, spec.ColdArrival, "pcold", 202)
	if err != nil {
		return PartitionResult{}, err
	}
	coldR.Load()

	// Minority prober: explicit-level rounds against minority coordinators
	// only, one attempt per op so every refusal's latency is the server
	// path's own (no client retries smearing it).
	prb, err := newSimProber(s, c, minority, spec.OpTimeout, spec.TotalKeys)
	if err != nil {
		return PartitionResult{}, err
	}
	var discard, probeBase, probeCut PartitionProbe
	prb.cur = &discard
	probeStop := sim.Every(s, func() time.Duration { return spec.ProbeInterval }, prb.round)

	mon.Start()
	hotR.Start()
	coldR.Start()

	// Staleness windows on a fixed cadence, as in churn.
	var windows []ChurnWindow
	warmup := 8 * spec.Scenario.MonitorInterval
	if warmup < 2*time.Second {
		warmup = 2 * time.Second
	}
	s.RunFor(warmup)
	tickerStart := s.Now()
	last := c.AggregateMetrics()
	windowStop := sim.Every(s, func() time.Duration { return spec.WindowLen }, func() {
		cur := c.AggregateMetrics()
		w := ChurnWindow{}
		for g := 0; g < 2; g++ {
			var samples, stale uint64
			if g < len(cur.GroupShadowSamples) && g < len(last.GroupShadowSamples) {
				samples = cur.GroupShadowSamples[g] - last.GroupShadowSamples[g]
				stale = cur.GroupShadowStale[g] - last.GroupShadowStale[g]
			}
			frac := 0.0
			if samples > 0 {
				frac = float64(stale) / float64(samples)
			}
			w.Samples = append(w.Samples, samples)
			w.Stale = append(w.Stale, stale)
			w.Fraction = append(w.Fraction, frac)
		}
		last = cur
		windows = append(windows, w)
	})

	// Baseline.
	hotR.ResetMeasurement()
	coldR.ResetMeasurement()
	prb.cur = &probeBase
	s.RunFor(spec.Baseline)
	baseOps, baseErrs := runnerDeltas(hotR, coldR)
	baselineTput := goodput(baseOps, baseErrs, spec.Baseline)

	// The cut: the injector severs member<->member delivery immediately;
	// the partition view (each side convicting the other) lands only after
	// the detection delay, as a real gossip detector's would.
	hotR.ResetMeasurement()
	coldR.ResetMeasurement()
	prb.cur = &probeCut
	c.Faults.Apply(faults.Update{Partition: &faults.PartitionSpec{A: majStrs, B: minStrs}}, memberStrs)
	opts.progress("partition %s: cut %v | %v", spec.Scenario.Name, majStrs, minStrs)
	s.RunFor(spec.DetectionDelay)
	c.SetPartitionView(majority, minority)
	s.RunFor(spec.Cut - spec.DetectionDelay)
	cutOps, cutErrs := runnerDeltas(hotR, coldR)
	cutTput := goodput(cutOps, cutErrs, spec.Cut)

	// Heal: delivery restores immediately, detectors re-converge after the
	// delay, and the cross-cut recovery trigger starts anti-entropy.
	c.Faults.Heal()
	healedAt := s.Now()
	prb.cur = &discard
	s.RunFor(spec.DetectionDelay)
	c.ClearPartitionView()
	opts.progress("partition %s: healed, watching re-convergence", spec.Scenario.Name)
	s.RunFor(spec.PostWatch - spec.DetectionDelay)

	windowStop()
	probeStop()
	hotR.Stop()
	coldR.Stop()
	mon.Stop()
	hotR.Drain()
	coldR.Drain()

	probeBase.DeadlineMs = durMs(spec.OpTimeout)
	probeCut.DeadlineMs = durMs(spec.OpTimeout)
	agg := c.AggregateMetrics()
	res := PartitionResult{
		Backend:         "sim",
		Scenario:        spec.Scenario.Name,
		Nodes:           len(ids),
		RF:              cspec.RF,
		Majority:        majStrs,
		Minority:        minStrs,
		CutMs:           durMs(spec.Cut),
		BaselineTputOps: baselineTput,
		CutTputOps:      cutTput,
		ProbeBaseline:   probeBase,
		ProbeCut:        probeCut,
		Windows:         windows,
		HintsQueued:     agg.HintsQueued,
		RowsHealed:      agg.RepairRows,
		Trace:           trace.Events(),
		Holds:           countHolds(trace.Events()),
	}
	if baselineTput > 0 {
		res.AvailabilityRatio = cutTput / baselineTput
	}
	res.Groups = assemblePartitionGroups(windows, tickerStart, healedAt, spec.WindowLen, spec.RecoverWindows, tols, ctl)
	opts.progress("partition %s: availability %.2f, minority ONE %.2f, holds %d",
		spec.Scenario.Name, res.AvailabilityRatio, probeCut.OneFraction(), res.Holds)
	return res, nil
}

// runnerDeltas sums operations and errors across both pools since their last
// ResetMeasurement.
func runnerDeltas(rs ...*ycsb.Runner) (ops, errs int64) {
	for _, r := range rs {
		rep := r.Report()
		ops += rep.Operations
		errs += rep.Errors
	}
	return ops, errs
}

// goodput converts an op/err delta over a phase into successful ops/s.
func goodput(ops, errs int64, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(ops-errs) / d.Seconds()
}

// assemblePartitionGroups runs the churn-style window assembly: per-group
// recovery point, post-heal aggregate and tail staleness. Offsets are
// relative to the heal instant.
func assemblePartitionGroups(windows []ChurnWindow, tickerStart, healedAt time.Time,
	windowLen time.Duration, recoverWindows int, tols []float64, ctl *core.Controller) []ChurnGroup {
	recoveryOffset := healedAt.Sub(tickerStart)
	postStart := len(windows)
	for i := range windows {
		start := time.Duration(i) * windowLen
		windows[i].OffsetMs = durMs(start - recoveryOffset)
		if start >= recoveryOffset && i < postStart {
			postStart = i
		}
	}
	names := []string{"hot", "cold"}
	tailStart := postStart + (len(windows)-postStart)*3/4
	var out []ChurnGroup
	for g := 0; g < 2; g++ {
		cg := ChurnGroup{Name: names[g], Tolerance: tols[g], RecoveredWithinMs: -1,
			FinalLevel: ctl.GroupLast(g).Level.String()}
		streak := 0
		var tailStale, tailSamples uint64
		for i := postStart; i < len(windows); i++ {
			w := windows[i]
			cg.PostSamples += w.Samples[g]
			cg.PostStale += w.Stale[g]
			if i >= tailStart {
				tailSamples += w.Samples[g]
				tailStale += w.Stale[g]
			}
			if w.Fraction[g] > cg.WorstWindow {
				cg.WorstWindow = w.Fraction[g]
			}
			within := w.Samples[g] < 10 || w.Fraction[g] <= tols[g]
			if within {
				streak++
				if streak == recoverWindows && cg.RecoveredWithinMs < 0 {
					first := i - recoverWindows + 1
					cg.RecoveredWithinMs = durMs(time.Duration(first)*windowLen - recoveryOffset)
					if cg.RecoveredWithinMs < 0 {
						cg.RecoveredWithinMs = 0
					}
				}
			} else {
				streak = 0
				cg.RecoveredWithinMs = -1
			}
		}
		if cg.PostSamples > 0 {
			cg.PostFraction = float64(cg.PostStale) / float64(cg.PostSamples)
		}
		if tailSamples > 0 {
			cg.TailFraction = float64(tailStale) / float64(tailSamples)
		}
		out = append(out, cg)
	}
	return out
}

// simProber issues the minority's explicit-level probe rounds on the sim.
// All state is touched on the sim runtime only.
type simProber struct {
	s    *sim.Sim
	drv  *client.Driver
	keys int64
	next int64
	cur  *PartitionProbe
}

func newSimProber(s *sim.Sim, c *cluster.Cluster, coords []ring.NodeID, timeout time.Duration, keys int64) (*simProber, error) {
	drv, err := client.New(client.Options{
		ID:           "part-probe",
		Coordinators: coords,
		Policy:       client.Fixed{Write: wire.Quorum},
		Timeout:      timeout,
	}, s, c.Bus)
	if err != nil {
		return nil, err
	}
	c.Bus.Register("part-probe", s, drv)
	return &simProber{s: s, drv: drv, keys: keys}, nil
}

// round issues one probe triple: CL=ONE read, QUORUM read, QUORUM write.
// Each lands in whichever phase tally is current when it COMPLETES, so a
// probe straddling a phase boundary books where its outcome was observed.
func (p *simProber) round() {
	key := ycsb.Key(p.next % p.keys)
	p.next++
	start := p.s.Now()
	p.drv.ReadAt(key, wire.One, func(r client.ReadResult) {
		if r.Err != nil {
			p.cur.OneErr++
		} else {
			p.cur.OneOK++
		}
	})
	p.drv.ReadAt(key, wire.Quorum, func(r client.ReadResult) {
		if r.Err != nil {
			p.cur.QuorumErr++
			p.noteErrLatency(start)
		} else {
			p.cur.QuorumOK++
		}
	})
	p.drv.Write(key, []byte("probe"), func(r client.WriteResult) {
		if r.Err != nil {
			p.cur.WriteErr++
			p.noteErrLatency(start)
		} else {
			p.cur.WriteOK++
		}
	})
}

func (p *simProber) noteErrLatency(start time.Time) {
	if ms := durMs(p.s.Now().Sub(start)); ms > p.cur.WorstQuorumErrMs {
		p.cur.WorstQuorumErrMs = ms
	}
}

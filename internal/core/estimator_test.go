package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestStaleProbabilityBounds(t *testing.T) {
	// Clamped into [0,1] for any plausible inputs.
	if err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := Model{
			N:       1 + r.Intn(9),
			LambdaR: math.Exp(r.Float64()*12 - 3), // ~0.05 .. 8000 /s
			LambdaW: math.Exp(r.Float64()*12 - 9), // ~1e-4 .. 20 s
			Tp:      time.Duration(r.Int63n(int64(100 * time.Millisecond)))}
		p := m.StaleReadProbability()
		return p >= 0 && p <= 1
	}, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestStaleProbabilityDegenerateInputs(t *testing.T) {
	cases := []Model{
		{N: 5, LambdaR: 0, LambdaW: 1, Tp: time.Millisecond},  // no reads
		{N: 5, LambdaR: 10, LambdaW: 0, Tp: time.Millisecond}, // no writes observed
		{N: 1, LambdaR: 10, LambdaW: 1, Tp: time.Millisecond}, // single replica
		{N: 0, LambdaR: 10, LambdaW: 1, Tp: time.Millisecond},
	}
	for _, m := range cases {
		if p := m.StaleReadProbability(); p != 0 {
			t.Errorf("%v: P = %v, want 0", m, p)
		}
	}
}

func TestStaleProbabilityMonotoneInTp(t *testing.T) {
	// More propagation delay can only increase staleness.
	if err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := Model{N: 5, LambdaR: 1 + r.Float64()*500, LambdaW: 0.001 + r.Float64()}
		prev := -1.0
		for _, tp := range []time.Duration{0, time.Millisecond, 10 * time.Millisecond, 100 * time.Millisecond, time.Second} {
			m.Tp = tp
			p := m.StaleReadProbability()
			if p < prev-1e-12 {
				return false
			}
			prev = p
		}
		return true
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestStaleProbabilityMonotoneInWriteRate(t *testing.T) {
	// More frequent writes (smaller λw) → more staleness, all else equal.
	m := Model{N: 5, LambdaR: 100, Tp: 10 * time.Millisecond}
	prev := 2.0
	for _, lw := range []float64{0.001, 0.01, 0.1, 1, 10} {
		m.LambdaW = lw
		p := m.StaleReadProbability()
		if p > prev+1e-12 {
			t.Fatalf("P increased from %v to %v as writes became rarer (λw=%v)", prev, p, lw)
		}
		prev = p
	}
}

func TestStaleProbabilityZeroTp(t *testing.T) {
	m := Model{N: 5, LambdaR: 100, LambdaW: 0.01, Tp: 0}
	if p := m.StaleReadProbability(); p != 0 {
		t.Fatalf("instant propagation gave P=%v", p)
	}
}

func TestStaleProbabilityHeavyLoadSaturates(t *testing.T) {
	// As reads become infinitely frequent, P approaches (N-1)/N.
	m := Model{N: 5, LambdaR: 1e7, LambdaW: 1e-3, Tp: 50 * time.Millisecond}
	p := m.StaleReadProbability()
	if math.Abs(p-0.8) > 0.01 {
		t.Fatalf("saturated P = %v, want ~(N-1)/N = 0.8", p)
	}
}

func TestReplicasNeededBounds(t *testing.T) {
	if err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := Model{
			N:       1 + r.Intn(9),
			LambdaR: math.Exp(r.Float64()*12 - 3),
			LambdaW: math.Exp(r.Float64()*12 - 9),
			Tp:      time.Duration(r.Int63n(int64(100 * time.Millisecond)))}
		asr := r.Float64()
		x := m.ReplicasNeeded(asr)
		return x >= 1 && x <= m.N
	}, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestReplicasNeededZeroToleranceIsAll(t *testing.T) {
	m := Model{N: 5, LambdaR: 200, LambdaW: 0.01, Tp: 5 * time.Millisecond}
	if x := m.ReplicasNeeded(0); x != 5 {
		t.Fatalf("ASR=0 → Xn=%d, want N=5", x)
	}
}

func TestReplicasNeededConsistentWithEstimate(t *testing.T) {
	// Paper self-consistency: plugging the CL=ONE estimate back in as the
	// tolerance must yield Xn=1 (the decision scheme's boundary case).
	if err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := Model{
			N:       2 + r.Intn(8),
			LambdaR: 1 + r.Float64()*1000,
			LambdaW: 0.0005 + r.Float64()*0.5,
			Tp:      time.Duration(1 + r.Int63n(int64(50*time.Millisecond)))}
		// Use the unclamped expectation for exact algebra.
		b := m.LambdaR * m.LambdaW
		a := (1 - math.Exp(-m.LambdaR*m.Tp.Seconds())) * (1 + b)
		p1 := float64(m.N-1) / float64(m.N) * a / b
		return m.ReplicasNeeded(p1) == 1
	}, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestReplicasNeededMonotoneInTolerance(t *testing.T) {
	m := Model{N: 5, LambdaR: 500, LambdaW: 0.002, Tp: 20 * time.Millisecond}
	prev := m.N + 1
	for _, asr := range []float64{0, 0.1, 0.2, 0.4, 0.6, 0.8, 1} {
		x := m.ReplicasNeeded(asr)
		if x > prev {
			t.Fatalf("Xn grew from %d to %d as tolerance rose to %v", prev, x, asr)
		}
		prev = x
	}
}

func TestReplicasNeededNegativeToleranceClamped(t *testing.T) {
	m := Model{N: 5, LambdaR: 200, LambdaW: 0.01, Tp: 5 * time.Millisecond}
	if x := m.ReplicasNeeded(-1); x != 5 {
		t.Fatalf("negative ASR → %d, want 5", x)
	}
}

func TestPropagationTime(t *testing.T) {
	if got := PropagationTime(time.Millisecond, 0, 0); got != time.Millisecond {
		t.Fatalf("no-bandwidth Tp = %v", got)
	}
	// 1 MiB at 1 MiB/s adds one second.
	got := PropagationTime(time.Millisecond, 1<<20, 1<<20)
	want := time.Millisecond + time.Second
	if got != want {
		t.Fatalf("Tp = %v, want %v", got, want)
	}
}

func TestModelValid(t *testing.T) {
	valid := Model{N: 3, LambdaR: 1, LambdaW: 1, Tp: time.Millisecond}
	if !valid.Valid() {
		t.Fatal("valid model rejected")
	}
	for _, m := range []Model{
		{N: 0, LambdaR: 1, LambdaW: 1},
		{N: 3, LambdaR: 0, LambdaW: 1},
		{N: 3, LambdaR: 1, LambdaW: 0},
		{N: 3, LambdaR: 1, LambdaW: 1, Tp: -time.Second},
	} {
		if m.Valid() {
			t.Fatalf("invalid model accepted: %v", m)
		}
	}
}

func TestPaperScenarioShape(t *testing.T) {
	// Reproduce the qualitative claims of Fig. 4: (a) a heavy-update
	// workload (A) estimates more staleness than a read-mostly one (B) at
	// identical throughput; (b) latency dominates the estimate when high.
	const totalRate = 1000.0 // ops/s
	workloadA := Model{N: 5, Tp: 2 * time.Millisecond,
		LambdaR: totalRate * 0.5, LambdaW: 1 / (totalRate * 0.5)}
	workloadB := Model{N: 5, Tp: 2 * time.Millisecond,
		LambdaR: totalRate * 0.95, LambdaW: 1 / (totalRate * 0.05)}
	pa, pb := workloadA.StaleReadProbability(), workloadB.StaleReadProbability()
	if pa <= pb {
		t.Fatalf("workload A (update-heavy) P=%v not above workload B P=%v", pa, pb)
	}

	lowLat := Model{N: 5, Tp: time.Millisecond, LambdaR: 500, LambdaW: 1 / 500.0}
	highLat := Model{N: 5, Tp: 50 * time.Millisecond, LambdaR: 500, LambdaW: 1 / 500.0}
	if highLat.StaleReadProbability() < 0.75 {
		t.Fatalf("50ms latency estimate %v does not dominate", highLat.StaleReadProbability())
	}
	if lowLat.StaleReadProbability() >= highLat.StaleReadProbability() {
		t.Fatal("latency does not increase staleness")
	}
}

func BenchmarkStaleReadProbability(b *testing.B) {
	m := Model{N: 5, LambdaR: 820, LambdaW: 0.0025, Tp: 3 * time.Millisecond}
	for i := 0; i < b.N; i++ {
		m.StaleReadProbability()
	}
}

func BenchmarkReplicasNeeded(b *testing.B) {
	m := Model{N: 5, LambdaR: 820, LambdaW: 0.0025, Tp: 3 * time.Millisecond}
	for i := 0; i < b.N; i++ {
		m.ReplicasNeeded(0.2)
	}
}

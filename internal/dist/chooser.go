package dist

import (
	"math"
	"math/rand"
	"sync"
)

// KeyChooser picks record indices for a YCSB-style workload: Next draws
// the next key index in [0, n) using the caller's rng, and SetItemCount
// grows (or shrinks) the keyspace as inserts land. Implementations are
// safe for concurrent use; determinism follows from each calling thread
// owning its own seeded rng, exactly as with Sampler.
type KeyChooser interface {
	Next(r *rand.Rand) int64
	SetItemCount(n int64)
}

// UniformChooser draws keys uniformly from the keyspace.
type UniformChooser struct {
	mu    sync.Mutex
	items int64
}

// NewUniformChooser returns a uniform chooser over [0, n).
func NewUniformChooser(n int64) *UniformChooser {
	return &UniformChooser{items: max(n, 1)}
}

// Next draws uniformly from [0, items).
func (u *UniformChooser) Next(r *rand.Rand) int64 {
	u.mu.Lock()
	n := u.items
	u.mu.Unlock()
	return r.Int63n(n)
}

// SetItemCount resizes the keyspace.
func (u *UniformChooser) SetItemCount(n int64) {
	u.mu.Lock()
	u.items = max(n, 1)
	u.mu.Unlock()
}

// ZipfianConstant is YCSB's default skew parameter theta.
const ZipfianConstant = 0.99

// ZipfianChooser reproduces YCSB's ZipfianGenerator (the Gray et al.
// "Quickly generating billion-record synthetic databases" algorithm):
// key i is drawn with probability proportional to 1/i^theta, so low
// indices are hot. The zeta normalization constant is maintained
// incrementally as the keyspace grows.
type ZipfianChooser struct {
	mu         sync.Mutex
	items      int64
	theta      float64
	zeta2theta float64
	alpha      float64
	// zetaN is zeta(zetaItems, theta), extended incrementally when the
	// item count grows past zetaItems.
	zetaN     float64
	zetaItems int64
	eta       float64
}

// NewZipfianChooser returns a zipfian chooser over [0, n) with the YCSB
// default theta of 0.99.
func NewZipfianChooser(n int64) *ZipfianChooser {
	z := &ZipfianChooser{
		items: max(n, 1),
		theta: ZipfianConstant,
	}
	z.alpha = 1 / (1 - z.theta)
	z.zeta2theta = zetaStatic(2, z.theta)
	z.zetaItems = z.items
	z.zetaN = zetaStatic(z.items, z.theta)
	z.eta = z.etaLocked()
	return z
}

// zetaStatic computes sum_{i=1..n} 1/i^theta from scratch.
func zetaStatic(n int64, theta float64) float64 {
	sum := 0.0
	for i := int64(1); i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

func (z *ZipfianChooser) etaLocked() float64 {
	n := float64(z.items)
	return (1 - math.Pow(2/n, 1-z.theta)) / (1 - z.zeta2theta/z.zetaN)
}

// Next draws a zipfian-distributed index in [0, items).
func (z *ZipfianChooser) Next(r *rand.Rand) int64 {
	z.mu.Lock()
	defer z.mu.Unlock()
	u := r.Float64()
	uz := u * z.zetaN
	if uz < 1 {
		return 0
	}
	if uz < 1+math.Pow(0.5, z.theta) {
		return 1
	}
	idx := int64(float64(z.items) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if idx >= z.items { // u -> 1 maps to the keyspace edge
		idx = z.items - 1
	}
	return idx
}

// SetItemCount grows the keyspace, extending the zeta constant
// incrementally (shrinking recomputes from scratch; workloads only grow).
func (z *ZipfianChooser) SetItemCount(n int64) {
	n = max(n, 1)
	z.mu.Lock()
	defer z.mu.Unlock()
	z.items = n
	if n > z.zetaItems {
		for i := z.zetaItems + 1; i <= n; i++ {
			z.zetaN += 1 / math.Pow(float64(i), z.theta)
		}
		z.zetaItems = n
	} else if n < z.zetaItems {
		z.zetaItems = n
		z.zetaN = zetaStatic(n, z.theta)
	}
	z.eta = z.etaLocked()
}

// ScrambledZipfianChooser spreads zipfian popularity across the whole
// keyspace by hashing the zipfian draw (YCSB's default request
// distribution): the hot set is still ~N^(1-theta) keys, but they are
// scattered instead of clustered at low indices.
type ScrambledZipfianChooser struct {
	zipf *ZipfianChooser
}

// NewScrambledZipfianChooser returns a scrambled zipfian chooser over [0, n).
func NewScrambledZipfianChooser(n int64) *ScrambledZipfianChooser {
	return &ScrambledZipfianChooser{zipf: NewZipfianChooser(n)}
}

// Next draws a zipfian index and scatters it with an FNV-1a hash.
func (s *ScrambledZipfianChooser) Next(r *rand.Rand) int64 {
	z := s.zipf.Next(r)
	s.zipf.mu.Lock()
	n := s.zipf.items
	s.zipf.mu.Unlock()
	return int64(fnv64(uint64(z)) % uint64(n))
}

// SetItemCount resizes the underlying keyspace.
func (s *ScrambledZipfianChooser) SetItemCount(n int64) { s.zipf.SetItemCount(n) }

// fnv64 is the FNV-1a hash of the value's 8 bytes, YCSB's key scrambler.
func fnv64(v uint64) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= prime64
		v >>= 8
	}
	return h
}

// LatestChooser skews toward the most recently inserted records
// (YCSB's "latest" distribution, workload D): the newest key is the
// hottest, with zipfian fall-off into the past.
type LatestChooser struct {
	zipf *ZipfianChooser
}

// NewLatestChooser returns a latest-skewed chooser over [0, n).
func NewLatestChooser(n int64) *LatestChooser {
	return &LatestChooser{zipf: NewZipfianChooser(n)}
}

// Next draws an offset-from-newest zipfian index.
func (l *LatestChooser) Next(r *rand.Rand) int64 {
	off := l.zipf.Next(r)
	l.zipf.mu.Lock()
	n := l.zipf.items
	l.zipf.mu.Unlock()
	idx := n - 1 - off
	if idx < 0 {
		idx = 0
	}
	return idx
}

// SetItemCount moves the "latest" frontier as inserts land.
func (l *LatestChooser) SetItemCount(n int64) { l.zipf.SetItemCount(n) }

// HotspotChooser concentrates hotOpnFraction of the draws on the first
// hotsetFraction of the keyspace and spreads the rest uniformly over the
// cold remainder (YCSB's hotspot distribution).
type HotspotChooser struct {
	mu         sync.Mutex
	items      int64
	hotsetFrac float64
	hotOpnFrac float64
}

// NewHotspotChooser returns a hotspot chooser over [0, n) where
// hotOpnFraction of operations hit the first hotsetFraction of keys.
func NewHotspotChooser(n int64, hotsetFraction, hotOpnFraction float64) *HotspotChooser {
	return &HotspotChooser{
		items:      max(n, 1),
		hotsetFrac: clamp01(hotsetFraction),
		hotOpnFrac: clamp01(hotOpnFraction),
	}
}

// Next draws from the hot set with probability hotOpnFraction, else from
// the cold remainder.
func (h *HotspotChooser) Next(r *rand.Rand) int64 {
	h.mu.Lock()
	items := h.items
	h.mu.Unlock()
	hot := int64(float64(items) * h.hotsetFrac)
	if hot < 1 {
		hot = 1
	}
	if hot > items {
		hot = items
	}
	if r.Float64() < h.hotOpnFrac || hot == items {
		return r.Int63n(hot)
	}
	return hot + r.Int63n(items-hot)
}

// SetItemCount resizes the keyspace (the hot set scales with it).
func (h *HotspotChooser) SetItemCount(n int64) {
	h.mu.Lock()
	h.items = max(n, 1)
	h.mu.Unlock()
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

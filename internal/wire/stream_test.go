package wire

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"
)

// trickleReader feeds at most n bytes per Read call, exercising short reads
// and frames fragmented across arbitrary boundaries.
type trickleReader struct {
	b []byte
	n int
}

func (t *trickleReader) Read(p []byte) (int, error) {
	if len(t.b) == 0 {
		return 0, io.EOF
	}
	k := t.n
	if k > len(t.b) {
		k = len(t.b)
	}
	if k > len(p) {
		k = len(p)
	}
	copy(p, t.b[:k])
	t.b = t.b[k:]
	return k, nil
}

func streamTestMessages() []Message {
	return []Message{
		ReadRequest{ID: 1, Key: []byte("user0000000001"), Level: Quorum, Shadow: true},
		Mutation{ID: 2, Key: []byte("k2"), Value: Value{Data: bytes.Repeat([]byte{0xab}, 300), Timestamp: 42,
			Clock: []ClockEntry{{Node: "n1", Counter: 7}}}},
		ReplicaRead{ID: 3, Key: []byte("k3")},
		StatsResponse{ID: 4, Reads: 9, Groups: []GroupCounters{{Reads: 1, Writes: 2}},
			KeySamples: []KeySample{{Key: []byte("hot"), Reads: 1.5}}},
		Pong{ID: 5, Sent: 123456},
		RangeSync{ID: 6, LeafCount: 8, Leaves: []LeafRef{{Leaf: 3}},
			Entries: []SyncEntry{{Key: []byte("s"), Value: Value{Data: []byte("v"), Timestamp: 9}}}, Reply: true},
	}
}

func encodeAll(t *testing.T, msgs []Message) []byte {
	t.Helper()
	var buf []byte
	for _, m := range msgs {
		b, err := Encode(buf, m)
		if err != nil {
			t.Fatalf("encode %T: %v", m, err)
		}
		buf = b
	}
	return buf
}

func TestFrameReaderRoundTrip(t *testing.T) {
	msgs := streamTestMessages()
	buf := encodeAll(t, msgs)
	fr := NewFrameReader(bytes.NewReader(buf))
	for i, want := range msgs {
		got, f, err := fr.Next()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("frame %d: got %#v want %#v", i, got, want)
		}
		f.Release()
	}
	if _, _, err := fr.Next(); err != io.EOF {
		t.Fatalf("after last frame: err=%v, want io.EOF", err)
	}
}

// TestFrameReaderFragmented feeds the same stream a few bytes at a time:
// frame boundaries never align with Read calls, so every prefix and body is
// assembled from short reads.
func TestFrameReaderFragmented(t *testing.T) {
	msgs := streamTestMessages()
	buf := encodeAll(t, msgs)
	for _, chunk := range []int{1, 3, 7} {
		fr := NewFrameReader(&trickleReader{b: buf, n: chunk})
		for i, want := range msgs {
			got, f, err := fr.Next()
			if err != nil {
				t.Fatalf("chunk=%d frame %d: %v", chunk, i, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("chunk=%d frame %d: got %#v want %#v", chunk, i, got, want)
			}
			f.Release()
		}
		if _, _, err := fr.Next(); err != io.EOF {
			t.Fatalf("chunk=%d after last frame: err=%v, want io.EOF", chunk, err)
		}
	}
}

func TestFrameReaderTruncatedBody(t *testing.T) {
	buf := encodeAll(t, []Message{Mutation{ID: 1, Key: []byte("k"), Value: Value{Data: make([]byte, 100)}}})
	fr := NewFrameReader(bytes.NewReader(buf[:len(buf)-5]))
	if _, _, err := fr.Next(); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("truncated body: err=%v, want ErrUnexpectedEOF", err)
	}
}

func TestFrameReaderOversizedFrame(t *testing.T) {
	// A prefix claiming more than MaxFrame must be rejected before any
	// allocation of that size.
	prefix := []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0x7f} // ~34 GiB uvarint
	fr := NewFrameReader(bytes.NewReader(prefix))
	if _, _, err := fr.Next(); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized frame: err=%v, want ErrFrameTooLarge", err)
	}
}

// TestFrameReaderZeroCopy proves the decode borrows from the frame buffer:
// flipping a byte of the frame's backing storage must be visible through the
// decoded message's value bytes.
func TestFrameReaderZeroCopy(t *testing.T) {
	val := bytes.Repeat([]byte{0x5a}, 64)
	buf := encodeAll(t, []Message{Mutation{ID: 9, Key: []byte("alias"), Value: Value{Data: val, Timestamp: 1}}})
	fr := NewFrameReader(bytes.NewReader(buf))
	m, f, err := fr.Next()
	if err != nil {
		t.Fatal(err)
	}
	mut := m.(Mutation)
	if !bytes.Equal(mut.Value.Data, val) {
		t.Fatalf("decoded value mismatch")
	}
	// Locate the payload inside the frame and corrupt it there.
	idx := bytes.Index(*f.buf, val)
	if idx < 0 {
		t.Fatalf("payload not found in frame buffer — decode copied?")
	}
	(*f.buf)[idx] ^= 0xff
	if mut.Value.Data[0] == 0x5a {
		t.Fatalf("message did not observe frame mutation — decode copied instead of aliasing")
	}
	f.Release()
}

// TestFrameReaderAllocs pins the acceptance criterion: the receive path
// performs at most one allocation per frame in steady state (boxing the
// decoded message into the Message interface; buffers come from the pool).
// It uses a non-escaping kind — the transport's copy-on-escape promotion
// applies only to messages whose fields outlive delivery.
func TestFrameReaderAllocs(t *testing.T) {
	const frames = 2100
	var msgs []Message
	for i := 0; i < frames; i++ {
		msgs = append(msgs, ReplicaRead{ID: uint64(i), Key: []byte("user0000000042")})
	}
	buf := encodeAll(t, msgs)
	fr := NewFrameReader(bytes.NewReader(buf))
	// Warm the pool and the bufio buffer outside the measurement.
	for i := 0; i < 50; i++ {
		m, f, err := fr.Next()
		if err != nil {
			t.Fatal(err)
		}
		if m.(ReplicaRead).ID != uint64(i) {
			t.Fatalf("frame %d: wrong message", i)
		}
		f.Release()
	}
	allocs := testing.AllocsPerRun(2000, func() {
		m, f, err := fr.Next()
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := m.(ReplicaRead); !ok {
			t.Fatalf("unexpected kind %T", m)
		}
		f.Release()
	})
	if allocs > 1 {
		t.Fatalf("receive path allocates %.2f/frame, want <= 1 (message boxing only)", allocs)
	}
}

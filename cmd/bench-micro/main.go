// Command bench-micro runs the tracked micro-benchmark suite
// (internal/bench/micro) outside the go-test harness and records the
// results as JSON, so CI can upload each run as an artifact and print a
// benchstat-style delta against the previous baseline.
//
// Usage:
//
//	bench-micro -json out/micro.json                 # record a baseline
//	bench-micro -json out/micro.json -prev old.json  # record + print deltas
//	bench-micro -bench Engine -benchtime 2s          # subset, longer runs
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"testing"
	"time"

	"harmony/internal/bench/micro"
)

// Result is one benchmark's recorded outcome.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	OpsPerSec   float64 `json:"ops_per_sec"`
}

// File is the JSON document bench-micro reads and writes.
type File struct {
	RecordedAt string   `json:"recorded_at"`
	GoVersion  string   `json:"go_version"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	Maxprocs   int      `json:"gomaxprocs"`
	Results    []Result `json:"results"`
}

var suite = []struct {
	name string
	fn   func(*testing.B)
}{
	{"engine/apply-8g", micro.EngineApply},
	{"engine/apply-8g-observed", micro.EngineApplyObserved},
	{"engine/get-8g", micro.EngineGet},
	{"engine/get-8g-observed", micro.EngineGetObserved},
	{"engine/scan", micro.EngineScan},
	{"persist/apply-8g", micro.PersistApply},
	{"persist/apply-8g-observed", micro.PersistApplyObserved},
	{"persist/get-8g", micro.PersistGet},
	{"persist/recover", micro.PersistRecover},
	{"wire/encode", micro.WireEncode},
	{"wire/decode", micro.WireDecode},
	{"wire/decode-shared", micro.WireDecodeShared},
	{"wire/size", micro.WireSize},
	{"transport/serial-rpc", micro.TransportSerialRPC},
	{"transport/pipelined-rpc", micro.TransportPipelinedRPC},
	{"transport/batched-tput", micro.TransportBatchedThroughput},
	{"transport/unbatched-tput", micro.TransportUnbatchedThroughput},
	{"merkle/write-path", micro.MerkleWritePath},
	{"merkle/invalidate-rebuild", micro.MerkleInvalidateRebuild},
	{"cluster/ops", micro.ClusterOps},
}

func main() {
	// Register the testing package's flags (test.benchtime below); without
	// this, testing.Benchmark runs with zeroed configuration outside a test
	// binary.
	testing.Init()
	jsonPath := flag.String("json", "", "write results to this JSON file")
	prevPath := flag.String("prev", "", "previous micro.json to diff against")
	pattern := flag.String("bench", ".", "regexp selecting benchmarks to run")
	benchtime := flag.Duration("benchtime", time.Second, "target run time per benchmark")
	flag.Parse()

	re, err := regexp.Compile(*pattern)
	if err != nil {
		fatalf("bad -bench pattern: %v", err)
	}
	// The heavyweight knobs testing.Benchmark respects are package-level
	// test flags; set the target time directly.
	if err := flag.Lookup("test.benchtime").Value.Set(benchtime.String()); err != nil {
		fatalf("set benchtime: %v", err)
	}

	out := File{
		RecordedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Maxprocs:   runtime.GOMAXPROCS(0),
	}
	for _, b := range suite {
		if !re.MatchString(b.name) {
			continue
		}
		r := testing.Benchmark(b.fn)
		if r.N == 0 {
			fatalf("%s: benchmark failed (0 iterations)", b.name)
		}
		ns := float64(r.T.Nanoseconds()) / float64(r.N)
		// Benchmarks whose cost scales with an internal operation count
		// rather than b.N (cluster/ops) report the true per-op wall cost as
		// a custom metric; prefer it.
		if wall, ok := r.Extra["wall_ns/op"]; ok && wall > 0 {
			ns = wall
		}
		res := Result{
			Name:        b.name,
			Iterations:  r.N,
			NsPerOp:     ns,
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			OpsPerSec:   1e9 / ns,
		}
		out.Results = append(out.Results, res)
		fmt.Printf("%-28s %12.1f ns/op %10d B/op %8d allocs/op %14.0f ops/s\n",
			res.Name, res.NsPerOp, res.BytesPerOp, res.AllocsPerOp, res.OpsPerSec)
	}
	if len(out.Results) == 0 {
		fatalf("no benchmarks matched %q", *pattern)
	}

	if *prevPath != "" {
		printDelta(*prevPath, out)
	}
	if *jsonPath != "" {
		if dir := filepath.Dir(*jsonPath); dir != "." {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				fatalf("mkdir %s: %v", dir, err)
			}
		}
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			fatalf("marshal: %v", err)
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			fatalf("write %s: %v", *jsonPath, err)
		}
		fmt.Printf("wrote %s (%d benchmarks)\n", *jsonPath, len(out.Results))
	}
}

// printDelta prints a benchstat-style old/new comparison for benchmarks
// present in both files. A missing or unreadable previous baseline is not
// an error — first runs have nothing to diff.
func printDelta(prevPath string, cur File) {
	data, err := os.ReadFile(prevPath)
	if err != nil {
		fmt.Printf("no previous baseline (%v); skipping delta\n", err)
		return
	}
	var prev File
	if err := json.Unmarshal(data, &prev); err != nil {
		fmt.Printf("previous baseline unreadable (%v); skipping delta\n", err)
		return
	}
	old := make(map[string]Result, len(prev.Results))
	for _, r := range prev.Results {
		old[r.Name] = r
	}
	names := make([]string, 0, len(cur.Results))
	for _, r := range cur.Results {
		if _, ok := old[r.Name]; ok {
			names = append(names, r.Name)
		}
	}
	if len(names) == 0 {
		fmt.Println("previous baseline shares no benchmarks; skipping delta")
		return
	}
	sort.Strings(names)
	curBy := make(map[string]Result, len(cur.Results))
	for _, r := range cur.Results {
		curBy[r.Name] = r
	}
	fmt.Printf("\ndelta vs %s (recorded %s):\n", prevPath, prev.RecordedAt)
	fmt.Printf("%-28s %14s %14s %8s\n", "name", "old ns/op", "new ns/op", "delta")
	for _, name := range names {
		o, n := old[name], curBy[name]
		pct := (n.NsPerOp - o.NsPerOp) / o.NsPerOp * 100
		fmt.Printf("%-28s %14.1f %14.1f %+7.1f%%\n", name, o.NsPerOp, n.NsPerOp, pct)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "bench-micro: "+format+"\n", args...)
	os.Exit(1)
}

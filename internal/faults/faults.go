// Package faults is the unified fault-injection plane: one Injector that
// impairs traffic identically whichever fabric carries it. It wraps any
// transport.Sender — the simulated bus in BuildSim/BuildReal clusters, the
// TCP endpoint inside a live server process — and applies per-directed-pair
// rules (drop, added delay, duplication, reordering) plus symmetric or
// asymmetric partitions on the outbound path. Because every member's sends
// go through its own injector, cutting a live cluster apart only requires
// telling each member which peers it may no longer talk to; the admin
// endpoint's POST /faults does exactly that, so the bench driver can
// partition real processes mid-run with the same Update documents the
// simulator consumes.
//
// The injector is outbound-only by design: a directed rule (A→B) models an
// asymmetric link, and a symmetric fault is just the rule installed on both
// sides. Impaired frames are re-posted through the runtime (sim.Runtime), so
// injected delay composes with whatever latency the underlying fabric adds
// and virtual-time experiments stay deterministic.
package faults

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"harmony/internal/ring"
	"harmony/internal/sim"
	"harmony/internal/transport"
	"harmony/internal/wire"
)

// Wildcard matches any endpoint in a rule's From or To position.
const Wildcard = "*"

// Rule describes the impairments applied to one directed peer pair. The
// zero Rule is a no-op.
type Rule struct {
	// Drop is the probability in [0,1] that a frame is silently discarded.
	Drop float64 `json:"drop,omitempty"`
	// Delay is added to every surviving frame's delivery.
	Delay time.Duration `json:"delay,omitempty"`
	// Jitter adds a further uniform random [0,Jitter) to each delivery.
	Jitter time.Duration `json:"jitter,omitempty"`
	// Duplicate is the probability a surviving frame is delivered twice
	// (the copy takes an independent delay draw, so it may arrive first).
	Duplicate float64 `json:"duplicate,omitempty"`
	// Reorder is the probability a surviving frame is held back by an extra
	// random multiple of Delay+Jitter so frames sent after it overtake it.
	Reorder float64 `json:"reorder,omitempty"`
}

func (r Rule) zero() bool {
	return r.Drop == 0 && r.Delay == 0 && r.Jitter == 0 && r.Duplicate == 0 && r.Reorder == 0
}

// PartitionSpec names the two sides of a network cut. Sends from A-side to
// B-side endpoints are blocked; unless Asymmetric is set, B→A is blocked
// too. Endpoints on neither side are unaffected. One side may be the
// Wildcard, meaning "everyone not on the other side".
type PartitionSpec struct {
	A          []string `json:"a"`
	B          []string `json:"b"`
	Asymmetric bool     `json:"asymmetric,omitempty"`
}

// RuleUpdate binds a Rule to a directed pair; From/To may be Wildcard.
type RuleUpdate struct {
	From string `json:"from"`
	To   string `json:"to"`
	Rule
}

// Update is one fault-plane command — the JSON document POST /faults accepts
// and scenario steps replay. Fields apply in order: Clear, Heal, Set,
// Partition, Scenario.
type Update struct {
	// Clear removes every rule and partition (scenarios keep running).
	Clear bool `json:"clear,omitempty"`
	// Heal removes all partitions, leaving rules in place.
	Heal bool `json:"heal,omitempty"`
	// Set installs (or, for zero rules, removes) directed-pair rules.
	Set []RuleUpdate `json:"set,omitempty"`
	// Partition installs a network cut.
	Partition *PartitionSpec `json:"partition,omitempty"`
	// Scenario starts a named scenario schedule (see Register).
	Scenario string `json:"scenario,omitempty"`
}

// Stats counts what the injector has done to traffic.
type Stats struct {
	Dropped    uint64 `json:"dropped"`    // frames discarded by Drop rules
	Cut        uint64 `json:"cut"`        // frames blocked by partitions
	Delayed    uint64 `json:"delayed"`    // frames delivered late
	Duplicated uint64 `json:"duplicated"` // extra copies delivered
	Reordered  uint64 `json:"reordered"`  // frames held for overtaking
}

// State is the injector's externally visible configuration, served by
// GET /faults and embedded in /status.
type State struct {
	Rules      []RuleUpdate    `json:"rules,omitempty"`
	Partitions []PartitionSpec `json:"partitions,omitempty"`
	Stats      Stats           `json:"stats"`
}

type pairKey struct{ from, to string }

// Injector wraps a Sender and applies the installed fault rules to every
// outbound frame. The fast path — no rules, no partitions — is a single
// atomic load on top of the wrapped Send, so an injector can sit under
// every fabric permanently and cost nothing until armed.
type Injector struct {
	rt   sim.Runtime
	next transport.Sender

	armed atomic.Bool // true while any rule or partition is installed

	mu    sync.Mutex
	rng   *rand.Rand
	rules map[pairKey]Rule
	cuts  map[pairKey]bool
	parts []PartitionSpec

	dropped    atomic.Uint64
	cut        atomic.Uint64
	delayed    atomic.Uint64
	duplicated atomic.Uint64
	reordered  atomic.Uint64
}

// New wraps next. The seed drives drop/duplicate/jitter draws; injectors on
// different members should use different seeds.
func New(rt sim.Runtime, seed int64, next transport.Sender) *Injector {
	return &Injector{
		rt:    rt,
		next:  next,
		rng:   rand.New(rand.NewSource(seed)),
		rules: make(map[pairKey]Rule),
		cuts:  make(map[pairKey]bool),
	}
}

// Send implements transport.Sender.
func (in *Injector) Send(from, to ring.NodeID, m wire.Message) {
	if !in.armed.Load() {
		in.next.Send(from, to, m)
		return
	}
	in.mu.Lock()
	if in.cuts[pairKey{string(from), string(to)}] {
		in.mu.Unlock()
		in.cut.Add(1)
		return
	}
	r, ok := in.ruleFor(string(from), string(to))
	if !ok || r.zero() {
		in.mu.Unlock()
		in.next.Send(from, to, m)
		return
	}
	if r.Drop > 0 && in.rng.Float64() < r.Drop {
		in.mu.Unlock()
		in.dropped.Add(1)
		return
	}
	d := in.draw(r)
	dup := r.Duplicate > 0 && in.rng.Float64() < r.Duplicate
	var dupDelay time.Duration
	if dup {
		dupDelay = in.draw(r)
	}
	in.mu.Unlock()

	in.deliver(from, to, m, d)
	if dup {
		in.duplicated.Add(1)
		in.deliver(from, to, m, dupDelay)
	}
}

// draw computes one delivery's injected delay under rule r. Caller holds mu
// (for the rng).
func (in *Injector) draw(r Rule) time.Duration {
	d := r.Delay
	if r.Jitter > 0 {
		d += time.Duration(in.rng.Int63n(int64(r.Jitter)))
	}
	if r.Reorder > 0 && in.rng.Float64() < r.Reorder {
		// Hold the frame back far enough that later sends overtake it: an
		// extra 1–4x of the rule's own latency scale (floor 1ms so a pure
		// reorder rule with no delay still reorders).
		scale := r.Delay + r.Jitter
		if scale <= 0 {
			scale = time.Millisecond
		}
		d += scale + time.Duration(in.rng.Int63n(int64(3*scale)))
		in.reordered.Add(1)
	}
	return d
}

func (in *Injector) deliver(from, to ring.NodeID, m wire.Message, d time.Duration) {
	if d <= 0 {
		in.next.Send(from, to, m)
		return
	}
	in.delayed.Add(1)
	in.rt.After(d, func() { in.next.Send(from, to, m) })
}

// ruleFor resolves the effective rule for a directed pair. Precedence:
// exact, from→*, *→to, *→*. Caller holds mu.
func (in *Injector) ruleFor(from, to string) (Rule, bool) {
	if r, ok := in.rules[pairKey{from, to}]; ok {
		return r, true
	}
	if r, ok := in.rules[pairKey{from, Wildcard}]; ok {
		return r, true
	}
	if r, ok := in.rules[pairKey{Wildcard, to}]; ok {
		return r, true
	}
	r, ok := in.rules[pairKey{Wildcard, Wildcard}]
	return r, ok
}

// SetRule installs (or removes, for the zero Rule) one directed-pair rule.
func (in *Injector) SetRule(from, to string, r Rule) {
	in.mu.Lock()
	if r.zero() {
		delete(in.rules, pairKey{from, to})
	} else {
		in.rules[pairKey{from, to}] = r
	}
	in.rearm()
	in.mu.Unlock()
}

// Partition installs a cut. Membership lists every endpoint the injector's
// owner knows about; it resolves Wildcard sides ("everyone else").
func (in *Injector) Partition(p PartitionSpec, membership []string) {
	in.mu.Lock()
	defer in.mu.Unlock()
	a, b := resolveSides(p, membership)
	for _, x := range a {
		for _, y := range b {
			in.cuts[pairKey{x, y}] = true
			if !p.Asymmetric {
				in.cuts[pairKey{y, x}] = true
			}
		}
	}
	in.parts = append(in.parts, p)
	in.rearm()
}

// resolveSides expands a Wildcard side to "membership minus the other side".
func resolveSides(p PartitionSpec, membership []string) (a, b []string) {
	a, b = p.A, p.B
	other := func(side []string) []string {
		in := make(map[string]bool, len(side))
		for _, s := range side {
			in[s] = true
		}
		var out []string
		for _, m := range membership {
			if !in[m] {
				out = append(out, m)
			}
		}
		return out
	}
	if len(a) == 1 && a[0] == Wildcard {
		a = other(b)
	}
	if len(b) == 1 && b[0] == Wildcard {
		b = other(a)
	}
	return a, b
}

// Heal removes every partition, leaving rules installed.
func (in *Injector) Heal() {
	in.mu.Lock()
	in.cuts = make(map[pairKey]bool)
	in.parts = nil
	in.rearm()
	in.mu.Unlock()
}

// Clear removes every rule and partition.
func (in *Injector) Clear() {
	in.mu.Lock()
	in.rules = make(map[pairKey]Rule)
	in.cuts = make(map[pairKey]bool)
	in.parts = nil
	in.rearm()
	in.mu.Unlock()
}

// rearm recomputes the fast-path flag. Caller holds mu.
func (in *Injector) rearm() {
	in.armed.Store(len(in.rules) > 0 || len(in.cuts) > 0)
}

// Apply executes one Update. Membership resolves Wildcard partition sides
// and parameterizes scenarios; it may be nil when neither is used.
func (in *Injector) Apply(u Update, membership []string) error {
	if u.Clear {
		in.Clear()
	}
	if u.Heal {
		in.Heal()
	}
	for _, s := range u.Set {
		in.SetRule(s.From, s.To, s.Rule)
	}
	if u.Partition != nil {
		in.Partition(*u.Partition, membership)
	}
	if u.Scenario != "" {
		return in.StartScenario(u.Scenario, membership)
	}
	return nil
}

// Stats snapshots the impairment counters.
func (in *Injector) Stats() Stats {
	return Stats{
		Dropped:    in.dropped.Load(),
		Cut:        in.cut.Load(),
		Delayed:    in.delayed.Load(),
		Duplicated: in.duplicated.Load(),
		Reordered:  in.reordered.Load(),
	}
}

// Snapshot reports the installed configuration and counters.
func (in *Injector) Snapshot() State {
	in.mu.Lock()
	st := State{Stats: Stats{}}
	for k, r := range in.rules {
		st.Rules = append(st.Rules, RuleUpdate{From: k.from, To: k.to, Rule: r})
	}
	st.Partitions = append(st.Partitions, in.parts...)
	in.mu.Unlock()
	sortRules(st.Rules)
	st.Stats = in.Stats()
	return st
}

func sortRules(rs []RuleUpdate) {
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0; j-- {
			a, b := rs[j-1], rs[j]
			if a.From < b.From || (a.From == b.From && a.To <= b.To) {
				break
			}
			rs[j-1], rs[j] = b, a
		}
	}
}

var _ transport.Sender = (*Injector)(nil)

// String renders a rule compactly for logs.
func (r Rule) String() string {
	return fmt.Sprintf("drop=%.2f delay=%s jitter=%s dup=%.2f reorder=%.2f",
		r.Drop, r.Delay, r.Jitter, r.Duplicate, r.Reorder)
}

package ycsb

import (
	"fmt"
	"math/rand"
	"time"

	"harmony/internal/client"
	"harmony/internal/cluster"
	"harmony/internal/dist"
	"harmony/internal/ring"
	"harmony/internal/sim"
	"harmony/internal/stats"
	"harmony/internal/wire"
)

// RunConfig parameterizes one benchmark run.
type RunConfig struct {
	Workload Workload
	// Threads is the number of closed-loop client threads (the paper
	// sweeps 1, 15, 40, 70, 90).
	Threads int
	// Operations caps the total operations issued; 0 means unlimited (the
	// caller stops the run by advancing virtual time and calling Stop).
	Operations int64
	// Policy supplies the read and write consistency levels per operation:
	// Harmony's controller (per key group), core.PerKeyLevels, or
	// client.Fixed for the static baselines. Nil means client.Fixed{} —
	// read ONE, write ONE, the paper's baseline.
	Policy client.ConsistencyPolicy
	// Sessions routes every thread's operations through a client.Session:
	// reads at wire.Session carry the thread's session token (enforced
	// read-your-writes / monotonic reads), and the run's Report tallies the
	// regressions the sessions observed — zero when the policy serves
	// SESSION, a measured violation count when it serves plain ONE.
	Sessions bool
	// ShadowEvery enables the coordinator-side dual-read staleness probe
	// (§V-F) on every k-th read; 0 disables, 1 probes every read.
	ShadowEvery int
	// Seed drives all workload randomness.
	Seed int64
	// ClientPrefix namespaces the thread drivers' fabric identities
	// ("<prefix>-<i>"); it must differ between runners sharing one
	// cluster. Empty means "ycsb".
	ClientPrefix string
	// OpTimeout bounds each operation; zero means 5s.
	OpTimeout time.Duration
	// ThinkTime, when set, samples a pause in seconds that each thread
	// waits after an operation completes before issuing the next — the
	// closed-loop-with-think-time client model (YCSB's target-rate mode
	// is the special case of a constant gap). Nil preserves the paper's
	// pure closed loop. Draws use the issuing thread's seeded rng, so
	// runs stay deterministic.
	ThinkTime dist.Sampler
	// ArrivalRate, when positive, switches the runner to open loop:
	// operations arrive as a Poisson process at this aggregate rate (ops
	// per virtual second) regardless of completions — exponential
	// inter-arrival gaps driven by sim.Every — and are spread round-robin
	// over the thread drivers (Threads then only sizes the driver pool
	// and in-flight correlation space). Closed-loop thread parking,
	// SetActiveThreads and ThinkTime do not apply in open loop.
	ArrivalRate float64
	// KeyOffset shifts every chosen key index by a constant: the chooser
	// draws i in [0, RecordCount) and the runner accesses Key(i+KeyOffset).
	// SetKeyOffset moves it mid-run — the mechanism behind migrating-
	// hotspot experiments (the popularity distribution keeps its shape
	// while the hot range jumps elsewhere in the keyspace).
	KeyOffset int64
	// Coordinators restricts the thread drivers to this coordinator set
	// (threads stagger their round-robin start over it). Nil keeps the
	// default — every cluster node coordinates. Partition experiments pin
	// a runner's load to one side of a cut with this.
	Coordinators []ring.NodeID
}

// Report summarizes a completed run.
type Report struct {
	Workload   string
	Threads    int
	Duration   time.Duration // virtual time spent in the run phase
	Operations int64
	Reads      int64
	Updates    int64
	Errors     int64
	// ThroughputOps is operations per virtual second.
	ThroughputOps float64
	// ReadLatency / UpdateLatency are client-observed distributions.
	ReadLatency   stats.Histogram
	UpdateLatency stats.Histogram
	// StaleReads / ShadowSamples are the cluster's dual-read staleness
	// counters accumulated during the run (valid when Shadow was set).
	StaleReads    uint64
	ShadowSamples uint64
	// LevelUse tallies reads coordinated per consistency level during the
	// run (index by wire.ConsistencyLevel; slot wire.Session counts
	// token-checked session reads).
	LevelUse [8]uint64
	// SessionRegressions counts reads the run's sessions saw answer below
	// their own high-water mark (always zero without RunConfig.Sessions;
	// zero by contract when the policy serves wire.Session).
	SessionRegressions uint64
	// SessionUpgrades / SessionRepolls are the cluster's coordinator-side
	// session-read escalation counters accumulated during the run: how often
	// the first replica's answer failed the token check and the read fanned
	// out, and how often a full fan-in still fell short and re-polled.
	SessionUpgrades uint64
	SessionRepolls  uint64
	// Groups splits the run's coordinated traffic and probe staleness by
	// key group (index by group id), when the cluster tallies groups.
	Groups []GroupStaleness
}

// GroupStaleness is one key group's share of a run: its coordinated
// operations and its dual-read staleness probe outcomes.
type GroupStaleness struct {
	Reads         uint64
	Writes        uint64
	ShadowSamples uint64
	StaleReads    uint64
}

// StaleFraction returns the group's measured stale reads over probed reads.
func (g GroupStaleness) StaleFraction() float64 {
	if g.ShadowSamples == 0 {
		return 0
	}
	return float64(g.StaleReads) / float64(g.ShadowSamples)
}

// StaleFraction returns measured stale reads over probed reads.
func (r Report) StaleFraction() float64 {
	if r.ShadowSamples == 0 {
		return 0
	}
	return float64(r.StaleReads) / float64(r.ShadowSamples)
}

// String renders a one-line summary.
func (r Report) String() string {
	return fmt.Sprintf("%s threads=%d ops=%d tput=%.0f ops/s readP99=%v stale=%d/%d",
		r.Workload, r.Threads, r.Operations, r.ThroughputOps,
		r.ReadLatency.P99(), r.StaleReads, r.ShadowSamples)
}

// Runner drives a workload against a simulated cluster with closed-loop
// threads. It must be used with the cluster's own sim.Sim.
type Runner struct {
	cfg     RunConfig
	s       *sim.Sim
	c       *cluster.Cluster
	threads []*thread
	rng     *rand.Rand
	chooser dist.KeyChooser

	active      int
	arrivalStop func()
	issued      int64
	completed   int64
	errors      int64
	reads       int64
	updates     int64
	inserted    int64
	stopped     bool
	started     time.Time
	baseline    cluster.Metrics
	baseRegr    uint64
	readLat     stats.Histogram
	updateLat   stats.Histogram
	valuePool   [][]byte
}

type thread struct {
	idx    int
	drv    *client.Driver
	sess   *client.Session // non-nil in session mode (RunConfig.Sessions)
	rng    *rand.Rand
	parked bool
}

// read issues a read through the thread's session when session mode is on.
func (th *thread) read(key []byte, cb func(client.ReadResult)) {
	if th.sess != nil {
		th.sess.Read(key, cb)
		return
	}
	th.drv.Read(key, cb)
}

// write issues a write through the thread's session when session mode is on.
func (th *thread) write(key, value []byte, cb func(client.WriteResult)) {
	if th.sess != nil {
		th.sess.Write(key, value, cb)
		return
	}
	th.drv.Write(key, value, cb)
}

// NewRunner prepares a runner: it validates the workload, creates one client
// driver per thread and registers them on the cluster bus.
func NewRunner(cfg RunConfig, s *sim.Sim, c *cluster.Cluster) (*Runner, error) {
	if err := cfg.Workload.Validate(); err != nil {
		return nil, err
	}
	if cfg.Workload.InsertProportion > 0 && cfg.Workload.RequestDistribution != DistLatest {
		// Inserts grow the keyspace; only the latest chooser tracks that
		// shape faithfully for reads. Others still work, keys just stay
		// in the initial range.
		_ = cfg
	}
	if cfg.Threads <= 0 {
		return nil, fmt.Errorf("ycsb: threads must be positive")
	}
	if cfg.Policy == nil {
		cfg.Policy = client.Fixed{}
	}
	if cfg.OpTimeout <= 0 {
		cfg.OpTimeout = 5 * time.Second
	}
	chooser, err := cfg.Workload.chooser()
	if err != nil {
		return nil, err
	}
	r := &Runner{
		cfg:     cfg,
		s:       s,
		c:       c,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		chooser: chooser,
		active:  cfg.Threads,
	}
	r.inserted = cfg.Workload.RecordCount
	// Pre-generate a pool of payloads; YCSB writes random field data, and
	// reusing a pool keeps the simulator allocation-light.
	r.valuePool = make([][]byte, 64)
	for i := range r.valuePool {
		buf := make([]byte, cfg.Workload.ValueBytes)
		r.rng.Read(buf)
		r.valuePool[i] = buf
	}
	prefix := cfg.ClientPrefix
	if prefix == "" {
		prefix = "ycsb"
	}
	coords := cfg.Coordinators
	if len(coords) == 0 {
		coords = c.NodeIDs()
	}
	for i := 0; i < cfg.Threads; i++ {
		id := ring.NodeID(fmt.Sprintf("%s-%d", prefix, i))
		// Stagger coordinator round-robin start per thread.
		rot := make([]ring.NodeID, len(coords))
		for j := range coords {
			rot[j] = coords[(j+i)%len(coords)]
		}
		drv, err := client.New(client.Options{
			ID:           id,
			Coordinators: rot,
			Policy:       cfg.Policy,
			Timeout:      cfg.OpTimeout,
			ShadowEvery:  cfg.ShadowEvery,
		}, s, c.Bus)
		if err != nil {
			return nil, err
		}
		c.Bus.Register(id, s, drv)
		th := &thread{
			idx: i,
			drv: drv,
			rng: rand.New(rand.NewSource(cfg.Seed + int64(i)*7919)),
		}
		if cfg.Sessions {
			th.sess = client.NewSession(drv)
		}
		r.threads = append(r.threads, th)
	}
	return r, nil
}

// Load bulk-inserts the initial records directly into every replica's
// engine (the equivalent of streaming pre-built tables in), so experiments
// start from a fully replicated, consistent store exactly like the paper's
// pre-loaded 3M/5M-row tables.
func (r *Runner) Load() {
	w := r.cfg.Workload
	ts := int64(1)
	for i := int64(0); i < w.RecordCount; i++ {
		key := Key(i)
		v := wire.Value{Data: r.valuePool[i%int64(len(r.valuePool))], Timestamp: ts}
		for _, rep := range ring.ReplicasForKey(r.c.Ring, r.c.Strategy, key) {
			if n := r.c.Node(rep); n != nil {
				_, _ = n.Engine().Apply(key, v)
			}
		}
	}
}

// Start begins issuing operations: closed-loop threads by default, or the
// Poisson arrival process when ArrivalRate is set.
func (r *Runner) Start() {
	r.started = r.s.Now()
	r.baseline = r.c.AggregateMetrics()
	if r.cfg.ArrivalRate > 0 {
		r.startOpenLoop()
		return
	}
	for _, th := range r.threads {
		th := th
		r.s.Post(func() { r.next(th) })
	}
}

// startOpenLoop launches the open-loop generator: exponential inter-arrival
// gaps (a Poisson process at ArrivalRate) drive operations round-robin over
// the thread drivers regardless of completions, the way independent
// production clients offer load.
func (r *Runner) startOpenLoop() {
	gap := dist.NewExponential(1 / r.cfg.ArrivalRate)
	rng := rand.New(rand.NewSource(r.cfg.Seed + 104729))
	nextTh := 0
	r.arrivalStop = sim.Every(r.s,
		func() time.Duration { return dist.SampleDuration(gap, rng, time.Second) },
		func() {
			if r.Stopped() {
				return
			}
			th := r.threads[nextTh%len(r.threads)]
			nextTh++
			r.issue(th)
		})
}

// Stop parks all threads after their in-flight operation completes and
// halts the open-loop arrival process.
func (r *Runner) Stop() {
	r.stopped = true
	if r.arrivalStop != nil {
		r.arrivalStop()
		r.arrivalStop = nil
	}
}

// Stopped reports whether Stop was called or the op budget is exhausted.
func (r *Runner) Stopped() bool {
	return r.stopped || (r.cfg.Operations > 0 && r.issued >= r.cfg.Operations)
}

// SetActiveThreads changes how many threads issue operations — the phase
// mechanism behind Fig. 4(a)'s 90→70→40→15→1 thread steps. Raising the
// count wakes parked threads.
func (r *Runner) SetActiveThreads(n int) {
	if n < 0 {
		n = 0
	}
	if n > len(r.threads) {
		n = len(r.threads)
	}
	r.active = n
	for _, th := range r.threads {
		if th.parked && th.idx < n && !r.Stopped() {
			th.parked = false
			th := th
			r.s.Post(func() { r.next(th) })
		}
	}
}

// Completed returns operations finished so far.
func (r *Runner) Completed() int64 { return r.completed }

// next is the closed-loop continuation: a thread issues its next operation
// unless the run stopped or the thread was deactivated.
func (r *Runner) next(th *thread) {
	if r.Stopped() || th.idx >= r.active {
		th.parked = true
		return
	}
	r.issue(th)
}

// issue dispatches one operation on a thread's driver.
func (r *Runner) issue(th *thread) {
	r.issued++
	op := r.chooseOp(th.rng)
	switch op {
	case OpRead:
		r.doRead(th)
	case OpUpdate:
		r.doUpdate(th)
	case OpInsert:
		r.doInsert(th)
	case OpReadModifyWrite:
		r.doRMW(th)
	}
}

func (r *Runner) chooseOp(rng *rand.Rand) OpType {
	w := r.cfg.Workload
	p := rng.Float64()
	switch {
	case p < w.ReadProportion:
		return OpRead
	case p < w.ReadProportion+w.UpdateProportion:
		return OpUpdate
	case p < w.ReadProportion+w.UpdateProportion+w.InsertProportion:
		return OpInsert
	default:
		return OpReadModifyWrite
	}
}

func (r *Runner) pickKey(rng *rand.Rand) []byte {
	return Key(r.chooser.Next(rng) + r.cfg.KeyOffset)
}

// SetKeyOffset moves the runner's key window mid-run (see
// RunConfig.KeyOffset). Call it from the simulation's goroutine, like the
// other runner controls.
func (r *Runner) SetKeyOffset(off int64) { r.cfg.KeyOffset = off }

func (r *Runner) value(rng *rand.Rand) []byte {
	return r.valuePool[rng.Intn(len(r.valuePool))]
}

func (r *Runner) doRead(th *thread) {
	key := r.pickKey(th.rng)
	start := r.s.Now()
	th.read(key, func(res client.ReadResult) {
		r.reads++
		r.finish(th, start, &r.readLat, res.Err)
	})
}

func (r *Runner) doUpdate(th *thread) {
	key := r.pickKey(th.rng)
	start := r.s.Now()
	th.write(key, r.value(th.rng), func(res client.WriteResult) {
		r.updates++
		r.finish(th, start, &r.updateLat, res.Err)
	})
}

func (r *Runner) doInsert(th *thread) {
	r.inserted++
	key := Key(r.inserted - 1)
	r.chooser.SetItemCount(r.inserted)
	start := r.s.Now()
	th.write(key, r.value(th.rng), func(res client.WriteResult) {
		r.updates++
		r.finish(th, start, &r.updateLat, res.Err)
	})
}

func (r *Runner) doRMW(th *thread) {
	key := r.pickKey(th.rng)
	start := r.s.Now()
	th.read(key, func(res client.ReadResult) {
		r.reads++
		if res.Err != nil {
			r.finish(th, start, &r.readLat, res.Err)
			return
		}
		r.readLat.Record(r.s.Now().Sub(start))
		wstart := r.s.Now()
		th.write(key, r.value(th.rng), func(wres client.WriteResult) {
			r.updates++
			r.finish(th, wstart, &r.updateLat, wres.Err)
		})
	})
}

func (r *Runner) finish(th *thread, start time.Time, hist *stats.Histogram, err error) {
	r.completed++
	if err != nil {
		r.errors++
	} else {
		hist.Record(r.s.Now().Sub(start))
	}
	if r.cfg.ArrivalRate > 0 {
		return // open loop: the arrival process issues the next op
	}
	if r.cfg.ThinkTime != nil {
		if d := dist.SampleDuration(r.cfg.ThinkTime, th.rng, time.Second); d > 0 {
			r.s.After(d, func() { r.next(th) })
			return
		}
	}
	r.next(th)
}

// Drain runs the simulation until all in-flight operations complete (or the
// event queue empties).
func (r *Runner) Drain() {
	for {
		pending := 0
		for _, th := range r.threads {
			pending += th.drv.Pending()
		}
		if pending == 0 {
			return
		}
		if !r.s.Step() {
			return
		}
	}
}

// ResetMeasurement re-baselines the run: histograms and counters restart
// from zero at the current virtual instant, while threads keep issuing
// uninterrupted. Call it after a warm-up phase so reports cover only steady
// state.
func (r *Runner) ResetMeasurement() {
	r.started = r.s.Now()
	r.baseline = r.c.AggregateMetrics()
	r.baseRegr = r.sessionRegressions()
	r.completed, r.errors, r.reads, r.updates = 0, 0, 0, 0
	r.readLat.Reset()
	r.updateLat.Reset()
}

// sessionRegressions sums the threads' session regression counters (zero
// without session mode).
func (r *Runner) sessionRegressions() uint64 {
	var total uint64
	for _, th := range r.threads {
		if th.sess != nil {
			total += th.sess.Regressions()
		}
	}
	return total
}

// RunMeasured runs the workload with an unmeasured warm-up of virtual
// duration warmup, then measures ops operations and reports. The config's
// Operations field must be zero (unlimited); thread parking and monitor
// interaction behave exactly as in a plain run.
func (r *Runner) RunMeasured(warmup time.Duration, ops int64) (Report, error) {
	if ops <= 0 {
		return Report{}, fmt.Errorf("ycsb: RunMeasured requires an op budget")
	}
	if r.cfg.Operations > 0 {
		return Report{}, fmt.Errorf("ycsb: RunMeasured requires an unlimited config (Operations=0)")
	}
	r.Start()
	if warmup > 0 {
		r.s.RunFor(warmup)
	}
	r.ResetMeasurement()
	for r.completed < ops {
		if !r.s.Step() {
			return Report{}, fmt.Errorf("ycsb: simulation went idle with %d/%d measured ops", r.completed, ops)
		}
	}
	r.Stop()
	r.Drain()
	return r.Report(), nil
}

// RunOps is the common synchronous pattern: start, simulate until the op
// budget completes, and report. The budget must be set in the config.
func (r *Runner) RunOps() (Report, error) {
	if r.cfg.Operations <= 0 {
		return Report{}, fmt.Errorf("ycsb: RunOps requires an operation budget")
	}
	r.Start()
	for r.completed < r.cfg.Operations {
		if !r.s.Step() {
			return Report{}, fmt.Errorf("ycsb: simulation went idle with %d/%d ops done", r.completed, r.cfg.Operations)
		}
	}
	r.Stop()
	r.Drain()
	return r.Report(), nil
}

// Report builds the run summary from virtual start to now.
func (r *Runner) Report() Report {
	now := r.s.Now()
	dur := now.Sub(r.started)
	after := r.c.AggregateMetrics()
	rep := Report{
		Workload:        r.cfg.Workload.Name,
		Threads:         r.cfg.Threads,
		Duration:        dur,
		Operations:      r.completed,
		Reads:           r.reads,
		Updates:         r.updates,
		Errors:          r.errors,
		ReadLatency:     r.readLat,
		UpdateLatency:   r.updateLat,
		StaleReads:      after.ShadowStale - r.baseline.ShadowStale,
		ShadowSamples:   after.ShadowSamples - r.baseline.ShadowSamples,
		SessionUpgrades: after.SessionUpgrades - r.baseline.SessionUpgrades,
		SessionRepolls:  after.SessionRepolls - r.baseline.SessionRepolls,
	}
	rep.SessionRegressions = r.sessionRegressions() - r.baseRegr
	for i := range rep.LevelUse {
		rep.LevelUse[i] = after.LevelUse[i] - r.baseline.LevelUse[i]
	}
	// Group counters re-baseline whenever a grouping epoch applies, so the
	// baseline only subtracts within one epoch; across an epoch change the
	// current counters already are the delta since the (newer) re-baseline.
	// The <= guard also absorbs a reset the epoch field missed.
	sameEpoch := after.GroupEpoch == r.baseline.GroupEpoch
	groupDelta := func(cur []uint64, prev []uint64, g int) uint64 {
		c := cur[g]
		if sameEpoch && g < len(prev) && prev[g] <= c {
			return c - prev[g]
		}
		return c
	}
	for g := range after.GroupReads {
		gs := GroupStaleness{
			Reads:  groupDelta(after.GroupReads, r.baseline.GroupReads, g),
			Writes: groupDelta(after.GroupWrites, r.baseline.GroupWrites, g),
		}
		if g < len(after.GroupShadowSamples) {
			gs.ShadowSamples = groupDelta(after.GroupShadowSamples, r.baseline.GroupShadowSamples, g)
			gs.StaleReads = groupDelta(after.GroupShadowStale, r.baseline.GroupShadowStale, g)
		}
		rep.Groups = append(rep.Groups, gs)
	}
	if dur > 0 {
		rep.ThroughputOps = float64(r.completed) / dur.Seconds()
	}
	return rep
}

// Package dist provides the statistical primitives every timing model in
// this repository is built from: latency/jitter samplers with analytic
// moments, and the YCSB request-key choosers (zipfian and friends).
//
// Samplers are immutable values. All randomness flows through the
// *rand.Rand passed to Sample, so determinism is entirely the caller's:
// one seeded stream per consumer (a simnet.Net, a node's service timer, a
// workload thread) reproduces the same draws run after run. Because
// samplers hold no mutable state they are safe to share across goroutines
// as long as each goroutine samples with its own rng.
//
// Every concrete sampler exposes closed-form Mean and Quantile accessors
// (combinators invert their analytic CDF numerically), which is what lets
// property tests pin empirical moments against ground truth and lets
// profile authors reason about a jitter model's p99 without simulating it.
package dist

import (
	"math"
	"math/rand"
	"time"
)

// Sampler is a one-dimensional distribution: Sample draws a variate using
// the caller's rng, Mean returns the expectation, and Quantile(p) returns
// the value x with P(X <= x) = p for p in (0, 1).
type Sampler interface {
	Sample(rng *rand.Rand) float64
	Mean() float64
	Quantile(p float64) float64
}

// CDFer is implemented by samplers whose cumulative distribution function
// is available in closed form. All samplers in this package implement it;
// combinators use it to invert mixtures numerically.
type CDFer interface {
	CDF(x float64) float64
}

// NewRand returns a deterministic random stream for the seed; a convenience
// so callers outside the simulator get per-seed reproducibility the same
// way sim.Sim.NewStream provides it inside.
func NewRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// SampleDuration draws from s and scales the variate by unit, clamping
// negatives to zero. It is the bridge between unitless samplers and the
// time.Duration world of the simulator (think times, inter-arrival gaps).
func SampleDuration(s Sampler, rng *rand.Rand, unit time.Duration) time.Duration {
	v := s.Sample(rng)
	if v <= 0 {
		return 0
	}
	return time.Duration(v * float64(unit))
}

// zQuantile is the standard normal quantile function Phi^-1.
func zQuantile(p float64) float64 {
	return math.Sqrt2 * math.Erfinv(2*p-1)
}

// z99 is Phi^-1(0.99), the constant behind the mean/p99 lognormal fit.
var z99 = zQuantile(0.99)

// cdfOf evaluates the CDF of any sampler: directly when it implements
// CDFer, otherwise by numerically inverting its (monotone) Quantile.
func cdfOf(s Sampler, x float64) float64 {
	if c, ok := s.(CDFer); ok {
		return c.CDF(x)
	}
	lo, hi := 0.0, 1.0
	for i := 0; i < 64; i++ {
		mid := (lo + hi) / 2
		if s.Quantile(mid) <= x {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// clampProb guards quantile inputs: values at or outside (0,1) are pulled
// to the nearest representable interior probability so accessors stay
// finite and monotone even under sloppy callers.
func clampProb(p float64) float64 {
	const eps = 1e-12
	if !(p > eps) { // also catches NaN
		return eps
	}
	if p > 1-eps {
		return 1 - eps
	}
	return p
}

// invertCDF computes the generalized inverse inf{x : F(x) >= p} by
// bisection on [lo, hi], which must bracket it (F(lo) <= p <= F(hi)).
// Returning the upper end of the shrunken bracket makes quantiles land on
// top of CDF jumps (point masses) instead of just below them. Used by
// combinators whose CDF is analytic but whose quantile has no closed form.
func invertCDF(cdf func(float64) float64, p, lo, hi float64) float64 {
	for i := 0; i < 128 && hi-lo > math.Abs(hi)*1e-13+1e-300; i++ {
		mid := lo + (hi-lo)/2
		if cdf(mid) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi
}

// Package sim provides a deterministic discrete-event simulation engine and
// the Runtime abstraction that lets the same protocol code run either under
// virtual time (for reproducible, laptop-scale experiments) or on real
// goroutines and wall-clock timers (for live deployments).
//
// All protocol code in this repository is event-driven: it never blocks, and
// it reacts to delivered messages and timer callbacks. Under the simulator
// every callback runs on a single scheduler goroutine in virtual-time order,
// which makes whole-cluster experiments deterministic. Under the real-time
// runtime each actor owns a mailbox goroutine and timers post back into it,
// preserving the same single-threaded-per-actor discipline.
package sim

import (
	"sync"
	"time"
)

// Runtime is the execution substrate protocol actors are written against.
// Implementations must guarantee that all callbacks scheduled through a
// single Runtime value execute serially (never concurrently with each
// other).
type Runtime interface {
	// Now returns the current time (virtual or wall-clock).
	Now() time.Time
	// After schedules fn to run once after d elapses. The returned cancel
	// function stops the timer if it has not fired; calling it multiple
	// times is safe.
	After(d time.Duration, fn func()) (cancel func())
	// Post schedules fn to run as soon as possible, after the currently
	// executing callback returns.
	Post(fn func())
}

// RealRuntime runs callbacks on a dedicated mailbox goroutine using
// wall-clock timers. The zero value is not usable; create with NewRealRuntime
// and release with Stop.
type RealRuntime struct {
	mu     sync.Mutex
	inbox  chan func()
	done   chan struct{}
	closed bool
}

// NewRealRuntime starts the mailbox goroutine and returns the runtime.
func NewRealRuntime() *RealRuntime {
	r := &RealRuntime{
		inbox: make(chan func(), 1024),
		done:  make(chan struct{}),
	}
	go r.loop()
	return r
}

func (r *RealRuntime) loop() {
	for {
		select {
		case fn := <-r.inbox:
			fn()
		case <-r.done:
			// Drain anything already queued so Stop has flush semantics.
			for {
				select {
				case fn := <-r.inbox:
					fn()
				default:
					return
				}
			}
		}
	}
}

// Now returns the wall-clock time.
func (r *RealRuntime) Now() time.Time { return time.Now() }

// After schedules fn on the mailbox goroutine after d.
func (r *RealRuntime) After(d time.Duration, fn func()) (cancel func()) {
	t := time.AfterFunc(d, func() { r.Post(fn) })
	return func() { t.Stop() }
}

// Post enqueues fn on the mailbox. If the runtime is stopped the callback is
// dropped: actors are expected to be quiesced before Stop.
func (r *RealRuntime) Post(fn func()) {
	r.mu.Lock()
	closed := r.closed
	r.mu.Unlock()
	if closed {
		return
	}
	select {
	case r.inbox <- fn:
	case <-r.done:
	}
}

// Stop terminates the mailbox goroutine after draining queued callbacks.
func (r *RealRuntime) Stop() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	r.mu.Unlock()
	close(r.done)
}

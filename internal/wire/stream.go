package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sync"
)

// recvPool recycles receive-side frame buffers. Distinct from framePool (the
// encode scratch pool) so bursty receive traffic cannot starve senders of
// warm buffers; the same ballooning rule applies — buffers past a frame-ish
// size are dropped rather than pinned.
var recvPool = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}

func putRecvBuf(bp *[]byte) {
	if cap(*bp) > maxPooledFrame {
		return
	}
	recvPool.Put(bp)
}

// Frame is the owned backing buffer of one message decoded by
// FrameReader.Next. The message's byte-slice fields alias it (the
// DecodeShared contract), so the receiver must keep the frame alive until
// the message — and everything still aliasing it — is done, then call
// Release exactly once to recycle the buffer. A zero Frame is a valid no-op.
type Frame struct {
	buf *[]byte
}

// Release returns the frame's buffer to the receive pool. The caller must
// not touch the message decoded from this frame (or any un-copied field of
// it) afterwards. Releasing a frame twice, or releasing two copies of the
// same Frame, corrupts the pool — release exactly once.
func (f Frame) Release() {
	if f.buf != nil {
		putRecvBuf(f.buf)
	}
}

// FrameReader parses length-prefixed wire frames from a byte stream into
// owned, pooled per-frame buffers and decodes them with DecodeBodyShared.
// Unlike Reader — which reuses one receive buffer across frames and must
// therefore copy every byte field out — FrameReader gives each frame its own
// buffer, so the decoded message borrows instead of copying and the buffer
// is recycled only when the receiver calls Frame.Release. Short reads and
// fragmentation are absorbed by the buffered prefix reader and io.ReadFull.
//
// Steady state the path performs one allocation per frame: boxing the
// decoded message into the Message interface. Not safe for concurrent use.
type FrameReader struct {
	br *bufio.Reader
}

// NewFrameReader returns a framed reader over r.
func NewFrameReader(r io.Reader) *FrameReader {
	return &FrameReader{br: bufio.NewReaderSize(r, 64<<10)}
}

// Next returns the next message and the frame that owns its memory,
// blocking on the underlying reader as needed. On error the returned Frame
// is empty and needs no release. A clean EOF between frames returns io.EOF;
// EOF mid-frame returns io.ErrUnexpectedEOF.
func (fr *FrameReader) Next() (Message, Frame, error) {
	size, err := binary.ReadUvarint(fr.br)
	if err != nil {
		if err == io.EOF {
			return nil, Frame{}, io.EOF
		}
		return nil, Frame{}, fmt.Errorf("wire: frame prefix: %w", err)
	}
	if size > MaxFrame {
		return nil, Frame{}, ErrFrameTooLarge
	}
	bp := recvPool.Get().(*[]byte)
	if cap(*bp) < int(size) {
		*bp = make([]byte, size)
	}
	body := (*bp)[:size]
	*bp = body
	if _, err := io.ReadFull(fr.br, body); err != nil {
		putRecvBuf(bp)
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, Frame{}, fmt.Errorf("wire: frame body: %w", err)
	}
	m, err := DecodeBodyShared(body)
	if err != nil {
		putRecvBuf(bp)
		return nil, Frame{}, err
	}
	return m, Frame{buf: bp}, nil
}

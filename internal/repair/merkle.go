// Package repair implements anti-entropy between replicas: incremental
// Merkle trees over token-range partitions of the local storage engine,
// pairwise tree-exchange sessions that stream only divergent rows, and a
// scheduler that runs sessions periodically and on node recovery. It is the
// mechanism that bounds how long a recovered replica can serve arbitrarily
// stale data once hinted handoff has dropped or capped its backlog — the
// regime where the adaptive-consistency estimator's propagation model is
// blind, which is why the subsystem also exports a divergence gauge the
// controller folds into its staleness estimate.
package repair

import (
	"sort"
	"sync"

	"harmony/internal/ring"
	"harmony/internal/storage"
	"harmony/internal/wire"
)

// entryDigest hashes one key/version into a 64-bit fingerprint. The digest
// covers the timestamp and tombstone flag as well as the payload, so two
// replicas holding different versions of a key always disagree.
func entryDigest(key []byte, v wire.Value) uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	mix := func(b byte) {
		h ^= uint64(b)
		h *= prime
	}
	for _, b := range key {
		mix(b)
	}
	mix(0xfe) // separator: ("ab","c") must differ from ("a","bc")
	ts := uint64(v.Timestamp)
	for i := 0; i < 8; i++ {
		mix(byte(ts >> (8 * i)))
	}
	if v.Tombstone {
		mix(1)
	} else {
		mix(0)
	}
	for _, b := range v.Data {
		mix(b)
	}
	// fmix64 finalizer, as in ring.hash64: leaf sums need avalanche.
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// span returns the arc length of r in modular token arithmetic; a wrapping
// arc (Start >= End) comes out right because uint64 subtraction wraps. A
// zero span means the full ring (single-token degenerate range).
func span(r wire.TokenRange) uint64 { return r.End - r.Start }

// leafIndex places a token into one of leaves buckets of range r. The token
// must be inside r.
func leafIndex(r wire.TokenRange, leaves int, tok uint64) int {
	s := span(r)
	if s == 0 {
		s = ^uint64(0) // full ring
	}
	bucket := s/uint64(leaves) + 1
	off := tok - r.Start - 1 // offset in [0, span), modular
	idx := int(off / bucket)
	if idx >= leaves {
		idx = leaves - 1
	}
	return idx
}

// buildRoot chains the leaf hashes into a root so an identical range costs a
// single comparison.
func buildRoot(leaves []uint64) uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	for _, l := range leaves {
		for i := 0; i < 8; i++ {
			h ^= l >> (8 * i) & 0xff
			h *= prime
		}
	}
	return h
}

// TreeCache maintains Merkle trees for the token ranges a node replicates.
// Trees build lazily from the engine (one ScanVersions pass rebuilds every
// dirty range at once) and invalidate per range on every applied mutation,
// so a quiescent range's tree is computed once and reused across sessions.
// It is safe for concurrent use.
type TreeCache struct {
	engine *storage.Engine
	leaves int

	mu     sync.Mutex
	ranges []wire.TokenRange // sorted by End; a wrapping arc sorts by End too
	trees  map[wire.TokenRange][]uint64
	// stale marks ranges whose cached tree no longer reflects the engine;
	// gen counts invalidations per range so a rebuild can tell whether an
	// Invalidate raced its (unlocked) engine scan. A raced rebuild still
	// installs — a one-scan-stale tree only costs a spurious or missed
	// leaf sync, which the next session corrects — but the range STAYS
	// stale, so a continuously-written arc keeps getting fresh snapshots
	// instead of either pinning an ancient tree or never installing one.
	stale map[wire.TokenRange]bool
	gen   map[wire.TokenRange]uint64
	// building marks ranges whose rebuild scan is in flight; an Update
	// arriving mid-rebuild cannot know whether the scan saw its row, so it
	// falls back to invalidation instead of patching a tree about to be
	// replaced.
	building map[wire.TokenRange]bool
	builds   uint64 // ranges rebuilt (stats)
	scans    uint64 // engine passes taken (stats)
	updates  uint64 // in-place leaf updates applied (stats)
}

// NewTreeCache tracks the given ranges (the node's replica ranges) with the
// configured per-range leaf count.
func NewTreeCache(engine *storage.Engine, ranges []wire.TokenRange, leaves int) *TreeCache {
	if leaves <= 0 {
		leaves = 8
	}
	c := &TreeCache{
		engine:   engine,
		leaves:   leaves,
		ranges:   sortRanges(ranges),
		trees:    make(map[wire.TokenRange][]uint64, len(ranges)),
		stale:    make(map[wire.TokenRange]bool, len(ranges)),
		gen:      make(map[wire.TokenRange]uint64, len(ranges)),
		building: make(map[wire.TokenRange]bool, len(ranges)),
	}
	return c
}

// sortRanges orders arcs by End for binary search; arcs never overlap.
func sortRanges(in []wire.TokenRange) []wire.TokenRange {
	out := make([]wire.TokenRange, len(in))
	copy(out, in)
	sort.Slice(out, func(i, j int) bool { return out[i].End < out[j].End })
	return out
}

// rangeOf finds the tracked arc containing tok (ok=false when the node does
// not replicate it).
func (c *TreeCache) rangeOf(tok uint64) (wire.TokenRange, bool) {
	rs := c.ranges
	lo, hi := 0, len(rs)
	for lo < hi {
		mid := (lo + hi) / 2
		if rs[mid].End < tok {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	// First range with End >= tok is the only non-wrapping candidate; a
	// wrapping arc (Start >= End) can catch tokens anywhere, so check the
	// edges too.
	if lo < len(rs) && rs[lo].Contains(tok) {
		return rs[lo], true
	}
	for _, r := range rs {
		if r.Start >= r.End && r.Contains(tok) {
			return r, true
		}
	}
	return wire.TokenRange{}, false
}

// Invalidate marks the range containing key stale, if tracked. It is the
// conservative path: the next session rebuilds the whole arc with an engine
// scan. Safe to call from any goroutine.
func (c *TreeCache) Invalidate(key []byte) {
	tok := uint64(ring.HashKey(key))
	c.mu.Lock()
	defer c.mu.Unlock()
	if r, ok := c.rangeOf(tok); ok {
		c.invalidateLocked(r)
	}
}

func (c *TreeCache) invalidateLocked(r wire.TokenRange) {
	c.stale[r] = true
	c.gen[r]++
}

// Update folds one accepted engine mutation into the cached tree in place:
// the displaced version's digest is subtracted from — and the new version's
// digest added to — the affected leaf's commutative sum, so a write-heavy
// arc no longer pays an O(arc) engine scan per session. old/hadOld are the
// engine's displaced newest version (storage.Options.OnReplace). The update
// falls back to whole-arc invalidation whenever there is no clean tree to
// patch: the range is untracked, unbuilt, already stale, mid-rebuild (the
// scan may or may not have seen this row), or structurally mismatched.
//
// Unlike Invalidate, Update must be externally serialized against Trees
// calls on the same cache: if a rebuild could complete in the window
// between the engine mutation and this call, the freshly installed tree
// might already include the row and the in-place delta would double-count
// it. The node runtime provides exactly this serialization (every engine
// apply and every repair message handler runs on the node's runtime).
func (c *TreeCache) Update(key []byte, old wire.Value, hadOld bool, v wire.Value) {
	tok := uint64(ring.HashKey(key))
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.rangeOf(tok)
	if !ok {
		return
	}
	ls := c.trees[r]
	if ls == nil || c.stale[r] || c.building[r] || len(ls) != c.leaves {
		c.invalidateLocked(r)
		return
	}
	li := leafIndex(r, c.leaves, tok)
	if hadOld {
		ls[li] -= entryDigest(key, old)
	}
	ls[li] += entryDigest(key, v)
	c.updates++
}

// Trees returns the Merkle trees for the requested ranges, rebuilding every
// requested-and-stale range in a single engine pass. Ranges the cache does
// not track are silently skipped (a peer asking for an arc this node no
// longer replicates).
func (c *TreeCache) Trees(ranges []wire.TokenRange) []wire.RangeTree {
	c.mu.Lock()
	tracked := make(map[wire.TokenRange]bool, len(c.ranges))
	for _, r := range c.ranges {
		tracked[r] = true
	}
	var rebuild []wire.TokenRange
	for _, r := range ranges {
		if tracked[r] && (c.trees[r] == nil || c.stale[r]) {
			rebuild = append(rebuild, r)
		}
	}
	if len(rebuild) > 0 {
		fresh := make(map[wire.TokenRange][]uint64, len(rebuild))
		startGen := make(map[wire.TokenRange]uint64, len(rebuild))
		for _, r := range rebuild {
			fresh[r] = make([]uint64, c.leaves)
			startGen[r] = c.gen[r]
			c.building[r] = true
		}
		c.mu.Unlock()
		// The engine pass runs outside the cache lock; the generation check
		// below keeps any range an Invalidate raced mid-scan marked stale,
		// so a snapshot missing a concurrent apply is never trusted as
		// clean (see the stale field's comment).
		c.engine.ScanVersions(nil, nil, func(key []byte, v wire.Value) bool {
			tok := uint64(ring.HashKey(key))
			for r, ls := range fresh {
				if r.Contains(tok) {
					ls[leafIndex(r, c.leaves, tok)] += entryDigest(key, v)
					break
				}
			}
			return true
		})
		c.mu.Lock()
		for r, ls := range fresh {
			c.trees[r] = ls
			c.builds++
			delete(c.building, r)
			if c.gen[r] == startGen[r] {
				delete(c.stale, r) // clean: no Invalidate raced the scan
			}
		}
		c.scans++
	}
	out := make([]wire.RangeTree, 0, len(ranges))
	for _, r := range ranges {
		ls, ok := c.trees[r]
		if !ok {
			continue
		}
		leaves := make([]uint64, len(ls))
		copy(leaves, ls)
		out = append(out, wire.RangeTree{Range: r, Root: buildRoot(leaves), Leaves: leaves})
	}
	c.mu.Unlock()
	return out
}

// Builds reports how many range trees have been (re)built, and how many
// engine passes those rebuilds batched into (tests).
func (c *TreeCache) Builds() (ranges, scans uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.builds, c.scans
}

// Updates reports how many mutations were folded into cached trees in
// place, without an engine scan (tests).
func (c *TreeCache) Updates() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.updates
}

// diffLeaves returns the leaf indices where the two trees disagree; a root
// match short-circuits to nil. Mismatched leaf counts (a peer running a
// different configuration) conservatively mark every leaf divergent.
func diffLeaves(mine, theirs wire.RangeTree) []int {
	if mine.Root == theirs.Root && len(mine.Leaves) == len(theirs.Leaves) {
		return nil
	}
	n := len(mine.Leaves)
	if len(theirs.Leaves) != n {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	var out []int
	for i := range mine.Leaves {
		if mine.Leaves[i] != theirs.Leaves[i] {
			out = append(out, i)
		}
	}
	return out
}

package simnet

import (
	"math/rand"
	"testing"
	"time"

	"harmony/internal/dist"
	"harmony/internal/ring"
)

func testTopo(t *testing.T) *ring.Topology {
	t.Helper()
	topo, err := ring.NewTopology([]ring.NodeInfo{
		{ID: "a", DC: "dc1", Rack: "r1"},
		{ID: "b", DC: "dc1", Rack: "r1"},
		{ID: "c", DC: "dc1", Rack: "r2"},
		{ID: "d", DC: "dc2", Rack: "r1"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func newNet(t *testing.T, p Profile) *Net {
	t.Helper()
	return New(testTopo(t), p, rand.New(rand.NewSource(42)))
}

func TestDelayByProximity(t *testing.T) {
	p := Profile{
		Base:          [4]time.Duration{1 * time.Microsecond, 10 * time.Microsecond, 100 * time.Microsecond, 1000 * time.Microsecond},
		Jitter:        dist.Constant{V: 1},
		ClientLatency: 5 * time.Millisecond,
	}
	n := newNet(t, p)
	cases := []struct {
		a, b ring.NodeID
		want time.Duration
	}{
		{"a", "a", 1 * time.Microsecond},
		{"a", "b", 10 * time.Microsecond},   // same rack
		{"a", "c", 100 * time.Microsecond},  // same DC
		{"a", "d", 1000 * time.Microsecond}, // cross DC
		{"client-x", "a", 5 * time.Millisecond},
		{"a", "client-x", 5 * time.Millisecond},
	}
	for _, c := range cases {
		got, up := n.Delay(c.a, c.b, 0)
		if !up || got != c.want {
			t.Errorf("Delay(%s,%s) = %v up=%v, want %v", c.a, c.b, got, up, c.want)
		}
	}
}

func TestBandwidthTerm(t *testing.T) {
	p := UniformProfile(time.Millisecond)
	p.BandwidthBytesPerSec = 1e6 // 1 MB/s
	n := newNet(t, p)
	got, up := n.Delay("a", "b", 1000) // 1 KB at 1 MB/s = 1ms extra
	if !up || got != 2*time.Millisecond {
		t.Fatalf("delay = %v up=%v, want 2ms", got, up)
	}
}

func TestPartitionHealIsolateRejoin(t *testing.T) {
	n := newNet(t, UniformProfile(time.Millisecond))
	n.Partition("a", "b")
	if _, up := n.Delay("a", "b", 0); up {
		t.Fatal("partitioned link up")
	}
	if _, up := n.Delay("b", "a", 0); up {
		t.Fatal("partition must be bidirectional")
	}
	if _, up := n.Delay("a", "c", 0); !up {
		t.Fatal("unrelated link cut")
	}
	n.Heal("a", "b")
	if _, up := n.Delay("a", "b", 0); !up {
		t.Fatal("healed link down")
	}

	all := []ring.NodeID{"a", "b", "c", "d"}
	n.Isolate("c", all)
	for _, peer := range []ring.NodeID{"a", "b", "d"} {
		if _, up := n.Delay("c", peer, 0); up {
			t.Fatalf("isolated node reaches %s", peer)
		}
	}
	n.Rejoin("c", all)
	for _, peer := range []ring.NodeID{"a", "b", "d"} {
		if _, up := n.Delay("c", peer, 0); !up {
			t.Fatalf("rejoined node cannot reach %s", peer)
		}
	}
}

func TestDegradeAndClear(t *testing.T) {
	n := newNet(t, UniformProfile(time.Millisecond))
	n.Degrade("a", "b", 7*time.Millisecond)
	if got, _ := n.Delay("a", "b", 0); got != 8*time.Millisecond {
		t.Fatalf("degraded = %v, want 8ms", got)
	}
	if got, _ := n.Delay("b", "a", 0); got != 8*time.Millisecond {
		t.Fatalf("degradation must be bidirectional, got %v", got)
	}
	n.ClearDegradations()
	if got, _ := n.Delay("a", "b", 0); got != time.Millisecond {
		t.Fatalf("after clear = %v, want 1ms", got)
	}
}

func TestColocate(t *testing.T) {
	p := Profile{
		Base:          [4]time.Duration{1 * time.Microsecond, 10 * time.Microsecond, 100 * time.Microsecond, 1000 * time.Microsecond},
		Jitter:        dist.Constant{V: 1},
		ClientLatency: 9 * time.Millisecond,
	}
	n := newNet(t, p)
	// Before colocation the monitor pays client latency.
	if got, _ := n.Delay("monitor", "b", 0); got != 9*time.Millisecond {
		t.Fatalf("external delay = %v", got)
	}
	n.Colocate("monitor", "a")
	if got, _ := n.Delay("monitor", "b", 0); got != 10*time.Microsecond {
		t.Fatalf("colocated same-rack delay = %v, want 10µs", got)
	}
	if got, _ := n.Delay("monitor", "d", 0); got != 1000*time.Microsecond {
		t.Fatalf("colocated cross-DC delay = %v, want 1ms", got)
	}
}

func TestJitterVariesDelay(t *testing.T) {
	p := Grid5000Profile()
	n := newNet(t, p)
	seen := map[time.Duration]bool{}
	for i := 0; i < 50; i++ {
		d, _ := n.Delay("a", "c", 0)
		seen[d] = true
	}
	if len(seen) < 10 {
		t.Fatalf("jitter produced only %d distinct delays", len(seen))
	}
}

func TestProfilesSane(t *testing.T) {
	g, e := Grid5000Profile(), EC2Profile()
	// EC2 must be uniformly slower than Grid'5000 (the paper's ~5x).
	for i := 1; i < 4; i++ {
		if e.Base[i] < 4*g.Base[i] {
			t.Fatalf("EC2 base[%d]=%v not ~5x Grid'5000 %v", i, e.Base[i], g.Base[i])
		}
	}
	if e.ClientLatency <= g.ClientLatency {
		t.Fatal("EC2 client latency should exceed Grid'5000")
	}
	u := UniformProfile(3 * time.Millisecond)
	for i := 0; i < 4; i++ {
		if u.Base[i] != 3*time.Millisecond {
			t.Fatal("uniform profile not uniform")
		}
	}
}

func TestNamedProfilesRegistry(t *testing.T) {
	ps := Profiles()
	for _, name := range []string{"grid5000", "ec2", "wan-heavytail", "degraded", "congested-bimodal", "drifting"} {
		p, ok := ps[name]
		if !ok {
			t.Fatalf("registry missing profile %q", name)
		}
		if p.Name != name {
			t.Fatalf("profile keyed %q has Name %q", name, p.Name)
		}
		if p.Jitter == nil {
			t.Fatalf("profile %q has nil jitter", name)
		}
		// Base latencies must be monotone in proximity class.
		for i := 1; i < 4; i++ {
			if p.Base[i] < p.Base[i-1] {
				t.Fatalf("profile %q base latencies not monotone: %v", name, p.Base)
			}
		}
	}
	if len(ps) != 6 {
		t.Fatalf("registry has %d profiles, want 6", len(ps))
	}
}

// TestDriftingProfileRegimes pins the drifting profile's two endpoints:
// healthy lognormal jitter at progress 0, degraded floor-plus-stalls at
// progress 1, with the mean multiplier roughly doubling across the drift.
func TestDriftingProfileRegimes(t *testing.T) {
	p, knob := DriftingProfile()
	if p.Name != "drifting" || p.Jitter != dist.Sampler(knob) {
		t.Fatalf("profile jitter is not the returned knob")
	}
	healthy := knob.Mean()
	knob.SetProgress(1)
	degraded := knob.Mean()
	if degraded < 1.7*healthy {
		t.Fatalf("drift barely degrades: %v -> %v", healthy, degraded)
	}
	if q := knob.Quantile(0.01); q < 0.8 {
		t.Fatalf("degraded regime floor missing: p1 = %v", q)
	}
	// Independent knobs per call.
	p2, knob2 := DriftingProfile()
	if knob2.Progress() != 0 || p2.Jitter == p.Jitter {
		t.Fatal("DriftingProfile shares drift state across calls")
	}
}

// TestStressProfileJitterShapes pins the statistical character each new
// profile was added for, via the samplers' analytic accessors.
func TestStressProfileJitterShapes(t *testing.T) {
	wan, deg, con := WANHeavyTailProfile(), DegradedProfile(), CongestedBimodalProfile()
	// All jitters are multiplicative factors with mean in a sane band.
	for _, p := range []Profile{wan, deg, con} {
		m := p.Jitter.Mean()
		if m < 0.9 || m > 2.5 {
			t.Errorf("%s jitter mean = %v, want ~[1, 2.5]", p.Name, m)
		}
		if p99 := p.Jitter.Quantile(0.99); p99 <= m {
			t.Errorf("%s jitter p99 %v not above mean %v", p.Name, p99, m)
		}
	}
	// Heavy tail: WAN p99.99 must dwarf its p99.
	if r := wan.Jitter.Quantile(0.9999) / wan.Jitter.Quantile(0.99); r < 3 {
		t.Errorf("wan tail ratio p99.99/p99 = %v, want heavy", r)
	}
	// Degraded has a hard floor: even the p1 multiplier stays above it.
	if q := deg.Jitter.Quantile(0.01); q < 0.8 {
		t.Errorf("degraded floor broken: p1 multiplier = %v", q)
	}
	// Bimodal: the congested mode must show as a jump between median and
	// tail that a unimodal lognormal of the same median would not have.
	if r := con.Jitter.Quantile(0.95) / con.Jitter.Quantile(0.5); r < 3 {
		t.Errorf("congested p95/p50 = %v, want bimodal separation", r)
	}
}

// TestStressProfilesProduceDelays drives each new profile through Net to
// make sure jitter sampling and clamping hold on the hot path.
func TestStressProfilesProduceDelays(t *testing.T) {
	for _, p := range []Profile{WANHeavyTailProfile(), DegradedProfile(), CongestedBimodalProfile()} {
		n := newNet(t, p)
		seen := map[time.Duration]bool{}
		for i := 0; i < 200; i++ {
			d, up := n.Delay("a", "d", 256) // cross-DC with a payload
			if !up {
				t.Fatalf("%s: link down without partition", p.Name)
			}
			if d <= 0 {
				t.Fatalf("%s: non-positive delay %v", p.Name, d)
			}
			seen[d] = true
		}
		if len(seen) < 50 {
			t.Fatalf("%s: only %d distinct delays in 200 draws", p.Name, len(seen))
		}
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	p := UniformProfile(time.Millisecond)
	p.Jitter = dist.Constant{V: -5} // hostile sampler
	n := newNet(t, p)
	if got, up := n.Delay("a", "b", 0); !up || got < 0 {
		t.Fatalf("negative delay leaked: %v", got)
	}
}

package cluster

import (
	"fmt"
	"testing"
	"time"

	"harmony/internal/client"
	"harmony/internal/ring"
	"harmony/internal/sim"
	"harmony/internal/wire"
)

// TestSessionNeverRegressesWhereOneDoes is the SESSION tier's semantic
// regression test: under concurrent rival writers, a slow-propagation window,
// and node churn, a client.Session issuing reads at wire.Session always reads
// its own writes and never observes a version regression — the cluster may
// answer "unavailable" during the churn window, but never with something
// older than the session has seen. A paired session running the identical
// workload at ONE (the measurement arm — the cluster enforces nothing for
// it) demonstrably regresses under the same conditions.
func TestSessionNeverRegressesWhereOneDoes(t *testing.T) {
	s := sim.New(77)
	spec := DefaultSpec()
	c, err := BuildSim(s, spec)
	if err != nil {
		t.Fatal(err)
	}

	keys := [][]byte{[]byte("acct0"), []byte("acct1"), []byte("acct2"), []byte("acct3")}

	// slow's outbound links to the rest of the cluster are degraded for the
	// middle of the run: ONE writes it coordinates ack from its own replica
	// while propagation lags, opening the staleness window the weak arm
	// falls into. Both clients alternate between slow and a second replica
	// of the contested key — write lands on one coordinator, the read-back
	// goes to the other — so the only difference between the arms is the
	// tier. victim is a replica of another contested key and goes down for
	// a stretch to add churn.
	reps := ring.ReplicasForKey(c.Ring, c.Strategy, keys[0])
	victim := ring.ReplicasForKey(c.Ring, c.Strategy, keys[1])[1]
	slow := reps[0]
	reader := reps[1]
	for _, r := range reps[1:] {
		if r != victim {
			reader = r
			break
		}
	}

	mk := func(id ring.NodeID, pol client.ConsistencyPolicy) *client.Session {
		drv, err := client.New(client.Options{
			ID:           id,
			Coordinators: []ring.NodeID{slow, reader},
			Policy:       pol,
			Timeout:      3 * time.Second,
		}, s, c.Bus)
		if err != nil {
			t.Fatal(err)
		}
		c.Bus.Register(id, s, drv)
		return client.NewSession(drv)
	}
	sess := mk("sess-client", client.Fixed{Read: wire.Session, Write: wire.One})
	weak := mk("weak-client", client.Fixed{}) // ONE reads, ONE writes

	// A rival writer racing both sessions on the same keys.
	rival, err := client.New(client.Options{
		ID:           "rival",
		Coordinators: c.NodeIDs(),
		Policy:       client.Fixed{Write: wire.One},
	}, s, c.Bus)
	if err != nil {
		t.Fatal(err)
	}
	c.Bus.Register("rival", s, rival)

	step := func(done *bool, what string) {
		t.Helper()
		for !*done {
			if !s.Step() {
				t.Fatalf("%s stalled", what)
			}
		}
	}
	const rounds = 96
	var sessOK, sessUnavail, rywViolations int
	for i := 0; i < rounds; i++ {
		switch i {
		case 12:
			for _, other := range c.NodeIDs() {
				if other != slow {
					c.Net.Degrade(slow, other, 250*time.Millisecond)
				}
			}
		case 36:
			c.SetDown(victim)
		case 60:
			c.SetUp(victim)
		case 84:
			c.Net.ClearDegradations()
		}

		key := keys[i%len(keys)]
		rival.Write(key, []byte(fmt.Sprintf("rival%d", i)), func(client.WriteResult) {})

		for _, arm := range []struct {
			name string
			sess *client.Session
		}{{"session", sess}, {"one", weak}} {
			val := []byte(fmt.Sprintf("%s-v%d", arm.name, i))
			var wts int64
			wErr := false
			done := false
			arm.sess.Write(key, val, func(r client.WriteResult) {
				wts, wErr = r.Ts, r.Err != nil
				done = true
			})
			step(&done, arm.name+" write")
			if wErr {
				continue // unavailability during churn: no guarantee to check
			}
			done = false
			arm.sess.Read(key, func(r client.ReadResult) {
				if arm.sess == sess {
					switch {
					case r.Err != nil:
						sessUnavail++
					case r.Ts < wts:
						rywViolations++
					default:
						sessOK++
					}
				}
				done = true
			})
			step(&done, arm.name+" read")
		}
	}
	s.RunFor(3 * time.Second) // drain hints, repair, stragglers

	if n := sess.Regressions(); n != 0 {
		t.Errorf("SESSION client observed %d version regressions, want 0", n)
	}
	if rywViolations != 0 {
		t.Errorf("SESSION client missed its own write %d times, want 0", rywViolations)
	}
	if sessOK < rounds/2 {
		t.Errorf("only %d/%d SESSION reads completed (%d unavailable); the tier must stay usable",
			sessOK, rounds, sessUnavail)
	}
	if weak.Regressions() == 0 {
		t.Errorf("ONE client observed no regressions; the staleness window never materialized and the test proves nothing")
	}
	t.Logf("session: ok=%d unavailable=%d regressions=%d; one: regressions=%d",
		sessOK, sessUnavail, sess.Regressions(), weak.Regressions())
}

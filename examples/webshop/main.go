// Webshop: the paper's motivating low-tolerance application (§III). A shop
// selling items cannot serve stale inventory during a flash sale — a stale
// read can oversell — so it runs Harmony with a 5% tolerable stale-read
// rate. The example simulates a checkout rush on the EC2-like profile and
// compares three checkout paths on identical load:
//
//   - static eventual consistency (what a stale cart looks like),
//   - Harmony's adaptive level (the cluster-wide staleness bound),
//   - the SESSION tier through client.Session: every customer's cart ops run
//     in a session whose token guarantees read-your-writes and monotonic
//     reads at near-ONE cost — the guarantee a checkout actually needs.
//
// It closes with a single customer's add-to-cart/view-cart sequence through
// client.Session, the documented application-facing API.
//
//	go run ./examples/webshop
package main

import (
	"fmt"
	"log"
	"time"

	"harmony/internal/client"
	"harmony/internal/cluster"
	"harmony/internal/core"
	"harmony/internal/sim"
	"harmony/internal/simnet"
	"harmony/internal/wire"
	"harmony/internal/ycsb"
)

func main() {
	s := sim.New(2026)
	spec := cluster.DefaultSpec()
	spec.Profile = simnet.EC2Profile() // the shop runs on cloud VMs
	c, err := cluster.BuildSim(s, spec)
	if err != nil {
		log.Fatal(err)
	}

	// The catalog: 2000 items, each with a stock counter.
	fmt.Println("loading 2000 catalog items...")
	loader, err := ycsb.NewRunner(ycsb.RunConfig{
		Workload: ycsb.Workload{
			Name: "catalog", ReadProportion: 1,
			RecordCount: 2000, ValueBytes: 256,
		},
		Threads: 1,
		Seed:    1,
	}, s, c)
	if err != nil {
		log.Fatal(err)
	}
	loader.Load()

	run := func(name string, policy client.ConsistencyPolicy, sessions bool, mon *core.Monitor) ycsb.Report {
		runner, err := ycsb.NewRunner(ycsb.RunConfig{
			Workload: ycsb.Workload{
				// Flash sale: customers hammer a few hot items; every
				// purchase updates stock (heavy read-update).
				Name: name, ReadProportion: 0.5, UpdateProportion: 0.5,
				RecordCount: 2000, ValueBytes: 256,
				RequestDistribution: ycsb.DistZipfian,
			},
			Threads:      60,
			Policy:       policy,
			Sessions:     sessions,
			ShadowEvery:  2,
			Seed:         7,
			ClientPrefix: name,
		}, s, c)
		if err != nil {
			log.Fatal(err)
		}
		if mon != nil {
			mon.Start()
			defer mon.Stop()
		}
		rep, err := runner.RunMeasured(2*time.Second, 20000)
		if err != nil {
			log.Fatal(err)
		}
		return rep
	}

	// Baseline: what the shop would get from static eventual consistency.
	// The sessions are measurement-only here — at ONE the cluster enforces
	// nothing, so their regression counter shows the violations weak reads
	// let customers see.
	ev := run("flash-sale-eventual", client.Fixed{}, true, nil)
	fmt.Printf("eventual consistency: %d/%d probed reads returned stale stock (p99 %v), %d session violations\n",
		ev.StaleReads, ev.ShadowSamples, ev.ReadLatency.P99().Round(100*time.Microsecond),
		ev.SessionRegressions)

	// Harmony with the web-shop policy: at most 5% stale reads.
	ctl := core.NewController(core.ControllerConfig{
		Policy:               core.Policy{Name: "webshop", ToleratedStaleRate: 0.05},
		N:                    spec.RF,
		AvgWriteBytes:        256,
		BandwidthBytesPerSec: spec.Profile.BandwidthBytesPerSec,
	})
	mon := core.NewMonitor(core.MonitorConfig{
		ID:             "webshop-monitor",
		Nodes:          c.NodeIDs(),
		Interval:       250 * time.Millisecond,
		ReplicaSetSize: spec.RF,
		OnObservation:  ctl.Observe,
	}, s, c.Bus)
	c.Net.Colocate("webshop-monitor", c.NodeIDs()[0])
	c.Bus.Register("webshop-monitor", s, mon)

	ha := run("flash-sale-harmony", ctl, false, mon)
	d := ctl.Last()
	fmt.Printf("harmony (5%% tolerance): %d/%d probed reads stale (p99 %v)\n",
		ha.StaleReads, ha.ShadowSamples, ha.ReadLatency.P99().Round(100*time.Microsecond))
	fmt.Printf("harmony settled on level %s (estimate %.3f, Xn=%d)\n", d.Level, d.Estimate, d.Xn)

	// The SESSION tier: each customer's ops run through a client.Session and
	// reads ship at wire.Session, so the cluster enforces every session's
	// token — read-your-writes at near-ONE cost. Zero regressions is the
	// contract, not luck.
	se := run("flash-sale-session", client.Fixed{Read: wire.Session}, true, nil)
	fmt.Printf("session tier: %d session violations over %d ops (p99 %v)\n",
		se.SessionRegressions, se.Operations, se.ReadLatency.P99().Round(100*time.Microsecond))
	if se.SessionRegressions != 0 {
		log.Fatalf("SESSION reads must never regress, saw %d", se.SessionRegressions)
	}

	evRate := float64(ev.StaleReads) / float64(ev.ShadowSamples)
	haRate := float64(ha.StaleReads) / float64(ha.ShadowSamples)
	if evRate > 0 {
		fmt.Printf("stale-read rate cut by %.0f%% for the checkout path\n", (1-haRate/evRate)*100)
	}
	if haRate > 0.05 {
		fmt.Printf("note: measured rate %.1f%% exceeds the 5%% target for this short run\n", haRate*100)
	} else {
		fmt.Printf("measured stale rate %.2f%% is within the 5%% tolerance\n", haRate*100)
	}

	// One customer's checkout through the documented API: add to cart, then
	// view the cart. The session read is token-checked, so the view reflects
	// the add even though it may be served by a single replica.
	drv, err := client.New(client.Options{
		ID:           "checkout",
		Coordinators: c.NodeIDs(),
		Policy:       client.Fixed{Read: wire.Session},
	}, s, c.Bus)
	if err != nil {
		log.Fatal(err)
	}
	c.Bus.Register("checkout", s, drv)
	sess := client.NewSession(drv)
	s.Post(func() {
		sess.Write([]byte("cart:alice"), []byte("item-17 x1"), func(w client.WriteResult) {
			if w.Err != nil {
				log.Fatalf("add to cart: %v", w.Err)
			}
			sess.Read([]byte("cart:alice"), func(r client.ReadResult) {
				if r.Err != nil {
					log.Fatalf("view cart: %v", r.Err)
				}
				fmt.Printf("checkout sees its own write: %q\n", r.Value)
			})
		})
	})
	s.RunFor(2 * time.Second)
	if n := sess.Regressions(); n != 0 {
		log.Fatalf("checkout session observed %d regressions", n)
	}
}

package bench

import (
	"fmt"
	"strings"
	"time"

	"harmony/internal/cluster"
	"harmony/internal/core"
	"harmony/internal/grouping"
	"harmony/internal/sim"
	"harmony/internal/ycsb"
)

// The regroup experiment closes the evaluation loop on the grouping
// subsystem: a write-contended hotspot MIGRATES mid-run to a different part
// of the keyspace. Groups pinned at cluster build time misclassify the new
// hot keys — they land in the loose "cold" group, whose measured arrival
// process turns hot-blended, so a static-group controller must either
// escalate the entire cold group (nearly the whole keyspace pays quorum
// reads) or leave the hot data protected only to the loose target. The
// learned regrouper instead watches the samples move, re-clusters, and
// broadcasts a new epoch that re-tightens exactly the migrated hot set,
// keeping cold reads at ONE.

// RegroupSpec parameterizes the migrating-hotspot experiment.
type RegroupSpec struct {
	Scenario Scenario
	// HotKeys is the size of the hot range, initially [0, HotKeys);
	// TotalKeys is the whole keyspace.
	HotKeys   int64
	TotalKeys int64
	// MigrateTo is where the hot range jumps mid-run: [MigrateTo,
	// MigrateTo+HotKeys).
	MigrateTo int64
	// HotThreads / ColdThreads size the two closed-loop client pools.
	HotThreads, ColdThreads int
	// HotReadProportion is the hot pool's read share (its write share is
	// the complement); the hot data is write-contended by design.
	HotReadProportion float64
	// HotTolerance / ColdTolerance are the tight and loose tolerable
	// stale-read rates.
	HotTolerance, ColdTolerance float64
	// RegroupInterval is the learned policy's regroup cadence.
	RegroupInterval time.Duration
	// KeySampleLimit is the per-node sample export size for the learned
	// policy.
	KeySampleLimit int
	// AdaptTime is the virtual time granted after the migration before the
	// post-migration measurement begins (covers sampler decay, reclustering
	// and broadcast for the learned policy — the static policy just waits).
	AdaptTime time.Duration
}

// DefaultRegroupSpec returns the standard configuration.
func DefaultRegroupSpec() RegroupSpec {
	return RegroupSpec{
		Scenario:          Grid5000(),
		HotKeys:           300,
		TotalKeys:         20_000,
		MigrateTo:         10_000,
		HotThreads:        20,
		ColdThreads:       40,
		HotReadProportion: 0.3,
		HotTolerance:      0.05,
		ColdTolerance:     0.25,
		RegroupInterval:   time.Second,
		// Sampler-weighted clustering concentrates the tight category on
		// the heavy head of the zipfian hotspot; a larger per-node sample
		// keeps the hot range's lighter tail visible so it clusters with
		// the head instead of defaulting loose.
		KeySampleLimit: 256,
		AdaptTime:      6 * time.Second,
	}
}

// RegroupGroup is one key group's outcome within one measurement phase.
type RegroupGroup struct {
	Name            string  `json:"name"`
	Tolerance       float64 `json:"tolerance"`
	Reads           uint64  `json:"reads"`
	Writes          uint64  `json:"writes"`
	ShadowSamples   uint64  `json:"shadow_samples"`
	StaleReads      uint64  `json:"stale_reads"`
	StaleFraction   float64 `json:"stale_fraction"`
	WithinTolerance bool    `json:"within_tolerance"`
	FinalLevel      string  `json:"final_level"`
}

// RegroupPhase is one policy's measurement over one phase (before or after
// the hotspot migration).
type RegroupPhase struct {
	ThroughputOps float64        `json:"throughput_ops"`
	Operations    int64          `json:"operations"`
	Errors        int64          `json:"errors"`
	ReadP99Ms     float64        `json:"read_p99_ms"`
	Groups        []RegroupGroup `json:"groups"`
}

// RegroupRun is one policy's full trajectory through the experiment.
type RegroupRun struct {
	Policy string       `json:"policy"`
	Phase1 RegroupPhase `json:"phase1_before_migration"`
	Phase2 RegroupPhase `json:"phase2_after_migration"`
	// Epochs is how many learned epochs were applied over the whole run
	// (zero for the static policy).
	Epochs uint64 `json:"epochs"`
	// RegroupLagMs is the time from the hotspot migration to the epoch
	// that re-tightened the new hot keys (learned policy only).
	RegroupLagMs float64 `json:"regroup_lag_ms"`
	// HotProtectedTo is the tolerance actually guarding the CURRENT hot
	// keys in phase 2: the learned policy re-tightens them to the hot
	// target, while pinned groups leave them on the loose one — the
	// misclassification made visible.
	HotProtectedTo float64 `json:"hot_protected_to"`
}

// RegroupResult compares learned regrouping against static groups on
// identical migrating-hotspot load.
type RegroupResult struct {
	Scenario  string     `json:"scenario"`
	HotKeys   int64      `json:"hot_keys"`
	TotalKeys int64      `json:"total_keys"`
	MigrateTo int64      `json:"migrate_to"`
	Ops       int64      `json:"ops"`
	Learned   RegroupRun `json:"learned"`
	Static    RegroupRun `json:"static"`
	// ThroughputGainPhase2 is Learned/Static - 1 after the migration — the
	// payoff of closing the Categorizer→GroupFn loop.
	ThroughputGainPhase2 float64 `json:"throughput_gain_phase2"`
}

// Format renders the comparison.
func (r RegroupResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== regroup (%s, hotspot %d keys migrating 0->%d in a %d keyspace, %d ops/phase) ==\n",
		r.Scenario, r.HotKeys, r.MigrateTo, r.TotalKeys, r.Ops)
	phase := func(name string, p RegroupPhase) {
		fmt.Fprintf(&b, "  %-16s tput=%8.0f ops/s readP99=%6.2fms errors=%d\n",
			name, p.ThroughputOps, p.ReadP99Ms, p.Errors)
		for _, g := range p.Groups {
			status := "within"
			if !g.WithinTolerance {
				status = "EXCEEDED"
			}
			fmt.Fprintf(&b, "    %-5s level=%-6s stale=%d/%d (%.3f vs tol %.2f, %s) reads=%d writes=%d\n",
				g.Name, g.FinalLevel, g.StaleReads, g.ShadowSamples,
				g.StaleFraction, g.Tolerance, status, g.Reads, g.Writes)
		}
	}
	for _, run := range []RegroupRun{r.Learned, r.Static} {
		fmt.Fprintf(&b, "%s (epochs=%d", run.Policy, run.Epochs)
		if run.RegroupLagMs > 0 {
			fmt.Fprintf(&b, ", regroup lag %.0fms", run.RegroupLagMs)
		}
		fmt.Fprintf(&b, "; hot data protected to %.2f after migration)\n", run.HotProtectedTo)
		phase("before", run.Phase1)
		phase("after", run.Phase2)
	}
	fmt.Fprintf(&b, "post-migration throughput gain learned vs static: %+.0f%%\n", r.ThroughputGainPhase2*100)
	return b.String()
}

// Regroup measures the experiment for both policies and compares them.
func Regroup(spec RegroupSpec, opts Options) (RegroupResult, error) {
	opts = opts.withDefaults()
	if spec.HotKeys <= 0 || spec.TotalKeys <= spec.HotKeys {
		return RegroupResult{}, fmt.Errorf("bench: regroup needs 0 < HotKeys < TotalKeys, got %d/%d", spec.HotKeys, spec.TotalKeys)
	}
	if spec.MigrateTo <= spec.HotKeys || spec.MigrateTo+spec.HotKeys > spec.TotalKeys {
		return RegroupResult{}, fmt.Errorf("bench: MigrateTo %d must move the hot range into fresh keyspace", spec.MigrateTo)
	}
	res := RegroupResult{
		Scenario:  spec.Scenario.Name,
		HotKeys:   spec.HotKeys,
		TotalKeys: spec.TotalKeys,
		MigrateTo: spec.MigrateTo,
		Ops:       opts.OpsPerPoint,
	}
	learned, err := runRegroup(spec, opts, true)
	if err != nil {
		return RegroupResult{}, fmt.Errorf("bench: regroup learned: %w", err)
	}
	static, err := runRegroup(spec, opts, false)
	if err != nil {
		return RegroupResult{}, fmt.Errorf("bench: regroup static: %w", err)
	}
	res.Learned, res.Static = learned, static
	if static.Phase2.ThroughputOps > 0 {
		res.ThroughputGainPhase2 = learned.Phase2.ThroughputOps/static.Phase2.ThroughputOps - 1
	}
	opts.progress("regroup %s: post-migration learned %.0f ops/s vs static %.0f ops/s (%+.0f%%)",
		spec.Scenario.Name, learned.Phase2.ThroughputOps, static.Phase2.ThroughputOps,
		res.ThroughputGainPhase2*100)
	return res, nil
}

// runRegroup measures one policy through both phases.
func runRegroup(spec RegroupSpec, opts Options, learned bool) (RegroupRun, error) {
	s := sim.New(opts.Seed)
	cspec := spec.Scenario.Spec
	cspec.Groups = 2
	tols := []float64{spec.HotTolerance, spec.ColdTolerance}

	var initial *grouping.Assignment
	if learned {
		// The learned policy starts from the uniform epoch-0 assignment:
		// every key in the loose group until the first recluster.
		var err error
		if initial, err = grouping.Uniform(tols, 1); err != nil {
			return RegroupRun{}, err
		}
		cspec.GroupFn = initial.GroupOf
		cspec.KeySampleLimit = spec.KeySampleLimit
		// Longer sampler memory keeps low-weight tail keys' features from
		// jittering between reclusterings (at a small cost in how fast a
		// migrated-away hotspot fades from the sample).
		cspec.KeyStatsDecay = 0.8
	} else {
		// The static policy pins the groups to the initial hot range at
		// build time — the PR 2 configuration the hotspot will outrun.
		hot := spec.HotKeys
		cspec.GroupFn = func(key []byte) int {
			if idx, ok := ycsb.KeyIndex(key); ok && idx < hot {
				return 0
			}
			return 1
		}
	}
	c, err := cluster.BuildSim(s, cspec)
	if err != nil {
		return RegroupRun{}, err
	}
	if spec.Scenario.Prepare != nil {
		if stop := spec.Scenario.Prepare(s, c); stop != nil {
			defer stop()
		}
	}

	ctl := core.NewController(core.ControllerConfig{
		Policy: core.Policy{
			Name: fmt.Sprintf("regroup-%d%%", int(spec.HotTolerance*100+0.5)),
			// The global stream protects the most sensitive data.
			ToleratedStaleRate: spec.HotTolerance,
		},
		N:                    cspec.RF,
		BandwidthBytesPerSec: cspec.Profile.BandwidthBytesPerSec,
		Groups:               2,
		GroupFn:              cspec.GroupFn,
		GroupTolerances:      tols,
	})

	// The learned policy's regrouper: fed from the monitor's stats tap,
	// watching for the epoch that reclassifies the migrated hot keys.
	var rg *grouping.Regrouper
	var migratedAt time.Time
	regroupLag := time.Duration(0)
	if learned {
		probes := make([][]byte, 8)
		for i := range probes {
			probes[i] = ycsb.Key(spec.MigrateTo + int64(i))
		}
		rg, err = grouping.New(grouping.Config{
			Self:         "harmony-monitor",
			Nodes:        c.NodeIDs(),
			K:            2,
			MinTolerance: spec.HotTolerance,
			MaxTolerance: spec.ColdTolerance,
			Interval:     spec.RegroupInterval,
			Seed:         opts.Seed,
			Controller:   ctl,
			Initial:      initial,
			OnRegroup: func(a *grouping.Assignment) {
				if migratedAt.IsZero() || regroupLag != 0 {
					return
				}
				tight := 0
				for _, p := range probes {
					if a.GroupOf(p) == 0 {
						tight++
					}
				}
				if tight > len(probes)/2 {
					regroupLag = s.Now().Sub(migratedAt)
				}
			},
		}, s, c.Bus)
		if err != nil {
			return RegroupRun{}, err
		}
	}
	monCfg := core.MonitorConfig{
		ID:             "harmony-monitor",
		Nodes:          c.NodeIDs(),
		Interval:       spec.Scenario.MonitorInterval,
		ReplicaSetSize: cspec.RF,
		OnObservation:  ctl.Observe,
	}
	if rg != nil {
		monCfg.OnNodeStats = rg.IngestStats
	}
	mon := core.NewMonitor(monCfg, s, c.Bus)
	c.Net.Colocate("harmony-monitor", c.NodeIDs()[0])
	c.Bus.Register("harmony-monitor", s, mon)

	hotWl := ycsb.Workload{
		Name:             "regroup-hot",
		ReadProportion:   spec.HotReadProportion,
		UpdateProportion: 1 - spec.HotReadProportion,
		RecordCount:      spec.HotKeys, ValueBytes: 1024,
		RequestDistribution: ycsb.DistZipfian,
	}
	coldWl := ycsb.Workload{
		Name: "regroup-cold", ReadProportion: 0.95, UpdateProportion: 0.05,
		RecordCount: spec.TotalKeys, ValueBytes: 1024,
		RequestDistribution: ycsb.DistUniform,
	}
	newRunner := func(wl ycsb.Workload, threads int, prefix string, seedOff int64) (*ycsb.Runner, error) {
		return ycsb.NewRunner(ycsb.RunConfig{
			Workload:     wl,
			Threads:      threads,
			ShadowEvery:  4,
			Seed:         opts.Seed + seedOff,
			ClientPrefix: prefix,
			Policy:       ctl,
		}, s, c)
	}
	hotR, err := newRunner(hotWl, spec.HotThreads, "hot", 101)
	if err != nil {
		return RegroupRun{}, err
	}
	coldR, err := newRunner(coldWl, spec.ColdThreads, "cold", 202)
	if err != nil {
		return RegroupRun{}, err
	}
	coldR.Load() // spans the whole keyspace, hot ranges included

	mon.Start()
	if rg != nil {
		rg.Start()
	}
	hotR.Start()
	coldR.Start()

	measure := func() (RegroupPhase, error) {
		hotR.ResetMeasurement()
		coldR.ResetMeasurement()
		for hotR.Completed()+coldR.Completed() < opts.OpsPerPoint {
			if !s.Step() {
				return RegroupPhase{}, fmt.Errorf("simulation went idle with %d/%d measured ops",
					hotR.Completed()+coldR.Completed(), opts.OpsPerPoint)
			}
		}
		hotRep, coldRep := hotR.Report(), coldR.Report()
		phase := RegroupPhase{
			ThroughputOps: hotRep.ThroughputOps + coldRep.ThroughputOps,
			Operations:    hotRep.Operations + coldRep.Operations,
			Errors:        hotRep.Errors + coldRep.Errors,
		}
		p99 := hotRep.ReadLatency.P99()
		if cp := coldRep.ReadLatency.P99(); cp > p99 {
			p99 = cp
		}
		phase.ReadP99Ms = float64(p99) / 1e6
		names := []string{"tight", "loose"}
		for g, gs := range hotRep.Groups {
			if g >= len(names) {
				break
			}
			rg := RegroupGroup{
				Name:          names[g],
				Tolerance:     tols[g],
				Reads:         gs.Reads,
				Writes:        gs.Writes,
				ShadowSamples: gs.ShadowSamples,
				StaleReads:    gs.StaleReads,
				StaleFraction: gs.StaleFraction(),
				FinalLevel:    ctl.GroupLast(g).Level.String(),
			}
			rg.WithinTolerance = rg.StaleFraction <= rg.Tolerance
			phase.Groups = append(phase.Groups, rg)
		}
		return phase, nil
	}

	// Warm-up: enough monitor rounds for steady state, and for the learned
	// policy at least two regroup cycles so epoch 1 is installed.
	warmup := 8 * spec.Scenario.MonitorInterval
	if learned && warmup < 3*spec.RegroupInterval {
		warmup = 3 * spec.RegroupInterval
	}
	if warmup < 2*time.Second {
		warmup = 2 * time.Second
	}
	s.RunFor(warmup)
	run := RegroupRun{Policy: "static"}
	if learned {
		run.Policy = "learned"
	}
	if run.Phase1, err = measure(); err != nil {
		return RegroupRun{}, err
	}

	// The hotspot migrates; the environment gets AdaptTime to re-adapt
	// before the after-picture is taken.
	migratedAt = s.Now()
	hotR.SetKeyOffset(spec.MigrateTo)
	s.RunFor(spec.AdaptTime)
	if run.Phase2, err = measure(); err != nil {
		return RegroupRun{}, err
	}

	hotR.Stop()
	coldR.Stop()
	if rg != nil {
		rg.Stop()
	}
	mon.Stop()
	hotR.Drain()
	coldR.Drain()

	run.HotProtectedTo = spec.ColdTolerance // pinned groups: hot data on the loose target
	if learned {
		run.Epochs = rg.Epochs()
		run.RegroupLagMs = durMs(regroupLag)
		if g := rg.Current().GroupOf(ycsb.Key(spec.MigrateTo)); g == 0 {
			run.HotProtectedTo = spec.HotTolerance
		}
	}
	return run, nil
}

package cluster

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"harmony/internal/client"
	"harmony/internal/repair"
	"harmony/internal/ring"
	"harmony/internal/sim"
	"harmony/internal/wire"
)

// TestMassChurnRFMinusOneReplicas crashes RF-1 of a key's replicas at once —
// the worst survivable failure — and pins the degraded-mode contract: quorum
// operations on the key fail fast with ErrUnavailable (no hangs), CL=ONE
// keeps both reading and writing through the lone survivor, and after the
// victims return, recovery-triggered anti-entropy re-converges every replica
// onto the value written during the outage. Runs under -race in CI like the
// rest of the package.
func TestMassChurnRFMinusOneReplicas(t *testing.T) {
	spec := DefaultSpec()
	spec.HintedHandoff = true
	spec.Repair = repair.Options{
		Enabled:     true,
		Interval:    200 * time.Millisecond,
		Concurrency: 4,
	}
	s := sim.New(23)
	c, err := BuildSim(s, spec)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	key := []byte("mass-churn")
	reps := ring.ReplicasForKey(c.Ring, c.Strategy, key)
	if len(reps) != spec.RF {
		t.Fatalf("replica set size = %d, want RF %d", len(reps), spec.RF)
	}
	survivor, victims := reps[0], reps[1:]

	// The client coordinates at the surviving replica: CL=ONE stays local.
	// The mutable policy lets each write pick its level explicitly.
	pol := &writeLevelPolicy{write: wire.Quorum}
	drv, err := client.New(client.Options{
		ID:           "cl",
		Coordinators: []ring.NodeID{survivor},
		Policy:       pol,
		Timeout:      2 * time.Second,
	}, s, c.Bus)
	if err != nil {
		t.Fatal(err)
	}
	c.Bus.Register("cl", s, drv)

	write := func(value string, level wire.ConsistencyLevel) client.WriteResult {
		t.Helper()
		pol.write = level
		var res client.WriteResult
		done := false
		drv.Write(key, []byte(value), func(r client.WriteResult) { res = r; done = true })
		s.RunFor(3 * time.Second)
		if !done {
			t.Fatalf("write %q at %v never completed", value, level)
		}
		return res
	}
	read := func(level wire.ConsistencyLevel) client.ReadResult {
		t.Helper()
		var res client.ReadResult
		done := false
		drv.ReadAt(key, level, func(r client.ReadResult) { res = r; done = true })
		s.RunFor(3 * time.Second)
		if !done {
			t.Fatalf("read at %v never completed", level)
		}
		return res
	}

	if res := write("v1", wire.Quorum); res.Err != nil {
		t.Fatalf("healthy quorum write: %v", res.Err)
	}

	// Crash all victims in the same instant.
	for _, v := range victims {
		c.SetDown(v)
	}

	if res := read(wire.Quorum); !errors.Is(res.Err, client.ErrUnavailable) {
		t.Fatalf("quorum read with %d/%d replicas down: err = %v, want ErrUnavailable", len(victims), spec.RF, res.Err)
	}
	if res := read(wire.One); res.Err != nil || string(res.Value) != "v1" {
		t.Fatalf("CL=ONE read through survivor: %+v", res)
	}
	// A refused quorum write may still partially apply at the coordinator —
	// standard Dynamo semantics: the error means "quorum not reached", not
	// "nothing happened" — so the pin here is only the refusal itself.
	if res := write("v-lost", wire.Quorum); !errors.Is(res.Err, client.ErrUnavailable) {
		t.Fatalf("quorum write with %d/%d replicas down: err = %v, want ErrUnavailable", len(victims), spec.RF, res.Err)
	}
	outage := write("v2", wire.One)
	if outage.Err != nil {
		t.Fatalf("CL=ONE write through survivor: %v", outage.Err)
	}

	// Recovery: the survivor's anti-entropy streams v2 to every victim.
	for _, v := range victims {
		c.SetUp(v)
	}
	s.RunFor(10 * time.Second)

	if res := write("v3", wire.All); res.Err != nil {
		t.Fatalf("post-recovery CL=ALL write: %v", res.Err)
	}
	for _, v := range victims {
		row, ok := c.Node(v).Engine().Get(key)
		if !ok {
			t.Fatalf("victim %s holds nothing post-recovery", v)
		}
		if string(row.Data) != "v3" {
			t.Fatalf("victim %s holds %q, want v3", v, row.Data)
		}
	}
	if agg := c.AggregateMetrics(); agg.RepairRows == 0 {
		t.Fatal("recovery streamed no repair rows")
	}
}

// writeLevelPolicy reads at ONE and writes at whatever level the test sets.
type writeLevelPolicy struct{ write wire.ConsistencyLevel }

func (p *writeLevelPolicy) LevelsFor([]byte) (read, write wire.ConsistencyLevel) {
	return wire.One, p.write
}

// TestMassChurnQuorumFailsFast pins the latency of refusal: with RF-1
// replicas down, a quorum operation must resolve (with an error) well before
// the client's overall deadline — the coordinator knows the replica set
// cannot assemble a quorum and says so immediately instead of waiting out
// the timeout.
func TestMassChurnQuorumFailsFast(t *testing.T) {
	spec := DefaultSpec()
	s := sim.New(29)
	c, err := BuildSim(s, spec)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	key := []byte("fail-fast")
	reps := ring.ReplicasForKey(c.Ring, c.Strategy, key)
	drv, err := client.New(client.Options{
		ID:           "cl",
		Coordinators: []ring.NodeID{reps[0]},
		Policy:       client.Fixed{Write: wire.Quorum},
		Timeout:      10 * time.Second,
	}, s, c.Bus)
	if err != nil {
		t.Fatal(err)
	}
	c.Bus.Register("cl", s, drv)

	for _, v := range reps[1:] {
		c.SetDown(v)
	}
	start := s.Now()
	var res client.ReadResult
	var took time.Duration
	done := false
	drv.ReadAt(key, wire.Quorum, func(r client.ReadResult) {
		res, took, done = r, s.Now().Sub(start), true
	})
	s.RunFor(12 * time.Second)
	if !done {
		t.Fatal("quorum read never completed")
	}
	if !errors.Is(res.Err, client.ErrUnavailable) {
		t.Fatalf("err = %v, want ErrUnavailable", res.Err)
	}
	if took > 2*time.Second {
		t.Fatalf("refusal took %v — waited out the deadline instead of failing fast", took)
	}
	if fmt.Sprint(res.Err) == "" {
		t.Fatal("empty error string")
	}
}

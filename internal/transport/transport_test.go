package transport

import (
	"testing"
	"time"

	"harmony/internal/ring"
	"harmony/internal/sim"
	"harmony/internal/simnet"
	"harmony/internal/wire"
)

func testTopo(t *testing.T) *ring.Topology {
	t.Helper()
	topo, err := ring.NewTopology([]ring.NodeInfo{
		{ID: "a", DC: "dc1", Rack: "r1"},
		{ID: "b", DC: "dc1", Rack: "r1"},
		{ID: "c", DC: "dc1", Rack: "r2"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

type capture struct {
	froms []ring.NodeID
	msgs  []wire.Message
	times []time.Time
	rt    sim.Runtime
}

func (c *capture) Deliver(from ring.NodeID, m wire.Message) {
	c.froms = append(c.froms, from)
	c.msgs = append(c.msgs, m)
	c.times = append(c.times, c.rt.Now())
}

func TestBusDeliversWithDelay(t *testing.T) {
	s := sim.New(1)
	net := simnet.New(testTopo(t), simnet.UniformProfile(3*time.Millisecond), s.NewStream())
	bus := NewBus(net)
	sink := &capture{rt: s}
	bus.Register("b", s, sink)
	start := s.Now()
	bus.Send("a", "b", wire.Ping{ID: 1})
	s.RunUntilIdle(100)
	if len(sink.msgs) != 1 {
		t.Fatalf("delivered %d messages", len(sink.msgs))
	}
	if got := sink.times[0].Sub(start); got != 3*time.Millisecond {
		t.Fatalf("delay = %v, want 3ms", got)
	}
	if sink.froms[0] != "a" {
		t.Fatalf("from = %v", sink.froms[0])
	}
}

func TestBusDropsToUnknown(t *testing.T) {
	s := sim.New(1)
	net := simnet.New(testTopo(t), simnet.UniformProfile(time.Millisecond), s.NewStream())
	bus := NewBus(net)
	bus.Send("a", "zzz", wire.Ping{ID: 1})
	s.RunUntilIdle(10)
	if d, dropped := bus.Stats(); d != 0 || dropped != 1 {
		t.Fatalf("delivered=%d dropped=%d", d, dropped)
	}
}

func TestBusDropsAcrossPartition(t *testing.T) {
	s := sim.New(1)
	net := simnet.New(testTopo(t), simnet.UniformProfile(time.Millisecond), s.NewStream())
	bus := NewBus(net)
	sink := &capture{rt: s}
	bus.Register("b", s, sink)
	net.Partition("a", "b")
	bus.Send("a", "b", wire.Ping{ID: 1})
	s.RunUntilIdle(10)
	if len(sink.msgs) != 0 {
		t.Fatal("message crossed a partition")
	}
	net.Heal("a", "b")
	bus.Send("a", "b", wire.Ping{ID: 2})
	s.RunUntilIdle(10)
	if len(sink.msgs) != 1 {
		t.Fatal("message not delivered after heal")
	}
}

func TestBusUnregisterDropsInFlight(t *testing.T) {
	s := sim.New(1)
	net := simnet.New(testTopo(t), simnet.UniformProfile(5*time.Millisecond), s.NewStream())
	bus := NewBus(net)
	sink := &capture{rt: s}
	bus.Register("b", s, sink)
	bus.Send("a", "b", wire.Ping{ID: 1})
	bus.Unregister("b") // before delivery fires
	s.RunUntilIdle(10)
	if len(sink.msgs) != 0 {
		t.Fatal("message delivered to unregistered endpoint")
	}
}

func TestBusDegradedLink(t *testing.T) {
	s := sim.New(1)
	net := simnet.New(testTopo(t), simnet.UniformProfile(time.Millisecond), s.NewStream())
	bus := NewBus(net)
	sink := &capture{rt: s}
	bus.Register("b", s, sink)
	net.Degrade("a", "b", 50*time.Millisecond)
	start := s.Now()
	bus.Send("a", "b", wire.Ping{ID: 1})
	s.RunUntilIdle(10)
	if got := sink.times[0].Sub(start); got != 51*time.Millisecond {
		t.Fatalf("degraded delay = %v, want 51ms", got)
	}
}

func TestServiceQueueSerializesLoad(t *testing.T) {
	s := sim.New(1)
	sink := &capture{rt: s}
	q := NewServiceQueue(s, sink, func(wire.Message) time.Duration { return 10 * time.Millisecond })
	start := s.Now()
	// Three simultaneous arrivals must be served at 10, 20, 30ms.
	for i := 0; i < 3; i++ {
		q.Deliver("x", wire.StatsRequest{ID: uint64(i)})
	}
	s.RunUntilIdle(100)
	if len(sink.times) != 3 {
		t.Fatalf("served %d", len(sink.times))
	}
	for i, want := range []time.Duration{10, 20, 30} {
		if got := sink.times[i].Sub(start); got != want*time.Millisecond {
			t.Fatalf("msg %d served at %v, want %vms", i, got, want)
		}
	}
	st := q.Stats()
	if st.Served != 3 || st.MaxDepth != 3 || st.Depth != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.BusyFor != 30*time.Millisecond {
		t.Fatalf("busy = %v", st.BusyFor)
	}
}

func TestServiceQueueIdlePassThrough(t *testing.T) {
	s := sim.New(1)
	sink := &capture{rt: s}
	q := NewServiceQueue(s, sink, func(wire.Message) time.Duration { return 5 * time.Millisecond })
	q.Deliver("x", wire.StatsRequest{ID: 1})
	s.RunFor(100 * time.Millisecond)
	start := s.Now()
	q.Deliver("x", wire.StatsRequest{ID: 2}) // queue idle: only service time applies
	s.RunUntilIdle(10)
	if got := sink.times[1].Sub(start); got != 5*time.Millisecond {
		t.Fatalf("idle service = %v, want 5ms", got)
	}
}

func TestLoopbackSynchronous(t *testing.T) {
	l := NewLoopback()
	s := sim.New(1)
	sink := &capture{rt: s}
	l.Register("n", sink)
	l.Send("m", "n", wire.Ping{ID: 9})
	if len(sink.msgs) != 1 {
		t.Fatal("loopback did not deliver synchronously")
	}
	l.Send("m", "unknown", wire.Ping{ID: 10}) // silently dropped
	if len(sink.msgs) != 1 {
		t.Fatal("loopback delivered to unknown endpoint")
	}
}

func TestClientLatencyForExternalEndpoints(t *testing.T) {
	s := sim.New(1)
	profile := simnet.Grid5000Profile()
	profile.Jitter = nil // deterministic
	net := simnet.New(testTopo(t), profile, s.NewStream())
	bus := NewBus(net)
	sink := &capture{rt: s}
	bus.Register("a", s, sink)
	start := s.Now()
	bus.Send("external-client", "a", wire.Ping{ID: 1})
	s.RunUntilIdle(10)
	if len(sink.times) != 1 {
		t.Fatal("no delivery")
	}
	got := sink.times[0].Sub(start)
	if got < profile.ClientLatency {
		t.Fatalf("client latency = %v, want >= %v", got, profile.ClientLatency)
	}
}

package core

import (
	"sync"
	"time"

	"harmony/internal/wire"
)

// LagMeter quantifies re-adaptation lag: the time from a marked regime
// change (a network drift, a hotspot migration) until the controller first
// reaches the consistency level it ends up operating at in the new regime.
// Chain OnDecision into ControllerConfig.OnDecision (or OnGroupDecision for
// one group's stream) and call MarkRegimeChange at the instant the
// environment shifts.
//
// The "new operating level" is the modal level over the trailing Window
// decisions rather than a strict consecutive run: when the post-change
// estimate sits near a decision boundary, the controller legitimately
// dithers between adjacent levels, and demanding a long unbroken run would
// report "never stabilized" for a controller that re-adapted within one
// monitoring round. Lag is therefore time-to-first-decision at the modal
// level; a controller already operating at the new regime's level reports
// zero lag.
type LagMeter struct {
	// Window is how many trailing decisions define the operating mode;
	// zero means 8.
	Window int

	mu       sync.Mutex
	marked   bool
	markedAt time.Time
	pre      []lagDecision
	post     []lagDecision
}

type lagDecision struct {
	at    time.Time
	level wire.ConsistencyLevel
}

const lagKeep = 4096

// MarkRegimeChange records the instant the environment changed; subsequent
// decisions are judged against it. Re-marking restarts the measurement.
func (l *LagMeter) MarkRegimeChange(at time.Time) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.marked = true
	l.markedAt = at
	l.post = l.post[:0]
}

// OnDecision consumes one controller decision; wire it into
// ControllerConfig.OnDecision (compose with other observers as needed).
func (l *LagMeter) OnDecision(d Decision) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.marked || !d.At.After(l.markedAt) {
		l.pre = append(l.pre, lagDecision{at: d.At, level: d.Level})
		if len(l.pre) > lagKeep {
			l.pre = l.pre[len(l.pre)-lagKeep:]
		}
		return
	}
	l.post = append(l.post, lagDecision{at: d.At, level: d.Level})
	if len(l.post) > lagKeep {
		l.post = l.post[len(l.post)-lagKeep:]
	}
}

// OnGroupDecision adapts OnDecision to the per-group callback shape for a
// single group of interest.
func (l *LagMeter) OnGroupDecision(group int) func(g int, d Decision) {
	return func(g int, d Decision) {
		if g == group {
			l.OnDecision(d)
		}
	}
}

// window returns the effective mode window.
func (l *LagMeter) window() int {
	if l.Window <= 0 {
		return 8
	}
	return l.Window
}

// modal returns the most frequent level of the trailing window (ties break
// toward the stronger level — if the stream splits evenly the controller is
// effectively paying for the stronger one). Shorter histories use what they
// have; an empty one reports the default ONE.
func modal(post []lagDecision, w int) wire.ConsistencyLevel {
	if w > len(post) {
		w = len(post)
	}
	if w == 0 {
		return wire.One
	}
	var counts [8]int
	for _, d := range post[len(post)-w:] {
		counts[int(d.level)%len(counts)]++
	}
	best, bestN := wire.One, -1
	for lvl := int(wire.One); lvl <= int(wire.All); lvl++ {
		if counts[lvl] >= bestN && counts[lvl] > 0 {
			best, bestN = wire.ConsistencyLevel(lvl), counts[lvl]
		}
	}
	return best
}

// Lag returns the measured re-adaptation lag: time from the marked regime
// change to the first decision at the level the stream now operates at. ok
// is false before MarkRegimeChange or until a full mode window of decisions
// has accumulated after it.
func (l *LagMeter) Lag() (lag time.Duration, ok bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	w := l.window()
	if !l.marked || len(l.post) < w {
		return 0, false
	}
	final := modal(l.post, w)
	if final == modal(l.pre, w) {
		// The regime change did not move the operating level (or the
		// controller was already there): no lag to speak of.
		return 0, true
	}
	for _, d := range l.post {
		if d.level == final {
			lag = d.at.Sub(l.markedAt)
			if lag < 0 {
				lag = 0
			}
			return lag, true
		}
	}
	return 0, false // unreachable: the mode is drawn from post
}

// PreLevel returns the old regime's operating level: the modal level of the
// trailing window of decisions before the regime change was marked.
func (l *LagMeter) PreLevel() wire.ConsistencyLevel {
	l.mu.Lock()
	defer l.mu.Unlock()
	return modal(l.pre, l.window())
}

// StableLevel returns the new regime's operating level (meaningful when Lag
// reported ok).
func (l *LagMeter) StableLevel() wire.ConsistencyLevel {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.post) == 0 {
		return modal(l.pre, l.window())
	}
	return modal(l.post, l.window())
}

package stats

import (
	"math"
	"sync"
	"time"
)

// Counter is a monotonically increasing event counter. It is safe for
// concurrent use.
type Counter struct {
	mu sync.Mutex
	v  uint64
}

// Inc adds one to the counter.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n to the counter.
func (c *Counter) Add(n uint64) {
	c.mu.Lock()
	c.v += n
	c.mu.Unlock()
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.v
}

// RateFromDelta converts a counter delta over a wall/virtual-time window into
// an events-per-second rate. Harmony's monitor subtracts the time spent
// collecting metrics from the window, exactly as the paper's monitoring
// module does, so the window passed here should already exclude it. A
// non-positive window yields zero.
func RateFromDelta(delta uint64, window time.Duration) float64 {
	if window <= 0 {
		return 0
	}
	return float64(delta) / window.Seconds()
}

// EWMA is an exponentially weighted moving average over irregular samples.
// The zero value with a positive HalfLife set via New is required; use
// NewEWMA. EWMA is not concurrency-safe.
type EWMA struct {
	halfLife time.Duration
	value    float64
	last     time.Time
	set      bool
}

// NewEWMA returns an EWMA whose weight decays by half every halfLife.
func NewEWMA(halfLife time.Duration) *EWMA {
	if halfLife <= 0 {
		panic("stats: non-positive EWMA half-life")
	}
	return &EWMA{halfLife: halfLife}
}

// Observe folds a sample taken at time t into the average.
func (e *EWMA) Observe(t time.Time, v float64) {
	if !e.set {
		e.value = v
		e.last = t
		e.set = true
		return
	}
	dt := t.Sub(e.last)
	if dt < 0 {
		dt = 0
	}
	alpha := 1 - math.Exp(-float64(dt)/float64(e.halfLife)*math.Ln2)
	e.value += alpha * (v - e.value)
	e.last = t
}

// Value returns the current average (0 before any observation).
func (e *EWMA) Value() float64 { return e.value }

// Set reports whether at least one sample has been observed.
func (e *EWMA) Set() bool { return e.set }

// Welford accumulates streaming mean and variance.
type Welford struct {
	n    uint64
	mean float64
	m2   float64
}

// Add folds one observation into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// Count returns the number of observations.
func (w *Welford) Count() uint64 { return w.n }

// Mean returns the running mean (0 when empty).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the sample variance (0 for n < 2).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the sample standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// WindowRate tracks events over a sliding window of fixed-size slots and
// reports the average event rate across the window. It powers throughput
// timelines in the bench harness. Not concurrency-safe.
type WindowRate struct {
	slot   time.Duration
	counts []uint64
	head   int // index of current slot
	start  time.Time
	cur    time.Time
	inited bool
}

// NewWindowRate creates a sliding window of n slots of width slot each.
func NewWindowRate(slot time.Duration, n int) *WindowRate {
	if slot <= 0 || n <= 0 {
		panic("stats: invalid window-rate configuration")
	}
	return &WindowRate{slot: slot, counts: make([]uint64, n)}
}

// Observe records one event at time t. Time must be non-decreasing.
func (w *WindowRate) Observe(t time.Time) {
	w.advance(t)
	w.counts[w.head]++
}

func (w *WindowRate) advance(t time.Time) {
	if !w.inited {
		w.start = t
		w.cur = t
		w.inited = true
		return
	}
	for t.Sub(w.cur) >= w.slot {
		w.cur = w.cur.Add(w.slot)
		w.head = (w.head + 1) % len(w.counts)
		w.counts[w.head] = 0
	}
}

// Rate returns events/second averaged over the (filled part of the) window
// as of time t.
func (w *WindowRate) Rate(t time.Time) float64 {
	if !w.inited {
		return 0
	}
	w.advance(t)
	var total uint64
	for _, c := range w.counts {
		total += c
	}
	span := time.Duration(len(w.counts)) * w.slot
	if elapsed := w.cur.Add(w.slot).Sub(w.start); elapsed < span {
		span = elapsed
	}
	if span <= 0 {
		return 0
	}
	return float64(total) / span.Seconds()
}

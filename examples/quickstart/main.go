// Quickstart: bring up a real (goroutine-backed) 6-node replicated store in
// process and use it through client.Session — the documented entry point:
// session-guaranteed reads and writes over a driver whose consistency levels
// Harmony's monitor+controller picks at run time. The session carries a
// compact token of everything it wrote or read; a read at wire.Session is
// answered with a version covering that token (read-your-writes, monotonic
// reads), usually at single-replica cost.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"harmony/internal/client"
	"harmony/internal/cluster"
	"harmony/internal/core"
	"harmony/internal/sim"
	"harmony/internal/simnet"
	"harmony/internal/wire"
)

func main() {
	// A small LAN cluster: 2 racks x 3 nodes, 3-way replication.
	spec := cluster.DefaultSpec()
	spec.RacksPerDC = 2
	spec.NodesPerRack = 3
	spec.RF = 3
	spec.Profile = simnet.Grid5000Profile()

	c, err := cluster.BuildReal(spec, 42)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Stop()
	fmt.Printf("cluster up: %d nodes, RF=%d, strategy=%s\n",
		len(c.Nodes), spec.RF, c.Strategy.Name())

	// Harmony: tolerate at most 10% stale reads.
	ctl := core.NewController(core.ControllerConfig{
		Policy: core.Policy{Name: "Harmony-10%", ToleratedStaleRate: 0.10},
		N:      spec.RF,
	})
	rt := sim.NewRealRuntime()
	defer rt.Stop()
	mon := core.NewMonitor(core.MonitorConfig{
		ID:             "monitor",
		Nodes:          c.NodeIDs(),
		Interval:       300 * time.Millisecond,
		ReplicaSetSize: spec.RF,
		OnObservation:  ctl.Observe,
	}, rt, c.Bus)
	c.Net.Colocate("monitor", c.NodeIDs()[0])
	c.Bus.Register("monitor", rt, mon)
	mon.Start()
	defer mon.Stop()

	// A client whose consistency levels are chosen by Harmony at run time
	// (the controller is the driver's ConsistencyPolicy), wrapped in a
	// Session — the application-facing API.
	drv, err := client.New(client.Options{
		ID:           "app",
		Coordinators: c.NodeIDs(),
		Policy:       ctl, // adaptive consistency
	}, rt, c.Bus)
	if err != nil {
		log.Fatal(err)
	}
	c.Bus.Register("app", rt, drv)
	sess := client.NewSession(drv)

	// Basic usage: write then read back through the session.
	do(rt, func(done func()) {
		sess.Write([]byte("greeting"), []byte("hello, adaptive world"), func(r client.WriteResult) {
			if r.Err != nil {
				log.Fatalf("write: %v", r.Err)
			}
			fmt.Printf("wrote greeting at ts=%d\n", r.Ts)
			done()
		})
	})
	do(rt, func(done func()) {
		sess.Read([]byte("greeting"), func(r client.ReadResult) {
			if r.Err != nil {
				log.Fatalf("read: %v", r.Err)
			}
			fmt.Printf("read %q (level %s chosen by Harmony)\n", r.Value, r.Achieved)
			done()
		})
	})

	// SESSION-tier read: the coordinator must answer with a version covering
	// the session's token, so this read observes the write above even if the
	// first replica asked hasn't — read-your-writes at near-ONE cost.
	do(rt, func(done func()) {
		sess.ReadAt([]byte("greeting"), wire.Session, func(r client.ReadResult) {
			if r.Err != nil {
				log.Fatalf("session read: %v", r.Err)
			}
			fmt.Printf("session read %q (token-checked)\n", r.Value)
			done()
		})
	})

	// Drive a burst of updates and reads so the monitor sees real rates,
	// then show the decision Harmony reached.
	fmt.Println("running a 2s update-heavy burst...")
	stop := make(chan struct{})
	go burst(rt, drv, stop)
	time.Sleep(2 * time.Second)
	close(stop)

	d := ctl.Last()
	fmt.Printf("harmony decision: estimate=%.3f -> read level %s (Xn=%d)\n",
		d.Estimate, d.Level, d.Xn)
	fmt.Printf("model inputs: %s\n", d.Model)

	// Explicit levels remain available for critical operations.
	do(rt, func(done func()) {
		sess.ReadAt([]byte("greeting"), wire.All, func(r client.ReadResult) {
			fmt.Printf("strong read: %q (level %s)\n", r.Value, r.Achieved)
			done()
		})
	})
	if n := sess.Regressions(); n != 0 {
		log.Fatalf("session observed %d regressions", n)
	}
	fmt.Println("session observed no regressions")
}

func burst(rt *sim.RealRuntime, drv *client.Driver, stop <-chan struct{}) {
	i := 0
	for {
		select {
		case <-stop:
			return
		default:
		}
		i++
		key := []byte(fmt.Sprintf("item%d", i%8))
		done := make(chan struct{})
		rt.Post(func() {
			drv.Write(key, []byte(fmt.Sprintf("v%d", i)), func(client.WriteResult) {
				drv.Read(key, func(client.ReadResult) { close(done) })
			})
		})
		<-done
	}
}

func do(rt *sim.RealRuntime, fn func(done func())) {
	done := make(chan struct{})
	rt.Post(func() { fn(func() { close(done) }) })
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		log.Fatal("operation timed out")
	}
}

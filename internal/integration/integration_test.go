// Package integration exercises the full production assembly — storage
// nodes with gossip, hinted handoff and commit logs, connected over real
// TCP, driven by the client library and monitored by Harmony — the same
// wiring cmd/harmony-server uses, in process.
package integration

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"harmony/internal/client"
	"harmony/internal/cluster"
	"harmony/internal/core"
	"harmony/internal/gossip"
	"harmony/internal/ring"
	"harmony/internal/sim"
	"harmony/internal/storage"
	"harmony/internal/transport"
	"harmony/internal/wire"
)

// lateHandler mirrors cmd/harmony-server's late binding.
type lateHandler struct {
	mu sync.RWMutex
	h  transport.Handler
}

func (l *lateHandler) bind(h transport.Handler) {
	l.mu.Lock()
	l.h = h
	l.mu.Unlock()
}

func (l *lateHandler) Deliver(from ring.NodeID, m wire.Message) {
	l.mu.RLock()
	h := l.h
	l.mu.RUnlock()
	if h != nil {
		h.Deliver(from, m)
	}
}

// tcpNode is one fully-assembled server.
type tcpNode struct {
	id   ring.NodeID
	rt   *sim.RealRuntime
	tcp  *transport.TCPNode
	node *cluster.Node
	g    *gossip.Gossiper
	clog *storage.FileCommitLog
}

func (n *tcpNode) stop() {
	n.g.Stop()
	n.node.Stop()
	_ = n.tcp.Close()
	if n.clog != nil {
		_ = n.clog.Close()
	}
	n.rt.Stop()
}

// tcpCluster assembles size nodes over loopback TCP with RF=3.
func tcpCluster(t *testing.T, size int, commitDir string) ([]*tcpNode, []ring.NodeID, map[ring.NodeID]string) {
	t.Helper()
	var infos []ring.NodeInfo
	var ids []ring.NodeID
	for i := 0; i < size; i++ {
		id := ring.NodeID(fmt.Sprintf("n%d", i+1))
		ids = append(ids, id)
		infos = append(infos, ring.NodeInfo{ID: id, DC: "dc1", Rack: fmt.Sprintf("r%d", i%2+1)})
	}
	topo, err := ring.NewTopology(infos)
	if err != nil {
		t.Fatal(err)
	}
	rng, err := ring.Build(topo, 8)
	if err != nil {
		t.Fatal(err)
	}

	// First pass: bind listeners on ephemeral ports.
	var nodes []*tcpNode
	addrs := map[ring.NodeID]string{}
	for _, id := range ids {
		rt := sim.NewRealRuntime()
		late := &lateHandler{}
		tcp, err := transport.NewTCPNode(transport.TCPConfig{
			ID:     id,
			Listen: "127.0.0.1:0",
			Logf:   func(string, ...any) {}, // quiet expected drops
		}, rt, late)
		if err != nil {
			t.Fatal(err)
		}
		addrs[id] = tcp.Addr().String()
		nodes = append(nodes, &tcpNode{id: id, rt: rt, tcp: tcp})
	}
	// Second pass: address books (including self — a coordinator is also a
	// replica of its own keys and sends itself mutations), gossip, storage.
	for _, n := range nodes {
		for id, addr := range addrs {
			n.tcp.AddPeer(id, addr)
		}
		var engine storage.Options
		if commitDir != "" {
			clog, err := storage.OpenFileCommitLog(filepath.Join(commitDir, string(n.id)+".log"))
			if err != nil {
				t.Fatal(err)
			}
			n.clog = clog
			engine.CommitLog = clog
		}
		n.g = gossip.New(gossip.Config{
			ID:       n.id,
			Peers:    ids,
			Interval: 200 * time.Millisecond,
			Seed:     int64(len(n.id)),
		}, n.rt, n.tcp)
		n.node = cluster.New(cluster.Config{
			ID:               n.id,
			Ring:             rng,
			Strategy:         ring.NetworkTopologyStrategy{RF: 3},
			ReadRepairChance: 1.0,
			HintedHandoff:    true,
			Engine:           engine,
			Alive:            n.g.Alive,
		}, n.rt, n.tcp)
		late := &lateHandler{}
		late.bind(gossip.Mux{Gossip: n.g, Rest: n.node})
		n.tcp.SetHandler(late)
		n.node.Start()
		n.g.Start()
	}
	return nodes, ids, addrs
}

// tcpClient builds a driver speaking to the cluster over TCP.
func tcpClient(t *testing.T, name string, coords []ring.NodeID, addrs map[ring.NodeID]string, opts client.Options) (*client.Driver, *sim.RealRuntime, func()) {
	t.Helper()
	rt := sim.NewRealRuntime()
	tcp, err := transport.NewTCPNode(transport.TCPConfig{
		ID:    ring.NodeID(name),
		Peers: addrs,
		Logf:  func(string, ...any) {},
	}, rt, transport.HandlerFunc(func(ring.NodeID, wire.Message) {}))
	if err != nil {
		t.Fatal(err)
	}
	opts.ID = ring.NodeID(name)
	opts.Coordinators = coords
	drv, err := client.New(opts, rt, tcp)
	if err != nil {
		t.Fatal(err)
	}
	tcp.SetHandler(drv)
	return drv, rt, func() { tcp.Close(); rt.Stop() }
}

func runOn(t *testing.T, rt *sim.RealRuntime, timeout time.Duration, fn func(done func())) {
	t.Helper()
	done := make(chan struct{})
	rt.Post(func() { fn(func() { close(done) }) })
	select {
	case <-done:
	case <-time.After(timeout):
		t.Fatal("operation timed out")
	}
}

func TestTCPClusterEndToEnd(t *testing.T) {
	nodes, ids, addrs := tcpCluster(t, 4, "")
	defer func() {
		for _, n := range nodes {
			n.stop()
		}
	}()
	drv, rt, closeClient := tcpClient(t, "it-client", ids, addrs, client.Options{Policy: client.Fixed{Write: wire.Quorum}, Timeout: 5 * time.Second})
	defer closeClient()

	// Write then read back at QUORUM across distinct coordinators.
	for i := 0; i < 8; i++ {
		key := fmt.Sprintf("it-key-%d", i)
		val := fmt.Sprintf("it-val-%d", i)
		runOn(t, rt, 5*time.Second, func(done func()) {
			drv.Write([]byte(key), []byte(val), func(r client.WriteResult) {
				if r.Err != nil {
					t.Errorf("write %s: %v", key, r.Err)
				}
				done()
			})
		})
	}
	for i := 0; i < 8; i++ {
		key := fmt.Sprintf("it-key-%d", i)
		want := fmt.Sprintf("it-val-%d", i)
		runOn(t, rt, 5*time.Second, func(done func()) {
			drv.ReadAt([]byte(key), wire.Quorum, func(r client.ReadResult) {
				if r.Err != nil || string(r.Value) != want {
					t.Errorf("read %s = %q err=%v, want %q", key, r.Value, r.Err, want)
				}
				done()
			})
		})
	}
}

func TestTCPClusterCommitLogRecovery(t *testing.T) {
	dir := t.TempDir()
	nodes, ids, addrs := tcpCluster(t, 3, dir)
	drv, rt, closeClient := tcpClient(t, "rec-client", ids, addrs, client.Options{Policy: client.Fixed{Write: wire.All}, Timeout: 5 * time.Second})

	runOn(t, rt, 5*time.Second, func(done func()) {
		drv.Write([]byte("durable"), []byte("survives-restart"), func(r client.WriteResult) {
			if r.Err != nil {
				t.Errorf("write: %v", r.Err)
			}
			done()
		})
	})
	closeClient()
	for _, n := range nodes {
		n.stop() // closes commit logs
	}

	// Replay each node's log into a fresh engine and verify the value.
	recovered := 0
	for _, id := range ids {
		e := storage.NewEngine(storage.Options{})
		if err := storage.Replay(filepath.Join(dir, string(id)+".log"), func(key []byte, v wire.Value) error {
			_, err := e.Apply(key, v)
			return err
		}); err != nil {
			t.Fatalf("replay %s: %v", id, err)
		}
		if v, ok := e.Get([]byte("durable")); ok && string(v.Data) == "survives-restart" {
			recovered++
		}
	}
	if recovered != 3 {
		t.Fatalf("value recovered on %d/3 nodes", recovered)
	}
}

func TestTCPClusterMonitorObservesLoad(t *testing.T) {
	nodes, ids, addrs := tcpCluster(t, 3, "")
	defer func() {
		for _, n := range nodes {
			n.stop()
		}
	}()
	drv, rt, closeClient := tcpClient(t, "load-client", ids, addrs, client.Options{Policy: client.Fixed{Write: wire.One}, Timeout: 5 * time.Second})
	defer closeClient()

	// A separate monitoring endpoint, as harmony-client's monitor mode.
	var mu sync.Mutex
	var obs []core.Observation
	monRT := sim.NewRealRuntime()
	defer monRT.Stop()
	monTCP, err := transport.NewTCPNode(transport.TCPConfig{
		ID:    "it-monitor",
		Peers: addrs,
		Logf:  func(string, ...any) {},
	}, monRT, transport.HandlerFunc(func(ring.NodeID, wire.Message) {}))
	if err != nil {
		t.Fatal(err)
	}
	defer monTCP.Close()
	mon := core.NewMonitor(core.MonitorConfig{
		ID:             "it-monitor",
		Nodes:          ids,
		Interval:       300 * time.Millisecond,
		ReplicaSetSize: 3,
		OnObservation: func(o core.Observation) {
			mu.Lock()
			obs = append(obs, o)
			mu.Unlock()
		},
	}, monRT, monTCP)
	monTCP.SetHandler(mon)
	mon.Start()
	defer mon.Stop()

	// Offer steady load for ~1.5s wall time.
	deadline := time.Now().Add(1500 * time.Millisecond)
	i := 0
	for time.Now().Before(deadline) {
		i++
		key := fmt.Sprintf("mk-%d", i%10)
		runOn(t, rt, 5*time.Second, func(done func()) {
			drv.Write([]byte(key), []byte("v"), func(client.WriteResult) {
				drv.Read([]byte(key), func(client.ReadResult) { done() })
			})
		})
	}
	time.Sleep(700 * time.Millisecond) // allow a final monitor round
	mu.Lock()
	defer mu.Unlock()
	if len(obs) == 0 {
		t.Fatal("monitor produced no observations over TCP")
	}
	sawRates := false
	for _, o := range obs {
		if o.ReadRate > 0 && o.WriteInterval > 0 && o.Latency > 0 {
			sawRates = true
		}
	}
	if !sawRates {
		t.Fatalf("no observation carried rates and latency: %+v", obs)
	}
}

func TestTCPGossipConvictsKilledNode(t *testing.T) {
	nodes, ids, _ := tcpCluster(t, 4, "")
	defer func() {
		for _, n := range nodes {
			if n.tcp != nil {
				n.stop()
			}
		}
	}()
	// Warm up gossip.
	time.Sleep(1200 * time.Millisecond)
	for _, id := range ids {
		if !nodes[0].g.Alive(id) {
			t.Fatalf("healthy peer %s convicted prematurely", id)
		}
	}
	// Kill n4 outright.
	victim := nodes[3]
	victim.stop()
	victim.tcp = nil

	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if !nodes[0].g.Alive("n4") {
			return // convicted
		}
		time.Sleep(200 * time.Millisecond)
	}
	t.Fatalf("n4 never convicted (phi=%v)", nodes[0].g.Phi("n4"))
}

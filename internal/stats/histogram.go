// Package stats provides the measurement primitives used throughout the
// repository: a log-bucketed latency histogram with percentile queries (the
// paper reports 99th-percentile read latency), windowed and exponentially
// weighted rate meters (Harmony's monitor derives read/write arrival rates
// from counter deltas over a monitoring window), simple counters, and online
// mean/variance accumulators.
package stats

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Histogram records durations into logarithmically spaced buckets, giving
// bounded relative error for percentile queries across many decades of
// latency. The zero value is ready to use. Histogram is not safe for
// concurrent use; wrap with a lock if shared.
type Histogram struct {
	counts [bucketCount]uint64
	total  uint64
	sum    time.Duration
	min    time.Duration
	max    time.Duration
}

const (
	// Buckets follow the classic HDR-style octave/sub-bucket scheme:
	// 36 octaves * 16 sub-buckets per octave covers 1ns..~68s (2^36 ns)
	// with <= 6.25% (1/16) relative error per bucket. Durations beyond the
	// top octave clamp into the last bucket.
	subBucketBits = 4
	subBuckets    = 1 << subBucketBits
	octaves       = 36
	bucketCount   = octaves * subBuckets
)

func bucketIndex(d time.Duration) int {
	if d < 1 {
		d = 1
	}
	v := uint64(d)
	// Octave = position of highest set bit.
	oct := 63 - leadingZeros64(v)
	var sub uint64
	if oct >= subBucketBits {
		sub = (v >> (uint(oct) - subBucketBits)) & (subBuckets - 1)
	} else {
		sub = (v << (subBucketBits - uint(oct))) & (subBuckets - 1)
	}
	idx := oct*subBuckets + int(sub)
	if idx >= bucketCount {
		idx = bucketCount - 1
	}
	return idx
}

func bucketLower(idx int) time.Duration {
	oct := idx / subBuckets
	sub := idx % subBuckets
	if oct < subBucketBits {
		return time.Duration(1 << uint(oct))
	}
	base := uint64(1) << uint(oct)
	step := base >> subBucketBits
	return time.Duration(base + uint64(sub)*step)
}

func leadingZeros64(v uint64) int {
	n := 0
	if v == 0 {
		return 64
	}
	for v&(1<<63) == 0 {
		v <<= 1
		n++
	}
	return n
}

// Record adds one observation.
func (h *Histogram) Record(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.counts[bucketIndex(d)]++
	h.total++
	h.sum += d
	if h.total == 1 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() uint64 { return h.total }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() time.Duration { return h.sum }

// Mean returns the mean observation, or 0 if empty.
func (h *Histogram) Mean() time.Duration {
	if h.total == 0 {
		return 0
	}
	return h.sum / time.Duration(h.total)
}

// Min returns the smallest recorded value, or 0 if empty.
func (h *Histogram) Min() time.Duration { return h.min }

// Max returns the largest recorded value, or 0 if empty.
func (h *Histogram) Max() time.Duration { return h.max }

// Quantile returns an estimate of the q-quantile (q in [0,1]) with bounded
// relative error. Returns 0 when empty.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(math.Ceil(q * float64(h.total)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= target {
			lo := bucketLower(i)
			hi := bucketLower(i + 1)
			if hi < lo {
				hi = lo
			}
			// Midpoint of the bucket is the conventional estimate.
			est := lo + (hi-lo)/2
			if est > h.max {
				est = h.max
			}
			if est < h.min {
				est = h.min
			}
			return est
		}
	}
	return h.max
}

// P99 is shorthand for Quantile(0.99), the statistic the paper plots.
func (h *Histogram) P99() time.Duration { return h.Quantile(0.99) }

// P95 is shorthand for Quantile(0.95).
func (h *Histogram) P95() time.Duration { return h.Quantile(0.95) }

// Median is shorthand for Quantile(0.5).
func (h *Histogram) Median() time.Duration { return h.Quantile(0.5) }

// Merge adds all observations recorded in other into h.
func (h *Histogram) Merge(other *Histogram) {
	if other.total == 0 {
		return
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	if h.total == 0 || other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
	h.total += other.total
	h.sum += other.sum
}

// Reset clears all recorded observations.
func (h *Histogram) Reset() { *h = Histogram{} }

// String summarizes the distribution.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v p99=%v max=%v",
		h.total, h.Mean(), h.Median(), h.P95(), h.P99(), h.Max())
}

// ExactPercentile computes the exact percentile of a slice of durations; it
// is used by tests to validate Histogram accuracy and by small-sample report
// paths where exactness matters more than memory.
func ExactPercentile(samples []time.Duration, q float64) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	s := make([]time.Duration, len(samples))
	copy(s, samples)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(math.Ceil(q*float64(len(s)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

package core

import (
	"testing"
	"time"

	"harmony/internal/ring"
	"harmony/internal/sim"
	"harmony/internal/wire"
)

var (
	contendedRates = GroupRates{ReadRate: 300, WriteInterval: 0.005}
	quietRates     = GroupRates{ReadRate: 1, WriteInterval: 10}
)

func contendedObs(at time.Time, groups []GroupRates, epoch uint64) Observation {
	return Observation{
		At:            at,
		ReadRate:      300,
		WriteInterval: 0.005,
		Latency:       time.Millisecond,
		Epoch:         epoch,
		Groups:        groups,
	}
}

func TestControllerRegroupMigratesModels(t *testing.T) {
	ctl := NewController(ControllerConfig{
		Policy:          Policy{ToleratedStaleRate: 0.02},
		N:               5,
		Groups:          2,
		GroupFn:         func(key []byte) int { return int(key[0] - '0') },
		GroupTolerances: []float64{0.02, 0.9},
	})
	ctl.Observe(contendedObs(time.Unix(1, 0), []GroupRates{contendedRates, quietRates}, 0))
	hotLevel := ctl.ReadLevelFor([]byte("0"))
	if hotLevel == wire.One {
		t.Fatal("contended group did not escalate")
	}
	if got := ctl.ReadLevelFor([]byte("1")); got != wire.One {
		t.Fatalf("quiet group at %v, want ONE", got)
	}

	// Regroup into three groups: new 0 inherits old 0 (stays escalated),
	// new 1 is fresh (inherits the global stream), new 2 inherits old 1.
	ctl.Regroup(1,
		func(key []byte) int { return int(key[0] - 'a') },
		[]float64{0.02, 0.4, 0.9},
		[]int{0, -1, 1})
	if got := ctl.Groups(); got != 3 {
		t.Fatalf("groups = %d, want 3", got)
	}
	if got := ctl.Epoch(); got != 1 {
		t.Fatalf("epoch = %d, want 1", got)
	}
	if got := ctl.ReadLevelFor([]byte("a")); got != hotLevel {
		t.Fatalf("migrated hot group at %v, want inherited %v", got, hotLevel)
	}
	if got := ctl.ReadLevelFor([]byte("c")); got != wire.One {
		t.Fatalf("migrated quiet group at %v, want ONE", got)
	}
	if got, want := ctl.ReadLevelFor([]byte("b")), ctl.ReadLevel(); got != want {
		t.Fatalf("fresh group at %v, want the global stream's %v", got, want)
	}
	// The migrated group keeps its parent's decision history.
	if hist := ctl.GroupHistory(0); len(hist) != 1 {
		t.Fatalf("migrated history length = %d, want 1", len(hist))
	}
	if hist := ctl.GroupHistory(1); len(hist) != 0 {
		t.Fatalf("fresh group history length = %d, want 0", len(hist))
	}
}

func TestControllerRegroupAppliesExactlyOncePerEpoch(t *testing.T) {
	ctl := NewController(ControllerConfig{Policy: Policy{ToleratedStaleRate: 0.2}, N: 3, Groups: 1})
	fnA := func([]byte) int { return 0 }
	ctl.Regroup(1, fnA, []float64{0.1, 0.5}, []int{0, 0})
	if got := ctl.Groups(); got != 2 {
		t.Fatalf("groups = %d after first apply", got)
	}
	// Duplicate and stale epochs are ignored.
	ctl.Regroup(1, fnA, []float64{0.3}, []int{0})
	ctl.Regroup(0, fnA, []float64{0.3}, []int{0})
	if got := ctl.Groups(); got != 2 {
		t.Fatalf("groups = %d, duplicate/stale epoch re-applied", got)
	}
	if got := ctl.Epoch(); got != 1 {
		t.Fatalf("epoch = %d, want 1", got)
	}
	// Degenerate regroups are rejected outright.
	ctl.Regroup(2, fnA, nil, nil)
	if got := ctl.Groups(); got != 2 {
		t.Fatalf("empty tolerance table accepted: groups = %d", got)
	}
}

func TestControllerObserveRequiresEpochAlignment(t *testing.T) {
	ctl := NewController(ControllerConfig{
		Policy:          Policy{ToleratedStaleRate: 0.02},
		N:               5,
		Groups:          2,
		GroupTolerances: []float64{0.02, 0.9},
	})
	ctl.Regroup(1, nil, []float64{0.02, 0.9}, []int{0, 1})

	// Same group count but a stale epoch: per-group rates must be ignored
	// in favor of the cluster-wide rates.
	ctl.Observe(contendedObs(time.Unix(1, 0), []GroupRates{quietRates, quietRates}, 0))
	if got := ctl.GroupLast(0).Model.LambdaR; got != 300 {
		t.Fatalf("stale-epoch group rates applied: λr = %v, want global 300", got)
	}
	// Matching epoch: the group's own rates rule.
	ctl.Observe(contendedObs(time.Unix(2, 0), []GroupRates{quietRates, quietRates}, 1))
	if got := ctl.GroupLast(0).Model.LambdaR; got != quietRates.ReadRate {
		t.Fatalf("aligned group rates not applied: λr = %v, want %v", got, quietRates.ReadRate)
	}
}

func TestControllerPerGroupAvgWriteBytesTp(t *testing.T) {
	const bw = 1 << 20 // 1 MiB/s so payload size dominates Tp
	ctl := NewController(ControllerConfig{
		Policy:               Policy{ToleratedStaleRate: 0.2},
		N:                    5,
		Groups:               2,
		BandwidthBytesPerSec: bw,
	})
	obs := contendedObs(time.Unix(1, 0), []GroupRates{
		{ReadRate: 300, WriteInterval: 0.005, AvgWriteBytes: 1024},
		{ReadRate: 300, WriteInterval: 0.005, AvgWriteBytes: 128 * 1024},
	}, 0)
	ctl.Observe(obs)
	tp0 := ctl.GroupLast(0).Model.Tp
	tp1 := ctl.GroupLast(1).Model.Tp
	if tp1 <= tp0 {
		t.Fatalf("large-payload group Tp %v not above small-payload group Tp %v", tp1, tp0)
	}
	if want := PropagationTime(obs.Latency, 128*1024, bw); tp1 != want {
		t.Fatalf("group 1 Tp = %v, want %v", tp1, want)
	}
	// A configured AvgWriteBytes pins every group to the same avgw.
	pinned := NewController(ControllerConfig{
		Policy:               Policy{ToleratedStaleRate: 0.2},
		N:                    5,
		Groups:               2,
		AvgWriteBytes:        2048,
		BandwidthBytesPerSec: bw,
	})
	pinned.Observe(obs)
	if a, b := pinned.GroupLast(0).Model.Tp, pinned.GroupLast(1).Model.Tp; a != b {
		t.Fatalf("configured avgw not pinned: %v vs %v", a, b)
	}
}

// TestControllerStaticSingleGroupMatchesPR2 pins the regression the
// regrouping subsystem must not introduce: a controller configured with a
// single static group and regrouping disabled (no Regroup ever applied)
// behaves identically to the classic PR 2 multi-model controller.
func TestControllerStaticSingleGroupMatchesPR2(t *testing.T) {
	mk := func(withStaticGroup bool) *Controller {
		cfg := ControllerConfig{Policy: Policy{ToleratedStaleRate: 0.2}, N: 5, Groups: 1}
		if withStaticGroup {
			cfg.GroupFn = func([]byte) int { return 0 } // a one-group static assignment
			cfg.GroupTolerances = []float64{0.2}
		}
		return NewController(cfg)
	}
	pr2, static := mk(false), mk(true)
	key := []byte("user0000000042")
	obsStream := []Observation{
		contendedObs(time.Unix(1, 0), []GroupRates{contendedRates}, 0),
		contendedObs(time.Unix(2, 0), nil, 0),
		{At: time.Unix(3, 0), ReadRate: 1, WriteInterval: 10, Latency: time.Millisecond,
			Groups: []GroupRates{quietRates}},
		contendedObs(time.Unix(4, 0), []GroupRates{contendedRates}, 0),
	}
	for i, obs := range obsStream {
		pr2.Observe(obs)
		static.Observe(obs)
		if a, b := pr2.ReadLevel(), static.ReadLevel(); a != b {
			t.Fatalf("obs %d: global level diverged: %v vs %v", i, a, b)
		}
		if a, b := pr2.ReadLevelFor(key), static.ReadLevelFor(key); a != b {
			t.Fatalf("obs %d: per-key level diverged: %v vs %v", i, a, b)
		}
		if a, b := pr2.Last(), static.Last(); a != b {
			t.Fatalf("obs %d: decisions diverged:\n%+v\n%+v", i, a, b)
		}
		if a, b := pr2.GroupLast(0), static.GroupLast(0); a != b {
			t.Fatalf("obs %d: group decisions diverged:\n%+v\n%+v", i, a, b)
		}
	}
}

// fakeFleet answers the monitor's stats and ping probes synchronously with
// scripted per-node responses, so epoch-transition behavior can be driven
// without a full cluster.
type fakeFleet struct {
	mon   *Monitor
	nodes map[ring.NodeID]*wire.StatsResponse
}

func (f *fakeFleet) Send(from, to ring.NodeID, m wire.Message) {
	switch msg := m.(type) {
	case wire.StatsRequest:
		if s, ok := f.nodes[to]; ok {
			resp := *s
			resp.ID = msg.ID
			resp.Groups = append([]wire.GroupCounters(nil), s.Groups...)
			f.mon.Deliver(to, resp)
		}
	case wire.Ping:
		if _, ok := f.nodes[to]; ok {
			f.mon.Deliver(to, wire.Pong{ID: msg.ID, Sent: msg.Sent})
		}
	}
}

func TestMonitorDiscardsCrossEpochGroupSamples(t *testing.T) {
	s := sim.New(5)
	fleet := &fakeFleet{nodes: map[ring.NodeID]*wire.StatsResponse{
		"n1": {Groups: []wire.GroupCounters{{}, {}}},
		"n2": {Groups: []wire.GroupCounters{{}, {}}},
	}}
	var got []Observation
	mon := NewMonitor(MonitorConfig{
		ID:            "mon",
		Nodes:         []ring.NodeID{"n1", "n2"},
		Interval:      time.Second,
		OnObservation: func(o Observation) { got = append(got, o) },
	}, s, fleet)
	fleet.mon = mon

	step := func(advance func()) {
		advance()
		mon.beginRound()
		s.RunFor(time.Second)
	}
	bump := func(epoch uint64, reads, writes, bytes uint64) func() {
		return func() {
			for _, n := range fleet.nodes {
				n.Epoch = epoch
				if epoch != 0 && n.Epoch != epoch {
					n.Groups = []wire.GroupCounters{{}, {}}
				}
				for g := range n.Groups {
					n.Groups[g].Reads += reads
					n.Groups[g].Writes += writes
					n.Groups[g].BytesWritten += bytes
				}
				n.Reads += 2 * reads
				n.Writes += 2 * writes
				n.BytesWrit += 2 * bytes
			}
		}
	}
	reset := func(epoch uint64) func() {
		return func() {
			for _, n := range fleet.nodes {
				n.Epoch = epoch
				n.Groups = []wire.GroupCounters{{}, {}} // node re-baselined
			}
		}
	}

	step(func() {})               // round 1: baseline only
	step(bump(0, 100, 10, 10240)) // round 2: first real deltas
	if len(got) != 1 || len(got[0].Groups) != 2 || got[0].Epoch != 0 {
		t.Fatalf("round 2 observation = %+v, want 2 groups at epoch 0", got)
	}
	if got[0].Groups[0].AvgWriteBytes != 1024 {
		t.Fatalf("group avg write bytes = %v, want 1024", got[0].Groups[0].AvgWriteBytes)
	}

	step(reset(1)) // round 3: epoch moved, counters re-baselined
	if len(got) != 2 || len(got[1].Groups) != 0 {
		t.Fatalf("epoch-transition round reported group rates: %+v", got[len(got)-1])
	}

	step(bump(1, 50, 5, 5120)) // round 4: clean within-epoch deltas again
	if len(got) != 3 || len(got[2].Groups) != 2 || got[2].Epoch != 1 {
		t.Fatalf("post-transition observation = %+v, want 2 groups at epoch 1", got[len(got)-1])
	}

	// A mid-rollout round where the nodes disagree on the epoch must also
	// be discarded, and the next agreed round only rebuilds the baseline.
	step(func() {
		fleet.nodes["n1"].Epoch = 2
		fleet.nodes["n1"].Groups = []wire.GroupCounters{{}, {}}
	})
	if len(got) != 4 || len(got[3].Groups) != 0 {
		t.Fatalf("mixed-epoch round reported group rates: %+v", got[len(got)-1])
	}
	step(func() {
		fleet.nodes["n2"].Epoch = 2
		fleet.nodes["n2"].Groups = []wire.GroupCounters{{}, {}}
	})
	if len(got) != 5 || len(got[4].Groups) != 0 {
		t.Fatalf("baseline-rebuild round reported group rates: %+v", got[len(got)-1])
	}
	step(bump(2, 30, 3, 3072))
	if len(got) != 6 || len(got[5].Groups) != 2 || got[5].Epoch != 2 {
		t.Fatalf("agreed epoch-2 round = %+v, want 2 groups at epoch 2", got[len(got)-1])
	}
}

func TestMonitorOnNodeStatsHook(t *testing.T) {
	s := sim.New(6)
	fleet := &fakeFleet{nodes: map[ring.NodeID]*wire.StatsResponse{
		"n1": {Epoch: 3, KeySamples: []wire.KeySample{{Key: []byte("hot"), Reads: 5, Writes: 2}}},
	}}
	var nodes []ring.NodeID
	var samples int
	mon := NewMonitor(MonitorConfig{
		ID:       "mon",
		Nodes:    []ring.NodeID{"n1"},
		Interval: time.Second,
		OnNodeStats: func(n ring.NodeID, resp wire.StatsResponse) {
			nodes = append(nodes, n)
			samples += len(resp.KeySamples)
			if resp.Epoch != 3 {
				t.Errorf("hook epoch = %d, want 3", resp.Epoch)
			}
		},
	}, s, fleet)
	fleet.mon = mon
	mon.beginRound()
	s.RunFor(time.Second)
	if len(nodes) != 1 || nodes[0] != "n1" || samples != 1 {
		t.Fatalf("hook saw nodes=%v samples=%d", nodes, samples)
	}
}

func TestLagMeter(t *testing.T) {
	meter := &LagMeter{Window: 4}
	at := func(sec int64) time.Time { return time.Unix(sec, 0) }
	dec := func(sec int64, lvl wire.ConsistencyLevel) Decision {
		return Decision{At: at(sec), Level: lvl}
	}
	// Pre-change steady state at ONE.
	meter.OnDecision(dec(1, wire.One))
	meter.OnDecision(dec(2, wire.One))
	if _, ok := meter.Lag(); ok {
		t.Fatal("lag reported before any regime change was marked")
	}
	meter.MarkRegimeChange(at(10))
	if meter.PreLevel() != wire.One {
		t.Fatalf("pre level = %v", meter.PreLevel())
	}
	// Post-change stream dithers at the QUORUM boundary; the operating
	// mode is QUORUM and the stream first reached it at t=12.
	meter.OnDecision(dec(11, wire.One))
	meter.OnDecision(dec(12, wire.Quorum))
	meter.OnDecision(dec(13, wire.Quorum))
	if _, ok := meter.Lag(); ok {
		t.Fatal("lag reported before a full mode window accumulated")
	}
	meter.OnDecision(dec(14, wire.One)) // boundary dither
	lag, ok := meter.Lag()
	if !ok {
		t.Fatal("no lag once the mode window filled")
	}
	if lag != 2*time.Second {
		t.Fatalf("lag = %v, want 2s (change at 10, first QUORUM at 12)", lag)
	}
	// More dithering does not move the anchor.
	meter.OnDecision(dec(15, wire.Quorum))
	meter.OnDecision(dec(16, wire.Quorum))
	if lag, _ := meter.Lag(); lag != 2*time.Second {
		t.Fatalf("lag moved to %v", lag)
	}
	if meter.StableLevel() != wire.Quorum {
		t.Fatalf("stable level = %v", meter.StableLevel())
	}
	// A regime change that does not move the operating level reports zero
	// lag: the controller was already where the new regime needs it.
	meter2 := &LagMeter{Window: 2}
	meter2.OnDecision(dec(1, wire.Quorum))
	meter2.MarkRegimeChange(at(5))
	meter2.OnDecision(dec(6, wire.Quorum))
	meter2.OnDecision(dec(7, wire.Quorum))
	if lag, ok := meter2.Lag(); !ok || lag != 0 {
		t.Fatalf("already-stable lag = %v ok=%v, want 0/true", lag, ok)
	}
}

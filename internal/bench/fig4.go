package bench

import (
	"fmt"
	"time"

	"harmony/internal/cluster"
	"harmony/internal/core"
	"harmony/internal/dist"
	"harmony/internal/ring"
	"harmony/internal/sim"
	"harmony/internal/simnet"
	"harmony/internal/wire"
	"harmony/internal/ycsb"
)

// Fig4aPhases is the thread schedule of Fig. 4(a): the paper starts at 90
// threads and steps down to 70, 40, 15 and finally 1.
var Fig4aPhases = []int{90, 70, 40, 15, 1}

// DefaultFig4aPhase is the virtual time spent per thread phase when
// Options.PhaseDuration is zero.
const DefaultFig4aPhase = 6 * time.Second

// Fig4a reproduces Fig. 4(a): the estimated stale-read probability over
// running time for Workload-A (heavy read-update) and Workload-B (read
// mostly), while the number of client threads steps down through
// Fig4aPhases. Run on the Grid'5000 profile, as the paper does ("we used
// Grid'5000 as we can guarantee the network latency").
func Fig4a(opts Options) (Figure, error) {
	opts = opts.withDefaults()
	fig := Figure{
		ID:     "fig4a",
		Title:  "stale-read probability estimate over running time (thread steps 90/70/40/15/1)",
		XLabel: "time (s)",
		YLabel: "estimated probability of stale reads",
	}
	for _, wl := range []ycsb.Workload{ycsb.WorkloadA(), ycsb.WorkloadB()} {
		series, err := fig4aSeries(wl, opts)
		if err != nil {
			return Figure{}, err
		}
		fig.Series = append(fig.Series, series)
		opts.progress("fig4a %s: %d samples", wl.Name, len(series.Points))
	}
	return fig, nil
}

func fig4aSeries(wl ycsb.Workload, opts Options) (Series, error) {
	sc := Grid5000()
	s := sim.New(opts.Seed)
	c, err := cluster.BuildSim(s, sc.Spec)
	if err != nil {
		return Series{}, err
	}
	ctl := core.NewController(core.ControllerConfig{
		Policy:               core.Policy{Name: "estimator", ToleratedStaleRate: 1}, // observe only
		N:                    sc.Spec.RF,
		AvgWriteBytes:        float64(wl.ValueBytes),
		BandwidthBytesPerSec: sc.Spec.Profile.BandwidthBytesPerSec,
	})
	mon := core.NewMonitor(core.MonitorConfig{
		ID:             "harmony-monitor",
		Nodes:          c.NodeIDs(),
		Interval:       sc.MonitorInterval,
		ReplicaSetSize: sc.Spec.RF,
		OnObservation:  ctl.Observe,
	}, s, c.Bus)
	c.Net.Colocate("harmony-monitor", c.NodeIDs()[0])
	c.Bus.Register("harmony-monitor", s, mon)

	runner, err := ycsb.NewRunner(ycsb.RunConfig{
		Workload: wl,
		Threads:  Fig4aPhases[0],
		Seed:     opts.Seed,
	}, s, c)
	if err != nil {
		return Series{}, err
	}
	runner.Load()
	phase := opts.PhaseDuration
	if phase <= 0 {
		phase = DefaultFig4aPhase
	}
	start := s.Now()
	mon.Start()
	runner.Start()
	for _, threads := range Fig4aPhases {
		runner.SetActiveThreads(threads)
		s.RunFor(phase)
	}
	runner.Stop()
	mon.Stop()
	runner.Drain()

	series := Series{Name: wl.Name}
	for _, d := range ctl.History() {
		series.Points = append(series.Points, Point{
			X: d.At.Sub(start).Seconds(),
			Y: d.Estimate,
		})
	}
	return series, nil
}

// Fig4bLatencies is the x-axis of Fig. 4(b): one-way network latencies from
// sub-millisecond up to 50 ms (the variability observed on EC2).
var Fig4bLatencies = []time.Duration{
	500 * time.Microsecond, time.Millisecond, 2 * time.Millisecond,
	5 * time.Millisecond, 10 * time.Millisecond, 20 * time.Millisecond,
	30 * time.Millisecond, 40 * time.Millisecond, 50 * time.Millisecond,
}

// Fig4b reproduces Fig. 4(b): the impact of network latency on the
// stale-read estimate. Each point fixes every link to one latency (the
// controlled variable) and offers a constant Workload-A-shaped load in open
// loop — in the paper the latency varied underneath a roughly constant
// offered load (EC2's variability); a closed loop would slow the clients
// with the network and mask the effect. Expected shape: "high network
// latency causes higher stale reads regardless of the number of the
// threads", while at small latency the estimate depends on the rates.
func Fig4b(opts Options) (Figure, error) {
	opts = opts.withDefaults()
	fig := Figure{
		ID:     "fig4b",
		Title:  "stale-read probability estimate vs network latency (workload-a, open loop)",
		XLabel: "network latency (ms)",
		YLabel: "estimated probability of stale reads",
	}
	// Two offered loads demonstrate that latency dominates once large.
	for _, rate := range []float64{4000, 1000} {
		series := Series{Name: fmt.Sprintf("%.0f ops/s", rate)}
		for i, lat := range Fig4bLatencies {
			est, err := fig4bPoint(lat, rate, opts.Seed+int64(i))
			if err != nil {
				return Figure{}, err
			}
			series.Points = append(series.Points, Point{X: float64(lat) / 1e6, Y: est})
			opts.progress("fig4b latency=%v rate=%.0f estimate=%.3f", lat, rate, est)
		}
		fig.Series = append(fig.Series, series)
	}
	return fig, nil
}

// noopSink discards responses: the open-loop generator only cares about the
// arrival process it offers, not about completions.
type noopSink struct{}

func (noopSink) Deliver(ring.NodeID, wire.Message) {}

// startOpenLoad offers fixed-rate Workload-A-shaped traffic to the cluster
// regardless of response latency. Arrivals are Poisson (exponential
// inter-arrival gaps sampled from dist) rather than a metronome: the mean
// rate is identical, but requests clump and gap the way independent
// clients actually do, which is the arrival process the stale-read
// estimator sees in production.
func startOpenLoad(s *sim.Sim, c *cluster.Cluster, wl ycsb.Workload, opsPerSec float64) (stop func(), err error) {
	chooserRng := s.NewStream()
	chooser, err := wl.NewChooser()
	if err != nil {
		return nil, err
	}
	payload := make([]byte, wl.ValueBytes)
	chooserRng.Read(payload)
	coords := c.NodeIDs()
	c.Bus.Register("openload", s, noopSink{})
	var id uint64
	stops := make([]func(), 0, 2)
	startStream := func(rate float64, send func(id uint64, key []byte)) {
		if rate <= 0 {
			return
		}
		gap := dist.NewExponential(1 / rate)
		rng := s.NewStream()
		stops = append(stops, sim.Every(s,
			func() time.Duration { return dist.SampleDuration(gap, rng, time.Second) },
			func() {
				id++
				send(id, ycsb.Key(chooser.Next(chooserRng)))
			}))
	}
	startStream(opsPerSec*wl.ReadProportion, func(id uint64, key []byte) {
		c.Bus.Send("openload", coords[int(id)%len(coords)], wire.ReadRequest{ID: id, Key: key, Level: wire.One})
	})
	startStream(opsPerSec*wl.UpdateProportion, func(id uint64, key []byte) {
		c.Bus.Send("openload", coords[int(id)%len(coords)], wire.WriteRequest{ID: id, Key: key, Value: payload, Level: wire.One})
	})
	return func() {
		for _, st := range stops {
			st()
		}
	}, nil
}

func fig4bPoint(oneWay time.Duration, opsPerSec float64, seed int64) (float64, error) {
	sc := Grid5000()
	sc.Spec.Profile = simnet.UniformProfile(oneWay)
	s := sim.New(seed)
	c, err := cluster.BuildSim(s, sc.Spec)
	if err != nil {
		return 0, err
	}
	wl := ycsb.WorkloadA()
	ctl := core.NewController(core.ControllerConfig{
		Policy:               core.Policy{Name: "estimator", ToleratedStaleRate: 1},
		N:                    sc.Spec.RF,
		AvgWriteBytes:        float64(wl.ValueBytes),
		BandwidthBytesPerSec: sc.Spec.Profile.BandwidthBytesPerSec,
	})
	mon := core.NewMonitor(core.MonitorConfig{
		ID:             "harmony-monitor",
		Nodes:          c.NodeIDs(),
		Interval:       sc.MonitorInterval,
		ReplicaSetSize: sc.Spec.RF,
		OnObservation:  ctl.Observe,
	}, s, c.Bus)
	c.Net.Colocate("harmony-monitor", c.NodeIDs()[0])
	c.Bus.Register("harmony-monitor", s, mon)
	stop, err := startOpenLoad(s, c, wl, opsPerSec)
	if err != nil {
		return 0, err
	}
	mon.Start()
	s.RunFor(12 * time.Second)
	stop()
	mon.Stop()
	s.RunFor(time.Second) // drain in-flight work

	hist := ctl.History()
	if len(hist) == 0 {
		return 0, fmt.Errorf("bench: no estimator samples at latency %v", oneWay)
	}
	// Skip the first sample (warm-up) and average the rest.
	if len(hist) > 1 {
		hist = hist[1:]
	}
	sum := 0.0
	for _, d := range hist {
		sum += d.Estimate
	}
	return sum / float64(len(hist)), nil
}

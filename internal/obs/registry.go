package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"harmony/internal/stats"
)

// MetricType is the Prometheus family type of an exported series.
type MetricType uint8

const (
	Gauge MetricType = iota
	Counter
	Summary
)

func (t MetricType) String() string {
	switch t {
	case Counter:
		return "counter"
	case Summary:
		return "summary"
	default:
		return "gauge"
	}
}

// Label is one name="value" pair on a series.
type Label struct {
	Name  string
	Value string
}

// Metric is one exported series sample. Family, when non-empty, names the
// metric family the series belongs to for # TYPE purposes — summaries use
// it so name_sum/name_count attach to the quantile family.
type Metric struct {
	Name   string
	Family string
	Help   string
	Type   MetricType
	Labels []Label
	Value  float64
}

// Collector emits a subsystem's current metrics. Collectors run on every
// scrape, so one collector should snapshot its subsystem once and emit all
// derived series, rather than re-snapshotting per series.
type Collector func(emit func(Metric))

// Registry gathers collectors and renders them in the Prometheus text
// exposition format. It is safe for concurrent use; registration typically
// happens at assembly time and scraping afterward.
type Registry struct {
	mu         sync.Mutex
	collectors []Collector
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Register appends a collector.
func (r *Registry) Register(c Collector) {
	r.mu.Lock()
	r.collectors = append(r.collectors, c)
	r.mu.Unlock()
}

// Gather runs every collector and returns the samples sorted by family,
// then name, then label values — the deterministic order WriteProm (and the
// golden tests) rely on.
func (r *Registry) Gather() []Metric {
	r.mu.Lock()
	cs := append([]Collector(nil), r.collectors...)
	r.mu.Unlock()
	var out []Metric
	for _, c := range cs {
		c(func(m Metric) {
			if m.Family == "" {
				m.Family = m.Name
			}
			out = append(out, m)
		})
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Family != out[j].Family {
			return out[i].Family < out[j].Family
		}
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return labelKey(out[i].Labels) < labelKey(out[j].Labels)
	})
	return out
}

func labelKey(ls []Label) string {
	var b strings.Builder
	for _, l := range ls {
		b.WriteString(l.Name)
		b.WriteByte('=')
		b.WriteString(l.Value)
		b.WriteByte(',')
	}
	return b.String()
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// WriteProm renders the gathered metrics in the Prometheus text exposition
// format (version 0.0.4): one # HELP/# TYPE pair per family, then each
// series as name{labels} value.
func (r *Registry) WriteProm(w io.Writer) error {
	var lastFamily string
	for _, m := range r.Gather() {
		if m.Family != lastFamily {
			if m.Help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m.Family, m.Help); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.Family, m.Type); err != nil {
				return err
			}
			lastFamily = m.Family
		}
		if _, err := io.WriteString(w, m.Name); err != nil {
			return err
		}
		if len(m.Labels) > 0 {
			if _, err := io.WriteString(w, "{"); err != nil {
				return err
			}
			for i, l := range m.Labels {
				sep := ","
				if i == 0 {
					sep = ""
				}
				if _, err := fmt.Fprintf(w, `%s%s="%s"`, sep, l.Name, escapeLabel(l.Value)); err != nil {
					return err
				}
			}
			if _, err := io.WriteString(w, "}"); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, " %v\n", m.Value); err != nil {
			return err
		}
	}
	return nil
}

// summaryQuantiles are the quantile series a histogram exports.
var summaryQuantiles = []struct {
	q     float64
	label string
}{
	{0.5, "0.5"},
	{0.95, "0.95"},
	{0.99, "0.99"},
	{1.0, "1"},
}

// EmitHistogram emits one stats.Histogram as a Prometheus summary family:
// quantile series in seconds, plus _sum and _count. labels are the base
// labels every series carries (quantile is appended to them).
func EmitHistogram(emit func(Metric), family, help string, labels []Label, h *stats.Histogram) {
	if h.Count() == 0 {
		return
	}
	for _, sq := range summaryQuantiles {
		ql := make([]Label, 0, len(labels)+1)
		ql = append(ql, labels...)
		ql = append(ql, Label{Name: "quantile", Value: sq.label})
		emit(Metric{
			Name: family, Family: family, Help: help, Type: Summary,
			Labels: ql, Value: h.Quantile(sq.q).Seconds(),
		})
	}
	emit(Metric{
		Name: family + "_sum", Family: family, Type: Summary,
		Labels: labels, Value: h.Sum().Seconds(),
	})
	emit(Metric{
		Name: family + "_count", Family: family, Type: Summary,
		Labels: labels, Value: float64(h.Count()),
	})
}

// OpLatencyCollector exports an OpLevelHist as the
// harmony_op_latency_seconds summary family, one series set per populated
// (op, level) cell. A nil hist collects nothing.
func OpLatencyCollector(hist *OpLevelHist, extra ...Label) Collector {
	return func(emit func(Metric)) {
		for _, cell := range hist.Snapshot() {
			labels := make([]Label, 0, len(extra)+2)
			labels = append(labels, extra...)
			labels = append(labels,
				Label{Name: "op", Value: cell.Op.String()},
				Label{Name: "level", Value: cell.Level.String()},
			)
			h := cell.Hist
			EmitHistogram(emit, "harmony_op_latency_seconds",
				"Coordinated operation latency by operation kind and consistency level.",
				labels, &h)
		}
	}
}

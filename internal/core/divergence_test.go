package core

import (
	"testing"
	"time"

	"harmony/internal/wire"
)

// obsWith builds an observation whose propagation model alone is benign
// (tiny Tp, modest rates), so any tightening must come from divergence.
func obsWith(div float64, groups []GroupRates) Observation {
	return Observation{
		At:            time.Unix(1000, 0),
		ReadRate:      50,
		WriteInterval: 1.0, // one write/s: propagation staleness ~ 0
		Latency:       10 * time.Microsecond,
		Divergence:    div,
		Window:        time.Second,
		Groups:        groups,
	}
}

func TestControllerTightensOnDivergenceAndRelaxesAfter(t *testing.T) {
	ctl := NewController(ControllerConfig{
		Policy: Policy{ToleratedStaleRate: 0.10},
		N:      5,
	})
	ctl.Observe(obsWith(0, nil))
	if got := ctl.Last().Level; got != wire.One {
		t.Fatalf("benign conditions chose %v, want ONE", got)
	}
	// A recovering replica: repair heals seconds of divergence per second.
	ctl.Observe(obsWith(2.0, nil))
	d := ctl.Last()
	if d.Level == wire.One {
		t.Fatalf("divergence 2.0 left the level at ONE (estimate %.3f)", d.Estimate)
	}
	if d.Xn < 3 {
		t.Fatalf("divergence breach tightened to Xn=%d, want at least quorum (3 of 5)", d.Xn)
	}
	if d.Estimate <= 0.5 {
		t.Fatalf("estimate %.3f does not reflect saturating divergence", d.Estimate)
	}
	// Repair converged: the gauge returns to zero and the level relaxes.
	ctl.Observe(obsWith(0, nil))
	if got := ctl.Last().Level; got != wire.One {
		t.Fatalf("level stuck at %v after divergence converged", got)
	}
}

func TestControllerDivergenceTightensOnlyAffectedGroups(t *testing.T) {
	ctl := NewController(ControllerConfig{
		Policy:          Policy{ToleratedStaleRate: 0.10},
		N:               5,
		Groups:          2,
		GroupTolerances: []float64{0.10, 0.40},
	})
	// Group 0 diverging, group 1 converged.
	groups := []GroupRates{
		{ReadRate: 40, WriteInterval: 1.0, Divergence: 3.0},
		{ReadRate: 40, WriteInterval: 1.0, Divergence: 0},
	}
	ctl.Observe(obsWith(1.5, groups))
	if g0 := ctl.GroupLast(0); g0.Level == wire.One {
		t.Fatalf("diverging group stayed at ONE (estimate %.3f)", g0.Estimate)
	}
	if g1 := ctl.GroupLast(1); g1.Level != wire.One {
		t.Fatalf("converged group tightened to %v", g1.Level)
	}
}

func TestControllerDivergenceSensitivityDisable(t *testing.T) {
	ctl := NewController(ControllerConfig{
		Policy:                Policy{ToleratedStaleRate: 0.10},
		N:                     5,
		DivergenceSensitivity: -1,
	})
	ctl.Observe(obsWith(10, nil))
	if got := ctl.Last().Level; got != wire.One {
		t.Fatalf("disabled divergence coupling still tightened to %v", got)
	}
}

// TestControllerDivergenceWithoutRates pins the outage-window edge case: a
// round with no measured traffic (invalid model) but active repair must
// still tighten rather than default to eventual consistency.
func TestControllerDivergenceWithoutRates(t *testing.T) {
	ctl := NewController(ControllerConfig{Policy: Policy{ToleratedStaleRate: 0.10}, N: 5})
	obs := obsWith(2.0, nil)
	obs.ReadRate = 0
	obs.WriteInterval = 0
	ctl.Observe(obs)
	d := ctl.Last()
	if d.Level == wire.One || d.Xn < 3 {
		t.Fatalf("invalid model with divergence gave %v/Xn=%d, want >= quorum", d.Level, d.Xn)
	}
}

// TestAdaptiveWriteLevelsTradeReadForWrite pins the R+W>N rewrite: a model
// demanding reads beyond quorum moves writes to QUORUM and caps reads at
// QUORUM; with the feature off the same model reads near ALL at write-ONE.
func TestAdaptiveWriteLevelsTradeReadForWrite(t *testing.T) {
	demanding := Observation{
		At:            time.Unix(2000, 0),
		ReadRate:      100,
		WriteInterval: 0.01, // write-heavy
		Latency:       5 * time.Millisecond,
		Window:        time.Second,
	}
	base := ControllerConfig{Policy: Policy{ToleratedStaleRate: 0.01}, N: 5}

	off := NewController(base)
	off.Observe(demanding)
	if d := off.Last(); d.Xn <= 3 || d.WriteLevel != wire.One {
		t.Fatalf("baseline: Xn=%d write=%v, want Xn>quorum at write-ONE", d.Xn, d.WriteLevel)
	}

	cfg := base
	cfg.AdaptiveWriteLevels = true
	on := NewController(cfg)
	on.Observe(demanding)
	d := on.Last()
	if d.Xn != 3 || d.Level != wire.Quorum {
		t.Fatalf("adaptive: reads at Xn=%d/%v, want quorum", d.Xn, d.Level)
	}
	if d.WriteLevel != wire.Quorum {
		t.Fatalf("adaptive: writes at %v, want QUORUM", d.WriteLevel)
	}
	if on.WriteLevel() != wire.Quorum {
		t.Fatalf("WriteLevel() = %v, want QUORUM", on.WriteLevel())
	}
	// A benign regime keeps writes at ONE even with the feature on.
	on.Observe(obsWith(0, nil))
	if got := on.WriteLevel(); got != wire.One {
		t.Fatalf("benign regime writes at %v, want ONE", got)
	}
}

// TestWriteLevelForFollowsGroups exercises the per-key write side of the
// multi-model controller.
func TestWriteLevelForFollowsGroups(t *testing.T) {
	groupFn := func(key []byte) int {
		if len(key) > 0 && key[0] == 'h' {
			return 0
		}
		return 1
	}
	ctl := NewController(ControllerConfig{
		Policy:              Policy{ToleratedStaleRate: 0.5},
		N:                   5,
		Groups:              2,
		GroupFn:             groupFn,
		GroupTolerances:     []float64{0.01, 0.6},
		AdaptiveWriteLevels: true,
	})
	obs := Observation{
		At:            time.Unix(3000, 0),
		ReadRate:      100,
		WriteInterval: 0.01,
		Latency:       5 * time.Millisecond,
		Window:        time.Second,
		Groups: []GroupRates{
			{ReadRate: 100, WriteInterval: 0.01}, // hot: demands > quorum
			{ReadRate: 100, WriteInterval: 10},   // cold: benign
		},
	}
	ctl.Observe(obs)
	if got := ctl.WriteLevelFor([]byte("hot")); got != wire.Quorum {
		t.Fatalf("hot group writes at %v, want QUORUM", got)
	}
	if got := ctl.WriteLevelFor([]byte("cold")); got != wire.One {
		t.Fatalf("cold group writes at %v, want ONE", got)
	}
	if got := ctl.ReadLevelFor([]byte("hot")); got != wire.Quorum {
		t.Fatalf("hot group reads at %v, want QUORUM (capped by quorum writes)", got)
	}
}

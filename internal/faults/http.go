package faults

import (
	"encoding/json"
	"net/http"
)

// Handler serves the fault plane over the admin endpoint: GET returns the
// injector's State, POST applies an Update document. Membership supplies
// the endpoint ids used to resolve Wildcard partition sides (typically the
// server's static peer list plus itself); nil disables wildcards.
type Handler struct {
	Inj        *Injector
	Membership []string
}

// ServeHTTP implements http.Handler.
func (h Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(h.Inj.Snapshot())
	case http.MethodPost:
		var u Update
		if err := json.NewDecoder(r.Body).Decode(&u); err != nil {
			http.Error(w, "faults: bad update: "+err.Error(), http.StatusBadRequest)
			return
		}
		if err := h.Inj.Apply(u, h.Membership); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(h.Inj.Snapshot())
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

//go:build ignore

// Prints one free loopback TCP port (bind-and-release). Used by
// scripts/admin_smoke.sh to pre-agree the server's transport address.
package main

import (
	"fmt"
	"net"
	"os"
)

func main() {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	port := ln.Addr().(*net.TCPAddr).Port
	ln.Close()
	fmt.Println(port)
}

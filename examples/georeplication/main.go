// Georeplication: data replicated over two geographically distant
// datacenters, the deployment §IV of the paper highlights ("data may be
// replicated over geographically distant data centers"). Cross-DC
// propagation takes tens of milliseconds, so the stale-read estimate is
// dominated by network latency: Harmony escalates the read level while the
// WAN is degraded and relaxes when it recovers.
//
// The load is open loop (fixed arrival rate): user demand does not slow
// down because the backend got slower, which is exactly when latency-driven
// staleness bites.
//
//	go run ./examples/georeplication
package main

import (
	"fmt"
	"log"
	"time"

	"harmony/internal/cluster"
	"harmony/internal/core"
	"harmony/internal/ring"
	"harmony/internal/sim"
	"harmony/internal/simnet"
	"harmony/internal/wire"
	"harmony/internal/ycsb"
)

type sink struct{}

func (sink) Deliver(ring.NodeID, wire.Message) {}

func main() {
	s := sim.New(314)
	spec := cluster.DefaultSpec()
	spec.DCs = 2 // two sites; NetworkTopologyStrategy spreads replicas over both
	spec.RacksPerDC = 2
	spec.NodesPerRack = 5
	spec.Profile = simnet.Grid5000Profile() // healthy inter-DC: 5ms one-way

	c, err := cluster.BuildSim(s, spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("two-DC cluster: %d nodes, RF=%d spread across %v\n",
		len(c.Nodes), spec.RF, c.Topo.DCs())

	var trace []core.Decision
	ctl := core.NewController(core.ControllerConfig{
		Policy:               core.Policy{Name: "geo", ToleratedStaleRate: 0.50},
		N:                    spec.RF,
		AvgWriteBytes:        1024,
		BandwidthBytesPerSec: spec.Profile.BandwidthBytesPerSec,
		OnDecision:           func(d core.Decision) { trace = append(trace, d) },
	})
	mon := core.NewMonitor(core.MonitorConfig{
		ID:             "geo-monitor",
		Nodes:          c.NodeIDs(),
		Interval:       500 * time.Millisecond,
		ReplicaSetSize: spec.RF,
		OnObservation:  ctl.Observe,
	}, s, c.Bus)
	c.Net.Colocate("geo-monitor", c.NodeIDs()[0])
	c.Bus.Register("geo-monitor", s, mon)

	// Preload records, then offer a constant 2000 ops/s (50/50 read/update).
	loader, err := ycsb.NewRunner(ycsb.RunConfig{Workload: ycsb.WorkloadA(), Threads: 1, Seed: 11}, s, c)
	if err != nil {
		log.Fatal(err)
	}
	loader.Load()
	stopLoad := openLoad(s, c, ctl, 2000)
	mon.Start()

	report := func(phase string) {
		d := ctl.Last()
		fmt.Printf("%-26s estimate=%.3f level=%-6s Xn=%d (Tp=%v)\n",
			phase, d.Estimate, d.Level, d.Xn, d.Model.Tp.Round(100*time.Microsecond))
	}

	// Phase 1: healthy inter-DC link.
	s.RunFor(5 * time.Second)
	report("healthy inter-DC link:")
	healthyXn := ctl.Last().Xn

	// Phase 2: the WAN degrades — +60ms on every cross-DC link.
	ids := c.NodeIDs()
	for _, a := range ids {
		ia, _ := c.Topo.Info(a)
		for _, b := range ids {
			ib, _ := c.Topo.Info(b)
			if ia.DC != ib.DC && a < b {
				c.Net.Degrade(a, b, 60*time.Millisecond)
			}
		}
	}
	s.RunFor(5 * time.Second)
	report("degraded WAN (+60ms):")
	degradedXn := ctl.Last().Xn

	// Phase 3: recovery.
	c.Net.ClearDegradations()
	s.RunFor(5 * time.Second)
	report("recovered:")
	recoveredXn := ctl.Last().Xn

	stopLoad()
	mon.Stop()

	fmt.Printf("\nHarmony raised reads from Xn=%d to Xn=%d replicas while propagation\n",
		healthyXn, degradedXn)
	fmt.Printf("was slow, and relaxed back to Xn=%d once the WAN recovered —\n", recoveredXn)
	fmt.Printf("%d decisions, no operator in the loop.\n", len(trace))
}

// openLoad offers fixed-rate workload-A traffic whose reads use the level
// Harmony currently advertises.
func openLoad(s *sim.Sim, c *cluster.Cluster, levels interface {
	ReadLevel() wire.ConsistencyLevel
}, opsPerSec float64) (stop func()) {
	rng := s.NewStream()
	chooser, err := ycsb.WorkloadA().NewChooser()
	if err != nil {
		log.Fatal(err)
	}
	payload := make([]byte, 1024)
	rng.Read(payload)
	coords := c.NodeIDs()
	c.Bus.Register("geo-load", s, sink{})
	var id uint64
	interval := time.Duration(float64(time.Second) / (opsPerSec / 2))
	stopR := s.Ticker(interval, func() {
		id++
		key := ycsb.Key(chooser.Next(rng))
		c.Bus.Send("geo-load", coords[int(id)%len(coords)],
			wire.ReadRequest{ID: id, Key: key, Level: levels.ReadLevel()})
	})
	stopW := s.Ticker(interval, func() {
		id++
		key := ycsb.Key(chooser.Next(rng))
		c.Bus.Send("geo-load", coords[int(id)%len(coords)],
			wire.WriteRequest{ID: id, Key: key, Value: payload, Level: wire.One})
	})
	return func() { stopR(); stopW() }
}

package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"time"

	"harmony/internal/client"
	"harmony/internal/core"
	"harmony/internal/faults"
	"harmony/internal/obs"
	"harmony/internal/ring"
	"harmony/internal/sim"
	"harmony/internal/transport"
	"harmony/internal/wire"
	"harmony/internal/ycsb"
)

// The live partition experiment runs the same contract as the simulated one
// against spawned server processes: the cut is installed at runtime by
// POSTing the same faults.Update JSON the admin endpoint accepts to every
// member's /faults, gossip does the failure detection for real (no injected
// liveness view), and the heal is another POST. Full replication (RF =
// Procs) keeps the availability argument constructive: every key has a
// replica on both sides of any split, so CL=ONE stays answerable from the
// minority while quorum work there must refuse.

// LivePartitionSpec parameterizes the live partition experiment.
type LivePartitionSpec struct {
	Procs int
	// RF of 0 means full replication (RF = Procs), which the availability
	// pins assume.
	RF int
	// MinorityNodes land on the small side of the cut.
	MinorityNodes int
	// HotKeys / TotalKeys split the keyspace as in hotcold.
	HotKeys   int64
	TotalKeys int64
	// HotWorkers / ColdWorkers size the majority-side closed-loop pools.
	HotWorkers, ColdWorkers int
	// HotTolerance / ColdTolerance are the per-group stale targets.
	HotTolerance, ColdTolerance float64
	ValueBytes                  int
	// VerifyEvery probes every k-th read (staleness windows need density).
	VerifyEvery int
	// OpTimeout bounds every client operation (the fail-fast pin).
	OpTimeout time.Duration
	// ProbeInterval is the minority prober's cadence.
	ProbeInterval time.Duration
	// ControllerBandwidth: see LiveHotColdSpec.
	ControllerBandwidth float64
	MonitorInterval     time.Duration
	// GossipInterval tunes detection speed: the minority must convict the
	// majority (and vice versa) well inside the cut.
	GossipInterval time.Duration
	// DetectTimeout bounds how long the experiment waits for the majority's
	// detectors to convict the cut before starting the cut measurement; it
	// doubles as the contract's DetectBoundMs pin on the blind window.
	DetectTimeout time.Duration
	// Warmup precedes measurement; Baseline is watched before the cut, Cut
	// is how long the partition holds, PostWatch the re-convergence watch.
	Warmup, Baseline, Cut, PostWatch time.Duration
	WindowLen                        time.Duration
	RecoverWindows                   int
	HintQueueLimit                   int
	RepairInterval                   time.Duration
	ClientStreams                    int
	ServerStreams                    int
	LogDir                           string
}

// DefaultLivePartitionSpec returns the standard live schedule: a 5-process
// fully replicated cluster split 3/2 for 6 seconds.
func DefaultLivePartitionSpec() LivePartitionSpec {
	return LivePartitionSpec{
		Procs:               5,
		MinorityNodes:       2,
		HotKeys:             200,
		TotalKeys:           3000,
		HotWorkers:          4,
		ColdWorkers:         8,
		HotTolerance:        0.05,
		ColdTolerance:       0.50,
		ValueBytes:          256,
		VerifyEvery:         2,
		OpTimeout:           750 * time.Millisecond,
		ProbeInterval:       100 * time.Millisecond,
		ControllerBandwidth: 1 << 20,
		MonitorInterval:     400 * time.Millisecond,
		GossipInterval:      150 * time.Millisecond,
		DetectTimeout:       5 * time.Second,
		Warmup:              2 * time.Second,
		Baseline:            2 * time.Second,
		Cut:                 6 * time.Second,
		PostWatch:           8 * time.Second,
		WindowLen:           500 * time.Millisecond,
		RecoverWindows:      4,
		HintQueueLimit:      2_000,
		RepairInterval:      500 * time.Millisecond,
		ClientStreams:       2,
		ServerStreams:       2,
	}
}

// postFaults ships an Update to one member's admin /faults endpoint.
func postFaults(admin string, upd faults.Update) error {
	body, err := json.Marshal(upd)
	if err != nil {
		return err
	}
	resp, err := http.Post("http://"+admin+"/faults", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("POST %s/faults: %d %s", admin, resp.StatusCode, msg)
	}
	return nil
}

// postFaultsAll ships the same Update to every member. The cut is only as
// atomic as a loop of HTTP posts — exactly like a real operator's chaos
// tooling — so the schedule leaves detection-delay slack around each phase.
func postFaultsAll(lc *LiveCluster, upd faults.Update) error {
	for id, admin := range lc.AdminAddrs() {
		if err := postFaults(admin, upd); err != nil {
			return fmt.Errorf("member %s: %w", id, err)
		}
	}
	return nil
}

// LivePartition runs the partition experiment over a spawned cluster and
// returns the shared PartitionResult (Backend "live").
func LivePartition(spec LivePartitionSpec, opts Options) (PartitionResult, error) {
	opts = opts.withDefaults()
	if spec.HotKeys <= 0 || spec.TotalKeys <= spec.HotKeys {
		return PartitionResult{}, fmt.Errorf("bench: live partition needs 0 < HotKeys < TotalKeys, got %d/%d", spec.HotKeys, spec.TotalKeys)
	}
	if spec.MinorityNodes <= 0 || spec.MinorityNodes >= spec.Procs-spec.MinorityNodes {
		return PartitionResult{}, fmt.Errorf("bench: live partition needs 0 < MinorityNodes < Procs/2, got %d/%d", spec.MinorityNodes, spec.Procs)
	}
	rf := spec.RF
	if rf <= 0 {
		rf = spec.Procs
	}
	lc, err := StartLiveCluster(LiveClusterConfig{
		Procs: spec.Procs, RF: rf,
		GossipInterval: spec.GossipInterval,
		Repair:         true, RepairInterval: spec.RepairInterval,
		HotKeys: spec.HotKeys, HintQueueLimit: spec.HintQueueLimit,
		Streams: spec.ServerStreams,
		LogDir:  spec.LogDir,
	})
	if err != nil {
		return PartitionResult{}, err
	}
	defer lc.Close()
	ids := lc.IDs()
	majority := ids[:len(ids)-spec.MinorityNodes]
	minority := ids[len(ids)-spec.MinorityNodes:]
	majStrs := make([]string, len(majority))
	minStrs := make([]string, len(minority))
	for i, id := range majority {
		majStrs[i] = string(id)
	}
	for i, id := range minority {
		minStrs[i] = string(id)
	}
	opts.progress("live partition: %d procs up (rf=%d), preloading %d keys", spec.Procs, rf, spec.TotalKeys)
	if err := livePreload(lc.Peers(), lc.IDs(), spec.TotalKeys, spec.ValueBytes); err != nil {
		return PartitionResult{}, err
	}

	tols := []float64{spec.HotTolerance, spec.ColdTolerance}
	trace := obs.NewTrace(4096)
	ctl := core.NewController(core.ControllerConfig{
		Policy: core.Policy{
			Name:               "live-partition",
			ToleratedStaleRate: spec.HotTolerance,
		},
		N:                    rf,
		BandwidthBytesPerSec: spec.ControllerBandwidth,
		Groups:               2,
		GroupFn:              hotColdGroupFn(spec.HotKeys),
		GroupTolerances:      tols,
		Trace:                trace,
	})
	mon, err := startLiveMonitor(lc, ctl, spec.MonitorInterval)
	if err != nil {
		return PartitionResult{}, err
	}
	defer mon.close()

	tally := &liveTally{}
	hcSpec := LiveHotColdSpec{
		Procs: spec.Procs, RF: rf,
		HotKeys: spec.HotKeys, TotalKeys: spec.TotalKeys,
		HotWorkers: spec.HotWorkers, ColdWorkers: spec.ColdWorkers,
		ValueBytes:    spec.ValueBytes,
		ClientStreams: spec.ClientStreams,
	}
	workers, err := liveWorkerPool(hcSpec, lc, ctl, tally, spec.OpTimeout, spec.VerifyEvery, opts.Seed, majority)
	if err != nil {
		return PartitionResult{}, err
	}
	prb, err := newLiveProber(lc, minority, spec.OpTimeout, spec.TotalKeys, spec.ProbeInterval, opts.Seed)
	if err != nil {
		haltAll(workers)
		return PartitionResult{}, err
	}

	time.Sleep(spec.Warmup)
	tally.reset()
	scraper := startLiveScraper(lc, tally, liveLevels(ctl, true), trace, time.Second)

	// Staleness windows: cumulative probe counters on a real ticker.
	tickerStart := time.Now()
	prevSamples, prevStale := tally.probes()
	var windows []ChurnWindow
	windowDone := make(chan struct{})
	windowStop := make(chan struct{})
	go func() {
		defer close(windowDone)
		tick := time.NewTicker(spec.WindowLen)
		defer tick.Stop()
		for {
			select {
			case <-windowStop:
				return
			case <-tick.C:
				curSamples, curStale := tally.probes()
				w := ChurnWindow{}
				for g := 0; g < 2; g++ {
					samples := curSamples[g] - prevSamples[g]
					stale := curStale[g] - prevStale[g]
					frac := 0.0
					if samples > 0 {
						frac = float64(stale) / float64(samples)
					}
					w.Samples = append(w.Samples, samples)
					w.Stale = append(w.Stale, stale)
					w.Fraction = append(w.Fraction, frac)
				}
				prevSamples, prevStale = curSamples, curStale
				windows = append(windows, w)
			}
		}
	}()
	finish := func() {
		close(windowStop)
		<-windowDone
		scraper.finish()
		prb.halt()
		haltAll(workers)
	}

	// Baseline.
	prb.setPhase(&prb.base)
	baseStart := time.Now()
	time.Sleep(spec.Baseline)
	baseSnap := tally.snapshot()
	baselineTput := goodput(baseSnap.ops, baseSnap.errors, time.Since(baseStart))

	// The cut: POST the partition to every member. Gossip convicts the far
	// side on its own — there is no injected liveness here. Until it does,
	// any operation whose replica choice touches a cut peer burns its full
	// deadline: that blind window is phi-accrual physics, so the cut
	// measurement starts only once every majority member reports a
	// shrunken alive count (observed through the monitor's stats, which
	// now carry each detector's view), and the window's length is pinned
	// separately through DetectMs. Probes during the wait book into the
	// discard phase: a quorum probe straddling the POST loop may still
	// legitimately succeed, and must not book into the cut tally where any
	// success is scored as split brain.
	prb.setPhase(&prb.discard)
	if err := postFaultsAll(lc, faults.Update{Partition: &faults.PartitionSpec{A: majStrs, B: minStrs}}); err != nil {
		finish()
		return PartitionResult{}, err
	}
	opts.progress("live partition: cut %v | %v", majStrs, minStrs)
	cutInstalled := time.Now()
	detectMs := -1.0
	for time.Since(cutInstalled) < spec.DetectTimeout {
		if a := mon.maxAliveOf(majority); a > 0 && a <= len(majority) {
			detectMs = durMs(time.Since(cutInstalled))
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if detectMs >= 0 {
		opts.progress("live partition: majority convicted the cut in %.0fms", detectMs)
	} else {
		opts.progress("live partition: majority never convicted the cut within %v", spec.DetectTimeout)
	}
	time.Sleep(spec.OpTimeout) // drain ops issued against the pre-conviction view
	prb.setPhase(&prb.cut)
	tally.reset()
	cutStart := time.Now()
	time.Sleep(spec.Cut)
	cutSnap := tally.snapshot()
	cutTput := goodput(cutSnap.ops, cutSnap.errors, time.Since(cutStart))

	// Heal and watch re-convergence (gossip recovery triggers anti-entropy
	// across the former cut).
	prb.setPhase(&prb.discard)
	if err := postFaultsAll(lc, faults.Update{Heal: true}); err != nil {
		finish()
		return PartitionResult{}, err
	}
	healedAt := time.Now()
	opts.progress("live partition: healed, watching re-convergence")
	time.Sleep(spec.PostWatch)

	close(windowStop)
	<-windowDone
	series := scraper.finish()
	prb.halt()
	haltAll(workers)

	probeBase, probeCut := prb.phases()
	probeBase.DeadlineMs = durMs(spec.OpTimeout)
	probeCut.DeadlineMs = durMs(spec.OpTimeout)
	res := PartitionResult{
		Backend:         "live",
		Scenario:        fmt.Sprintf("live-%dproc", spec.Procs),
		Nodes:           len(ids),
		RF:              rf,
		Majority:        majStrs,
		Minority:        minStrs,
		CutMs:           durMs(spec.Cut),
		DetectMs:        detectMs,
		DetectBoundMs:   durMs(spec.DetectTimeout),
		BaselineTputOps: baselineTput,
		CutTputOps:      cutTput,
		ProbeBaseline:   probeBase,
		ProbeCut:        probeCut,
		Windows:         windows,
		HintsQueued:     mon.nodeStats(func(s wire.StatsResponse) uint64 { return s.HintsQueued }),
		RowsHealed:      mon.nodeStats(func(s wire.StatsResponse) uint64 { return s.RepairRows }),
		Trace:           trace.Events(),
		Holds:           countHolds(trace.Events()),
		Series:          series,
	}
	if baselineTput > 0 {
		res.AvailabilityRatio = cutTput / baselineTput
	}
	res.Groups = assemblePartitionGroups(windows, tickerStart, healedAt, spec.WindowLen, spec.RecoverWindows, tols, ctl)
	opts.progress("live partition: availability %.2f, minority ONE %.2f, holds %d",
		res.AvailabilityRatio, probeCut.OneFraction(), res.Holds)
	return res, nil
}

// liveProber issues explicit-level probe rounds against minority
// coordinators over its own endpoint. Callbacks run on its private runtime;
// the main goroutine swaps phases and reads tallies under the mutex.
type liveProber struct {
	rt       *sim.RealRuntime
	tcp      *transport.TCPNode
	drv      *client.Driver
	interval time.Duration
	keys     int64
	rng      *rand.Rand

	mu                 sync.Mutex
	base, cut, discard PartitionProbe
	phase              *PartitionProbe
	stopped            bool
}

func newLiveProber(lc *LiveCluster, coords []ring.NodeID, timeout time.Duration,
	keys int64, interval time.Duration, seed int64) (*liveProber, error) {
	p := &liveProber{
		rt:       sim.NewRealRuntime(),
		interval: interval,
		keys:     keys,
		rng:      rand.New(rand.NewSource(seed ^ 0x9e3779b9)),
	}
	p.phase = &p.discard
	tcp, err := transport.NewTCPNode(transport.TCPConfig{
		ID: "part-probe", Peers: lc.Peers(),
		Logf: func(string, ...any) {}, // cross-cut dials failing is the point
	}, p.rt, nil)
	if err != nil {
		p.rt.Stop()
		return nil, err
	}
	p.tcp = tcp
	drv, err := client.New(client.Options{
		ID:           "part-probe",
		Coordinators: coords,
		Policy:       client.Fixed{Write: wire.Quorum},
		Timeout:      timeout,
	}, p.rt, tcp)
	if err != nil {
		tcp.Close()
		p.rt.Stop()
		return nil, err
	}
	p.drv = drv
	tcp.SetHandler(drv)
	p.rt.Post(p.round)
	return p, nil
}

func (p *liveProber) setPhase(ph *PartitionProbe) {
	p.mu.Lock()
	p.phase = ph
	p.mu.Unlock()
}

func (p *liveProber) phases() (base, cut PartitionProbe) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.base, p.cut
}

// round issues one probe triple and reschedules itself. Results book into
// whichever phase is current when each op COMPLETES.
func (p *liveProber) round() {
	p.mu.Lock()
	stopped := p.stopped
	p.mu.Unlock()
	if stopped {
		return
	}
	key := ycsb.Key(p.rng.Int63n(p.keys))
	start := time.Now()
	p.drv.ReadAt(key, wire.One, func(r client.ReadResult) {
		p.mu.Lock()
		if r.Err != nil {
			p.phase.OneErr++
		} else {
			p.phase.OneOK++
		}
		p.mu.Unlock()
	})
	p.drv.ReadAt(key, wire.Quorum, func(r client.ReadResult) {
		p.mu.Lock()
		if r.Err != nil {
			p.phase.QuorumErr++
			p.noteErrLatencyLocked(start)
		} else {
			p.phase.QuorumOK++
		}
		p.mu.Unlock()
	})
	p.drv.Write(key, []byte("probe"), func(r client.WriteResult) {
		p.mu.Lock()
		if r.Err != nil {
			p.phase.WriteErr++
			p.noteErrLatencyLocked(start)
		} else {
			p.phase.WriteOK++
		}
		p.mu.Unlock()
	})
	p.rt.After(p.interval, p.round)
}

func (p *liveProber) noteErrLatencyLocked(start time.Time) {
	if ms := durMs(time.Since(start)); ms > p.phase.WorstQuorumErrMs {
		p.phase.WorstQuorumErrMs = ms
	}
}

// halt stops new rounds, lets in-flight ops drain via driver timeouts, then
// tears the endpoint down.
func (p *liveProber) halt() {
	p.mu.Lock()
	if p.stopped {
		p.mu.Unlock()
		return
	}
	p.stopped = true
	p.mu.Unlock()
	time.Sleep(50 * time.Millisecond)
	p.tcp.Close()
	p.rt.Stop()
}

// Command apicheck emits a deterministic snapshot of the repository's
// exported Go API: every exported constant, variable, type (with exported
// fields and embedded declarations), function, and method, grouped by
// package, with function bodies stripped. `make api-check` diffs the
// snapshot against the committed baseline (api/exported.txt) so an API
// change — intended or not — shows up as a reviewable diff and CI fails
// until the baseline is regenerated with `make api-baseline`.
//
//	go run ./cmd/apicheck            # snapshot to stdout
//	go run ./cmd/apicheck -root dir  # snapshot another tree
package main

import (
	"bytes"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"io"
	"io/fs"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("apicheck: ")
	root := flag.String("root", ".", "module root to snapshot")
	flag.Parse()

	dirs, err := goDirs(*root)
	if err != nil {
		log.Fatal(err)
	}
	out := bufferedStdout()
	defer out.Flush()
	for _, dir := range dirs {
		if err := snapshotDir(out, *root, dir); err != nil {
			log.Fatalf("%s: %v", dir, err)
		}
	}
}

type flusher interface {
	io.Writer
	Flush() error
}

type stdoutBuffer struct{ bytes.Buffer }

func (b *stdoutBuffer) Flush() error {
	_, err := os.Stdout.Write(b.Bytes())
	return err
}

func bufferedStdout() flusher { return &stdoutBuffer{} }

// goDirs returns every directory under root holding non-test Go files,
// sorted, skipping hidden directories and build output.
func goDirs(root string) ([]string, error) {
	seen := map[string]bool{}
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if path != root && (strings.HasPrefix(name, ".") || name == "out" || name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			seen[filepath.Dir(path)] = true
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	dirs := make([]string, 0, len(seen))
	for d := range seen {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)
	return dirs, nil
}

// snapshotDir prints one package's exported declarations. Command packages
// (package main) have no importable API and are skipped.
func snapshotDir(w io.Writer, root, dir string) error {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		return err
	}
	names := make([]string, 0, len(pkgs))
	for name := range pkgs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if name == "main" {
			continue
		}
		pkg := pkgs[name]
		if !ast.PackageExports(pkg) {
			continue
		}
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			rel = dir
		}
		fmt.Fprintf(w, "== %s (package %s)\n", filepath.ToSlash(rel), name)
		files := make([]string, 0, len(pkg.Files))
		for f := range pkg.Files {
			files = append(files, f)
		}
		sort.Strings(files)
		cfg := printer.Config{Mode: printer.UseSpaces | printer.TabIndent, Tabwidth: 8}
		for _, fname := range files {
			for _, decl := range pkg.Files[fname].Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					d.Body = nil
					d.Doc = nil
				case *ast.GenDecl:
					if d.Tok == token.IMPORT {
						continue
					}
					d.Doc = nil
					stripSpecDocs(d)
				}
				var buf bytes.Buffer
				if err := cfg.Fprint(&buf, fset, decl); err != nil {
					return err
				}
				if buf.Len() == 0 {
					continue
				}
				w.Write(buf.Bytes())
				io.WriteString(w, "\n")
			}
		}
		io.WriteString(w, "\n")
	}
	return nil
}

func stripSpecDocs(d *ast.GenDecl) {
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			s.Doc, s.Comment = nil, nil
		case *ast.ValueSpec:
			s.Doc, s.Comment = nil, nil
		}
	}
}

// Package simnet models the network connecting storage nodes and clients:
// per-pair base latency derived from the cluster topology, stochastic jitter,
// bandwidth-proportional serialization delay, and fault injection (partitions
// and degraded links). It backs the discrete-event transport used by every
// experiment, and it is where the two testbed profiles from the paper's
// evaluation live: a Grid'5000-like LAN and an EC2-like virtualized WAN.
package simnet

import (
	"math/rand"
	"sync"
	"time"

	"harmony/internal/dist"
	"harmony/internal/ring"
)

// Profile describes the latency character of a deployment. All durations are
// one-way.
type Profile struct {
	Name string
	// Base one-way latency per proximity class (same node, same rack, same
	// DC, cross DC). Index with ring.Topology.Distance.
	Base [4]time.Duration
	// Jitter scales the base latency multiplicatively: effective = base *
	// jitter.Sample(). Use dist.Constant{V:1} for a noiseless network.
	Jitter dist.Sampler
	// BandwidthBytesPerSec models serialization delay: transferring n bytes
	// adds n/Bandwidth seconds. Zero disables the term.
	BandwidthBytesPerSec float64
	// ClientLatency is the one-way latency between external clients and any
	// storage node (clients are "near" the cluster, e.g. same AZ).
	ClientLatency time.Duration
}

// Grid5000Profile approximates the paper's first testbed: physical nodes on
// gigabit Ethernet inside one site — sub-millisecond, stable latency
// between replicas. ClientLatency folds in the whole client-side stack the
// paper's YCSB deployment pays per operation (client host hop plus
// Thrift/RPC and server request handling); it sets the base per-operation
// latency floor that, against the cluster's service capacity, places
// closed-loop saturation near 90 threads exactly as Fig. 5(c) shows.
func Grid5000Profile() Profile {
	return Profile{
		Name:                 "grid5000",
		Base:                 [4]time.Duration{20 * time.Microsecond, 150 * time.Microsecond, 400 * time.Microsecond, 5 * time.Millisecond},
		Jitter:               dist.LognormalFromMeanP99(1.0, 2.5),
		BandwidthBytesPerSec: 125e6, // 1 Gb/s
		ClientLatency:        1200 * time.Microsecond,
	}
}

// EC2Profile approximates the paper's second testbed: virtualized instances
// with ~5x the base latency of Grid'5000 and heavy-tailed jitter reaching
// tens of milliseconds (the variability Fig. 4(b) shows).
func EC2Profile() Profile {
	return Profile{
		Name:                 "ec2",
		Base:                 [4]time.Duration{50 * time.Microsecond, 750 * time.Microsecond, 2000 * time.Microsecond, 25 * time.Millisecond},
		Jitter:               dist.LognormalFromMeanP99(1.3, 12.0),
		BandwidthBytesPerSec: 60e6, // shared virtualized NIC
		ClientLatency:        2500 * time.Microsecond,
	}
}

// WANHeavyTailProfile models a geo-replicated deployment whose cross-DC
// links ride the public internet: moderate base latencies but Pareto
// (power-law) jitter, so the p99.9 is many multiples of the median. This
// is the regime where "wait for the slowest of N replicas" dominates and
// an adaptive controller has the most to gain from backing off.
func WANHeavyTailProfile() Profile {
	return Profile{
		Name: "wan-heavytail",
		Base: [4]time.Duration{100 * time.Microsecond, 1 * time.Millisecond, 5 * time.Millisecond, 80 * time.Millisecond},
		// Unit-mean Pareto with shape 2.2: p99 ~ 4.4x the base latency,
		// p99.99 ~ 36x — the long tail WAN paths exhibit.
		Jitter:               dist.ParetoFromMean(1.0, 2.2),
		BandwidthBytesPerSec: 30e6,
		ClientLatency:        5 * time.Millisecond,
	}
}

// DegradedProfile models a cluster limping through an incident (failing
// NIC, saturated switch, noisy neighbor): every message pays a hard floor
// of slowness plus an exponential tail, doubling the effective latency on
// average. Controllers tuned on healthy profiles must re-adapt here.
func DegradedProfile() Profile {
	return Profile{
		Name: "degraded",
		Base: [4]time.Duration{50 * time.Microsecond, 500 * time.Microsecond, 1500 * time.Microsecond, 20 * time.Millisecond},
		// Shifted exponential: never faster than 0.8x nominal, mean 2.0x,
		// with a memoryless tail of multi-x stalls.
		Jitter:               dist.Shifted{Base: dist.NewExponential(1.2), Offset: 0.8},
		BandwidthBytesPerSec: 20e6,
		ClientLatency:        4 * time.Millisecond,
	}
}

// CongestedBimodalProfile models intra-DC congestion events: most messages
// see well-behaved lognormal jitter, but a fraction hit a congested path
// (queue buildup, incast) and arrive several times late. The two regimes
// are exactly what a single-mode latency assumption gets wrong.
func CongestedBimodalProfile() Profile {
	return Profile{
		Name: "congested-bimodal",
		Base: [4]time.Duration{30 * time.Microsecond, 300 * time.Microsecond, 1 * time.Millisecond, 12 * time.Millisecond},
		// 85% fast mode (lognormal, p99 = 2x), 15% congested mode at 4-6x+
		// (shifted exponential); overall mean multiplier 1.75.
		Jitter: dist.NewBimodal(
			dist.LognormalFromMeanP99(1.0, 2.0),
			dist.Shifted{Base: dist.NewExponential(2.0), Offset: 4},
			0.15,
		),
		BandwidthBytesPerSec: 80e6,
		ClientLatency:        2 * time.Millisecond,
	}
}

// DriftingProfile models a network whose jitter degrades mid-run: it
// starts as the healthy Grid'5000-like LAN and drifts toward the degraded
// regime (latency floor plus exponential stalls) as the returned knob's
// progress moves from 0 to 1. Callers schedule the drift themselves —
// typically sim.Every advancing SetProgress over the experiment — which
// is exactly the re-adaptation-speed stimulus a controller tuned on the
// healthy network must survive. Each call returns an independent knob, so
// concurrent experiments do not share drift state.
func DriftingProfile() (Profile, *dist.Drifting) {
	drift := dist.NewDrifting(
		dist.LognormalFromMeanP99(1.0, 2.5),
		dist.Shifted{Base: dist.NewExponential(1.2), Offset: 0.8},
	)
	return Profile{
		Name:                 "drifting",
		Base:                 [4]time.Duration{25 * time.Microsecond, 200 * time.Microsecond, 600 * time.Microsecond, 8 * time.Millisecond},
		Jitter:               drift,
		BandwidthBytesPerSec: 100e6,
		ClientLatency:        1500 * time.Microsecond,
	}, drift
}

// Profiles returns every named profile keyed by its Name, for CLIs and
// experiment configs that select scenarios by string. The drifting
// profile is registered at progress 0 (its healthy regime); experiments
// that want the drift itself use DriftingProfile directly for the knob.
func Profiles() map[string]Profile {
	drifting, _ := DriftingProfile()
	ps := map[string]Profile{}
	for _, p := range []Profile{
		Grid5000Profile(), EC2Profile(), WANHeavyTailProfile(),
		DegradedProfile(), CongestedBimodalProfile(), drifting,
	} {
		ps[p.Name] = p
	}
	return ps
}

// UniformProfile gives every pair the same one-way latency; used by the
// Fig. 4(b) sweep where latency is the controlled variable.
func UniformProfile(oneWay time.Duration) Profile {
	return Profile{
		Name:          "uniform",
		Base:          [4]time.Duration{oneWay, oneWay, oneWay, oneWay},
		Jitter:        dist.Constant{V: 1},
		ClientLatency: oneWay,
	}
}

// Net computes message delays and applies fault injection. It is safe for
// use from a single simulation goroutine; the real-time transport guards it
// with its own lock.
type Net struct {
	mu        sync.Mutex
	topo      *ring.Topology
	profile   Profile
	rng       *rand.Rand
	cut       map[linkKey]bool          // partitioned links
	degraded  map[linkKey]time.Duration // extra latency per link
	colocated map[ring.NodeID]ring.NodeID
}

type linkKey struct{ a, b string }

func normKey(a, b string) linkKey {
	if a > b {
		a, b = b, a
	}
	return linkKey{a, b}
}

// New creates a network over topo with the given profile. rng drives jitter
// and must be dedicated to this Net for determinism.
func New(topo *ring.Topology, profile Profile, rng *rand.Rand) *Net {
	if profile.Jitter == nil {
		profile.Jitter = dist.Constant{V: 1}
	}
	return &Net{
		topo:      topo,
		profile:   profile,
		rng:       rng,
		cut:       make(map[linkKey]bool),
		degraded:  make(map[linkKey]time.Duration),
		colocated: make(map[ring.NodeID]ring.NodeID),
	}
}

// Colocate places an external endpoint (a monitor or an embedded client) on
// the same host as a cluster node for latency purposes: its traffic pays
// the host's link latencies instead of the external ClientLatency. The
// paper's monitoring module runs inside the cluster, so its pings observe
// inter-replica latency.
func (n *Net) Colocate(id, host ring.NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.colocated[id] = host
}

func (n *Net) resolveLocked(id ring.NodeID) (ring.NodeID, bool) {
	if host, ok := n.colocated[id]; ok {
		id = host
	}
	_, in := n.topo.Info(id)
	return id, in
}

// Profile returns the active profile.
func (n *Net) Profile() Profile { return n.profile }

// Delay computes the one-way delivery delay for a message of size bytes from
// a to b, or ok=false if the link is partitioned. IDs not present in the
// topology (external clients) use the profile's ClientLatency.
func (n *Net) Delay(a, b ring.NodeID, bytes int) (time.Duration, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	// Colocated endpoints share their host's links: partitions and
	// degradations applied to the host apply to them too.
	ra, aIn := n.resolveLocked(a)
	rb, bIn := n.resolveLocked(b)
	k := normKey(string(ra), string(rb))
	if n.cut[k] {
		return 0, false
	}
	var base time.Duration
	if aIn && bIn {
		base = n.profile.Base[n.topo.Distance(ra, rb)]
	} else {
		base = n.profile.ClientLatency
	}
	d := time.Duration(float64(base) * n.profile.Jitter.Sample(n.rng))
	if n.profile.BandwidthBytesPerSec > 0 && bytes > 0 {
		d += time.Duration(float64(bytes) / n.profile.BandwidthBytesPerSec * float64(time.Second))
	}
	d += n.degraded[k]
	if d < 0 {
		d = 0
	}
	return d, true
}

// Partition cuts the link between a and b bidirectionally.
func (n *Net) Partition(a, b ring.NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.cut[normKey(string(a), string(b))] = true
}

// Heal restores the link between a and b.
func (n *Net) Heal(a, b ring.NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.cut, normKey(string(a), string(b)))
}

// Isolate cuts every link touching id (node failure as seen by the network).
func (n *Net) Isolate(id ring.NodeID, peers []ring.NodeID) {
	for _, p := range peers {
		if p != id {
			n.Partition(id, p)
		}
	}
}

// Rejoin heals every link touching id.
func (n *Net) Rejoin(id ring.NodeID, peers []ring.NodeID) {
	for _, p := range peers {
		if p != id {
			n.Heal(id, p)
		}
	}
}

// Degrade adds extra one-way latency on the a<->b link (slow link injection).
func (n *Net) Degrade(a, b ring.NodeID, extra time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.degraded[normKey(string(a), string(b))] = extra
}

// ClearDegradations removes all injected slowness.
func (n *Net) ClearDegradations() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.degraded = make(map[linkKey]time.Duration)
}

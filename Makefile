# Harmony build/test entry points. CI (.github/workflows/ci.yml) runs the
# same targets humans do, so `make ci` locally reproduces the pipeline.

GO ?= go

.PHONY: build test test-race bench bench-smoke lint ci

build:
	$(GO) build ./...

# Tier-1 verify: the whole suite under virtual time.
test:
	$(GO) test ./...

test-race:
	$(GO) test -race -timeout 30m ./...

# Full figure regeneration through the testing.B harness (minutes).
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x -timeout 60m .

# Cheap CI smoke: micro-benchmarks across internal packages plus one
# end-to-end scenario sweep, a single iteration each, the hotcold
# per-group-vs-global comparison, and the regroup migrating-hotspot
# comparison (learned online regrouping vs build-time-pinned groups), each
# with JSON results (uploaded as CI artifacts).
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./internal/...
	$(GO) test -run '^$$' -bench 'BenchmarkScenarioStressProfiles|BenchmarkWorkloadAEventual' -benchtime 1x .
	$(GO) run ./cmd/harmony-bench -experiment hotcold -scenario grid5000 -ops 8000 -quiet -json out/hotcold.json
	$(GO) run ./cmd/harmony-bench -experiment regroup -ops 8000 -quiet -json out/regroup.json

lint:
	test -z "$$(gofmt -l .)" || { gofmt -l .; echo 'gofmt: files above need formatting'; exit 1; }
	$(GO) vet ./...

ci: lint build test-race bench-smoke

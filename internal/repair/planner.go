package repair

import (
	"sort"

	"harmony/internal/ring"
	"harmony/internal/wire"
)

// Plan is a node's static view of the repair topology: the token arcs it
// replicates and, per peer, the arcs the two of them both replicate — the
// scope of a pairwise repair session. Every node derives the same ring
// decomposition independently, so sessions agree on range boundaries
// without negotiation.
type Plan struct {
	// Ranges are the arcs this node replicates, one per ring vnode arc.
	Ranges []wire.TokenRange
	// Shared maps each peer to the arcs both nodes replicate.
	Shared map[ring.NodeID][]wire.TokenRange
	// Peers lists the keys of Shared in deterministic order (the scheduler's
	// round-robin order).
	Peers []ring.NodeID
}

// BuildPlan decomposes the ring into its vnode arcs and intersects replica
// sets: arc i is (token[i-1], token[i]] (the first arc wraps), replicated on
// strategy.Replicas(token[i]) — every key hashing into the arc has exactly
// that replica set, which is what makes the arc the unit of repair.
func BuildPlan(r *ring.Ring, strat ring.Strategy, self ring.NodeID) Plan {
	tokens := r.Tokens()
	p := Plan{Shared: make(map[ring.NodeID][]wire.TokenRange)}
	for i, tok := range tokens {
		prev := tokens[(i+len(tokens)-1)%len(tokens)]
		arc := wire.TokenRange{Start: uint64(prev), End: uint64(tok)}
		reps := strat.Replicas(r, tok)
		mine := false
		for _, rep := range reps {
			if rep == self {
				mine = true
				break
			}
		}
		if !mine {
			continue
		}
		p.Ranges = append(p.Ranges, arc)
		for _, rep := range reps {
			if rep != self {
				p.Shared[rep] = append(p.Shared[rep], arc)
			}
		}
	}
	p.Peers = make([]ring.NodeID, 0, len(p.Shared))
	for id := range p.Shared {
		p.Peers = append(p.Peers, id)
	}
	sort.Slice(p.Peers, func(i, j int) bool { return p.Peers[i] < p.Peers[j] })
	return p
}

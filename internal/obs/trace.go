package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Event kinds emitted by the control loop and the nodes. The trace is a
// vocabulary, not an enum: emitters may add kinds, and readers should treat
// unknown kinds as opaque.
const (
	// EventLevel records a key group's consistency level changing: From/To
	// carry the old and new levels, Estimate/Tolerance/Xn the observation
	// and model output that triggered the flip.
	EventLevel = "level"
	// EventRegroup records a grouping epoch installing: Epoch is the new
	// epoch, Detail summarizes the assignment (groups, shifted weight).
	EventRegroup = "regroup"
	// EventDivergenceHold / EventDivergenceRelease bracket the interval a
	// group is pinned at >= quorum because unrepaired divergence alone
	// breaches its tolerance.
	EventDivergenceHold    = "divergence-hold"
	EventDivergenceRelease = "divergence-release"
	// EventAvailabilityClamp records the controller lowering a group's
	// commanded level because the failure detector reports too few live
	// members to serve it: From is the demanded level, To the clamped one.
	EventAvailabilityClamp = "availability-clamp"
	// EventSession records a group being served at the SESSION tier instead
	// of the level the estimator demanded (From carries the overridden
	// level).
	EventSession = "session"
	// EventGroupUpdate records a storage node applying a broadcast
	// GroupUpdate (the node-side half of a regroup).
	EventGroupUpdate = "group-update"
)

// Event is one structured control-loop decision record. Numeric fields are
// meaningful per kind (see the kind constants); unused fields are zero and
// omitted from JSON.
type Event struct {
	// Seq is the trace-assigned monotone sequence number; gaps after a
	// wrap tell readers how many events they missed.
	Seq uint64 `json:"seq"`
	// AtMs is the event's wall-clock Unix milliseconds — comparable across
	// the processes of a live cluster, which share a host clock.
	AtMs int64 `json:"at_ms"`
	// Kind is one of the Event* constants (or an emitter extension).
	Kind string `json:"kind"`
	// Node identifies the emitting process ("" for the controller).
	Node string `json:"node,omitempty"`
	// Group is the key group the event concerns (-1 for the global stream).
	Group int `json:"group"`
	// Epoch is the grouping epoch in force when the event fired.
	Epoch uint64 `json:"epoch,omitempty"`
	// From/To are consistency-level names for level transitions.
	From string `json:"from,omitempty"`
	To   string `json:"to,omitempty"`
	// Estimate/Tolerance/Xn/Divergence echo the decision inputs that
	// triggered the event.
	Estimate   float64 `json:"estimate,omitempty"`
	Tolerance  float64 `json:"tolerance,omitempty"`
	Xn         int     `json:"xn,omitempty"`
	Divergence float64 `json:"divergence,omitempty"`
	// Detail is a free-form human-readable elaboration.
	Detail string `json:"detail,omitempty"`
}

// Trace is a bounded, concurrency-safe ring buffer of Events. Appends never
// block and never allocate beyond the fixed buffer; when full, the oldest
// event is overwritten (Dropped counts the overwrites). The sequence number
// is assigned at append time and strictly increases, so a reader polling
// Since(lastSeq) observes every retained event exactly once and can detect
// loss from sequence gaps.
type Trace struct {
	mu   sync.Mutex
	buf  []Event
	next uint64 // next sequence number == total events ever appended
}

// NewTrace returns a trace retaining the last capacity events (minimum 16).
func NewTrace(capacity int) *Trace {
	if capacity < 16 {
		capacity = 16
	}
	return &Trace{buf: make([]Event, capacity)}
}

// Add stamps the event's sequence number (and AtMs, when zero) and appends
// it, overwriting the oldest retained event if the ring is full. It returns
// the assigned sequence number. A nil trace drops the event.
func (t *Trace) Add(e Event) uint64 {
	if t == nil {
		return 0
	}
	if e.AtMs == 0 {
		e.AtMs = time.Now().UnixMilli()
	}
	t.mu.Lock()
	t.next++
	e.Seq = t.next
	t.buf[int((t.next-1)%uint64(len(t.buf)))] = e
	t.mu.Unlock()
	return e.Seq
}

// Len reports how many events are retained (<= capacity).
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.next < uint64(len(t.buf)) {
		return int(t.next)
	}
	return len(t.buf)
}

// Dropped reports how many events have been overwritten.
func (t *Trace) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.next <= uint64(len(t.buf)) {
		return 0
	}
	return t.next - uint64(len(t.buf))
}

// Events returns the retained events, oldest first.
func (t *Trace) Events() []Event { return t.Since(0) }

// Since returns the retained events with Seq > seq, oldest first. Polling
// readers pass the last Seq they saw; a first event whose Seq exceeds
// seq+1 means the ring wrapped past them.
func (t *Trace) Since(seq uint64) []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	total := t.next
	n := uint64(len(t.buf))
	start := uint64(0)
	if total > n {
		start = total - n
	}
	if seq > start {
		start = seq
	}
	if start >= total {
		return nil
	}
	out := make([]Event, 0, total-start)
	for s := start; s < total; s++ {
		out = append(out, t.buf[int(s%n)])
	}
	return out
}

// WriteJSONL writes the events with Seq > since as JSON Lines, oldest
// first — the dump format of the admin endpoint's /trace.
func (t *Trace) WriteJSONL(w io.Writer, since uint64) error {
	enc := json.NewEncoder(w)
	for _, e := range t.Since(since) {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return nil
}

// Package cluster implements the replicated key-value store Harmony tunes: a
// Dynamo/Cassandra-style system where every node can coordinate client
// operations over the token ring, writes propagate asynchronously to all
// replicas while the coordinator blocks for only as many acknowledgements as
// the operation's consistency level demands, and reads reconcile replica
// responses by timestamp with background read repair (the exact quorum
// machinery of the paper's §II-B and Fig. 1).
//
// Node logic is event-driven and single-threaded per node: all message and
// timer callbacks execute on the node's sim.Runtime. The same code therefore
// runs under the discrete-event simulator, on real-time in-process mailboxes,
// and behind the TCP server.
package cluster

import (
	"fmt"
	"math/rand"
	"time"

	"harmony/internal/obs"
	"harmony/internal/repair"
	"harmony/internal/ring"
	"harmony/internal/sim"
	"harmony/internal/storage"
	"harmony/internal/transport"
	"harmony/internal/versioning"
	"harmony/internal/wire"
)

// Config parameterizes a storage node.
type Config struct {
	ID       ring.NodeID
	Ring     *ring.Ring
	Strategy ring.Strategy

	// ReadTimeout bounds how long a coordinator waits for enough replica
	// read responses; zero means 1s.
	ReadTimeout time.Duration
	// WriteTimeout bounds how long a coordinator waits for enough mutation
	// acks; zero means 1s.
	WriteTimeout time.Duration
	// SessionRetry is how long a SESSION read coordinator waits before
	// re-polling replicas when no response yet covers the client's session
	// token (the acked write is still propagating, or a down replica holds
	// it). Zero means 25ms. The read still fails with the normal
	// ReadTimeout when the token can never be satisfied.
	SessionRetry time.Duration
	// ReadRepairChance is the probability that a read fans out to every
	// replica (still blocking only for the consistency level) and issues
	// background repairs to stale ones — Cassandra's read_repair_chance.
	// Reads that lose the coin flip contact exactly the replicas the level
	// requires, which is what gives weaker levels their capacity and
	// latency advantage.
	ReadRepairChance float64
	// HintedHandoff queues mutations for replicas the failure detector
	// considers down and replays them when the replica returns.
	HintedHandoff bool
	// HintReplayInterval is how often queued hints are retried; zero means
	// 10s.
	HintReplayInterval time.Duration
	// HintQueueLimit caps the total hints queued across all down peers;
	// once full, further mutations for down replicas are DROPPED (counted
	// in Metrics.HintsDropped) — the durability gap Cassandra's bounded
	// hint windows have, and exactly the divergence anti-entropy repair
	// exists to catch. Zero means unlimited.
	HintQueueLimit int
	// Repair enables the anti-entropy subsystem: background Merkle-tree
	// sessions with replica peers that bound how long a recovered node can
	// serve stale data (see internal/repair).
	Repair repair.Options
	// Engine configures the local storage engine.
	Engine storage.Options
	// Groups is the number of key groups the node tallies separately for
	// the monitoring pipeline; zero or negative means one. Group counters
	// ride on StatsResponse so the monitor can derive per-group arrival
	// rates and the controller can adapt each group independently.
	Groups int
	// GroupFn maps a key to its group in [0, Groups); nil assigns every
	// key to group 0. Out-of-range results are clamped into range. The
	// function runs on every coordinated operation, so it must be cheap
	// and must not retain the key slice. Groups and GroupFn are only the
	// initial assignment: a wire.GroupUpdate from the regrouping subsystem
	// atomically replaces both at runtime (see applyGroupUpdate).
	GroupFn func(key []byte) int
	// KeySampleLimit enables per-key access sampling for the online
	// regrouping loop: each coordinated read/write is tallied into a
	// decayed per-key sampler and the top KeySampleLimit keys ride on
	// every StatsResponse. Zero disables sampling (no per-op overhead,
	// lean stats frames).
	KeySampleLimit int
	// KeyStatsDecay is the multiplicative decay applied to the sampler's
	// weights on every stats poll; outside (0, 1] means 0.5. Lower values
	// forget migrated-away hotspots faster.
	KeyStatsDecay float64
	// MaxInFlight bounds the coordinator ops (reads + writes) this node
	// holds open at once. At the bound further client requests are shed
	// immediately with wire.ErrOverloaded instead of queueing work that
	// would only time out — the fail-fast half of overload protection;
	// clients treat the error as retryable against another coordinator.
	// Zero means unlimited.
	MaxInFlight int
	// Alive reports whether a peer is believed up; nil means always true.
	// Wire a gossip.Detector's Alive method here for failure awareness.
	Alive func(ring.NodeID) bool
	// AliveCount reports how many cluster members (including this node)
	// the failure detector currently believes are up. Nil leaves
	// StatsResponse.AliveMembers zero, which tells the monitor no liveness
	// signal is available and disables the controller's availability
	// clamp.
	AliveCount func() int
	// Rand drives the read-repair coin flips; nil seeds a default source.
	// Only ever used from the node's runtime.
	Rand *rand.Rand
	// OpHist, when set, records coordinated read/write latency (request
	// arrival to client response) keyed by operation kind × achieved
	// consistency level. Nil keeps the hot paths identical to a node built
	// without observability.
	OpHist *obs.OpLevelHist
	// Trace, when set, receives node-side control events (grouping-epoch
	// installs). Nil disables tracing.
	Trace *obs.Trace
}

// Metrics are a node's cumulative counters. Access through Snapshot.
type Metrics struct {
	Reads         uint64 // client reads coordinated
	Writes        uint64 // client writes coordinated
	ReplicaOps    uint64 // replica-level reads+mutations served
	BytesRead     uint64
	BytesWritten  uint64
	RepairsSent   uint64
	HintsQueued   uint64
	HintsReplayed uint64
	// HintsDropped counts mutations lost to hint-queue overflow or an
	// explicit DropHints (simulated coordinator crash) — divergence only
	// anti-entropy repair can heal.
	HintsDropped  uint64
	ReadTimeouts  uint64
	WriteTimeouts uint64
	Unavailable   uint64 // operations failed fast for lack of live replicas
	Overloaded    uint64 // operations shed at the MaxInFlight bound
	// RepairRows / RepairAgeMs are the anti-entropy divergence gauge: rows
	// a repair session changed on THIS node (it held stale or missing data)
	// and their summed age at heal time. See wire.StatsResponse.
	RepairRows  uint64
	RepairAgeMs uint64
	// ShadowSamples counts reads that carried the dual-read staleness probe
	// (§V-F); ShadowStale counts how many of those returned a value older
	// than the freshest replica held at read time.
	ShadowSamples uint64
	ShadowStale   uint64
	// LevelUse tallies coordinated reads per consistency level (index by
	// wire.ConsistencyLevel). Slot 0 is unused.
	LevelUse [8]uint64
	// SessionUpgrades counts SESSION reads whose first replica's answer did
	// not cover the client's token, forcing a fan-out to the remaining live
	// replicas; SessionRepolls counts the rarer re-poll rounds after even
	// the full fan-in came back short. Their complement — SESSION reads
	// absent from both — ran at single-replica cost.
	SessionUpgrades uint64
	SessionRepolls  uint64
	// GroupReads / GroupWrites tally coordinated operations per key group
	// (index by group id, length = the node's current group count). They
	// partition the traffic coordinated since the current grouping epoch
	// began: group counters re-baseline to zero when a GroupUpdate applies,
	// because the old groups no longer exist (the aggregate Reads/Writes
	// above stay cumulative since process start).
	GroupReads  []uint64
	GroupWrites []uint64
	// GroupBytesWritten tallies coordinated write payload bytes per key
	// group, so the monitor can derive per-group mean write sizes.
	GroupBytesWritten []uint64
	// GroupShadowSamples / GroupShadowStale split the dual-read staleness
	// probe counters by key group.
	GroupShadowSamples []uint64
	GroupShadowStale   []uint64
	// GroupRepairRows / GroupRepairAgeMs split the divergence gauge by key
	// group, so the controller can tighten exactly the groups a recovering
	// replica serves stale.
	GroupRepairRows  []uint64
	GroupRepairAgeMs []uint64
	// GroupLevelUse splits LevelUse by key group (one [8]uint64 per group,
	// indexed by wire.ConsistencyLevel): which level each group's traffic
	// actually ran at since the current grouping epoch began. Reads and
	// writes both tally into it.
	GroupLevelUse [][8]uint64
	// GroupEpoch is the grouping epoch the group counters belong to (zero
	// until the first GroupUpdate applies).
	GroupEpoch uint64
}

type readOp struct {
	id        uint64
	key       []byte
	client    ring.NodeID
	clientID  uint64
	need      int
	total     int
	got       []wire.ReplicaReadResp
	from      []ring.NodeID
	responded bool
	finished  bool
	respTS    int64 // timestamp of the value returned to the client
	respAt    int64 // virtual UnixNano when the client response was sent
	shadow    bool
	group     int
	epoch     uint64 // grouping epoch op.group belongs to
	level     wire.ConsistencyLevel
	cancel    func()
	// Blocking read repair (CL=ALL, paper Fig. 1): the response to the
	// client waits until stale replicas acknowledge their repair.
	blockedOnRepair bool
	repairAcksLeft  int
	repairIDs       []uint64
	// SESSION state: the client's normalized token, the full live replica
	// set held back for escalation, how many replicas were dead at issue
	// time, and how many re-poll rounds have run.
	token     versioning.Clock
	sessLive  []ring.NodeID
	sessDead  int
	escalated bool
	repolls   int
	// start is the coordination start time, set only when the node records
	// op latency (cfg.OpHist != nil).
	start time.Time
}

type writeOp struct {
	id        uint64
	client    ring.NodeID
	clientID  uint64
	need      int
	total     int // mutations actually sent (excludes hinted replicas)
	acks      int
	responded bool
	ts        int64
	clock     []wire.ClockEntry // stamped on the value; echoed to the client
	cancel    func()
	level     wire.ConsistencyLevel
	// start is the coordination start time, set only when the node records
	// op latency (cfg.OpHist != nil).
	start time.Time
}

// Node is one storage server.
type Node struct {
	cfg    Config
	rt     sim.Runtime
	send   transport.Sender
	engine *storage.Engine

	nextOp            uint64
	pendingReads      map[uint64]*readOp
	pendingWrites     map[uint64]*writeOp
	pendingRepairAcks map[uint64]*readOp // blocking read-repair mutation id -> read
	hints             map[ring.NodeID][]wire.Mutation
	hintCount         int
	hintStop          func()
	lastTS            int64
	antiEntropy       *repair.Manager // nil unless cfg.Repair.Enabled

	// Live grouping state, initialized from Config and atomically replaced
	// by applyGroupUpdate. Only touched on the node's runtime.
	epoch   uint64
	groups  int
	groupFn func(key []byte) int
	sampler *keySampler

	counters nodeCounters
}

// New creates a node bound to a runtime and a message fabric. Call Start to
// begin background maintenance (hint replay).
func New(cfg Config, rt sim.Runtime, send transport.Sender) *Node {
	if cfg.ReadTimeout <= 0 {
		cfg.ReadTimeout = time.Second
	}
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = time.Second
	}
	if cfg.SessionRetry <= 0 {
		cfg.SessionRetry = 25 * time.Millisecond
	}
	if cfg.HintReplayInterval <= 0 {
		cfg.HintReplayInterval = 10 * time.Second
	}
	if cfg.Alive == nil {
		cfg.Alive = func(ring.NodeID) bool { return true }
	}
	if cfg.Rand == nil {
		cfg.Rand = rand.New(rand.NewSource(int64(len(cfg.ID)) + 1))
	}
	if cfg.Groups < 1 {
		cfg.Groups = 1
	}
	n := &Node{
		cfg:               cfg,
		rt:                rt,
		send:              send,
		pendingReads:      make(map[uint64]*readOp),
		pendingWrites:     make(map[uint64]*writeOp),
		pendingRepairAcks: make(map[uint64]*readOp),
		hints:             make(map[ring.NodeID][]wire.Mutation),
		groups:            cfg.Groups,
		groupFn:           cfg.GroupFn,
	}
	n.counters.groups.Store(newGroupTallies(0, cfg.Groups))
	engOpts := cfg.Engine
	if cfg.Repair.Enabled {
		// Every accepted mutation — foreground writes, read repair, hint
		// replays, repair streams — folds its digest delta into the Merkle
		// leaf it lands in (the displaced version's digest out, the new
		// version's in), so anti-entropy trees stay current without
		// whole-arc rebuild scans. The hook runs on the node's runtime,
		// which serializes it against repair session handling.
		userHook := engOpts.OnReplace
		engOpts.OnReplace = func(key []byte, old wire.Value, hadOld bool, v wire.Value) {
			if n.antiEntropy != nil {
				n.antiEntropy.Applied(key, old, hadOld, v)
			}
			if userHook != nil {
				userHook(key, old, hadOld, v)
			}
		}
	}
	n.engine = storage.NewEngine(engOpts)
	if cfg.Repair.Enabled {
		n.antiEntropy = repair.NewManager(repair.Config{
			Self:     cfg.ID,
			Ring:     cfg.Ring,
			Strategy: cfg.Strategy,
			Engine:   n.engine,
			Options:  cfg.Repair,
			OnHealed: n.onRepairHealed,
		}, rt, send)
	}
	if cfg.KeySampleLimit > 0 {
		n.sampler = newKeySampler(cfg.KeyStatsDecay, 16*cfg.KeySampleLimit)
	}
	return n
}

// onRepairHealed tallies the divergence gauge: a repair session changed a
// row on this node, meaning reads here could have served it stale. Runs on
// the node's runtime (repair delivery path).
func (n *Node) onRepairHealed(key []byte, _ wire.Value, age time.Duration) {
	g := n.groupOf(key)
	ms := uint64(age.Milliseconds())
	n.counters.repairRows.Add(1)
	n.counters.repairAgeMs.Add(ms)
	if t := n.counters.groups.Load(); g < len(t.repairRows) {
		t.repairRows[g].Add(1)
		t.repairAgeMs[g].Add(ms)
	}
}

// groupOf assigns a key to its telemetry group, clamping group-function
// results into the current epoch's range.
func (n *Node) groupOf(key []byte) int {
	if n.groupFn == nil {
		return 0
	}
	g := n.groupFn(key)
	if g < 0 || g >= n.groups {
		return 0
	}
	return g
}

// Epoch reports the node's current grouping epoch (tests).
func (n *Node) Epoch() uint64 {
	return n.counters.groups.Load().epoch
}

// ID returns the node's identity.
func (n *Node) ID() ring.NodeID { return n.cfg.ID }

// Engine exposes the local storage engine (read-only inspection in tests).
func (n *Node) Engine() *storage.Engine { return n.engine }

// Start launches background maintenance. It must be called from the node's
// runtime context (or before the fabric starts delivering messages).
func (n *Node) Start() {
	if n.cfg.HintedHandoff && n.hintStop == nil {
		n.hintStop = tick(n.rt, n.cfg.HintReplayInterval, n.replayHints)
	}
	if n.antiEntropy != nil {
		n.antiEntropy.Start()
	}
}

// Stop cancels background maintenance and closes the storage engine —
// a final fsync round plus data-dir lock release for persistent engines,
// a no-op for the in-memory default.
func (n *Node) Stop() {
	if n.hintStop != nil {
		n.hintStop()
		n.hintStop = nil
	}
	if n.antiEntropy != nil {
		n.antiEntropy.Stop()
	}
	_ = n.engine.Close()
}

// RepairManager exposes the node's anti-entropy manager (nil when repair is
// disabled) for recovery triggers and tests.
func (n *Node) RepairManager() *repair.Manager { return n.antiEntropy }

// tick implements a runtime-generic ticker (sim.Sim has a native one, but a
// node only holds the Runtime interface). sim.Every's stop function is safe
// to call from outside the node's runtime goroutine.
func tick(rt sim.Runtime, every time.Duration, fn func()) (stop func()) {
	return sim.Every(rt, func() time.Duration { return every }, fn)
}

// Snapshot returns a copy of the node's metrics. Counters load atomically
// and independently (see nodeCounters); the per-group slices are owned by
// the returned value.
func (n *Node) Snapshot() Metrics {
	return n.counters.snapshot()
}

// nextTimestamp returns a strictly increasing write timestamp even when
// multiple writes are coordinated within one virtual instant.
func (n *Node) nextTimestamp() int64 {
	ts := n.rt.Now().UnixNano()
	if ts <= n.lastTS {
		ts = n.lastTS + 1
	}
	n.lastTS = ts
	return ts
}

func (n *Node) opID() uint64 {
	n.nextOp++
	return n.nextOp
}

// Deliver dispatches an incoming message. It always runs on the node's
// runtime.
func (n *Node) Deliver(from ring.NodeID, m wire.Message) {
	switch msg := m.(type) {
	case wire.ReadRequest:
		n.coordinateRead(from, msg)
	case wire.WriteRequest:
		n.coordinateWrite(from, msg)
	case wire.ReplicaRead:
		n.serveReplicaRead(from, msg)
	case wire.ReplicaReadResp:
		n.onReplicaReadResp(from, msg)
	case wire.Mutation:
		n.applyMutation(from, msg)
	case wire.MutationAck:
		n.onMutationAck(from, msg)
	case wire.Repair:
		n.applyRepair(msg)
	case wire.StatsRequest:
		n.serveStats(from, msg)
	case wire.GroupUpdate:
		n.applyGroupUpdate(msg)
	case wire.TreeRequest, wire.TreeResponse, wire.RangeSync:
		if n.antiEntropy != nil {
			n.antiEntropy.Deliver(from, msg)
		}
	case wire.Ping:
		n.send.Send(n.cfg.ID, from, wire.Pong{ID: msg.ID, Sent: msg.Sent})
	}
}

// replicasFor returns the replica set for key ordered by proximity to this
// coordinator, so the closest replicas are contacted (and waited on) first.
func (n *Node) replicasFor(key []byte) []ring.NodeID {
	reps := ring.ReplicasForKey(n.cfg.Ring, n.cfg.Strategy, key)
	n.cfg.Ring.Topology().SortByProximity(n.cfg.ID, reps)
	return reps
}

// shedOverload fails a client op fast when the coordinator's in-flight
// bound is hit; true means the op was shed and must not start.
func (n *Node) shedOverload(client ring.NodeID, reqID uint64) bool {
	if n.cfg.MaxInFlight <= 0 || len(n.pendingReads)+len(n.pendingWrites) < n.cfg.MaxInFlight {
		return false
	}
	n.counters.overloaded.Add(1)
	n.send.Send(n.cfg.ID, client, wire.Error{ID: reqID, Code: wire.ErrOverloaded, Msg: "coordinator at capacity"})
	return true
}

// opTimeout clamps a configured coordinator timeout to the client's
// remaining deadline budget, so work the client has already given up on is
// shed at its deadline instead of held to the server's larger timeout.
func opTimeout(configured time.Duration, deadlineMs uint64) time.Duration {
	// An absurd budget (beyond an hour) is treated as absent rather than
	// risking Duration overflow in the multiply.
	if deadlineMs == 0 || deadlineMs > uint64(time.Hour/time.Millisecond) {
		return configured
	}
	if d := time.Duration(deadlineMs) * time.Millisecond; d < configured {
		return d
	}
	return configured
}

// --- Read path -----------------------------------------------------------

func (n *Node) coordinateRead(client ring.NodeID, req wire.ReadRequest) {
	if n.shedOverload(client, req.ID) {
		return
	}
	reps := n.replicasFor(req.Key)
	if len(reps) == 0 {
		n.send.Send(n.cfg.ID, client, wire.Error{ID: req.ID, Code: wire.ErrUnavailable, Msg: "no replicas"})
		return
	}
	level := req.Level
	// The blocked-for count resolves against the FULL replica set (quorum
	// means quorum of RF, not of the survivors), but only replicas the
	// failure detector believes up are contacted — Cassandra coordinators
	// likewise never wait on convicted endpoints. Too few live replicas
	// fails fast as unavailable instead of burning the read timeout.
	need := level.BlockFor(len(reps))
	live := reps
	dead := 0
	for _, r := range reps {
		if !n.cfg.Alive(r) {
			dead++
		}
	}
	if dead > 0 {
		live = make([]ring.NodeID, 0, len(reps)-dead)
		for _, r := range reps {
			if n.cfg.Alive(r) {
				live = append(live, r)
			}
		}
	}
	if len(live) < need {
		n.counters.unavailable.Add(1)
		n.send.Send(n.cfg.ID, client, wire.Error{ID: req.ID, Code: wire.ErrUnavailable, Msg: "not enough live replicas"})
		return
	}
	// Shadow probes need every replica's version for the staleness
	// comparison; otherwise a read fans out to all replicas only when it
	// wins the read-repair coin flip (Cassandra's read_repair_chance).
	fanAll := req.Shadow ||
		(n.cfg.ReadRepairChance > 0 && n.cfg.Rand.Float64() < n.cfg.ReadRepairChance)
	targets := live
	if !fanAll && need < len(live) {
		targets = live[:need]
	}
	op := &readOp{
		id:       n.opID(),
		key:      req.Key,
		client:   client,
		clientID: req.ID,
		need:     need,
		total:    len(targets),
		shadow:   req.Shadow,
		group:    n.groupOf(req.Key),
		epoch:    n.epoch,
		level:    level,
	}
	if level == wire.Session {
		op.token = versioning.Normalize(versioning.Clock(req.Token))
		op.sessLive = live
		op.sessDead = dead
	}
	if n.cfg.OpHist != nil {
		op.start = n.rt.Now()
	}
	n.pendingReads[op.id] = op
	if n.sampler != nil {
		n.sampler.observe(req.Key, 1, 0)
	}
	n.counters.reads.Add(1)
	tallies := n.counters.groups.Load()
	tallies.reads[op.group].Add(1)
	if level >= 1 && int(level) < len(n.counters.levelUse) {
		n.counters.levelUse[level].Add(1)
		tallies.bumpLevelUse(op.group, level)
	}
	if req.Shadow {
		n.counters.shadowSamples.Add(1)
		tallies.shadowSamples[op.group].Add(1)
	}
	op.cancel = n.rt.After(opTimeout(n.cfg.ReadTimeout, req.DeadlineMs), func() { n.readTimeout(op.id) })
	for _, r := range targets {
		n.send.Send(n.cfg.ID, r, wire.ReplicaRead{ID: op.id, Key: req.Key})
	}
}

func (n *Node) serveReplicaRead(from ring.NodeID, req wire.ReplicaRead) {
	v, ok := n.engine.Get(req.Key)
	n.counters.replicaOps.Add(1)
	if ok {
		n.counters.bytesRead.Add(uint64(len(v.Data)))
	}
	n.send.Send(n.cfg.ID, from, wire.ReplicaReadResp{ID: req.ID, Found: ok, Value: v})
}

func (n *Node) onReplicaReadResp(from ring.NodeID, resp wire.ReplicaReadResp) {
	op, ok := n.pendingReads[resp.ID]
	if !ok {
		return
	}
	op.got = append(op.got, resp)
	op.from = append(op.from, from)
	if !op.responded && !op.blockedOnRepair && len(op.got) >= op.need {
		if op.level == wire.Session {
			n.sessionProgress(op)
		} else {
			n.respondRead(op)
		}
	}
	if !op.finished && len(op.got) >= op.total {
		n.finishRead(op)
	}
}

// sessionProgress drives a SESSION read toward a token-covering answer: the
// moment any response covers the client's token the read completes (usually
// the very first, at single-replica cost); otherwise the coordinator widens
// to every live replica, and when even the full fan-in comes back short it
// re-polls. With no dead replicas one grace re-poll suffices — an acked
// write is always applied on some live replica before its ack, so a still-
// uncovered token after full fan-in can only be a watermark raised by a
// DIFFERENT key in the session's token bucket — and the read then answers
// with the newest version found. With dead replicas the coordinator keeps
// re-polling (the cover may be replicating from a hint or repair) and lets
// the ordinary read timeout report honest unavailability rather than ever
// serving the session a regression.
func (n *Node) sessionProgress(op *readOp) {
	best, _ := newest(op.got)
	if versioning.Covers(versioning.Clock(best.Clock), best.Timestamp, op.token) {
		n.respondRead(op)
		return
	}
	if len(op.got) < op.total {
		return // stragglers may still cover
	}
	if !op.escalated {
		op.escalated = true
		if op.total < len(op.sessLive) {
			n.counters.sessionUpgrades.Add(1)
			for _, r := range op.sessLive[op.total:] {
				n.send.Send(n.cfg.ID, r, wire.ReplicaRead{ID: op.id, Key: op.key})
			}
			op.total = len(op.sessLive)
			return
		}
	}
	if op.sessDead == 0 && op.repolls >= 1 {
		n.respondRead(op) // watermark false positive; answer the newest version
		return
	}
	op.repolls++
	n.counters.sessionRepolls.Add(1)
	opID := op.id
	n.rt.After(n.cfg.SessionRetry, func() { n.sessionRepoll(opID) })
}

// sessionRepoll re-contacts every live replica of a still-unsatisfied
// SESSION read. Duplicate responses are harmless: newest() is idempotent and
// the op completes on the first covering answer.
func (n *Node) sessionRepoll(id uint64) {
	op, ok := n.pendingReads[id]
	if !ok || op.responded {
		return
	}
	for _, r := range op.sessLive {
		n.send.Send(n.cfg.ID, r, wire.ReplicaRead{ID: op.id, Key: op.key})
	}
	op.total += len(op.sessLive)
}

// newest returns the freshest value among the responses (ok=false when no
// replica had the key).
func newest(got []wire.ReplicaReadResp) (wire.Value, bool) {
	var best wire.Value
	found := false
	for _, r := range got {
		if !r.Found {
			continue
		}
		if !found || r.Value.Fresh(best) {
			best = r.Value
			found = true
		}
	}
	return best, found
}

func (n *Node) respondRead(op *readOp) {
	best, found := newest(op.got)
	// Paper Fig. 1, strong consistency: when replicas disagree at CL=ALL,
	// the coordinator first writes the newest version to the out-of-date
	// replicas, waits for their acks, and only then answers the client.
	if op.level == wire.All && found {
		for i, r := range op.got {
			if !r.Found || best.Fresh(r.Value) {
				id := n.opID()
				op.repairAcksLeft++
				op.repairIDs = append(op.repairIDs, id)
				n.pendingRepairAcks[id] = op
				n.send.Send(n.cfg.ID, op.from[i], wire.Mutation{ID: id, Key: op.key, Value: best})
				n.counters.repairsSent.Add(1)
			}
		}
		if op.repairAcksLeft > 0 {
			op.blockedOnRepair = true
			return
		}
	}
	n.sendReadResponse(op, best, found)
}

func (n *Node) sendReadResponse(op *readOp, v wire.Value, found bool) {
	op.responded = true
	op.respTS = v.Timestamp
	op.respAt = n.rt.Now().UnixNano()
	if n.cfg.OpHist != nil && !op.start.IsZero() {
		n.cfg.OpHist.Record(obs.OpRead, op.level, n.rt.Now().Sub(op.start))
	}
	resp := wire.ReadResponse{ID: op.clientID, Found: found && !v.Tombstone, Value: v, Achieved: op.level}
	n.send.Send(n.cfg.ID, op.client, resp)
	if op.finished {
		n.cleanupRead(op)
	}
}

// finishRead runs once every contacted replica answered: background read
// repair and the shadow staleness comparison.
func (n *Node) finishRead(op *readOp) {
	op.finished = true
	best, found := newest(op.got)
	if op.shadow && op.responded && found {
		// The read was stale if some replica held a version that (a) is
		// newer than what we returned and (b) was written before we
		// responded — i.e. the client could have observed it.
		if best.Timestamp > op.respTS && best.Timestamp <= op.respAt {
			n.counters.shadowStale.Add(1)
			// A GroupUpdate may have re-baselined the group counters while
			// this read was in flight; its group id belongs to the
			// issue-time epoch, so drop the per-group sample rather than
			// attribute it to the new epoch's groups (the matching
			// GroupShadowSamples increment lives in the retired tallies).
			if t := n.counters.groups.Load(); op.epoch == t.epoch && op.group < len(t.shadowStale) {
				t.shadowStale[op.group].Add(1)
			}
		}
	}
	// Background repair; CL=ALL repairs synchronously in respondRead.
	if n.cfg.ReadRepairChance > 0 && found && op.level != wire.All {
		for i, r := range op.got {
			if !r.Found || best.Fresh(r.Value) {
				target := op.from[i]
				n.send.Send(n.cfg.ID, target, wire.Repair{Key: op.key, Value: best})
				n.counters.repairsSent.Add(1)
			}
		}
	}
	if op.responded {
		n.cleanupRead(op)
	}
}

func (n *Node) cleanupRead(op *readOp) {
	if op.cancel != nil {
		op.cancel()
	}
	delete(n.pendingReads, op.id)
	for _, id := range op.repairIDs {
		delete(n.pendingRepairAcks, id)
	}
}

// onRepairAck resumes a read blocked on synchronous repair; reports whether
// the ack belonged to one.
func (n *Node) onRepairAck(id uint64) bool {
	op, ok := n.pendingRepairAcks[id]
	if !ok {
		return false
	}
	delete(n.pendingRepairAcks, id)
	op.repairAcksLeft--
	if op.repairAcksLeft <= 0 && !op.responded {
		op.blockedOnRepair = false
		best, found := newest(op.got)
		n.sendReadResponse(op, best, found)
	}
	return true
}

func (n *Node) readTimeout(id uint64) {
	op, ok := n.pendingReads[id]
	if !ok {
		return
	}
	if !op.responded {
		n.counters.readTimeouts.Add(1)
		n.send.Send(n.cfg.ID, op.client, wire.Error{ID: op.clientID, Code: wire.ErrTimeout, Msg: "read timeout"})
		op.responded = true
	}
	// Repair with whatever arrived.
	if n.cfg.ReadRepairChance > 0 {
		if best, found := newest(op.got); found {
			for i, r := range op.got {
				if !r.Found || best.Fresh(r.Value) {
					n.send.Send(n.cfg.ID, op.from[i], wire.Repair{Key: op.key, Value: best})
					n.counters.repairsSent.Add(1)
				}
			}
		}
	}
	n.cleanupRead(op)
}

// --- Write path ----------------------------------------------------------

func (n *Node) coordinateWrite(client ring.NodeID, req wire.WriteRequest) {
	if n.shedOverload(client, req.ID) {
		return
	}
	reps := n.replicasFor(req.Key)
	if len(reps) == 0 {
		n.send.Send(n.cfg.ID, client, wire.Error{ID: req.ID, Code: wire.ErrUnavailable, Msg: "no replicas"})
		return
	}
	ts := req.TsHint
	if ts == 0 {
		ts = n.nextTimestamp()
	} else if ts > n.lastTS {
		// A client-stamped timestamp (retry idempotence: every attempt of
		// one logical write carries the identical hint, so a replayed
		// mutation LWW-collapses into the original instead of appearing as
		// a newer second write). Fold it into the monotonic counter so this
		// coordinator's own subsequent stamps stay strictly increasing.
		n.lastTS = ts
	}
	// Stamp the value's vector clock: the local copy's history (when this
	// coordinator is a replica of the key) merged with this write. The clock
	// is fixed here and replicated verbatim, so replicas never disagree on a
	// version's identity.
	var prev versioning.Clock
	if cur, ok := n.engine.Get(req.Key); ok {
		prev = versioning.Clock(cur.Clock)
	}
	clock := versioning.Stamp(prev, string(n.cfg.ID), uint64(ts))
	v := wire.Value{Data: req.Value, Timestamp: ts, Tombstone: req.Delete, Clock: clock}
	op := &writeOp{
		id:       n.opID(),
		client:   client,
		clientID: req.ID,
		need:     req.Level.BlockFor(len(reps)),
		ts:       ts,
		clock:    clock,
		level:    req.Level,
	}
	if n.cfg.OpHist != nil {
		op.start = n.rt.Now()
	}
	n.pendingWrites[op.id] = op
	group := n.groupOf(req.Key)
	if n.sampler != nil {
		n.sampler.observe(req.Key, 0, 1)
	}
	n.counters.writes.Add(1)
	n.counters.bytesWritten.Add(uint64(len(req.Value)))
	tallies := n.counters.groups.Load()
	tallies.writes[group].Add(1)
	tallies.bytesWritten[group].Add(uint64(len(req.Value)))
	if req.Level >= 1 && int(req.Level) < len(n.counters.levelUse) {
		tallies.bumpLevelUse(group, req.Level)
	}
	op.cancel = n.rt.After(opTimeout(n.cfg.WriteTimeout, req.DeadlineMs), func() { n.writeTimeout(op.id) })
	mut := wire.Mutation{ID: op.id, Key: req.Key, Value: v}
	for _, r := range reps {
		if !n.cfg.Alive(r) {
			// Convicted replicas are never contacted (they cannot ack, so
			// sending only burns the write timeout): the mutation is hinted
			// when handoff is on, or simply missed — divergence only read
			// repair or anti-entropy heals — when it is off.
			if n.cfg.HintedHandoff {
				n.queueHint(r, mut)
			}
			continue
		}
		op.total++
		n.send.Send(n.cfg.ID, r, mut)
	}
	if op.total < op.need {
		// Enough replicas are down (their mutations hinted) that the
		// requested level cannot be met: fail fast as unavailable rather
		// than burn the write timeout. The hints stay queued — the
		// surviving replicas and later replays still converge the data
		// even though this write reported failure.
		delete(n.pendingWrites, op.id)
		op.cancel()
		n.counters.unavailable.Add(1)
		n.send.Send(n.cfg.ID, client, wire.Error{ID: req.ID, Code: wire.ErrUnavailable, Msg: "not enough live replicas"})
	}
}

func (n *Node) applyMutation(from ring.NodeID, mut wire.Mutation) {
	_, err := n.engine.Apply(mut.Key, mut.Value)
	n.counters.replicaOps.Add(1)
	if err != nil {
		return // malformed mutation: no ack, coordinator times out
	}
	n.send.Send(n.cfg.ID, from, wire.MutationAck{ID: mut.ID})
}

func (n *Node) onMutationAck(from ring.NodeID, ack wire.MutationAck) {
	if n.onRepairAck(ack.ID) {
		return
	}
	if n.clearHintAck(from, ack.ID) {
		return
	}
	op, ok := n.pendingWrites[ack.ID]
	if !ok {
		return
	}
	op.acks++
	if !op.responded && op.acks >= op.need {
		op.responded = true
		if n.cfg.OpHist != nil && !op.start.IsZero() {
			n.cfg.OpHist.Record(obs.OpWrite, op.level, n.rt.Now().Sub(op.start))
		}
		n.send.Send(n.cfg.ID, op.client, wire.WriteResponse{ID: op.clientID, OK: true, Timestamp: op.ts, Clock: op.clock})
	}
	if op.acks >= op.total {
		if op.cancel != nil {
			op.cancel()
		}
		delete(n.pendingWrites, ack.ID)
	}
}

func (n *Node) writeTimeout(id uint64) {
	op, ok := n.pendingWrites[id]
	if !ok {
		return
	}
	delete(n.pendingWrites, id)
	if !op.responded {
		n.counters.writeTimeouts.Add(1)
		n.send.Send(n.cfg.ID, op.client, wire.Error{ID: op.clientID, Code: wire.ErrTimeout, Msg: "write timeout"})
	}
}

func (n *Node) applyRepair(r wire.Repair) {
	_, _ = n.engine.Apply(r.Key, r.Value)
	n.counters.replicaOps.Add(1)
}

// --- Hinted handoff ------------------------------------------------------

func (n *Node) queueHint(target ring.NodeID, mut wire.Mutation) {
	if n.cfg.HintQueueLimit > 0 && n.hintCount >= n.cfg.HintQueueLimit {
		// Queue full: the mutation for the down replica is lost, exactly
		// like Cassandra's bounded hint windows. Only anti-entropy repair
		// (or a lucky read repair) heals this divergence later.
		n.counters.hintsDropped.Add(1)
		return
	}
	mut.Hint = true
	mut.ID = n.opID() // hints get their own ack namespace
	n.hints[target] = append(n.hints[target], mut)
	n.hintCount++
	n.counters.hintDepth.Store(int64(n.hintCount))
	n.counters.hintsQueued.Add(1)
}

func (n *Node) replayHints() {
	for target, muts := range n.hints {
		if !n.cfg.Alive(target) {
			continue
		}
		for _, mut := range muts {
			n.send.Send(n.cfg.ID, target, mut)
			n.counters.hintsReplayed.Add(1)
		}
	}
}

// clearHintAck removes an acked hint; reports whether the ack was for a hint.
func (n *Node) clearHintAck(from ring.NodeID, id uint64) bool {
	muts, ok := n.hints[from]
	if !ok {
		return false
	}
	for i, mut := range muts {
		if mut.ID == id {
			n.hints[from] = append(muts[:i], muts[i+1:]...)
			if len(n.hints[from]) == 0 {
				delete(n.hints, from)
			}
			n.hintCount--
			n.counters.hintDepth.Store(int64(n.hintCount))
			return true
		}
	}
	return false
}

// PendingHints reports how many hints are queued (for tests).
func (n *Node) PendingHints() int {
	total := 0
	for _, muts := range n.hints {
		total += len(muts)
	}
	return total
}

// HintDepth reports the hint-queue depth. Unlike PendingHints it is safe
// from any goroutine — the admin scrape path's gauge.
func (n *Node) HintDepth() int { return int(n.counters.hintDepth.Load()) }

// DropHints discards every queued hint — the failure-injection stand-in for
// a coordinator crash losing its (memory- or disk-bounded) hint queues.
// Returns how many mutations were lost. Must run on the node's runtime.
func (n *Node) DropHints() int {
	dropped := n.hintCount
	n.hints = make(map[ring.NodeID][]wire.Mutation)
	n.hintCount = 0
	n.counters.hintDepth.Store(0)
	if dropped > 0 {
		n.counters.hintsDropped.Add(uint64(dropped))
	}
	return dropped
}

// --- Monitoring ----------------------------------------------------------

func (n *Node) serveStats(from ring.NodeID, req wire.StatsRequest) {
	s := n.Snapshot()
	resp := wire.StatsResponse{
		ID:          req.ID,
		Reads:       s.Reads,
		Writes:      s.Writes,
		ReplicaOps:  s.ReplicaOps,
		BytesRead:   s.BytesRead,
		BytesWrit:   s.BytesWritten,
		RepairsSent: s.RepairsSent,
		HintsQueued: s.HintsQueued,
		RepairRows:  s.RepairRows,
		RepairAgeMs: s.RepairAgeMs,
		Epoch:       s.GroupEpoch,
		// Constant after startup: rows the storage engine rebuilt from its
		// data dir (zero for memory-backed nodes). The monitor contrasts it
		// with RepairRows to split "recovered locally" from "healed by
		// anti-entropy" after a restart.
		RecoveredRows: uint64(n.engine.Recovered()),
	}
	if n.cfg.AliveCount != nil {
		if alive := n.cfg.AliveCount(); alive > 0 {
			resp.AliveMembers = uint64(alive)
		}
	}
	// A single implicit group carries no extra signal; keep the frame lean.
	if n.groups > 1 {
		resp.Groups = make([]wire.GroupCounters, n.groups)
		for g := 0; g < n.groups && g < len(s.GroupReads); g++ {
			resp.Groups[g] = wire.GroupCounters{
				Reads:        s.GroupReads[g],
				Writes:       s.GroupWrites[g],
				BytesWritten: s.GroupBytesWritten[g],
			}
			if g < len(s.GroupRepairRows) {
				resp.Groups[g].RepairRows = s.GroupRepairRows[g]
				resp.Groups[g].RepairAgeMs = s.GroupRepairAgeMs[g]
			}
		}
	}
	if n.sampler != nil {
		resp.KeySamples = n.sampler.export(n.cfg.KeySampleLimit)
	}
	n.send.Send(n.cfg.ID, from, resp)
}

// applyGroupUpdate installs a new grouping epoch broadcast by the
// regrouping subsystem: the node's group function and group count swap
// atomically with a counter re-baseline, so telemetry from the old epoch's
// groups is never attributed to the new epoch's. Updates apply exactly once
// per epoch — duplicates and stale epochs (including redeliveries of the
// current one) are ignored, which keeps the re-baseline from zeroing
// counters twice.
func (n *Node) applyGroupUpdate(u wire.GroupUpdate) {
	groups := len(u.Tolerances)
	if groups < 1 || u.Epoch <= n.epoch {
		return
	}
	def := int(u.Default)
	if def < 0 || def >= groups {
		def = groups - 1
	}
	assign := make(map[string]int, len(u.Entries))
	for _, e := range u.Entries {
		if g := int(e.Group); g >= 0 && g < groups {
			assign[string(e.Key)] = g
		}
	}
	n.epoch = u.Epoch
	n.groups = groups
	n.groupFn = func(key []byte) int {
		if g, ok := assign[string(key)]; ok {
			return g
		}
		return def
	}
	// One pointer swap re-baselines every per-group counter: readers that
	// loaded the old tallies keep incrementing the retired epoch's slices,
	// which snapshots no longer observe.
	n.counters.groups.Store(newGroupTallies(u.Epoch, groups))
	n.cfg.Trace.Add(obs.Event{
		Kind:   obs.EventGroupUpdate,
		Node:   string(n.cfg.ID),
		Group:  -1,
		Epoch:  u.Epoch,
		Detail: fmt.Sprintf("installed %d groups (%d pinned keys)", groups, len(u.Entries)),
	})
}

var _ transport.Handler = (*Node)(nil)

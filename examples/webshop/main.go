// Webshop: the paper's motivating low-tolerance application (§III). A shop
// selling items cannot serve stale inventory during a flash sale — a stale
// read can oversell — so it runs Harmony with a 5% tolerable stale-read
// rate. The example simulates a checkout rush on the EC2-like profile and
// compares what static eventual consistency would have returned against
// what Harmony served, using the dual-read staleness probe.
//
//	go run ./examples/webshop
package main

import (
	"fmt"
	"log"
	"time"

	"harmony/internal/client"
	"harmony/internal/cluster"
	"harmony/internal/core"
	"harmony/internal/sim"
	"harmony/internal/simnet"
	"harmony/internal/wire"
	"harmony/internal/ycsb"
)

func main() {
	s := sim.New(2026)
	spec := cluster.DefaultSpec()
	spec.Profile = simnet.EC2Profile() // the shop runs on cloud VMs
	c, err := cluster.BuildSim(s, spec)
	if err != nil {
		log.Fatal(err)
	}

	// The catalog: 2000 items, each with a stock counter.
	fmt.Println("loading 2000 catalog items...")
	loader, err := ycsb.NewRunner(ycsb.RunConfig{
		Workload: ycsb.Workload{
			Name: "catalog", ReadProportion: 1,
			RecordCount: 2000, ValueBytes: 256,
		},
		Threads: 1,
		Seed:    1,
	}, s, c)
	if err != nil {
		log.Fatal(err)
	}
	loader.Load()

	run := func(name string, levels client.LevelSource, mon *core.Monitor) (stale, probed uint64, p99 time.Duration) {
		runner, err := ycsb.NewRunner(ycsb.RunConfig{
			Workload: ycsb.Workload{
				// Flash sale: customers hammer a few hot items; every
				// purchase updates stock (heavy read-update).
				Name: name, ReadProportion: 0.5, UpdateProportion: 0.5,
				RecordCount: 2000, ValueBytes: 256,
				RequestDistribution: ycsb.DistZipfian,
			},
			Threads:     60,
			Levels:      levels,
			ShadowEvery: 2,
			Seed:        7,
		}, s, c)
		if err != nil {
			log.Fatal(err)
		}
		if mon != nil {
			mon.Start()
			defer mon.Stop()
		}
		rep, err := runner.RunMeasured(2*time.Second, 20000)
		if err != nil {
			log.Fatal(err)
		}
		return rep.StaleReads, rep.ShadowSamples, rep.ReadLatency.P99()
	}

	// Baseline: what the shop would get from static eventual consistency.
	stale, probed, p99 := run("flash-sale-eventual", client.Fixed(wire.One), nil)
	fmt.Printf("eventual consistency: %d/%d probed reads returned stale stock (p99 %v)\n",
		stale, probed, p99.Round(100*time.Microsecond))

	// Harmony with the web-shop policy: at most 5% stale reads.
	ctl := core.NewController(core.ControllerConfig{
		Policy:               core.Policy{Name: "webshop", ToleratedStaleRate: 0.05},
		N:                    spec.RF,
		AvgWriteBytes:        256,
		BandwidthBytesPerSec: spec.Profile.BandwidthBytesPerSec,
	})
	mon := core.NewMonitor(core.MonitorConfig{
		ID:             "webshop-monitor",
		Nodes:          c.NodeIDs(),
		Interval:       250 * time.Millisecond,
		ReplicaSetSize: spec.RF,
		OnObservation:  ctl.Observe,
	}, s, c.Bus)
	c.Net.Colocate("webshop-monitor", c.NodeIDs()[0])
	c.Bus.Register("webshop-monitor", s, mon)

	hStale, hProbed, hp99 := run("flash-sale-harmony", ctl, mon)
	d := ctl.Last()
	fmt.Printf("harmony (5%% tolerance): %d/%d probed reads stale (p99 %v)\n",
		hStale, hProbed, hp99.Round(100*time.Microsecond))
	fmt.Printf("harmony settled on level %s (estimate %.3f, Xn=%d)\n", d.Level, d.Estimate, d.Xn)

	evRate := float64(stale) / float64(probed)
	haRate := float64(hStale) / float64(hProbed)
	if evRate > 0 {
		fmt.Printf("stale-read rate cut by %.0f%% for the checkout path\n", (1-haRate/evRate)*100)
	}
	if haRate > 0.05 {
		fmt.Printf("note: measured rate %.1f%% exceeds the 5%% target for this short run\n", haRate*100)
	} else {
		fmt.Printf("measured stale rate %.2f%% is within the 5%% tolerance\n", haRate*100)
	}
}

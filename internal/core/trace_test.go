package core

import (
	"sync"
	"testing"

	"harmony/internal/obs"
	"harmony/internal/wire"
)

// One controller driven through a flip-inducing sequence must leave a trace
// whose level events exactly reconstruct the group's level trajectory.
func TestControllerTraceAccountsForLevelChanges(t *testing.T) {
	tr := obs.NewTrace(256)
	ctl := NewController(ControllerConfig{
		Policy: Policy{ToleratedStaleRate: 0.10},
		N:      5,
		Trace:  tr,
	})

	// ONE → quorum hold (divergence) → release back to ONE.
	ctl.Observe(obsWith(0, nil))
	ctl.Observe(obsWith(2.0, nil))
	ctl.Observe(obsWith(2.0, nil)) // steady: no new transition
	ctl.Observe(obsWith(0, nil))

	var levels, holds, releases []obs.Event
	for _, e := range tr.Events() {
		switch e.Kind {
		case obs.EventLevel:
			levels = append(levels, e)
		case obs.EventDivergenceHold:
			holds = append(holds, e)
		case obs.EventDivergenceRelease:
			releases = append(releases, e)
		}
	}
	if len(levels) != 2 {
		t.Fatalf("level events = %d (%v), want 2 (tighten + relax)", len(levels), levels)
	}
	if levels[0].From != "ONE" || levels[0].To == "ONE" {
		t.Fatalf("tighten event = %+v", levels[0])
	}
	if levels[1].To != "ONE" || levels[1].From != levels[0].To {
		t.Fatalf("relax event %+v does not mirror tighten %+v", levels[1], levels[0])
	}
	if levels[0].Estimate <= levels[0].Tolerance {
		t.Fatalf("tighten event estimate %.3f <= tolerance %.3f — no trigger recorded",
			levels[0].Estimate, levels[0].Tolerance)
	}
	if levels[0].Divergence != 2.0 {
		t.Fatalf("tighten event divergence = %v, want 2.0", levels[0].Divergence)
	}
	if len(holds) != 1 || len(releases) != 1 {
		t.Fatalf("hold/release events = %d/%d, want 1/1", len(holds), len(releases))
	}
	if holds[0].Seq >= releases[0].Seq {
		t.Fatalf("hold seq %d not before release seq %d", holds[0].Seq, releases[0].Seq)
	}
}

func TestControllerTraceSessionOverride(t *testing.T) {
	tr := obs.NewTrace(64)
	ctl := NewController(ControllerConfig{
		Policy:        Policy{ToleratedStaleRate: 0.10},
		N:             3,
		Trace:         tr,
		SessionGroups: []bool{true},
	})
	ctl.Observe(obsWith(0, nil))
	ctl.Observe(obsWith(2.0, nil))

	var sess []obs.Event
	for _, e := range tr.Events() {
		if e.Kind == obs.EventSession {
			sess = append(sess, e)
		}
	}
	if len(sess) != 1 {
		t.Fatalf("session events = %d, want 1", len(sess))
	}
	if sess[0].To != "SESSION" || sess[0].From == "SESSION" || sess[0].From == "ONE" {
		t.Fatalf("session event = %+v, want demanded level -> SESSION", sess[0])
	}
	if got := ctl.GroupLast(0).Level; got != wire.Session {
		t.Fatalf("group level = %v, want SESSION", got)
	}
}

// Concurrent controller ticks racing a trace reader across ring wraparound:
// run with -race. Sequences must stay strictly ascending per reader poll.
func TestControllerTraceConcurrentTicks(t *testing.T) {
	tr := obs.NewTrace(16) // tiny ring: guaranteed wraparound
	ctl := NewController(ControllerConfig{
		Policy: Policy{ToleratedStaleRate: 0.10},
		N:      5,
		Groups: 4,
		Trace:  tr,
	})

	stop := make(chan struct{})
	var readerWG sync.WaitGroup
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		var last uint64
		for {
			select {
			case <-stop:
				return
			default:
			}
			evs := tr.Since(last)
			for i := 1; i < len(evs); i++ {
				if evs[i].Seq != evs[i-1].Seq+1 {
					t.Errorf("non-contiguous seqs %d -> %d", evs[i-1].Seq, evs[i].Seq)
					return
				}
			}
			if len(evs) > 0 {
				last = evs[len(evs)-1].Seq
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				div := 0.0
				if (i+w)%2 == 0 {
					div = 2.0 // flip every other tick: constant transitions
				}
				ctl.Observe(obsWith(div, nil))
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	readerWG.Wait()

	if tr.Len() == 0 {
		t.Fatal("no trace events recorded")
	}
	if tr.Dropped() == 0 {
		t.Fatal("expected ring wraparound under 800 flip-heavy ticks")
	}
	for _, e := range tr.Events() {
		if e.Kind == obs.EventLevel && (e.From == "" || e.To == "") {
			t.Fatalf("malformed level event %+v", e)
		}
	}
}

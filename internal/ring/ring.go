// Package ring implements the partitioning substrate of the store: a
// consistent-hash token ring with virtual nodes, a cluster topology model
// (datacenters and racks), and replica-placement strategies equivalent to
// Cassandra's SimpleStrategy and the (Old)NetworkTopologyStrategy the paper
// configures ("data is replicated over all the clusters and racks", §V-C).
package ring

import (
	"fmt"
	"sort"
)

// NodeID identifies a storage node. IDs are stable strings such as
// "dc1-rack2-n3".
type NodeID string

// Token is a position on the hash ring.
type Token uint64

// hash64 is FNV-1a over the key bytes followed by a 64-bit finalizer for
// full avalanche. The partitioner needs well-mixed high bits (tokens are
// compared numerically); plain FNV mixes short inputs poorly, so the
// finalizer matters for vnode balance.
func hash64(key []byte) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, b := range key {
		h ^= uint64(b)
		h *= prime
	}
	// fmix64 finalizer (splittable-hash style constants).
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// HashKey maps a key to its ring token.
func HashKey(key []byte) Token { return Token(hash64(key)) }

// NodeInfo describes one node's placement in the cluster topology.
type NodeInfo struct {
	ID   NodeID
	DC   string
	Rack string
}

// Topology is the static cluster layout. It doubles as the snitch: given a
// node it answers which DC and rack the node belongs to, and it can compute
// a proximity ordering between nodes.
type Topology struct {
	nodes map[NodeID]NodeInfo
	order []NodeID // deterministic iteration order
}

// NewTopology builds a topology from node descriptions. Duplicate IDs are an
// error.
func NewTopology(nodes []NodeInfo) (*Topology, error) {
	t := &Topology{nodes: make(map[NodeID]NodeInfo, len(nodes))}
	for _, n := range nodes {
		if n.ID == "" {
			return nil, fmt.Errorf("ring: empty node id")
		}
		if _, dup := t.nodes[n.ID]; dup {
			return nil, fmt.Errorf("ring: duplicate node id %q", n.ID)
		}
		t.nodes[n.ID] = n
		t.order = append(t.order, n.ID)
	}
	sort.Slice(t.order, func(i, j int) bool { return t.order[i] < t.order[j] })
	return t, nil
}

// Nodes returns all node IDs in deterministic order.
func (t *Topology) Nodes() []NodeID {
	out := make([]NodeID, len(t.order))
	copy(out, t.order)
	return out
}

// Info returns placement info for id.
func (t *Topology) Info(id NodeID) (NodeInfo, bool) {
	n, ok := t.nodes[id]
	return n, ok
}

// DCs returns the distinct datacenter names in sorted order.
func (t *Topology) DCs() []string {
	seen := map[string]bool{}
	var out []string
	for _, id := range t.order {
		dc := t.nodes[id].DC
		if !seen[dc] {
			seen[dc] = true
			out = append(out, dc)
		}
	}
	sort.Strings(out)
	return out
}

// Distance ranks how "close" b is to a for snitch purposes: same node 0,
// same rack 1, same DC 2, remote 3. Coordinators contact the closest
// replicas first, as Cassandra's dynamic snitch does in the common case.
func (t *Topology) Distance(a, b NodeID) int {
	if a == b {
		return 0
	}
	na, nb := t.nodes[a], t.nodes[b]
	switch {
	case na.DC == nb.DC && na.Rack == nb.Rack:
		return 1
	case na.DC == nb.DC:
		return 2
	default:
		return 3
	}
}

// SortByProximity orders nodes by Distance from origin (stable for ties).
func (t *Topology) SortByProximity(origin NodeID, nodes []NodeID) {
	sort.SliceStable(nodes, func(i, j int) bool {
		return t.Distance(origin, nodes[i]) < t.Distance(origin, nodes[j])
	})
}

// Ring is the token ring: sorted vnode tokens, each owned by a node.
type Ring struct {
	topo   *Topology
	tokens []tokenEntry
}

type tokenEntry struct {
	tok  Token
	node NodeID
}

// Build constructs a ring with vnodes virtual nodes per physical node.
// Tokens are derived deterministically from the node ID and vnode index, so
// every process in the cluster computes an identical ring.
func Build(topo *Topology, vnodes int) (*Ring, error) {
	if vnodes <= 0 {
		return nil, fmt.Errorf("ring: vnodes must be positive, got %d", vnodes)
	}
	r := &Ring{topo: topo}
	for _, id := range topo.Nodes() {
		for v := 0; v < vnodes; v++ {
			seed := fmt.Sprintf("%s#%d", id, v)
			r.tokens = append(r.tokens, tokenEntry{tok: Token(hash64([]byte(seed))), node: id})
		}
	}
	sort.Slice(r.tokens, func(i, j int) bool {
		if r.tokens[i].tok != r.tokens[j].tok {
			return r.tokens[i].tok < r.tokens[j].tok
		}
		return r.tokens[i].node < r.tokens[j].node
	})
	return r, nil
}

// Topology returns the ring's topology.
func (r *Ring) Topology() *Topology { return r.topo }

// Tokens returns the ring's distinct vnode tokens in ascending order. The
// arcs between consecutive tokens are the natural repair partitions: every
// key hashing into one arc has the same successor vnode, hence the same
// replica set.
func (r *Ring) Tokens() []Token {
	out := make([]Token, 0, len(r.tokens))
	for _, e := range r.tokens {
		if len(out) > 0 && out[len(out)-1] == e.tok {
			continue // duplicate token (hash collision between vnode seeds)
		}
		out = append(out, e.tok)
	}
	return out
}

// successorIndex returns the index of the first vnode at or after tok,
// wrapping at the end of the ring.
func (r *Ring) successorIndex(tok Token) int {
	i := sort.Search(len(r.tokens), func(i int) bool { return r.tokens[i].tok >= tok })
	if i == len(r.tokens) {
		return 0
	}
	return i
}

// walk yields distinct physical nodes starting at the vnode owning tok,
// in ring order, invoking fn until it returns false.
func (r *Ring) walk(tok Token, fn func(NodeID) bool) {
	if len(r.tokens) == 0 {
		return
	}
	seen := make(map[NodeID]bool)
	start := r.successorIndex(tok)
	for i := 0; i < len(r.tokens); i++ {
		e := r.tokens[(start+i)%len(r.tokens)]
		if seen[e.node] {
			continue
		}
		seen[e.node] = true
		if !fn(e.node) {
			return
		}
	}
}

// Strategy computes the replica set for a token.
type Strategy interface {
	// Replicas returns the ordered replica list for tok; the first entry is
	// the primary. The result length is min(rf, cluster size).
	Replicas(r *Ring, tok Token) []NodeID
	// ReplicationFactor returns the total number of replicas the strategy
	// aims to place.
	ReplicationFactor() int
	// Name identifies the strategy for diagnostics.
	Name() string
}

// SimpleStrategy places replicas on the next RF distinct nodes in ring
// order, ignoring topology — Cassandra's SimpleStrategy.
type SimpleStrategy struct{ RF int }

// Replicas implements Strategy.
func (s SimpleStrategy) Replicas(r *Ring, tok Token) []NodeID {
	out := make([]NodeID, 0, s.RF)
	r.walk(tok, func(n NodeID) bool {
		out = append(out, n)
		return len(out) < s.RF
	})
	return out
}

// ReplicationFactor implements Strategy.
func (s SimpleStrategy) ReplicationFactor() int { return s.RF }

// Name implements Strategy.
func (s SimpleStrategy) Name() string { return "SimpleStrategy" }

// NetworkTopologyStrategy spreads replicas across datacenters and racks: it
// walks the ring and prefers nodes in (dc, rack) combinations not yet used,
// falling back to used racks once every rack holds a replica. This
// reproduces the placement behaviour of the paper's
// "OldNetworkTopologyStrategy": data replicated over all clusters and racks.
type NetworkTopologyStrategy struct{ RF int }

// Replicas implements Strategy.
func (s NetworkTopologyStrategy) Replicas(r *Ring, tok Token) []NodeID {
	type placement struct {
		node NodeID
	}
	var candidates []placement
	r.walk(tok, func(n NodeID) bool {
		candidates = append(candidates, placement{node: n})
		return true // collect full ring order of distinct nodes
	})
	out := make([]NodeID, 0, s.RF)
	used := make(map[NodeID]bool)
	usedDC := make(map[string]bool)
	usedRack := make(map[string]bool)

	// Pass 1: first replica per unused DC. Pass 2: unused rack. Pass 3: any.
	passes := []func(NodeInfo) bool{
		func(i NodeInfo) bool { return !usedDC[i.DC] },
		func(i NodeInfo) bool { return !usedRack[i.DC+"/"+i.Rack] },
		func(NodeInfo) bool { return true },
	}
	for _, accept := range passes {
		for _, c := range candidates {
			if len(out) >= s.RF {
				return out
			}
			if used[c.node] {
				continue
			}
			info, _ := r.topo.Info(c.node)
			if !accept(info) {
				continue
			}
			used[c.node] = true
			usedDC[info.DC] = true
			usedRack[info.DC+"/"+info.Rack] = true
			out = append(out, c.node)
		}
	}
	return out
}

// ReplicationFactor implements Strategy.
func (s NetworkTopologyStrategy) ReplicationFactor() int { return s.RF }

// Name implements Strategy.
func (s NetworkTopologyStrategy) Name() string { return "NetworkTopologyStrategy" }

// ReplicasForKey is a convenience combining HashKey and the strategy.
func ReplicasForKey(r *Ring, s Strategy, key []byte) []NodeID {
	return s.Replicas(r, HashKey(key))
}

// Package client implements the store's client side: the counterpart of the
// paper's modified YCSB Cassandra client.
//
// Session is the documented entry point for applications: it wraps a Driver
// with session guarantees (read-your-writes, monotonic reads) by carrying
// compact session tokens, and it works at every consistency level — at
// wire.Session the cluster enforces the token, at other levels the Session
// merely observes and counts violations. Driver is the low-level layer: it
// routes operations to coordinator nodes round-robin, attaches per-operation
// consistency levels from a pluggable ConsistencyPolicy (Harmony's adaptive
// controller, or a static Fixed policy), correlates responses, and enforces
// timeouts. It also offers the dual-read staleness probe of §V-F.
//
// The driver is event-driven like the rest of the system: operations take a
// callback and complete on the driver's runtime.
package client

import (
	"errors"
	"fmt"
	"time"

	"harmony/internal/ring"
	"harmony/internal/sim"
	"harmony/internal/transport"
	"harmony/internal/wire"
)

// Driver errors.
var (
	ErrTimeout     = errors.New("client: operation timed out")
	ErrUnavailable = errors.New("client: not enough replicas")
	ErrServer      = errors.New("client: server error")
)

// ConsistencyPolicy supplies the read and write consistency levels for an
// operation on key. It is the single policy surface of the client: Harmony's
// adaptive controller implements it (per key group), static deployments use
// Fixed, and per-key category tables (core.PerKeyLevels) implement it too.
//
// The driver consults the policy at issue time for every operation and never
// caches levels, so a policy whose grouping changes at runtime (the
// regrouping subsystem swaps epochs mid-run) takes effect on the very next
// operation. Implementations must resolve the key's group and that group's
// levels atomically — a key must never be judged with one epoch's group id
// against another epoch's group table (core.Controller.LevelsFor holds its
// lock across both lookups for exactly this reason). A zero returned level
// means One.
type ConsistencyPolicy interface {
	LevelsFor(key []byte) (read, write wire.ConsistencyLevel)
}

// Fixed is a ConsistencyPolicy returning constant levels; zero fields mean
// One, so Fixed{} is the paper's baseline (read ONE, write ONE) and
// Fixed{Read: wire.Quorum} upgrades only reads.
type Fixed struct {
	Read  wire.ConsistencyLevel
	Write wire.ConsistencyLevel
}

// LevelsFor implements ConsistencyPolicy.
func (f Fixed) LevelsFor([]byte) (read, write wire.ConsistencyLevel) {
	read, write = f.Read, f.Write
	if read == 0 {
		read = wire.One
	}
	if write == 0 {
		write = wire.One
	}
	return read, write
}

// Options configure a Driver.
type Options struct {
	// ID is the driver's endpoint identity on the fabric.
	ID ring.NodeID
	// Coordinators are the nodes the driver spreads requests over.
	Coordinators []ring.NodeID
	// Policy supplies per-operation consistency levels; nil means Fixed{}
	// (read ONE, write ONE — the paper's baseline, "a write of consistency
	// level one", §II-B).
	Policy ConsistencyPolicy
	// Timeout bounds each operation; zero means 2s.
	Timeout time.Duration
	// ShadowEvery requests the dual-read staleness probe (§V-F) on every
	// k-th read; 0 disables probing, 1 probes every read. Sampling keeps
	// the measurement from perturbing the run the way the paper's
	// probe-every-read method admits to doing.
	ShadowEvery int
}

// ReadResult is delivered to read callbacks.
type ReadResult struct {
	Found    bool
	Value    []byte
	Ts       int64
	Clock    []wire.ClockEntry // version vector clock (empty for legacy values)
	Achieved wire.ConsistencyLevel
	Err      error
}

// WriteResult is delivered to write callbacks.
type WriteResult struct {
	Ts    int64
	Clock []wire.ClockEntry // clock the coordinator stamped on the write
	Err   error
}

// Driver issues operations against the cluster. All methods must be called
// from the driver's runtime context; callbacks run there too.
type Driver struct {
	opts    Options
	rt      sim.Runtime
	send    transport.Sender
	nextID  uint64
	nextCo  int
	reads   uint64
	pending map[uint64]*pendingOp
}

type pendingOp struct {
	onRead  func(ReadResult)
	onWrite func(WriteResult)
	cancel  func()
}

// New creates a driver and registers nothing: the caller must register the
// driver on the fabric (bus.Register(opts.ID, rt, driver)).
func New(opts Options, rt sim.Runtime, send transport.Sender) (*Driver, error) {
	if len(opts.Coordinators) == 0 {
		return nil, fmt.Errorf("client: no coordinators")
	}
	if opts.Policy == nil {
		opts.Policy = Fixed{}
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 2 * time.Second
	}
	return &Driver{
		opts:    opts,
		rt:      rt,
		send:    send,
		pending: make(map[uint64]*pendingOp),
	}, nil
}

// ID returns the driver's fabric identity.
func (d *Driver) ID() ring.NodeID { return d.opts.ID }

func (d *Driver) coordinator() ring.NodeID {
	c := d.opts.Coordinators[d.nextCo%len(d.opts.Coordinators)]
	d.nextCo++
	return c
}

func (d *Driver) newOp() uint64 {
	d.nextID++
	return d.nextID
}

// Read fetches key at the read level the configured policy chooses.
func (d *Driver) Read(key []byte, cb func(ReadResult)) {
	level, _ := d.opts.Policy.LevelsFor(key)
	d.ReadAt(key, level, cb)
}

// ReadAt fetches key at an explicit consistency level.
func (d *Driver) ReadAt(key []byte, level wire.ConsistencyLevel, cb func(ReadResult)) {
	d.ReadToken(key, level, nil, cb)
}

// ReadToken fetches key at an explicit level carrying a session token. At
// wire.Session the coordinator must answer with a version covering the token
// (Session maintains tokens and calls this); at other levels the token is
// ignored by the cluster.
func (d *Driver) ReadToken(key []byte, level wire.ConsistencyLevel, token []wire.ClockEntry, cb func(ReadResult)) {
	if level == 0 {
		level = wire.One
	}
	id := d.newOp()
	op := &pendingOp{onRead: cb}
	d.pending[id] = op
	op.cancel = d.rt.After(d.opts.Timeout, func() {
		if _, ok := d.pending[id]; ok {
			delete(d.pending, id)
			cb(ReadResult{Err: ErrTimeout})
		}
	})
	d.reads++
	shadow := d.opts.ShadowEvery > 0 && d.reads%uint64(d.opts.ShadowEvery) == 0
	d.send.Send(d.opts.ID, d.coordinator(), wire.ReadRequest{
		ID: id, Key: key, Level: level, Shadow: shadow, Token: token,
	})
}

// Write stores value under key at the write level the policy chooses.
func (d *Driver) Write(key, value []byte, cb func(WriteResult)) {
	d.write(key, value, false, cb)
}

// Delete removes key (tombstone write).
func (d *Driver) Delete(key []byte, cb func(WriteResult)) {
	d.write(key, nil, true, cb)
}

func (d *Driver) write(key, value []byte, del bool, cb func(WriteResult)) {
	id := d.newOp()
	op := &pendingOp{onWrite: cb}
	d.pending[id] = op
	op.cancel = d.rt.After(d.opts.Timeout, func() {
		if _, ok := d.pending[id]; ok {
			delete(d.pending, id)
			cb(WriteResult{Err: ErrTimeout})
		}
	})
	_, level := d.opts.Policy.LevelsFor(key)
	if level == 0 {
		level = wire.One
	}
	if level == wire.Session {
		// Session is a read guarantee; writes at a session policy ship at
		// ONE (the cheap arm of the tier).
		level = wire.One
	}
	d.send.Send(d.opts.ID, d.coordinator(), wire.WriteRequest{
		ID: id, Key: key, Value: value, Delete: del, Level: level,
	})
}

// VerifyRead performs the paper's literal dual-read staleness measurement:
// one read at the adaptive level followed by one at ALL, comparing
// timestamps. The callback receives the primary result and whether it was
// stale relative to the strong read. Note the measurement perturbs the
// system exactly as §V-F warns.
func (d *Driver) VerifyRead(key []byte, cb func(primary ReadResult, stale bool)) {
	d.Read(key, func(primary ReadResult) {
		if primary.Err != nil {
			cb(primary, false)
			return
		}
		d.ReadAt(key, wire.All, func(strong ReadResult) {
			stale := strong.Err == nil && strong.Found && strong.Ts > primary.Ts
			cb(primary, stale)
		})
	})
}

// Deliver implements transport.Handler: correlate responses to callbacks.
func (d *Driver) Deliver(_ ring.NodeID, m wire.Message) {
	switch msg := m.(type) {
	case wire.ReadResponse:
		if op, ok := d.pending[msg.ID]; ok && op.onRead != nil {
			delete(d.pending, msg.ID)
			op.cancel()
			op.onRead(ReadResult{
				Found:    msg.Found,
				Value:    msg.Value.Data,
				Ts:       msg.Value.Timestamp,
				Clock:    msg.Value.Clock,
				Achieved: msg.Achieved,
			})
		}
	case wire.WriteResponse:
		if op, ok := d.pending[msg.ID]; ok && op.onWrite != nil {
			delete(d.pending, msg.ID)
			op.cancel()
			op.onWrite(WriteResult{Ts: msg.Timestamp, Clock: msg.Clock})
		}
	case wire.Error:
		if op, ok := d.pending[msg.ID]; ok {
			delete(d.pending, msg.ID)
			op.cancel()
			err := fmt.Errorf("%w: %s (%s)", ErrServer, msg.Msg, msg.Code)
			if msg.Code == wire.ErrTimeout {
				err = fmt.Errorf("%w: %s", ErrTimeout, msg.Msg)
			}
			if msg.Code == wire.ErrUnavailable {
				err = fmt.Errorf("%w: %s", ErrUnavailable, msg.Msg)
			}
			if op.onRead != nil {
				op.onRead(ReadResult{Err: err})
			} else if op.onWrite != nil {
				op.onWrite(WriteResult{Err: err})
			}
		}
	}
}

// Pending reports in-flight operations (tests).
func (d *Driver) Pending() int { return len(d.pending) }

var _ transport.Handler = (*Driver)(nil)

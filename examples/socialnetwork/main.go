// Socialnetwork: the paper's motivating high-tolerance application (§III). A
// timeline can serve slightly stale posts without harm, so it runs Harmony
// with a 60% tolerable stale-read rate and reaps eventual-consistency
// performance — while a strongly consistent deployment pays heavy latency
// for freshness nobody needs. The example measures an evening traffic spike
// under three policies.
//
//	go run ./examples/socialnetwork
package main

import (
	"fmt"
	"log"
	"time"

	"harmony/internal/client"
	"harmony/internal/cluster"
	"harmony/internal/core"
	"harmony/internal/sim"
	"harmony/internal/simnet"
	"harmony/internal/wire"
	"harmony/internal/ycsb"
)

func main() {
	spec := cluster.DefaultSpec()
	spec.Profile = simnet.Grid5000Profile()

	timeline := ycsb.Workload{
		// Evening spike: mostly timeline reads, a stream of new posts,
		// skewed toward what is trending right now.
		Name: "timeline", ReadProportion: 0.9, UpdateProportion: 0.1,
		RecordCount: 50000, ValueBytes: 512,
		RequestDistribution: ycsb.DistLatest,
	}

	type outcome struct {
		name  string
		tput  float64
		p99   time.Duration
		stale float64
	}
	var results []outcome

	measure := func(name string, mk func(s *sim.Sim, c *cluster.Cluster) (client.ConsistencyPolicy, *core.Monitor)) {
		s := sim.New(99)
		c, err := cluster.BuildSim(s, spec)
		if err != nil {
			log.Fatal(err)
		}
		policy, mon := mk(s, c)
		runner, err := ycsb.NewRunner(ycsb.RunConfig{
			Workload:    timeline,
			Threads:     80,
			Policy:      policy,
			ShadowEvery: 4,
			Seed:        3,
		}, s, c)
		if err != nil {
			log.Fatal(err)
		}
		runner.Load()
		if mon != nil {
			mon.Start()
		}
		rep, err := runner.RunMeasured(2*time.Second, 30000)
		if err != nil {
			log.Fatal(err)
		}
		if mon != nil {
			mon.Stop()
		}
		results = append(results, outcome{
			name:  name,
			tput:  rep.ThroughputOps,
			p99:   rep.ReadLatency.P99(),
			stale: rep.StaleFraction() * 100,
		})
	}

	fixed := func(lvl wire.ConsistencyLevel) func(*sim.Sim, *cluster.Cluster) (client.ConsistencyPolicy, *core.Monitor) {
		return func(*sim.Sim, *cluster.Cluster) (client.ConsistencyPolicy, *core.Monitor) {
			return client.Fixed{Read: lvl}, nil
		}
	}
	harmony := func(s *sim.Sim, c *cluster.Cluster) (client.ConsistencyPolicy, *core.Monitor) {
		ctl := core.NewController(core.ControllerConfig{
			Policy:               core.Policy{Name: "timeline", ToleratedStaleRate: 0.60},
			N:                    spec.RF,
			AvgWriteBytes:        512,
			BandwidthBytesPerSec: spec.Profile.BandwidthBytesPerSec,
		})
		mon := core.NewMonitor(core.MonitorConfig{
			ID:             "sn-monitor",
			Nodes:          c.NodeIDs(),
			Interval:       250 * time.Millisecond,
			ReplicaSetSize: spec.RF,
			OnObservation:  ctl.Observe,
		}, s, c.Bus)
		c.Net.Colocate("sn-monitor", c.NodeIDs()[0])
		c.Bus.Register("sn-monitor", s, mon)
		return ctl, mon
	}

	fmt.Println("simulating the evening timeline spike (80 reader threads)...")
	measure("strong (ALL)", fixed(wire.All))
	measure("harmony-60%", harmony)
	measure("eventual (ONE)", fixed(wire.One))

	fmt.Printf("%-16s %12s %12s %12s\n", "policy", "ops/s", "p99 read", "stale reads")
	for _, r := range results {
		fmt.Printf("%-16s %12.0f %12v %11.2f%%\n",
			r.name, r.tput, r.p99.Round(10*time.Microsecond), r.stale)
	}
	strong, adaptive := results[0], results[1]
	if strong.tput > 0 {
		fmt.Printf("\nharmony serves %.0f%% more timeline requests than strong consistency\n",
			(adaptive.tput/strong.tput-1)*100)
	}
	fmt.Println("for a timeline, the stale posts Harmony admits are invisible to users —")
	fmt.Println("the paper's point: consistency requirements belong to the application.")
}

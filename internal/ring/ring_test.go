package ring

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// twoDCTopology builds the paper-like layout: 2 DCs x 2 racks x 5 nodes.
func twoDCTopology(t *testing.T) *Topology {
	t.Helper()
	var nodes []NodeInfo
	for dc := 1; dc <= 2; dc++ {
		for rack := 1; rack <= 2; rack++ {
			for n := 1; n <= 5; n++ {
				nodes = append(nodes, NodeInfo{
					ID:   NodeID(fmt.Sprintf("dc%d-r%d-n%d", dc, rack, n)),
					DC:   fmt.Sprintf("dc%d", dc),
					Rack: fmt.Sprintf("r%d", rack),
				})
			}
		}
	}
	topo, err := NewTopology(nodes)
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestTopologyValidation(t *testing.T) {
	if _, err := NewTopology([]NodeInfo{{ID: ""}}); err == nil {
		t.Fatal("empty id accepted")
	}
	if _, err := NewTopology([]NodeInfo{{ID: "a"}, {ID: "a"}}); err == nil {
		t.Fatal("duplicate id accepted")
	}
}

func TestTopologyAccessors(t *testing.T) {
	topo := twoDCTopology(t)
	if got := len(topo.Nodes()); got != 20 {
		t.Fatalf("nodes = %d, want 20", got)
	}
	dcs := topo.DCs()
	if len(dcs) != 2 || dcs[0] != "dc1" || dcs[1] != "dc2" {
		t.Fatalf("DCs = %v", dcs)
	}
	if _, ok := topo.Info("nope"); ok {
		t.Fatal("Info for unknown node reported ok")
	}
}

func TestDistance(t *testing.T) {
	topo := twoDCTopology(t)
	cases := []struct {
		a, b NodeID
		want int
	}{
		{"dc1-r1-n1", "dc1-r1-n1", 0},
		{"dc1-r1-n1", "dc1-r1-n2", 1},
		{"dc1-r1-n1", "dc1-r2-n1", 2},
		{"dc1-r1-n1", "dc2-r1-n1", 3},
	}
	for _, c := range cases {
		if got := topo.Distance(c.a, c.b); got != c.want {
			t.Errorf("Distance(%s,%s) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestSortByProximity(t *testing.T) {
	topo := twoDCTopology(t)
	nodes := []NodeID{"dc2-r1-n1", "dc1-r2-n1", "dc1-r1-n2", "dc1-r1-n1"}
	topo.SortByProximity("dc1-r1-n1", nodes)
	want := []NodeID{"dc1-r1-n1", "dc1-r1-n2", "dc1-r2-n1", "dc2-r1-n1"}
	for i := range want {
		if nodes[i] != want[i] {
			t.Fatalf("proximity order = %v, want %v", nodes, want)
		}
	}
}

func TestBuildValidation(t *testing.T) {
	topo := twoDCTopology(t)
	if _, err := Build(topo, 0); err == nil {
		t.Fatal("vnodes=0 accepted")
	}
}

func TestRingDeterminism(t *testing.T) {
	topo := twoDCTopology(t)
	r1, err := Build(topo, 16)
	if err != nil {
		t.Fatal(err)
	}
	r2, _ := Build(topo, 16)
	s := SimpleStrategy{RF: 5}
	for i := 0; i < 100; i++ {
		key := []byte(fmt.Sprintf("user%d", i))
		a := ReplicasForKey(r1, s, key)
		b := ReplicasForKey(r2, s, key)
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("key %q: nondeterministic replicas %v vs %v", key, a, b)
			}
		}
	}
}

func TestSimpleStrategyDistinctAndSized(t *testing.T) {
	topo := twoDCTopology(t)
	r, _ := Build(topo, 8)
	s := SimpleStrategy{RF: 5}
	for i := 0; i < 500; i++ {
		reps := ReplicasForKey(r, s, []byte(fmt.Sprintf("k%d", i)))
		if len(reps) != 5 {
			t.Fatalf("got %d replicas, want 5", len(reps))
		}
		seen := map[NodeID]bool{}
		for _, n := range reps {
			if seen[n] {
				t.Fatalf("duplicate replica %s in %v", n, reps)
			}
			seen[n] = true
		}
	}
}

func TestSimpleStrategyRFLargerThanCluster(t *testing.T) {
	topo, err := NewTopology([]NodeInfo{
		{ID: "a", DC: "dc1", Rack: "r1"},
		{ID: "b", DC: "dc1", Rack: "r1"},
		{ID: "c", DC: "dc1", Rack: "r2"},
	})
	if err != nil {
		t.Fatal(err)
	}
	r, _ := Build(topo, 4)
	reps := ReplicasForKey(r, SimpleStrategy{RF: 5}, []byte("x"))
	if len(reps) != 3 {
		t.Fatalf("got %d replicas, want all 3 nodes", len(reps))
	}
}

func TestNetworkTopologySpansDCsAndRacks(t *testing.T) {
	topo := twoDCTopology(t)
	r, _ := Build(topo, 8)
	s := NetworkTopologyStrategy{RF: 5}
	for i := 0; i < 500; i++ {
		reps := ReplicasForKey(r, s, []byte(fmt.Sprintf("key-%d", i)))
		if len(reps) != 5 {
			t.Fatalf("got %d replicas, want 5", len(reps))
		}
		dcs := map[string]bool{}
		racks := map[string]bool{}
		for _, n := range reps {
			info, ok := topo.Info(n)
			if !ok {
				t.Fatalf("unknown replica %s", n)
			}
			dcs[info.DC] = true
			racks[info.DC+"/"+info.Rack] = true
		}
		// 2 DCs and 4 racks exist; RF=5 must cover all of them
		// ("replicated over all the clusters and racks", paper §V-C).
		if len(dcs) != 2 {
			t.Fatalf("replicas %v span %d DCs, want 2", reps, len(dcs))
		}
		if len(racks) != 4 {
			t.Fatalf("replicas %v span %d racks, want 4", reps, len(racks))
		}
	}
}

func TestNetworkTopologyDistinctProperty(t *testing.T) {
	topo := twoDCTopology(t)
	r, _ := Build(topo, 8)
	if err := quick.Check(func(key []byte, rfRaw uint8) bool {
		rf := int(rfRaw%8) + 1
		reps := NetworkTopologyStrategy{RF: rf}.Replicas(r, HashKey(key))
		if len(reps) != min(rf, 20) {
			return false
		}
		seen := map[NodeID]bool{}
		for _, n := range reps {
			if seen[n] {
				return false
			}
			seen[n] = true
		}
		return true
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPrimaryStability(t *testing.T) {
	// The primary replica for a key must not depend on the strategy.
	topo := twoDCTopology(t)
	r, _ := Build(topo, 8)
	for i := 0; i < 100; i++ {
		key := []byte(fmt.Sprintf("pk%d", i))
		a := ReplicasForKey(r, SimpleStrategy{RF: 3}, key)
		b := ReplicasForKey(r, NetworkTopologyStrategy{RF: 3}, key)
		if a[0] != b[0] {
			t.Fatalf("primary differs across strategies: %v vs %v", a[0], b[0])
		}
	}
}

func TestLoadBalance(t *testing.T) {
	// With enough vnodes, primary ownership should be roughly uniform.
	topo := twoDCTopology(t)
	r, _ := Build(topo, 64)
	counts := map[NodeID]int{}
	rng := rand.New(rand.NewSource(5))
	const n = 20000
	for i := 0; i < n; i++ {
		key := []byte(fmt.Sprintf("bal%d-%d", i, rng.Int63()))
		counts[ReplicasForKey(r, SimpleStrategy{RF: 1}, key)[0]]++
	}
	want := n / 20
	for id, c := range counts {
		if c < want/3 || c > want*3 {
			t.Fatalf("node %s owns %d keys, want within 3x of %d", id, c, want)
		}
	}
	if len(counts) != 20 {
		t.Fatalf("only %d nodes own keys", len(counts))
	}
}

func TestHashKeyStable(t *testing.T) {
	// The partitioner hash is part of the cluster contract; pin a value.
	if HashKey([]byte("harmony")) == 0 {
		t.Fatal("suspicious zero hash")
	}
	if HashKey([]byte("a")) == HashKey([]byte("b")) {
		t.Fatal("trivial collision")
	}
	if got, again := HashKey([]byte("k")), HashKey([]byte("k")); got != again {
		t.Fatal("hash not deterministic")
	}
}

func TestEmptyRingWalk(t *testing.T) {
	topo, err := NewTopology(nil)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Build(topo, 4)
	if err != nil {
		t.Fatal(err)
	}
	if reps := ReplicasForKey(r, SimpleStrategy{RF: 3}, []byte("x")); len(reps) != 0 {
		t.Fatalf("empty ring returned replicas %v", reps)
	}
}

func BenchmarkReplicasForKey(b *testing.B) {
	var nodes []NodeInfo
	for i := 0; i < 20; i++ {
		nodes = append(nodes, NodeInfo{ID: NodeID(fmt.Sprintf("n%d", i)), DC: "dc1", Rack: fmt.Sprintf("r%d", i%4)})
	}
	topo, err := NewTopology(nodes)
	if err != nil {
		b.Fatal(err)
	}
	r, err := Build(topo, 32)
	if err != nil {
		b.Fatal(err)
	}
	s := NetworkTopologyStrategy{RF: 5}
	key := []byte("benchmark-key")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ReplicasForKey(r, s, key)
	}
}

package core

import (
	"testing"
	"time"

	"harmony/internal/cluster"
	"harmony/internal/ring"
	"harmony/internal/sim"
	"harmony/internal/wire"
)

// loadGen drives a constant synthetic read/write load directly at the
// cluster (bypassing the client driver to keep the test focused).
type loadGen struct {
	s   *sim.Sim
	bus interface {
		Send(from, to ring.NodeID, m wire.Message)
	}
	nodes []ring.NodeID
	id    uint64
}

func (g *loadGen) run(readsPerSec, writesPerSec float64, until time.Duration) {
	if readsPerSec > 0 {
		interval := time.Duration(float64(time.Second) / readsPerSec)
		g.s.Ticker(interval, func() {
			g.id++
			g.bus.Send("loadgen", g.nodes[int(g.id)%len(g.nodes)], wire.ReadRequest{ID: g.id, Key: []byte("k"), Level: wire.One})
		})
	}
	if writesPerSec > 0 {
		interval := time.Duration(float64(time.Second) / writesPerSec)
		g.s.Ticker(interval, func() {
			g.id++
			g.bus.Send("loadgen", g.nodes[int(g.id)%len(g.nodes)], wire.WriteRequest{ID: g.id, Key: []byte("k"), Value: []byte("v"), Level: wire.One})
		})
	}
}

func buildMonitored(t *testing.T, interval time.Duration, onObs func(Observation)) (*sim.Sim, *cluster.Cluster, *Monitor) {
	t.Helper()
	return buildMonitoredSpec(t, cluster.DefaultSpec(), interval, onObs)
}

func buildMonitoredSpec(t *testing.T, spec cluster.Spec, interval time.Duration, onObs func(Observation)) (*sim.Sim, *cluster.Cluster, *Monitor) {
	t.Helper()
	s := sim.New(77)
	c, err := cluster.BuildSim(s, spec)
	if err != nil {
		t.Fatal(err)
	}
	mon := NewMonitor(MonitorConfig{
		ID:            "harmony-monitor",
		Nodes:         c.NodeIDs(),
		Interval:      interval,
		OnObservation: onObs,
	}, s, c.Bus)
	c.Bus.Register("harmony-monitor", s, mon)
	// Sink for loadgen responses.
	c.Bus.Register("loadgen", s, noopHandler{})
	return s, c, mon
}

type noopHandler struct{}

func (noopHandler) Deliver(ring.NodeID, wire.Message) {}

func TestMonitorMeasuresRates(t *testing.T) {
	var observations []Observation
	s, c, mon := buildMonitored(t, time.Second, func(o Observation) {
		observations = append(observations, o)
	})
	gen := &loadGen{s: s, bus: c.Bus, nodes: c.NodeIDs()}
	gen.run(200, 50, 0) // 200 reads/s, 50 writes/s cluster-wide
	mon.Start()
	s.RunFor(10 * time.Second)
	mon.Stop()

	if len(observations) < 5 {
		t.Fatalf("only %d observations", len(observations))
	}
	last := observations[len(observations)-1]
	// Rates are per-node averages over the 20-node cluster: 200/20 = 10
	// reads/s and a write interval of 20/50 = 0.4 s.
	if last.ReadRate < 7.5 || last.ReadRate > 12.5 {
		t.Fatalf("read rate = %v, want ~10 per node", last.ReadRate)
	}
	wantInterval := 20.0 / 50
	if last.WriteInterval < wantInterval*0.7 || last.WriteInterval > wantInterval*1.3 {
		t.Fatalf("write interval = %v, want ~%v", last.WriteInterval, wantInterval)
	}
	if last.Nodes != 20 {
		t.Fatalf("nodes reporting = %d, want 20", last.Nodes)
	}
	if last.Latency <= 0 {
		t.Fatal("no latency measured")
	}
	if last.MeanLatency > last.Latency {
		t.Fatalf("mean latency %v above max %v", last.MeanLatency, last.Latency)
	}
}

func TestMonitorFirstRoundIsBaseline(t *testing.T) {
	count := 0
	s, _, mon := buildMonitored(t, time.Second, func(Observation) { count++ })
	mon.Start()
	s.RunFor(1500 * time.Millisecond) // exactly one round completes
	if count != 0 {
		t.Fatalf("baseline round produced %d observations", count)
	}
	if mon.Rounds() != 1 {
		t.Fatalf("rounds = %d, want 1", mon.Rounds())
	}
}

func TestMonitorSurvivesDeadNodes(t *testing.T) {
	var last Observation
	s, c, mon := buildMonitored(t, time.Second, func(o Observation) { last = o })
	// Kill a quarter of the cluster.
	ids := c.NodeIDs()
	for _, id := range ids[:5] {
		c.Net.Isolate(id, append(ids, "harmony-monitor"))
	}
	mon.Start()
	s.RunFor(5 * time.Second)
	if mon.Rounds() < 3 {
		t.Fatalf("monitor stalled: %d rounds", mon.Rounds())
	}
	if last.Nodes != 15 {
		t.Fatalf("observation includes dead nodes: %d", last.Nodes)
	}
}

func TestMonitorAggregatesAliveMembersAsMax(t *testing.T) {
	var last Observation
	s, c, mon := buildMonitored(t, time.Second, func(o Observation) { last = o })
	mon.Start()
	s.RunFor(3 * time.Second)
	ids := c.NodeIDs()
	n := len(ids)
	if last.Members != n || last.AliveMembers != n {
		t.Fatalf("healthy cluster: members=%d alive=%d, want %d/%d", last.Members, last.AliveMembers, n, n)
	}
	// Converged partition view: the majority side sees n-2 members, the
	// minority sees 2. The observation takes the MAX across reports — the
	// best-connected member's view — so the minority's collapsed count
	// must not drag it below the majority component's size.
	c.SetPartitionView(ids[:n-2], ids[n-2:])
	s.RunFor(3 * time.Second)
	if last.AliveMembers != n-2 {
		t.Fatalf("partitioned: alive=%d, want majority view %d", last.AliveMembers, n-2)
	}
	c.ClearPartitionView()
	s.RunFor(3 * time.Second)
	if last.AliveMembers != n {
		t.Fatalf("healed: alive=%d, want %d", last.AliveMembers, n)
	}
}

func TestControllerDecisionScheme(t *testing.T) {
	ctl := NewController(ControllerConfig{
		Policy: Policy{Name: "Harmony-20%", ToleratedStaleRate: 0.2},
		N:      5,
	})
	if got := ctl.ReadLevel(); got != wire.One {
		t.Fatalf("default level = %v, want ONE", got)
	}
	// Low staleness regime: estimate below tolerance → stay at ONE.
	ctl.Observe(Observation{At: time.Unix(1, 0), ReadRate: 100, WriteInterval: 10, Latency: 100 * time.Microsecond, Window: time.Second})
	if d := ctl.Last(); d.Level != wire.One || d.Estimate >= 0.2 {
		t.Fatalf("calm regime decision = %+v", d)
	}
	// Heavy update + high latency: estimate above tolerance → raise CL.
	ctl.Observe(Observation{At: time.Unix(2, 0), ReadRate: 1000, WriteInterval: 0.002, Latency: 20 * time.Millisecond, Window: time.Second})
	d := ctl.Last()
	if d.Estimate <= 0.2 {
		t.Fatalf("hot regime estimate = %v, want > tolerance", d.Estimate)
	}
	if d.Level == wire.One {
		t.Fatalf("hot regime stayed at ONE: %+v", d)
	}
	if d.Xn < 2 || d.Xn > 5 {
		t.Fatalf("Xn = %d out of range", d.Xn)
	}
	if len(ctl.History()) != 2 {
		t.Fatalf("history length = %d", len(ctl.History()))
	}
}

func TestControllerZeroToleranceDemandsAll(t *testing.T) {
	ctl := NewController(ControllerConfig{Policy: Policy{ToleratedStaleRate: 0}, N: 5})
	ctl.Observe(Observation{At: time.Unix(1, 0), ReadRate: 500, WriteInterval: 0.01, Latency: 5 * time.Millisecond, Window: time.Second})
	if d := ctl.Last(); d.Level != wire.All || d.Xn != 5 {
		t.Fatalf("zero tolerance decision = %+v, want ALL", d)
	}
}

func TestControllerFullToleranceStaysEventual(t *testing.T) {
	ctl := NewController(ControllerConfig{Policy: Policy{ToleratedStaleRate: 1}, N: 5})
	ctl.Observe(Observation{At: time.Unix(1, 0), ReadRate: 5000, WriteInterval: 0.0001, Latency: 50 * time.Millisecond, Window: time.Second})
	if d := ctl.Last(); d.Level != wire.One {
		t.Fatalf("full tolerance decision = %+v, want ONE", d)
	}
}

func TestControllerNoSignalStaysEventual(t *testing.T) {
	ctl := NewController(ControllerConfig{Policy: Policy{ToleratedStaleRate: 0.1}, N: 5})
	ctl.Observe(Observation{At: time.Unix(1, 0)}) // empty observation
	if d := ctl.Last(); d.Level != wire.One {
		t.Fatalf("no-signal decision = %+v, want ONE", d)
	}
}

func TestControllerFixedTpAblation(t *testing.T) {
	// With FixedTp the decision ignores measured latency entirely.
	ctl := NewController(ControllerConfig{
		Policy:  Policy{ToleratedStaleRate: 0.2},
		N:       5,
		FixedTp: time.Microsecond,
	})
	ctl.Observe(Observation{At: time.Unix(1, 0), ReadRate: 1000, WriteInterval: 0.002, Latency: 40 * time.Millisecond, Window: time.Second})
	if d := ctl.Last(); d.Model.Tp != time.Microsecond {
		t.Fatalf("FixedTp not applied: %v", d.Model.Tp)
	}
}

func TestMonitorControllerEndToEnd(t *testing.T) {
	// Full loop: synthetic load → monitor → controller → level adapts.
	var decisions []Decision
	ctl := NewController(ControllerConfig{
		Policy:     Policy{Name: "Harmony-20%", ToleratedStaleRate: 0.2},
		N:          5,
		OnDecision: func(d Decision) { decisions = append(decisions, d) },
	})
	s, c, mon := buildMonitored(t, time.Second, ctl.Observe)
	gen := &loadGen{s: s, bus: c.Bus, nodes: c.NodeIDs()}
	// Heavy update load: 20k reads/s + 10k writes/s cluster-wide, i.e.
	// per-node λr=1000/s, λw=2ms — comfortably above the 20% tolerance.
	gen.run(20000, 10000, 0)
	mon.Start()
	s.RunFor(10 * time.Second)
	if len(decisions) == 0 {
		t.Fatal("no decisions")
	}
	final := decisions[len(decisions)-1]
	if final.Level == wire.One {
		t.Fatalf("controller never escalated under heavy updates: %+v", final)
	}
	if ctl.ReadLevel() != final.Level {
		t.Fatal("ReadLevel out of sync with last decision")
	}
}

// hotColdGroupFn tags keys starting with 'h' as group 0, the rest group 1.
func hotColdGroupFn(key []byte) int {
	if len(key) > 0 && key[0] == 'h' {
		return 0
	}
	return 1
}

func TestMonitorReportsGroupRates(t *testing.T) {
	spec := cluster.DefaultSpec()
	spec.Groups = 2
	spec.GroupFn = hotColdGroupFn
	var last Observation
	s, c, mon := buildMonitoredSpec(t, spec, time.Second, func(o Observation) { last = o })
	// Group 0 ("hot"): 200 reads/s + 100 writes/s. Group 1 ("cold"):
	// 400 reads/s, no writes.
	var id uint64
	nodes := c.NodeIDs()
	s.Ticker(5*time.Millisecond, func() {
		id++
		c.Bus.Send("loadgen", nodes[int(id)%len(nodes)], wire.ReadRequest{ID: id, Key: []byte("hot"), Level: wire.One})
	})
	s.Ticker(10*time.Millisecond, func() {
		id++
		c.Bus.Send("loadgen", nodes[int(id)%len(nodes)], wire.WriteRequest{ID: id, Key: []byte("hot"), Value: []byte("v"), Level: wire.One})
	})
	s.Ticker(2500*time.Microsecond, func() {
		id++
		c.Bus.Send("loadgen", nodes[int(id)%len(nodes)], wire.ReadRequest{ID: id, Key: []byte("cold"), Level: wire.One})
	})
	mon.Start()
	s.RunFor(10 * time.Second)
	mon.Stop()

	if len(last.Groups) != 2 {
		t.Fatalf("groups reported = %d, want 2", len(last.Groups))
	}
	// Per-node averages over 20 nodes: hot reads 10/s, cold reads 20/s,
	// hot write interval 20/100 = 0.2s.
	hot, cold := last.Groups[0], last.Groups[1]
	if hot.ReadRate < 7.5 || hot.ReadRate > 12.5 {
		t.Fatalf("hot read rate = %v, want ~10 per node", hot.ReadRate)
	}
	if cold.ReadRate < 15 || cold.ReadRate > 25 {
		t.Fatalf("cold read rate = %v, want ~20 per node", cold.ReadRate)
	}
	if hot.WriteInterval < 0.14 || hot.WriteInterval > 0.26 {
		t.Fatalf("hot write interval = %v, want ~0.2s", hot.WriteInterval)
	}
	if cold.WriteInterval != 0 {
		t.Fatalf("cold write interval = %v, want 0 (no writes)", cold.WriteInterval)
	}
	// The groups partition the aggregate: summed group read rates must
	// reproduce the global rate.
	if sum := hot.ReadRate + cold.ReadRate; sum < last.ReadRate*0.99 || sum > last.ReadRate*1.01 {
		t.Fatalf("group rates sum to %v, global is %v", sum, last.ReadRate)
	}
}

func TestControllerSingleGroupMatchesGlobal(t *testing.T) {
	// Regression pin for the multi-model refactor: the per-group machinery
	// with Groups=1 must emit decisions identical to the global controller
	// on the same seeded monitor-driven run — the refactor is a strict
	// generalization.
	cfg := ControllerConfig{Policy: Policy{Name: "Harmony-20%", ToleratedStaleRate: 0.2}, N: 5}
	grouped := NewController(func() ControllerConfig { c := cfg; c.Groups = 1; return c }())
	global := NewController(cfg)
	spec := cluster.DefaultSpec()
	spec.Groups = 2 // nodes report per-group telemetry; the global stream must not care
	spec.GroupFn = hotColdGroupFn
	s, c, mon := buildMonitoredSpec(t, spec, 500*time.Millisecond, func(o Observation) {
		grouped.Observe(o)
		global.Observe(o)
	})
	gen := &loadGen{s: s, bus: c.Bus, nodes: c.NodeIDs()}
	gen.run(20000, 10000, 0)
	mon.Start()
	s.RunFor(8 * time.Second)
	mon.Stop()

	gh, bh := grouped.History(), global.History()
	if len(gh) == 0 || len(gh) != len(bh) {
		t.Fatalf("history lengths: grouped=%d global=%d", len(gh), len(bh))
	}
	for i := range gh {
		if gh[i] != bh[i] {
			t.Fatalf("decision %d diverged:\n grouped %+v\n global  %+v", i, gh[i], bh[i])
		}
	}
	if grouped.ReadLevel() != global.ReadLevel() {
		t.Fatal("ReadLevel diverged")
	}
	// ReadLevelFor on the grouped controller must agree with its global
	// level for every key: one group, one model.
	for _, key := range [][]byte{[]byte("hot"), []byte("cold"), nil} {
		if grouped.ReadLevelFor(key) != grouped.ReadLevel() {
			t.Fatalf("single-group ReadLevelFor(%q) != ReadLevel", key)
		}
	}
}

func TestControllerPerGroupDecisions(t *testing.T) {
	ctl := NewController(ControllerConfig{
		Policy:          Policy{ToleratedStaleRate: 0.2},
		N:               5,
		Groups:          2,
		GroupFn:         hotColdGroupFn,
		GroupTolerances: []float64{0.05, 0.6},
	})
	// Hot group: heavy contention. Cold group: read-mostly trickle.
	ctl.Observe(Observation{
		At:            time.Unix(1, 0),
		ReadRate:      600,
		WriteInterval: 0.004,
		Latency:       10 * time.Millisecond,
		Window:        time.Second,
		Groups: []GroupRates{
			{ReadRate: 500, WriteInterval: 0.002},
			{ReadRate: 100, WriteInterval: 5},
		},
	})
	hot := ctl.GroupLast(0)
	cold := ctl.GroupLast(1)
	if hot.Level == wire.One {
		t.Fatalf("hot group stayed at ONE: %+v", hot)
	}
	if cold.Level != wire.One {
		t.Fatalf("cold group escalated: %+v", cold)
	}
	if got := ctl.ReadLevelFor([]byte("h123")); got != hot.Level {
		t.Fatalf("ReadLevelFor(hot) = %v, want %v", got, hot.Level)
	}
	if got := ctl.ReadLevelFor([]byte("c123")); got != wire.One {
		t.Fatalf("ReadLevelFor(cold) = %v, want ONE", got)
	}
	// Per-group models carry the measured per-group rates, not the global.
	if hot.Model.LambdaR != 500 || cold.Model.LambdaR != 100 {
		t.Fatalf("group models use wrong rates: hot=%v cold=%v", hot.Model.LambdaR, cold.Model.LambdaR)
	}
	if g := ctl.Groups(); g != 2 {
		t.Fatalf("Groups() = %d", g)
	}
	if h := ctl.GroupHistory(1); len(h) != 1 || h[0] != cold {
		t.Fatalf("group history = %+v", h)
	}
}

func TestControllerGroupFallsBackToGlobalRates(t *testing.T) {
	// A configured group with no per-group telemetry adapts on the global
	// rates instead of flying blind.
	ctl := NewController(ControllerConfig{Policy: Policy{ToleratedStaleRate: 0.2}, N: 5, Groups: 3})
	ctl.Observe(Observation{
		At: time.Unix(1, 0), ReadRate: 1000, WriteInterval: 0.002,
		Latency: 20 * time.Millisecond, Window: time.Second,
		Groups: []GroupRates{{ReadRate: 1000, WriteInterval: 0.002}},
	})
	if d := ctl.GroupLast(2); d.Model.LambdaR != 1000 || d.Level == wire.One {
		t.Fatalf("unreported group decision = %+v, want global-rate escalation", d)
	}
}

func TestMonitorMeasuresAvgWriteSize(t *testing.T) {
	var last Observation
	s, c, mon := buildMonitored(t, time.Second, func(o Observation) { last = o })
	// Writes of a fixed 512-byte payload.
	payload := make([]byte, 512)
	var id uint64
	s.Ticker(5*time.Millisecond, func() {
		id++
		c.Bus.Send("loadgen", c.NodeIDs()[int(id)%20], wire.WriteRequest{ID: id, Key: []byte("k"), Value: payload, Level: wire.One})
	})
	mon.Start()
	s.RunFor(8 * time.Second)
	mon.Stop()
	if last.AvgWriteBytes < 500 || last.AvgWriteBytes > 524 {
		t.Fatalf("avg write bytes = %v, want ~512", last.AvgWriteBytes)
	}
}

func TestControllerUsesMeasuredAvgWriteBytes(t *testing.T) {
	// With no static AvgWriteBytes, Tp must include the measured
	// serialization term: avgw/bandwidth.
	ctl := NewController(ControllerConfig{
		Policy:               Policy{ToleratedStaleRate: 0.2},
		N:                    5,
		BandwidthBytesPerSec: 1e6, // 1 MB/s: 10 KB writes add 10ms
	})
	ctl.Observe(Observation{
		At: time.Unix(1, 0), ReadRate: 100, WriteInterval: 0.01,
		Latency: time.Millisecond, AvgWriteBytes: 10_000,
	})
	if got := ctl.Last().Model.Tp; got != 11*time.Millisecond {
		t.Fatalf("Tp = %v, want 11ms (1ms latency + 10ms serialization)", got)
	}
}

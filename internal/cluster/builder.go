package cluster

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"harmony/internal/dist"
	"harmony/internal/repair"
	"harmony/internal/ring"
	"harmony/internal/sim"
	"harmony/internal/simnet"
	"harmony/internal/storage"
	"harmony/internal/transport"
	"harmony/internal/wire"
)

// Spec describes a whole cluster to assemble; it is the shared entry point
// for tests, benchmarks and examples.
type Spec struct {
	// DCs is the number of datacenters; RacksPerDC and NodesPerRack shape
	// each one identically.
	DCs, RacksPerDC, NodesPerRack int
	// RF is the replication factor (the paper uses 5).
	RF int
	// VNodes per physical node; zero means 16.
	VNodes int
	// NetworkTopologyAware selects NetworkTopologyStrategy (the paper's
	// placement) instead of SimpleStrategy.
	NetworkTopologyAware bool
	// Profile is the network latency profile.
	Profile simnet.Profile
	// ReadRepairChance is the probability a read fans out to all replicas
	// for background repair (Cassandra's read_repair_chance; the paper's
	// deployment era defaulted to sampled repair).
	ReadRepairChance float64
	// HintedHandoff toggles hint queues for down replicas.
	HintedHandoff bool
	// HintQueueLimit caps each node's total queued hints; overflow drops
	// the mutation (Metrics.HintsDropped). Zero means unlimited.
	HintQueueLimit int
	// Repair enables background anti-entropy on every node: Merkle-tree
	// sessions between replica peers, run periodically and on recovery
	// triggers (Cluster.SetUp). See internal/repair.
	Repair repair.Options
	// ReadTimeout/WriteTimeout propagate to every node.
	ReadTimeout, WriteTimeout time.Duration
	// Engine configures node-local storage.
	Engine storage.Options
	// Service models each node's finite processing capacity; the zero
	// value selects DefaultServiceProfile. Set Disabled to bypass queueing
	// (pure-network experiments).
	Service ServiceProfile
	// Groups and GroupFn configure per-key-group telemetry on every node:
	// each coordinated read/write is tagged into a group and tallied
	// separately, so the monitoring pipeline can adapt consistency per
	// group instead of cluster-wide. Zero Groups means one implicit group
	// (the classic global pipeline). This is only the epoch-0 assignment:
	// the regrouping subsystem replaces it at runtime via wire.GroupUpdate.
	Groups  int
	GroupFn func(key []byte) int
	// KeySampleLimit and KeyStatsDecay configure per-key access sampling
	// on every node for the online regrouping loop (see Config); zero
	// KeySampleLimit disables sampling.
	KeySampleLimit int
	KeyStatsDecay  float64
}

// ServiceProfile gives per-message-class service times for the node queue.
// Actual service times are the class mean multiplied by a lognormal jitter
// with unit mean and the configured 99th percentile, modeling the variance
// real storage nodes exhibit (page-cache misses, GC pauses, compaction
// interference). The jitter is what separates "wait for the first replica"
// from "wait for the slowest of five" in the latency distributions.
type ServiceProfile struct {
	CoordRead    time.Duration // coordinating a client read
	CoordWrite   time.Duration // coordinating a client write
	ReplicaRead  time.Duration // serving a replica-local read
	ReplicaWrite time.Duration // applying a mutation or repair
	Response     time.Duration // handling replica responses/acks
	Other        time.Duration // stats, ping, gossip
	// JitterP99 is the 99th percentile of the unit-mean multiplier; zero
	// means 3.0, values <= 1 disable jitter.
	JitterP99 float64
	// Jitter, when non-nil, replaces the lognormal multiplier entirely
	// with an arbitrary dist sampler (heavy-tailed GC pauses, bimodal
	// compaction interference); JitterP99 is then ignored. The sampler is
	// a multiplicative factor and should have mean ~1 so the class means
	// stay calibrated.
	Jitter   dist.Sampler
	Disabled bool
}

// DefaultServiceProfile bounds the 20-node cluster at roughly 30k
// Workload-A ops/s at consistency level ONE, so closed-loop saturation
// lands in the same client-thread regime as the paper's testbeds (peak
// near 90 threads, Fig. 5(c)).
func DefaultServiceProfile() ServiceProfile {
	return ServiceProfile{
		CoordRead:    50 * time.Microsecond,
		CoordWrite:   50 * time.Microsecond,
		ReplicaRead:  160 * time.Microsecond,
		ReplicaWrite: 200 * time.Microsecond,
		Response:     8 * time.Microsecond,
		Other:        5 * time.Microsecond,
		JitterP99:    3.0,
	}
}

// Scale returns the profile with every service time multiplied by f;
// virtualized testbeds (the EC2 scenario) use f > 1.
func (p ServiceProfile) Scale(f float64) ServiceProfile {
	mul := func(d time.Duration) time.Duration { return time.Duration(float64(d) * f) }
	return ServiceProfile{
		CoordRead:    mul(p.CoordRead),
		CoordWrite:   mul(p.CoordWrite),
		ReplicaRead:  mul(p.ReplicaRead),
		ReplicaWrite: mul(p.ReplicaWrite),
		Response:     mul(p.Response),
		Other:        mul(p.Other),
		JitterP99:    p.JitterP99,
		Jitter:       p.Jitter,
		Disabled:     p.Disabled,
	}
}

// Timer converts the profile into a transport.ServiceTimer drawing jitter
// from rng (which must belong to the node's runtime).
func (p ServiceProfile) Timer(rng *rand.Rand) transport.ServiceTimer {
	jitter := p.Jitter
	if jitter == nil {
		jp99 := p.JitterP99
		if jp99 == 0 {
			jp99 = 3.0
		}
		jitter = dist.Constant{V: 1}
		if jp99 > 1 {
			jitter = dist.LognormalFromMeanP99(1.0, jp99)
		}
	}
	return func(m wire.Message) time.Duration {
		var base time.Duration
		switch m.(type) {
		case wire.ReadRequest:
			base = p.CoordRead
		case wire.WriteRequest:
			base = p.CoordWrite
		case wire.ReplicaRead:
			base = p.ReplicaRead
		case wire.Mutation, wire.Repair:
			base = p.ReplicaWrite
		case wire.ReplicaReadResp, wire.MutationAck:
			return p.Response // cheap fixed-cost handling
		default:
			return p.Other
		}
		return time.Duration(float64(base) * jitter.Sample(rng))
	}
}

func (p ServiceProfile) isZero() bool {
	return p == ServiceProfile{}
}

// DefaultSpec mirrors the paper's Grid'5000 configuration scaled to
// simulation: one DC, four racks of five nodes (20 nodes), RF=5,
// topology-aware placement, read repair on.
func DefaultSpec() Spec {
	return Spec{
		DCs:                  1,
		RacksPerDC:           4,
		NodesPerRack:         5,
		RF:                   5,
		VNodes:               16,
		NetworkTopologyAware: true,
		Profile:              simnet.Grid5000Profile(),
		ReadRepairChance:     0.1,
	}
}

// Cluster bundles a running set of nodes with the fabric connecting them.
type Cluster struct {
	Topo     *ring.Topology
	Ring     *ring.Ring
	Strategy ring.Strategy
	Net      *simnet.Net
	Bus      *transport.Bus
	Nodes    []*Node
	byID     map[ring.NodeID]*Node

	// Injected liveness (SetDown/SetUp). Every node's failure detector
	// consults it, so coordinators hint writes for down nodes and skip them
	// on reads — the same view a converged gossip detector would give.
	downMu sync.Mutex
	down   map[ring.NodeID]bool
}

// Alive reports whether a node is currently injected as up. It is the
// Config.Alive the builder wires into every node.
func (c *Cluster) Alive(id ring.NodeID) bool {
	c.downMu.Lock()
	defer c.downMu.Unlock()
	return !c.down[id]
}

// SetDown injects a node failure: the network isolates the node (in-flight
// and future messages to and from it drop) and every peer's failure
// detector convicts it immediately. The node's engine keeps its data — this
// models a crashed or partitioned process, and on SetUp the replica returns
// holding whatever it had, arbitrarily stale.
func (c *Cluster) SetDown(id ring.NodeID) {
	c.downMu.Lock()
	c.down[id] = true
	c.downMu.Unlock()
	c.Net.Isolate(id, c.NodeIDs())
}

// SetUp heals an injected failure and fires the recovery trigger: every
// peer's anti-entropy manager schedules a priority repair session with the
// recovered node (the simulated stand-in for the gossip down→up callback,
// gossip.Config.OnRecover, which serves the same role in live deployments).
func (c *Cluster) SetUp(id ring.NodeID) {
	c.downMu.Lock()
	delete(c.down, id)
	c.downMu.Unlock()
	c.Net.Rejoin(id, c.NodeIDs())
	for _, n := range c.Nodes {
		if n.ID() != id && n.RepairManager() != nil {
			n.RepairManager().PeerRecovered(id)
		}
	}
}

// FaultKind enumerates the scheduled failure injections.
type FaultKind int

// Fault kinds.
const (
	// FaultDown takes the node down (SetDown).
	FaultDown FaultKind = iota
	// FaultUp brings the node back (SetUp), triggering recovery repair.
	FaultUp
	// FaultDropHints discards the node's queued hints (empty Node means
	// every node) — the coordinator-crash injection that makes hinted
	// handoff alone insufficient.
	FaultDropHints
)

// Fault is one scheduled failure-injection event.
type Fault struct {
	At   time.Duration // offset from ScheduleFaults
	Node ring.NodeID
	Kind FaultKind
}

// ScheduleFaults arms a failure schedule on the runtime driving the
// cluster. The returned stop cancels events that have not fired yet.
func (c *Cluster) ScheduleFaults(rt sim.Runtime, faults []Fault) (stop func()) {
	cancels := make([]func(), 0, len(faults))
	for _, f := range faults {
		f := f
		cancels = append(cancels, rt.After(f.At, func() {
			switch f.Kind {
			case FaultDown:
				c.SetDown(f.Node)
			case FaultUp:
				c.SetUp(f.Node)
			case FaultDropHints:
				for _, n := range c.Nodes {
					if f.Node == "" || n.ID() == f.Node {
						n.DropHints()
					}
				}
			}
		}))
	}
	return func() {
		for _, cancel := range cancels {
			cancel()
		}
	}
}

// BuildSim assembles the cluster on a discrete-event simulator. All nodes
// share the simulator as their runtime (the DES is single-threaded, so this
// preserves the per-node serialization contract).
func BuildSim(s *sim.Sim, spec Spec) (*Cluster, error) {
	return build(spec, func(ring.NodeID) sim.Runtime { return s }, s)
}

// BuildReal assembles the cluster on real-time mailbox runtimes (one
// goroutine per node). The caller must Stop the returned cluster.
func BuildReal(spec Spec, seed int64) (*Cluster, error) {
	seedSim := sim.New(seed) // used only as a deterministic RNG source
	return build(spec, func(ring.NodeID) sim.Runtime { return sim.NewRealRuntime() }, seedSim)
}

func build(spec Spec, rtFor func(ring.NodeID) sim.Runtime, s *sim.Sim) (*Cluster, error) {
	if spec.DCs <= 0 || spec.RacksPerDC <= 0 || spec.NodesPerRack <= 0 {
		return nil, fmt.Errorf("cluster: spec must have positive dimensions, got %+v", spec)
	}
	if spec.RF <= 0 {
		return nil, fmt.Errorf("cluster: replication factor must be positive")
	}
	if spec.VNodes == 0 {
		spec.VNodes = 16
	}
	var infos []ring.NodeInfo
	for dc := 1; dc <= spec.DCs; dc++ {
		for rack := 1; rack <= spec.RacksPerDC; rack++ {
			for i := 1; i <= spec.NodesPerRack; i++ {
				infos = append(infos, ring.NodeInfo{
					ID:   ring.NodeID(fmt.Sprintf("dc%d-r%d-n%d", dc, rack, i)),
					DC:   fmt.Sprintf("dc%d", dc),
					Rack: fmt.Sprintf("r%d", rack),
				})
			}
		}
	}
	topo, err := ring.NewTopology(infos)
	if err != nil {
		return nil, err
	}
	rng, err := ring.Build(topo, spec.VNodes)
	if err != nil {
		return nil, err
	}
	var strat ring.Strategy
	if spec.NetworkTopologyAware {
		strat = ring.NetworkTopologyStrategy{RF: spec.RF}
	} else {
		strat = ring.SimpleStrategy{RF: spec.RF}
	}
	net := simnet.New(topo, spec.Profile, s.NewStream())
	bus := transport.NewBus(net)
	c := &Cluster{
		Topo:     topo,
		Ring:     rng,
		Strategy: strat,
		Net:      net,
		Bus:      bus,
		byID:     make(map[ring.NodeID]*Node),
		down:     make(map[ring.NodeID]bool),
	}
	svc := spec.Service
	if svc.isZero() {
		svc = DefaultServiceProfile()
	}
	for _, info := range infos {
		rt := rtFor(info.ID)
		n := New(Config{
			ID:               info.ID,
			Ring:             rng,
			Strategy:         strat,
			ReadTimeout:      spec.ReadTimeout,
			WriteTimeout:     spec.WriteTimeout,
			ReadRepairChance: spec.ReadRepairChance,
			HintedHandoff:    spec.HintedHandoff,
			HintQueueLimit:   spec.HintQueueLimit,
			Repair:           spec.Repair,
			Engine:           spec.Engine,
			Groups:           spec.Groups,
			GroupFn:          spec.GroupFn,
			KeySampleLimit:   spec.KeySampleLimit,
			KeyStatsDecay:    spec.KeyStatsDecay,
			Alive:            c.Alive,
			Rand:             s.NewStream(),
		}, rt, bus)
		var h transport.Handler = n
		if !svc.Disabled {
			h = transport.NewServiceQueue(rt, n, svc.Timer(s.NewStream()))
		}
		bus.Register(info.ID, rt, h)
		n.Start()
		c.Nodes = append(c.Nodes, n)
		c.byID[info.ID] = n
	}
	return c, nil
}

// Node returns the node with the given ID, or nil.
func (c *Cluster) Node(id ring.NodeID) *Node { return c.byID[id] }

// NodeIDs returns all node IDs in deterministic order.
func (c *Cluster) NodeIDs() []ring.NodeID { return c.Topo.Nodes() }

// AggregateMetrics sums metrics across all nodes. Per-group counters only
// aggregate over nodes at the newest grouping epoch: during a GroupUpdate
// rollout a laggard node's group counters still describe the old epoch's
// groups, and mixing the two would attribute one epoch's traffic to
// another epoch's groups (the same invariant the monitor enforces with its
// epoch consensus). Aggregate counters always cover every node.
func (c *Cluster) AggregateMetrics() Metrics {
	var total Metrics
	snaps := make([]Metrics, 0, len(c.Nodes))
	for _, n := range c.Nodes {
		s := n.Snapshot()
		snaps = append(snaps, s)
		if s.GroupEpoch > total.GroupEpoch {
			total.GroupEpoch = s.GroupEpoch
		}
	}
	for _, s := range snaps {
		total.Reads += s.Reads
		total.Writes += s.Writes
		total.ReplicaOps += s.ReplicaOps
		total.BytesRead += s.BytesRead
		total.BytesWritten += s.BytesWritten
		total.RepairsSent += s.RepairsSent
		total.HintsQueued += s.HintsQueued
		total.HintsReplayed += s.HintsReplayed
		total.HintsDropped += s.HintsDropped
		total.ReadTimeouts += s.ReadTimeouts
		total.WriteTimeouts += s.WriteTimeouts
		total.Unavailable += s.Unavailable
		total.RepairRows += s.RepairRows
		total.RepairAgeMs += s.RepairAgeMs
		total.ShadowSamples += s.ShadowSamples
		total.ShadowStale += s.ShadowStale
		total.SessionUpgrades += s.SessionUpgrades
		total.SessionRepolls += s.SessionRepolls
		for i := range s.LevelUse {
			total.LevelUse[i] += s.LevelUse[i]
		}
		if s.GroupEpoch != total.GroupEpoch {
			continue // old-epoch groups: counters describe retired groups
		}
		total.GroupReads = addCounters(total.GroupReads, s.GroupReads)
		total.GroupWrites = addCounters(total.GroupWrites, s.GroupWrites)
		total.GroupBytesWritten = addCounters(total.GroupBytesWritten, s.GroupBytesWritten)
		total.GroupShadowSamples = addCounters(total.GroupShadowSamples, s.GroupShadowSamples)
		total.GroupShadowStale = addCounters(total.GroupShadowStale, s.GroupShadowStale)
		total.GroupRepairRows = addCounters(total.GroupRepairRows, s.GroupRepairRows)
		total.GroupRepairAgeMs = addCounters(total.GroupRepairAgeMs, s.GroupRepairAgeMs)
	}
	return total
}

// addCounters element-wise adds src into dst, growing dst as needed.
func addCounters(dst, src []uint64) []uint64 {
	for len(dst) < len(src) {
		dst = append(dst, 0)
	}
	for i, v := range src {
		dst[i] += v
	}
	return dst
}

// Stop shuts down node maintenance and, for real-time runtimes, their
// mailbox goroutines.
func (c *Cluster) Stop() {
	for _, n := range c.Nodes {
		n.Stop()
		if rr, ok := n.rt.(*sim.RealRuntime); ok {
			rr.Stop()
		}
	}
}

package grouping

import (
	"fmt"
	"sync"
	"time"

	"harmony/internal/core"
	"harmony/internal/obs"
	"harmony/internal/ring"
	"harmony/internal/sim"
	"harmony/internal/transport"
	"harmony/internal/wire"
)

// Config parameterizes a Regrouper.
type Config struct {
	// Self is the fabric identity broadcasts originate from — usually the
	// monitor's, since the regrouper rides the monitor's collection loop
	// and never expects replies.
	Self ring.NodeID
	// Nodes are the storage nodes GroupUpdates broadcast to.
	Nodes []ring.NodeID
	// K is the number of consistency categories to learn (>= 2).
	K int
	// MinTolerance / MaxTolerance bound the per-category tolerable
	// stale-read rates: the most write-contended category gets
	// MinTolerance, the least contended MaxTolerance (see
	// core.Categorizer.Recluster).
	MinTolerance, MaxTolerance float64
	// Interval is the regroup cadence; zero means 1s. Each tick merges the
	// latest node samples, re-clusters, and — only when the grouping
	// actually changed — bumps the epoch and broadcasts.
	Interval time.Duration
	// MinKeys gates clustering: below this many merged sampled keys the
	// regrouper stays on the current assignment (zero means 8*K). It keeps
	// cold-start and drained clusters from thrashing on noise.
	MinKeys int
	// MaxCarry bounds how many consecutive reclusterings a non-default key
	// survives without fresh evidence (zero means 8, negative disables
	// carry-over). Carried keys keep their group so sampled-tail flicker
	// does not churn epochs, but a key that stays unsampled that long —
	// e.g. a migrated-away hotspot no longer hot enough to make any
	// node's export — falls back to the default group at the next applied
	// epoch instead of staying pinned tight forever (and instead of
	// growing every broadcast's key map without bound).
	MaxCarry int
	// MinShift is epoch hysteresis: a new assignment only becomes an epoch
	// when the keys that changed groups carry more than this fraction of
	// the total sampled weight (zero means 0.10, negative disables). Keys
	// on a cluster boundary flicker between groups on every recluster;
	// they carry negligible traffic, and bumping the epoch for them would
	// re-baseline every node's counters — and blind the monitor for a
	// round — without changing behavior. A migrating hotspot moves a large
	// weight share and clears the bar immediately.
	MinShift float64
	// Seed makes clustering deterministic.
	Seed int64
	// Controller, when set, is regrouped in lockstep with the broadcast:
	// per-group models migrate to their heir groups instead of resetting.
	Controller *core.Controller
	// Initial is the epoch-0 assignment the cluster was built with; nil
	// derives a uniform one (no keys assigned, K groups, tolerances spread
	// evenly, default loosest). It must match the cluster's initial
	// Spec.Groups/GroupFn for the loop to be consistent before the first
	// regroup.
	Initial *Assignment
	// OnRegroup observes every applied assignment (after broadcast).
	OnRegroup func(*Assignment)
	// Trace, when set, receives one structured event per applied epoch
	// (broadcast-side; the controller and nodes emit their own install
	// events). Nil disables tracing.
	Trace *obs.Trace
}

// Regrouper runs the monitor-side half of the online grouping loop. Wire
// IngestStats into core.MonitorConfig.OnNodeStats and call Start; every
// Interval it merges the freshest per-node key samples, re-clusters them
// with core.Categorizer, and — when the learned grouping differs from the
// incumbent — installs it cluster-wide as a new epoch: GroupUpdate to every
// node, Regroup on the controller.
//
// It is safe for concurrent use; in the common deployment everything runs
// on the monitor node's runtime.
type Regrouper struct {
	cfg  Config
	rt   sim.Runtime
	send transport.Sender
	cat  *core.Categorizer
	stop func()

	mu      sync.Mutex
	cur     *Assignment
	samples map[ring.NodeID][]wire.KeySample
	carried map[string]int // recluster rounds a key was carried unsampled
	bumps   uint64
}

// New validates the config and creates a Regrouper.
func New(cfg Config, rt sim.Runtime, send transport.Sender) (*Regrouper, error) {
	if cfg.K < 2 {
		return nil, fmt.Errorf("grouping: need K >= 2 categories, got %d", cfg.K)
	}
	if cfg.MinTolerance > cfg.MaxTolerance {
		return nil, fmt.Errorf("grouping: MinTolerance %v > MaxTolerance %v", cfg.MinTolerance, cfg.MaxTolerance)
	}
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	if cfg.MinKeys <= 0 {
		cfg.MinKeys = 8 * cfg.K
	}
	if cfg.MinShift == 0 {
		cfg.MinShift = 0.10
	}
	if cfg.MaxCarry == 0 {
		cfg.MaxCarry = 8
	}
	cat, err := core.NewCategorizer(cfg.K, cfg.MaxTolerance, cfg.Seed)
	if err != nil {
		return nil, err
	}
	initial := cfg.Initial
	if initial == nil {
		tols := make([]float64, cfg.K)
		for i := range tols {
			frac := 0.0
			if cfg.K > 1 {
				frac = float64(i) / float64(cfg.K-1)
			}
			tols[i] = cfg.MinTolerance + frac*(cfg.MaxTolerance-cfg.MinTolerance)
		}
		if initial, err = Uniform(tols, cfg.K-1); err != nil {
			return nil, err
		}
	}
	return &Regrouper{
		cfg:     cfg,
		rt:      rt,
		send:    send,
		cat:     cat,
		cur:     initial,
		samples: make(map[ring.NodeID][]wire.KeySample),
		carried: make(map[string]int),
	}, nil
}

// IngestStats records a node's latest key samples; it matches the
// core.MonitorConfig.OnNodeStats hook. Samples are decayed cumulative
// weights, so each node's newest report replaces its previous one — an
// empty report clears the node's contribution (its sampler drained or
// sampling is off), rather than leaving retired keys merged into every
// future recluster.
func (r *Regrouper) IngestStats(node ring.NodeID, s wire.StatsResponse) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(s.KeySamples) > 0 {
		r.samples[node] = s.KeySamples
	} else {
		delete(r.samples, node)
	}
}

// Start begins periodic regrouping.
func (r *Regrouper) Start() {
	if r.stop != nil {
		return
	}
	r.stop = sim.Every(r.rt, func() time.Duration { return r.cfg.Interval }, func() { r.RegroupNow() })
}

// Stop halts periodic regrouping.
func (r *Regrouper) Stop() {
	if r.stop != nil {
		r.stop()
		r.stop = nil
	}
}

// Current returns the live assignment (never nil).
func (r *Regrouper) Current() *Assignment {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cur
}

// Epochs reports how many epoch bumps have been applied.
func (r *Regrouper) Epochs() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.bumps
}

// RegroupNow merges the latest samples and re-clusters immediately,
// applying a new epoch when the learned grouping differs from the current
// one. It reports whether an epoch was applied. Exposed for tests and for
// deployments that want to trigger regrouping on external signals instead
// of (or in addition to) the timer.
func (r *Regrouper) RegroupNow() bool {
	r.mu.Lock()
	merged := core.NewKeyStats(1)
	weight := make(map[string]float64)
	for _, samples := range r.samples {
		for _, s := range samples {
			merged.Add(s.Key, s.Reads, s.Writes)
			weight[string(s.Key)] += s.Reads + s.Writes
		}
	}
	cur := r.cur
	r.mu.Unlock()

	if merged.Len() < r.cfg.MinKeys {
		return false
	}
	if err := r.cat.Recluster(merged, r.cfg.MinTolerance, r.cfg.MaxTolerance); err != nil {
		return false
	}
	cats := r.cat.Categories()
	tols := make([]float64, len(cats))
	for i, c := range cats {
		tols[i] = c.Tolerance
	}
	assign := r.cat.Assignment()
	// Carry over non-default assignments for keys the sample no longer
	// holds: a key that decayed out of every node's sampler left no new
	// evidence, and letting it silently fall back to the default group
	// would bump the epoch every time the sampled tail flickers. Demotion
	// happens on evidence — the key reappears with cold features and the
	// clusterer reassigns it — or, for keys that never reappear (a
	// migrated-away hotspot buried below every node's export cutoff),
	// after MaxCarry consecutive evidence-free rounds, so the tight group
	// cannot accrete every hot range the workload ever had.
	r.mu.Lock()
	for key := range r.carried {
		if _, ok := cur.assign[key]; !ok {
			delete(r.carried, key) // no longer carried anywhere
		}
	}
	for key, g := range cur.assign {
		if g == cur.def || g >= len(tols) {
			continue
		}
		if _, ok := assign[key]; ok {
			delete(r.carried, key) // fresh evidence
			continue
		}
		if r.cfg.MaxCarry < 0 {
			continue
		}
		r.carried[key]++
		if r.carried[key] <= r.cfg.MaxCarry {
			assign[key] = g
		}
	}
	r.mu.Unlock()
	candidate, err := NewAssignment(cur.Epoch()+1, tols, len(tols)-1, assign)
	if err != nil {
		return false
	}
	if cur.EquivalentTo(candidate) {
		// The workload still clusters the way it did: keep the epoch (and
		// every node's counters) instead of churning the whole pipeline.
		return false
	}
	if r.cfg.MinShift > 0 && cur.Groups() == candidate.Groups() {
		total, changed := 0.0, 0.0
		for key, w := range weight {
			total += w
			if cur.GroupOf([]byte(key)) != candidate.GroupOf([]byte(key)) {
				changed += w
			}
		}
		if total > 0 && changed/total < r.cfg.MinShift {
			// Only boundary flicker moved: not worth an epoch.
			return false
		}
	}

	// Model migration: each new group inherits the old group that owned
	// the plurality of its traffic (by sampled weight), so a category that
	// merely changed membership keeps its adapted consistency level.
	parents := make([]int, candidate.Groups())
	votes := make([]map[int]float64, candidate.Groups())
	for i := range votes {
		parents[i] = -1
		votes[i] = make(map[int]float64)
	}
	for key, g := range assign {
		votes[g][cur.groupOfString(key)] += weight[key]
	}
	for g, v := range votes {
		best, bestW := -1, 0.0
		for old := 0; old < cur.Groups(); old++ {
			if w, ok := v[old]; ok && w > bestW {
				best, bestW = old, w
			}
		}
		parents[g] = best
	}

	// Claim the epoch before announcing it: a concurrent RegroupNow that
	// won the race already moved r.cur, and broadcasting a second,
	// different epoch-(e+1) assignment would leave this regrouper's view
	// divergent from what the nodes and controller installed (they ignore
	// duplicate epochs). The loser simply yields; the next tick re-runs
	// against the winner's assignment.
	r.mu.Lock()
	if r.cur != cur {
		r.mu.Unlock()
		return false
	}
	r.cur = candidate
	r.bumps++
	cb := r.cfg.OnRegroup
	r.mu.Unlock()

	update := candidate.ToWire()
	for _, n := range r.cfg.Nodes {
		r.send.Send(r.cfg.Self, n, update)
	}
	r.cfg.Trace.Add(obs.Event{
		Kind:  obs.EventRegroup,
		Group: -1,
		Epoch: candidate.Epoch(),
		Detail: fmt.Sprintf("broadcast epoch %d: %d groups, %d pinned keys, %d nodes",
			candidate.Epoch(), candidate.Groups(), len(assign), len(r.cfg.Nodes)),
	})
	if r.cfg.Controller != nil {
		r.cfg.Controller.Regroup(candidate.Epoch(), candidate.GroupOf, candidate.Tolerances(), parents)
	}
	if cb != nil {
		cb(candidate)
	}
	return true
}

// Package core implements Harmony itself: the probabilistic stale-read
// estimator of §IV, the monitoring module that derives its inputs from the
// running cluster (§V-A), and the adaptive-consistency controller that turns
// the estimate into a per-operation consistency level using the decision
// scheme of §III. It also carries the paper's future-work extensions
// (access-pattern categorization and automatic tolerance advice).
package core

import (
	"fmt"
	"math"
	"time"
)

// Model holds the estimator inputs. Following the paper's parameterization:
// reads arrive Poisson with rate λr (LambdaR, events/second) and writes
// arrive Poisson with *mean inter-arrival time* λw (LambdaW, seconds — the
// paper uses the exponential parameter λw⁻¹ so λr·λw is the dimensionless
// read/write rate ratio). N is the replication factor and Tp the update
// propagation time to all replicas.
type Model struct {
	N       int
	LambdaR float64       // read arrival rate, 1/s
	LambdaW float64       // mean write inter-arrival time, s
	Tp      time.Duration // propagation time of an update to all replicas
}

// Valid reports whether the model has enough signal to produce an estimate.
func (m Model) Valid() bool {
	return m.N >= 1 && m.LambdaR > 0 && m.LambdaW > 0 && m.Tp >= 0
}

// StaleReadProbability evaluates the closed form of the paper's equation
// (6),
//
//	Pr(stale) = (N−1)·(1−e^{−λr·Tp})·(1+λr·λw) / (N·λr·λw),
//
// clamped into [0, 1]: the derivation approximates an expectation over the
// write sequence and can exceed one when writes vastly outpace reads (the
// paper's Fig. 4 likewise saturates at 1.0).
func (m Model) StaleReadProbability() float64 {
	if !m.Valid() || m.N == 1 {
		return 0
	}
	lrlw := m.LambdaR * m.LambdaW
	if lrlw <= 0 {
		return 0
	}
	tp := m.Tp.Seconds()
	p := float64(m.N-1) / float64(m.N) * (1 - math.Exp(-m.LambdaR*tp)) * (1 + lrlw) / lrlw
	return clamp01(p)
}

// ReplicasNeeded evaluates the paper's equation (8): the minimum number of
// replicas Xn a read must block for so the expected stale-read rate stays at
// or below the application's tolerance asr,
//
//	Xn ≥ N·(A − ASR·B)/A,  A = (1−e^{−λr·Tp})·(1+λr·λw),  B = λr·λw,
//
// rounded up and clamped to [1, N].
func (m Model) ReplicasNeeded(asr float64) int {
	if !m.Valid() || m.N == 1 {
		return 1
	}
	if asr < 0 {
		asr = 0
	}
	b := m.LambdaR * m.LambdaW
	a := (1 - math.Exp(-m.LambdaR*m.Tp.Seconds())) * (1 + b)
	if a <= 0 {
		return 1 // no staleness possible: Tp or rates are degenerate
	}
	x := float64(m.N) * (a - asr*b) / a
	n := int(math.Ceil(x - 1e-9))
	if n < 1 {
		n = 1
	}
	if n > m.N {
		n = m.N
	}
	return n
}

// String renders the model for logs.
func (m Model) String() string {
	return fmt.Sprintf("N=%d λr=%.2f/s λw=%.4fs Tp=%v", m.N, m.LambdaR, m.LambdaW, m.Tp)
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// PropagationTime models Tp(Ln, avgw) as defined in §IV: the network latency
// Ln (one-way, to the farthest replica) plus the serialization time of the
// average write size over the replication bandwidth. A zero bandwidth drops
// the size term.
func PropagationTime(ln time.Duration, avgWriteBytes float64, bandwidthBytesPerSec float64) time.Duration {
	tp := ln
	if bandwidthBytesPerSec > 0 && avgWriteBytes > 0 {
		tp += time.Duration(avgWriteBytes / bandwidthBytesPerSec * float64(time.Second))
	}
	return tp
}

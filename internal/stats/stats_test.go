package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.P99() != 0 {
		t.Fatal("zero histogram must report zeros")
	}
	h.Record(10 * time.Millisecond)
	h.Record(20 * time.Millisecond)
	h.Record(30 * time.Millisecond)
	if h.Count() != 3 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Min() != 10*time.Millisecond || h.Max() != 30*time.Millisecond {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
	if got := h.Mean(); got != 20*time.Millisecond {
		t.Fatalf("mean = %v", got)
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	var h Histogram
	h.Record(-5 * time.Millisecond)
	if h.Min() != 0 {
		t.Fatalf("negative record min = %v, want 0", h.Min())
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	var h Histogram
	r := rand.New(rand.NewSource(7))
	samples := make([]time.Duration, 0, 50000)
	for i := 0; i < 50000; i++ {
		// lognormal-ish latencies between ~100us and ~1s
		d := time.Duration(math.Exp(12+2*r.NormFloat64())) * time.Nanosecond
		h.Record(d)
		samples = append(samples, d)
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		exact := ExactPercentile(samples, q)
		est := h.Quantile(q)
		relErr := math.Abs(float64(est-exact)) / float64(exact)
		if relErr > 0.10 {
			t.Fatalf("q=%v exact=%v est=%v relErr=%v", q, exact, est, relErr)
		}
	}
}

func TestHistogramQuantileEdges(t *testing.T) {
	var h Histogram
	h.Record(5 * time.Millisecond)
	if got := h.Quantile(-1); got != 5*time.Millisecond {
		t.Fatalf("q<0 = %v", got)
	}
	if got := h.Quantile(2); got != 5*time.Millisecond {
		t.Fatalf("q>1 = %v", got)
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	for i := 1; i <= 100; i++ {
		a.Record(time.Duration(i) * time.Millisecond)
	}
	for i := 101; i <= 200; i++ {
		b.Record(time.Duration(i) * time.Millisecond)
	}
	a.Merge(&b)
	if a.Count() != 200 {
		t.Fatalf("merged count = %d", a.Count())
	}
	if a.Max() != 200*time.Millisecond || a.Min() != time.Millisecond {
		t.Fatalf("merged min/max = %v/%v", a.Min(), a.Max())
	}
	var empty Histogram
	a.Merge(&empty) // must not disturb
	if a.Count() != 200 {
		t.Fatal("merge with empty changed count")
	}
}

// TestHistogramMergeEquivalence pins the defining property of Merge: merging
// the histograms of two sample sets is indistinguishable — bucket counts,
// totals, extrema, and every quantile — from one histogram of the
// concatenated samples.
func TestHistogramMergeEquivalence(t *testing.T) {
	property := func(seedA, seedB int64, nA, nB uint16) bool {
		draw := func(seed int64, n int) []time.Duration {
			r := rand.New(rand.NewSource(seed))
			out := make([]time.Duration, n)
			for i := range out {
				// Spread across many octaves, including sub-octave-4 values
				// and negatives (clamped to 0 by Record).
				out[i] = time.Duration(math.Exp(2+7*r.NormFloat64()))*time.Nanosecond - 5
			}
			return out
		}
		sa := draw(seedA, int(nA%2000))
		sb := draw(seedB, int(nB%2000))

		var ha, hb, merged, concat Histogram
		for _, d := range sa {
			ha.Record(d)
			concat.Record(d)
		}
		for _, d := range sb {
			hb.Record(d)
			concat.Record(d)
		}
		merged.Merge(&ha)
		merged.Merge(&hb)

		if merged != concat {
			t.Logf("merged != concat: %v vs %v", merged.String(), concat.String())
			return false
		}
		for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
			if merged.Quantile(q) != concat.Quantile(q) {
				t.Logf("q=%v: merged %v vs concat %v", q, merged.Quantile(q), concat.Quantile(q))
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestHistogramMergeCommutes: a.Merge(b) and b.Merge(a) yield the same
// distribution (order of merging must not matter).
func TestHistogramMergeCommutes(t *testing.T) {
	var a1, b1, a2, b2 Histogram
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 500; i++ {
		da := time.Duration(r.Int63n(int64(10 * time.Second)))
		db := time.Duration(r.Int63n(int64(time.Millisecond)))
		a1.Record(da)
		a2.Record(da)
		b1.Record(db)
		b2.Record(db)
	}
	a1.Merge(&b1) // a <- b
	b2.Merge(&a2) // b <- a
	if a1 != b2 {
		t.Fatalf("merge not commutative:\n a.Merge(b) = %v\n b.Merge(a) = %v", a1.String(), b2.String())
	}
}

func TestHistogramReset(t *testing.T) {
	var h Histogram
	h.Record(time.Second)
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 {
		t.Fatal("reset did not clear")
	}
}

func TestHistogramMonotoneQuantiles(t *testing.T) {
	if err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var h Histogram
		for i := 0; i < 500; i++ {
			h.Record(time.Duration(r.Int63n(int64(time.Second))))
		}
		return h.Quantile(0.5) <= h.Quantile(0.9) &&
			h.Quantile(0.9) <= h.Quantile(0.99) &&
			h.Quantile(0.99) <= h.Max() && h.Quantile(0) >= h.Min()
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestExactPercentile(t *testing.T) {
	s := []time.Duration{5, 1, 4, 2, 3}
	if got := ExactPercentile(s, 0.5); got != 3 {
		t.Fatalf("median = %v, want 3", got)
	}
	if got := ExactPercentile(s, 1.0); got != 5 {
		t.Fatalf("p100 = %v, want 5", got)
	}
	if got := ExactPercentile(nil, 0.5); got != 0 {
		t.Fatalf("empty = %v, want 0", got)
	}
	// input must not be mutated
	if s[0] != 5 {
		t.Fatal("ExactPercentile mutated input")
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	done := make(chan struct{})
	for i := 0; i < 4; i++ {
		go func() {
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
			done <- struct{}{}
		}()
	}
	for i := 0; i < 4; i++ {
		<-done
	}
	if c.Value() != 4000 {
		t.Fatalf("counter = %d, want 4000", c.Value())
	}
}

func TestRateFromDelta(t *testing.T) {
	if got := RateFromDelta(100, time.Second); got != 100 {
		t.Fatalf("rate = %v", got)
	}
	if got := RateFromDelta(100, 0); got != 0 {
		t.Fatalf("zero-window rate = %v", got)
	}
	if got := RateFromDelta(50, 500*time.Millisecond); got != 100 {
		t.Fatalf("rate = %v", got)
	}
}

func TestEWMAConvergence(t *testing.T) {
	e := NewEWMA(time.Second)
	t0 := time.Unix(0, 0)
	e.Observe(t0, 10)
	if e.Value() != 10 {
		t.Fatalf("first observation = %v", e.Value())
	}
	// After many half-lives of observing 20, value approaches 20.
	for i := 1; i <= 20; i++ {
		e.Observe(t0.Add(time.Duration(i)*time.Second), 20)
	}
	if math.Abs(e.Value()-20) > 0.1 {
		t.Fatalf("ewma = %v, want ~20", e.Value())
	}
}

func TestEWMAHalfLifeExact(t *testing.T) {
	e := NewEWMA(time.Second)
	t0 := time.Unix(0, 0)
	e.Observe(t0, 0)
	e.Observe(t0.Add(time.Second), 1)
	// one half-life: value should move halfway from 0 to 1
	if math.Abs(e.Value()-0.5) > 1e-9 {
		t.Fatalf("after one half-life = %v, want 0.5", e.Value())
	}
}

func TestEWMAPanicsOnBadHalfLife(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewEWMA(0)
}

func TestWelford(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.Count() != 8 {
		t.Fatalf("n = %d", w.Count())
	}
	if math.Abs(w.Mean()-5) > 1e-12 {
		t.Fatalf("mean = %v", w.Mean())
	}
	// sample variance of this classic dataset is 32/7
	if math.Abs(w.Variance()-32.0/7.0) > 1e-9 {
		t.Fatalf("variance = %v", w.Variance())
	}
	var empty Welford
	if empty.Variance() != 0 || empty.StdDev() != 0 {
		t.Fatal("empty welford must report 0")
	}
}

func TestWindowRate(t *testing.T) {
	w := NewWindowRate(time.Second, 10)
	t0 := time.Unix(100, 0)
	for i := 0; i < 50; i++ {
		w.Observe(t0.Add(time.Duration(i) * 100 * time.Millisecond)) // 10/s for 5s
	}
	rate := w.Rate(t0.Add(5 * time.Second))
	if math.Abs(rate-10) > 2.5 {
		t.Fatalf("rate = %v, want ~10", rate)
	}
	// After a long silent gap, the rate decays to 0.
	rate = w.Rate(t0.Add(60 * time.Second))
	if rate != 0 {
		t.Fatalf("stale rate = %v, want 0", rate)
	}
}

func TestWindowRateEmpty(t *testing.T) {
	w := NewWindowRate(time.Second, 4)
	if got := w.Rate(time.Unix(0, 0)); got != 0 {
		t.Fatalf("empty rate = %v", got)
	}
}

func BenchmarkHistogramRecord(b *testing.B) {
	var h Histogram
	for i := 0; i < b.N; i++ {
		h.Record(time.Duration(i%1000) * time.Microsecond)
	}
}

func BenchmarkHistogramP99(b *testing.B) {
	var h Histogram
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 100000; i++ {
		h.Record(time.Duration(r.Int63n(int64(time.Second))))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.P99()
	}
}

// Package grouping closes the loop the paper's §VII leaves open: it turns
// core.Categorizer's offline clustering into an online, epoch-versioned
// regrouping subsystem. Storage nodes sample the keys they coordinate
// (cluster.Config.KeySampleLimit) and ship decayed per-key weights on every
// stats poll; the Regrouper — riding the monitor's collection loop on the
// monitor node — merges those samples, periodically re-clusters them into
// consistency categories, and broadcasts the resulting Assignment to every
// node as a wire.GroupUpdate. Nodes and the multi-model controller swap
// their group functions atomically and re-baseline per-group telemetry, so
// measurements from one epoch are never attributed to another epoch's
// groups.
package grouping

import (
	"fmt"
	"math"

	"harmony/internal/wire"
)

// Assignment is one epoch's immutable key-grouping: a key→group map over
// the sampled keys, a default group for everything else, and one tolerable
// stale-read rate per group. Groups are in canonical contention order
// (group 0 tightest, last group loosest — see core.Categorizer.Recluster),
// which keeps group identities stable across epochs of a steady workload.
//
// An Assignment never changes after construction, so GroupOf is safe for
// concurrent use without locking — callers swap whole assignments.
type Assignment struct {
	epoch      uint64
	tolerances []float64
	def        int
	assign     map[string]int
}

// NewAssignment builds an assignment. tolerances must be non-empty and
// finite; group ids in assign and def are clamped into range.
func NewAssignment(epoch uint64, tolerances []float64, def int, assign map[string]int) (*Assignment, error) {
	if len(tolerances) == 0 {
		return nil, fmt.Errorf("grouping: assignment needs at least one group")
	}
	tols := make([]float64, len(tolerances))
	for i, t := range tolerances {
		if math.IsNaN(t) {
			return nil, fmt.Errorf("grouping: tolerance %d is NaN", i)
		}
		if t < 0 {
			t = 0
		}
		if t > 1 {
			t = 1
		}
		tols[i] = t
	}
	if def < 0 || def >= len(tols) {
		def = len(tols) - 1
	}
	m := make(map[string]int, len(assign))
	for k, g := range assign {
		if g >= 0 && g < len(tols) {
			m[k] = g
		}
	}
	return &Assignment{epoch: epoch, tolerances: tols, def: def, assign: m}, nil
}

// Uniform returns the epoch-0 assignment every cluster implicitly starts
// from: groups groups with the given tolerances and no keys assigned — all
// keys fall to the default group.
func Uniform(tolerances []float64, def int) (*Assignment, error) {
	return NewAssignment(0, tolerances, def, nil)
}

// Epoch returns the assignment's epoch.
func (a *Assignment) Epoch() uint64 { return a.epoch }

// Groups returns the number of groups.
func (a *Assignment) Groups() int { return len(a.tolerances) }

// Default returns the group unassigned keys fall to.
func (a *Assignment) Default() int { return a.def }

// Len returns how many keys are explicitly assigned.
func (a *Assignment) Len() int { return len(a.assign) }

// Tolerances returns a copy of the per-group tolerance table.
func (a *Assignment) Tolerances() []float64 {
	return append([]float64(nil), a.tolerances...)
}

// GroupOf maps a key to its group; unassigned keys get the default group.
// Safe for concurrent use (the assignment is immutable), so it can serve
// directly as a cluster GroupFn or controller group function.
func (a *Assignment) GroupOf(key []byte) int {
	if g, ok := a.assign[string(key)]; ok {
		return g
	}
	return a.def
}

// ToWire renders the assignment as the broadcast message.
func (a *Assignment) ToWire() wire.GroupUpdate {
	u := wire.GroupUpdate{
		Epoch:      a.epoch,
		Tolerances: append([]float64(nil), a.tolerances...),
		Default:    uint32(a.def),
	}
	u.Entries = make([]wire.GroupAssign, 0, len(a.assign))
	for k, g := range a.assign {
		u.Entries = append(u.Entries, wire.GroupAssign{Key: []byte(k), Group: uint32(g)})
	}
	return u
}

// FromWire reconstructs an assignment from a broadcast message.
func FromWire(u wire.GroupUpdate) (*Assignment, error) {
	assign := make(map[string]int, len(u.Entries))
	for _, e := range u.Entries {
		assign[string(e.Key)] = int(e.Group)
	}
	return NewAssignment(u.Epoch, u.Tolerances, int(u.Default), assign)
}

// EquivalentTo reports whether b groups every key exactly like a (same
// group count, same tolerances, and the same group for every key either
// side mentions — keys absent from both maps compare via the defaults).
// The regrouper uses it to skip epoch bumps when a recluster reproduced the
// incumbent grouping: no broadcast, no counter re-baseline, no model churn.
func (a *Assignment) EquivalentTo(b *Assignment) bool {
	if b == nil || len(a.tolerances) != len(b.tolerances) || a.def != b.def {
		return false
	}
	for i, t := range a.tolerances {
		if math.Abs(t-b.tolerances[i]) > 1e-9 {
			return false
		}
	}
	for k, g := range a.assign {
		if b.groupOfString(k) != g {
			return false
		}
	}
	for k, g := range b.assign {
		if a.groupOfString(k) != g {
			return false
		}
	}
	return true
}

func (a *Assignment) groupOfString(k string) int {
	if g, ok := a.assign[k]; ok {
		return g
	}
	return a.def
}

package grouping_test

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"harmony/internal/cluster"
	"harmony/internal/core"
	"harmony/internal/grouping"
	"harmony/internal/sim"
	"harmony/internal/wire"
)

// TestOnlineRegroupingLoopEndToEnd drives the full loop on a simulated
// cluster: nodes sample the keys they coordinate, the monitor taps every
// stats response into the regrouper, the regrouper learns a hot/cold split
// and broadcasts a GroupUpdate, nodes swap their group functions and
// re-baseline, and the controller regroups in lockstep — all while client
// traffic keeps flowing.
func TestOnlineRegroupingLoopEndToEnd(t *testing.T) {
	s := sim.New(3)
	initial, err := grouping.Uniform([]float64{0.02, 0.6}, 1)
	if err != nil {
		t.Fatal(err)
	}
	spec := cluster.DefaultSpec()
	spec.Groups = 2
	spec.GroupFn = initial.GroupOf
	spec.KeySampleLimit = 64
	c, err := cluster.BuildSim(s, spec)
	if err != nil {
		t.Fatal(err)
	}

	ctl := core.NewController(core.ControllerConfig{
		Policy:          core.Policy{ToleratedStaleRate: 0.02},
		N:               spec.RF,
		AvgWriteBytes:   128,
		Groups:          2,
		GroupFn:         initial.GroupOf,
		GroupTolerances: initial.Tolerances(),
	})
	rg, err := grouping.New(grouping.Config{
		Self:         "harmony-monitor",
		Nodes:        c.NodeIDs(),
		K:            2,
		MinTolerance: 0.02,
		MaxTolerance: 0.6,
		Interval:     500 * time.Millisecond,
		MinKeys:      24,
		Seed:         3,
		Controller:   ctl,
		Initial:      initial,
		OnRegroup: func(a *grouping.Assignment) {
			t.Logf("epoch %d: len=%d hot3->%d cold42->%d tols=%v",
				a.Epoch(), a.Len(), a.GroupOf([]byte("hot3")), a.GroupOf([]byte("cold42")), a.Tolerances())
		},
	}, s, c.Bus)
	if err != nil {
		t.Fatal(err)
	}
	mon := core.NewMonitor(core.MonitorConfig{
		ID:             "harmony-monitor",
		Nodes:          c.NodeIDs(),
		Interval:       250 * time.Millisecond,
		ReplicaSetSize: spec.RF,
		OnObservation:  ctl.Observe,
		OnNodeStats:    rg.IngestStats,
	}, s, c.Bus)
	c.Net.Colocate("harmony-monitor", c.NodeIDs()[0])
	c.Bus.Register("harmony-monitor", s, mon)
	mon.Start()
	rg.Start()

	// Synthetic traffic straight at the coordinators: 16 write-contended
	// hot keys (50/50), 200 read-mostly cold keys (95/5). Keys, ops and
	// coordinators draw from a seeded rng — deterministic, but free of the
	// modular aliasing a counter-based generator would bake into each
	// node's local sample.
	nodes := c.NodeIDs()
	rng := rand.New(rand.NewSource(99))
	var seq uint64
	s.Ticker(2*time.Millisecond, func() {
		co := nodes[rng.Intn(len(nodes))]
		seq++
		hot := []byte(fmt.Sprintf("hot%d", rng.Intn(16)))
		if rng.Float64() < 0.5 {
			c.Bus.Send("lg", co, wire.WriteRequest{ID: seq, Key: hot, Value: []byte("v"), Level: wire.One})
		} else {
			c.Bus.Send("lg", co, wire.ReadRequest{ID: seq, Key: hot, Level: wire.One})
		}
		seq++
		cold := []byte(fmt.Sprintf("cold%d", rng.Intn(200)))
		if rng.Float64() < 0.05 {
			c.Bus.Send("lg", co, wire.WriteRequest{ID: seq, Key: cold, Value: []byte("v"), Level: wire.One})
		} else {
			c.Bus.Send("lg", co, wire.ReadRequest{ID: seq, Key: cold, Level: wire.One})
		}
	})
	s.RunFor(6 * time.Second)
	mon.Stop()
	rg.Stop()
	// Drain: an epoch broadcast right at the horizon still has its
	// GroupUpdates in flight; let them land before asserting convergence.
	s.RunFor(500 * time.Millisecond)

	if rg.Epochs() == 0 {
		t.Fatal("the loop never applied a learned epoch")
	}
	cur := rg.Current()
	if g := cur.GroupOf([]byte("hot3")); g != 0 {
		t.Fatalf("hot key learned into group %d, want tight group 0", g)
	}
	if g := cur.GroupOf([]byte("cold42")); g != 1 {
		t.Fatalf("cold key learned into group %d, want loose group 1", g)
	}
	if ctl.Epoch() != cur.Epoch() {
		t.Fatalf("controller epoch %d != assignment epoch %d", ctl.Epoch(), cur.Epoch())
	}
	for _, n := range c.Nodes {
		if n.Epoch() != cur.Epoch() {
			t.Fatalf("node %s at epoch %d, want %d", n.ID(), n.Epoch(), cur.Epoch())
		}
	}
	// Post-regroup telemetry flows under the new groups: hot traffic lands
	// in group 0.
	m := c.AggregateMetrics()
	if len(m.GroupReads) != 2 || m.GroupReads[0] == 0 || m.GroupWrites[0] == 0 {
		t.Fatalf("post-regroup group counters = reads %v writes %v", m.GroupReads, m.GroupWrites)
	}
}

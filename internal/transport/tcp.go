package transport

import (
	"errors"
	"fmt"
	"log"
	"net"
	"sync"

	"harmony/internal/ring"
	"harmony/internal/sim"
	"harmony/internal/wire"
)

// envelope frames a routed message on a TCP stream: the logical sender and
// receiver ride in a GossipSyn-style header... instead we keep it simple:
// every stream starts with a hello frame naming the remote endpoint, after
// which raw wire frames flow and the connection identifies the peer.
//
// hello is encoded as a wire.GossipSyn whose From field carries the dialer's
// endpoint ID with no digests — reusing the codec avoids a second framing
// format on the wire.

// TCPNode serves a transport endpoint over real TCP: it accepts connections
// from peers and clients, decodes frames, and posts them to the handler's
// runtime. Outbound sends lazily dial and cache one connection per target
// address.
type TCPNode struct {
	id      ring.NodeID
	rt      sim.Runtime
	handler Handler
	ln      net.Listener
	logf    func(string, ...any)

	mu     sync.Mutex
	peers  map[ring.NodeID]string // static address book
	conns  map[ring.NodeID]*tcpConn
	closed bool
}

// tcpConn serializes writers on one connection; every frame — hello
// included — is encoded into a pooled scratch buffer outside mu and written
// with a single conn.Write under it.
type tcpConn struct {
	mu sync.Mutex
	c  net.Conn
}

// writeFrame encodes m into pooled scratch and writes it as one call.
func (tc *tcpConn) writeFrame(m wire.Message) error {
	buf, err := wire.GetFrame(m)
	if err != nil {
		return err
	}
	defer wire.PutFrame(buf)
	tc.mu.Lock()
	_, err = tc.c.Write(*buf)
	tc.mu.Unlock()
	return err
}

// TCPConfig configures a TCP endpoint.
type TCPConfig struct {
	// ID is this endpoint's logical name.
	ID ring.NodeID
	// Listen is the local address ("host:port"); empty disables accepting
	// (pure client endpoints).
	Listen string
	// Peers maps endpoint IDs to dialable addresses.
	Peers map[ring.NodeID]string
	// Logf receives connection diagnostics; nil uses log.Printf.
	Logf func(string, ...any)
}

// NewTCPNode starts listening (when configured) and returns the endpoint.
// The handler's callbacks run on rt, preserving the single-threaded actor
// contract.
func NewTCPNode(cfg TCPConfig, rt sim.Runtime, h Handler) (*TCPNode, error) {
	n := &TCPNode{
		id:      cfg.ID,
		rt:      rt,
		handler: h,
		logf:    cfg.Logf,
		peers:   make(map[ring.NodeID]string, len(cfg.Peers)),
		conns:   make(map[ring.NodeID]*tcpConn),
	}
	if n.logf == nil {
		n.logf = log.Printf
	}
	for id, addr := range cfg.Peers {
		n.peers[id] = addr
	}
	if cfg.Listen != "" {
		ln, err := net.Listen("tcp", cfg.Listen)
		if err != nil {
			return nil, fmt.Errorf("transport: listen %s: %w", cfg.Listen, err)
		}
		n.ln = ln
		go n.acceptLoop()
	}
	return n, nil
}

// SetHandler rebinds the inbound message handler. Endpoints whose handler
// needs the TCPNode as its Sender are constructed with a placeholder and
// rebound once the real handler exists; messages arriving in the window are
// handled by the placeholder.
func (n *TCPNode) SetHandler(h Handler) {
	n.mu.Lock()
	n.handler = h
	n.mu.Unlock()
}

func (n *TCPNode) currentHandler() Handler {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.handler
}

// Addr returns the bound listen address (nil when not listening).
func (n *TCPNode) Addr() net.Addr {
	if n.ln == nil {
		return nil
	}
	return n.ln.Addr()
}

// AddPeer registers (or updates) a peer address.
func (n *TCPNode) AddPeer(id ring.NodeID, addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.peers[id] = addr
}

func (n *TCPNode) acceptLoop() {
	for {
		c, err := n.ln.Accept()
		if err != nil {
			n.mu.Lock()
			closed := n.closed
			n.mu.Unlock()
			if !closed {
				n.logf("transport %s: accept: %v", n.id, err)
			}
			return
		}
		go n.serveConn(c)
	}
}

// serveConn reads the hello frame then pumps messages to the handler.
func (n *TCPNode) serveConn(c net.Conn) {
	r := wire.NewReader(c)
	hello, err := r.Read()
	if err != nil {
		_ = c.Close()
		return
	}
	syn, ok := hello.(wire.GossipSyn)
	if !ok || syn.From == "" {
		n.logf("transport %s: bad hello from %s", n.id, c.RemoteAddr())
		_ = c.Close()
		return
	}
	from := ring.NodeID(syn.From)
	// Keep the reverse path: replies to this peer reuse the inbound
	// connection when no explicit address is known.
	n.mu.Lock()
	if _, exists := n.conns[from]; !exists {
		n.conns[from] = &tcpConn{c: c}
	}
	n.mu.Unlock()
	for {
		m, err := r.Read()
		if err != nil {
			n.dropConn(from, c)
			return
		}
		msg := m
		n.rt.Post(func() { n.currentHandler().Deliver(from, msg) })
	}
}

func (n *TCPNode) dropConn(id ring.NodeID, c net.Conn) {
	_ = c.Close()
	n.mu.Lock()
	if cur, ok := n.conns[id]; ok && cur.c == c {
		delete(n.conns, id)
	}
	n.mu.Unlock()
}

// Send implements Sender. Errors are handled like packet loss: logged and
// dropped, leaving recovery to protocol timeouts.
//
// The frame is encoded into a pooled scratch buffer before the connection
// lock is taken, so concurrent senders to the same peer serialize only on
// the kernel write, not on serialization work.
func (n *TCPNode) Send(from, to ring.NodeID, m wire.Message) {
	conn, err := n.connTo(to)
	if err != nil {
		n.logf("transport %s: send to %s: %v", n.id, to, err)
		return
	}
	if err := conn.writeFrame(m); err != nil {
		n.logf("transport %s: write to %s: %v", n.id, to, err)
		n.dropConn(to, conn.c)
	}
}

func (n *TCPNode) connTo(to ring.NodeID) (*tcpConn, error) {
	n.mu.Lock()
	if c, ok := n.conns[to]; ok {
		n.mu.Unlock()
		return c, nil
	}
	addr, ok := n.peers[to]
	n.mu.Unlock()
	if !ok {
		return nil, errors.New("unknown peer")
	}
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &tcpConn{c: raw}
	// Hello frame announces our identity for the reverse path.
	if err := c.writeFrame(wire.GossipSyn{From: string(n.id)}); err != nil {
		_ = raw.Close()
		return nil, err
	}
	go n.serveOutbound(to, raw)
	n.mu.Lock()
	defer n.mu.Unlock()
	if existing, ok := n.conns[to]; ok {
		_ = raw.Close()
		return existing, nil
	}
	n.conns[to] = c
	return c, nil
}

// serveOutbound pumps replies arriving on a connection we dialed.
func (n *TCPNode) serveOutbound(peer ring.NodeID, c net.Conn) {
	r := wire.NewReader(c)
	for {
		m, err := r.Read()
		if err != nil {
			n.dropConn(peer, c)
			return
		}
		msg := m
		n.rt.Post(func() { n.currentHandler().Deliver(peer, msg) })
	}
}

// Close shuts the listener and all connections.
func (n *TCPNode) Close() error {
	n.mu.Lock()
	n.closed = true
	conns := n.conns
	n.conns = make(map[ring.NodeID]*tcpConn)
	n.mu.Unlock()
	for _, c := range conns {
		_ = c.c.Close()
	}
	if n.ln != nil {
		return n.ln.Close()
	}
	return nil
}

var _ Sender = (*TCPNode)(nil)

package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// promSeries is one parsed exposition line: full series key ("name{a="b"}")
// to value, plus the families' declared types.
type promScrape struct {
	series map[string]float64
	types  map[string]string
	help   map[string]string
}

// parseProm parses the Prometheus text exposition format strictly enough to
// round-trip what WriteProm emits: # HELP/# TYPE lines, then
// name{labels} value samples.
func parseProm(t *testing.T, body string) promScrape {
	t.Helper()
	out := promScrape{
		series: map[string]float64{},
		types:  map[string]string{},
		help:   map[string]string{},
	}
	sc := bufio.NewScanner(strings.NewReader(body))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, typ, ok := strings.Cut(rest, " ")
			if !ok {
				t.Fatalf("malformed TYPE line %q", line)
			}
			out.types[name] = typ
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			name, help, ok := strings.Cut(rest, " ")
			if !ok {
				t.Fatalf("malformed HELP line %q", line)
			}
			out.help[name] = help
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		idx := strings.LastIndexByte(line, ' ')
		if idx < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		key, valStr := line[:idx], line[idx+1:]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		if _, dup := out.series[key]; dup {
			t.Fatalf("duplicate series %q", key)
		}
		// The family must have a TYPE declared before its first sample.
		fam := key
		if i := strings.IndexByte(fam, '{'); i >= 0 {
			fam = fam[:i]
		}
		fam = strings.TrimSuffix(strings.TrimSuffix(fam, "_sum"), "_count")
		if _, ok := out.types[fam]; !ok {
			t.Fatalf("sample %q before its # TYPE", key)
		}
		out.series[key] = val
	}
	return out
}

type testStatus struct {
	Node   string         `json:"node"`
	Epoch  uint64         `json:"epoch"`
	Levels map[string]int `json:"levels"`
}

func startTestAdmin(t *testing.T, ops *atomic.Uint64, hist *OpLevelHist, tr *Trace) *Admin {
	t.Helper()
	reg := NewRegistry()
	reg.Register(func(emit func(Metric)) {
		emit(Metric{
			Name: "harmony_ops_total", Help: "Operations coordinated.", Type: Counter,
			Labels: []Label{{Name: "node", Value: `n"1`}}, // exercises escaping
			Value:  float64(ops.Load()),
		})
		emit(Metric{Name: "harmony_queue_depth", Help: "Queued frames.", Type: Gauge, Value: 3})
	})
	reg.Register(OpLatencyCollector(hist, Label{Name: "node", Value: "n1"}))

	adm, err := StartAdmin("127.0.0.1:0", AdminConfig{
		Registry: reg,
		Trace:    tr,
		Status: func() any {
			return testStatus{Node: "n1", Epoch: 7, Levels: map[string]int{"0": 1, "1": 4}}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { adm.Close() })
	return adm
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s read: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

// Golden shape of /metrics: parseable exposition, declared types, escaped
// labels, summary quantiles — and counters are monotonic across scrapes.
func TestAdminMetricsExposition(t *testing.T) {
	var ops atomic.Uint64
	ops.Store(10)
	hist := NewOpLevelHist()
	hist.Record(OpRead, 4, 2*time.Millisecond) // wire.Quorum
	adm := startTestAdmin(t, &ops, hist, NewTrace(16))
	base := "http://" + adm.Addr()

	code, body := get(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("GET /metrics = %d", code)
	}
	first := parseProm(t, body)

	counterKey := `harmony_ops_total{node="n\"1"}`
	if got := first.series[counterKey]; got != 10 {
		t.Fatalf("%s = %v, want 10 (series: %v)", counterKey, got, first.series)
	}
	if first.types["harmony_ops_total"] != "counter" {
		t.Fatalf("harmony_ops_total type = %q", first.types["harmony_ops_total"])
	}
	if first.types["harmony_queue_depth"] != "gauge" {
		t.Fatalf("harmony_queue_depth type = %q", first.types["harmony_queue_depth"])
	}
	if first.types["harmony_op_latency_seconds"] != "summary" {
		t.Fatalf("latency family type = %q", first.types["harmony_op_latency_seconds"])
	}
	if first.help["harmony_ops_total"] == "" {
		t.Fatal("missing HELP for harmony_ops_total")
	}
	countKey := `harmony_op_latency_seconds_count{node="n1",op="read",level="QUORUM"}`
	if got := first.series[countKey]; got != 1 {
		t.Fatalf("%s = %v, want 1 (series: %v)", countKey, got, first.series)
	}
	q99 := `harmony_op_latency_seconds{node="n1",op="read",level="QUORUM",quantile="0.99"}`
	if got, ok := first.series[q99]; !ok || got <= 0 {
		t.Fatalf("%s = %v, %v", q99, got, ok)
	}

	// Counters only move forward between scrapes.
	ops.Add(5)
	hist.Record(OpRead, 4, time.Millisecond)
	_, body2 := get(t, base+"/metrics")
	second := parseProm(t, body2)
	for _, key := range []string{counterKey, countKey} {
		if second.series[key] < first.series[key] {
			t.Fatalf("counter %s went backward: %v -> %v", key, first.series[key], second.series[key])
		}
	}
	if got := second.series[counterKey]; got != 15 {
		t.Fatalf("%s after Add = %v, want 15", counterKey, got)
	}
}

func TestAdminStatusRoundTrip(t *testing.T) {
	var ops atomic.Uint64
	adm := startTestAdmin(t, &ops, nil, nil)

	code, body := get(t, "http://"+adm.Addr()+"/status")
	if code != http.StatusOK {
		t.Fatalf("GET /status = %d", code)
	}
	var got testStatus
	if err := json.Unmarshal([]byte(body), &got); err != nil {
		t.Fatalf("status not JSON: %v\n%s", err, body)
	}
	want := testStatus{Node: "n1", Epoch: 7, Levels: map[string]int{"0": 1, "1": 4}}
	if got.Node != want.Node || got.Epoch != want.Epoch ||
		got.Levels["0"] != 1 || got.Levels["1"] != 4 {
		t.Fatalf("status round-trip = %+v, want %+v", got, want)
	}
}

func TestAdminTraceEndpoint(t *testing.T) {
	var ops atomic.Uint64
	tr := NewTrace(16)
	for i := 0; i < 5; i++ {
		tr.Add(Event{Kind: EventLevel, Group: i, From: "ONE", To: "TWO"})
	}
	adm := startTestAdmin(t, &ops, nil, tr)
	base := "http://" + adm.Addr()

	code, body := get(t, base+"/trace")
	if code != http.StatusOK {
		t.Fatalf("GET /trace = %d", code)
	}
	if lines := strings.Count(strings.TrimSpace(body), "\n") + 1; lines != 5 {
		t.Fatalf("trace lines = %d, want 5\n%s", lines, body)
	}

	code, body = get(t, base+"/trace?since=3")
	if code != http.StatusOK {
		t.Fatalf("GET /trace?since=3 = %d", code)
	}
	sc := bufio.NewScanner(strings.NewReader(body))
	var seqs []uint64
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad line %q: %v", sc.Text(), err)
		}
		seqs = append(seqs, e.Seq)
	}
	if fmt.Sprint(seqs) != "[4 5]" {
		t.Fatalf("since=3 seqs = %v, want [4 5]", seqs)
	}

	if code, _ := get(t, base+"/trace?since=bogus"); code != http.StatusBadRequest {
		t.Fatalf("bad since = %d, want 400", code)
	}
}

func TestAdminDebugEndpoints(t *testing.T) {
	var ops atomic.Uint64
	adm := startTestAdmin(t, &ops, nil, nil)
	base := "http://" + adm.Addr()

	if code, body := get(t, base+"/debug/vars"); code != http.StatusOK || !strings.Contains(body, "memstats") {
		t.Fatalf("GET /debug/vars = %d", code)
	}
	if code, body := get(t, base+"/debug/pprof/"); code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("GET /debug/pprof/ = %d", code)
	}
	if code, body := get(t, base+"/debug/pprof/cmdline"); code != http.StatusOK || body == "" {
		t.Fatalf("GET /debug/pprof/cmdline = %d", code)
	}
}

func TestRegistryDeterministicOrder(t *testing.T) {
	reg := NewRegistry()
	reg.Register(func(emit func(Metric)) {
		emit(Metric{Name: "zzz_metric", Type: Gauge, Value: 1})
		emit(Metric{Name: "aaa_metric", Type: Gauge, Value: 2})
		emit(Metric{Name: "mmm_metric", Type: Gauge, Labels: []Label{{Name: "g", Value: "2"}}, Value: 3})
		emit(Metric{Name: "mmm_metric", Type: Gauge, Labels: []Label{{Name: "g", Value: "1"}}, Value: 4})
	})
	var b1, b2 strings.Builder
	if err := reg.WriteProm(&b1); err != nil {
		t.Fatal(err)
	}
	if err := reg.WriteProm(&b2); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Fatal("WriteProm not deterministic")
	}
	aaa := strings.Index(b1.String(), "aaa_metric")
	g1 := strings.Index(b1.String(), `mmm_metric{g="1"}`)
	g2 := strings.Index(b1.String(), `mmm_metric{g="2"}`)
	zzz := strings.Index(b1.String(), "zzz_metric")
	if !(aaa < g1 && g1 < g2 && g2 < zzz) {
		t.Fatalf("unsorted exposition:\n%s", b1.String())
	}
}

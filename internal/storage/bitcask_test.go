package storage

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"harmony/internal/wire"
)

// persistOpts opens a single-shard persistent engine with small segments so
// rotation, hint files, and compaction all fire inside a short test.
func persistOpts(dir string, shards int, segBytes int64) Options {
	return Options{
		Shards: shards,
		Persist: &PersistOptions{
			Path:              dir,
			FsyncInterval:     time.Hour, // timer never fires; tests sync explicitly
			SegmentBytes:      segBytes,
			MaxSealedSegments: 3,
		},
	}
}

func mustOpen(t *testing.T, opts Options) *Engine {
	t.Helper()
	e, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return e
}

// dump serializes an engine's full version state (tombstones included) to a
// canonical byte string via the wire codec, for byte-identical comparison.
func dump(e *Engine) []byte {
	var out []byte
	e.ScanVersions(nil, nil, func(key []byte, v wire.Value) bool {
		var err error
		out, err = wire.Encode(out, wire.Mutation{Key: key, Value: v})
		if err != nil {
			panic(err)
		}
		return true
	})
	return out
}

// randValue builds a random value; small timestamp ranges force ties and
// rejects, and occasional clocks exercise the sibling tie-break path that
// preads the old record.
func randValue(rng *rand.Rand) wire.Value {
	v := wire.Value{
		Data:      make([]byte, rng.Intn(40)),
		Timestamp: int64(1000 + rng.Intn(200)),
		Tombstone: rng.Intn(10) == 0,
	}
	rng.Read(v.Data)
	if rng.Intn(3) == 0 {
		for i := 0; i <= rng.Intn(2); i++ {
			v.Clock = append(v.Clock, wire.ClockEntry{
				Node:    fmt.Sprintf("n%d", rng.Intn(3)),
				Counter: uint64(1 + rng.Intn(5)),
			})
		}
	}
	return v
}

func TestPersistBasicReopen(t *testing.T) {
	dir := t.TempDir()
	e := mustOpen(t, persistOpts(dir, 4, 64<<20))
	want := map[string]wire.Value{}
	for i := range 200 {
		k := fmt.Sprintf("key-%03d", i)
		v := wire.Value{Data: []byte(fmt.Sprintf("val-%03d", i)), Timestamp: int64(i + 1)}
		if i%17 == 0 {
			v.Tombstone = true
			v.Data = nil
		}
		if ok, err := e.Apply([]byte(k), v); err != nil || !ok {
			t.Fatalf("Apply(%s): ok=%v err=%v", k, ok, err)
		}
		want[k] = v
	}
	if err := e.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	e2 := mustOpen(t, persistOpts(dir, 4, 64<<20))
	defer e2.Close()
	if got := e2.Recovered(); got != len(want) {
		t.Fatalf("Recovered = %d, want %d", got, len(want))
	}
	for k, w := range want {
		g, ok := e2.Get([]byte(k))
		if !ok {
			t.Fatalf("Get(%s): missing after reopen", k)
		}
		if !bytes.Equal(g.Data, w.Data) || g.Timestamp != w.Timestamp || g.Tombstone != w.Tombstone {
			t.Fatalf("Get(%s) = %+v, want %+v", k, g, w)
		}
	}
	// Scan order and tombstone filtering survive recovery.
	var keys []string
	e2.Scan(nil, nil, func(key []byte, v wire.Value) bool {
		keys = append(keys, string(key))
		return true
	})
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatalf("scan out of order: %q >= %q", keys[i-1], keys[i])
		}
	}
	live := 0
	for _, w := range want {
		if !w.Tombstone {
			live++
		}
	}
	if len(keys) != live {
		t.Fatalf("scan returned %d live keys, want %d", len(keys), live)
	}
}

func TestPersistShardCountPinnedByManifest(t *testing.T) {
	dir := t.TempDir()
	e := mustOpen(t, persistOpts(dir, 4, 64<<20))
	if _, err := e.Apply([]byte("k"), wire.Value{Data: []byte("v"), Timestamp: 1}); err != nil {
		t.Fatal(err)
	}
	if got := e.Stats().Shards; got != 4 {
		t.Fatalf("Shards = %d, want 4", got)
	}
	e.Close()

	// Reopening with a different advisory shard count must adopt the
	// stamped stripe count — key routing depends on it.
	e2 := mustOpen(t, persistOpts(dir, 32, 64<<20))
	defer e2.Close()
	if got := e2.Stats().Shards; got != 4 {
		t.Fatalf("reopened Shards = %d, want pinned 4", got)
	}
	if _, ok := e2.Get([]byte("k")); !ok {
		t.Fatal("key lost after reopen with different Shards option")
	}
}

// TestPersistCrashRecoveryProperty is the mid-write-kill property test:
// random mutation histories against a single-shard persistent engine, a
// simulated crash that truncates the active log at a random byte offset
// (the half-written tail record a kill -9 leaves), recovery, and a
// byte-identical comparison against an in-memory reference engine replaying
// exactly the surviving prefix of the history.
func TestPersistCrashRecoveryProperty(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			dir := t.TempDir()
			// Tiny segments force rotations (hint files) and compactions
			// mid-history, so the surviving state spans sealed segments,
			// merged segments, and the truncated tail.
			e := mustOpen(t, persistOpts(dir, 1, 2048))

			type op struct {
				key     string
				v       wire.Value
				applied bool
				segID   uint64
				endOff  int64
			}
			ops := make([]op, 0, 400)
			for i := 0; i < 400; i++ {
				o := op{key: fmt.Sprintf("k%02d", rng.Intn(12)), v: randValue(rng)}
				ok, err := e.Apply([]byte(o.key), o.v)
				if err != nil {
					t.Fatalf("Apply: %v", err)
				}
				o.applied = ok
				s := &e.shards[0]
				s.mu.Lock()
				act := s.disk.segs[len(s.disk.segs)-1]
				o.segID, o.endOff = act.id, act.size
				s.mu.Unlock()
				ops = append(ops, o)
			}
			if err := e.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}

			// Simulated kill -9 mid-write: truncate the active segment at a
			// random byte offset.
			shardDir := filepath.Join(dir, "shard-000")
			var lastID uint64
			var lastPath string
			ents, err := os.ReadDir(shardDir)
			if err != nil {
				t.Fatal(err)
			}
			for _, de := range ents {
				var id uint64
				if _, err := fmt.Sscanf(de.Name(), "%d.data", &id); err == nil && id > lastID {
					lastID, lastPath = id, filepath.Join(shardDir, de.Name())
				}
			}
			st, err := os.Stat(lastPath)
			if err != nil {
				t.Fatal(err)
			}
			cut := rng.Int63n(st.Size() + 1)
			if err := os.Truncate(lastPath, cut); err != nil {
				t.Fatal(err)
			}

			// The surviving prefix: every accepted op whose record lies in a
			// sealed segment, or at or below the cut in the active one.
			last := -1
			for i, o := range ops {
				if o.applied && (o.segID < lastID || o.endOff <= cut) {
					last = i
				}
			}
			ref := NewEngine(Options{Shards: 1})
			for i := 0; i <= last; i++ {
				if _, err := ref.Apply([]byte(ops[i].key), ops[i].v); err != nil {
					t.Fatalf("ref Apply: %v", err)
				}
			}

			e2 := mustOpen(t, persistOpts(dir, 1, 2048))
			if got, want := dump(e2), dump(ref); !bytes.Equal(got, want) {
				t.Fatalf("recovered state diverges from reference after cut@%d/%d (%d ops survive):\n got %d bytes\nwant %d bytes", cut, st.Size(), last+1, len(got), len(want))
			}

			// The recovered engine keeps working: apply the rest of the
			// history to both and compare again.
			for i := last + 1; i < len(ops); i++ {
				if _, err := e2.Apply([]byte(ops[i].key), ops[i].v); err != nil {
					t.Fatalf("post-recovery Apply: %v", err)
				}
				if _, err := ref.Apply([]byte(ops[i].key), ops[i].v); err != nil {
					t.Fatalf("ref Apply: %v", err)
				}
			}
			if got, want := dump(e2), dump(ref); !bytes.Equal(got, want) {
				t.Fatal("post-recovery writes diverge from reference")
			}
			e2.Close()
		})
	}
}

// TestPersistCorruptRecordTruncates flips one byte mid-log: recovery must
// keep exactly the records before the corrupted one and truncate the rest
// (records carry no resync marker).
func TestPersistCorruptRecordTruncates(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	dir := t.TempDir()
	e := mustOpen(t, persistOpts(dir, 1, 64<<20)) // one segment: corruption lands mid-chain

	type op struct {
		key    string
		v      wire.Value
		endOff int64
	}
	var ops []op
	for i := 0; i < 100; i++ {
		o := op{key: fmt.Sprintf("k%02d", i), v: randValue(rng)}
		o.v.Timestamp = int64(i + 1) // strictly increasing: every op accepted
		o.v.Tombstone = false
		if _, err := e.Apply([]byte(o.key), o.v); err != nil {
			t.Fatal(err)
		}
		s := &e.shards[0]
		s.mu.Lock()
		o.endOff = s.disk.segs[0].size
		s.mu.Unlock()
		ops = append(ops, o)
	}
	e.Close()

	path := filepath.Join(dir, "shard-000", "00000001.data")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	flip := int64(len(data) / 2)
	data[flip] ^= 0x5a
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	last := -1
	for i, o := range ops {
		if o.endOff <= flip {
			last = i
		}
	}
	ref := NewEngine(Options{Shards: 1})
	for i := 0; i <= last; i++ {
		ref.Apply([]byte(ops[i].key), ops[i].v)
	}
	e2 := mustOpen(t, persistOpts(dir, 1, 64<<20))
	defer e2.Close()
	if got, want := dump(e2), dump(ref); !bytes.Equal(got, want) {
		t.Fatalf("state after corrupt byte @%d diverges from %d-op reference", flip, last+1)
	}
}

func TestPersistHintColdStart(t *testing.T) {
	dir := t.TempDir()
	e := mustOpen(t, persistOpts(dir, 1, 4096))
	want := map[string]string{}
	for i := 0; i < 300; i++ {
		k := fmt.Sprintf("key-%04d", i)
		v := fmt.Sprintf("value-%04d-%s", i, "padpadpadpadpadpad")
		if _, err := e.Apply([]byte(k), wire.Value{Data: []byte(v), Timestamp: int64(i + 1)}); err != nil {
			t.Fatal(err)
		}
		want[k] = v
	}
	if st := e.Stats(); st.DiskSegments < 3 {
		t.Fatalf("want >=3 segments to exercise hints, got %d", st.DiskSegments)
	}
	e.Close()

	e2 := mustOpen(t, persistOpts(dir, 1, 4096))
	defer e2.Close()
	hintLoads := 0
	for i := range e2.shards {
		hintLoads += e2.shards[i].disk.hintLoads
	}
	if hintLoads == 0 {
		t.Fatal("cold start scanned every sealed segment; expected hint files to be used")
	}
	for k, w := range want {
		g, ok := e2.Get([]byte(k))
		if !ok || string(g.Data) != w {
			t.Fatalf("Get(%s) after hint cold start = %q ok=%v, want %q", k, g.Data, ok, w)
		}
	}
}

// TestPersistHintFallback corrupts a hint file; recovery must fall back to
// scanning the data file and still produce correct state.
func TestPersistHintFallback(t *testing.T) {
	dir := t.TempDir()
	e := mustOpen(t, persistOpts(dir, 1, 4096))
	for i := 0; i < 200; i++ {
		k := fmt.Sprintf("key-%04d", i)
		e.Apply([]byte(k), wire.Value{Data: bytes.Repeat([]byte("x"), 30), Timestamp: int64(i + 1)})
	}
	e.Close()

	hints, _ := filepath.Glob(filepath.Join(dir, "shard-000", "*.hint"))
	if len(hints) == 0 {
		t.Fatal("no hint files written")
	}
	if err := os.WriteFile(hints[0], []byte("HNT1garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	e2 := mustOpen(t, persistOpts(dir, 1, 4096))
	defer e2.Close()
	for i := 0; i < 200; i++ {
		k := fmt.Sprintf("key-%04d", i)
		if _, ok := e2.Get([]byte(k)); !ok {
			t.Fatalf("Get(%s) missing after hint fallback", k)
		}
	}
}

func TestPersistCompactionReclaims(t *testing.T) {
	dir := t.TempDir()
	e := mustOpen(t, persistOpts(dir, 1, 2048))
	// Overwrite a small key set heavily: most records die, segments pile
	// up, and the rotation-triggered compaction merges them away.
	for i := 0; i < 2000; i++ {
		k := fmt.Sprintf("k%02d", i%8)
		if _, err := e.Apply([]byte(k), wire.Value{Data: bytes.Repeat([]byte("v"), 40), Timestamp: int64(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	st := e.Stats()
	if st.Compactions == 0 {
		t.Fatal("no compactions ran")
	}
	// 8 live keys × ~60-byte records: after compaction the log must be far
	// smaller than the ~2000 records written.
	if st.DiskSegments > 5 {
		t.Fatalf("compaction left %d segments", st.DiskSegments)
	}
	e.Close()

	e2 := mustOpen(t, persistOpts(dir, 1, 2048))
	defer e2.Close()
	for i := 0; i < 8; i++ {
		k := fmt.Sprintf("k%02d", i)
		v, ok := e2.Get([]byte(k))
		if !ok {
			t.Fatalf("Get(%s) missing after compaction+reopen", k)
		}
		// The newest overwrite for this key wins.
		wantTS := int64(2000 - 7 + i)
		if v.Timestamp != wantTS {
			t.Fatalf("Get(%s).Timestamp = %d, want %d", k, v.Timestamp, wantTS)
		}
	}
	if got := e2.Recovered(); got != 8 {
		t.Fatalf("Recovered = %d, want 8", got)
	}
}

func TestDataDirLocked(t *testing.T) {
	dir := t.TempDir()
	d1, err := AcquireDataDir(dir)
	if err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	defer d1.Release()
	if _, err := AcquireDataDir(dir); err == nil {
		t.Fatal("second acquire of a locked data dir succeeded")
	}
	// Open must refuse too.
	if _, err := Open(Options{Persist: &PersistOptions{Path: dir}}); err == nil {
		t.Fatal("Open on a locked data dir succeeded")
	}
}

func TestDataDirVersionMismatch(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, manifestName), []byte("format=99\nshards=4\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := AcquireDataDir(dir); err == nil {
		t.Fatal("acquire of a version-mismatched data dir succeeded")
	}
	if _, err := Open(Options{Persist: &PersistOptions{Path: dir}}); err == nil {
		t.Fatal("Open of a version-mismatched data dir succeeded")
	}
}

// TestPersistGroupCommit runs concurrent writers through group-commit mode
// (every Apply acked on an fsync boundary) and verifies all acked writes
// survive reopen. Run under -race this also exercises the syncer's
// dirty-flag and ticket handoffs.
func TestPersistGroupCommit(t *testing.T) {
	dir := t.TempDir()
	e := mustOpen(t, Options{
		Shards:  4,
		Persist: &PersistOptions{Path: dir}, // FsyncInterval 0 → group commit
	})
	const goroutines, each = 8, 150
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				k := fmt.Sprintf("g%d-k%03d", g, i)
				ok, err := e.Apply([]byte(k), wire.Value{Data: []byte(k), Timestamp: int64(i + 1)})
				if err != nil || !ok {
					errs <- fmt.Errorf("Apply(%s): ok=%v err=%v", k, ok, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	e2 := mustOpen(t, Options{Shards: 4, Persist: &PersistOptions{Path: dir}})
	defer e2.Close()
	if got, want := e2.Recovered(), goroutines*each; got != want {
		t.Fatalf("Recovered = %d, want %d", got, want)
	}
	for g := 0; g < goroutines; g++ {
		for i := 0; i < each; i++ {
			k := fmt.Sprintf("g%d-k%03d", g, i)
			if v, ok := e2.Get([]byte(k)); !ok || string(v.Data) != k {
				t.Fatalf("Get(%s) = %q ok=%v after group-commit reopen", k, v.Data, ok)
			}
		}
	}
}

// TestPersistApplyAllocs pins the persistent write hot path: a steady-state
// overwrite must stay at or under 2 allocs/op (the acceptance bar; measured
// 0 — record encode reuses the shard scratch and the keydir entry updates
// in place).
func TestPersistApplyAllocs(t *testing.T) {
	dir := t.TempDir()
	e := mustOpen(t, persistOpts(dir, 1, 1<<30)) // no rotation mid-measurement
	defer e.Close()
	key := []byte("alloc-key")
	v := wire.Value{Data: bytes.Repeat([]byte("p"), 64), Timestamp: 1}
	for i := 0; i < 8; i++ { // warm the scratch and keydir entry
		v.Timestamp++
		if _, err := e.Apply(key, v); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(200, func() {
		v.Timestamp++
		if _, err := e.Apply(key, v); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 2 {
		t.Fatalf("persistent Apply allocates %.1f/op steady state, want <= 2", avg)
	}
}

// TestPersistSyncAndStats covers the explicit Sync path and the disk gauges.
func TestPersistSyncAndStats(t *testing.T) {
	dir := t.TempDir()
	e := mustOpen(t, persistOpts(dir, 2, 64<<20))
	defer e.Close()
	for i := 0; i < 50; i++ {
		k := fmt.Sprintf("k%03d", i)
		e.Apply([]byte(k), wire.Value{Data: []byte(k), Timestamp: int64(i + 1)})
	}
	// Overwrite half: dead bytes appear.
	for i := 0; i < 25; i++ {
		k := fmt.Sprintf("k%03d", i)
		e.Apply([]byte(k), wire.Value{Data: []byte(k), Timestamp: int64(100 + i)})
	}
	if err := e.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	st := e.Stats()
	if st.LiveKeys != 50 {
		t.Fatalf("LiveKeys = %d, want 50", st.LiveKeys)
	}
	if st.DiskBytes == 0 || st.DiskDeadBytes == 0 {
		t.Fatalf("disk gauges empty: %+v", st)
	}
	if st.DiskSegments < 2 {
		t.Fatalf("DiskSegments = %d, want >= shard count", st.DiskSegments)
	}
}

// TestScanReentrancy guards the pooled scan scratch: a scan callback that
// issues nested engine reads (including another scan) must not corrupt the
// outer merge.
func TestScanReentrancy(t *testing.T) {
	e := NewEngine(Options{Shards: 4})
	for i := 0; i < 64; i++ {
		k := fmt.Sprintf("k%03d", i)
		e.Apply([]byte(k), wire.Value{Data: []byte(k), Timestamp: int64(i + 1)})
	}
	e.Flush() // push rows into tables so collect merges multiple sources
	for i := 0; i < 32; i++ {
		k := fmt.Sprintf("k%03d", i)
		e.Apply([]byte(k), wire.Value{Data: []byte(k), Timestamp: int64(100 + i)})
	}
	var outer []string
	e.Scan(nil, nil, func(key []byte, v wire.Value) bool {
		inner := 0
		e.Scan(nil, nil, func([]byte, wire.Value) bool { inner++; return inner < 5 })
		if _, ok := e.Get(key); !ok {
			t.Fatalf("nested Get(%s) missing", key)
		}
		outer = append(outer, string(key))
		return true
	})
	if len(outer) != 64 {
		t.Fatalf("outer scan saw %d keys, want 64", len(outer))
	}
	for i := 1; i < len(outer); i++ {
		if outer[i-1] >= outer[i] {
			t.Fatalf("outer scan out of order at %d: %q >= %q", i, outer[i-1], outer[i])
		}
	}
}

// The keydir byte estimate must grow with inserts, stay flat on plain
// overwrites, track clock growth, and survive reopen; the fsync-batch
// counters must cover every group-committed append.
func TestPersistKeydirBytesAndFsyncStats(t *testing.T) {
	dir := t.TempDir()
	e := mustOpen(t, Options{Shards: 2, Persist: &PersistOptions{Path: dir}}) // group commit

	if got := e.Stats().KeydirBytes; got != 0 {
		t.Fatalf("empty keydir bytes = %d", got)
	}
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("key-%04d", i)
		if _, err := e.Apply([]byte(k), wire.Value{Data: []byte("v"), Timestamp: int64(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	st := e.Stats()
	afterInsert := st.KeydirBytes
	// 100 entries × (fixed overhead + 8-byte key): at minimum 100 × key
	// bytes, at most a few hundred bytes per entry.
	if afterInsert < 100*8 || afterInsert > 100*512 {
		t.Fatalf("keydir bytes after 100 inserts = %d, implausible", afterInsert)
	}
	if st.Fsyncs == 0 {
		t.Fatalf("no fsync rounds recorded: %+v", st)
	}
	if st.FsyncBatchedOps < 100 {
		t.Fatalf("fsync-batched ops = %d, want >= 100", st.FsyncBatchedOps)
	}

	// Clock-free overwrites relocate records but add no keydir residency.
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("key-%04d", i)
		if _, err := e.Apply([]byte(k), wire.Value{Data: []byte("v2"), Timestamp: int64(1000 + i)}); err != nil {
			t.Fatal(err)
		}
	}
	if got := e.Stats().KeydirBytes; got != afterInsert {
		t.Fatalf("keydir bytes after overwrite = %d, want %d", got, afterInsert)
	}

	// A vector clock appearing on a key grows the estimate.
	v := wire.Value{Data: []byte("v3"), Timestamp: 5000,
		Clock: []wire.ClockEntry{{Node: "n1", Counter: 1}, {Node: "n2", Counter: 2}}}
	if _, err := e.Apply([]byte("key-0000"), v); err != nil {
		t.Fatal(err)
	}
	withClock := e.Stats().KeydirBytes
	if withClock <= afterInsert {
		t.Fatalf("keydir bytes with clock = %d, want > %d", withClock, afterInsert)
	}

	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	e2 := mustOpen(t, Options{Shards: 2, Persist: &PersistOptions{Path: dir}})
	defer e2.Close()
	if got := e2.Stats().KeydirBytes; got != withClock {
		t.Fatalf("keydir bytes after reopen = %d, want %d", got, withClock)
	}
}

package core

import (
	"testing"
	"time"

	"harmony/internal/obs"
	"harmony/internal/wire"
)

// demandingObs builds an observation whose arrival process pushes the
// estimator well past any small tolerance (hot reads against frequent
// writes with a fat propagation time), so the controller demands a strong
// level; Members/AliveMembers then exercise the availability clamp.
func demandingObs(members, alive int) Observation {
	return Observation{
		At:            time.Unix(2000, 0),
		ReadRate:      500,
		WriteInterval: 0.01, // 100 writes/s
		Latency:       50 * time.Millisecond,
		Window:        time.Second,
		Members:       members,
		AliveMembers:  alive,
	}
}

func TestControllerClampsToReachableReplicas(t *testing.T) {
	ctl := NewController(ControllerConfig{
		Policy: Policy{ToleratedStaleRate: 0.01},
		N:      3,
	})
	// Full membership: the demanding workload earns a strong level.
	ctl.Observe(demandingObs(3, 3))
	base := ctl.Last()
	if base.Level.BlockFor(3) < 2 {
		t.Fatalf("demanding workload decided %v, want at least quorum fan-in", base.Level)
	}
	if base.AvailabilityClamp {
		t.Fatal("clamp set with all members alive")
	}

	// One member convicted: ALL (3 of 3) is unservable, QUORUM (2) is the
	// strongest level two reachable replicas can still serve.
	ctl.Observe(demandingObs(3, 2))
	d := ctl.Last()
	if got := d.Level.BlockFor(3); got > 2 {
		t.Fatalf("with 2 of 3 members alive the level %v blocks for %d", d.Level, got)
	}
	if base.Level.BlockFor(3) > 2 && !d.AvailabilityClamp {
		t.Fatal("level lowered for liveness without AvailabilityClamp set")
	}

	// Minority view: only 1 reachable — everything degrades to ONE.
	ctl.Observe(demandingObs(3, 1))
	d = ctl.Last()
	if d.Level != wire.One || !d.AvailabilityClamp {
		t.Fatalf("with 1 of 3 members alive got %v (clamp=%v), want clamped ONE", d.Level, d.AvailabilityClamp)
	}

	// Membership recovers: the clamp releases and the demand returns.
	ctl.Observe(demandingObs(3, 3))
	d = ctl.Last()
	if d.AvailabilityClamp {
		t.Fatal("clamp still set after membership recovered")
	}
	if d.Level != base.Level {
		t.Fatalf("post-recovery level %v, want the unclamped demand %v", d.Level, base.Level)
	}
}

func TestControllerClampSkippedWithoutLivenessSignal(t *testing.T) {
	ctl := NewController(ControllerConfig{
		Policy: Policy{ToleratedStaleRate: 0.01},
		N:      3,
	})
	// AliveMembers zero = no detector wired: the clamp must not trigger
	// even though Members is populated.
	ctl.Observe(demandingObs(3, 0))
	d := ctl.Last()
	if d.AvailabilityClamp {
		t.Fatal("clamp triggered without a liveness signal")
	}
	if d.Level.BlockFor(3) < 2 {
		t.Fatalf("demanding workload decided %v, want at least quorum fan-in", d.Level)
	}
}

func TestControllerClampWinsOverDivergenceHold(t *testing.T) {
	ctl := NewController(ControllerConfig{
		Policy: Policy{ToleratedStaleRate: 0.10},
		N:      3,
	})
	// Divergence alone forces a quorum hold; with only one member
	// reachable a quorum cannot complete, so availability must win.
	o := demandingObs(3, 1)
	o.ReadRate, o.WriteInterval, o.Latency = 50, 1.0, 10*time.Microsecond
	o.Divergence = 2.0
	ctl.Observe(o)
	d := ctl.Last()
	if !d.DivergenceHold {
		t.Fatalf("divergence 2.0 did not trip the hold (estimate %.3f)", d.Estimate)
	}
	if d.Level != wire.One || !d.AvailabilityClamp {
		t.Fatalf("hold with 1 reachable replica decided %v (clamp=%v), want clamped ONE", d.Level, d.AvailabilityClamp)
	}
}

func TestControllerClampTracesTransitions(t *testing.T) {
	tr := obs.NewTrace(64)
	ctl := NewController(ControllerConfig{
		Policy: Policy{ToleratedStaleRate: 0.01},
		N:      3,
		Trace:  tr,
	})
	ctl.Observe(demandingObs(3, 3))
	ctl.Observe(demandingObs(3, 1))
	ctl.Observe(demandingObs(3, 3))
	var clamp, release int
	for _, e := range tr.Events() {
		if e.Kind == obs.EventAvailabilityClamp {
			if e.To == wire.One.String() {
				clamp++
			} else {
				release++
			}
		}
	}
	if clamp != 1 || release != 1 {
		t.Fatalf("clamp/release events = %d/%d, want 1/1", clamp, release)
	}
}

func TestStrongestServable(t *testing.T) {
	cases := []struct {
		rf, reachable int
		want          wire.ConsistencyLevel
	}{
		{3, 3, wire.All},
		{3, 2, wire.Quorum},
		{3, 1, wire.One},
		{5, 4, wire.Quorum}, // no named level blocks for exactly 4 of 5
		{5, 3, wire.Quorum},
		{5, 2, wire.Two},
		{5, 1, wire.One},
	}
	for _, c := range cases {
		if got := strongestServable(c.rf, c.reachable); got != c.want {
			t.Errorf("strongestServable(%d, %d) = %v, want %v", c.rf, c.reachable, got, c.want)
		}
	}
	for _, c := range cases {
		if got := strongestServable(c.rf, c.reachable); got.BlockFor(c.rf) > c.reachable {
			t.Errorf("strongestServable(%d, %d) = %v blocks for %d > reachable", c.rf, c.reachable, got, got.BlockFor(c.rf))
		}
	}
}

// Command harmony-bench regenerates the figures of the paper's evaluation
// against the simulated cluster. Each experiment prints an aligned table
// (one row per x value, one column per curve) mirroring the corresponding
// plot, and optionally writes long-form CSV.
//
// Usage:
//
//	harmony-bench -experiment all
//	harmony-bench -experiment fig5 -scenario grid5000 -ops 100000
//	harmony-bench -experiment fig4a -csv out/
//	harmony-bench -experiment hotcold -json out/hotcold.json
//	harmony-bench -experiment regroup -json out/regroup.json
//	harmony-bench -experiment fig5 -arrival 8000   # open-loop Poisson load
//
// Experiments: fig4a fig4b fig5 fig6 headline ablations hotcold regroup lag
// all. fig5 and fig6 derive from the same measurement grid; requesting
// either runs the grid for the selected scenario(s). hotcold compares the
// per-group multi-model controller against the global controller on a
// hot/cold key split; regroup compares learned online regrouping against
// build-time-pinned groups under a migrating hotspot; lag measures
// time-from-regime-change-to-stable-level on the drifting scenario; -json
// writes results (plus any figures) as machine-readable JSON for CI
// artifacts.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"harmony/internal/bench"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "fig4a|fig4b|fig5|fig6|headline|ablations|hotcold|regroup|lag|churn|all")
		scenario   = flag.String("scenario", "both", "a scenario name (grid5000, ec2, wan-heavytail, degraded, congested-bimodal, drifting), 'both' paper testbeds, or 'all'")
		ops        = flag.Int64("ops", 30000, "operations per measurement point")
		seed       = flag.Int64("seed", 1, "root random seed")
		threads    = flag.String("threads", "", "comma-separated thread sweep override, e.g. 1,15,40,70,90,100")
		arrival    = flag.Float64("arrival", 0, "open-loop Poisson arrival rate (ops/s); 0 keeps the paper's closed loop")
		csvDir     = flag.String("csv", "", "directory to write per-figure CSV files")
		jsonPath   = flag.String("json", "", "file to write machine-readable JSON results")
		quiet      = flag.Bool("quiet", false, "suppress progress lines")
	)
	flag.Parse()

	opts := bench.Options{OpsPerPoint: *ops, Seed: *seed, ArrivalRate: *arrival}
	if !*quiet {
		opts.Progress = func(line string) { fmt.Fprintln(os.Stderr, "  "+line) }
	}
	if *threads != "" {
		for _, part := range strings.Split(*threads, ",") {
			var t int
			if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d", &t); err != nil || t <= 0 {
				fatalf("bad -threads entry %q", part)
			}
			opts.Threads = append(opts.Threads, t)
		}
	}

	scenarios := selectScenarios(*scenario)
	start := time.Now()
	var figures []bench.Figure
	var hotcolds []bench.HotColdResult
	var regroups []bench.RegroupResult
	var lags []bench.LagResult
	var churns []bench.ChurnResult

	runGridFigures := func() {
		ids := map[string][2]string{
			"grid5000": {"fig5a", "fig5c"},
			"ec2":      {"fig5b", "fig5d"},
		}
		staleIDs := map[string]string{"grid5000": "fig6a", "ec2": "fig6b"}
		for _, sc := range scenarios {
			g, err := bench.RunGrid(sc, bench.StandardPolicies(sc), opts)
			if err != nil {
				fatalf("grid %s: %v", sc.Name, err)
			}
			pair := ids[sc.Name]
			if wants(*experiment, "fig5") {
				figures = append(figures, g.LatencyFigure(pair[0]), g.ThroughputFigure(pair[1]))
			}
			if wants(*experiment, "fig6") {
				figures = append(figures, g.StalenessFigure(staleIDs[sc.Name]))
			}
		}
	}

	switch {
	case wants(*experiment, "fig4a"):
	case wants(*experiment, "fig4b"):
	case wants(*experiment, "fig5"), wants(*experiment, "fig6"),
		wants(*experiment, "headline"), wants(*experiment, "ablations"),
		wants(*experiment, "hotcold"), wants(*experiment, "regroup"),
		wants(*experiment, "lag"), wants(*experiment, "churn"):
	default:
		fatalf("unknown experiment %q", *experiment)
	}

	if wants(*experiment, "fig4a") {
		fig, err := bench.Fig4a(opts)
		if err != nil {
			fatalf("fig4a: %v", err)
		}
		figures = append(figures, fig)
	}
	if wants(*experiment, "fig4b") {
		fig, err := bench.Fig4b(opts)
		if err != nil {
			fatalf("fig4b: %v", err)
		}
		figures = append(figures, fig)
	}
	if wants(*experiment, "fig5") || wants(*experiment, "fig6") {
		runGridFigures()
	}
	if wants(*experiment, "headline") {
		for _, sc := range scenarios {
			sum, err := bench.Headline(sc, opts)
			if err != nil {
				fatalf("headline %s: %v", sc.Name, err)
			}
			fmt.Println(sum.Format())
		}
	}
	if wants(*experiment, "ablations") {
		runAblations(opts, &figures)
	}
	if wants(*experiment, "hotcold") {
		for _, sc := range scenarios {
			spec := bench.DefaultHotColdSpec()
			spec.Scenario = sc
			spec.ArrivalRate = *arrival
			res, err := bench.HotCold(spec, opts)
			if err != nil {
				fatalf("hotcold %s: %v", sc.Name, err)
			}
			fmt.Println(res.Format())
			hotcolds = append(hotcolds, res)
		}
	}

	if wants(*experiment, "regroup") {
		// The migrating-hotspot comparison runs on its default scenario:
		// group learning is scenario-independent machinery, and one testbed
		// keeps the experiment affordable in CI.
		spec := bench.DefaultRegroupSpec()
		res, err := bench.Regroup(spec, opts)
		if err != nil {
			fatalf("regroup: %v", err)
		}
		fmt.Println(res.Format())
		regroups = append(regroups, res)
	}
	if wants(*experiment, "lag") {
		res, err := bench.AdaptationLag(bench.Drifting(), opts)
		if err != nil {
			fatalf("lag: %v", err)
		}
		fmt.Println(res.Format())
		lags = append(lags, res)
	}
	if wants(*experiment, "churn") {
		// The failure/churn comparison runs on its purpose-built small
		// cluster (6 nodes, RF=5): anti-entropy's payoff is independent of
		// the WAN profiles, and one schedule keeps it affordable in CI.
		res, err := bench.Churn(bench.DefaultChurnSpec(), opts)
		if err != nil {
			fatalf("churn: %v", err)
		}
		fmt.Println(res.Format())
		churns = append(churns, res)
	}

	if *jsonPath != "" {
		writeJSON(*jsonPath, figures, hotcolds, regroups, lags, churns)
	}

	for _, f := range figures {
		fmt.Println(f.Format())
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fatalf("csv dir: %v", err)
			}
			path := filepath.Join(*csvDir, f.ID+".csv")
			if err := os.WriteFile(path, []byte(f.CSV()), 0o644); err != nil {
				fatalf("write %s: %v", path, err)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", path)
		}
	}
	fmt.Fprintf(os.Stderr, "done in %v\n", time.Since(start).Round(time.Millisecond))
}

func runAblations(opts bench.Options, figures *[]bench.Figure) {
	if fig, err := bench.AblationFixedTp(opts); err != nil {
		fatalf("ablation fixedtp: %v", err)
	} else {
		*figures = append(*figures, fig)
	}
	if fig, err := bench.AblationMonitorInterval(opts); err != nil {
		fatalf("ablation interval: %v", err)
	} else {
		*figures = append(*figures, fig)
	}
	if fig, err := bench.AblationReadRepair(opts); err != nil {
		fatalf("ablation read-repair: %v", err)
	} else {
		*figures = append(*figures, fig)
	}
	if figs, err := bench.AblationVsQuorum(opts); err != nil {
		fatalf("ablation quorum: %v", err)
	} else {
		*figures = append(*figures, figs...)
	}
	if fig, err := bench.AblationStrategy(opts); err != nil {
		fatalf("ablation strategy: %v", err)
	} else {
		*figures = append(*figures, fig)
	}
}

// writeJSON persists every result of the invocation as one machine-readable
// document (the CI artifact format).
func writeJSON(path string, figures []bench.Figure, hotcolds []bench.HotColdResult,
	regroups []bench.RegroupResult, lags []bench.LagResult, churns []bench.ChurnResult) {
	doc := struct {
		Figures []bench.Figure        `json:"figures,omitempty"`
		HotCold []bench.HotColdResult `json:"hotcold,omitempty"`
		Regroup []bench.RegroupResult `json:"regroup,omitempty"`
		Lag     []bench.LagResult     `json:"lag,omitempty"`
		Churn   []bench.ChurnResult   `json:"churn,omitempty"`
	}{Figures: figures, HotCold: hotcolds, Regroup: regroups, Lag: lags, Churn: churns}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fatalf("marshal json: %v", err)
	}
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			fatalf("json dir: %v", err)
		}
	}
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		fatalf("write %s: %v", path, err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
}

func selectScenarios(name string) []bench.Scenario {
	all := bench.Scenarios()
	names := make([]string, 0, len(all))
	for n := range all {
		names = append(names, n)
	}
	sort.Strings(names)
	switch name {
	case "both":
		return []bench.Scenario{bench.Grid5000(), bench.EC2()}
	case "all":
		out := make([]bench.Scenario, 0, len(all))
		for _, n := range names {
			out = append(out, all[n])
		}
		return out
	}
	if sc, ok := all[name]; ok {
		return []bench.Scenario{sc}
	}
	fatalf("unknown scenario %q (have %s, both, all)", name, strings.Join(names, ", "))
	return nil
}

func wants(experiment, which string) bool {
	return experiment == which || experiment == "all"
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "harmony-bench: "+format+"\n", args...)
	os.Exit(1)
}

package bench

// The live backend runs the full adaptive stack over real TCP: a cluster of
// genuine server processes (re-executions of the bench binary dispatching
// into internal/server.Main — byte-identical to cmd/harmony-server), driven
// by real client.Driver endpoints over the pipelined transport, observed by
// a real core.Monitor polling over the wire. Where the simulated benches
// measure the algorithms under modeled WAN latency, the live benches measure
// the deployed system: kernel sockets, scheduler jitter, kill -9 as the
// failure injection. Staleness is measured the way the paper's §V-F does it
// literally — dual reads (adaptive level, then ALL) via Driver.VerifyRead —
// because the wire protocol deliberately carries no server-side shadow
// counters.

import (
	"fmt"
	"math/rand"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"harmony/internal/client"
	"harmony/internal/core"
	"harmony/internal/dist"
	"harmony/internal/ring"
	"harmony/internal/server"
	"harmony/internal/sim"
	"harmony/internal/stats"
	"harmony/internal/transport"
	"harmony/internal/wire"
	"harmony/internal/ycsb"
)

// LiveChildEnv marks a process as a re-exec'd cluster member: when set, the
// bench binary's main dispatches straight into server.Main instead of
// running experiments. Spawning our own executable (os.Args[0]) keeps the
// live cluster a single self-contained binary.
const LiveChildEnv = "HARMONY_SERVER_CHILD"

// LiveClusterConfig parameterizes a spawned local cluster.
type LiveClusterConfig struct {
	// Procs is the number of server processes; RF the replication factor.
	Procs int
	RF    int
	// Vnodes per member (small keeps ring construction cheap).
	Vnodes int
	// GossipInterval tunes failure detection speed (churn wants it fast).
	GossipInterval time.Duration
	// Repair / RepairInterval enable anti-entropy on every member.
	Repair         bool
	RepairInterval time.Duration
	// HotKeys installs the two-group telemetry split on every member.
	HotKeys int64
	// HintQueueLimit caps coordinator hint queues (0 = unlimited).
	HintQueueLimit int
	// Streams / NoBatch configure each member's transport.
	Streams int
	NoBatch bool
	// DataDir, when set, gives every member a persistent bitcask engine
	// rooted at DataDir/<id>; a member Restart()ed after a kill recovers
	// its pre-crash rows from disk instead of returning empty.
	DataDir string
	// FsyncInterval batches member fsyncs (0 = group commit per apply).
	FsyncInterval time.Duration
	// LogDir receives one log file per member; empty uses a temp dir that
	// Close removes.
	LogDir string
	// Exe overrides the child executable (defaults to os.Args[0]).
	Exe string
}

// liveProc is one spawned cluster member.
type liveProc struct {
	id    ring.NodeID
	addr  string
	admin string // admin HTTP endpoint (scraper target)
	args  []string
	log   string
	cmd   *exec.Cmd
}

// LiveCluster is a running cluster of real server processes.
type LiveCluster struct {
	cfg     LiveClusterConfig
	procs   []*liveProc
	logDir  string
	ownsLog bool
	mu      sync.Mutex
}

// StartLiveCluster spawns cfg.Procs server processes on reserved loopback
// ports and blocks until every one accepts TCP connections.
func StartLiveCluster(cfg LiveClusterConfig) (*LiveCluster, error) {
	if cfg.Procs <= 0 {
		cfg.Procs = 3
	}
	if cfg.RF <= 0 || cfg.RF > cfg.Procs {
		cfg.RF = min(3, cfg.Procs)
	}
	if cfg.Vnodes <= 0 {
		cfg.Vnodes = 8
	}
	if cfg.GossipInterval <= 0 {
		cfg.GossipInterval = 250 * time.Millisecond
	}
	if cfg.RepairInterval <= 0 {
		cfg.RepairInterval = 500 * time.Millisecond
	}
	if cfg.Exe == "" {
		cfg.Exe = os.Args[0]
	}
	lc := &LiveCluster{cfg: cfg, logDir: cfg.LogDir}
	if lc.logDir == "" {
		dir, err := os.MkdirTemp("", "harmony-live-*")
		if err != nil {
			return nil, fmt.Errorf("bench: live log dir: %w", err)
		}
		lc.logDir, lc.ownsLog = dir, true
	} else if err := os.MkdirAll(lc.logDir, 0o755); err != nil {
		return nil, fmt.Errorf("bench: live log dir: %w", err)
	}

	// Reserve loopback ports per member by binding and releasing (one for
	// the transport, one for the admin endpoint); the window between release
	// and the child's bind is benign locally.
	reserve := func() (string, error) {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return "", fmt.Errorf("bench: reserve port: %w", err)
		}
		addr := l.Addr().String()
		l.Close()
		return addr, nil
	}
	members := make([]server.Member, cfg.Procs)
	admins := make([]string, cfg.Procs)
	for i := range members {
		addr, err := reserve()
		if err != nil {
			lc.Close()
			return nil, err
		}
		members[i] = server.Member{ID: ring.NodeID(fmt.Sprintf("n%d", i+1)), Addr: addr}
		if admins[i], err = reserve(); err != nil {
			lc.Close()
			return nil, err
		}
	}
	spec := server.FormatCluster(members)
	for i, m := range members {
		args := []string{
			"-id", string(m.ID),
			"-listen", m.Addr,
			"-cluster", spec,
			"-admin-addr", admins[i],
			"-rf", fmt.Sprint(cfg.RF),
			"-vnodes", fmt.Sprint(cfg.Vnodes),
			"-gossip-interval", cfg.GossipInterval.String(),
			"-streams", fmt.Sprint(max(cfg.Streams, 1)),
		}
		if cfg.NoBatch {
			args = append(args, "-no-batch")
		}
		if cfg.Repair {
			args = append(args, "-repair", "-repair-interval", cfg.RepairInterval.String())
		}
		if cfg.HotKeys > 0 {
			args = append(args, "-hot-keys", fmt.Sprint(cfg.HotKeys))
		}
		if cfg.HintQueueLimit > 0 {
			args = append(args, "-hint-queue-limit", fmt.Sprint(cfg.HintQueueLimit))
		}
		if cfg.DataDir != "" {
			args = append(args, "-data-dir", filepath.Join(cfg.DataDir, string(m.ID)))
			if cfg.FsyncInterval > 0 {
				args = append(args, "-fsync-interval", cfg.FsyncInterval.String())
			}
		}
		lc.procs = append(lc.procs, &liveProc{
			id: m.ID, addr: m.Addr, admin: admins[i], args: args,
			log: filepath.Join(lc.logDir, string(m.ID)+".log"),
		})
	}
	for _, p := range lc.procs {
		if err := lc.spawn(p); err != nil {
			lc.Close()
			return nil, err
		}
	}
	for _, p := range lc.procs {
		if err := waitListening(p.addr, 15*time.Second); err != nil {
			lc.Close()
			return nil, fmt.Errorf("bench: member %s never came up (log %s): %w", p.id, p.log, err)
		}
	}
	return lc, nil
}

func (lc *LiveCluster) spawn(p *liveProc) error {
	f, err := os.OpenFile(p.log, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("bench: member log: %w", err)
	}
	cmd := exec.Command(lc.cfg.Exe, p.args...)
	cmd.Stdout, cmd.Stderr = f, f
	cmd.Env = append(os.Environ(), LiveChildEnv+"=1")
	if err := cmd.Start(); err != nil {
		f.Close()
		return fmt.Errorf("bench: spawn %s: %w", p.id, err)
	}
	// The file descriptor is inherited by the child; our handle can close.
	f.Close()
	p.cmd = cmd
	return nil
}

// waitListening polls until a TCP connect to addr succeeds.
func waitListening(addr string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		c, err := net.DialTimeout("tcp", addr, 250*time.Millisecond)
		if err == nil {
			c.Close()
			return nil
		}
		if time.Now().After(deadline) {
			return err
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// IDs returns the member ids in spawn order.
func (lc *LiveCluster) IDs() []ring.NodeID {
	out := make([]ring.NodeID, len(lc.procs))
	for i, p := range lc.procs {
		out[i] = p.id
	}
	return out
}

// Peers returns the id -> address map client endpoints dial.
func (lc *LiveCluster) Peers() map[ring.NodeID]string {
	out := make(map[ring.NodeID]string, len(lc.procs))
	for _, p := range lc.procs {
		out[p.id] = p.addr
	}
	return out
}

// AdminAddrs returns the id -> admin HTTP address map (the scrape targets).
// A restarted member rebinds the same admin port.
func (lc *LiveCluster) AdminAddrs() map[ring.NodeID]string {
	out := make(map[ring.NodeID]string, len(lc.procs))
	for _, p := range lc.procs {
		out[p.id] = p.admin
	}
	return out
}

// RF reports the configured replication factor.
func (lc *LiveCluster) RF() int { return lc.cfg.RF }

func (lc *LiveCluster) find(id ring.NodeID) *liveProc {
	for _, p := range lc.procs {
		if p.id == id {
			return p
		}
	}
	return nil
}

// Kill delivers SIGKILL to a member — a genuine crash, not a clean
// shutdown: no flush, no goodbye, the kernel just reaps the sockets.
func (lc *LiveCluster) Kill(id ring.NodeID) error {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	p := lc.find(id)
	if p == nil || p.cmd == nil {
		return fmt.Errorf("bench: no running member %s", id)
	}
	_ = p.cmd.Process.Kill()
	_ = p.cmd.Wait()
	p.cmd = nil
	return nil
}

// Restart respawns a killed member with its original arguments. Without a
// data dir the process returns EMPTY — it lost every row it ever held, the
// worst-case divergence anti-entropy exists to repair. With DataDir set the
// member reopens its bitcask directory and recovers its pre-crash rows
// before accepting connections.
func (lc *LiveCluster) Restart(id ring.NodeID) error {
	lc.mu.Lock()
	p := lc.find(id)
	if p == nil {
		lc.mu.Unlock()
		return fmt.Errorf("bench: unknown member %s", id)
	}
	if p.cmd != nil {
		lc.mu.Unlock()
		return fmt.Errorf("bench: member %s still running", id)
	}
	err := lc.spawn(p)
	lc.mu.Unlock()
	if err != nil {
		return err
	}
	return waitListening(p.addr, 15*time.Second)
}

// Close kills every member and removes the temp log dir (if owned).
func (lc *LiveCluster) Close() {
	lc.mu.Lock()
	for _, p := range lc.procs {
		if p.cmd != nil {
			_ = p.cmd.Process.Kill()
			_ = p.cmd.Wait()
			p.cmd = nil
		}
	}
	lc.mu.Unlock()
	if lc.ownsLog && lc.logDir != "" {
		_ = os.RemoveAll(lc.logDir)
	}
}

// liveTally accumulates client-side measurements across all workers. The
// per-group split always uses the hotcold partition so both controller arms
// report comparable group rows.
type liveTally struct {
	mu      sync.Mutex
	ops     int64
	errors  int64
	reads   [2]uint64
	writes  [2]uint64
	samples [2]uint64 // VerifyRead probes per group
	stale   [2]uint64
	readLat stats.Histogram
}

func clampGroup(g int) int {
	if g < 0 || g > 1 {
		return 1
	}
	return g
}

func (t *liveTally) read(g int, d time.Duration, err error, probe, stale bool) {
	g = clampGroup(g)
	t.mu.Lock()
	defer t.mu.Unlock()
	t.ops++
	t.reads[g]++
	if err != nil {
		t.errors++
		return
	}
	if probe {
		t.samples[g]++
		if stale {
			t.stale[g]++
		}
	} else {
		t.readLat.Record(d)
	}
}

func (t *liveTally) write(g int, err error) {
	g = clampGroup(g)
	t.mu.Lock()
	defer t.mu.Unlock()
	t.ops++
	t.writes[g]++
	if err != nil {
		t.errors++
	}
}

func (t *liveTally) reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.ops, t.errors = 0, 0
	t.reads, t.writes = [2]uint64{}, [2]uint64{}
	t.samples, t.stale = [2]uint64{}, [2]uint64{}
	t.readLat.Reset()
}

type liveTallySnap struct {
	ops     int64
	errors  int64
	reads   [2]uint64
	writes  [2]uint64
	samples [2]uint64
	stale   [2]uint64
	readP99 time.Duration
}

func (t *liveTally) snapshot() liveTallySnap {
	t.mu.Lock()
	defer t.mu.Unlock()
	return liveTallySnap{
		ops: t.ops, errors: t.errors,
		reads: t.reads, writes: t.writes,
		samples: t.samples, stale: t.stale,
		readP99: t.readLat.P99(),
	}
}

// probes returns the cumulative per-group probe counters (window ticker).
func (t *liveTally) probes() (samples, stale [2]uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.samples, t.stale
}

// liveWorkerConfig shapes one closed-loop client worker.
type liveWorkerConfig struct {
	id      string
	peers   map[ring.NodeID]string
	coords  []ring.NodeID
	policy  client.ConsistencyPolicy
	streams int
	timeout time.Duration

	readProp    float64
	chooser     dist.KeyChooser
	valueBytes  int
	verifyEvery int
	groupFn     func([]byte) int
	seed        int64

	// maxAttempts / hedge arm the hardened request path: attempt-scoped
	// retries with coordinator failover, and hedged reads. Zero keeps the
	// single-attempt client.
	maxAttempts int
	hedge       time.Duration
}

// liveWorker is one closed-loop client: its own runtime (drivers are
// single-threaded by contract), its own pooled TCP endpoint, one in-flight
// operation at a time. Callbacks run on the runtime, so each completion
// issues the next operation without leaving it.
type liveWorker struct {
	cfg   liveWorkerConfig
	rt    *sim.RealRuntime
	tcp   *transport.TCPNode
	drv   *client.Driver
	rng   *rand.Rand
	tally *liveTally
	value []byte
	reads uint64
	stop  atomic.Bool
	idle  chan struct{}
}

func newLiveWorker(cfg liveWorkerConfig, tally *liveTally) (*liveWorker, error) {
	w := &liveWorker{
		cfg:   cfg,
		rt:    sim.NewRealRuntime(),
		rng:   rand.New(rand.NewSource(cfg.seed)),
		tally: tally,
		value: make([]byte, max(cfg.valueBytes, 1)),
		idle:  make(chan struct{}),
	}
	for i := range w.value {
		w.value[i] = byte('a' + i%26)
	}
	tcp, err := transport.NewTCPNode(transport.TCPConfig{
		ID:    ring.NodeID(cfg.id),
		Peers: cfg.peers, Streams: cfg.streams,
		Logf: func(string, ...any) {}, // peer churn during outages is expected
	}, w.rt, nil)
	if err != nil {
		w.rt.Stop()
		return nil, err
	}
	w.tcp = tcp
	drv, err := client.New(client.Options{
		ID:           ring.NodeID(cfg.id),
		Coordinators: cfg.coords,
		Policy:       cfg.policy,
		Timeout:      cfg.timeout,
		MaxAttempts:  cfg.maxAttempts,
		Hedge:        cfg.hedge,
	}, w.rt, tcp)
	if err != nil {
		tcp.Close()
		w.rt.Stop()
		return nil, err
	}
	w.drv = drv
	tcp.SetHandler(drv)
	return w, nil
}

func (w *liveWorker) start() { w.rt.Post(w.step) }

func (w *liveWorker) step() {
	if w.stop.Load() {
		close(w.idle)
		return
	}
	key := ycsb.Key(w.cfg.chooser.Next(w.rng))
	g := 0
	if w.cfg.groupFn != nil {
		g = w.cfg.groupFn(key)
	}
	if w.rng.Float64() < w.cfg.readProp {
		w.reads++
		start := time.Now()
		if w.cfg.verifyEvery > 0 && w.reads%uint64(w.cfg.verifyEvery) == 0 {
			// The dual-read staleness probe (§V-F literal), bounded by the
			// real-time condition: the primary read was stale only if the
			// strong read surfaces a version that is newer than what we got
			// AND was stamped before the primary read was ISSUED — a write
			// the reader was entitled to observe. Versions stamped while
			// the probe is in flight are concurrent updates, not staleness
			// (the naive dual read counts the hot keys' update rate).
			// Timestamps are coordinator wall clocks; every process shares
			// this host's clock, so they are comparable.
			issuedAt := start.UnixNano()
			w.drv.Read(key, func(primary client.ReadResult) {
				if primary.Err != nil {
					w.tally.read(g, 0, primary.Err, true, false)
					w.step()
					return
				}
				w.drv.ReadAtOnce(key, wire.All, func(strong client.ReadResult) {
					stale := strong.Err == nil && strong.Found &&
						strong.Ts > primary.Ts && strong.Ts <= issuedAt
					w.tally.read(g, time.Since(start), nil, true, stale)
					w.step()
				})
			})
			return
		}
		w.drv.Read(key, func(res client.ReadResult) {
			w.tally.read(g, time.Since(start), res.Err, false, false)
			w.step()
		})
		return
	}
	w.drv.Write(key, w.value, func(res client.WriteResult) {
		w.tally.write(g, res.Err)
		w.step()
	})
}

// halt stops issuing, waits for the in-flight operation to complete (driver
// timeouts guarantee it does), then tears the endpoint down.
func (w *liveWorker) halt() {
	w.stop.Store(true)
	select {
	case <-w.idle:
	case <-time.After(w.cfg.timeout + 3*time.Second):
	}
	w.tcp.Close()
	w.rt.Stop()
}

// livePreload writes keys [0, total) through one pipelined loader endpoint,
// keeping a window of operations in flight. Transient startup errors are
// retried: the cluster has just booted.
func livePreload(peers map[ring.NodeID]string, coords []ring.NodeID, total int64, valueBytes int) error {
	rt := sim.NewRealRuntime()
	defer rt.Stop()
	tcp, err := transport.NewTCPNode(transport.TCPConfig{
		ID: "live-loader", Peers: peers, Streams: 4,
	}, rt, nil)
	if err != nil {
		return err
	}
	defer tcp.Close()
	drv, err := client.New(client.Options{
		ID:           "live-loader",
		Coordinators: coords,
		Policy:       client.Fixed{},
		Timeout:      2 * time.Second,
	}, rt, tcp)
	if err != nil {
		return err
	}
	tcp.SetHandler(drv)

	value := make([]byte, max(valueBytes, 1))
	for i := range value {
		value[i] = byte('0' + i%10)
	}
	done := make(chan error, 1)
	const window = 64
	var issued, completed int64 // touched only on the runtime
	var issue func()
	issue = func() {
		if issued >= total {
			return
		}
		key := ycsb.Key(issued)
		issued++
		var attempt func(tries int)
		attempt = func(tries int) {
			drv.Write(key, value, func(res client.WriteResult) {
				if res.Err != nil && tries < 8 {
					rt.After(125*time.Millisecond, func() { attempt(tries + 1) })
					return
				}
				if res.Err != nil {
					select {
					case done <- fmt.Errorf("bench: preload %q: %w", key, res.Err):
					default:
					}
					return
				}
				completed++
				if completed == total {
					select {
					case done <- nil:
					default:
					}
					return
				}
				issue()
			})
		}
		attempt(0)
	}
	rt.Post(func() {
		for i := 0; i < window; i++ {
			issue()
		}
	})
	select {
	case err := <-done:
		return err
	case <-time.After(2*time.Minute + time.Duration(total)*time.Millisecond):
		return fmt.Errorf("bench: preload of %d keys timed out", total)
	}
}

// liveMonitor runs a real core.Monitor over its own TCP endpoint, feeding a
// controller and recording each member's latest raw stats.
type liveMonitor struct {
	rt  *sim.RealRuntime
	tcp *transport.TCPNode
	mon *core.Monitor

	mu    sync.Mutex
	stats map[ring.NodeID]wire.StatsResponse
}

func startLiveMonitor(lc *LiveCluster, ctl *core.Controller, interval time.Duration) (*liveMonitor, error) {
	m := &liveMonitor{
		rt:    sim.NewRealRuntime(),
		stats: make(map[ring.NodeID]wire.StatsResponse),
	}
	tcp, err := transport.NewTCPNode(transport.TCPConfig{
		ID: "harmony-monitor", Peers: lc.Peers(),
		Logf: func(string, ...any) {},
	}, m.rt, nil)
	if err != nil {
		m.rt.Stop()
		return nil, err
	}
	m.tcp = tcp
	m.mon = core.NewMonitor(core.MonitorConfig{
		ID:             "harmony-monitor",
		Nodes:          lc.IDs(),
		Interval:       interval,
		ReplicaSetSize: lc.RF(),
		OnObservation:  ctl.Observe,
		OnNodeStats: func(node ring.NodeID, s wire.StatsResponse) {
			m.mu.Lock()
			m.stats[node] = s
			m.mu.Unlock()
		},
	}, m.rt, tcp)
	tcp.SetHandler(m.mon)
	m.mon.Start()
	return m, nil
}

// maxAliveOf returns the largest failure-detector alive count any of the
// given members reported in its latest stats, or 0 before any report. The
// max is the view of the best-connected member, so waiting for it to drop
// means every listed member has convicted at least one peer.
func (m *liveMonitor) maxAliveOf(ids []ring.NodeID) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	best := 0
	for _, id := range ids {
		if s, ok := m.stats[id]; ok && int(s.AliveMembers) > best {
			best = int(s.AliveMembers)
		}
	}
	return best
}

// nodeStats sums a counter over every member's latest report.
func (m *liveMonitor) nodeStats(f func(wire.StatsResponse) uint64) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var sum uint64
	for _, s := range m.stats {
		sum += f(s)
	}
	return sum
}

func (m *liveMonitor) close() {
	m.mon.Stop()
	m.tcp.Close()
	m.rt.Stop()
}

package micro

import (
	"testing"
	"time"

	"harmony/internal/obs"
	"harmony/internal/storage"
	"harmony/internal/wire"
)

// Standard harness entry points so `go test -bench` (and bench-smoke) runs
// the same bodies cmd/bench-micro snapshots into out/micro.json.

func BenchmarkEngineApply(b *testing.B)             { EngineApply(b) }
func BenchmarkEngineApplyObserved(b *testing.B)     { EngineApplyObserved(b) }
func BenchmarkEngineGet(b *testing.B)               { EngineGet(b) }
func BenchmarkEngineGetObserved(b *testing.B)       { EngineGetObserved(b) }
func BenchmarkEngineScan(b *testing.B)              { EngineScan(b) }
func BenchmarkPersistApply(b *testing.B)            { PersistApply(b) }
func BenchmarkPersistApplyObserved(b *testing.B)    { PersistApplyObserved(b) }
func BenchmarkPersistGet(b *testing.B)              { PersistGet(b) }
func BenchmarkPersistRecover(b *testing.B)          { PersistRecover(b) }
func BenchmarkWireEncode(b *testing.B)              { WireEncode(b) }
func BenchmarkWireDecode(b *testing.B)              { WireDecode(b) }
func BenchmarkWireDecodeShared(b *testing.B)        { WireDecodeShared(b) }
func BenchmarkWireSize(b *testing.B)                { WireSize(b) }
func BenchmarkTransportSerialRPC(b *testing.B)      { TransportSerialRPC(b) }
func BenchmarkTransportPipelinedRPC(b *testing.B)   { TransportPipelinedRPC(b) }
func BenchmarkTransportBatched(b *testing.B)        { TransportBatchedThroughput(b) }
func BenchmarkTransportUnbatched(b *testing.B)      { TransportUnbatchedThroughput(b) }
func BenchmarkMerkleWritePath(b *testing.B)         { MerkleWritePath(b) }
func BenchmarkMerkleInvalidateRebuild(b *testing.B) { MerkleInvalidateRebuild(b) }
func BenchmarkClusterOps(b *testing.B)              { ClusterOps(b) }

// TestObservedHotPathAllocs pins the acceptance bar for the observability
// layer's overhead on the storage hot paths: with per-level histograms
// recording every operation, the in-memory Apply and Get stay allocation
// free and the durable (group-commit) Apply stays at or under 2 allocs/op.
func TestObservedHotPathAllocs(t *testing.T) {
	hist := obs.NewOpLevelHist()
	payload := []byte("0123456789abcdef0123456789abcdef")
	key := []byte("alloc-key")

	mem := storage.NewEngine(storage.Options{})
	ts := int64(0)
	for i := 0; i < 8; i++ { // steady state: key resident, scratch warm
		ts++
		mem.Apply(key, wire.Value{Data: payload, Timestamp: ts})
	}
	if a := testing.AllocsPerRun(500, func() {
		ts++
		start := time.Now()
		mem.Apply(key, wire.Value{Data: payload, Timestamp: ts})
		hist.Record(obs.OpWrite, wire.One, time.Since(start))
	}); a != 0 {
		t.Errorf("observed in-memory Apply allocates %.1f/op, want 0", a)
	}
	if a := testing.AllocsPerRun(500, func() {
		start := time.Now()
		mem.Get(key)
		hist.Record(obs.OpRead, wire.One, time.Since(start))
	}); a != 0 {
		t.Errorf("observed in-memory Get allocates %.1f/op, want 0", a)
	}

	dur, err := storage.Open(storage.Options{
		Persist: &storage.PersistOptions{Path: t.TempDir(), SegmentBytes: 1 << 30},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dur.Close()
	dts := int64(0)
	for i := 0; i < 8; i++ {
		dts++
		if _, err := dur.Apply(key, wire.Value{Data: payload, Timestamp: dts}); err != nil {
			t.Fatal(err)
		}
	}
	if a := testing.AllocsPerRun(200, func() {
		dts++
		start := time.Now()
		if _, err := dur.Apply(key, wire.Value{Data: payload, Timestamp: dts}); err != nil {
			t.Fatal(err)
		}
		hist.Record(obs.OpWrite, wire.Quorum, time.Since(start))
	}); a > 2 {
		t.Errorf("observed durable Apply allocates %.1f/op, want <= 2", a)
	}
}

package repair

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"harmony/internal/sim"
	"harmony/internal/storage"
	"harmony/internal/transport"
	"harmony/internal/wire"
)

// incrementalPair returns an engine whose accepted mutations fold into the
// cache in place — the exact wiring cluster.New uses when repair is enabled.
func incrementalPair(ranges []wire.TokenRange, leaves int) (*storage.Engine, *TreeCache) {
	var c *TreeCache
	e := storage.NewEngine(storage.Options{
		OnReplace: func(key []byte, old wire.Value, hadOld bool, v wire.Value) {
			c.Update(key, old, hadOld, v)
		},
	})
	c = NewTreeCache(e, ranges, leaves)
	return e, c
}

// rebuildReference builds a fresh cache over the same engine and returns
// its trees — the ground truth an incrementally maintained tree must match.
func rebuildReference(e *storage.Engine, ranges []wire.TokenRange, leaves int) []wire.RangeTree {
	return NewTreeCache(e, ranges, leaves).Trees(ranges)
}

// TestIncrementalUpdateAvoidsRebuild is the write-path acceptance test: a
// mutation burst against a built tree must not trigger any further engine
// scans, and the in-place tree must be digest-identical to a full rebuild.
func TestIncrementalUpdateAvoidsRebuild(t *testing.T) {
	full := []wire.TokenRange{{Start: 0, End: 0}} // whole ring, one arc
	e, c := incrementalPair(full, 8)
	for i := 0; i < 512; i++ {
		e.Apply([]byte(fmt.Sprintf("user%08d", i)), wire.Value{Data: []byte("v0"), Timestamp: int64(i + 1)})
	}
	c.Trees(full)
	if _, scans := c.Builds(); scans != 1 {
		t.Fatalf("initial build took %d scans, want 1", scans)
	}
	// Write burst: overwrites, fresh keys, tombstones, and rejected stale
	// writes, all through the incremental path.
	for i := 0; i < 1024; i++ {
		switch i % 4 {
		case 0:
			e.Apply([]byte(fmt.Sprintf("user%08d", i%512)), wire.Value{Data: []byte("v1"), Timestamp: int64(10000 + i)})
		case 1:
			e.Apply([]byte(fmt.Sprintf("new%08d", i)), wire.Value{Data: []byte("n"), Timestamp: int64(10000 + i)})
		case 2:
			e.Apply([]byte(fmt.Sprintf("user%08d", i%512)), wire.Value{Timestamp: int64(10000 + i), Tombstone: true})
		default:
			e.Apply([]byte(fmt.Sprintf("user%08d", i%512)), wire.Value{Data: []byte("stale"), Timestamp: 1}) // rejected
		}
	}
	got := c.Trees(full)
	builds, scans := c.Builds()
	if scans != 1 {
		t.Fatalf("write burst triggered engine scans: %d total, want the initial 1 (builds=%d)", scans, builds)
	}
	if c.Updates() == 0 {
		t.Fatal("no in-place updates recorded")
	}
	want := rebuildReference(e, full, 8)
	if len(got) != 1 || len(want) != 1 {
		t.Fatalf("tree counts: got %d want %d", len(got), len(want))
	}
	if got[0].Root != want[0].Root {
		t.Fatalf("incremental root %x != rebuilt root %x", got[0].Root, want[0].Root)
	}
	for i := range got[0].Leaves {
		if got[0].Leaves[i] != want[0].Leaves[i] {
			t.Fatalf("leaf %d: incremental %x != rebuilt %x", i, got[0].Leaves[i], want[0].Leaves[i])
		}
	}
}

// TestIncrementalFallsBackOnInvalidate: an explicit Invalidate (the
// conservative path) must force a real rebuild even when updates flowed.
func TestIncrementalFallsBackOnInvalidate(t *testing.T) {
	full := []wire.TokenRange{{Start: 0, End: 0}}
	e, c := incrementalPair(full, 8)
	e.Apply([]byte("k1"), wire.Value{Data: []byte("a"), Timestamp: 1})
	c.Trees(full)
	e.Apply([]byte("k2"), wire.Value{Data: []byte("b"), Timestamp: 2})
	c.Invalidate([]byte("k3")) // e.g. a raced scan's conservative marking
	c.Trees(full)
	if _, scans := c.Builds(); scans != 2 {
		t.Fatalf("scans = %d, want 2 (initial + post-invalidate rebuild)", scans)
	}
	// After the rebuild the incremental path resumes cleanly.
	e.Apply([]byte("k4"), wire.Value{Data: []byte("c"), Timestamp: 3})
	got := c.Trees(full)
	if _, scans := c.Builds(); scans != 2 {
		t.Fatalf("post-rebuild update scanned again: %d", scans)
	}
	want := rebuildReference(e, full, 8)
	if got[0].Root != want[0].Root {
		t.Fatal("tree diverged after invalidate + incremental resume")
	}
}

// TestIncrementalMultiRangeRouting: updates land in the right arc's tree
// and untracked keys are ignored, across a partitioned ring.
func TestIncrementalMultiRangeRouting(t *testing.T) {
	// Three tracked quarters of the ring; the fourth is untracked.
	q := ^uint64(0) / 4
	ranges := []wire.TokenRange{
		{Start: 0, End: q},
		{Start: q, End: 2 * q},
		{Start: 2 * q, End: 3 * q},
	}
	e, c := incrementalPair(ranges, 4)
	for i := 0; i < 256; i++ {
		e.Apply([]byte(fmt.Sprintf("seed%06d", i)), wire.Value{Data: []byte("s"), Timestamp: int64(i + 1)})
	}
	c.Trees(ranges)
	for i := 0; i < 512; i++ {
		e.Apply([]byte(fmt.Sprintf("mut%06d", i)), wire.Value{Data: []byte("m"), Timestamp: int64(1000 + i)})
	}
	got := c.Trees(ranges)
	if _, scans := c.Builds(); scans != 1 {
		t.Fatalf("scans = %d, want 1", scans)
	}
	want := rebuildReference(e, ranges, 4)
	if len(got) != len(want) {
		t.Fatalf("tree counts: %d vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Root != want[i].Root {
			t.Fatalf("range %v: incremental root differs from rebuild", got[i].Range)
		}
	}
}

// TestIncrementalMatchesRebuildProperty drives random histories through the
// incremental path and requires digest identity with a fresh rebuild —
// the commutative-sum argument (fold out the displaced version, fold in the
// new one) checked over arbitrary interleavings of overwrites, deletes,
// resurrections, flushes, and compactions.
func TestIncrementalMatchesRebuildProperty(t *testing.T) {
	full := []wire.TokenRange{{Start: 0, End: 0}}
	if err := quick.Check(func(seed int64, opsRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		e, c := incrementalPair(full, 8)
		ops := int(opsRaw)%200 + 20
		ts := int64(0)
		for i := 0; i < ops/2; i++ {
			ts++
			e.Apply([]byte(fmt.Sprintf("k%02d", rng.Intn(40))), wire.Value{Data: []byte("seed"), Timestamp: ts})
		}
		c.Trees(full) // build once, then maintain incrementally
		for i := 0; i < ops; i++ {
			switch rng.Intn(10) {
			case 8:
				e.Flush()
			case 9:
				e.Compact()
			default:
				// Random timestamps: some mutations lose LWW and must not
				// perturb the tree.
				v := wire.Value{Data: []byte(fmt.Sprintf("v%d", i)), Timestamp: int64(rng.Intn(ops)) + 1, Tombstone: rng.Intn(6) == 0}
				e.Apply([]byte(fmt.Sprintf("k%02d", rng.Intn(40))), v)
			}
		}
		got := c.Trees(full)
		if _, scans := c.Builds(); scans != 1 {
			t.Errorf("seed %d: %d scans", seed, scans)
			return false
		}
		want := rebuildReference(e, full, 8)
		if got[0].Root != want[0].Root {
			t.Errorf("seed %d: incremental tree diverged", seed)
			return false
		}
		return true
	}, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// newIncrementalPair is newPair with the production wiring: accepted
// mutations fold into the Merkle caches in place via OnReplace -> Applied
// (what cluster.New installs), instead of the conservative OnApply ->
// Invalidate the classic pair helper uses.
func newIncrementalPair(t *testing.T, opts Options) *pair {
	t.Helper()
	rng, strat := testRing(t, 2)
	s := sim.New(1)
	lb := transport.NewLoopback()
	p := &pair{s: s, lb: lb, aID: "n0", bID: "n1"}
	var ma, mb *Manager
	p.ea = storage.NewEngine(storage.Options{OnReplace: func(k []byte, old wire.Value, hadOld bool, v wire.Value) {
		if ma != nil {
			ma.Applied(k, old, hadOld, v)
		}
	}})
	p.eb = storage.NewEngine(storage.Options{OnReplace: func(k []byte, old wire.Value, hadOld bool, v wire.Value) {
		if mb != nil {
			mb.Applied(k, old, hadOld, v)
		}
	}})
	ma = NewManager(Config{Self: p.aID, Ring: rng, Strategy: strat, Engine: p.ea, Options: opts}, s, lb)
	mb = NewManager(Config{Self: p.bID, Ring: rng, Strategy: strat, Engine: p.eb, Options: opts}, s, lb)
	p.ma, p.mb = ma, mb
	lb.Register(p.aID, ma)
	lb.Register(p.bID, mb)
	return p
}

// TestIncrementalSessionsConverge runs the full session protocol with
// incrementally maintained caches on both sides (the production wiring) and
// checks byte-identical engines afterward — repair's own streamed rows flow
// through the same Update path — plus that steady-state sessions trigger no
// tree-rebuild engine scans.
func TestIncrementalSessionsConverge(t *testing.T) {
	p := newIncrementalPair(t, Options{Enabled: true, LeavesPerRange: 8})
	for i := 0; i < 64; i++ {
		p.ea.Apply([]byte(fmt.Sprintf("k%03d", i)), wire.Value{Data: []byte("a"), Timestamp: int64(i + 1)})
	}
	for i := 32; i < 96; i++ {
		p.eb.Apply([]byte(fmt.Sprintf("k%03d", i)), wire.Value{Data: []byte("b"), Timestamp: int64(1000 + i)})
	}
	p.ma.startSession(p.bID)
	if da, db := dump(p.ea), dump(p.eb); da != db {
		t.Fatalf("engines diverged after session:\n a=%s\n b=%s", da, db)
	}
	if st := p.ma.Stats(); st.SessionsCompleted != 1 {
		t.Fatalf("SessionsCompleted = %d, want 1", st.SessionsCompleted)
	}
	// Steady state: further mutations + sessions must not rebuild trees.
	_, scansA0 := p.ma.TreeCache().Builds()
	_, scansB0 := p.mb.TreeCache().Builds()
	for i := 0; i < 32; i++ {
		p.ea.Apply([]byte(fmt.Sprintf("k%03d", i)), wire.Value{Data: []byte("a2"), Timestamp: int64(5000 + i)})
	}
	p.ma.startSession(p.bID)
	if da, db := dump(p.ea), dump(p.eb); da != db {
		t.Fatal("engines diverged after steady-state session")
	}
	_, scansA1 := p.ma.TreeCache().Builds()
	_, scansB1 := p.mb.TreeCache().Builds()
	if scansA1 != scansA0 || scansB1 != scansB0 {
		t.Fatalf("steady-state session rebuilt trees: A %d->%d, B %d->%d",
			scansA0, scansA1, scansB0, scansB1)
	}
}

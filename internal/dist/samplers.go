package dist

import (
	"math"
	"math/rand"
	"sync/atomic"
)

// Constant always returns V. It is the degenerate distribution used to
// switch jitter off (Constant{V: 1} as a multiplicative factor).
type Constant struct {
	V float64
}

// Sample returns V.
func (c Constant) Sample(*rand.Rand) float64 { return c.V }

// Mean returns V.
func (c Constant) Mean() float64 { return c.V }

// Quantile returns V for every p.
func (c Constant) Quantile(float64) float64 { return c.V }

// CDF is the unit step at V.
func (c Constant) CDF(x float64) float64 {
	if x < c.V {
		return 0
	}
	return 1
}

// Uniform is the continuous uniform distribution on [Lo, Hi).
type Uniform struct {
	Lo, Hi float64
}

// Sample draws uniformly from [Lo, Hi).
func (u Uniform) Sample(rng *rand.Rand) float64 {
	return u.Lo + rng.Float64()*(u.Hi-u.Lo)
}

// Mean returns the midpoint (Lo+Hi)/2.
func (u Uniform) Mean() float64 { return (u.Lo + u.Hi) / 2 }

// Quantile returns Lo + p*(Hi-Lo).
func (u Uniform) Quantile(p float64) float64 {
	return u.Lo + clampProb(p)*(u.Hi-u.Lo)
}

// CDF is linear between Lo and Hi.
func (u Uniform) CDF(x float64) float64 {
	switch {
	case x <= u.Lo:
		return 0
	case x >= u.Hi:
		return 1
	default:
		return (x - u.Lo) / (u.Hi - u.Lo)
	}
}

// Exponential is the exponential distribution parameterized by its Mean
// (1/rate), the natural form for inter-arrival gaps and memoryless delays.
type Exponential struct {
	MeanV float64
}

// NewExponential returns an exponential distribution with the given mean.
func NewExponential(mean float64) Exponential { return Exponential{MeanV: mean} }

// Sample draws an exponential variate with the configured mean.
func (e Exponential) Sample(rng *rand.Rand) float64 {
	return rng.ExpFloat64() * e.MeanV
}

// Mean returns the configured mean.
func (e Exponential) Mean() float64 { return e.MeanV }

// Quantile returns -mean * ln(1-p).
func (e Exponential) Quantile(p float64) float64 {
	return -e.MeanV * math.Log(1-clampProb(p))
}

// CDF returns 1 - exp(-x/mean) for x >= 0.
func (e Exponential) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return 1 - math.Exp(-x/e.MeanV)
}

// Lognormal is exp(N(Mu, Sigma^2)): the classic model for service-time and
// network jitter multipliers (multiplicative noise, right-skewed tail).
type Lognormal struct {
	Mu, Sigma float64
}

// LognormalFromMeanP99 fits a lognormal to a target mean and 99th
// percentile — the two numbers latency SLOs are written in — by solving
//
//	mean = exp(mu + sigma^2/2)
//	p99  = exp(mu + z99*sigma)
//
// for (mu, sigma). The smaller root of the resulting quadratic is taken so
// the fit degrades continuously to a near-constant as p99 approaches the
// mean. Ratios p99/mean beyond exp(z99^2/2) (~15x) are not attainable by a
// lognormal and are clamped to the maximal-sigma fit.
func LognormalFromMeanP99(mean, p99 float64) Lognormal {
	if mean <= 0 || p99 <= mean {
		// Degenerate request: collapse toward a point mass at mean.
		return Lognormal{Mu: math.Log(math.Max(mean, 1e-300)), Sigma: 0}
	}
	disc := z99*z99 - 2*math.Log(p99/mean)
	if disc < 0 {
		disc = 0
	}
	sigma := z99 - math.Sqrt(disc)
	return Lognormal{Mu: math.Log(mean) - sigma*sigma/2, Sigma: sigma}
}

// Sample draws exp(mu + sigma*Z).
func (l Lognormal) Sample(rng *rand.Rand) float64 {
	return math.Exp(l.Mu + l.Sigma*rng.NormFloat64())
}

// Mean returns exp(mu + sigma^2/2).
func (l Lognormal) Mean() float64 { return math.Exp(l.Mu + l.Sigma*l.Sigma/2) }

// Quantile returns exp(mu + sigma*Phi^-1(p)).
func (l Lognormal) Quantile(p float64) float64 {
	return math.Exp(l.Mu + l.Sigma*zQuantile(clampProb(p)))
}

// CDF returns Phi((ln x - mu)/sigma).
func (l Lognormal) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	if l.Sigma == 0 {
		if math.Log(x) < l.Mu {
			return 0
		}
		return 1
	}
	return 0.5 * math.Erfc(-(math.Log(x)-l.Mu)/(l.Sigma*math.Sqrt2))
}

// Pareto is the type-I Pareto distribution with scale Xm (minimum value)
// and shape Alpha: the canonical heavy tail for WAN latency spikes. Alpha
// <= 1 has an infinite mean; keep Alpha > 1 for latency models.
type Pareto struct {
	Xm, Alpha float64
}

// ParetoFromMean returns a Pareto with the given mean and tail shape alpha
// (> 1): Xm = mean*(alpha-1)/alpha. Smaller alpha means a heavier tail at
// the same mean.
func ParetoFromMean(mean, alpha float64) Pareto {
	return Pareto{Xm: mean * (alpha - 1) / alpha, Alpha: alpha}
}

// Sample draws by inverse transform: Xm * (1-U)^(-1/alpha).
func (pa Pareto) Sample(rng *rand.Rand) float64 {
	u := rng.Float64()
	return pa.Xm * math.Pow(1-u, -1/pa.Alpha)
}

// Mean returns alpha*Xm/(alpha-1), or +Inf for alpha <= 1.
func (pa Pareto) Mean() float64 {
	if pa.Alpha <= 1 {
		return math.Inf(1)
	}
	return pa.Alpha * pa.Xm / (pa.Alpha - 1)
}

// Quantile returns Xm * (1-p)^(-1/alpha).
func (pa Pareto) Quantile(p float64) float64 {
	return pa.Xm * math.Pow(1-clampProb(p), -1/pa.Alpha)
}

// CDF returns 1 - (Xm/x)^alpha for x >= Xm.
func (pa Pareto) CDF(x float64) float64 {
	if x < pa.Xm {
		return 0
	}
	return 1 - math.Pow(pa.Xm/x, pa.Alpha)
}

// Shifted translates Base by Offset: X = Offset + Base. Used to give a
// stochastic tail a hard latency floor (e.g. a degraded link that is never
// faster than some constant).
type Shifted struct {
	Base   Sampler
	Offset float64
}

// Sample returns Offset + Base.Sample.
func (s Shifted) Sample(rng *rand.Rand) float64 { return s.Offset + s.Base.Sample(rng) }

// Mean returns Offset + Base.Mean.
func (s Shifted) Mean() float64 { return s.Offset + s.Base.Mean() }

// Quantile returns Offset + Base.Quantile(p).
func (s Shifted) Quantile(p float64) float64 { return s.Offset + s.Base.Quantile(p) }

// CDF evaluates the base CDF at x - Offset.
func (s Shifted) CDF(x float64) float64 { return cdfOf(s.Base, x-s.Offset) }

// Component weights one sampler inside a Mixture.
type Component struct {
	Weight  float64
	Sampler Sampler
}

// Mixture draws from one of several component distributions chosen by
// weight — the general tool for multi-regime latency (fast path vs
// retransmit, cache hit vs miss). Construct with NewMixture.
type Mixture struct {
	comps []Component
	total float64
}

// NewMixture builds a mixture from components with positive weights
// (normalization is internal; weights need not sum to 1). It panics on an
// empty or non-positive-weight component list, since a silent fallback
// would corrupt experiment timing.
func NewMixture(comps ...Component) Mixture {
	total := 0.0
	for _, c := range comps {
		if c.Weight < 0 || c.Sampler == nil {
			panic("dist: mixture component with negative weight or nil sampler")
		}
		total += c.Weight
	}
	if len(comps) == 0 || total <= 0 {
		panic("dist: mixture needs at least one positively weighted component")
	}
	return Mixture{comps: append([]Component(nil), comps...), total: total}
}

// Sample picks a component by weight, then samples it.
func (m Mixture) Sample(rng *rand.Rand) float64 {
	u := rng.Float64() * m.total
	for _, c := range m.comps {
		if u < c.Weight {
			return c.Sampler.Sample(rng)
		}
		u -= c.Weight
	}
	return m.comps[len(m.comps)-1].Sampler.Sample(rng)
}

// Mean returns the weight-averaged component means.
func (m Mixture) Mean() float64 {
	sum := 0.0
	for _, c := range m.comps {
		sum += c.Weight * c.Sampler.Mean()
	}
	return sum / m.total
}

// CDF returns the weight-averaged component CDFs.
func (m Mixture) CDF(x float64) float64 {
	sum := 0.0
	for _, c := range m.comps {
		sum += c.Weight * cdfOf(c.Sampler, x)
	}
	return sum / m.total
}

// Quantile inverts the mixture CDF numerically. The quantile is bracketed
// by the extreme component quantiles: at min_i Q_i(p) the mixture CDF is
// <= p, at max_i Q_i(p) it is >= p.
func (m Mixture) Quantile(p float64) float64 {
	p = clampProb(p)
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, c := range m.comps {
		q := c.Sampler.Quantile(p)
		lo = math.Min(lo, q)
		hi = math.Max(hi, q)
	}
	if lo == hi {
		return lo
	}
	return invertCDF(m.CDF, p, lo, hi)
}

// Bimodal is the two-regime special case of Mixture that network profiles
// use for congestion: with probability PFar the draw comes from Far (the
// slow mode), otherwise from Near. Construct with NewBimodal.
type Bimodal struct {
	mix Mixture
}

// NewBimodal builds a two-mode distribution: Near with probability
// 1-pFar, Far with probability pFar. pFar must lie in [0, 1].
func NewBimodal(near, far Sampler, pFar float64) Bimodal {
	if pFar < 0 || pFar > 1 {
		panic("dist: bimodal far-mode probability outside [0,1]")
	}
	return Bimodal{mix: NewMixture(
		Component{Weight: 1 - pFar, Sampler: near},
		Component{Weight: pFar, Sampler: far},
	)}
}

// Sample draws from the active mode.
func (b Bimodal) Sample(rng *rand.Rand) float64 { return b.mix.Sample(rng) }

// Mean returns (1-pFar)*near.Mean + pFar*far.Mean.
func (b Bimodal) Mean() float64 { return b.mix.Mean() }

// Quantile inverts the two-mode CDF.
func (b Bimodal) Quantile(p float64) float64 { return b.mix.Quantile(p) }

// CDF is the weighted two-mode CDF.
func (b Bimodal) CDF(x float64) float64 { return b.mix.CDF(x) }

// Drifting is a time-varying two-regime distribution: each draw comes from
// From with probability 1-Progress and from To with probability Progress,
// so advancing Progress from 0 to 1 drifts the distribution between the
// two regimes mid-run. It models the network a controller must re-adapt
// to — jitter that degrades (or heals) underneath a running experiment.
//
// Unlike every other sampler in this package, Drifting carries mutable
// state (the progress knob) and is therefore a pointer type; SetProgress
// is safe to call concurrently with Sample. At any fixed progress the
// analytic accessors (Mean/Quantile/CDF) describe the current mixture
// exactly, which keeps property tests and profile authors honest about
// the instantaneous regime.
type Drifting struct {
	From, To Sampler
	bits     atomic.Uint64
}

// NewDrifting builds a drifting distribution positioned at From
// (Progress 0). Both samplers must be non-nil.
func NewDrifting(from, to Sampler) *Drifting {
	if from == nil || to == nil {
		panic("dist: drifting needs two samplers")
	}
	return &Drifting{From: from, To: to}
}

// SetProgress moves the drift position, clamping into [0, 1].
func (d *Drifting) SetProgress(p float64) {
	if !(p > 0) { // also catches NaN
		p = 0
	}
	if p > 1 {
		p = 1
	}
	d.bits.Store(math.Float64bits(p))
}

// Progress returns the current drift position in [0, 1].
func (d *Drifting) Progress() float64 { return math.Float64frombits(d.bits.Load()) }

// snapshot freezes the current mixture.
func (d *Drifting) snapshot() Mixture {
	p := d.Progress()
	switch p {
	case 0:
		return NewMixture(Component{Weight: 1, Sampler: d.From})
	case 1:
		return NewMixture(Component{Weight: 1, Sampler: d.To})
	}
	return NewMixture(
		Component{Weight: 1 - p, Sampler: d.From},
		Component{Weight: p, Sampler: d.To},
	)
}

// Sample draws from the regime mixture at the current progress.
func (d *Drifting) Sample(rng *rand.Rand) float64 {
	p := d.Progress()
	if p > 0 && rng.Float64() < p {
		return d.To.Sample(rng)
	}
	return d.From.Sample(rng)
}

// Mean returns the progress-weighted regime means.
func (d *Drifting) Mean() float64 { return d.snapshot().Mean() }

// Quantile inverts the current mixture CDF.
func (d *Drifting) Quantile(p float64) float64 { return d.snapshot().Quantile(p) }

// CDF is the progress-weighted regime CDF.
func (d *Drifting) CDF(x float64) float64 { return d.snapshot().CDF(x) }

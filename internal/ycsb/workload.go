// Package ycsb reimplements the workload model of the Yahoo! Cloud Serving
// Benchmark, which the paper drives Cassandra with: a mix of operation types
// chosen by proportion, keys drawn from a popularity distribution, and a
// closed loop of client threads that each issue their next operation as soon
// as the previous one completes. The standard workload presets (A, B, C, D,
// F) are provided; the paper's evaluation uses Workload-A (update heavy,
// 50/50) and Workload-B (read mostly, 95/5).
package ycsb

import (
	"fmt"

	"harmony/internal/dist"
)

// OpType enumerates the operation kinds a workload mixes.
type OpType int

// Operation kinds.
const (
	OpRead OpType = iota
	OpUpdate
	OpInsert
	OpReadModifyWrite
	opKinds
)

// String names the operation.
func (o OpType) String() string {
	switch o {
	case OpRead:
		return "read"
	case OpUpdate:
		return "update"
	case OpInsert:
		return "insert"
	case OpReadModifyWrite:
		return "read-modify-write"
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// Distribution selects the request-key popularity model.
type Distribution string

// Supported request distributions.
const (
	DistUniform  Distribution = "uniform"
	DistZipfian  Distribution = "zipfian"
	DistLatest   Distribution = "latest"
	DistHotspot  Distribution = "hotspot"
	DistScrambed Distribution = "scrambled" // scrambled zipfian (YCSB default)
)

// Workload describes an operation mix over a record keyspace.
type Workload struct {
	Name string
	// Proportions must sum to ~1.
	ReadProportion            float64
	UpdateProportion          float64
	InsertProportion          float64
	ReadModifyWriteProportion float64
	// RecordCount is the initial keyspace size.
	RecordCount int64
	// ValueBytes is the payload size per record (the paper's rows are
	// ~1 KiB after the YCSB default of 10 fields x 100 bytes).
	ValueBytes int
	// RequestDistribution picks keys for reads/updates.
	RequestDistribution Distribution
}

// Validate checks the mix.
func (w Workload) Validate() error {
	sum := w.ReadProportion + w.UpdateProportion + w.InsertProportion + w.ReadModifyWriteProportion
	if sum < 0.999 || sum > 1.001 {
		return fmt.Errorf("ycsb: %s proportions sum to %v, want 1.0", w.Name, sum)
	}
	if w.RecordCount <= 0 {
		return fmt.Errorf("ycsb: %s has no records", w.Name)
	}
	if w.ValueBytes <= 0 {
		return fmt.Errorf("ycsb: %s has non-positive value size", w.Name)
	}
	return nil
}

// Standard presets, mirroring the YCSB core workload definitions. Record
// counts default to 100k and are overridden by experiment configs.

// WorkloadA is update heavy: 50% reads, 50% updates (the paper's primary
// workload, "heavy read-update").
func WorkloadA() Workload {
	return Workload{
		Name: "workload-a", ReadProportion: 0.5, UpdateProportion: 0.5,
		RecordCount: 100_000, ValueBytes: 1024, RequestDistribution: DistZipfian,
	}
}

// WorkloadB is read mostly: 95% reads, 5% updates (the paper's second
// workload).
func WorkloadB() Workload {
	return Workload{
		Name: "workload-b", ReadProportion: 0.95, UpdateProportion: 0.05,
		RecordCount: 100_000, ValueBytes: 1024, RequestDistribution: DistZipfian,
	}
}

// WorkloadC is read only.
func WorkloadC() Workload {
	return Workload{
		Name: "workload-c", ReadProportion: 1,
		RecordCount: 100_000, ValueBytes: 1024, RequestDistribution: DistZipfian,
	}
}

// WorkloadD is read latest: new records are inserted and the most recent are
// read disproportionately.
func WorkloadD() Workload {
	return Workload{
		Name: "workload-d", ReadProportion: 0.95, InsertProportion: 0.05,
		RecordCount: 100_000, ValueBytes: 1024, RequestDistribution: DistLatest,
	}
}

// WorkloadF is read-modify-write: a read of a key followed by an update to
// it.
func WorkloadF() Workload {
	return Workload{
		Name: "workload-f", ReadProportion: 0.5, ReadModifyWriteProportion: 0.5,
		RecordCount: 100_000, ValueBytes: 1024, RequestDistribution: DistZipfian,
	}
}

// Presets returns all built-in workloads keyed by their short letter.
func Presets() map[string]Workload {
	return map[string]Workload{
		"a": WorkloadA(), "b": WorkloadB(), "c": WorkloadC(),
		"d": WorkloadD(), "f": WorkloadF(),
	}
}

// chooser builds the key chooser for the workload.
func (w Workload) chooser() (dist.KeyChooser, error) {
	switch w.RequestDistribution {
	case DistUniform:
		return dist.NewUniformChooser(w.RecordCount), nil
	case DistZipfian:
		return dist.NewZipfianChooser(w.RecordCount), nil
	case DistScrambed:
		return dist.NewScrambledZipfianChooser(w.RecordCount), nil
	case DistLatest:
		return dist.NewLatestChooser(w.RecordCount), nil
	case DistHotspot:
		return dist.NewHotspotChooser(w.RecordCount, 0.2, 0.8), nil
	case "":
		return dist.NewZipfianChooser(w.RecordCount), nil
	}
	return nil, fmt.Errorf("ycsb: unknown distribution %q", w.RequestDistribution)
}

// NewChooser builds the request-key chooser for the workload; exported for
// harnesses that drive the cluster outside the closed-loop Runner (e.g. the
// open-loop load generator behind Fig. 4(b)).
func (w Workload) NewChooser() (dist.KeyChooser, error) { return w.chooser() }

// Key renders the canonical YCSB key name for an index.
func Key(i int64) []byte { return []byte(fmt.Sprintf("user%010d", i)) }

// KeyIndex parses the record index back out of a canonical YCSB key; ok is
// false for keys not produced by Key. Group functions use it to tag
// operations by key range without allocating.
func KeyIndex(key []byte) (int64, bool) {
	if len(key) < 5 || string(key[:4]) != "user" {
		return 0, false
	}
	var n int64
	for _, c := range key[4:] {
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int64(c-'0')
	}
	return n, true
}

// Package client implements the store's client side: the counterpart of the
// paper's modified YCSB Cassandra client.
//
// Session is the documented entry point for applications: it wraps a Driver
// with session guarantees (read-your-writes, monotonic reads) by carrying
// compact session tokens, and it works at every consistency level — at
// wire.Session the cluster enforces the token, at other levels the Session
// merely observes and counts violations. Driver is the low-level layer: it
// routes operations to coordinator nodes round-robin, attaches per-operation
// consistency levels from a pluggable ConsistencyPolicy (Harmony's adaptive
// controller, or a static Fixed policy), correlates responses, and enforces
// timeouts. It also offers the dual-read staleness probe of §V-F.
//
// The driver is event-driven like the rest of the system: operations take a
// callback and complete on the driver's runtime.
//
// # Hardened request path
//
// Each application-level operation is a logical op that may span several
// wire attempts. Options.Timeout is the logical op's overall budget; within
// it, attempts are bounded by Options.AttemptTimeout and retried — against
// the next coordinator, after capped exponential backoff with full jitter —
// when they fail with a retryable error (timeout, unavailable, overloaded).
// The remaining budget rides on every request (wire DeadlineMs) so
// coordinators shed work the client has already abandoned. Reads may
// additionally be hedged: after Options.Hedge with no response, a duplicate
// read is sent to the next coordinator and the first answer wins (the
// loser's response is discarded — hedged-read cancellation). Writes stay
// idempotent across retries: the first attempt stamps the mutation
// timestamp (wire TsHint) and every retry replays it, so a duplicate
// application LWW-collapses into the original instead of appearing newer.
package client

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"time"

	"harmony/internal/ring"
	"harmony/internal/sim"
	"harmony/internal/transport"
	"harmony/internal/wire"
)

// Driver errors.
var (
	ErrTimeout     = errors.New("client: operation timed out")
	ErrUnavailable = errors.New("client: not enough replicas")
	ErrOverloaded  = errors.New("client: coordinator overloaded")
	ErrServer      = errors.New("client: server error")
)

// ConsistencyPolicy supplies the read and write consistency levels for an
// operation on key. It is the single policy surface of the client: Harmony's
// adaptive controller implements it (per key group), static deployments use
// Fixed, and per-key category tables (core.PerKeyLevels) implement it too.
//
// The driver consults the policy at issue time for every operation and never
// caches levels, so a policy whose grouping changes at runtime (the
// regrouping subsystem swaps epochs mid-run) takes effect on the very next
// operation. Implementations must resolve the key's group and that group's
// levels atomically — a key must never be judged with one epoch's group id
// against another epoch's group table (core.Controller.LevelsFor holds its
// lock across both lookups for exactly this reason). A zero returned level
// means One.
type ConsistencyPolicy interface {
	LevelsFor(key []byte) (read, write wire.ConsistencyLevel)
}

// Fixed is a ConsistencyPolicy returning constant levels; zero fields mean
// One, so Fixed{} is the paper's baseline (read ONE, write ONE) and
// Fixed{Read: wire.Quorum} upgrades only reads.
type Fixed struct {
	Read  wire.ConsistencyLevel
	Write wire.ConsistencyLevel
}

// LevelsFor implements ConsistencyPolicy.
func (f Fixed) LevelsFor([]byte) (read, write wire.ConsistencyLevel) {
	read, write = f.Read, f.Write
	if read == 0 {
		read = wire.One
	}
	if write == 0 {
		write = wire.One
	}
	return read, write
}

// Options configure a Driver.
type Options struct {
	// ID is the driver's endpoint identity on the fabric.
	ID ring.NodeID
	// Coordinators are the nodes the driver spreads requests over.
	Coordinators []ring.NodeID
	// Policy supplies per-operation consistency levels; nil means Fixed{}
	// (read ONE, write ONE — the paper's baseline, "a write of consistency
	// level one", §II-B).
	Policy ConsistencyPolicy
	// Timeout bounds each logical operation across all its attempts; zero
	// means 2s.
	Timeout time.Duration
	// ShadowEvery requests the dual-read staleness probe (§V-F) on every
	// k-th read; 0 disables probing, 1 probes every read. Sampling keeps
	// the measurement from perturbing the run the way the paper's
	// probe-every-read method admits to doing.
	ShadowEvery int

	// MaxAttempts is how many wire attempts a logical op may consume when
	// attempts fail with retryable errors (timeout, unavailable,
	// overloaded). Each retry goes to the NEXT coordinator (failover) after
	// capped exponential backoff with full jitter. 0 or 1 disables retry —
	// the pre-hardening behavior.
	MaxAttempts int
	// AttemptTimeout bounds one attempt; zero derives Timeout/MaxAttempts,
	// so the budget accommodates every attempt without backoff starvation.
	AttemptTimeout time.Duration
	// RetryBackoff is the first backoff bound and RetryBackoffMax the cap
	// it doubles toward; the wait before each retry is uniform in
	// [0, bound) — "full jitter". Zero means 10ms and 320ms.
	RetryBackoff    time.Duration
	RetryBackoffMax time.Duration
	// Hedge, when positive, arms hedged reads: a read unanswered after
	// this long sends a duplicate to the next coordinator and the first
	// response wins. Hedges do not consume retry attempts. Writes are
	// never hedged (a hedge is a deliberate duplicate; reads are naturally
	// idempotent, and duplicating writes would double mutation traffic for
	// no latency win given TsHint replay already exists).
	Hedge time.Duration
	// Rand drives retry jitter; nil seeds deterministically from ID.
	Rand *rand.Rand
}

// ReadResult is delivered to read callbacks.
type ReadResult struct {
	Found    bool
	Value    []byte
	Ts       int64
	Clock    []wire.ClockEntry // version vector clock (empty for legacy values)
	Achieved wire.ConsistencyLevel
	Err      error
}

// WriteResult is delivered to write callbacks.
type WriteResult struct {
	Ts    int64
	Clock []wire.ClockEntry // clock the coordinator stamped on the write
	Err   error
}

// Driver issues operations against the cluster. All methods must be called
// from the driver's runtime context; callbacks run there too.
type Driver struct {
	opts    Options
	rt      sim.Runtime
	send    transport.Sender
	rng     *rand.Rand
	nextID  uint64
	nextCo  int
	reads   uint64
	retries uint64
	hedges  uint64
	pending map[uint64]*logicalOp
}

// logicalOp is one application-level operation: up to MaxAttempts wire
// attempts plus at most one hedge, all sharing the overall deadline. Every
// outstanding attempt's wire id maps to the op in Driver.pending; the first
// response (or terminal error) completes the op and orphans the rest.
type logicalOp struct {
	isRead bool
	key    []byte
	value  []byte
	del    bool
	level  wire.ConsistencyLevel
	token  []wire.ClockEntry
	shadow bool
	tsHint int64

	deadline    time.Time
	attempts    int
	maxAttempts int           // per-op cap; best-effort reads pin it to 1
	backoff     time.Duration // next retry's jitter bound
	done        bool
	lastErr     error

	cancels     map[uint64]func() // live attempt id -> its timeout timer
	hedgeCancel func()

	onRead  func(ReadResult)
	onWrite func(WriteResult)
}

// New creates a driver and registers nothing: the caller must register the
// driver on the fabric (bus.Register(opts.ID, rt, driver)).
func New(opts Options, rt sim.Runtime, send transport.Sender) (*Driver, error) {
	if len(opts.Coordinators) == 0 {
		return nil, fmt.Errorf("client: no coordinators")
	}
	if opts.Policy == nil {
		opts.Policy = Fixed{}
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 2 * time.Second
	}
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = 1
	}
	if opts.AttemptTimeout <= 0 {
		opts.AttemptTimeout = opts.Timeout / time.Duration(opts.MaxAttempts)
	}
	if opts.RetryBackoff <= 0 {
		opts.RetryBackoff = 10 * time.Millisecond
	}
	if opts.RetryBackoffMax <= 0 {
		opts.RetryBackoffMax = 320 * time.Millisecond
	}
	rng := opts.Rand
	if rng == nil {
		h := fnv.New64a()
		h.Write([]byte(opts.ID))
		rng = rand.New(rand.NewSource(int64(h.Sum64())))
	}
	return &Driver{
		opts:    opts,
		rt:      rt,
		send:    send,
		rng:     rng,
		pending: make(map[uint64]*logicalOp),
	}, nil
}

// ID returns the driver's fabric identity.
func (d *Driver) ID() ring.NodeID { return d.opts.ID }

func (d *Driver) coordinator() ring.NodeID {
	c := d.opts.Coordinators[d.nextCo%len(d.opts.Coordinators)]
	d.nextCo++
	return c
}

func (d *Driver) newOp() uint64 {
	d.nextID++
	return d.nextID
}

// Read fetches key at the read level the configured policy chooses.
func (d *Driver) Read(key []byte, cb func(ReadResult)) {
	level, _ := d.opts.Policy.LevelsFor(key)
	d.ReadAt(key, level, cb)
}

// ReadAt fetches key at an explicit consistency level.
func (d *Driver) ReadAt(key []byte, level wire.ConsistencyLevel, cb func(ReadResult)) {
	d.ReadToken(key, level, nil, cb)
}

// ReadToken fetches key at an explicit level carrying a session token. At
// wire.Session the coordinator must answer with a version covering the token
// (Session maintains tokens and calls this); at other levels the token is
// ignored by the cluster.
func (d *Driver) ReadToken(key []byte, level wire.ConsistencyLevel, token []wire.ClockEntry, cb func(ReadResult)) {
	d.readToken(key, level, token, d.opts.MaxAttempts, true, cb)
}

// ReadAtOnce fetches key at an explicit level with a single attempt and no
// hedge: a refusal or timeout reports immediately instead of consuming the
// hardened path's retry budget. Measurement and diagnostic reads (the
// strong leg of a dual-read staleness probe) use it so the apparatus never
// amplifies load or burns extra deadlines exactly when the cluster is
// degraded — a refused ALL read during a partition is deterministic until
// membership changes, and retrying it buys nothing.
func (d *Driver) ReadAtOnce(key []byte, level wire.ConsistencyLevel, cb func(ReadResult)) {
	d.readToken(key, level, nil, 1, false, cb)
}

func (d *Driver) readToken(key []byte, level wire.ConsistencyLevel, token []wire.ClockEntry, maxAttempts int, hedge bool, cb func(ReadResult)) {
	if level == 0 {
		level = wire.One
	}
	if maxAttempts < 1 {
		maxAttempts = 1
	}
	d.reads++
	op := &logicalOp{
		isRead:      true,
		key:         key,
		level:       level,
		token:       token,
		shadow:      d.opts.ShadowEvery > 0 && d.reads%uint64(d.opts.ShadowEvery) == 0,
		deadline:    d.rt.Now().Add(d.opts.Timeout),
		maxAttempts: maxAttempts,
		backoff:     d.opts.RetryBackoff,
		cancels:     make(map[uint64]func()),
		onRead:      cb,
	}
	d.issue(op)
	if hedge && d.opts.Hedge > 0 && !op.done {
		op.hedgeCancel = d.rt.After(d.opts.Hedge, func() { d.hedge(op) })
	}
}

// Write stores value under key at the write level the policy chooses.
func (d *Driver) Write(key, value []byte, cb func(WriteResult)) {
	d.write(key, value, false, cb)
}

// Delete removes key (tombstone write).
func (d *Driver) Delete(key []byte, cb func(WriteResult)) {
	d.write(key, nil, true, cb)
}

func (d *Driver) write(key, value []byte, del bool, cb func(WriteResult)) {
	_, level := d.opts.Policy.LevelsFor(key)
	if level == 0 {
		level = wire.One
	}
	if level == wire.Session {
		// Session is a read guarantee; writes at a session policy ship at
		// ONE (the cheap arm of the tier).
		level = wire.One
	}
	op := &logicalOp{
		key:         key,
		value:       value,
		del:         del,
		level:       level,
		deadline:    d.rt.Now().Add(d.opts.Timeout),
		maxAttempts: d.opts.MaxAttempts,
		backoff:     d.opts.RetryBackoff,
		cancels:     make(map[uint64]func()),
		onWrite:     cb,
	}
	if d.opts.MaxAttempts > 1 {
		// Client-stamped timestamp, identical on every attempt, so a retry
		// that replays an already-applied mutation LWW-collapses into it.
		// Single-attempt configs keep coordinator stamping (TsHint zero).
		op.tsHint = d.rt.Now().UnixNano()
	}
	d.issue(op)
}

// issue sends one wire attempt for op to the next coordinator, bounded by
// the attempt timeout clamped to the remaining overall budget.
func (d *Driver) issue(op *logicalOp) {
	remaining := op.deadline.Sub(d.rt.Now())
	if remaining <= 0 {
		d.finishErr(op, ErrTimeout, "overall budget exhausted")
		return
	}
	at := d.opts.AttemptTimeout
	if at > remaining {
		at = remaining
	}
	op.attempts++
	id := d.newOp()
	d.pending[id] = op
	op.cancels[id] = d.rt.After(at, func() { d.attemptFailed(op, id, ErrTimeout, "attempt timed out") })
	deadlineMs := uint64(remaining / time.Millisecond)
	if deadlineMs == 0 {
		deadlineMs = 1
	}
	co := d.coordinator()
	if op.isRead {
		d.send.Send(d.opts.ID, co, wire.ReadRequest{
			ID: id, Key: op.key, Level: op.level, Shadow: op.shadow,
			Token: op.token, DeadlineMs: deadlineMs,
		})
	} else {
		d.send.Send(d.opts.ID, co, wire.WriteRequest{
			ID: id, Key: op.key, Value: op.value, Delete: op.del,
			Level: op.level, DeadlineMs: deadlineMs, TsHint: op.tsHint,
		})
	}
}

// hedge fires the read's hedge timer: if no response has arrived, issue a
// duplicate attempt to the next coordinator. First response wins.
func (d *Driver) hedge(op *logicalOp) {
	op.hedgeCancel = nil
	if op.done || len(op.cancels) == 0 {
		// Completed, or between retries (backoff); the retry path is
		// already driving the op.
		return
	}
	d.hedges++
	d.issue(op)
}

// attemptFailed handles one attempt's retryable failure: the attempt is
// forgotten and the op retries, waits for a still-outstanding sibling
// (hedge), or completes with the error.
func (d *Driver) attemptFailed(op *logicalOp, id uint64, base error, detail string) {
	cancel, live := op.cancels[id]
	if op.done || !live {
		return
	}
	cancel()
	delete(op.cancels, id)
	delete(d.pending, id)
	op.lastErr = d.wrapErr(op, base, detail)
	if len(op.cancels) > 0 {
		return // a sibling attempt is still in flight; let it race
	}
	if op.attempts >= op.maxAttempts {
		d.finish(op, ReadResult{Err: op.lastErr}, WriteResult{Err: op.lastErr})
		return
	}
	// Capped exponential backoff, full jitter: uniform in [0, bound).
	wait := time.Duration(d.rng.Int63n(int64(op.backoff) + 1))
	op.backoff = min(2*op.backoff, d.opts.RetryBackoffMax)
	if !d.rt.Now().Add(wait).Before(op.deadline) {
		d.finish(op, ReadResult{Err: op.lastErr}, WriteResult{Err: op.lastErr})
		return
	}
	d.retries++
	d.rt.After(wait, func() {
		if !op.done {
			d.issue(op)
		}
	})
}

// finish completes op exactly once: every outstanding attempt is orphaned
// (late responses and timers find nothing) and the callback runs.
func (d *Driver) finish(op *logicalOp, r ReadResult, w WriteResult) {
	if op.done {
		return
	}
	op.done = true
	for id, cancel := range op.cancels {
		cancel()
		delete(op.cancels, id)
		delete(d.pending, id)
	}
	if op.hedgeCancel != nil {
		op.hedgeCancel()
		op.hedgeCancel = nil
	}
	if op.isRead {
		op.onRead(r)
	} else {
		op.onWrite(w)
	}
}

func (d *Driver) finishErr(op *logicalOp, base error, detail string) {
	err := d.wrapErr(op, base, detail)
	d.finish(op, ReadResult{Err: err}, WriteResult{Err: err})
}

// wrapErr gives degraded-mode errors enough context to act on: op kind,
// key, attempted level, and how many attempts were burned.
func (d *Driver) wrapErr(op *logicalOp, base error, detail string) error {
	kind := "write"
	if op.isRead {
		kind = "read"
	}
	if op.del {
		kind = "delete"
	}
	return fmt.Errorf("%w: %s %q at %s (attempt %d/%d): %s",
		base, kind, op.key, op.level, op.attempts, op.maxAttempts, detail)
}

// VerifyRead performs the paper's literal dual-read staleness measurement:
// one read at the adaptive level followed by one at ALL, comparing
// timestamps. The callback receives the primary result and whether it was
// stale relative to the strong read. Note the measurement perturbs the
// system exactly as §V-F warns.
func (d *Driver) VerifyRead(key []byte, cb func(primary ReadResult, stale bool)) {
	d.Read(key, func(primary ReadResult) {
		if primary.Err != nil {
			cb(primary, false)
			return
		}
		// Best-effort strong leg: a refused or slow ALL read yields no
		// verdict, and retrying it would amplify the measurement's load
		// exactly when the cluster is degraded.
		d.ReadAtOnce(key, wire.All, func(strong ReadResult) {
			stale := strong.Err == nil && strong.Found && strong.Ts > primary.Ts
			cb(primary, stale)
		})
	})
}

// retryable reports whether a server error code may succeed on another
// coordinator or a later attempt.
func retryable(code wire.ErrorCode) bool {
	return code == wire.ErrTimeout || code == wire.ErrUnavailable || code == wire.ErrOverloaded
}

func baseErr(code wire.ErrorCode) error {
	switch code {
	case wire.ErrTimeout:
		return ErrTimeout
	case wire.ErrUnavailable:
		return ErrUnavailable
	case wire.ErrOverloaded:
		return ErrOverloaded
	}
	return ErrServer
}

// Deliver implements transport.Handler: correlate responses to callbacks.
func (d *Driver) Deliver(_ ring.NodeID, m wire.Message) {
	switch msg := m.(type) {
	case wire.ReadResponse:
		if op, ok := d.pending[msg.ID]; ok && op.isRead {
			d.finish(op, ReadResult{
				Found:    msg.Found,
				Value:    msg.Value.Data,
				Ts:       msg.Value.Timestamp,
				Clock:    msg.Value.Clock,
				Achieved: msg.Achieved,
			}, WriteResult{})
		}
	case wire.WriteResponse:
		if op, ok := d.pending[msg.ID]; ok && !op.isRead {
			d.finish(op, ReadResult{}, WriteResult{Ts: msg.Timestamp, Clock: msg.Clock})
		}
	case wire.Error:
		op, ok := d.pending[msg.ID]
		if !ok {
			return
		}
		if retryable(msg.Code) {
			d.attemptFailed(op, msg.ID, baseErr(msg.Code), msg.Msg)
			return
		}
		err := d.wrapErr(op, fmt.Errorf("%w: %s (%s)", ErrServer, msg.Msg, msg.Code), "not retryable")
		d.finish(op, ReadResult{Err: err}, WriteResult{Err: err})
	}
}

// Pending reports in-flight wire attempts (tests).
func (d *Driver) Pending() int { return len(d.pending) }

// Retries and Hedges report how many retry attempts and hedged reads the
// driver has issued (tests, bench accounting).
func (d *Driver) Retries() uint64 { return d.retries }

// Hedges reports issued hedge reads; see Retries.
func (d *Driver) Hedges() uint64 { return d.hedges }

var _ transport.Handler = (*Driver)(nil)

package bench

import (
	"fmt"
	"strings"
	"time"

	"harmony/internal/cluster"
	"harmony/internal/core"
	"harmony/internal/sim"
	"harmony/internal/wire"
	"harmony/internal/ycsb"
)

// The hotcold experiment demonstrates the payoff of per-key-group
// adaptation (§VII's consistency categories made concrete): the keyspace
// splits into a small hot range hammered by zipfian 50/50 traffic and a
// large cold range served read-mostly with uniform key choice. A global
// Harmony controller must satisfy the hot data's tight staleness target on
// every read — including the overwhelmingly safe cold ones. The per-group
// multi-model controller gives each group its own measured λr/λw and its
// own tolerance, so cold reads stay at ONE while hot reads tighten, buying
// throughput without spending staleness where it matters.
//
// The session arm takes the menu one tier further: the hot group is flagged
// session-scoped (its clients need read-your-writes and monotonic reads, not
// a cluster-wide staleness bound), so the controller serves it at SESSION —
// token-checked reads that block for a single replica in the common case —
// instead of climbing to quorum. Clients run through client.Session, and the
// run reports both the session contract (regressions must be zero) and the
// escalation counters showing what the tokens cost.

// HotColdSpec parameterizes the hot/cold experiment.
type HotColdSpec struct {
	Scenario Scenario
	// HotKeys is the size of the hot key range [0, HotKeys); TotalKeys is
	// the whole keyspace (the cold range is [HotKeys, TotalKeys)).
	HotKeys   int64
	TotalKeys int64
	// HotThreads / ColdThreads size the two closed-loop client pools.
	HotThreads, ColdThreads int
	// HotTolerance is the hot group's (tight) tolerable stale-read rate;
	// the global baseline controller runs at this same tolerance, since a
	// single-knob deployment must protect its most sensitive data.
	// ColdTolerance is the cold group's loose target.
	HotTolerance, ColdTolerance float64
	// ArrivalRate, when positive, drives both client pools open loop,
	// splitting the aggregate Poisson rate between them in proportion to
	// their thread counts.
	ArrivalRate float64
}

// DefaultHotColdSpec returns the standard configuration: 500 hot keys
// inside a 20k keyspace on the Grid'5000 profile, with a 5% hot target and
// a 60% cold target.
func DefaultHotColdSpec() HotColdSpec {
	return HotColdSpec{
		Scenario:      Grid5000(),
		HotKeys:       500,
		TotalKeys:     20_000,
		HotThreads:    20,
		ColdThreads:   40,
		HotTolerance:  0.05,
		ColdTolerance: 0.60,
	}
}

// HotColdGroup is one key group's outcome in a hotcold run.
type HotColdGroup struct {
	Name            string  `json:"name"`
	Tolerance       float64 `json:"tolerance"`
	Reads           uint64  `json:"reads"`
	Writes          uint64  `json:"writes"`
	ShadowSamples   uint64  `json:"shadow_samples"`
	StaleReads      uint64  `json:"stale_reads"`
	StaleFraction   float64 `json:"stale_fraction"`
	WithinTolerance bool    `json:"within_tolerance"`
	// FinalLevel is the consistency level the controller held for this
	// group when measurement ended.
	FinalLevel string `json:"final_level"`
	// SessionServed marks a group the session arm serves at SESSION: its
	// requirement is the session contract (zero regressions), so
	// WithinTolerance reports that contract; StaleFraction still reports the
	// cross-session staleness for comparison against the other arms.
	SessionServed bool `json:"session_served,omitempty"`
}

// HotColdRun is one policy's measurement.
type HotColdRun struct {
	Policy        string         `json:"policy"`
	ThroughputOps float64        `json:"throughput_ops"`
	Operations    int64          `json:"operations"`
	Errors        int64          `json:"errors"`
	ReadP99Ms     float64        `json:"read_p99_ms"`
	Groups        []HotColdGroup `json:"groups"`
	// Session-arm telemetry (zero in the other arms): reads coordinated at
	// SESSION, the session contract violations the clients counted, and the
	// coordinator-side escalations token checks caused.
	SessionReads       uint64 `json:"session_reads,omitempty"`
	SessionRegressions uint64 `json:"session_regressions"`
	SessionUpgrades    uint64 `json:"session_upgrades,omitempty"`
}

// HotColdResult compares per-group adaptation against the global
// controller on identical load.
type HotColdResult struct {
	Scenario  string     `json:"scenario"`
	HotKeys   int64      `json:"hot_keys"`
	TotalKeys int64      `json:"total_keys"`
	Ops       int64      `json:"ops"`
	PerGroup  HotColdRun `json:"per_group"`
	Global    HotColdRun `json:"global"`
	// Session is the session-mode arm: the hot group flagged session-scoped
	// and served at SESSION through client.Session.
	Session        HotColdRun `json:"session"`
	ThroughputGain float64    `json:"throughput_gain"` // PerGroup/Global - 1
	SessionGain    float64    `json:"session_gain"`    // Session/Global - 1
}

// Format renders the comparison.
func (r HotColdResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== hotcold (%s, %d hot / %d total keys, %d ops) ==\n",
		r.Scenario, r.HotKeys, r.TotalKeys, r.Ops)
	for _, run := range []HotColdRun{r.PerGroup, r.Session, r.Global} {
		fmt.Fprintf(&b, "%-10s tput=%8.0f ops/s readP99=%6.2fms errors=%d\n",
			run.Policy, run.ThroughputOps, run.ReadP99Ms, run.Errors)
		for _, g := range run.Groups {
			status := "within"
			if !g.WithinTolerance {
				status = "EXCEEDED"
			}
			fmt.Fprintf(&b, "  %-5s level=%-7s stale=%d/%d (%.3f vs tol %.2f, %s) reads=%d writes=%d\n",
				g.Name, g.FinalLevel, g.StaleReads, g.ShadowSamples,
				g.StaleFraction, g.Tolerance, status, g.Reads, g.Writes)
		}
		if run.SessionReads > 0 || run.SessionRegressions > 0 {
			fmt.Fprintf(&b, "  session reads=%d regressions=%d upgrades=%d\n",
				run.SessionReads, run.SessionRegressions, run.SessionUpgrades)
		}
	}
	fmt.Fprintf(&b, "throughput gain per-group vs global: %+.0f%%\n", r.ThroughputGain*100)
	fmt.Fprintf(&b, "throughput gain session   vs global: %+.0f%%\n", r.SessionGain*100)
	return b.String()
}

// hotColdGroupFn tags keys below the hot threshold as group 0.
func hotColdGroupFn(hotKeys int64) func([]byte) int {
	return func(key []byte) int {
		if idx, ok := ycsb.KeyIndex(key); ok && idx < hotKeys {
			return 0
		}
		return 1
	}
}

// HotCold measures the hotcold experiment for both controllers and
// compares them. opts.OpsPerPoint is the measured operation budget per
// policy; opts.Seed drives all randomness.
func HotCold(spec HotColdSpec, opts Options) (HotColdResult, error) {
	opts = opts.withDefaults()
	if spec.HotKeys <= 0 || spec.TotalKeys <= spec.HotKeys {
		return HotColdResult{}, fmt.Errorf("bench: hotcold needs 0 < HotKeys < TotalKeys, got %d/%d", spec.HotKeys, spec.TotalKeys)
	}
	res := HotColdResult{
		Scenario:  spec.Scenario.Name,
		HotKeys:   spec.HotKeys,
		TotalKeys: spec.TotalKeys,
		Ops:       opts.OpsPerPoint,
	}
	perGroup, err := runHotCold(spec, opts, hotColdPerGroup)
	if err != nil {
		return HotColdResult{}, fmt.Errorf("bench: hotcold per-group: %w", err)
	}
	session, err := runHotCold(spec, opts, hotColdSession)
	if err != nil {
		return HotColdResult{}, fmt.Errorf("bench: hotcold session: %w", err)
	}
	global, err := runHotCold(spec, opts, hotColdGlobal)
	if err != nil {
		return HotColdResult{}, fmt.Errorf("bench: hotcold global: %w", err)
	}
	res.PerGroup, res.Session, res.Global = perGroup, session, global
	if global.ThroughputOps > 0 {
		res.ThroughputGain = perGroup.ThroughputOps/global.ThroughputOps - 1
		res.SessionGain = session.ThroughputOps/global.ThroughputOps - 1
	}
	opts.progress("hotcold %s: per-group %.0f, session %.0f vs global %.0f ops/s (%+.0f%% / %+.0f%%)",
		spec.Scenario.Name, perGroup.ThroughputOps, session.ThroughputOps, global.ThroughputOps,
		res.ThroughputGain*100, res.SessionGain*100)
	return res, nil
}

// hotColdMode selects the controller arrangement of one hotcold arm.
type hotColdMode int

const (
	// hotColdGlobal: one global controller at the hot tolerance (a
	// single-knob deployment protecting its most sensitive data everywhere).
	hotColdGlobal hotColdMode = iota
	// hotColdPerGroup: the multi-model controller, one tolerance per group.
	hotColdPerGroup
	// hotColdSession: per-group controller with the hot group flagged
	// session-scoped, clients running through client.Session.
	hotColdSession
)

// runHotCold measures one arm of the experiment.
func runHotCold(spec HotColdSpec, opts Options, mode hotColdMode) (HotColdRun, error) {
	s := sim.New(opts.Seed)
	cspec := spec.Scenario.Spec
	cspec.Groups = 2
	cspec.GroupFn = hotColdGroupFn(spec.HotKeys)
	c, err := cluster.BuildSim(s, cspec)
	if err != nil {
		return HotColdRun{}, err
	}
	if spec.Scenario.Prepare != nil {
		if stop := spec.Scenario.Prepare(s, c); stop != nil {
			defer stop()
		}
	}

	ccfg := core.ControllerConfig{
		Policy: core.Policy{
			Name: fmt.Sprintf("hotcold-%d%%", int(spec.HotTolerance*100+0.5)),
			// A single-knob deployment must protect its most sensitive
			// (hot) data on every read.
			ToleratedStaleRate: spec.HotTolerance,
		},
		N:                    cspec.RF,
		AvgWriteBytes:        1024,
		BandwidthBytesPerSec: cspec.Profile.BandwidthBytesPerSec,
	}
	if mode != hotColdGlobal {
		ccfg.Groups = 2
		ccfg.GroupFn = cspec.GroupFn
		ccfg.GroupTolerances = []float64{spec.HotTolerance, spec.ColdTolerance}
	}
	if mode == hotColdSession {
		// The hot group's clients only need session guarantees, so any
		// tighter-than-ONE demand on it is served by the SESSION tier.
		ccfg.SessionGroups = []bool{true, false}
	}
	ctl := core.NewController(ccfg)
	mon := core.NewMonitor(core.MonitorConfig{
		ID:             "harmony-monitor",
		Nodes:          c.NodeIDs(),
		Interval:       spec.Scenario.MonitorInterval,
		ReplicaSetSize: cspec.RF,
		OnObservation:  ctl.Observe,
	}, s, c.Bus)
	c.Net.Colocate("harmony-monitor", c.NodeIDs()[0])
	c.Bus.Register("harmony-monitor", s, mon)

	hotWl := ycsb.Workload{
		Name: "hotcold-hot", ReadProportion: 0.5, UpdateProportion: 0.5,
		RecordCount: spec.HotKeys, ValueBytes: 1024,
		RequestDistribution: ycsb.DistZipfian,
	}
	coldWl := ycsb.Workload{
		Name: "hotcold-cold", ReadProportion: 0.95, UpdateProportion: 0.05,
		RecordCount: spec.TotalKeys, ValueBytes: 1024,
		RequestDistribution: ycsb.DistUniform,
	}
	totalThreads := spec.HotThreads + spec.ColdThreads
	newRunner := func(wl ycsb.Workload, threads int, prefix string, seedOff int64) (*ycsb.Runner, error) {
		cfg := ycsb.RunConfig{
			Workload:     wl,
			Threads:      threads,
			ShadowEvery:  4,
			Seed:         opts.Seed + seedOff,
			ClientPrefix: prefix,
			// The controller is the policy in every arm: with one group its
			// per-group stream coincides with the global one.
			Policy:   ctl,
			Sessions: mode == hotColdSession,
		}
		if spec.ArrivalRate > 0 && totalThreads > 0 {
			cfg.ArrivalRate = spec.ArrivalRate * float64(threads) / float64(totalThreads)
		}
		return ycsb.NewRunner(cfg, s, c)
	}
	hotR, err := newRunner(hotWl, spec.HotThreads, "hot", 101)
	if err != nil {
		return HotColdRun{}, err
	}
	coldR, err := newRunner(coldWl, spec.ColdThreads, "cold", 202)
	if err != nil {
		return HotColdRun{}, err
	}
	// Load the full keyspace once (the cold workload spans it; the hot
	// range is its prefix).
	coldR.Load()

	mon.Start()
	hotR.Start()
	coldR.Start()
	// Warm up long enough for several monitor rounds so the controller
	// reaches steady state before measurement.
	warmup := 8 * spec.Scenario.MonitorInterval
	if warmup < 2*time.Second {
		warmup = 2 * time.Second
	}
	s.RunFor(warmup)
	hotR.ResetMeasurement()
	coldR.ResetMeasurement()
	for hotR.Completed()+coldR.Completed() < opts.OpsPerPoint {
		if !s.Step() {
			return HotColdRun{}, fmt.Errorf("simulation went idle with %d/%d measured ops",
				hotR.Completed()+coldR.Completed(), opts.OpsPerPoint)
		}
	}
	hotR.Stop()
	coldR.Stop()
	mon.Stop()
	hotR.Drain()
	coldR.Drain()

	hotRep, coldRep := hotR.Report(), coldR.Report()
	run := HotColdRun{
		Policy:        "global",
		ThroughputOps: hotRep.ThroughputOps + coldRep.ThroughputOps,
		Operations:    hotRep.Operations + coldRep.Operations,
		Errors:        hotRep.Errors + coldRep.Errors,
	}
	switch mode {
	case hotColdPerGroup:
		run.Policy = "per-group"
	case hotColdSession:
		run.Policy = "session"
		// LevelUse and the upgrade counter are cluster-wide deltas over the
		// shared measurement window; the regressions are per-runner sums.
		run.SessionReads = hotRep.LevelUse[wire.Session]
		run.SessionUpgrades = hotRep.SessionUpgrades
		run.SessionRegressions = hotRep.SessionRegressions + coldRep.SessionRegressions
	}
	// Read p99 over both pools: take the slower of the two histograms'
	// p99s weighted toward the larger pool by reporting the max (the SLO
	// view: every user population must meet its target).
	p99 := hotRep.ReadLatency.P99()
	if c := coldRep.ReadLatency.P99(); c > p99 {
		p99 = c
	}
	run.ReadP99Ms = float64(p99) / 1e6

	// Per-group staleness over the shared measurement window: both
	// runners re-baselined at the same instant, so either report carries
	// the cluster-wide group deltas; use the hot runner's.
	tols := []float64{spec.HotTolerance, spec.ColdTolerance}
	names := []string{"hot", "cold"}
	for g, gs := range hotRep.Groups {
		if g >= len(names) {
			break
		}
		hg := HotColdGroup{
			Name:          names[g],
			Tolerance:     tols[g],
			Reads:         gs.Reads,
			Writes:        gs.Writes,
			ShadowSamples: gs.ShadowSamples,
			StaleReads:    gs.StaleReads,
			StaleFraction: gs.StaleFraction(),
		}
		hg.WithinTolerance = hg.StaleFraction <= hg.Tolerance
		if mode == hotColdGlobal {
			hg.FinalLevel = ctl.Last().Level.String()
		} else {
			hg.FinalLevel = ctl.GroupLast(g).Level.String()
		}
		if mode == hotColdSession && ctl.GroupLast(g).Level == wire.Session {
			// A session-scoped group's requirement is the session contract:
			// every session reads its own writes and never regresses.
			hg.SessionServed = true
			hg.WithinTolerance = run.SessionRegressions == 0
		}
		run.Groups = append(run.Groups, hg)
	}
	return run, nil
}

// Bitcask-style persistence for the sharded engine: each shard owns an
// append-only log of CRC-framed wire.Mutation records, an in-memory
// key→{segment,offset,size} index (the keydir), hint files written when a
// segment seals so cold start avoids re-scanning sealed data, and a
// compaction pass that rewrites live records and reclaims dead ones.
//
// On-disk layout under the data dir:
//
//	LOCK                 flock'd for the process lifetime (single opener)
//	MANIFEST             format version + pinned shard count
//	shard-NNN/XXXXXXXX.data   append-only record log, ascending segment ids
//	shard-NNN/XXXXXXXX.hint   keydir snapshot for a sealed segment
//
// A record is a 4-byte big-endian CRC32 (IEEE) over the wire frame that
// follows, then the frame itself: wire.Encode(wire.Mutation{Key, Value}),
// which is self-delimiting (uvarint length prefix). Recovery replays
// segments in id order — hint files for sealed segments, a CRC-verified
// scan for the tail — and truncates the log at the first torn or corrupt
// record, exactly the half-written tail a mid-write crash leaves.
//
// Durability is group-commit: appends land in the OS page cache under the
// shard lock and a single engine-wide syncer goroutine amortizes one fsync
// per batch over every append that arrived while the previous fsync ran.
// With FsyncInterval <= 0 Apply blocks until the fsync covering its record
// completes (acked on the batch boundary); with a positive interval fsync
// runs on a timer and Apply returns as soon as the record is in the page
// cache. An fsync failure poisons the engine — the error is sticky and
// every later Apply returns it — because a failed fsync leaves the page
// cache state unknowable (retrying would ack unsynced data).
package storage

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"harmony/internal/wire"
)

const (
	manifestName = "MANIFEST"
	lockName     = "LOCK"

	// dataFormat is stamped into MANIFEST; an engine refuses a data dir
	// written by a different format.
	dataFormat = 1

	// recordHeader is the CRC32 prefix in front of every wire frame.
	recordHeader = 4

	// maxRecordBytes bounds a single record during replay so a corrupt
	// length prefix cannot drive a giant allocation.
	maxRecordBytes = 1 << 30

	hintMagic = "HNT1"
)

// PersistOptions configure the bitcask backend slotted behind the Engine.
type PersistOptions struct {
	// Path is the data directory, created if missing. Ignored when Dir is
	// set.
	Path string
	// Dir is a pre-acquired data directory (see AcquireDataDir), letting a
	// server separate "refuse to start" lock/version checks from engine
	// construction. Open takes ownership either way: Engine.Close releases
	// the lock.
	Dir *DataDir
	// FsyncInterval selects the durability mode: <= 0 means group commit
	// (Apply blocks until the fsync covering its record returns), > 0 means
	// a background fsync every interval with Apply acking from page cache.
	FsyncInterval time.Duration
	// SegmentBytes rotates a shard's active segment past this size;
	// <= 0 means 64 MiB.
	SegmentBytes int64
	// MaxSealedSegments triggers a shard compaction when more sealed
	// segments than this accumulate; <= 0 means 4.
	MaxSealedSegments int
}

// DataDir is an exclusively-locked, version-stamped storage directory.
type DataDir struct {
	path   string
	lock   *os.File
	shards int // stripe count pinned by MANIFEST; 0 until stamped
}

// AcquireDataDir creates (if needed) and exclusively locks the data
// directory at path, then validates its MANIFEST stamp. It fails when
// another process holds the directory or when the on-disk format version
// does not match this binary, so callers can refuse to start before
// touching any data. Release the returned DataDir directly only if it is
// never handed to Open; once an Engine owns it, Engine.Close releases it.
func AcquireDataDir(path string) (*DataDir, error) {
	if err := os.MkdirAll(path, 0o755); err != nil {
		return nil, fmt.Errorf("storage: data dir: %w", err)
	}
	lf, err := os.OpenFile(filepath.Join(path, lockName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: data dir lock: %w", err)
	}
	if err := syscall.Flock(int(lf.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		lf.Close()
		return nil, fmt.Errorf("storage: data dir %s locked by another process: %w", path, err)
	}
	d := &DataDir{path: path, lock: lf}
	if err := d.readManifest(); err != nil {
		d.Release()
		return nil, err
	}
	return d, nil
}

// Path returns the directory path.
func (d *DataDir) Path() string { return d.path }

// Release drops the directory lock.
func (d *DataDir) Release() error {
	if d.lock == nil {
		return nil
	}
	err := syscall.Flock(int(d.lock.Fd()), syscall.LOCK_UN)
	if cerr := d.lock.Close(); err == nil {
		err = cerr
	}
	d.lock = nil
	return err
}

func (d *DataDir) readManifest() error {
	data, err := os.ReadFile(filepath.Join(d.path, manifestName))
	if os.IsNotExist(err) {
		return nil // fresh directory; stamped on first Open
	}
	if err != nil {
		return fmt.Errorf("storage: manifest: %w", err)
	}
	format := -1
	for _, line := range strings.Split(string(data), "\n") {
		k, v, ok := strings.Cut(strings.TrimSpace(line), "=")
		if !ok {
			continue
		}
		var n int
		if _, err := fmt.Sscanf(v, "%d", &n); err != nil {
			return fmt.Errorf("storage: manifest: bad %s=%q", k, v)
		}
		switch k {
		case "format":
			format = n
		case "shards":
			d.shards = n
		}
	}
	if format != dataFormat {
		return fmt.Errorf("storage: data dir %s has format %d, this binary speaks %d (version mismatch)", d.path, format, dataFormat)
	}
	if d.shards <= 0 || d.shards > maxShards {
		return fmt.Errorf("storage: manifest: bad shard count %d", d.shards)
	}
	return nil
}

// stamp writes the MANIFEST pinning the shard count. The stripe count must
// stay stable across restarts — keys route to shards by hash, so a reopened
// engine adopts the stamped count regardless of Options.Shards.
func (d *DataDir) stamp(shards int) error {
	if d.shards != 0 {
		return nil
	}
	body := fmt.Sprintf("format=%d\nshards=%d\n", dataFormat, shards)
	tmp := filepath.Join(d.path, manifestName+".tmp")
	if err := writeFileSync(tmp, []byte(body)); err != nil {
		return fmt.Errorf("storage: manifest: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(d.path, manifestName)); err != nil {
		return fmt.Errorf("storage: manifest: %w", err)
	}
	if err := syncDir(d.path); err != nil {
		return err
	}
	d.shards = shards
	return nil
}

// writeFileSync writes data to path and fsyncs it before closing.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// syncDir fsyncs a directory so renames and unlinks within it are durable.
func syncDir(path string) error {
	df, err := os.Open(path)
	if err != nil {
		return err
	}
	err = df.Sync()
	if cerr := df.Close(); err == nil {
		err = cerr
	}
	return err
}

// diskEntry is one keydir slot: where the newest record for a key lives,
// plus the version metadata the engine needs to arbitrate an incoming write
// without touching disk (the resolver reads Data only on same-timestamp
// sibling tie-breaks, which pread the full record on demand).
type diskEntry struct {
	seg   *segment
	off   int64
	size  uint32
	ts    int64
	tomb  bool
	clock []wire.ClockEntry
}

// segment is one append-only data file.
type segment struct {
	id   uint64
	f    *os.File
	size int64
	dead int64 // bytes owned by overwritten/obsolete records
	live int64 // keydir entries pointing here
}

// diskShard is one shard's bitcask: segments plus the keydir. All access is
// under the owning shard's mutex except the dirty flag, which the syncer
// claims with an atomic swap.
type diskShard struct {
	dir         string
	segs        []*segment // ascending id; the last is the active (append) segment
	keydir      map[string]*diskEntry
	scratch     []byte // record encode/pread buffer; grows to the largest record
	dirty       atomic.Uint32
	recovered   int // keydir entries rebuilt at open
	hintLoads   int // sealed segments restored from hint files (vs scanned)
	readErrs    uint64
	segBytes    int64
	maxSealed   int
	compacted   uint64
	keydirBytes int64 // estimated resident bytes of the keydir (see keydirEntryBytes)
}

// keydirEntryBytes estimates the resident heap cost of one keydir entry: the
// map slot (key string header + bytes, entry pointer), the diskEntry
// allocation, and its vector-clock slice. The keydir is the durable engine's
// RAM ceiling, so the estimate is maintained incrementally on every insert
// and clock change rather than recomputed by walking the map at scrape time.
func keydirEntryBytes(keyLen int, clock []wire.ClockEntry) int64 {
	const entryFixed = 64 + // diskEntry: seg ptr, off, size, ts, tomb, clock header
		16 + // key string header held by the map
		16 // amortized map bucket share for the key/value slots
	return entryFixed + int64(keyLen) + clockBytes(clock)
}

// clockBytes estimates the heap bytes of a vector clock: per entry, the
// ClockEntry struct (string header + counter) plus the node-id bytes.
func clockBytes(clock []wire.ClockEntry) int64 {
	b := int64(0)
	for i := range clock {
		b += 24 + int64(len(clock[i].Node))
	}
	return b
}

func segPath(dir string, id uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%08d.data", id))
}

func hintPath(dir string, id uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%08d.hint", id))
}

// buf returns the shard scratch buffer resized to n bytes.
func (d *diskShard) buf(n int) []byte {
	if cap(d.scratch) < n {
		d.scratch = make([]byte, n, max(n, 2*cap(d.scratch)))
	}
	return d.scratch[:n]
}

// openDiskShard opens (or creates) one shard directory and rebuilds its
// keydir: hint files for sealed segments, a CRC-verified scan for segments
// without a usable hint, truncating at the first torn record.
func openDiskShard(dir string, segBytes int64, maxSealed int) (*diskShard, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: shard dir: %w", err)
	}
	d := &diskShard{
		dir:       dir,
		keydir:    make(map[string]*diskEntry),
		scratch:   make([]byte, 0, 512),
		segBytes:  segBytes,
		maxSealed: maxSealed,
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("storage: shard dir: %w", err)
	}
	var ids []uint64
	for _, de := range entries {
		name := de.Name()
		// Leftovers from an interrupted hint write or compaction swap are
		// garbage by construction (the swap is ordered so the renamed files
		// are always complete) — remove them.
		if strings.HasSuffix(name, ".tmp") || strings.HasSuffix(name, ".cmp") {
			os.Remove(filepath.Join(dir, name))
			continue
		}
		var id uint64
		if _, err := fmt.Sscanf(name, "%d.data", &id); err == nil && strings.HasSuffix(name, ".data") {
			ids = append(ids, id)
		}
	}
	slicesSortUint64(ids)
	for i, id := range ids {
		f, err := os.OpenFile(segPath(dir, id), os.O_RDWR, 0o644)
		if err != nil {
			d.closeAll()
			return nil, fmt.Errorf("storage: open segment: %w", err)
		}
		st, err := f.Stat()
		if err != nil {
			f.Close()
			d.closeAll()
			return nil, fmt.Errorf("storage: stat segment: %w", err)
		}
		seg := &segment{id: id, f: f, size: st.Size()}
		d.segs = append(d.segs, seg)
		sealed := i < len(ids)-1
		if sealed && d.loadHint(seg) {
			continue
		}
		if err := d.scanSegment(seg); err != nil {
			d.closeAll()
			return nil, err
		}
	}
	if len(d.segs) == 0 {
		if err := d.addSegment(1); err != nil {
			return nil, err
		}
	}
	d.recovered = len(d.keydir)
	return d, nil
}

func slicesSortUint64(s []uint64) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func (d *diskShard) closeAll() {
	for _, s := range d.segs {
		s.f.Close()
	}
}

func (d *diskShard) addSegment(id uint64) error {
	f, err := os.OpenFile(segPath(d.dir, id), os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("storage: create segment: %w", err)
	}
	d.segs = append(d.segs, &segment{id: id, f: f})
	return nil
}

// load records a replayed record in the keydir. Replay order equals apply
// order (appends happen under the shard lock after version arbitration), so
// a later record always supersedes an earlier one for the same key — blind
// overwrite reproduces the pre-crash arbitration outcome exactly.
func (d *diskShard) load(key string, seg *segment, off int64, size uint32, v wire.Value) {
	if e, ok := d.keydir[key]; ok {
		e.seg.dead += int64(e.size)
		e.seg.live--
		d.keydirBytes += clockBytes(v.Clock) - clockBytes(e.clock)
		e.seg, e.off, e.size = seg, off, size
		e.ts, e.tomb, e.clock = v.Timestamp, v.Tombstone, v.Clock
	} else {
		d.keydir[key] = &diskEntry{seg: seg, off: off, size: size, ts: v.Timestamp, tomb: v.Tombstone, clock: v.Clock}
		d.keydirBytes += keydirEntryBytes(len(key), v.Clock)
	}
	seg.live++
}

// scanSegment rebuilds keydir entries by reading seg front to back,
// verifying each record's CRC. The scan stops at the first torn or corrupt
// record and truncates the file there: a mid-write crash leaves exactly one
// half-written record at the tail, and records carry no resync marker, so
// nothing after the tear is trustworthy.
func (d *diskShard) scanSegment(seg *segment) error {
	r := bufio.NewReaderSize(io.NewSectionReader(seg.f, 0, seg.size), 1<<20)
	var off int64
	frame := make([]byte, 0, 512)
	torn := false
scan:
	for off < seg.size {
		var hdr [recordHeader]byte
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			torn = true
			break
		}
		want := binary.BigEndian.Uint32(hdr[:])
		// The frame is self-delimiting: uvarint length, then the body.
		frame = frame[:0]
		var bodyLen uint64
		var shift uint
		for {
			b, err := r.ReadByte()
			if err != nil {
				torn = true
				break scan
			}
			frame = append(frame, b)
			bodyLen |= uint64(b&0x7f) << shift
			if b < 0x80 {
				break
			}
			shift += 7
			if shift > 63 {
				torn = true
				break scan
			}
		}
		if bodyLen > maxRecordBytes {
			torn = true
			break
		}
		pre := len(frame)
		frame = append(frame, make([]byte, bodyLen)...)
		if _, err := io.ReadFull(r, frame[pre:]); err != nil {
			torn = true
			break
		}
		if crc32.ChecksumIEEE(frame) != want {
			torn = true
			break
		}
		m, _, err := wire.Decode(frame)
		if err != nil {
			torn = true
			break
		}
		mut, ok := m.(wire.Mutation)
		if !ok || len(mut.Key) == 0 {
			torn = true
			break
		}
		recLen := int64(recordHeader + len(frame))
		d.load(string(mut.Key), seg, off, uint32(recLen), mut.Value)
		off += recLen
	}
	if torn && off < seg.size {
		if err := seg.f.Truncate(off); err != nil {
			return fmt.Errorf("storage: truncate torn tail: %w", err)
		}
		seg.size = off
	}
	return nil
}

// hint file layout: "HNT1", then per live key
//
//	uvarint keyLen | key | uvarint off | uvarint size | uvarint ts (zigzag)
//	| flags byte (bit0 tombstone) | uvarint clockLen
//	| clockLen × (uvarint nodeLen | node | uvarint counter)
//
// then a trailing CRC32 over everything after the magic. Hints are pure
// optimization: any parse or bounds failure falls back to scanning the data
// file, so a stale or torn hint can never corrupt recovery.

// writeHint snapshots the keydir entries that live in seg (which is about
// to seal) into seg's hint file via write-temp-fsync-rename.
func (d *diskShard) writeHint(seg *segment) error {
	buf := append(make([]byte, 0, 64*1024), hintMagic...)
	for k, e := range d.keydir {
		if e.seg != seg {
			continue
		}
		buf = binary.AppendUvarint(buf, uint64(len(k)))
		buf = append(buf, k...)
		buf = binary.AppendUvarint(buf, uint64(e.off))
		buf = binary.AppendUvarint(buf, uint64(e.size))
		buf = binary.AppendVarint(buf, e.ts)
		var flags byte
		if e.tomb {
			flags |= 1
		}
		buf = append(buf, flags)
		buf = binary.AppendUvarint(buf, uint64(len(e.clock)))
		for _, ce := range e.clock {
			buf = binary.AppendUvarint(buf, uint64(len(ce.Node)))
			buf = append(buf, ce.Node...)
			buf = binary.AppendUvarint(buf, ce.Counter)
		}
	}
	buf = binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf[len(hintMagic):]))
	tmp := hintPath(d.dir, seg.id) + ".tmp"
	if err := writeFileSync(tmp, buf); err != nil {
		return fmt.Errorf("storage: write hint: %w", err)
	}
	if err := os.Rename(tmp, hintPath(d.dir, seg.id)); err != nil {
		return fmt.Errorf("storage: write hint: %w", err)
	}
	return syncDir(d.dir)
}

// loadHint rebuilds seg's keydir entries from its hint file, reporting
// whether the hint was usable. Note hint-based recovery undercounts
// seg.dead: records overwritten within seg before it sealed are invisible
// to the hint (only live-at-seal keys are recorded), which skews compaction
// gain estimates but never correctness.
func (d *diskShard) loadHint(seg *segment) bool {
	data, err := os.ReadFile(hintPath(d.dir, seg.id))
	if err != nil || len(data) < len(hintMagic)+recordHeader || string(data[:len(hintMagic)]) != hintMagic {
		return false
	}
	body := data[len(hintMagic) : len(data)-recordHeader]
	if crc32.ChecksumIEEE(body) != binary.BigEndian.Uint32(data[len(data)-recordHeader:]) {
		return false
	}
	type staged struct {
		key  string
		off  int64
		size uint32
		v    wire.Value
	}
	var entries []staged
	for len(body) > 0 {
		keyLen, n := binary.Uvarint(body)
		if n <= 0 || uint64(len(body)-n) < keyLen {
			return false
		}
		body = body[n:]
		key := string(body[:keyLen])
		body = body[keyLen:]
		off, n := binary.Uvarint(body)
		if n <= 0 {
			return false
		}
		body = body[n:]
		size, n := binary.Uvarint(body)
		if n <= 0 {
			return false
		}
		body = body[n:]
		ts, n := binary.Varint(body)
		if n <= 0 || len(body) == n {
			return false
		}
		body = body[n:]
		flags := body[0]
		body = body[1:]
		clockLen, n := binary.Uvarint(body)
		if n <= 0 || clockLen > 1<<16 {
			return false
		}
		body = body[n:]
		var clock []wire.ClockEntry
		if clockLen > 0 {
			clock = make([]wire.ClockEntry, 0, clockLen)
			for range clockLen {
				nodeLen, n := binary.Uvarint(body)
				if n <= 0 || uint64(len(body)-n) < nodeLen {
					return false
				}
				body = body[n:]
				node := string(body[:nodeLen])
				body = body[nodeLen:]
				counter, n := binary.Uvarint(body)
				if n <= 0 {
					return false
				}
				body = body[n:]
				clock = append(clock, wire.ClockEntry{Node: node, Counter: counter})
			}
		}
		if int64(off)+int64(size) > seg.size || size < recordHeader {
			return false
		}
		entries = append(entries, staged{key, int64(off), uint32(size), wire.Value{Timestamp: ts, Tombstone: flags&1 != 0, Clock: clock}})
	}
	// Apply only after the whole hint parsed — a partial apply followed by
	// a data scan would double-count dead bytes.
	for _, e := range entries {
		d.load(e.key, seg, e.off, e.size, e.v)
	}
	d.hintLoads++
	return true
}

// append writes one accepted record to the active segment and updates the
// keydir. ent is the key's existing entry, or nil for a first write. Caller
// holds the shard lock. The encode scratch is reused across calls, so a
// steady-state overwrite allocates nothing.
func (d *diskShard) append(key []byte, v wire.Value, ent *diskEntry) error {
	rec := d.buf(recordHeader)
	rec, err := wire.Encode(rec, wire.Mutation{Key: key, Value: v})
	if err != nil {
		return fmt.Errorf("storage: encode record: %w", err)
	}
	d.scratch = rec
	binary.BigEndian.PutUint32(rec[:recordHeader], crc32.ChecksumIEEE(rec[recordHeader:]))
	active := d.segs[len(d.segs)-1]
	if _, err := active.f.WriteAt(rec, active.size); err != nil {
		return fmt.Errorf("storage: append: %w", err)
	}
	off := active.size
	active.size += int64(len(rec))
	if ent != nil {
		ent.seg.dead += int64(ent.size)
		ent.seg.live--
		d.keydirBytes += clockBytes(v.Clock) - clockBytes(ent.clock)
		ent.seg, ent.off, ent.size = active, off, uint32(len(rec))
		ent.ts, ent.tomb, ent.clock = v.Timestamp, v.Tombstone, v.Clock
	} else {
		d.keydir[string(key)] = &diskEntry{seg: active, off: off, size: uint32(len(rec)), ts: v.Timestamp, tomb: v.Tombstone, clock: v.Clock}
		d.keydirBytes += keydirEntryBytes(len(key), v.Clock)
	}
	active.live++
	d.dirty.Store(1)
	if active.size >= d.segBytes {
		return d.rotate()
	}
	return nil
}

// rotate seals the active segment — fsync, hint file — and opens the next
// one, compacting when sealed segments pile past the threshold. Caller
// holds the shard lock.
func (d *diskShard) rotate() error {
	active := d.segs[len(d.segs)-1]
	if err := active.f.Sync(); err != nil {
		return fmt.Errorf("storage: seal: %w", err)
	}
	if err := d.writeHint(active); err != nil {
		return err
	}
	if err := d.addSegment(active.id + 1); err != nil {
		return err
	}
	if len(d.segs)-1 > d.maxSealed {
		return d.compact()
	}
	return nil
}

// readRecord preads the raw record for e into the shard scratch and
// verifies its CRC.
func (d *diskShard) readRecord(e *diskEntry) ([]byte, error) {
	rec := d.buf(int(e.size))
	if _, err := e.seg.f.ReadAt(rec, e.off); err != nil {
		d.readErrs++
		return nil, fmt.Errorf("storage: read record: %w", err)
	}
	if crc32.ChecksumIEEE(rec[recordHeader:]) != binary.BigEndian.Uint32(rec[:recordHeader]) {
		d.readErrs++
		return nil, fmt.Errorf("storage: read record: CRC mismatch in %s @%d", segPath(d.dir, e.seg.id), e.off)
	}
	return rec, nil
}

// readValue preads and decodes the full value for e. The decode copies, so
// the returned Value owns its Data.
func (d *diskShard) readValue(e *diskEntry) (wire.Value, error) {
	rec, err := d.readRecord(e)
	if err != nil {
		return wire.Value{}, err
	}
	m, _, err := wire.Decode(rec[recordHeader:])
	if err != nil {
		d.readErrs++
		return wire.Value{}, fmt.Errorf("storage: decode record: %w", err)
	}
	mut, ok := m.(wire.Mutation)
	if !ok {
		d.readErrs++
		return wire.Value{}, fmt.Errorf("storage: decode record: unexpected %T", m)
	}
	return mut.Value, nil
}

// compact rewrites every live record held by sealed segments into a single
// merged segment and deletes the rest. The swap is crash-ordered: the merge
// output (and its hint) are written and fsynced under .cmp names, the
// target id's stale hint is removed, the data file renames into place, then
// the hint, then the superseded segments unlink. Every crash window leaves
// a state recovery handles — at worst stale duplicate records that in-order
// replay overrides. Caller holds the shard lock.
func (d *diskShard) compact() error {
	sealed := len(d.segs) - 1
	if sealed <= 1 {
		return nil
	}
	merged := d.segs[:sealed]
	target := merged[sealed-1] // highest sealed id becomes the merge output
	inMerge := make(map[*segment]bool, sealed)
	for _, s := range merged {
		inMerge[s] = true
	}
	tmpData := segPath(d.dir, target.id) + ".cmp"
	out, err := os.OpenFile(tmpData, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("storage: compact: %w", err)
	}
	bw := bufio.NewWriterSize(out, 1<<20)
	type staged struct {
		e   *diskEntry
		off int64
	}
	var plan []staged
	var outOff int64
	for _, e := range d.keydir {
		if !inMerge[e.seg] {
			continue
		}
		rec, err := d.readRecord(e)
		if err != nil {
			out.Close()
			os.Remove(tmpData)
			return fmt.Errorf("storage: compact: %w", err)
		}
		if _, err := bw.Write(rec); err != nil {
			out.Close()
			os.Remove(tmpData)
			return fmt.Errorf("storage: compact: %w", err)
		}
		plan = append(plan, staged{e, outOff})
		outOff += int64(len(rec))
	}
	if err := bw.Flush(); err == nil {
		err = out.Sync()
	}
	if err != nil {
		out.Close()
		os.Remove(tmpData)
		return fmt.Errorf("storage: compact: %w", err)
	}
	if err := out.Close(); err != nil {
		os.Remove(tmpData)
		return fmt.Errorf("storage: compact: %w", err)
	}
	newSeg := &segment{id: target.id, size: outOff, live: int64(len(plan))}
	// Hint for the merged segment, staged under a .cmp name for the swap.
	tmpHint := hintPath(d.dir, target.id) + ".cmp"
	{
		hbuf := append(make([]byte, 0, 64*1024), hintMagic...)
		// The keydir still points at the old segments; re-walk it pairing
		// keys with the staged (post-merge) offsets.
		stagedOff := make(map[*diskEntry]int64, len(plan))
		for _, p := range plan {
			stagedOff[p.e] = p.off
		}
		for k, e := range d.keydir {
			off, ok := stagedOff[e]
			if !ok {
				continue
			}
			hbuf = binary.AppendUvarint(hbuf, uint64(len(k)))
			hbuf = append(hbuf, k...)
			hbuf = binary.AppendUvarint(hbuf, uint64(off))
			hbuf = binary.AppendUvarint(hbuf, uint64(e.size))
			hbuf = binary.AppendVarint(hbuf, e.ts)
			var flags byte
			if e.tomb {
				flags |= 1
			}
			hbuf = append(hbuf, flags)
			hbuf = binary.AppendUvarint(hbuf, uint64(len(e.clock)))
			for _, ce := range e.clock {
				hbuf = binary.AppendUvarint(hbuf, uint64(len(ce.Node)))
				hbuf = append(hbuf, ce.Node...)
				hbuf = binary.AppendUvarint(hbuf, ce.Counter)
			}
		}
		hbuf = binary.BigEndian.AppendUint32(hbuf, crc32.ChecksumIEEE(hbuf[len(hintMagic):]))
		if err := writeFileSync(tmpHint, hbuf); err != nil {
			os.Remove(tmpData)
			return fmt.Errorf("storage: compact hint: %w", err)
		}
	}
	// Swap, in crash-safe order (see the function comment).
	os.Remove(hintPath(d.dir, target.id))
	if err := os.Rename(tmpData, segPath(d.dir, target.id)); err != nil {
		os.Remove(tmpData)
		os.Remove(tmpHint)
		return fmt.Errorf("storage: compact swap: %w", err)
	}
	if err := os.Rename(tmpHint, hintPath(d.dir, target.id)); err != nil {
		return fmt.Errorf("storage: compact swap: %w", err)
	}
	if err := syncDir(d.dir); err != nil {
		return err
	}
	f, err := os.OpenFile(segPath(d.dir, target.id), os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("storage: compact reopen: %w", err)
	}
	newSeg.f = f
	for _, s := range merged {
		s.f.Close()
		if s != target {
			os.Remove(segPath(d.dir, s.id))
			os.Remove(hintPath(d.dir, s.id))
		}
	}
	for _, p := range plan {
		p.e.seg, p.e.off = newSeg, p.off
	}
	d.segs = append([]*segment{newSeg}, d.segs[sealed:]...)
	d.compacted++
	return nil
}

// persistState is the engine-wide durability coordinator: the fsync batcher
// plus the data-dir lifetime.
type persistState struct {
	dir         *DataDir
	interval    time.Duration
	groupCommit bool
	failed      atomic.Bool // fast-path flag for the sticky error

	mu       sync.Mutex
	cond     *sync.Cond
	seq      uint64 // ticket issued per group-commit append
	synced   uint64 // highest ticket covered by a completed fsync round
	fsyncs   uint64 // file fsync calls performed by batch rounds
	fsyncOps uint64 // tickets (appends) covered by completed rounds
	err      error  // sticky first fsync failure
	closed   bool

	stop     chan struct{}
	done     chan struct{}
	closeAll sync.Once
	closeErr error
}

func newPersistState(dir *DataDir, interval time.Duration) *persistState {
	p := &persistState{
		dir:         dir,
		interval:    interval,
		groupCommit: interval <= 0,
		stop:        make(chan struct{}),
		done:        make(chan struct{}),
	}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// mark issues a group-commit ticket for an append and wakes the syncer.
func (p *persistState) mark() uint64 {
	p.mu.Lock()
	p.seq++
	t := p.seq
	p.cond.Broadcast()
	p.mu.Unlock()
	return t
}

// wait blocks until the fsync round covering ticket t completes (group
// commit), or just surfaces the sticky error (ticket 0, periodic mode).
func (p *persistState) wait(t uint64) error {
	if t == 0 {
		if !p.failed.Load() {
			return nil
		}
		p.mu.Lock()
		err := p.err
		p.mu.Unlock()
		return err
	}
	p.mu.Lock()
	for p.synced < t && p.err == nil && !p.closed {
		p.cond.Wait()
	}
	err := p.err
	if err == nil && p.synced < t {
		err = errors.New("storage: engine closed")
	}
	p.mu.Unlock()
	return err
}

// syncRound fsyncs every dirty shard's active segment and advances the
// group-commit watermark past every ticket issued before the round began.
//
// Correctness of the watermark: a ticket is issued only after its record's
// WriteAt returned and its shard's dirty flag was set, so every ticket
// ≤ target has its record in the page cache of either the shard's current
// active segment (covered by this round's fsync) or an already-sealed one
// (covered by the fsync rotate performed when sealing it). The fsync runs
// outside the shard lock — appends continue while the batch flushes, which
// is where group commit's amortization comes from.
func (p *persistState) syncRound(e *Engine) error {
	p.mu.Lock()
	target := p.seq
	p.mu.Unlock()
	var firstErr error
	var roundSyncs uint64
	for i := range e.shards {
		s := &e.shards[i]
		d := s.disk
		if d == nil || !d.dirty.CompareAndSwap(1, 0) {
			continue
		}
		s.mu.Lock()
		f := d.segs[len(d.segs)-1].f
		s.mu.Unlock()
		roundSyncs++
		if err := f.Sync(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	p.mu.Lock()
	if firstErr != nil && p.err == nil {
		p.err = fmt.Errorf("storage: fsync: %w", firstErr)
		p.failed.Store(true)
	}
	p.fsyncs += roundSyncs
	if target > p.synced {
		p.fsyncOps += target - p.synced
		p.synced = target
	}
	err := p.err
	p.cond.Broadcast()
	p.mu.Unlock()
	return err
}

// runGroup is the group-commit syncer: it sleeps until tickets are pending,
// then fsyncs one batch — every append that arrived while the previous
// batch flushed shares the next fsync.
func (p *persistState) runGroup(e *Engine) {
	defer close(p.done)
	for {
		p.mu.Lock()
		for p.seq == p.synced && !p.closed {
			p.cond.Wait()
		}
		closed := p.closed
		p.mu.Unlock()
		if closed {
			return
		}
		p.syncRound(e)
	}
}

// runPeriodic fsyncs dirty shards every interval.
func (p *persistState) runPeriodic(e *Engine) {
	defer close(p.done)
	tick := time.NewTicker(p.interval)
	defer tick.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-tick.C:
			p.syncRound(e)
		}
	}
}

// close shuts the syncer down after a final fsync round, closes every
// segment file, and releases the data dir.
func (p *persistState) close(e *Engine) error {
	p.closeAll.Do(func() {
		p.syncRound(e)
		p.mu.Lock()
		p.closed = true
		p.cond.Broadcast()
		p.mu.Unlock()
		close(p.stop)
		<-p.done
		var firstErr error
		for i := range e.shards {
			s := &e.shards[i]
			d := s.disk
			if d == nil {
				continue
			}
			s.mu.Lock()
			for _, sg := range d.segs {
				if err := sg.f.Close(); err != nil && firstErr == nil {
					firstErr = err
				}
			}
			s.mu.Unlock()
		}
		if err := p.dir.Release(); err != nil && firstErr == nil {
			firstErr = err
		}
		p.closeErr = firstErr
	})
	p.mu.Lock()
	err := p.err
	p.mu.Unlock()
	if err == nil {
		err = p.closeErr
	}
	return err
}

// Package storage implements a node-local storage engine with the write
// path the paper describes for Cassandra (§II-B): a mutation is appended to
// a commit log and applied to an in-memory table before it is acknowledged;
// memtables are periodically frozen and flushed to immutable tables that
// reads merge with last-writer-wins timestamp reconciliation.
//
// The engine is deliberately log-structured like Cassandra's, but flushed
// tables live in memory by default (the simulator runs thousands of node
// instances); a file-backed commit log is available for the real TCP
// deployment.
package storage

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"harmony/internal/wire"
)

// Engine is a single replica's storage. It is safe for concurrent use.
type Engine struct {
	mu        sync.RWMutex
	memtable  map[string]wire.Value
	memBytes  int
	flushAt   int // freeze memtable when it exceeds this many bytes
	maxTables int // compact when flushed tables exceed this count
	tables    []*table
	log       CommitLog
	onApply   func(key []byte, v wire.Value)

	// statistics; reads is atomic because it is bumped under the read
	// lock, where concurrent Gets would otherwise race on the counter.
	writes    uint64
	reads     atomic.Uint64
	flushes   uint64
	compacted uint64
}

// table is an immutable flushed memtable with sorted keys for scans.
type table struct {
	keys []string
	vals map[string]wire.Value
}

// Options configure an Engine.
type Options struct {
	// FlushThresholdBytes freezes the memtable after this much data;
	// <=0 means 4 MiB.
	FlushThresholdBytes int
	// MaxFlushedTables triggers a compaction when exceeded; <=0 means 4.
	MaxFlushedTables int
	// CommitLog, when non-nil, receives every mutation before it is applied
	// (durability hook). Nil disables logging.
	CommitLog CommitLog
	// OnApply, when non-nil, observes every mutation that actually changed
	// the engine (last-writer-wins accepted it), after the engine's lock is
	// released. The anti-entropy subsystem hangs its Merkle-tree cache
	// invalidation here. The callback runs on the applying goroutine and
	// must not call back into the engine's write path.
	OnApply func(key []byte, v wire.Value)
}

// CommitLog receives mutations before they are applied.
type CommitLog interface {
	Append(key []byte, v wire.Value) error
}

// NewEngine creates an empty engine.
func NewEngine(opts Options) *Engine {
	if opts.FlushThresholdBytes <= 0 {
		opts.FlushThresholdBytes = 4 << 20
	}
	if opts.MaxFlushedTables <= 0 {
		opts.MaxFlushedTables = 4
	}
	return &Engine{
		memtable:  make(map[string]wire.Value),
		flushAt:   opts.FlushThresholdBytes,
		maxTables: opts.MaxFlushedTables,
		log:       opts.CommitLog,
		onApply:   opts.OnApply,
	}
}

// Apply writes v under key if v is newer than what the engine already holds
// for that key (last-writer-wins). It reports whether the value was applied.
func (e *Engine) Apply(key []byte, v wire.Value) (bool, error) {
	if len(key) == 0 {
		return false, fmt.Errorf("storage: empty key")
	}
	if e.log != nil {
		if err := e.log.Append(key, v); err != nil {
			return false, fmt.Errorf("storage: commit log: %w", err)
		}
	}
	k := string(key)
	e.mu.Lock()
	e.writes++
	if cur, ok := e.lookupLocked(k); ok && !v.Fresh(cur) {
		e.mu.Unlock()
		return false, nil
	}
	old, existed := e.memtable[k]
	e.memtable[k] = v
	e.memBytes += len(v.Data) + len(k)
	if existed {
		e.memBytes -= len(old.Data) + len(k)
	}
	if e.memBytes >= e.flushAt {
		e.flushLocked()
	}
	e.mu.Unlock()
	if e.onApply != nil {
		e.onApply(key, v)
	}
	return true, nil
}

// Get returns the newest value for key across the memtable and all flushed
// tables. ok is false when the key was never written (a tombstoned key
// returns ok=true with Value.Tombstone set, so replication can propagate
// deletes).
func (e *Engine) Get(key []byte) (wire.Value, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	e.reads.Add(1)
	return e.lookupLocked(string(key))
}

func (e *Engine) lookupLocked(k string) (wire.Value, bool) {
	best, ok := e.memtable[k]
	for _, t := range e.tables {
		if v, hit := t.vals[k]; hit && (!ok || v.Fresh(best)) {
			best, ok = v, true
		}
	}
	return best, ok
}

// Flush freezes the current memtable into an immutable table.
func (e *Engine) Flush() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.flushLocked()
}

func (e *Engine) flushLocked() {
	if len(e.memtable) == 0 {
		return
	}
	t := &table{vals: e.memtable, keys: make([]string, 0, len(e.memtable))}
	for k := range t.vals {
		t.keys = append(t.keys, k)
	}
	sort.Strings(t.keys)
	e.tables = append(e.tables, t)
	e.memtable = make(map[string]wire.Value)
	e.memBytes = 0
	e.flushes++
	if len(e.tables) > e.maxTables {
		e.compactLocked()
	}
}

// Compact merges all flushed tables into one, dropping shadowed versions and
// tombstones that are no longer needed to suppress older data.
func (e *Engine) Compact() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.compactLocked()
}

func (e *Engine) compactLocked() {
	if len(e.tables) <= 1 {
		return
	}
	merged := make(map[string]wire.Value)
	for _, t := range e.tables {
		for k, v := range t.vals {
			if cur, ok := merged[k]; !ok || v.Fresh(cur) {
				merged[k] = v
			}
		}
	}
	// Tombstones are retained across compactions: peer replicas may still
	// need them for read repair, and the simulator's working sets are small
	// enough that GC-grace bookkeeping would add machinery without adding
	// fidelity to the experiments.
	t := &table{vals: merged, keys: make([]string, 0, len(merged))}
	for k := range merged {
		t.keys = append(t.keys, k)
	}
	sort.Strings(t.keys)
	e.tables = []*table{t}
	e.compacted++
}

// Scan invokes fn over every live key/value in [start, end) in key order
// (nil bounds mean unbounded); fn returning false stops the scan.
// Tombstoned entries are skipped.
//
// The flushed tables already keep their keys sorted, so the scan is a
// single k-way merge over those slices plus one sorted snapshot of the
// memtable keys — no intermediate key-universe map, no re-filter, no
// global re-sort. Bounds position each source once via binary search, and
// the merge stops at the first key past end.
func (e *Engine) Scan(start, end []byte, fn func(key []byte, v wire.Value) bool) {
	e.scan(start, end, false, fn)
}

// ScanVersions is Scan including tombstoned entries: anti-entropy repair
// must exchange deletes the same way it exchanges writes, or a tombstone on
// one replica against live data on another would diverge forever.
func (e *Engine) ScanVersions(start, end []byte, fn func(key []byte, v wire.Value) bool) {
	e.scan(start, end, true, fn)
}

func (e *Engine) scan(start, end []byte, tombstones bool, fn func(key []byte, v wire.Value) bool) {
	e.mu.RLock()
	// Sources: each flushed table's sorted keys, plus the memtable keys
	// sorted once (the only unsorted source).
	srcs := make([][]string, 0, len(e.tables)+1)
	if len(e.memtable) > 0 {
		mk := make([]string, 0, len(e.memtable))
		for k := range e.memtable {
			mk = append(mk, k)
		}
		sort.Strings(mk)
		srcs = append(srcs, mk)
	}
	for _, t := range e.tables {
		srcs = append(srcs, t.keys)
	}
	idx := make([]int, len(srcs))
	if start != nil {
		for i, s := range srcs {
			idx[i] = sort.SearchStrings(s, string(start))
		}
	}
	endKey := string(end)
	type kv struct {
		k string
		v wire.Value
	}
	var out []kv
	for {
		// Pick the smallest current key across sources (the source count
		// is tiny — maxTables+1 — so a linear min beats a heap).
		best := -1
		var bestK string
		for i, s := range srcs {
			if idx[i] < len(s) && (best == -1 || s[idx[i]] < bestK) {
				best, bestK = i, s[idx[i]]
			}
		}
		if best == -1 {
			break
		}
		if end != nil && bestK >= endKey {
			break // merge order: every remaining key is out of bounds too
		}
		// Advance every source past this key (cross-source dedup).
		for i, s := range srcs {
			for idx[i] < len(s) && s[idx[i]] == bestK {
				idx[i]++
			}
		}
		if v, ok := e.lookupLocked(bestK); ok && (tombstones || !v.Tombstone) {
			out = append(out, kv{bestK, v})
		}
	}
	e.mu.RUnlock()
	for _, item := range out {
		if !fn([]byte(item.k), item.v) {
			return
		}
	}
}

// Stats is a snapshot of engine counters.
type Stats struct {
	Writes        uint64
	Reads         uint64
	Flushes       uint64
	Compactions   uint64
	MemtableKeys  int
	MemtableBytes int
	FlushedTables int
	LiveKeys      int
}

// Stats returns a consistent snapshot of the engine's counters.
func (e *Engine) Stats() Stats {
	e.mu.RLock()
	defer e.mu.RUnlock()
	live := make(map[string]struct{}, len(e.memtable))
	for k := range e.memtable {
		live[k] = struct{}{}
	}
	for _, t := range e.tables {
		for _, k := range t.keys {
			live[k] = struct{}{}
		}
	}
	return Stats{
		Writes:        e.writes,
		Reads:         e.reads.Load(),
		Flushes:       e.flushes,
		Compactions:   e.compacted,
		MemtableKeys:  len(e.memtable),
		MemtableBytes: e.memBytes,
		FlushedTables: len(e.tables),
		LiveKeys:      len(live),
	}
}

package cluster

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"harmony/internal/dist"
	"harmony/internal/faults"
	"harmony/internal/repair"
	"harmony/internal/ring"
	"harmony/internal/sim"
	"harmony/internal/simnet"
	"harmony/internal/storage"
	"harmony/internal/transport"
	"harmony/internal/wire"
)

// Spec describes a whole cluster to assemble; it is the shared entry point
// for tests, benchmarks and examples.
type Spec struct {
	// DCs is the number of datacenters; RacksPerDC and NodesPerRack shape
	// each one identically.
	DCs, RacksPerDC, NodesPerRack int
	// RF is the replication factor (the paper uses 5).
	RF int
	// VNodes per physical node; zero means 16.
	VNodes int
	// NetworkTopologyAware selects NetworkTopologyStrategy (the paper's
	// placement) instead of SimpleStrategy.
	NetworkTopologyAware bool
	// Profile is the network latency profile.
	Profile simnet.Profile
	// ReadRepairChance is the probability a read fans out to all replicas
	// for background repair (Cassandra's read_repair_chance; the paper's
	// deployment era defaulted to sampled repair).
	ReadRepairChance float64
	// HintedHandoff toggles hint queues for down replicas.
	HintedHandoff bool
	// HintQueueLimit caps each node's total queued hints; overflow drops
	// the mutation (Metrics.HintsDropped). Zero means unlimited.
	HintQueueLimit int
	// Repair enables background anti-entropy on every node: Merkle-tree
	// sessions between replica peers, run periodically and on recovery
	// triggers (Cluster.SetUp). See internal/repair.
	Repair repair.Options
	// ReadTimeout/WriteTimeout propagate to every node.
	ReadTimeout, WriteTimeout time.Duration
	// Engine configures node-local storage.
	Engine storage.Options
	// Service models each node's finite processing capacity; the zero
	// value selects DefaultServiceProfile. Set Disabled to bypass queueing
	// (pure-network experiments).
	Service ServiceProfile
	// Groups and GroupFn configure per-key-group telemetry on every node:
	// each coordinated read/write is tagged into a group and tallied
	// separately, so the monitoring pipeline can adapt consistency per
	// group instead of cluster-wide. Zero Groups means one implicit group
	// (the classic global pipeline). This is only the epoch-0 assignment:
	// the regrouping subsystem replaces it at runtime via wire.GroupUpdate.
	Groups  int
	GroupFn func(key []byte) int
	// KeySampleLimit and KeyStatsDecay configure per-key access sampling
	// on every node for the online regrouping loop (see Config); zero
	// KeySampleLimit disables sampling.
	KeySampleLimit int
	KeyStatsDecay  float64
	// MaxInFlight bounds each node's in-flight coordinator ops; at the
	// bound further client requests are shed with wire.ErrOverloaded. Zero
	// means unlimited (see Config.MaxInFlight).
	MaxInFlight int
}

// ServiceProfile gives per-message-class service times for the node queue.
// Actual service times are the class mean multiplied by a lognormal jitter
// with unit mean and the configured 99th percentile, modeling the variance
// real storage nodes exhibit (page-cache misses, GC pauses, compaction
// interference). The jitter is what separates "wait for the first replica"
// from "wait for the slowest of five" in the latency distributions.
type ServiceProfile struct {
	CoordRead    time.Duration // coordinating a client read
	CoordWrite   time.Duration // coordinating a client write
	ReplicaRead  time.Duration // serving a replica-local read
	ReplicaWrite time.Duration // applying a mutation or repair
	Response     time.Duration // handling replica responses/acks
	Other        time.Duration // stats, ping, gossip
	// JitterP99 is the 99th percentile of the unit-mean multiplier; zero
	// means 3.0, values <= 1 disable jitter.
	JitterP99 float64
	// Jitter, when non-nil, replaces the lognormal multiplier entirely
	// with an arbitrary dist sampler (heavy-tailed GC pauses, bimodal
	// compaction interference); JitterP99 is then ignored. The sampler is
	// a multiplicative factor and should have mean ~1 so the class means
	// stay calibrated.
	Jitter   dist.Sampler
	Disabled bool
}

// DefaultServiceProfile bounds the 20-node cluster at roughly 30k
// Workload-A ops/s at consistency level ONE, so closed-loop saturation
// lands in the same client-thread regime as the paper's testbeds (peak
// near 90 threads, Fig. 5(c)).
func DefaultServiceProfile() ServiceProfile {
	return ServiceProfile{
		CoordRead:    50 * time.Microsecond,
		CoordWrite:   50 * time.Microsecond,
		ReplicaRead:  160 * time.Microsecond,
		ReplicaWrite: 200 * time.Microsecond,
		Response:     8 * time.Microsecond,
		Other:        5 * time.Microsecond,
		JitterP99:    3.0,
	}
}

// Scale returns the profile with every service time multiplied by f;
// virtualized testbeds (the EC2 scenario) use f > 1.
func (p ServiceProfile) Scale(f float64) ServiceProfile {
	mul := func(d time.Duration) time.Duration { return time.Duration(float64(d) * f) }
	return ServiceProfile{
		CoordRead:    mul(p.CoordRead),
		CoordWrite:   mul(p.CoordWrite),
		ReplicaRead:  mul(p.ReplicaRead),
		ReplicaWrite: mul(p.ReplicaWrite),
		Response:     mul(p.Response),
		Other:        mul(p.Other),
		JitterP99:    p.JitterP99,
		Jitter:       p.Jitter,
		Disabled:     p.Disabled,
	}
}

// Timer converts the profile into a transport.ServiceTimer drawing jitter
// from rng (which must belong to the node's runtime).
func (p ServiceProfile) Timer(rng *rand.Rand) transport.ServiceTimer {
	jitter := p.Jitter
	if jitter == nil {
		jp99 := p.JitterP99
		if jp99 == 0 {
			jp99 = 3.0
		}
		jitter = dist.Constant{V: 1}
		if jp99 > 1 {
			jitter = dist.LognormalFromMeanP99(1.0, jp99)
		}
	}
	return func(m wire.Message) time.Duration {
		var base time.Duration
		switch m.(type) {
		case wire.ReadRequest:
			base = p.CoordRead
		case wire.WriteRequest:
			base = p.CoordWrite
		case wire.ReplicaRead:
			base = p.ReplicaRead
		case wire.Mutation, wire.Repair:
			base = p.ReplicaWrite
		case wire.ReplicaReadResp, wire.MutationAck:
			return p.Response // cheap fixed-cost handling
		default:
			return p.Other
		}
		return time.Duration(float64(base) * jitter.Sample(rng))
	}
}

func (p ServiceProfile) isZero() bool {
	return p == ServiceProfile{}
}

// DefaultSpec mirrors the paper's Grid'5000 configuration scaled to
// simulation: one DC, four racks of five nodes (20 nodes), RF=5,
// topology-aware placement, read repair on.
func DefaultSpec() Spec {
	return Spec{
		DCs:                  1,
		RacksPerDC:           4,
		NodesPerRack:         5,
		RF:                   5,
		VNodes:               16,
		NetworkTopologyAware: true,
		Profile:              simnet.Grid5000Profile(),
		ReadRepairChance:     0.1,
	}
}

// Cluster bundles a running set of nodes with the fabric connecting them.
type Cluster struct {
	Topo     *ring.Topology
	Ring     *ring.Ring
	Strategy ring.Strategy
	Net      *simnet.Net
	Bus      *transport.Bus
	Nodes    []*Node
	byID     map[ring.NodeID]*Node

	// Faults is the cluster's fault-injection plane: every node's outbound
	// sends pass through it on their way to the bus, so experiments can
	// impair or partition node-to-node traffic with the same Updates the
	// live admin endpoint accepts. Unarmed it is a single atomic load per
	// send.
	Faults *faults.Injector
	// faultsRT is the injector's delay runtime; stopped with the cluster
	// when it is a dedicated mailbox runtime (BuildReal).
	faultsRT sim.Runtime

	// Injected liveness (SetDown/SetUp). Every node's failure detector
	// consults it, so coordinators hint writes for down nodes and skip them
	// on reads — the same view a converged gossip detector would give.
	downMu sync.Mutex
	down   map[ring.NodeID]bool
	// side, when non-empty, is an injected partition view: nodes on
	// different sides consider each other down (see SetPartitionView).
	side map[ring.NodeID]int
}

// Alive reports whether a node is currently injected as up, ignoring any
// partition view (use AliveFor for the per-observer answer).
func (c *Cluster) Alive(id ring.NodeID) bool {
	c.downMu.Lock()
	defer c.downMu.Unlock()
	return !c.down[id]
}

// AliveFor reports whether peer is up from observer's point of view: down
// nodes are down for everyone, and under an installed partition view nodes
// on the far side of the cut are down too. It is the Config.Alive the
// builder wires into every node (each closing over its own identity).
func (c *Cluster) AliveFor(observer, peer ring.NodeID) bool {
	c.downMu.Lock()
	defer c.downMu.Unlock()
	if c.down[peer] {
		return false
	}
	if len(c.side) == 0 {
		return true
	}
	so, sp := c.side[observer], c.side[peer]
	return so == 0 || sp == 0 || so == sp
}

// AliveCountFor reports how many cluster members (including itself, when
// up) the observer currently believes are alive under the injected
// liveness and partition view — the sim stand-in for a gossip detector's
// alive count, wired into each node's Config.AliveCount.
func (c *Cluster) AliveCountFor(observer ring.NodeID) int {
	n := 0
	for _, id := range c.Topo.Nodes() {
		if c.AliveFor(observer, id) {
			n++
		}
	}
	return n
}

// SetPartitionView installs a converged failure-detector view of a network
// split: every node in a convicts every node in b as DOWN and vice versa —
// the state a gossip detector reaches once a real partition persists past
// its conviction window. It changes only what nodes *believe*; pair it with
// a faults.Injector partition, which changes what the network *delivers*.
// Nodes in neither slice keep full mutual visibility.
func (c *Cluster) SetPartitionView(a, b []ring.NodeID) {
	c.downMu.Lock()
	defer c.downMu.Unlock()
	c.side = make(map[ring.NodeID]int, len(a)+len(b))
	for _, id := range a {
		c.side[id] = 1
	}
	for _, id := range b {
		c.side[id] = 2
	}
}

// ClearPartitionView restores full mutual liveness (detector re-convergence
// after a heal) and fires the recovery trigger across the former cut: every
// node schedules a priority anti-entropy session with each peer that was on
// the other side, mirroring what SetUp does for a single recovered node (and
// what gossip.Config.OnRecover does live). Queued hints for far-side
// replicas start replaying as soon as the view clears.
func (c *Cluster) ClearPartitionView() {
	c.downMu.Lock()
	side := c.side
	c.side = nil
	c.downMu.Unlock()
	for _, n := range c.Nodes {
		s, ok := side[n.ID()]
		if !ok || n.RepairManager() == nil {
			continue
		}
		for peer, sp := range side {
			if sp != 0 && sp != s {
				n.RepairManager().PeerRecovered(peer)
			}
		}
	}
}

// SetDown injects a node failure: the network isolates the node (in-flight
// and future messages to and from it drop) and every peer's failure
// detector convicts it immediately. The node's engine keeps its data — this
// models a crashed or partitioned process, and on SetUp the replica returns
// holding whatever it had, arbitrarily stale.
func (c *Cluster) SetDown(id ring.NodeID) {
	c.downMu.Lock()
	c.down[id] = true
	c.downMu.Unlock()
	c.Net.Isolate(id, c.NodeIDs())
}

// SetUp heals an injected failure and fires the recovery trigger: every
// peer's anti-entropy manager schedules a priority repair session with the
// recovered node (the simulated stand-in for the gossip down→up callback,
// gossip.Config.OnRecover, which serves the same role in live deployments).
func (c *Cluster) SetUp(id ring.NodeID) {
	c.downMu.Lock()
	delete(c.down, id)
	c.downMu.Unlock()
	c.Net.Rejoin(id, c.NodeIDs())
	for _, n := range c.Nodes {
		if n.ID() != id && n.RepairManager() != nil {
			n.RepairManager().PeerRecovered(id)
		}
	}
}

// FaultKind enumerates the scheduled failure injections.
type FaultKind int

// Fault kinds.
const (
	// FaultDown takes the node down (SetDown).
	FaultDown FaultKind = iota
	// FaultUp brings the node back (SetUp), triggering recovery repair.
	FaultUp
	// FaultDropHints discards the node's queued hints (empty Node means
	// every node) — the coordinator-crash injection that makes hinted
	// handoff alone insufficient.
	FaultDropHints
)

// Fault is one scheduled failure-injection event.
type Fault struct {
	At   time.Duration // offset from ScheduleFaults
	Node ring.NodeID
	Kind FaultKind
}

// ScheduleFaults arms a failure schedule on the runtime driving the
// cluster. The returned stop cancels events that have not fired yet.
func (c *Cluster) ScheduleFaults(rt sim.Runtime, faults []Fault) (stop func()) {
	cancels := make([]func(), 0, len(faults))
	for _, f := range faults {
		f := f
		cancels = append(cancels, rt.After(f.At, func() {
			switch f.Kind {
			case FaultDown:
				c.SetDown(f.Node)
			case FaultUp:
				c.SetUp(f.Node)
			case FaultDropHints:
				for _, n := range c.Nodes {
					if f.Node == "" || n.ID() == f.Node {
						n.DropHints()
					}
				}
			}
		}))
	}
	return func() {
		for _, cancel := range cancels {
			cancel()
		}
	}
}

// BuildSim assembles the cluster on a discrete-event simulator. All nodes
// share the simulator as their runtime (the DES is single-threaded, so this
// preserves the per-node serialization contract).
func BuildSim(s *sim.Sim, spec Spec) (*Cluster, error) {
	return build(spec, func(ring.NodeID) sim.Runtime { return s }, s)
}

// BuildReal assembles the cluster on real-time mailbox runtimes (one
// goroutine per node). The caller must Stop the returned cluster.
func BuildReal(spec Spec, seed int64) (*Cluster, error) {
	seedSim := sim.New(seed) // used only as a deterministic RNG source
	return build(spec, func(ring.NodeID) sim.Runtime { return sim.NewRealRuntime() }, seedSim)
}

func build(spec Spec, rtFor func(ring.NodeID) sim.Runtime, s *sim.Sim) (*Cluster, error) {
	if spec.DCs <= 0 || spec.RacksPerDC <= 0 || spec.NodesPerRack <= 0 {
		return nil, fmt.Errorf("cluster: spec must have positive dimensions, got %+v", spec)
	}
	if spec.RF <= 0 {
		return nil, fmt.Errorf("cluster: replication factor must be positive")
	}
	if spec.VNodes == 0 {
		spec.VNodes = 16
	}
	var infos []ring.NodeInfo
	for dc := 1; dc <= spec.DCs; dc++ {
		for rack := 1; rack <= spec.RacksPerDC; rack++ {
			for i := 1; i <= spec.NodesPerRack; i++ {
				infos = append(infos, ring.NodeInfo{
					ID:   ring.NodeID(fmt.Sprintf("dc%d-r%d-n%d", dc, rack, i)),
					DC:   fmt.Sprintf("dc%d", dc),
					Rack: fmt.Sprintf("r%d", rack),
				})
			}
		}
	}
	topo, err := ring.NewTopology(infos)
	if err != nil {
		return nil, err
	}
	rng, err := ring.Build(topo, spec.VNodes)
	if err != nil {
		return nil, err
	}
	var strat ring.Strategy
	if spec.NetworkTopologyAware {
		strat = ring.NetworkTopologyStrategy{RF: spec.RF}
	} else {
		strat = ring.SimpleStrategy{RF: spec.RF}
	}
	net := simnet.New(topo, spec.Profile, s.NewStream())
	bus := transport.NewBus(net)
	injRT := rtFor("faults-injector")
	c := &Cluster{
		Topo:     topo,
		Ring:     rng,
		Strategy: strat,
		Net:      net,
		Bus:      bus,
		Faults:   faults.New(injRT, s.NewStream().Int63(), bus),
		faultsRT: injRT,
		byID:     make(map[ring.NodeID]*Node),
		down:     make(map[ring.NodeID]bool),
	}
	svc := spec.Service
	if svc.isZero() {
		svc = DefaultServiceProfile()
	}
	for _, info := range infos {
		rt := rtFor(info.ID)
		self := info.ID
		n := New(Config{
			ID:               info.ID,
			Ring:             rng,
			Strategy:         strat,
			ReadTimeout:      spec.ReadTimeout,
			WriteTimeout:     spec.WriteTimeout,
			ReadRepairChance: spec.ReadRepairChance,
			HintedHandoff:    spec.HintedHandoff,
			HintQueueLimit:   spec.HintQueueLimit,
			Repair:           spec.Repair,
			Engine:           spec.Engine,
			Groups:           spec.Groups,
			GroupFn:          spec.GroupFn,
			KeySampleLimit:   spec.KeySampleLimit,
			KeyStatsDecay:    spec.KeyStatsDecay,
			MaxInFlight:      spec.MaxInFlight,
			Alive:            func(peer ring.NodeID) bool { return c.AliveFor(self, peer) },
			AliveCount:       func() int { return c.AliveCountFor(self) },
			Rand:             s.NewStream(),
		}, rt, c.Faults)
		var h transport.Handler = n
		if !svc.Disabled {
			h = transport.NewServiceQueue(rt, n, svc.Timer(s.NewStream()))
		}
		bus.Register(info.ID, rt, h)
		n.Start()
		c.Nodes = append(c.Nodes, n)
		c.byID[info.ID] = n
	}
	return c, nil
}

// Node returns the node with the given ID, or nil.
func (c *Cluster) Node(id ring.NodeID) *Node { return c.byID[id] }

// NodeIDs returns all node IDs in deterministic order.
func (c *Cluster) NodeIDs() []ring.NodeID { return c.Topo.Nodes() }

// AggregateMetrics sums metrics across all nodes. Per-group counters only
// aggregate over nodes at the newest grouping epoch: during a GroupUpdate
// rollout a laggard node's group counters still describe the old epoch's
// groups, and mixing the two would attribute one epoch's traffic to
// another epoch's groups (the same invariant the monitor enforces with its
// epoch consensus). Aggregate counters always cover every node.
func (c *Cluster) AggregateMetrics() Metrics {
	var total Metrics
	snaps := make([]Metrics, 0, len(c.Nodes))
	for _, n := range c.Nodes {
		s := n.Snapshot()
		snaps = append(snaps, s)
		if s.GroupEpoch > total.GroupEpoch {
			total.GroupEpoch = s.GroupEpoch
		}
	}
	for _, s := range snaps {
		total.Reads += s.Reads
		total.Writes += s.Writes
		total.ReplicaOps += s.ReplicaOps
		total.BytesRead += s.BytesRead
		total.BytesWritten += s.BytesWritten
		total.RepairsSent += s.RepairsSent
		total.HintsQueued += s.HintsQueued
		total.HintsReplayed += s.HintsReplayed
		total.HintsDropped += s.HintsDropped
		total.ReadTimeouts += s.ReadTimeouts
		total.WriteTimeouts += s.WriteTimeouts
		total.Unavailable += s.Unavailable
		total.Overloaded += s.Overloaded
		total.RepairRows += s.RepairRows
		total.RepairAgeMs += s.RepairAgeMs
		total.ShadowSamples += s.ShadowSamples
		total.ShadowStale += s.ShadowStale
		total.SessionUpgrades += s.SessionUpgrades
		total.SessionRepolls += s.SessionRepolls
		for i := range s.LevelUse {
			total.LevelUse[i] += s.LevelUse[i]
		}
		if s.GroupEpoch != total.GroupEpoch {
			continue // old-epoch groups: counters describe retired groups
		}
		total.GroupReads = addCounters(total.GroupReads, s.GroupReads)
		total.GroupWrites = addCounters(total.GroupWrites, s.GroupWrites)
		total.GroupBytesWritten = addCounters(total.GroupBytesWritten, s.GroupBytesWritten)
		total.GroupShadowSamples = addCounters(total.GroupShadowSamples, s.GroupShadowSamples)
		total.GroupShadowStale = addCounters(total.GroupShadowStale, s.GroupShadowStale)
		total.GroupRepairRows = addCounters(total.GroupRepairRows, s.GroupRepairRows)
		total.GroupRepairAgeMs = addCounters(total.GroupRepairAgeMs, s.GroupRepairAgeMs)
	}
	return total
}

// addCounters element-wise adds src into dst, growing dst as needed.
func addCounters(dst, src []uint64) []uint64 {
	for len(dst) < len(src) {
		dst = append(dst, 0)
	}
	for i, v := range src {
		dst[i] += v
	}
	return dst
}

// Stop shuts down node maintenance and, for real-time runtimes, their
// mailbox goroutines.
func (c *Cluster) Stop() {
	for _, n := range c.Nodes {
		n.Stop()
		if rr, ok := n.rt.(*sim.RealRuntime); ok {
			rr.Stop()
		}
	}
	if rr, ok := c.faultsRT.(*sim.RealRuntime); ok {
		rr.Stop()
	}
}

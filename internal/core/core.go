package core

#!/usr/bin/env bash
# Live admin-endpoint smoke: boot a real single-node harmony-server with
# -admin-addr, then exercise the observability surfaces a scraper depends
# on — /metrics, /status, and a short CPU profile — failing on any non-200
# response or empty body. CI runs this so a broken admin mux can't land
# silently; locally: make admin-smoke.
set -euo pipefail

GO=${GO:-go}
workdir=$(mktemp -d)
serverlog="$workdir/server.log"
pid=""

cleanup() {
  [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
  wait 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

$GO build -o "$workdir/harmony-server" ./cmd/harmony-server

# Reserve an ephemeral transport port (bind-and-release, the same trick the
# live bench uses); the admin endpoint binds :0 and logs its address.
port=$($GO run ./scripts/freeport.go)

"$workdir/harmony-server" \
  -id n1 -listen "127.0.0.1:$port" -cluster "n1=127.0.0.1:$port/dc1/r1" -rf 1 \
  -admin-addr 127.0.0.1:0 >"$serverlog" 2>&1 &
pid=$!

# The server logs the admin endpoint's bound address once it is listening.
admin=""
for _ in $(seq 1 50); do
  admin=$(sed -n 's#.*admin endpoint on http://\([^ ]*\).*#\1#p' "$serverlog" | head -1)
  [ -n "$admin" ] && break
  if ! kill -0 "$pid" 2>/dev/null; then
    echo "admin-smoke: server exited early:" >&2
    cat "$serverlog" >&2
    exit 1
  fi
  sleep 0.1
done
if [ -z "$admin" ]; then
  echo "admin-smoke: admin endpoint never came up:" >&2
  cat "$serverlog" >&2
  exit 1
fi
echo "admin-smoke: admin endpoint at $admin"

# fetch URL MIN_BYTES: 200 status and a body of at least MIN_BYTES, or die.
fetch() {
  url=$1 min=$2 out="$workdir/body"
  code=$(curl -sS -o "$out" -w '%{http_code}' "$url")
  size=$(wc -c <"$out")
  if [ "$code" != 200 ] || [ "$size" -lt "$min" ]; then
    echo "admin-smoke: GET $url -> status $code, $size bytes (want 200, >= $min)" >&2
    exit 1
  fi
  echo "admin-smoke: GET $url -> 200, $size bytes"
}

fetch "http://$admin/metrics" 100
grep -q '^harmony_reads_total' "$workdir/body" ||
  { echo "admin-smoke: /metrics missing harmony_reads_total" >&2; exit 1; }
fetch "http://$admin/status" 50
grep -q '"node"' "$workdir/body" ||
  { echo "admin-smoke: /status missing node field" >&2; exit 1; }
fetch "http://$admin/trace" 0
fetch "http://$admin/debug/vars" 10
# A 1s CPU profile exercises the pprof mux end-to-end; the pb.gz payload of
# an idle server is small but never empty.
fetch "http://$admin/debug/pprof/profile?seconds=1" 50

echo "admin-smoke: ok"

package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"
)

// AdminConfig assembles an admin HTTP endpoint. Any of the surfaces may be
// nil; the corresponding route then serves an empty (but well-formed)
// response instead of registering nothing, so scrapers can probe a partially
// assembled process without 404 special cases.
type AdminConfig struct {
	// Registry backs GET /metrics (Prometheus text exposition).
	Registry *Registry
	// Trace backs GET /trace (JSONL; ?since=SEQ returns only events with a
	// larger sequence number).
	Trace *Trace
	// Status backs GET /status: it is invoked per request and its result
	// marshalled as JSON. Implementations return a plain data struct.
	Status func() any
	// Faults, when non-nil, backs /faults (GET snapshot, POST update) —
	// the runtime fault-injection control surface. Nil serves 404, unlike
	// the read-only surfaces above: probing tools must be able to tell
	// "no fault plane" apart from "empty fault plane".
	Faults http.Handler
}

// Admin is a running admin HTTP endpoint.
type Admin struct {
	ln  net.Listener
	srv *http.Server
}

// StartAdmin binds addr (e.g. "127.0.0.1:0") and serves the admin routes on
// it: /metrics, /status, /trace, /debug/pprof/*, and /debug/vars. The
// endpoint runs until Close. The pprof and expvar handlers are mounted on
// the endpoint's private mux explicitly — nothing is registered on
// http.DefaultServeMux.
func StartAdmin(addr string, cfg AdminConfig) (*Admin, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("admin listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if cfg.Registry != nil {
			cfg.Registry.WriteProm(w)
		}
	})
	mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		var v any
		if cfg.Status != nil {
			v = cfg.Status()
		}
		if v == nil {
			v = struct{}{}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(v); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		var since uint64
		if s := r.URL.Query().Get("since"); s != "" {
			n, err := strconv.ParseUint(s, 10, 64)
			if err != nil {
				http.Error(w, "bad since: "+err.Error(), http.StatusBadRequest)
				return
			}
			since = n
		}
		if cfg.Trace != nil {
			cfg.Trace.WriteJSONL(w, since)
		}
	})
	if cfg.Faults != nil {
		mux.Handle("/faults", cfg.Faults)
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())

	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	a := &Admin{ln: ln, srv: srv}
	go srv.Serve(ln)
	return a, nil
}

// Addr returns the bound address (useful with ":0").
func (a *Admin) Addr() string { return a.ln.Addr().String() }

// Close stops the endpoint and frees its port.
func (a *Admin) Close() error { return a.srv.Close() }

// Package repro's root benchmarks regenerate every figure of the paper's
// evaluation (§V) through the testing.B interface, one benchmark per figure,
// plus the headline claims and the ablations of DESIGN.md §6. Custom metrics
// carry the reproduced quantities (throughput, p99 latency, stale fraction,
// estimates) so `go test -bench=. -benchmem` prints the paper's numbers
// alongside the usual ns/op.
//
// Budgets here are sized for minutes-scale runs; `cmd/harmony-bench` runs
// the same experiments with larger budgets and full tables.
package repro_test

import (
	"testing"
	"time"

	"harmony/internal/bench"
	"harmony/internal/ycsb"
)

// benchOpts trims experiment cost for the testing.B harness.
func benchOpts() bench.Options {
	return bench.Options{
		OpsPerPoint:   10000,
		Threads:       []int{1, 40, 90},
		Seed:          1,
		PhaseDuration: 3 * time.Second,
	}
}

// reportSeries flattens a figure into benchmark metrics named
// "<series>@<x>_<unit>". Metric units must be whitespace-free, so series
// names are sanitized.
func reportSeries(b *testing.B, f bench.Figure, unit string) {
	b.Helper()
	for _, s := range f.Series {
		for _, p := range s.Points {
			name := sanitize(s.Name) + "@" + trim(p.X) + "_" + unit
			b.ReportMetric(p.Y, name)
		}
	}
}

func sanitize(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case ' ', '\t', '\n', '/', ',':
			out = append(out, '_')
		default:
			out = append(out, c)
		}
	}
	return string(out)
}

func trim(v float64) string {
	if v == float64(int64(v)) {
		return itoa(int64(v))
	}
	return itoa(int64(v*1000)) + "m"
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// BenchmarkFig4a regenerates Fig. 4(a): the stale-read probability estimate
// over running time under thread steps 90/70/40/15/1 for workloads A and B.
func BenchmarkFig4a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := bench.Fig4a(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			// Report the per-workload mean estimate.
			for _, s := range fig.Series {
				sum := 0.0
				for _, p := range s.Points {
					sum += p.Y
				}
				b.ReportMetric(sum/float64(len(s.Points)), s.Name+"_mean_estimate")
			}
		}
	}
}

// BenchmarkFig4b regenerates Fig. 4(b): the estimate against network latency
// under a fixed offered load.
func BenchmarkFig4b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := bench.Fig4b(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportSeries(b, fig, "est")
		}
	}
}

// grid runs the Fig. 5/6 measurement matrix for a scenario once per
// benchmark iteration and reports one figure's series.
func grid(b *testing.B, sc bench.Scenario, project func(bench.Grid) bench.Figure, unit string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		g, err := bench.RunGrid(sc, bench.StandardPolicies(sc), benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportSeries(b, project(g), unit)
		}
	}
}

// BenchmarkFig5aLatencyGrid5000 regenerates Fig. 5(a): p99 read latency vs
// client threads on the Grid'5000 profile.
func BenchmarkFig5aLatencyGrid5000(b *testing.B) {
	grid(b, bench.Grid5000(), func(g bench.Grid) bench.Figure { return g.LatencyFigure("fig5a") }, "msP99")
}

// BenchmarkFig5bLatencyEC2 regenerates Fig. 5(b): p99 read latency vs client
// threads on the EC2 profile.
func BenchmarkFig5bLatencyEC2(b *testing.B) {
	grid(b, bench.EC2(), func(g bench.Grid) bench.Figure { return g.LatencyFigure("fig5b") }, "msP99")
}

// BenchmarkFig5cThroughputGrid5000 regenerates Fig. 5(c): throughput vs
// client threads on the Grid'5000 profile.
func BenchmarkFig5cThroughputGrid5000(b *testing.B) {
	grid(b, bench.Grid5000(), func(g bench.Grid) bench.Figure { return g.ThroughputFigure("fig5c") }, "ops")
}

// BenchmarkFig5dThroughputEC2 regenerates Fig. 5(d): throughput vs client
// threads on the EC2 profile.
func BenchmarkFig5dThroughputEC2(b *testing.B) {
	grid(b, bench.EC2(), func(g bench.Grid) bench.Figure { return g.ThroughputFigure("fig5d") }, "ops")
}

// BenchmarkFig6aStalenessGrid5000 regenerates Fig. 6(a): measured stale
// reads vs client threads on the Grid'5000 profile.
func BenchmarkFig6aStalenessGrid5000(b *testing.B) {
	grid(b, bench.Grid5000(), func(g bench.Grid) bench.Figure { return g.StalenessFigure("fig6a") }, "per100k")
}

// BenchmarkFig6bStalenessEC2 regenerates Fig. 6(b): measured stale reads vs
// client threads on the EC2 profile.
func BenchmarkFig6bStalenessEC2(b *testing.B) {
	grid(b, bench.EC2(), func(g bench.Grid) bench.Figure { return g.StalenessFigure("fig6b") }, "per100k")
}

// BenchmarkHeadline reproduces the §I claims: stale-read reduction vs
// eventual consistency and throughput gain vs strong consistency.
func BenchmarkHeadline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sum, err := bench.Headline(bench.Grid5000(), benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(sum.StaleReductionVsEventual*100, "staleCut_pct")
			b.ReportMetric(sum.ThroughputGainVsStrong*100, "tputGain_pct")
			b.ReportMetric(sum.LatencyOverheadVsEventual*100, "latOverhead_pct")
		}
	}
}

// BenchmarkAblationFixedTp compares monitored vs frozen propagation time
// (DESIGN.md §6): why Harmony must watch network latency.
func BenchmarkAblationFixedTp(b *testing.B) {
	opts := benchOpts()
	opts.Threads = []int{40}
	for i := 0; i < b.N; i++ {
		fig, err := bench.AblationFixedTp(opts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportSeries(b, fig, "per100k")
		}
	}
}

// BenchmarkAblationReadRepair measures staleness with and without
// background read repair.
func BenchmarkAblationReadRepair(b *testing.B) {
	opts := benchOpts()
	opts.Threads = []int{40}
	for i := 0; i < b.N; i++ {
		fig, err := bench.AblationReadRepair(opts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportSeries(b, fig, "per100k")
		}
	}
}

// BenchmarkAblationVsQuorum compares Harmony against static QUORUM reads.
func BenchmarkAblationVsQuorum(b *testing.B) {
	opts := benchOpts()
	opts.Threads = []int{40}
	for i := 0; i < b.N; i++ {
		figs, err := bench.AblationVsQuorum(opts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, f := range figs {
				reportSeries(b, f, "y")
			}
		}
	}
}

// BenchmarkWorkloadAEventual measures raw simulator throughput driving
// Workload-A at eventual consistency — the substrate cost itself.
func BenchmarkWorkloadAEventual(b *testing.B) {
	res, err := bench.RunPolicy(bench.RunSpec{
		Scenario: bench.Grid5000(),
		Policy:   bench.PolicySpec{Kind: bench.PolicyEventual},
		Workload: ycsb.WorkloadA(),
		Threads:  40,
		Ops:      int64(b.N) + 1000,
		Seed:     1,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(res.Report.ThroughputOps, "virtual_ops/s")
}

// BenchmarkHotCold runs the per-group-vs-global controller comparison and
// reports the throughput gain per-group adaptation buys.
func BenchmarkHotCold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.HotCold(bench.DefaultHotColdSpec(), bench.Options{OpsPerPoint: 8000, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.PerGroup.ThroughputOps, "pergroup_ops/s")
			b.ReportMetric(res.Global.ThroughputOps, "global_ops/s")
			b.ReportMetric(res.ThroughputGain*100, "gain_pct")
		}
	}
}

// BenchmarkScenarioStressProfiles drives Harmony through the four
// stress-network scenarios (Pareto-tail WAN, degraded links, bimodal
// congestion, mid-run jitter drift) and reports throughput and measured
// stale fraction, so the adaptive controller's behavior under
// scenario-diverse timing shows up alongside the paper's figures.
func BenchmarkScenarioStressProfiles(b *testing.B) {
	for _, sc := range []bench.Scenario{bench.WANHeavyTail(), bench.Degraded(), bench.CongestedBimodal(), bench.Drifting()} {
		sc := sc
		b.Run(sc.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := bench.RunPolicy(bench.RunSpec{
					Scenario: sc,
					Policy:   bench.PolicySpec{Kind: bench.PolicyHarmony, Tolerance: sc.HarmonyTolerances[0]},
					Workload: ycsb.WorkloadA(),
					Threads:  8,
					Ops:      2000,
					Seed:     1,
				})
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(res.Report.ThroughputOps, "virtual_ops/s")
					b.ReportMetric(res.Report.StaleFraction()*100, "stale_pct")
				}
			}
		})
	}
}

package cluster

import (
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"harmony/internal/client"
	"harmony/internal/repair"
	"harmony/internal/ring"
	"harmony/internal/sim"
	"harmony/internal/simnet"
	"harmony/internal/storage"
	"harmony/internal/transport"
	"harmony/internal/wire"
)

// repairSpec is the failure-testing cluster: small enough that one node
// replicates most keys, hints capped tightly, anti-entropy on a fast cadence.
func repairSpec() Spec {
	return Spec{
		DCs:                  1,
		RacksPerDC:           2,
		NodesPerRack:         3,
		RF:                   5,
		NetworkTopologyAware: true,
		Profile:              simnet.Grid5000Profile(),
		HintedHandoff:        true,
		HintQueueLimit:       8,
		Repair: repair.Options{
			Enabled:        true,
			Interval:       200 * time.Millisecond,
			Concurrency:    4,
			LeavesPerRange: 32,
		},
	}
}

// syncWrite performs a write through drv and fails the test if it errors.
func syncWrite(t *testing.T, s *sim.Sim, drv *client.Driver, key, val string) {
	t.Helper()
	done := false
	drv.Write([]byte(key), []byte(val), func(r client.WriteResult) {
		if r.Err != nil {
			t.Errorf("write %q: %v", key, r.Err)
		}
		done = true
	})
	s.RunFor(time.Second)
	if !done {
		t.Fatalf("write %q did not complete", key)
	}
}

// TestHintQueueOverflowDropsThenRepairCatches is the durability-gap test:
// with the hint queue capped, an outage loses most mutations outright
// (HintsDropped), and only the anti-entropy recovery session brings the
// returned replica back to byte parity with its peers.
func TestHintQueueOverflowDropsThenRepairCatches(t *testing.T) {
	s := sim.New(42)
	c, err := BuildSim(s, repairSpec())
	if err != nil {
		t.Fatal(err)
	}
	coord := c.NodeIDs()[0]
	victim := c.NodeIDs()[2]
	drv, err := client.New(client.Options{ID: "cl", Coordinators: []ring.NodeID{coord}}, s, c.Bus)
	if err != nil {
		t.Fatal(err)
	}
	c.Bus.Register("cl", s, drv)

	keys := make([]string, 40)
	for i := range keys {
		keys[i] = fmt.Sprintf("k%03d", i)
		syncWrite(t, s, drv, keys[i], "v1")
	}
	s.RunFor(time.Second) // background replication settles

	c.SetDown(victim)
	for _, k := range keys {
		syncWrite(t, s, drv, k, "v2")
	}
	agg := c.AggregateMetrics()
	if agg.HintsDropped == 0 {
		t.Fatalf("hint cap of 8 never overflowed across %d writes", len(keys))
	}
	// The coordinator crashes before replaying anything: every surviving
	// hint is lost too. Repair is now the only healing path.
	for _, n := range c.Nodes {
		n.DropHints()
	}
	c.SetUp(victim)
	s.RunFor(5 * time.Second)

	stale := 0
	for _, k := range keys {
		reps := ring.ReplicasForKey(c.Ring, c.Strategy, []byte(k))
		mine := false
		for _, r := range reps {
			if r == victim {
				mine = true
			}
		}
		if !mine {
			continue
		}
		if v, ok := c.Node(victim).Engine().Get([]byte(k)); !ok || string(v.Data) != "v2" {
			stale++
		}
	}
	if stale != 0 {
		t.Fatalf("%d keys still stale on the recovered replica after repair", stale)
	}
	after := c.AggregateMetrics()
	if after.RepairRows == 0 {
		t.Fatal("divergence gauge never moved: repair did not do the healing")
	}
	if after.GroupRepairRows != nil {
		// Single implicit group: per-group gauge must be absent, not wrong.
		t.Logf("group repair rows: %v", after.GroupRepairRows)
	}
}

// TestHintReplayRacesNodeRecovery pins the ordering hazard between hint
// replay and fresh post-recovery writes: a replayed hint carries an OLDER
// timestamp than a write accepted after recovery, so last-writer-wins must
// keep the fresh value no matter which arrives last.
func TestHintReplayRacesNodeRecovery(t *testing.T) {
	spec := repairSpec()
	spec.HintQueueLimit = 0 // keep every hint: the race needs the replay
	spec.Repair.Enabled = false
	s := sim.New(43)
	c, err := BuildSim(s, spec)
	if err != nil {
		t.Fatal(err)
	}
	key := []byte("raced")
	reps := ring.ReplicasForKey(c.Ring, c.Strategy, key)
	coord, victim := reps[0], reps[len(reps)-1]
	drv, err := client.New(client.Options{ID: "cl", Coordinators: []ring.NodeID{coord}}, s, c.Bus)
	if err != nil {
		t.Fatal(err)
	}
	c.Bus.Register("cl", s, drv)

	c.SetDown(victim)
	syncWrite(t, s, drv, string(key), "hinted-v1")
	if c.Node(coord).PendingHints() == 0 {
		t.Fatal("no hint queued while the victim was down")
	}
	// The victim returns, and a fresh write lands BEFORE the replay tick.
	c.SetUp(victim)
	syncWrite(t, s, drv, string(key), "fresh-v2")
	// Let the replay interval (10s default) fire with the stale hint.
	s.RunFor(30 * time.Second)
	if c.Node(coord).PendingHints() != 0 {
		t.Fatal("hint never replayed")
	}
	v, ok := c.Node(victim).Engine().Get(key)
	if !ok || string(v.Data) != "fresh-v2" {
		t.Fatalf("replayed stale hint clobbered the fresh write: got %q ok=%v", v.Data, ok)
	}
}

// TestCommitLogReplayThenRepairSession chains the two recovery mechanisms:
// a replica rebuilds its engine from the commit log (crash recovery), then
// an anti-entropy session reconciles what the log predates — exactly the
// restart-then-repair sequence a production node goes through.
func TestCommitLogReplayThenRepairSession(t *testing.T) {
	dir := t.TempDir()
	logPath := filepath.Join(dir, "node-a.commitlog")
	cl, err := storage.OpenFileCommitLog(logPath)
	if err != nil {
		t.Fatal(err)
	}
	ea := storage.NewEngine(storage.Options{CommitLog: cl})
	for i := 0; i < 200; i++ {
		key := []byte(fmt.Sprintf("cl%04d", i))
		if _, err := ea.Apply(key, wire.Value{Data: []byte("logged"), Timestamp: int64(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ea.Apply([]byte("cl0005"), wire.Value{Tombstone: true, Timestamp: 10_000}); err != nil {
		t.Fatal(err)
	}
	if err := cl.Close(); err != nil {
		t.Fatal(err)
	}

	// Crash: a fresh engine replays the log.
	rebuilt := storage.NewEngine(storage.Options{})
	if err := storage.Replay(logPath, func(key []byte, v wire.Value) error {
		_, err := rebuilt.Apply(key, v)
		return err
	}); err != nil {
		t.Fatal(err)
	}

	// The peer moved on while this node was dead: newer versions plus keys
	// the log never saw.
	eb := storage.NewEngine(storage.Options{})
	rebuilt.ScanVersions(nil, nil, func(key []byte, v wire.Value) bool {
		_, _ = eb.Apply(key, v)
		return true
	})
	for i := 0; i < 40; i++ {
		key := []byte(fmt.Sprintf("cl%04d", i*5))
		if _, err := eb.Apply(key, wire.Value{Data: []byte("newer"), Timestamp: int64(20_000 + i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 15; i++ {
		key := []byte(fmt.Sprintf("post-crash-%03d", i))
		if _, err := eb.Apply(key, wire.Value{Data: []byte("new"), Timestamp: int64(30_000 + i)}); err != nil {
			t.Fatal(err)
		}
	}

	// A repair session between the rebuilt replica and its peer.
	infos := []ring.NodeInfo{{ID: "a", DC: "dc1", Rack: "r1"}, {ID: "b", DC: "dc1", Rack: "r1"}}
	topo, err := ring.NewTopology(infos)
	if err != nil {
		t.Fatal(err)
	}
	rng, err := ring.Build(topo, 8)
	if err != nil {
		t.Fatal(err)
	}
	strat := ring.SimpleStrategy{RF: 2}
	s := sim.New(44)
	lb := transport.NewLoopback()
	ma := repair.NewManager(repair.Config{Self: "a", Ring: rng, Strategy: strat, Engine: rebuilt,
		Options: repair.Options{Enabled: true, Interval: 100 * time.Millisecond, Concurrency: 1}}, s, lb)
	mb := repair.NewManager(repair.Config{Self: "b", Ring: rng, Strategy: strat, Engine: eb,
		Options: repair.Options{Enabled: true}}, s, lb)
	lb.Register("a", ma)
	lb.Register("b", mb)
	ma.Start()
	defer ma.Stop()
	s.RunFor(time.Second)

	dumpOf := func(e *storage.Engine) string {
		out := ""
		e.ScanVersions(nil, nil, func(key []byte, v wire.Value) bool {
			out += fmt.Sprintf("%s|%d|%v|%x\n", key, v.Timestamp, v.Tombstone, v.Data)
			return true
		})
		return out
	}
	if got, want := dumpOf(rebuilt), dumpOf(eb); got != want {
		t.Fatalf("engines differ after commit-log replay + repair:\nA:\n%s\nB:\n%s", got, want)
	}
	if ma.Stats().RowsHealed == 0 {
		t.Fatal("repair session healed nothing on the log-rebuilt replica")
	}
}

// TestScheduleFaultsDrivesLiveness scripts a down/up/drop-hints timeline
// and verifies the injected liveness view and hint queues follow it.
func TestScheduleFaultsDrivesLiveness(t *testing.T) {
	spec := repairSpec()
	spec.Repair.Enabled = false
	s := sim.New(45)
	c, err := BuildSim(s, spec)
	if err != nil {
		t.Fatal(err)
	}
	victim := c.NodeIDs()[1]
	coord := c.NodeIDs()[0]
	// A key the victim replicates, so its outage write gets hinted.
	key := ""
	for i := 0; key == "" && i < 100; i++ {
		cand := fmt.Sprintf("fault-key-%d", i)
		for _, r := range ring.ReplicasForKey(c.Ring, c.Strategy, []byte(cand)) {
			if r == victim {
				key = cand
				break
			}
		}
	}
	if key == "" {
		t.Fatal("no candidate key replicated on the victim")
	}
	drv, err := client.New(client.Options{ID: "cl", Coordinators: []ring.NodeID{coord}}, s, c.Bus)
	if err != nil {
		t.Fatal(err)
	}
	c.Bus.Register("cl", s, drv)
	stop := c.ScheduleFaults(s, []Fault{
		{At: time.Second, Node: victim, Kind: FaultDown},
		{At: 3 * time.Second, Node: "", Kind: FaultDropHints},
		{At: 3*time.Second + time.Millisecond, Node: victim, Kind: FaultUp},
	})
	defer stop()
	if !c.Alive(victim) {
		t.Fatal("victim dead before the schedule started")
	}
	s.RunFor(1500 * time.Millisecond)
	if c.Alive(victim) {
		t.Fatal("FaultDown did not take the victim down")
	}
	syncWrite(t, s, drv, key, "v") // hinted for the down victim
	if c.Node(coord).PendingHints() == 0 {
		t.Fatal("no hint queued during the injected outage")
	}
	s.RunFor(time.Second)
	if !c.Alive(victim) {
		t.Fatal("FaultUp did not bring the victim back")
	}
	if c.Node(coord).PendingHints() != 0 {
		t.Fatal("FaultDropHints left hints queued")
	}
	if c.AggregateMetrics().HintsDropped == 0 {
		t.Fatal("dropped hints not accounted")
	}
}

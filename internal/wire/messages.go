// Package wire defines the messages exchanged between storage nodes and
// clients, and a compact binary codec for sending them over a byte stream.
// It plays the role Thrift played in the paper's Cassandra deployment: a
// stable, language-independent framing so the same store can be driven
// in-process, over the discrete-event simulator, or over TCP.
//
// Encoding: every message is a frame of
//
//	uvarint(totalLen) byte(kind) payload
//
// where payload fields use uvarint/varint primitives, length-prefixed byte
// strings, and fixed 8-byte big-endian for timestamps.
package wire

import (
	"fmt"
	"time"
)

// Kind discriminates message types on the wire.
type Kind uint8

// Message kinds. Values are part of the wire format; do not reorder.
const (
	KindInvalid Kind = iota
	KindReadRequest
	KindReadResponse
	KindWriteRequest
	KindWriteResponse
	KindReplicaRead
	KindReplicaReadResp
	KindMutation
	KindMutationAck
	KindRepair
	KindStatsRequest
	KindStatsResponse
	KindPing
	KindPong
	KindGossipSyn
	KindGossipAck
	KindError
	KindGroupUpdate
	KindTreeRequest
	KindTreeResponse
	KindRangeSync
	kindSentinel // keep last
)

var kindNames = [...]string{
	"invalid", "read-req", "read-resp", "write-req", "write-resp",
	"replica-read", "replica-read-resp", "mutation", "mutation-ack",
	"repair", "stats-req", "stats-resp", "ping", "pong",
	"gossip-syn", "gossip-ack", "error", "group-update",
	"tree-req", "tree-resp", "range-sync",
}

// String returns the kind's wire name.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// ConsistencyLevel is the number-of-replicas policy for one operation,
// mirroring Cassandra's per-operation levels.
type ConsistencyLevel uint8

// Consistency levels. One..Three are absolute counts; Quorum and All are
// resolved against the replication factor at coordination time. Session sits
// between One and Quorum in guarantee strength: the coordinator answers from
// a single replica when that replica already covers the client's session
// token, and widens the read only when it does not — so the common case costs
// ONE while read-your-writes and monotonic reads still hold.
const (
	One ConsistencyLevel = iota + 1
	Two
	Three
	Quorum
	All
	Session
)

// String names the level like Cassandra's documentation does.
func (c ConsistencyLevel) String() string {
	switch c {
	case One:
		return "ONE"
	case Two:
		return "TWO"
	case Three:
		return "THREE"
	case Quorum:
		return "QUORUM"
	case All:
		return "ALL"
	case Session:
		return "SESSION"
	}
	return fmt.Sprintf("CL(%d)", uint8(c))
}

// BlockFor resolves the level to a replica count for replication factor rf.
func (c ConsistencyLevel) BlockFor(rf int) int {
	var n int
	switch c {
	case One, Session:
		// Session blocks for one replica; token satisfaction, not replica
		// count, provides its extra guarantee.
		n = 1
	case Two:
		n = 2
	case Three:
		n = 3
	case Quorum:
		n = rf/2 + 1
	case All:
		n = rf
	default:
		n = 1
	}
	if n > rf {
		n = rf
	}
	if n < 1 {
		n = 1
	}
	return n
}

// LevelForCount returns the weakest ConsistencyLevel that blocks for at
// least x replicas under replication factor rf. Harmony's controller uses it
// to translate the computed Xn into a per-operation level.
func LevelForCount(x, rf int) ConsistencyLevel {
	if x <= 1 {
		return One
	}
	if x >= rf {
		return All
	}
	q := rf/2 + 1
	switch {
	case x == q:
		return Quorum
	case x == 2:
		return Two
	case x == 3:
		return Three
	case x < q:
		return Quorum
	default:
		return All
	}
}

// ClockEntry is one coordinator's component of a vector clock: the highest
// write timestamp the value has observed through that coordinator. Counters
// are write timestamps (UnixNano of the coordinating write), so a value's
// clock doubles as a causal history and a recency watermark.
type ClockEntry struct {
	Node    string
	Counter uint64
}

// Value is a timestamped cell. Timestamps are the write coordinator's clock
// in nanoseconds; conflict resolution is last-writer-wins by default, exactly
// the reconciliation Cassandra applies on read, with the vector Clock
// available for causal comparison and pluggable sibling resolution
// (internal/versioning).
type Value struct {
	Data      []byte
	Timestamp int64 // UnixNano of the coordinating write
	Tombstone bool
	// Clock is the value's vector clock, stamped by the write coordinator:
	// the previous version's clock merged with (coordinator, Timestamp).
	// Empty for legacy/bulk-loaded values, which compare purely by
	// Timestamp.
	Clock []ClockEntry
}

// Fresh reports whether v is newer than other (ties broken toward v=false so
// merges are stable).
func (v Value) Fresh(other Value) bool { return v.Timestamp > other.Timestamp }

// Time returns the timestamp as a time.Time.
func (v Value) Time() time.Time { return time.Unix(0, v.Timestamp) }

// ReadRequest is a client-to-coordinator read.
type ReadRequest struct {
	ID    uint64
	Key   []byte
	Level ConsistencyLevel
	// Shadow requests a second internal read at level ALL whose result is
	// compared against the primary read to detect staleness — the paper's
	// §V-F dual-read measurement.
	Shadow bool
	// Token is the client's session token for the key's range: high-water
	// vector-clock entries from the session's previous reads and writes.
	// Meaningful only at Level Session, where the coordinator must answer
	// with a version covering the token (read-your-writes + monotonic
	// reads) or widen the read until one is found.
	Token []ClockEntry
	// DeadlineMs is the client's remaining per-op budget in milliseconds at
	// send time. Relative (not an absolute wall time) so it needs no clock
	// agreement between client and coordinator. The coordinator clamps its
	// own op timeout to it and sheds work it cannot finish in time; zero
	// means no client deadline.
	DeadlineMs uint64
}

// ReadResponse is the coordinator's reply to a ReadRequest.
type ReadResponse struct {
	ID    uint64
	Found bool
	Value Value
	// Stale is meaningful only when the request had Shadow set: it reports
	// whether a read at level ALL returned a newer timestamp than the
	// primary read.
	Stale bool
	// Achieved echoes the consistency level actually used (Harmony may
	// override the client's hint).
	Achieved ConsistencyLevel
}

// WriteRequest is a client-to-coordinator write (upsert or delete).
type WriteRequest struct {
	ID     uint64
	Key    []byte
	Value  []byte
	Delete bool
	Level  ConsistencyLevel
	// DeadlineMs is the client's remaining per-op budget in milliseconds at
	// send time (see ReadRequest.DeadlineMs); zero means none.
	DeadlineMs uint64
	// TsHint, when nonzero, is the mutation timestamp the coordinator must
	// stamp instead of generating its own. Retrying clients reuse the first
	// attempt's hint so a replayed write carries the identical timestamp and
	// LWW-collapses into the original application instead of appearing as a
	// second, newer write.
	TsHint int64
}

// WriteResponse acknowledges a WriteRequest.
type WriteResponse struct {
	ID        uint64
	OK        bool
	Timestamp int64
	// Clock is the vector clock the coordinator stamped on the written
	// value; sessions fold it into their token so subsequent SESSION reads
	// observe the write.
	Clock []ClockEntry
}

// ReplicaRead is a coordinator-to-replica data read.
type ReplicaRead struct {
	ID  uint64
	Key []byte
}

// ReplicaReadResp carries the replica's local version (zero Value with
// Found=false when absent).
type ReplicaReadResp struct {
	ID    uint64
	Found bool
	Value Value
}

// Mutation is a coordinator-to-replica replicated write.
type Mutation struct {
	ID    uint64
	Key   []byte
	Value Value
	// Hint marks a hinted-handoff replay destined for a node that was down
	// at write time.
	Hint bool
}

// MutationAck acknowledges a Mutation.
type MutationAck struct {
	ID uint64
}

// Repair is a read-repair write sent in the background to stale replicas. It
// needs no ack: repair is best-effort, like Cassandra's.
type Repair struct {
	Key   []byte
	Value Value
}

// StatsRequest asks a node for its counters; the monitoring module's
// nodetool substitute.
type StatsRequest struct {
	ID uint64
}

// StatsResponse carries cumulative per-node counters since process start.
type StatsResponse struct {
	ID          uint64
	Reads       uint64 // client reads coordinated
	Writes      uint64 // client writes coordinated
	ReplicaOps  uint64 // replica-level operations served
	BytesRead   uint64
	BytesWrit   uint64
	RepairsSent uint64
	HintsQueued uint64
	// RepairRows / RepairAgeMs are the anti-entropy divergence gauge: how
	// many locally-stale rows repair sessions have healed on this node, and
	// the summed age (now − row timestamp, milliseconds) of those rows at
	// heal time. A recovering replica shows a burst of repaired old rows;
	// once anti-entropy converges the counters stop moving, so the monitor's
	// windowed delta is a live "divergence being discovered" signal.
	RepairRows  uint64
	RepairAgeMs uint64
	// RecoveredRows is the number of rows the node's storage engine rebuilt
	// from its data dir at startup (hint files + log tail replay). Zero for
	// memory-backed nodes; constant after startup, so the monitor reads it
	// as "how much pre-crash state a restarted node brought back itself"
	// versus rows anti-entropy had to heal (RepairRows).
	RecoveredRows uint64
	// AliveMembers is how many cluster members (including itself) this
	// node's failure detector currently believes are up. Zero means the
	// node has no liveness source wired (the monitor then skips the
	// availability clamp). During a partition each side reports only the
	// members it can still reach, which lets the controller stop
	// commanding consistency levels the reachable replica count cannot
	// serve.
	AliveMembers uint64
	// Groups carries per-key-group operation counters, indexed by group id
	// (the node's GroupFn assigns keys to groups). Empty when the node
	// tallies a single implicit group; the aggregate counters above always
	// cover all traffic regardless.
	Groups []GroupCounters
	// Epoch is the grouping epoch the per-group counters belong to. Group
	// counters re-baseline (restart from zero) whenever a node applies a
	// GroupUpdate, so samples from different epochs must never be mixed:
	// the monitor discards group counters whose epoch disagrees with the
	// round's consensus. Zero for clusters that never regroup.
	Epoch uint64
	// KeySamples is the node's view of its hottest coordinated keys: the
	// top keys of a decayed per-key access tally, the raw material the
	// regrouping subsystem clusters into consistency categories. Empty
	// when key sampling is disabled.
	KeySamples []KeySample
}

// GroupCounters is one key group's cumulative coordinated-operation tally.
type GroupCounters struct {
	Reads  uint64
	Writes uint64
	// BytesWritten is the group's cumulative coordinated write payload, so
	// the monitor can derive a per-group mean write size (groups with
	// different payload sizes get distinct Tp estimates).
	BytesWritten uint64
	// RepairRows / RepairAgeMs split the anti-entropy divergence gauge by
	// key group (see StatsResponse), so the controller can tighten exactly
	// the groups whose data a recovering replica is serving stale.
	RepairRows  uint64
	RepairAgeMs uint64
}

// KeySample is one key's exponentially decayed read/write weight as sampled
// by a storage node. Weights are decayed floats, not counters: each stats
// poll multiplies them down, so a key that stops being accessed fades out of
// the sample within a few rounds.
type KeySample struct {
	Key    []byte
	Reads  float64
	Writes float64
}

// GroupUpdate is an epoch-versioned key-grouping assignment broadcast by
// the regrouping subsystem to every storage node: which group each sampled
// key belongs to, each group's tolerable stale-read rate, and the group
// unassigned keys default to. A node applies an update exactly once per
// epoch (stale or duplicate epochs are ignored), atomically swapping its
// GroupFn and re-baselining its per-group counters so telemetry from epoch
// e is never mixed with epoch e+1.
type GroupUpdate struct {
	// Epoch strictly increases with every assignment change.
	Epoch uint64
	// Tolerances holds one tolerable stale-read rate per group; its length
	// is the group count of the new assignment.
	Tolerances []float64
	// Default is the group for keys absent from Entries (index into
	// Tolerances); unseen keys are by construction cold, so this is
	// normally the loosest group.
	Default uint32
	// Entries maps the sampled keys to their groups.
	Entries []GroupAssign
}

// GroupAssign is one key→group binding of a GroupUpdate.
type GroupAssign struct {
	Key   []byte
	Group uint32
}

// TokenRange is a half-open arc (Start, End] of the 64-bit token ring. A
// wrapping range (Start >= End) covers (Start, 2^64) ∪ [0, End]. Ranges are
// derived deterministically from the ring's vnode tokens, so every node
// computes identical range boundaries without coordination.
type TokenRange struct {
	Start, End uint64
}

// Contains reports whether token t falls inside the range.
func (r TokenRange) Contains(t uint64) bool {
	if r.Start < r.End {
		return t > r.Start && t <= r.End
	}
	return t > r.Start || t <= r.End // wrapping arc
}

// TreeRequest asks a replica to build (or fetch cached) Merkle trees over
// the given token ranges of its local engine — the validation phase of an
// anti-entropy repair session.
type TreeRequest struct {
	ID     uint64
	Ranges []TokenRange
}

// RangeTree is one range's Merkle tree: the root hash plus every leaf hash,
// in leaf order. Exchanging whole trees (Cassandra's validation protocol)
// costs one round trip; the initiator diffs the leaves locally. Tree size is
// proportional to the configured leaf count, never to the data.
type RangeTree struct {
	Range  TokenRange
	Root   uint64
	Leaves []uint64
}

// TreeResponse carries the responder's trees back to the session initiator.
type TreeResponse struct {
	ID    uint64
	Trees []RangeTree
}

// LeafRef names one divergent Merkle leaf within a session.
type LeafRef struct {
	Range TokenRange
	Leaf  uint32
}

// SyncEntry is one key/value streamed during range synchronization.
// Tombstones ride along so deletes anti-entropy the same way writes do.
type SyncEntry struct {
	Key   []byte
	Value Value
}

// RangeSync streams the rows of divergent Merkle leaves between the two
// endpoints of a repair session. The initiator sends its rows with
// Reply=true; the responder applies them (last-writer-wins through the
// normal storage path) and answers with its own rows for the same leaves at
// Reply=false, so after one exchange both replicas hold the union of newest
// versions. Done marks the final chunk of a direction.
type RangeSync struct {
	ID uint64
	// LeafCount is the per-range Merkle leaf count the Leaves indices were
	// computed against — the INITIATOR's resolution. The responder selects
	// its reply rows at this resolution, so replicas configured with
	// different LeavesPerRange still converge (the diff conservatively
	// marks every leaf divergent when counts mismatch).
	LeafCount uint32
	Leaves    []LeafRef
	Entries   []SyncEntry
	Reply     bool
	Done      bool
}

// Ping measures pairwise latency; the monitoring module's ping substitute.
type Ping struct {
	ID   uint64
	Sent int64 // sender clock, UnixNano
}

// Pong answers a Ping, echoing the original send time.
type Pong struct {
	ID   uint64
	Sent int64
}

// GossipSyn carries heartbeat digests: node id -> (generation, version).
type GossipSyn struct {
	From    string
	Digests []GossipEntry
}

// GossipAck answers a GossipSyn with the sender's newer state.
type GossipAck struct {
	From    string
	Entries []GossipEntry
}

// GossipEntry is one node's heartbeat state.
type GossipEntry struct {
	Node       string
	Generation uint64
	Version    uint64
}

// Error reports a coordination failure (timeout, unavailable).
type Error struct {
	ID   uint64
	Code ErrorCode
	Msg  string
}

// ErrorCode classifies failures.
type ErrorCode uint8

// Error codes.
const (
	ErrUnknown ErrorCode = iota
	ErrTimeout
	ErrUnavailable
	ErrBadRequest
	// ErrOverloaded is the coordinator's fail-fast reply when its bounded
	// in-flight op budget is exhausted: load is shed immediately instead of
	// queueing work that would time out anyway.
	ErrOverloaded
)

func (e ErrorCode) String() string {
	switch e {
	case ErrTimeout:
		return "timeout"
	case ErrUnavailable:
		return "unavailable"
	case ErrBadRequest:
		return "bad-request"
	case ErrOverloaded:
		return "overloaded"
	}
	return "unknown"
}

// Message is implemented by every wire message.
type Message interface {
	Kind() Kind
}

// Kind implementations.
func (ReadRequest) Kind() Kind     { return KindReadRequest }
func (ReadResponse) Kind() Kind    { return KindReadResponse }
func (WriteRequest) Kind() Kind    { return KindWriteRequest }
func (WriteResponse) Kind() Kind   { return KindWriteResponse }
func (ReplicaRead) Kind() Kind     { return KindReplicaRead }
func (ReplicaReadResp) Kind() Kind { return KindReplicaReadResp }
func (Mutation) Kind() Kind        { return KindMutation }
func (MutationAck) Kind() Kind     { return KindMutationAck }
func (Repair) Kind() Kind          { return KindRepair }
func (StatsRequest) Kind() Kind    { return KindStatsRequest }
func (StatsResponse) Kind() Kind   { return KindStatsResponse }
func (Ping) Kind() Kind            { return KindPing }
func (Pong) Kind() Kind            { return KindPong }
func (GossipSyn) Kind() Kind       { return KindGossipSyn }
func (GossipAck) Kind() Kind       { return KindGossipAck }
func (Error) Kind() Kind           { return KindError }
func (GroupUpdate) Kind() Kind     { return KindGroupUpdate }
func (TreeRequest) Kind() Kind     { return KindTreeRequest }
func (TreeResponse) Kind() Kind    { return KindTreeResponse }
func (RangeSync) Kind() Kind       { return KindRangeSync }

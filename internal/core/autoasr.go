package core

import (
	"fmt"
	"math"
)

// This file implements the second future-work item of the paper's §VII:
// "propose a mechanism that models the application and computes the stale
// read rate that can be tolerated automatically." The paper only sketches
// the idea (§III offers a naive 25/50/75% ladder); Advisor turns the two
// signals the paper's motivation section uses — how costly a stale read is
// for the application versus how costly added latency is — into a concrete
// app_stale_rate.
//
// The model: consistency is an economic tradeoff. Serving one stale read
// costs the application StaleCost (anomalies, compensation, support — the
// web-shop's oversold item). Raising the consistency level costs latency;
// LatencyCost prices one extra millisecond on the read path (lost
// conversions, SLA). Given the cluster's current estimate of how expensive
// freshness is (the latency gap between eventual and strong reads), the
// advisor picks the tolerance that minimizes expected cost per read.

// AppProfile describes an application's sensitivity to the two failure
// modes of the consistency-performance tradeoff.
type AppProfile struct {
	// StaleCost is the application cost of serving one stale read,
	// normalized to arbitrary cost units (e.g. cents).
	StaleCost float64
	// LatencyCostPerMs is the cost of one additional millisecond of read
	// latency, in the same units.
	LatencyCostPerMs float64
	// CriticalReads marks applications where any stale read is an error
	// (payments, inventory commits): the advisor returns 0 regardless of
	// costs.
	CriticalReads bool
	// ArchivalReads marks applications that never act on freshness
	// (analytics over immutable archives): the advisor returns 1.
	ArchivalReads bool
}

// Validate rejects profiles with negative costs.
func (p AppProfile) Validate() error {
	if p.StaleCost < 0 || p.LatencyCostPerMs < 0 {
		return fmt.Errorf("core: negative costs in app profile %+v", p)
	}
	return nil
}

// Advisor computes tolerable stale-read rates from an application profile
// and the observed cost of consistency on the current cluster.
type Advisor struct {
	Profile AppProfile
	// FreshnessLatencyMs is the measured read-latency gap between eventual
	// and strong consistency on the target cluster (milliseconds); callers
	// typically measure it with two short calibration runs. Zero falls
	// back to a conservative 1 ms.
	FreshnessLatencyMs float64
}

// Recommend returns app_stale_rate in [0, 1].
//
// Derivation: at tolerance t, Harmony admits (at most) a fraction t of stale
// reads, costing t·StaleCost per read; pushing the tolerance down forces
// higher consistency levels, costing up to (1−t)·Gap·LatencyCostPerMs per
// read (linearly interpolating the latency gap across the tolerance range).
// Expected cost  C(t) = t·S + (1−t)·G·L  is linear, so the optimum sits at
// an endpoint; the advisor softens the all-or-nothing answer with a logistic
// blend around the indifference point S = G·L, which keeps the
// recommendation stable when the two costs are comparable (the regime the
// paper's 25/50/75% ladder addresses).
func (a Advisor) Recommend() (float64, error) {
	if err := a.Profile.Validate(); err != nil {
		return 0, err
	}
	if a.Profile.CriticalReads {
		return 0, nil
	}
	if a.Profile.ArchivalReads {
		return 1, nil
	}
	gap := a.FreshnessLatencyMs
	if gap <= 0 {
		gap = 1
	}
	latencyCost := gap * a.Profile.LatencyCostPerMs
	staleCost := a.Profile.StaleCost
	switch {
	case staleCost == 0 && latencyCost == 0:
		return 0.5, nil // indifferent: the paper's "average consistency"
	case staleCost == 0:
		return 1, nil
	case latencyCost == 0:
		return 0, nil
	}
	// Logistic blend in log-cost space: equal costs -> 0.5; an order of
	// magnitude either way saturates toward 0.1 / 0.9.
	x := math.Log10(latencyCost / staleCost)
	t := 1 / (1 + math.Exp(-2.2*x))
	return clamp01(t), nil
}

// RecommendLadder maps the continuous recommendation onto the paper's §III
// discrete ladder (0%, 25%, 50%, 75%, 100%), for operators who want the
// coarse knob the paper describes.
func (a Advisor) RecommendLadder() (float64, error) {
	t, err := a.Recommend()
	if err != nil {
		return 0, err
	}
	steps := []float64{0, 0.25, 0.5, 0.75, 1}
	best, bestD := steps[0], math.Abs(t-steps[0])
	for _, s := range steps[1:] {
		if d := math.Abs(t - s); d < bestD {
			best, bestD = s, d
		}
	}
	return best, nil
}

package repair

import (
	"sync"
	"sync/atomic"
	"time"

	"harmony/internal/ring"
	"harmony/internal/sim"
	"harmony/internal/storage"
	"harmony/internal/transport"
	"harmony/internal/wire"
)

// Options are the user-facing knobs of the anti-entropy subsystem (the part
// that rides on cluster.Spec).
type Options struct {
	// Enabled turns the subsystem on.
	Enabled bool
	// Interval is how often the scheduler considers starting a new session;
	// zero means 1s. One session covers every range shared with one peer,
	// so a full cycle over all peers takes len(peers)*Interval/Concurrency.
	Interval time.Duration
	// SessionTimeout abandons a session whose peer stopped answering; zero
	// means 5s.
	SessionTimeout time.Duration
	// Concurrency caps concurrently outstanding initiator sessions; zero
	// means 2. Responder work is not capped (it is stateless per message).
	Concurrency int
	// LeavesPerRange is the Merkle resolution: divergence is detected and
	// streamed at leaf granularity, so finer leaves stream fewer intact
	// rows per divergent key at the cost of bigger tree exchanges. Zero
	// means 8.
	LeavesPerRange int
	// AgeCap bounds one healed row's contribution to the divergence gauge
	// (bulk-loaded history would otherwise dominate it); zero means 30s.
	AgeCap time.Duration
}

func (o Options) withDefaults() Options {
	if o.Interval <= 0 {
		o.Interval = time.Second
	}
	if o.SessionTimeout <= 0 {
		o.SessionTimeout = 5 * time.Second
	}
	if o.Concurrency <= 0 {
		o.Concurrency = 2
	}
	if o.LeavesPerRange <= 0 {
		o.LeavesPerRange = 8
	}
	if o.AgeCap <= 0 {
		o.AgeCap = 30 * time.Second
	}
	return o
}

// Config wires a Manager into its node.
type Config struct {
	// Self is the owning node's identity on the fabric.
	Self ring.NodeID
	// Ring and Strategy determine the repair plan (ranges and peers).
	Ring     *ring.Ring
	Strategy ring.Strategy
	// Engine is the local storage the trees summarize and repairs apply to.
	Engine *storage.Engine
	// Options tune the subsystem.
	Options Options
	// OnHealed observes every row a repair session changed locally (the row
	// was missing or older here): the hook the node uses to tally the
	// per-group divergence gauge. age is now − row timestamp, capped at
	// Options.AgeCap. Runs on the node's runtime.
	OnHealed func(key []byte, v wire.Value, age time.Duration)
}

// Manager runs one node's half of anti-entropy repair. All message handling
// executes on the node's runtime (the node routes repair messages here);
// Invalidate and PeerRecovered are safe to call from other goroutines.
type Manager struct {
	cfg   Config
	opts  Options
	rt    sim.Runtime
	send  transport.Sender
	plan  Plan
	cache *TreeCache

	stop     func()
	nextID   uint64
	nextPeer int
	// triggered peers (node recovery) jump the round-robin queue.
	triggered []ring.NodeID
	active    map[uint64]*session // initiator sessions by id
	byPeer    map[ring.NodeID]uint64
	activeN   atomic.Int64 // len(active), readable off the actor goroutine

	mu    sync.Mutex
	stats Stats
}

// ActiveSessions reports how many initiator sessions are currently in
// flight. Safe from any goroutine (the session map itself is actor-owned).
func (m *Manager) ActiveSessions() int { return int(m.activeN.Load()) }

// session is the initiator-side state of one pairwise exchange.
type session struct {
	id     uint64
	peer   ring.NodeID
	mine   map[wire.TokenRange]wire.RangeTree
	cancel func()
}

// Stats are cumulative counters of the subsystem's work.
type Stats struct {
	SessionsStarted   uint64
	SessionsCompleted uint64
	SessionsTimedOut  uint64
	SessionsAbandoned uint64 // doomed sessions cut short by a recovery trigger
	RangesChecked     uint64 // ranges diffed across sessions
	RangesDivergent   uint64
	LeavesSynced      uint64 // divergent leaves streamed (initiator side)
	RowsStreamed      uint64 // rows sent in RangeSync, both roles
	BytesStreamed     uint64 // key+payload bytes of those rows
	RowsHealed        uint64 // rows applied locally that changed the engine
	AgeHealedMs       uint64 // summed capped age of healed rows
}

// NewManager builds the repair plan and tree cache for a node. Wire
// Invalidate into the engine's OnApply hook and route the repair wire
// messages to Deliver; call Start for periodic sessions.
func NewManager(cfg Config, rt sim.Runtime, send transport.Sender) *Manager {
	opts := cfg.Options.withDefaults()
	plan := BuildPlan(cfg.Ring, cfg.Strategy, cfg.Self)
	return &Manager{
		cfg:    cfg,
		opts:   opts,
		rt:     rt,
		send:   send,
		plan:   plan,
		cache:  NewTreeCache(cfg.Engine, plan.Ranges, opts.LeavesPerRange),
		active: make(map[uint64]*session),
		byPeer: make(map[ring.NodeID]uint64),
	}
}

// Plan exposes the node's repair topology (tests).
func (m *Manager) Plan() Plan { return m.plan }

// Stats returns a snapshot of the cumulative counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

func (m *Manager) bump(fn func(*Stats)) {
	m.mu.Lock()
	fn(&m.stats)
	m.mu.Unlock()
}

// Invalidate marks the Merkle range containing key stale, forcing a full
// rebuild at the next session. Safe from any goroutine; Applied is the
// cheap path the node normally uses.
func (m *Manager) Invalidate(key []byte) { m.cache.Invalidate(key) }

// Applied folds one accepted mutation into the cached Merkle tree in place
// (storage.Options.OnReplace ships the displaced version). The node calls
// it for every accepted mutation — client writes, read repair, hint
// replays, and repair streams themselves — so trees stay current without
// per-session O(arc) engine scans. Must run on the node's runtime, which
// serializes it against the session message handlers (see TreeCache.Update
// for why).
func (m *Manager) Applied(key []byte, old wire.Value, hadOld bool, v wire.Value) {
	m.cache.Update(key, old, hadOld, v)
}

// TreeCache exposes the manager's Merkle cache (tests).
func (m *Manager) TreeCache() *TreeCache { return m.cache }

// Start begins periodic session scheduling.
func (m *Manager) Start() {
	if m.stop != nil {
		return
	}
	m.stop = sim.Every(m.rt, func() time.Duration { return m.opts.Interval }, m.tick)
}

// Stop halts scheduling; in-flight sessions expire via their timeouts.
func (m *Manager) Stop() {
	if m.stop != nil {
		m.stop()
		m.stop = nil
	}
}

// PeerRecovered queues an immediate session with a peer that just returned
// from an outage (the gossip recovery trigger). Safe to call from any
// goroutine: the work hops onto the node's runtime.
func (m *Manager) PeerRecovered(peer ring.NodeID) {
	m.rt.After(0, func() {
		if _, shares := m.plan.Shared[peer]; !shares {
			return
		}
		// A session opened while the peer was down is doomed — its
		// TreeRequest fell into the dead network and it would pin the peer
		// "busy" until the session timeout, swallowing this trigger exactly
		// when repair matters most. Abandon it and start fresh.
		if id, busy := m.byPeer[peer]; busy {
			if s, ok := m.active[id]; ok {
				m.bump(func(st *Stats) { st.SessionsAbandoned++ })
				m.finish(s)
			}
		}
		for _, q := range m.triggered {
			if q == peer {
				return
			}
		}
		m.triggered = append(m.triggered, peer)
		m.tick()
	})
}

// tick starts sessions until the concurrency cap is reached, serving
// recovery-triggered peers before the round-robin cycle. At most
// Concurrency sessions start per tick even when sessions complete
// instantly (a synchronous fabric would otherwise spin here forever).
func (m *Manager) tick() {
	for started := 0; len(m.active) < m.opts.Concurrency && started < m.opts.Concurrency; started++ {
		peer, ok := m.pickPeer()
		if !ok {
			return
		}
		m.startSession(peer)
	}
}

func (m *Manager) pickPeer() (ring.NodeID, bool) {
	for len(m.triggered) > 0 {
		p := m.triggered[0]
		m.triggered = m.triggered[1:]
		if _, busy := m.byPeer[p]; !busy {
			return p, true
		}
	}
	for scanned := 0; scanned < len(m.plan.Peers); scanned++ {
		p := m.plan.Peers[m.nextPeer%len(m.plan.Peers)]
		m.nextPeer++
		if _, busy := m.byPeer[p]; !busy {
			return p, true
		}
	}
	return "", false
}

func (m *Manager) startSession(peer ring.NodeID) {
	ranges := m.plan.Shared[peer]
	if len(ranges) == 0 {
		return
	}
	m.nextID++
	s := &session{id: m.nextID, peer: peer, mine: make(map[wire.TokenRange]wire.RangeTree, len(ranges))}
	for _, t := range m.cache.Trees(ranges) {
		s.mine[t.Range] = t
	}
	m.active[s.id] = s
	m.activeN.Store(int64(len(m.active)))
	m.byPeer[peer] = s.id
	m.bump(func(st *Stats) { st.SessionsStarted++ })
	s.cancel = m.rt.After(m.opts.SessionTimeout, func() {
		if _, live := m.active[s.id]; live {
			m.bump(func(st *Stats) { st.SessionsTimedOut++ })
			m.finish(s)
		}
	})
	m.send.Send(m.cfg.Self, peer, wire.TreeRequest{ID: s.id, Ranges: ranges})
}

func (m *Manager) finish(s *session) {
	if s.cancel != nil {
		s.cancel()
	}
	delete(m.active, s.id)
	m.activeN.Store(int64(len(m.active)))
	if m.byPeer[s.peer] == s.id {
		delete(m.byPeer, s.peer)
	}
}

// Deliver handles the three repair message kinds. It must run on the node's
// runtime, like every other node message handler.
func (m *Manager) Deliver(from ring.NodeID, msg wire.Message) {
	switch v := msg.(type) {
	case wire.TreeRequest:
		m.onTreeRequest(from, v)
	case wire.TreeResponse:
		m.onTreeResponse(from, v)
	case wire.RangeSync:
		m.onRangeSync(from, v)
	}
}

// onTreeRequest serves the responder half of validation: build (or reuse)
// trees for the requested ranges and ship them back whole — one round trip,
// with the diff computed initiator-side.
func (m *Manager) onTreeRequest(from ring.NodeID, req wire.TreeRequest) {
	trees := m.cache.Trees(req.Ranges)
	m.send.Send(m.cfg.Self, from, wire.TreeResponse{ID: req.ID, Trees: trees})
}

// onTreeResponse diffs the peer's trees against ours and streams our rows
// for every divergent leaf. Identical ranges cost one root comparison and
// zero streaming.
func (m *Manager) onTreeResponse(from ring.NodeID, resp wire.TreeResponse) {
	s, ok := m.active[resp.ID]
	if !ok || s.peer != from {
		return
	}
	var leaves []wire.LeafRef
	divergent := 0
	for _, theirs := range resp.Trees {
		mine, have := s.mine[theirs.Range]
		if !have {
			continue
		}
		d := diffLeaves(mine, theirs)
		if len(d) > 0 {
			divergent++
			for _, li := range d {
				leaves = append(leaves, wire.LeafRef{Range: theirs.Range, Leaf: uint32(li)})
			}
		}
	}
	m.bump(func(st *Stats) {
		st.RangesChecked += uint64(len(resp.Trees))
		st.RangesDivergent += uint64(divergent)
		st.LeavesSynced += uint64(len(leaves))
	})
	if len(leaves) == 0 {
		m.bump(func(st *Stats) { st.SessionsCompleted++ })
		m.finish(s)
		return
	}
	entries := m.entriesForLeaves(leaves, m.opts.LeavesPerRange)
	// Divergent leaves batch into as few RangeSync messages as the byte cap
	// allows — the responder answers each chunk with its own rows for that
	// chunk's leaves (one engine pass per chunk, not per leaf), so both
	// replicas converge to the union of newest versions without further
	// coordination. A leaf whose rows alone exceed the cap is split across
	// chunks, its LeafRef riding only the first (the responder's reply
	// covers a leaf once). Application is last-writer-wins and idempotent,
	// so chunk reordering is harmless.
	var msg wire.RangeSync
	bytes := 0
	flush := func(done bool) {
		msg.ID, msg.LeafCount, msg.Reply, msg.Done = s.id, uint32(m.opts.LeavesPerRange), true, done
		m.accountStream(msg.Entries)
		m.send.Send(m.cfg.Self, s.peer, msg)
		msg, bytes = wire.RangeSync{}, 0
	}
	for i, leaf := range leaves {
		msg.Leaves = append(msg.Leaves, leaf)
		for _, e := range entries[i] {
			sz := len(e.Key) + len(e.Value.Data)
			if bytes > 0 && bytes+sz > maxSyncBytes {
				flush(false)
			}
			msg.Entries = append(msg.Entries, e)
			bytes += sz
		}
	}
	flush(true)
}

// maxSyncBytes caps one RangeSync chunk's row payload (both directions),
// keeping frames well under the wire codec's MaxFrame. It is deliberately
// generous: the responder takes one engine pass per request chunk, so
// fewer, larger chunks amortize that scan over more leaves.
const maxSyncBytes = 4 << 20

// entriesForLeaves collects this engine's rows for each requested leaf, in
// one ScanVersions pass; leafCount is the resolution the leaf indices were
// computed against (the session initiator's, which need not match ours).
// The result is indexed like leaves.
func (m *Manager) entriesForLeaves(leaves []wire.LeafRef, leafCount int) [][]wire.SyncEntry {
	if leafCount <= 0 {
		leafCount = m.opts.LeavesPerRange
	}
	out := make([][]wire.SyncEntry, len(leaves))
	idx := make(map[wire.LeafRef]int, len(leaves))
	// Distinct ranges: arcs are disjoint, so per-row containment tests
	// iterate these instead of every leaf ref.
	var ranges []wire.TokenRange
	seen := make(map[wire.TokenRange]bool, len(leaves))
	for i, l := range leaves {
		idx[l] = i
		if !seen[l.Range] {
			seen[l.Range] = true
			ranges = append(ranges, l.Range)
		}
	}
	m.cfg.Engine.ScanVersions(nil, nil, func(key []byte, v wire.Value) bool {
		tok := uint64(ring.HashKey(key))
		for _, r := range ranges {
			if r.Contains(tok) {
				ref := wire.LeafRef{Range: r, Leaf: uint32(leafIndex(r, leafCount, tok))}
				if i, want := idx[ref]; want {
					k := make([]byte, len(key))
					copy(k, key)
					out[i] = append(out[i], wire.SyncEntry{Key: k, Value: v})
				}
				break
			}
		}
		return true
	})
	return out
}

// onRangeSync is both halves of row streaming. Reply=true (we are the
// responder): apply the initiator's rows and answer with ours for the same
// leaves. Reply=false (we initiated): apply the responder's rows and close
// the session on Done. Application always goes through the normal storage
// path, so last-writer-wins reconciliation, commit logging and tree
// invalidation all happen exactly as for a foreground write.
func (m *Manager) onRangeSync(from ring.NodeID, msg wire.RangeSync) {
	applied := m.applyEntries(msg.Entries)
	if msg.Reply {
		entries := m.entriesForLeaves(msg.Leaves, int(msg.LeafCount))
		var flat []wire.SyncEntry
		for _, es := range entries {
			for _, e := range es {
				if applied[string(e.Key)] {
					// The initiator's version just won here: echoing it back
					// would only re-stream a row the initiator already has.
					continue
				}
				flat = append(flat, e)
			}
		}
		// The reply chunks under the same byte cap as the request direction
		// (a near-empty initiator can name every leaf in one message, but
		// our rows for them must still fit the wire's frame limit). Done
		// rides only on the final chunk.
		for first := true; first || len(flat) > 0; first = false {
			n, bytes := 0, 0
			for n < len(flat) {
				sz := len(flat[n].Key) + len(flat[n].Value.Data)
				if n > 0 && bytes+sz > maxSyncBytes {
					break
				}
				bytes += sz
				n++
			}
			reply := wire.RangeSync{ID: msg.ID, Entries: flat[:n], Done: msg.Done && n == len(flat)}
			if first {
				reply.Leaves = msg.Leaves
			}
			flat = flat[n:]
			m.accountStream(reply.Entries)
			m.send.Send(m.cfg.Self, from, reply)
		}
		return
	}
	if msg.Done {
		if s, ok := m.active[msg.ID]; ok && s.peer == from {
			m.bump(func(st *Stats) { st.SessionsCompleted++ })
			m.finish(s)
		}
	}
}

// applyEntries applies streamed rows through the normal storage path and
// returns the keys whose local copy actually changed (the incoming version
// won last-writer-wins).
func (m *Manager) applyEntries(entries []wire.SyncEntry) map[string]bool {
	if len(entries) == 0 {
		return nil
	}
	won := make(map[string]bool, len(entries))
	now := m.rt.Now()
	for _, e := range entries {
		applied, err := m.cfg.Engine.Apply(e.Key, e.Value)
		if err != nil || !applied {
			continue // older than local, or identical: nothing healed
		}
		won[string(e.Key)] = true
		age := now.Sub(e.Value.Time())
		if age < 0 {
			age = 0
		}
		if age > m.opts.AgeCap {
			age = m.opts.AgeCap
		}
		m.bump(func(st *Stats) {
			st.RowsHealed++
			st.AgeHealedMs += uint64(age.Milliseconds())
		})
		if m.cfg.OnHealed != nil {
			m.cfg.OnHealed(e.Key, e.Value, age)
		}
	}
	return won
}

func (m *Manager) accountStream(entries []wire.SyncEntry) {
	var rows, bytes uint64
	for _, e := range entries {
		rows++
		bytes += uint64(len(e.Key) + len(e.Value.Data))
	}
	m.bump(func(st *Stats) {
		st.RowsStreamed += rows
		st.BytesStreamed += bytes
	})
}

var _ transport.Handler = (*Manager)(nil)

package grouping

import (
	"fmt"
	"math"
	"testing"
	"time"

	"harmony/internal/core"
	"harmony/internal/ring"
	"harmony/internal/wire"
)

func TestAssignmentRoundTrip(t *testing.T) {
	a, err := NewAssignment(7, []float64{0.02, 0.3, 0.9}, 2, map[string]int{
		"hot0": 0, "warm0": 1, "cold0": 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	u := a.ToWire()
	if u.Epoch != 7 || len(u.Tolerances) != 3 || u.Default != 2 || len(u.Entries) != 3 {
		t.Fatalf("wire form = %+v", u)
	}
	// Through the codec and back.
	b, err := wire.Encode(nil, u)
	if err != nil {
		t.Fatal(err)
	}
	decoded, _, err := wire.Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	back, err := FromWire(decoded.(wire.GroupUpdate))
	if err != nil {
		t.Fatal(err)
	}
	if !a.EquivalentTo(back) || back.Epoch() != 7 || back.Groups() != 3 || back.Default() != 2 {
		t.Fatalf("round trip lost information: %+v", back)
	}
	if back.GroupOf([]byte("hot0")) != 0 || back.GroupOf([]byte("never-seen")) != 2 {
		t.Fatal("group lookup broken after round trip")
	}
}

func TestAssignmentValidation(t *testing.T) {
	if _, err := NewAssignment(1, nil, 0, nil); err == nil {
		t.Fatal("empty tolerance table accepted")
	}
	if _, err := NewAssignment(1, []float64{math.NaN()}, 0, nil); err == nil {
		t.Fatal("NaN tolerance accepted")
	}
	a, err := NewAssignment(1, []float64{-0.5, 1.5}, 99, map[string]int{"k": 7, "ok": 1})
	if err != nil {
		t.Fatal(err)
	}
	tols := a.Tolerances()
	if tols[0] != 0 || tols[1] != 1 {
		t.Fatalf("tolerances not clamped: %v", tols)
	}
	if a.Default() != 1 {
		t.Fatalf("out-of-range default = %d, want clamped to last group", a.Default())
	}
	if a.Len() != 1 || a.GroupOf([]byte("k")) != 1 {
		t.Fatal("out-of-range entry not dropped to default")
	}
}

func TestAssignmentEquivalence(t *testing.T) {
	base, _ := NewAssignment(1, []float64{0.1, 0.5}, 1, map[string]int{"h": 0})
	// A new key explicitly assigned to the default group changes nothing.
	absorbed, _ := NewAssignment(2, []float64{0.1, 0.5}, 1, map[string]int{"h": 0, "c": 1})
	if !base.EquivalentTo(absorbed) || !absorbed.EquivalentTo(base) {
		t.Fatal("default-group addition should be equivalent")
	}
	// Moving a key is a real change, in either direction.
	moved, _ := NewAssignment(2, []float64{0.1, 0.5}, 1, map[string]int{"h": 1})
	if base.EquivalentTo(moved) {
		t.Fatal("moved key reported equivalent")
	}
	// So are tolerance changes.
	retuned, _ := NewAssignment(2, []float64{0.1, 0.6}, 1, map[string]int{"h": 0})
	if base.EquivalentTo(retuned) {
		t.Fatal("retuned tolerances reported equivalent")
	}
}

// updateSink records GroupUpdate broadcasts per node.
type updateSink struct {
	sent map[ring.NodeID][]wire.GroupUpdate
}

func newUpdateSink() *updateSink {
	return &updateSink{sent: make(map[ring.NodeID][]wire.GroupUpdate)}
}

func (u *updateSink) Send(from, to ring.NodeID, m wire.Message) {
	if up, ok := m.(wire.GroupUpdate); ok {
		u.sent[to] = append(u.sent[to], up)
	}
}

// hotColdSamples fabricates a node's sample report: nHot write-contended
// keys (prefix) and nCold read-mostly keys.
func hotColdSamples(prefix string, nHot, nCold int) []wire.KeySample {
	var out []wire.KeySample
	for i := 0; i < nHot; i++ {
		out = append(out, wire.KeySample{
			Key: []byte(fmt.Sprintf("%s-hot%d", prefix, i)), Reads: 50, Writes: 50,
		})
	}
	for i := 0; i < nCold; i++ {
		out = append(out, wire.KeySample{
			Key: []byte(fmt.Sprintf("%s-cold%d", prefix, i)), Reads: 20, Writes: 0.2,
		})
	}
	return out
}

func newTestRegrouper(t *testing.T, ctl *core.Controller, sink *updateSink) *Regrouper {
	t.Helper()
	r, err := New(Config{
		Self:         "mon",
		Nodes:        []ring.NodeID{"n1", "n2"},
		K:            2,
		MinTolerance: 0.02,
		MaxTolerance: 0.6,
		MinKeys:      10,
		Seed:         42,
		Controller:   ctl,
	}, nil, sink)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRegrouperLearnsAndBroadcasts(t *testing.T) {
	ctl := core.NewController(core.ControllerConfig{
		Policy: core.Policy{ToleratedStaleRate: 0.02}, N: 5, Groups: 2,
		GroupTolerances: []float64{0.02, 0.6},
	})
	sink := newUpdateSink()
	r := newTestRegrouper(t, ctl, sink)

	// Below the MinKeys gate: nothing happens.
	r.IngestStats("n1", wire.StatsResponse{KeySamples: hotColdSamples("a", 2, 2)})
	if r.RegroupNow() {
		t.Fatal("regrouped below the MinKeys gate")
	}

	r.IngestStats("n1", wire.StatsResponse{KeySamples: hotColdSamples("a", 8, 8)})
	r.IngestStats("n2", wire.StatsResponse{KeySamples: hotColdSamples("b", 8, 8)})
	if !r.RegroupNow() {
		t.Fatal("no epoch applied despite a clear hot/cold split")
	}
	cur := r.Current()
	if cur.Epoch() != 1 || cur.Groups() != 2 {
		t.Fatalf("assignment = epoch %d groups %d", cur.Epoch(), cur.Groups())
	}
	// Canonical order: hot keys in the tight group 0, cold in the loose
	// default; unknown keys default loose.
	if g := cur.GroupOf([]byte("a-hot3")); g != 0 {
		t.Fatalf("hot key in group %d", g)
	}
	if g := cur.GroupOf([]byte("b-cold2")); g != 1 {
		t.Fatalf("cold key in group %d", g)
	}
	if g := cur.GroupOf([]byte("unseen")); g != 1 {
		t.Fatalf("unseen key in group %d, want loose default", g)
	}
	tols := cur.Tolerances()
	if tols[0] != 0.02 || tols[1] != 0.6 {
		t.Fatalf("tolerances = %v", tols)
	}
	// Broadcast reached every node; the controller moved in lockstep.
	for _, n := range []ring.NodeID{"n1", "n2"} {
		if len(sink.sent[n]) != 1 || sink.sent[n][0].Epoch != 1 {
			t.Fatalf("node %s broadcasts = %+v", n, sink.sent[n])
		}
	}
	if ctl.Epoch() != 1 || ctl.Groups() != 2 {
		t.Fatalf("controller epoch %d groups %d", ctl.Epoch(), ctl.Groups())
	}

	// Re-clustering an unchanged workload is a no-op: no epoch bump, no
	// broadcast storm.
	if r.RegroupNow() {
		t.Fatal("stable workload bumped the epoch")
	}
	if got := r.Epochs(); got != 1 {
		t.Fatalf("epoch bumps = %d, want 1", got)
	}
	if len(sink.sent["n1"]) != 1 {
		t.Fatal("no-op regroup still broadcast")
	}
}

func TestRegrouperCarryOverExpiresWithoutEvidence(t *testing.T) {
	sink := newUpdateSink()
	r, err := New(Config{
		Self: "mon", Nodes: []ring.NodeID{"n1"},
		K: 2, MinTolerance: 0.02, MaxTolerance: 0.6,
		MinKeys: 10, Seed: 42, MaxCarry: 2,
	}, nil, sink)
	if err != nil {
		t.Fatal(err)
	}
	r.IngestStats("n1", wire.StatsResponse{KeySamples: hotColdSamples("a", 8, 8)})
	if !r.RegroupNow() {
		t.Fatal("initial regroup failed")
	}
	oldHot := []byte("a-hot0")
	if g := r.Current().GroupOf(oldHot); g != 0 {
		t.Fatalf("hot key in group %d", g)
	}

	// The hotspot migrates: the old hot set vanishes from every sample.
	// The first epoch after the migration still carries the old keys (no
	// churn, no premature demotion)...
	r.IngestStats("n1", wire.StatsResponse{KeySamples: hotColdSamples("b", 8, 8)})
	if !r.RegroupNow() {
		t.Fatal("migration did not bump the epoch")
	}
	if g := r.Current().GroupOf(oldHot); g != 0 {
		t.Fatalf("old hot key demoted immediately, want carried (group %d)", g)
	}
	// ...but once MaxCarry evidence-free rounds pass, the next applied
	// epoch drops them back to the default group instead of pinning every
	// past hot range tight forever.
	r.RegroupNow() // carried round 2 (no change -> no epoch)
	r.RegroupNow() // carried round 3: past MaxCarry, but shift too small alone
	r.IngestStats("n1", wire.StatsResponse{KeySamples: hotColdSamples("c", 8, 8)})
	if !r.RegroupNow() {
		t.Fatal("second migration did not bump the epoch")
	}
	if g := r.Current().GroupOf(oldHot); g != r.Current().Default() {
		t.Fatalf("expired carry-over still in group %d, want default", g)
	}
	// The current hot set is tight, and the newer carried set ('b'), still
	// within its carry budget, survives.
	if g := r.Current().GroupOf([]byte("c-hot0")); g != 0 {
		t.Fatalf("current hot key in group %d", g)
	}
	if g := r.Current().GroupOf([]byte("b-hot0")); g != 0 {
		t.Fatalf("recently-carried hot key in group %d, want still tight", g)
	}
}

func TestIngestStatsEmptyReportClearsNode(t *testing.T) {
	sink := newUpdateSink()
	r := newTestRegrouper(t, nil, sink)
	r.IngestStats("n1", wire.StatsResponse{KeySamples: hotColdSamples("a", 8, 8)})
	// The node's sampler drains (all keys decayed out): its cached samples
	// must clear, leaving too few keys to recluster.
	r.IngestStats("n1", wire.StatsResponse{})
	if r.RegroupNow() {
		t.Fatal("reclustered from a stale sample cache")
	}
	if r.Current().Epoch() != 0 {
		t.Fatalf("epoch = %d, want 0", r.Current().Epoch())
	}
}

func TestRegrouperMigratesControllerModels(t *testing.T) {
	ctl := core.NewController(core.ControllerConfig{
		Policy: core.Policy{ToleratedStaleRate: 0.02}, N: 5, Groups: 2,
		GroupTolerances: []float64{0.02, 0.6},
	})
	sink := newUpdateSink()
	r := newTestRegrouper(t, ctl, sink)
	r.IngestStats("n1", wire.StatsResponse{KeySamples: hotColdSamples("a", 10, 10)})
	if !r.RegroupNow() {
		t.Fatal("initial regroup failed")
	}

	// Escalate the (learned) hot group with a contended observation at the
	// controller's current epoch.
	ctl.Observe(core.Observation{
		At: time.Unix(1, 0), ReadRate: 300, WriteInterval: 0.005,
		Latency: time.Millisecond, Epoch: ctl.Epoch(),
		Groups: []core.GroupRates{
			{ReadRate: 300, WriteInterval: 0.005},
			{ReadRate: 1, WriteInterval: 10},
		},
	})
	hotLevel := ctl.ReadLevelFor([]byte("a-hot0"))
	if hotLevel == wire.One {
		t.Fatal("hot group did not escalate")
	}

	// The hot set keeps its incumbents and gains members: the hot group's
	// identity persists, so its escalated model must migrate, not reset.
	samples := hotColdSamples("a", 10, 10)
	for i := 0; i < 3; i++ {
		samples = append(samples, wire.KeySample{
			Key: []byte(fmt.Sprintf("a-newhot%d", i)), Reads: 60, Writes: 60,
		})
	}
	r.IngestStats("n1", wire.StatsResponse{KeySamples: samples})
	if !r.RegroupNow() {
		t.Fatal("membership change did not bump the epoch")
	}
	if r.Current().Epoch() != 2 {
		t.Fatalf("epoch = %d, want 2", r.Current().Epoch())
	}
	if g := r.Current().GroupOf([]byte("a-newhot1")); g != 0 {
		t.Fatalf("new hot key in group %d", g)
	}
	if got := ctl.ReadLevelFor([]byte("a-newhot1")); got != hotLevel {
		t.Fatalf("migrated hot group at %v, want inherited %v", got, hotLevel)
	}
	if got := ctl.ReadLevelFor([]byte("a-cold0")); got != wire.One {
		t.Fatalf("cold group at %v after migration", got)
	}
}

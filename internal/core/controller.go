package core

import (
	"sync"
	"time"

	"harmony/internal/wire"
)

// Policy is an application's consistency requirement expressed the way the
// paper defines it: the fraction of stale reads the application tolerates
// (app_stale_rate). 0 demands strong consistency on every read; 1 accepts
// static eventual consistency.
type Policy struct {
	// Name labels the policy in reports ("Harmony-20%").
	Name string
	// ToleratedStaleRate is app_stale_rate in [0, 1].
	ToleratedStaleRate float64
}

// Validate clamps the tolerance into [0, 1].
func (p Policy) Validate() Policy {
	if p.ToleratedStaleRate < 0 {
		p.ToleratedStaleRate = 0
	}
	if p.ToleratedStaleRate > 1 {
		p.ToleratedStaleRate = 1
	}
	return p
}

// Decision is the controller's output after one observation.
type Decision struct {
	At       time.Time
	Estimate float64 // θ_stale: estimated stale-read rate at CL=ONE
	Xn       int     // replicas a read must block for
	Level    wire.ConsistencyLevel
	Model    Model
}

// ControllerConfig configures the adaptive-consistency module.
type ControllerConfig struct {
	Policy Policy
	// N is the replication factor.
	N int
	// AvgWriteBytes and BandwidthBytesPerSec parameterize Tp(Ln, avgw).
	// A zero AvgWriteBytes uses the monitor's measured mean write size
	// (the paper's avgw is an observed quantity); a zero bandwidth reduces
	// Tp to the network latency alone.
	AvgWriteBytes        float64
	BandwidthBytesPerSec float64
	// UseMeanLatency switches Tp to the mean peer latency instead of the
	// max; the default (max) is conservative: propagation is complete only
	// when the farthest replica has the update.
	UseMeanLatency bool
	// FixedTp, when positive, disables the latency term entirely and uses
	// this constant — the ablation of DESIGN.md §6 showing why monitoring
	// Ln matters (Fig. 4(b)).
	FixedTp time.Duration
	// OnDecision, when set, observes every decision (for tracing/benches).
	OnDecision func(Decision)
}

// Controller is Harmony's adaptive-consistency module: it consumes monitor
// observations, estimates the stale-read rate were reads served at CL=ONE,
// and applies the paper's decision scheme —
//
//	if app_stale_rate ≥ θ_stale: Level = ONE
//	else:                        Level from Xn (equation 8)
//
// Controller implements client.LevelSource, so drivers pick up the current
// level on every read, and it is safe for concurrent use (clients and the
// monitor may live on different runtimes).
type Controller struct {
	cfg ControllerConfig

	mu      sync.Mutex
	level   wire.ConsistencyLevel
	last    Decision
	history []Decision
	keep    int
}

// NewController creates a controller defaulting to eventual consistency
// until the first observation arrives (the paper's default level).
func NewController(cfg ControllerConfig) *Controller {
	cfg.Policy = cfg.Policy.Validate()
	if cfg.N < 1 {
		cfg.N = 1
	}
	return &Controller{cfg: cfg, level: wire.One, keep: 4096}
}

// ReadLevel implements client.LevelSource.
func (c *Controller) ReadLevel() wire.ConsistencyLevel {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.level
}

// Last returns the most recent decision.
func (c *Controller) Last() Decision {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.last
}

// History returns a copy of the retained decision trace.
func (c *Controller) History() []Decision {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Decision, len(c.history))
	copy(out, c.history)
	return out
}

// Observe consumes one monitoring observation and updates the consistency
// level; it is the OnObservation hook for a Monitor.
func (c *Controller) Observe(obs Observation) {
	ln := obs.Latency
	if c.cfg.UseMeanLatency {
		ln = obs.MeanLatency
	}
	avgw := c.cfg.AvgWriteBytes
	if avgw <= 0 {
		avgw = obs.AvgWriteBytes
	}
	tp := PropagationTime(ln, avgw, c.cfg.BandwidthBytesPerSec)
	if c.cfg.FixedTp > 0 {
		tp = c.cfg.FixedTp
	}
	model := Model{
		N:       c.cfg.N,
		LambdaR: obs.ReadRate,
		LambdaW: obs.WriteInterval,
		Tp:      tp,
	}
	d := Decision{At: obs.At, Model: model}
	d.Estimate = model.StaleReadProbability()
	if !model.Valid() || c.cfg.Policy.ToleratedStaleRate >= d.Estimate {
		// No signal, or the application tolerates the estimated staleness:
		// eventual consistency.
		d.Xn = 1
		d.Level = wire.One
	} else {
		d.Xn = model.ReplicasNeeded(c.cfg.Policy.ToleratedStaleRate)
		d.Level = wire.LevelForCount(d.Xn, c.cfg.N)
	}

	c.mu.Lock()
	c.level = d.Level
	c.last = d
	c.history = append(c.history, d)
	if len(c.history) > c.keep {
		c.history = c.history[len(c.history)-c.keep:]
	}
	cb := c.cfg.OnDecision
	c.mu.Unlock()
	if cb != nil {
		cb(d)
	}
}

// Policy returns the controller's policy.
func (c *Controller) Policy() Policy { return c.cfg.Policy }

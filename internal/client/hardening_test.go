package client

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"harmony/internal/ring"
	"harmony/internal/sim"
	"harmony/internal/transport"
	"harmony/internal/wire"
)

// newMultiFixture wires a driver against n scripted coordinators c1..cn on a
// loopback fabric. Each coordinator gets its own respond hook.
func newMultiFixture(t *testing.T, opts Options, n int, respond func(co int, m wire.Message) wire.Message) (*sim.Sim, *Driver, []*fakeCoordinator) {
	t.Helper()
	s := sim.New(1)
	bus := transport.NewLoopback()
	cos := make([]*fakeCoordinator, n)
	for i := 0; i < n; i++ {
		i := i
		id := ring.NodeID("c" + string(rune('1'+i)))
		cos[i] = &fakeCoordinator{bus: bus, id: id}
		cos[i].respond = func(m wire.Message) wire.Message { return respond(i, m) }
		bus.Register(id, cos[i])
		opts.Coordinators = append(opts.Coordinators, id)
	}
	opts.ID = "cl"
	drv, err := New(opts, s, bus)
	if err != nil {
		t.Fatal(err)
	}
	bus.Register("cl", drv)
	return s, drv, cos
}

func TestRetryFailsOverToNextCoordinator(t *testing.T) {
	s, drv, cos := newMultiFixture(t, Options{
		Timeout: 500 * time.Millisecond, MaxAttempts: 3,
		RetryBackoff: time.Millisecond, RetryBackoffMax: 4 * time.Millisecond,
	}, 3, func(co int, m wire.Message) wire.Message {
		req := m.(wire.ReadRequest)
		if co < 2 {
			return wire.Error{ID: req.ID, Code: wire.ErrUnavailable, Msg: "need 2 replicas"}
		}
		return wire.ReadResponse{ID: req.ID, Found: true, Value: wire.Value{Data: []byte("v3"), Timestamp: 4}}
	})
	var got ReadResult
	drv.ReadAt([]byte("k"), wire.Quorum, func(r ReadResult) { got = r })
	s.RunUntilIdle(10_000)
	if got.Err != nil || string(got.Value) != "v3" {
		t.Fatalf("read = %+v", got)
	}
	if len(cos[0].requests) != 1 || len(cos[1].requests) != 1 || len(cos[2].requests) != 1 {
		t.Fatalf("attempt spread = %d/%d/%d, want 1/1/1",
			len(cos[0].requests), len(cos[1].requests), len(cos[2].requests))
	}
	if drv.Retries() != 2 {
		t.Fatalf("retries = %d, want 2", drv.Retries())
	}
	if drv.Pending() != 0 {
		t.Fatal("pending leaked")
	}
}

func TestRetryExhaustionWrapsContext(t *testing.T) {
	s, drv, _ := newMultiFixture(t, Options{
		Timeout: 500 * time.Millisecond, MaxAttempts: 3,
		RetryBackoff: time.Millisecond,
	}, 2, func(_ int, m wire.Message) wire.Message {
		return wire.Error{ID: m.(wire.ReadRequest).ID, Code: wire.ErrUnavailable, Msg: "no quorum"}
	})
	var got ReadResult
	drv.ReadAt([]byte("hot-key"), wire.Quorum, func(r ReadResult) { got = r })
	s.RunUntilIdle(10_000)
	if !errors.Is(got.Err, ErrUnavailable) {
		t.Fatalf("err = %v, want ErrUnavailable", got.Err)
	}
	for _, want := range []string{"read", `"hot-key"`, "attempt 3/3", wire.Quorum.String()} {
		if !strings.Contains(got.Err.Error(), want) {
			t.Fatalf("err %q missing %q", got.Err, want)
		}
	}
}

func TestOverloadedShedsAreRetried(t *testing.T) {
	shed := true
	s, drv, _ := newMultiFixture(t, Options{
		Timeout: 500 * time.Millisecond, MaxAttempts: 2, RetryBackoff: time.Millisecond,
	}, 1, func(_ int, m wire.Message) wire.Message {
		req := m.(wire.WriteRequest)
		if shed {
			shed = false
			return wire.Error{ID: req.ID, Code: wire.ErrOverloaded, Msg: "coordinator at capacity"}
		}
		return wire.WriteResponse{ID: req.ID, OK: true, Timestamp: 8}
	})
	var got WriteResult
	drv.Write([]byte("k"), []byte("v"), func(r WriteResult) { got = r })
	s.RunUntilIdle(10_000)
	if got.Err != nil || got.Ts != 8 {
		t.Fatalf("write = %+v", got)
	}
}

func TestOverloadedExhaustionMapsToSentinel(t *testing.T) {
	s, drv, _ := newMultiFixture(t, Options{
		Timeout: 500 * time.Millisecond, MaxAttempts: 2, RetryBackoff: time.Millisecond,
	}, 1, func(_ int, m wire.Message) wire.Message {
		return wire.Error{ID: m.(wire.WriteRequest).ID, Code: wire.ErrOverloaded, Msg: "at capacity"}
	})
	var got WriteResult
	drv.Write([]byte("k"), []byte("v"), func(r WriteResult) { got = r })
	s.RunUntilIdle(10_000)
	if !errors.Is(got.Err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", got.Err)
	}
}

// TestIdempotentWriteReplay pins the replay contract: a write that times out
// and retries carries the SAME client-stamped timestamp (TsHint) on every
// attempt, so a replica that already applied attempt 1 LWW-collapses the
// replay instead of treating it as a newer write.
func TestIdempotentWriteReplay(t *testing.T) {
	s, drv, cos := newMultiFixture(t, Options{
		Timeout: 500 * time.Millisecond, MaxAttempts: 3, AttemptTimeout: 50 * time.Millisecond,
		RetryBackoff: time.Millisecond,
	}, 2, func(co int, m wire.Message) wire.Message {
		req := m.(wire.WriteRequest)
		if co == 0 {
			return nil // applied but the ack is lost: client must retry
		}
		return wire.WriteResponse{ID: req.ID, OK: true, Timestamp: req.TsHint}
	})
	var got WriteResult
	drv.Write([]byte("k"), []byte("v"), func(r WriteResult) { got = r })
	s.RunUntilIdle(1_000_000)
	if got.Err != nil {
		t.Fatalf("write = %+v", got)
	}
	first := cos[0].requests[0].(wire.WriteRequest)
	second := cos[1].requests[0].(wire.WriteRequest)
	if first.TsHint == 0 {
		t.Fatal("retryable write did not stamp TsHint")
	}
	if second.TsHint != first.TsHint {
		t.Fatalf("retry re-stamped: attempt1 ts=%d attempt2 ts=%d", first.TsHint, second.TsHint)
	}
	if first.ID == second.ID {
		t.Fatal("retry reused the wire id; replies would be ambiguous")
	}
	if got.Ts != first.TsHint {
		t.Fatalf("result ts = %d, want the stamped %d", got.Ts, first.TsHint)
	}
}

// TestSingleAttemptWritesKeepCoordinatorStamping pins that the default
// configuration is byte-identical to the pre-hardening client: no TsHint,
// no deadline surprises for existing flows.
func TestSingleAttemptWritesKeepCoordinatorStamping(t *testing.T) {
	s, drv, cos := newMultiFixture(t, Options{Timeout: 100 * time.Millisecond}, 1,
		func(_ int, m wire.Message) wire.Message {
			return wire.WriteResponse{ID: m.(wire.WriteRequest).ID, OK: true, Timestamp: 5}
		})
	drv.Write([]byte("k"), []byte("v"), func(WriteResult) {})
	s.RunUntilIdle(1000)
	if hint := cos[0].requests[0].(wire.WriteRequest).TsHint; hint != 0 {
		t.Fatalf("single-attempt write stamped TsHint %d, want 0", hint)
	}
}

// TestHedgedReadFirstResponseWins starts a read against a slow coordinator,
// lets the hedge fire against a fast one, and checks the fast answer wins
// while the straggler's late reply is discarded (hedged-read cancellation).
func TestHedgedReadFirstResponseWins(t *testing.T) {
	var (
		s    *sim.Sim
		bus  *transport.Loopback
		late wire.ReadResponse
	)
	s2, drv, cos := newMultiFixture(t, Options{
		Timeout: 200 * time.Millisecond, Hedge: 10 * time.Millisecond,
	}, 2, func(co int, m wire.Message) wire.Message {
		req := m.(wire.ReadRequest)
		if co == 0 {
			// Slow path: answer 50ms later, long after the hedge won.
			late = wire.ReadResponse{ID: req.ID, Found: true, Value: wire.Value{Data: []byte("slow"), Timestamp: 1}}
			s.After(50*time.Millisecond, func() { bus.Send("c1", "cl", late) })
			return nil
		}
		return wire.ReadResponse{ID: req.ID, Found: true, Value: wire.Value{Data: []byte("fast"), Timestamp: 2}}
	})
	s = s2
	bus = cos[0].bus
	var results []ReadResult
	drv.ReadAt([]byte("k"), wire.One, func(r ReadResult) { results = append(results, r) })
	s.RunUntilIdle(1_000_000)
	if len(results) != 1 {
		t.Fatalf("callback fired %d times, want 1", len(results))
	}
	if results[0].Err != nil || string(results[0].Value) != "fast" {
		t.Fatalf("read = %+v, want the hedge's answer", results[0])
	}
	if drv.Hedges() != 1 {
		t.Fatalf("hedges = %d, want 1", drv.Hedges())
	}
	if drv.Pending() != 0 {
		t.Fatal("pending leaked after hedge cancellation")
	}
}

func TestHedgeNotSentWhenPrimaryIsFast(t *testing.T) {
	s, drv, cos := newMultiFixture(t, Options{
		Timeout: 200 * time.Millisecond, Hedge: 20 * time.Millisecond,
	}, 2, func(_ int, m wire.Message) wire.Message {
		req := m.(wire.ReadRequest)
		return wire.ReadResponse{ID: req.ID, Found: true, Value: wire.Value{Data: []byte("v"), Timestamp: 1}}
	})
	drv.ReadAt([]byte("k"), wire.One, func(ReadResult) {})
	s.RunUntilIdle(1_000_000)
	if drv.Hedges() != 0 || len(cos[1].requests) != 0 {
		t.Fatalf("hedge fired for a fast primary: hedges=%d c2reqs=%d", drv.Hedges(), len(cos[1].requests))
	}
}

// TestDeadlinePropagatesRemainingBudget pins that every attempt carries the
// remaining overall budget on the wire, shrinking attempt over attempt, so
// coordinators can shed work the client has already given up on.
func TestDeadlinePropagatesRemainingBudget(t *testing.T) {
	s, drv, cos := newMultiFixture(t, Options{
		Timeout: 100 * time.Millisecond, MaxAttempts: 2, AttemptTimeout: 40 * time.Millisecond,
		RetryBackoff: time.Millisecond, RetryBackoffMax: time.Millisecond,
	}, 2, func(_ int, m wire.Message) wire.Message {
		return nil // never answer; drive both attempts into timeout
	})
	var got ReadResult
	drv.ReadAt([]byte("k"), wire.One, func(r ReadResult) { got = r })
	start := s.Now()
	s.RunUntilIdle(1_000_000)
	if !errors.Is(got.Err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", got.Err)
	}
	if elapsed := s.Now().Sub(start); elapsed > 100*time.Millisecond {
		t.Fatalf("op outlived its budget: %v", elapsed)
	}
	first := cos[0].requests[0].(wire.ReadRequest).DeadlineMs
	second := cos[1].requests[0].(wire.ReadRequest).DeadlineMs
	if first != 100 {
		t.Fatalf("attempt 1 deadline = %dms, want 100", first)
	}
	if second == 0 || second >= first {
		t.Fatalf("attempt 2 deadline = %dms, want in (0, %d)", second, first)
	}
}

// TestBackoffCappedAndBudgetBounded drives many attempts and checks the op
// completes within its overall budget even when every attempt times out.
func TestBackoffCappedAndBudgetBounded(t *testing.T) {
	s, drv, _ := newMultiFixture(t, Options{
		Timeout: 100 * time.Millisecond, MaxAttempts: 50,
		RetryBackoff: time.Millisecond, RetryBackoffMax: 8 * time.Millisecond,
	}, 1, func(_ int, m wire.Message) wire.Message { return nil })
	var got ReadResult
	drv.ReadAt([]byte("k"), wire.One, func(r ReadResult) { got = r })
	start := s.Now()
	s.RunUntilIdle(10_000_000)
	if !errors.Is(got.Err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", got.Err)
	}
	if elapsed := s.Now().Sub(start); elapsed > 100*time.Millisecond {
		t.Fatalf("retries overran the budget: %v", elapsed)
	}
	if drv.Pending() != 0 {
		t.Fatal("pending leaked")
	}
}

// TestHardenedPathUnderRealRuntime exercises retry, hedging, and completion
// accounting on the real (wall-clock) runtime so the race detector sees the
// timer/mailbox interleavings live nodes use.
func TestHardenedPathUnderRealRuntime(t *testing.T) {
	rr := sim.NewRealRuntime()
	defer rr.Stop()
	bus := transport.NewLoopback()
	var mu sync.Mutex
	calls := 0
	for _, id := range []ring.NodeID{"c1", "c2"} {
		id := id
		co := &fakeCoordinator{bus: bus, id: id}
		co.respond = func(m wire.Message) wire.Message {
			mu.Lock()
			calls++
			flaky := calls%3 == 1
			mu.Unlock()
			switch req := m.(type) {
			case wire.ReadRequest:
				if flaky {
					return wire.Error{ID: req.ID, Code: wire.ErrUnavailable, Msg: "flaky"}
				}
				return wire.ReadResponse{ID: req.ID, Found: true, Value: wire.Value{Data: []byte("v"), Timestamp: 1}}
			case wire.WriteRequest:
				if flaky {
					return wire.Error{ID: req.ID, Code: wire.ErrOverloaded, Msg: "flaky"}
				}
				return wire.WriteResponse{ID: req.ID, OK: true, Timestamp: req.TsHint}
			}
			return nil
		}
		bus.Register(id, co)
	}
	drv, err := New(Options{
		ID: "cl", Coordinators: []ring.NodeID{"c1", "c2"},
		Timeout: 2 * time.Second, MaxAttempts: 4, AttemptTimeout: 200 * time.Millisecond,
		RetryBackoff: time.Millisecond, RetryBackoffMax: 4 * time.Millisecond,
		Hedge: 5 * time.Millisecond,
	}, rr, bus)
	if err != nil {
		t.Fatal(err)
	}
	bus.Register("cl", drv)

	const ops = 60
	done := make(chan error, ops)
	for i := 0; i < ops; i++ {
		i := i
		rr.Post(func() {
			if i%2 == 0 {
				drv.ReadAt([]byte("k"), wire.One, func(r ReadResult) { done <- r.Err })
			} else {
				drv.Write([]byte("k"), []byte("v"), func(r WriteResult) { done <- r.Err })
			}
		})
	}
	// Wall-clock interleaving decides which calls land on the flaky slots,
	// so an unlucky op can exhaust all four attempts; guaranteed-success
	// semantics are pinned by the deterministic sim tests above. This test
	// pins liveness and accounting: every op completes, failures are only
	// exhausted retries of retryable errors, and nothing leaks.
	failed := 0
	for i := 0; i < ops; i++ {
		select {
		case err := <-done:
			if err != nil {
				if !errors.Is(err, ErrUnavailable) && !errors.Is(err, ErrOverloaded) && !errors.Is(err, ErrTimeout) {
					t.Fatalf("op %d failed with a non-retryable error: %v", i, err)
				}
				failed++
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("op %d never completed", i)
		}
	}
	if failed > ops/6 {
		t.Fatalf("%d of %d ops exhausted retries; retry/hedge path is not recovering", failed, ops)
	}
	pending := make(chan int, 1)
	rr.Post(func() { pending <- drv.Pending() })
	if n := <-pending; n != 0 {
		t.Fatalf("pending leaked: %d", n)
	}
}

package bench

import (
	"fmt"
	"time"

	"harmony/internal/cluster"
	"harmony/internal/core"
	"harmony/internal/sim"
	"harmony/internal/ycsb"
)

// RunSpec fully determines one measurement point.
type RunSpec struct {
	Scenario Scenario
	Policy   PolicySpec
	Workload ycsb.Workload
	Threads  int
	Ops      int64
	Seed     int64
	// ArrivalRate, when positive, drives the run open-loop: Poisson
	// arrivals at this aggregate rate instead of the closed thread loop.
	ArrivalRate float64
}

// RunResult is one completed measurement point.
type RunResult struct {
	Spec      RunSpec
	Report    ycsb.Report
	Decisions []core.Decision // Harmony's trace (empty for static policies)
}

// RunPolicy executes one point: build the cluster, wire the policy (with
// monitor + controller for Harmony), load the records, drive the workload to
// the op budget and report.
func RunPolicy(spec RunSpec) (RunResult, error) {
	if spec.Ops <= 0 {
		return RunResult{}, fmt.Errorf("bench: op budget required")
	}
	s := sim.New(spec.Seed)
	c, err := cluster.BuildSim(s, spec.Scenario.Spec)
	if err != nil {
		return RunResult{}, err
	}
	if spec.Scenario.Prepare != nil {
		if stop := spec.Scenario.Prepare(s, c); stop != nil {
			defer stop()
		}
	}
	policy, ctl := spec.Policy.policy(spec.Scenario.Spec.RF, spec.Workload, spec.Scenario.Spec.Profile)
	var mon *core.Monitor
	if ctl != nil {
		mon = core.NewMonitor(core.MonitorConfig{
			ID:             "harmony-monitor",
			Nodes:          c.NodeIDs(),
			Interval:       spec.Scenario.MonitorInterval,
			ReplicaSetSize: spec.Scenario.Spec.RF,
			OnObservation:  ctl.Observe,
		}, s, c.Bus)
		c.Net.Colocate("harmony-monitor", c.NodeIDs()[0])
		c.Bus.Register("harmony-monitor", s, mon)
		mon.Start()
	}
	runner, err := ycsb.NewRunner(ycsb.RunConfig{
		Workload:    spec.Workload,
		Threads:     spec.Threads,
		Policy:      policy,
		ShadowEvery: 5, // sample 20% of reads for the staleness probe
		Seed:        spec.Seed,
		ArrivalRate: spec.ArrivalRate,
	}, s, c)
	if err != nil {
		return RunResult{}, err
	}
	runner.Load()
	// Warm up long enough for several monitor rounds so Harmony reaches
	// its steady consistency level before measurement starts.
	warmup := 6 * spec.Scenario.MonitorInterval
	if warmup < time.Second {
		warmup = time.Second
	}
	report, err := runner.RunMeasured(warmup, spec.Ops)
	if err != nil {
		return RunResult{}, err
	}
	if mon != nil {
		mon.Stop()
	}
	res := RunResult{Spec: spec, Report: report}
	if ctl != nil {
		res.Decisions = ctl.History()
	}
	return res, nil
}

// Grid is the full (policy × threads) measurement matrix for one scenario;
// figures 5(a-d) and 6(a-b) are different projections of it.
type Grid struct {
	Scenario Scenario
	Policies []PolicySpec
	Threads  []int
	// Results indexed [policy][thread].
	Results [][]RunResult
}

// Options tune experiment cost; zero values select defaults.
type Options struct {
	// OpsPerPoint is the operation budget per measurement point
	// (default 30000). The paper ran 3M (Grid'5000) / 10M (EC2); rates and
	// percentiles converge far earlier, and the CLI can raise this.
	OpsPerPoint int64
	// Threads overrides the thread sweep.
	Threads []int
	// Seed feeds all randomness (default 1).
	Seed int64
	// PhaseDuration is the virtual time per thread phase in Fig. 4(a);
	// zero selects DefaultFig4aPhase.
	PhaseDuration time.Duration
	// ArrivalRate, when positive, drives every measurement point open
	// loop: Poisson arrivals at this aggregate ops/s instead of the
	// paper's closed thread loop.
	ArrivalRate float64
	// Progress, when set, receives one line per completed point.
	Progress func(string)
}

func (o Options) withDefaults() Options {
	if o.OpsPerPoint <= 0 {
		o.OpsPerPoint = 30000
	}
	if len(o.Threads) == 0 {
		o.Threads = ThreadSweep
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

func (o Options) progress(format string, args ...any) {
	if o.Progress != nil {
		o.Progress(fmt.Sprintf(format, args...))
	}
}

// RunGrid measures every (policy, threads) combination of a scenario under
// Workload-A, the paper's evaluation workload.
func RunGrid(sc Scenario, policies []PolicySpec, opts Options) (Grid, error) {
	opts = opts.withDefaults()
	g := Grid{Scenario: sc, Policies: policies, Threads: opts.Threads}
	for pi, pol := range policies {
		row := make([]RunResult, 0, len(opts.Threads))
		for ti, th := range opts.Threads {
			spec := RunSpec{
				Scenario:    sc,
				Policy:      pol,
				Workload:    ycsb.WorkloadA(),
				Threads:     th,
				Ops:         opts.OpsPerPoint,
				Seed:        opts.Seed + int64(pi*1000+ti),
				ArrivalRate: opts.ArrivalRate,
			}
			res, err := RunPolicy(spec)
			if err != nil {
				return Grid{}, fmt.Errorf("bench: %s/%s/%d threads: %w", sc.Name, pol.Name(), th, err)
			}
			opts.progress("%s %-14s threads=%-3d tput=%8.0f ops/s p99=%8s stale=%d/%d",
				sc.Name, pol.Name(), th, res.Report.ThroughputOps,
				res.Report.ReadLatency.P99().Round(10*time.Microsecond),
				res.Report.StaleReads, res.Report.ShadowSamples)
			row = append(row, res)
		}
		g.Results = append(g.Results, row)
	}
	return g, nil
}

// LatencyFigure projects the grid onto Fig. 5(a)/(b): 99th-percentile read
// latency (ms) against client threads.
func (g Grid) LatencyFigure(id string) Figure {
	f := Figure{
		ID:     id,
		Title:  fmt.Sprintf("99th percentile read latency vs client threads (%s)", g.Scenario.Name),
		XLabel: "threads",
		YLabel: "99th percentile latency (ms)",
	}
	for pi, pol := range g.Policies {
		s := Series{Name: pol.Name()}
		for ti, th := range g.Threads {
			p99 := g.Results[pi][ti].Report.ReadLatency.P99()
			s.Points = append(s.Points, Point{X: float64(th), Y: float64(p99) / 1e6})
		}
		f.Series = append(f.Series, s)
	}
	return f
}

// ThroughputFigure projects the grid onto Fig. 5(c)/(d): operations per
// second against client threads.
func (g Grid) ThroughputFigure(id string) Figure {
	f := Figure{
		ID:     id,
		Title:  fmt.Sprintf("throughput vs client threads (%s)", g.Scenario.Name),
		XLabel: "threads",
		YLabel: "throughput (ops/s)",
	}
	for pi, pol := range g.Policies {
		s := Series{Name: pol.Name()}
		for ti, th := range g.Threads {
			s.Points = append(s.Points, Point{X: float64(th), Y: g.Results[pi][ti].Report.ThroughputOps})
		}
		f.Series = append(f.Series, s)
	}
	return f
}

// StalenessFigure projects the grid onto Fig. 6(a)/(b): the number of stale
// reads measured by the dual-read probe against client threads. Counts are
// normalized per 100k reads so different op budgets remain comparable.
func (g Grid) StalenessFigure(id string) Figure {
	f := Figure{
		ID:     id,
		Title:  fmt.Sprintf("stale reads vs client threads (%s)", g.Scenario.Name),
		XLabel: "threads",
		YLabel: "stale reads per 100k reads",
	}
	for pi, pol := range g.Policies {
		s := Series{Name: pol.Name()}
		for ti, th := range g.Threads {
			rep := g.Results[pi][ti].Report
			y := 0.0
			if rep.ShadowSamples > 0 {
				y = float64(rep.StaleReads) / float64(rep.ShadowSamples) * 100000
			}
			s.Points = append(s.Points, Point{X: float64(th), Y: y})
		}
		f.Series = append(f.Series, s)
	}
	return f
}

package faults

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Step is one timed action of a scenario: After the scenario start, apply
// the Update.
type Step struct {
	After  time.Duration `json:"after"`
	Update Update        `json:"update"`
}

// Scenario is a named, replayable fault schedule. Scenarios run on the
// injector's runtime, so in the simulator they execute in virtual time and
// on a live node in wall time — the same schedule either way.
type Scenario struct {
	Name  string `json:"name"`
	Doc   string `json:"doc"`
	Steps []Step `json:"steps"`
}

var (
	scenarioMu sync.Mutex
	scenarios  = map[string]Scenario{}
)

// Register adds (or replaces) a named scenario.
func Register(s Scenario) {
	scenarioMu.Lock()
	scenarios[s.Name] = s
	scenarioMu.Unlock()
}

// Lookup returns a registered scenario.
func Lookup(name string) (Scenario, bool) {
	scenarioMu.Lock()
	defer scenarioMu.Unlock()
	s, ok := scenarios[name]
	return s, ok
}

// Scenarios lists registered scenario names, sorted.
func Scenarios() []string {
	scenarioMu.Lock()
	defer scenarioMu.Unlock()
	out := make([]string, 0, len(scenarios))
	for n := range scenarios {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// StartScenario schedules a registered scenario's steps on the injector's
// runtime. Steps already underway when the injector is cleared still fire —
// a scenario is a script, not a transaction — so tests that need a clean
// slate should let the schedule drain first.
func (in *Injector) StartScenario(name string, membership []string) error {
	sc, ok := Lookup(name)
	if !ok {
		return fmt.Errorf("faults: unknown scenario %q", name)
	}
	for _, step := range sc.Steps {
		u := step.Update
		if u.Scenario != "" {
			return fmt.Errorf("faults: scenario %q nests scenario %q", name, u.Scenario)
		}
		in.rt.After(step.After, func() { _ = in.Apply(u, membership) })
	}
	return nil
}

func init() {
	// flaky-network: light random loss and latency on every pair — the
	// baseline "bad but functional" condition retries must absorb.
	Register(Scenario{
		Name: "flaky-network",
		Doc:  "2% loss, 5ms±15ms extra latency, 1% duplicates on all pairs",
		Steps: []Step{{Update: Update{Set: []RuleUpdate{{
			From: Wildcard, To: Wildcard,
			Rule: Rule{Drop: 0.02, Delay: 5 * time.Millisecond, Jitter: 15 * time.Millisecond, Duplicate: 0.01},
		}}}}},
	})
	// lossy-burst: 30s of heavy one-way loss, then clean.
	Register(Scenario{
		Name: "lossy-burst",
		Doc:  "25% loss everywhere for 30s, then clear",
		Steps: []Step{
			{Update: Update{Set: []RuleUpdate{{From: Wildcard, To: Wildcard, Rule: Rule{Drop: 0.25}}}}},
			{After: 30 * time.Second, Update: Update{Clear: true}},
		},
	})
}

package transport

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"harmony/internal/ring"
	"harmony/internal/sim"
	"harmony/internal/wire"
)

// TestTCPConcurrentSendersPooled hammers one pooled peer from many
// goroutines (run under -race): every frame must arrive exactly once, and
// the pool must open no more than the configured number of dialed streams.
func TestTCPConcurrentSendersPooled(t *testing.T) {
	rtA, rtB := sim.NewRealRuntime(), sim.NewRealRuntime()
	defer rtA.Stop()
	defer rtB.Stop()

	const senders, perSender = 16, 250
	total := senders * perSender
	got := make(map[uint64]bool, total)
	var mu sync.Mutex
	done := make(chan struct{})
	sink := HandlerFunc(func(from ring.NodeID, m wire.Message) {
		mu.Lock()
		defer mu.Unlock()
		id := m.(wire.Mutation).ID
		if got[id] {
			t.Errorf("duplicate delivery of frame %d", id)
		}
		got[id] = true
		if len(got) == total {
			close(done)
		}
	})

	b, err := NewTCPNode(TCPConfig{ID: "b", Listen: "127.0.0.1:0"}, rtB, sink)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	a, err := NewTCPNode(TCPConfig{
		ID:      "a",
		Peers:   map[ring.NodeID]string{"b": b.Addr().String()},
		Streams: 4,
		// Large enough that backpressure never drops test frames.
		MaxPending: 64 << 20,
	}, rtA, newSyncCapture())
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < perSender; i++ {
				id := uint64(s*perSender + i)
				a.Send("a", "b", wire.Mutation{ID: id, Key: []byte("k"),
					Value: wire.Value{Data: []byte("v"), Timestamp: int64(id)}})
			}
		}(s)
	}
	wg.Wait()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		mu.Lock()
		defer mu.Unlock()
		t.Fatalf("delivered %d/%d frames", len(got), total)
	}
	if d := a.Stats().Dials; d > 4 {
		t.Fatalf("dialed %d streams to one peer, configured 4", d)
	}
}

// TestTCPRedialAfterPeerRestart is the cached-connection poisoning fix: a
// peer dies (its process restarts on the same address) and subsequent sends
// must tear down the dead cached connection and redial instead of failing
// against it forever.
func TestTCPRedialAfterPeerRestart(t *testing.T) {
	rtA, rtB := sim.NewRealRuntime(), sim.NewRealRuntime()
	defer rtA.Stop()
	defer rtB.Stop()

	sinkB := newSyncCapture()
	b, err := NewTCPNode(TCPConfig{ID: "b", Listen: "127.0.0.1:0"}, rtB, sinkB)
	if err != nil {
		t.Fatal(err)
	}
	addr := b.Addr().String()
	a, err := NewTCPNode(TCPConfig{
		ID:          "a",
		Peers:       map[ring.NodeID]string{"b": addr},
		DialBackoff: 5 * time.Millisecond,
	}, rtA, newSyncCapture())
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	a.Send("a", "b", wire.Ping{ID: 1})
	sinkB.wait(t, 1)
	b.Close() // the peer "crashes": the cached connection is now poisoned

	// Restart on the same address (Go listeners set SO_REUSEADDR).
	rtB2 := sim.NewRealRuntime()
	defer rtB2.Stop()
	sinkB2 := newSyncCapture()
	b2, err := NewTCPNode(TCPConfig{ID: "b", Listen: addr}, rtB2, sinkB2)
	if err != nil {
		t.Fatalf("restart listener: %v", err)
	}
	defer b2.Close()

	// Sends must start landing again: the first may be eaten by the dead
	// stream's write error, after which the transport redials.
	deadline := time.After(5 * time.Second)
	tick := time.NewTicker(10 * time.Millisecond)
	defer tick.Stop()
	for i := uint64(2); ; i++ {
		a.Send("a", "b", wire.Ping{ID: i})
		select {
		case <-sinkB2.ch:
			return // delivered over a fresh connection
		case <-deadline:
			t.Fatal("transport never recovered from peer restart")
		case <-tick.C:
		}
	}
}

// TestTCPAliasingContractRetainedValues proves no frame buffer is recycled
// while a decoded message is still live: handlers retain every delivered
// mutation's value bytes — exactly what the storage engine does — while
// thousands of frames churn the buffer pool underneath. Without
// copy-on-escape promotion (or with premature recycling) retained values
// would be overwritten by later frames.
func TestTCPAliasingContractRetainedValues(t *testing.T) {
	rtA, rtB := sim.NewRealRuntime(), sim.NewRealRuntime()
	defer rtA.Stop()
	defer rtB.Stop()

	const frames = 2000
	pattern := func(id uint64) []byte {
		return bytes.Repeat([]byte(fmt.Sprintf("%08d", id)), 8) // 64 bytes
	}
	retained := make([][]byte, 0, frames)
	keys := make([]string, 0, frames)
	done := make(chan struct{})
	sink := HandlerFunc(func(from ring.NodeID, m wire.Message) {
		mut := m.(wire.Mutation)
		// Value bytes escape as-is (the engine stores the slice); keys are
		// interned via string conversion — exactly the retention pattern of
		// the real apply path, and the split the promotion table encodes.
		retained = append(retained, mut.Value.Data)
		keys = append(keys, string(mut.Key))
		if len(retained) == frames {
			close(done)
		}
	})

	b, err := NewTCPNode(TCPConfig{ID: "b", Listen: "127.0.0.1:0"}, rtB, sink)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	a, err := NewTCPNode(TCPConfig{
		ID:         "a",
		Peers:      map[ring.NodeID]string{"b": b.Addr().String()},
		MaxPending: 64 << 20,
	}, rtA, newSyncCapture())
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	for i := uint64(0); i < frames; i++ {
		a.Send("a", "b", wire.Mutation{ID: i, Key: []byte(fmt.Sprintf("key-%d", i)),
			Value: wire.Value{Data: pattern(i), Timestamp: int64(i)}})
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatalf("delivered %d/%d frames", len(retained), frames)
	}
	for i, v := range retained {
		if want := pattern(uint64(i)); !bytes.Equal(v, want) {
			t.Fatalf("retained value %d corrupted by buffer recycling: got %q", i, v)
		}
		if want := fmt.Sprintf("key-%d", i); keys[i] != want {
			t.Fatalf("retained key %d corrupted: got %q want %q", i, keys[i], want)
		}
	}
}

// TestPromoteCopiesEscapingFields checks promotion semantics directly:
// escaping byte fields come back as owned copies, non-escaping kinds pass
// through aliasing the original frame (that is what keeps them 1-alloc).
func TestPromoteCopiesEscapingFields(t *testing.T) {
	val := []byte("value-bytes")
	key := []byte("key-bytes")
	m := promote(wire.Mutation{ID: 1, Key: key, Value: wire.Value{Data: val}}).(wire.Mutation)
	if !bytes.Equal(m.Value.Data, val) {
		t.Fatal("promoted value changed contents")
	}
	val[0] = 'X'
	if m.Value.Data[0] == 'X' {
		t.Fatal("Mutation.Value.Data still aliases the frame after promotion")
	}
	if m.Key[0] != 'k' {
		t.Fatal("Mutation.Key should pass through (engine interns keys)")
	}
	key[0] = 'X'
	if m.Key[0] != 'X' {
		t.Fatal("Mutation.Key unexpectedly copied; promotion should leave it shared")
	}

	rr := promote(wire.ReplicaRead{ID: 2, Key: key}).(wire.ReplicaRead)
	if &rr.Key[0] != &key[0] {
		t.Fatal("non-escaping ReplicaRead must not be copied")
	}

	frameKey := []byte("hot")
	sr := promote(wire.StatsResponse{KeySamples: []wire.KeySample{{Key: frameKey, Reads: 1}}}).(wire.StatsResponse)
	frameKey[0] = 'X' // the frame buffer is recycled under the retained sample
	if sr.KeySamples[0].Key[0] == 'X' {
		t.Fatal("StatsResponse.KeySamples keys must be promoted")
	}
}

// TestTCPNoBatchWritesFramePerSyscall pins the benchmark baseline: with
// NoBatch every frame is its own write, so the batch counter tracks the
// frame counter exactly.
func TestTCPNoBatchWritesFramePerSyscall(t *testing.T) {
	rtA, rtB := sim.NewRealRuntime(), sim.NewRealRuntime()
	defer rtA.Stop()
	defer rtB.Stop()
	sinkB := newSyncCapture()
	b, err := NewTCPNode(TCPConfig{ID: "b", Listen: "127.0.0.1:0"}, rtB, sinkB)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	a, err := NewTCPNode(TCPConfig{
		ID:      "a",
		Peers:   map[ring.NodeID]string{"b": b.Addr().String()},
		NoBatch: true,
	}, rtA, newSyncCapture())
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	const count = 100
	for i := 0; i < count; i++ {
		a.Send("a", "b", wire.Ping{ID: uint64(i)})
	}
	sinkB.wait(t, count)
	s := a.Stats()
	if s.FramesSent != count || s.Batches != count {
		t.Fatalf("NoBatch: sent %d frames in %d writes, want %d in %d",
			s.FramesSent, s.Batches, count, count)
	}
}

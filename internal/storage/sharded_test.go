package storage

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"testing/quick"

	"harmony/internal/wire"
)

// dumpVersions renders every version (tombstones included) the engine
// holds, in scan order — the byte-identity fingerprint the repair tests use.
func dumpVersions(e *Engine) string {
	var sb strings.Builder
	e.ScanVersions(nil, nil, func(key []byte, v wire.Value) bool {
		fmt.Fprintf(&sb, "%s=%s@%d,%v;", key, v.Data, v.Timestamp, v.Tombstone)
		return true
	})
	return sb.String()
}

// TestShardedScanVersionsMatchesSingleLock drives identical random
// histories (writes, tombstones, flushes, compactions) into an 8-shard
// engine and a single-shard (single-lock) engine and requires
// byte-identical ScanVersions output, arbitrary bounds included. This is
// the ordering contract anti-entropy Merkle trees are built on.
func TestShardedScanVersionsMatchesSingleLock(t *testing.T) {
	if err := quick.Check(func(seed int64, opsRaw uint8, loRaw, hiRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		sharded := NewEngine(Options{Shards: 8, MaxFlushedTables: 3, FlushThresholdBytes: 256})
		single := NewEngine(Options{Shards: 1, MaxFlushedTables: 3, FlushThresholdBytes: 256})
		ops := int(opsRaw)%150 + 10
		ts := int64(0)
		for i := 0; i < ops; i++ {
			switch rng.Intn(12) {
			case 9:
				sharded.Flush()
				single.Flush()
			case 10:
				sharded.Compact()
				single.Compact()
			default:
				ts++
				k := []byte(fmt.Sprintf("k%02d", rng.Intn(30)))
				v := wire.Value{Data: []byte(fmt.Sprintf("v%d", ts)), Timestamp: ts, Tombstone: rng.Intn(8) == 0}
				sharded.Apply(k, v)
				single.Apply(k, v)
			}
		}
		var start, end []byte
		if loRaw%4 != 0 {
			start = []byte(fmt.Sprintf("k%02d", int(loRaw)%30))
		}
		if hiRaw%4 != 0 {
			end = []byte(fmt.Sprintf("k%02d", int(hiRaw)%30))
		}
		collect := func(e *Engine) string {
			var sb strings.Builder
			e.ScanVersions(start, end, func(key []byte, v wire.Value) bool {
				fmt.Fprintf(&sb, "%s=%s@%d,%v;", key, v.Data, v.Timestamp, v.Tombstone)
				return true
			})
			return sb.String()
		}
		got, want := collect(sharded), collect(single)
		if got != want {
			t.Errorf("seed %d: sharded scan\n got %q\nwant %q", seed, got, want)
			return false
		}
		if dumpVersions(sharded) != dumpVersions(single) {
			t.Errorf("seed %d: full dumps differ", seed)
			return false
		}
		return true
	}, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestShardedLookupAcrossShards pins routing: every key written is readable
// back with the newest version regardless of which shard it hashed to.
func TestShardedLookupAcrossShards(t *testing.T) {
	e := NewEngine(Options{Shards: 16, FlushThresholdBytes: 512})
	const n = 500
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("key-%04d", i))
		e.Apply(k, wire.Value{Data: []byte(fmt.Sprintf("v1-%d", i)), Timestamp: int64(i + 1)})
	}
	// Overwrite half with newer versions, attempt stale writes on the rest.
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("key-%04d", i))
		if i%2 == 0 {
			e.Apply(k, wire.Value{Data: []byte(fmt.Sprintf("v2-%d", i)), Timestamp: int64(n + i + 1)})
		} else if applied, _ := e.Apply(k, wire.Value{Data: []byte("stale"), Timestamp: 0}); applied {
			t.Fatalf("stale write accepted for %s", k)
		}
	}
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("key-%04d", i))
		v, ok := e.Get(k)
		want := fmt.Sprintf("v1-%d", i)
		if i%2 == 0 {
			want = fmt.Sprintf("v2-%d", i)
		}
		if !ok || string(v.Data) != want {
			t.Fatalf("Get(%s) = %q ok=%v, want %q", k, v.Data, ok, want)
		}
	}
	if st := e.Stats(); st.Shards != 16 || st.LiveKeys != n {
		t.Fatalf("stats = %+v", st)
	}
}

// TestShardedConcurrentOps hammers an 8-shard engine from 8 goroutines
// mixing Apply/Get/Scan/Flush/Compact/Stats; run under -race this is the
// striped-locking safety net.
func TestShardedConcurrentOps(t *testing.T) {
	e := NewEngine(Options{Shards: 8, FlushThresholdBytes: 1 << 10, MaxFlushedTables: 2})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 3000; i++ {
				k := []byte(fmt.Sprintf("k%03d", r.Intn(300)))
				switch r.Intn(10) {
				case 0:
					e.Flush()
				case 1:
					e.Compact()
				case 2:
					e.Stats()
				case 3:
					count := 0
					e.Scan(nil, []byte("k150"), func(key []byte, v wire.Value) bool {
						count++
						return count < 50
					})
				case 4, 5, 6:
					e.Get(k)
				default:
					e.Apply(k, wire.Value{Data: []byte("payload"), Timestamp: int64(w*10000 + i)})
				}
			}
		}(w)
	}
	wg.Wait()
	// Every surviving row must still be the newest version written for its
	// key (timestamps encode writer/iteration, LWW keeps the max).
	e.Scan(nil, nil, func(key []byte, v wire.Value) bool {
		if v.Tombstone {
			t.Fatalf("unexpected tombstone for %s", key)
		}
		return true
	})
}

// TestShardedOnReplaceHook verifies the displaced-version hook: old carries
// the newest prior version (memtable or flushed), hadOld is false only for
// first writes, and rejected mutations never fire it.
func TestShardedOnReplaceHook(t *testing.T) {
	type ev struct {
		key    string
		old    int64
		hadOld bool
		new_   int64
	}
	var got []ev
	e := NewEngine(Options{Shards: 4, OnReplace: func(key []byte, old wire.Value, hadOld bool, v wire.Value) {
		got = append(got, ev{string(key), old.Timestamp, hadOld, v.Timestamp})
	}})
	e.Apply([]byte("a"), wire.Value{Data: []byte("1"), Timestamp: 10})
	e.Flush() // move it to a flushed table: old must still be found
	e.Apply([]byte("a"), wire.Value{Data: []byte("2"), Timestamp: 20})
	e.Apply([]byte("a"), wire.Value{Data: []byte("3"), Timestamp: 30}) // in-place memtable replace
	e.Apply([]byte("a"), wire.Value{Data: []byte("x"), Timestamp: 5})  // rejected: no hook
	want := []ev{{"a", 0, false, 10}, {"a", 10, true, 20}, {"a", 20, true, 30}}
	if len(got) != len(want) {
		t.Fatalf("hook events = %+v, want %+v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("hook event %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestCompactMergesSortedTables pins the satellite: compaction k-way merges
// the tables' sorted key runs (newest version wins) instead of rebuilding
// from a map, and the merged table's keys stay sorted.
func TestCompactMergesSortedTables(t *testing.T) {
	e := NewEngine(Options{Shards: 1})
	for round := 0; round < 4; round++ {
		for i := 0; i < 50; i++ {
			if (i+round)%2 == 0 { // overlapping and disjoint keys per table
				e.Apply([]byte(fmt.Sprintf("k%03d", i)), wire.Value{Data: []byte(fmt.Sprintf("r%d", round)), Timestamp: int64(round*100 + i + 1)})
			}
		}
		e.Flush()
	}
	e.Compact()
	st := e.Stats()
	if st.FlushedTables != 1 || st.Compactions != 1 {
		t.Fatalf("stats = %+v", st)
	}
	prev := ""
	e.Scan(nil, nil, func(key []byte, v wire.Value) bool {
		if string(key) <= prev {
			t.Fatalf("scan out of order: %q after %q", key, prev)
		}
		prev = string(key)
		return true
	})
	// Newest round wins for every key present in multiple tables: k010 was
	// written in rounds 0 and 2, so the round-2 version must survive.
	v, ok := e.Get([]byte("k010"))
	if !ok || string(v.Data) != "r2" {
		t.Fatalf("k010 = %q ok=%v, want r2 (newest table)", v.Data, ok)
	}
}

// Command harmony-bench regenerates the figures of the paper's evaluation
// against the simulated cluster. Each experiment prints an aligned table
// (one row per x value, one column per curve) mirroring the corresponding
// plot, and optionally writes long-form CSV.
//
// Usage:
//
//	harmony-bench -experiment all
//	harmony-bench -experiment fig5 -scenario grid5000 -ops 100000
//	harmony-bench -experiment fig4a -csv out/
//	harmony-bench -experiment hotcold -json out/hotcold.json
//	harmony-bench -experiment regroup -json out/regroup.json
//	harmony-bench -experiment fig5 -arrival 8000   # open-loop Poisson load
//	harmony-bench -backend live -experiment hotcold -procs 5 -json out/live.json
//
// Experiments: fig4a fig4b fig5 fig6 headline ablations hotcold regroup lag
// churn partition all. fig5 and fig6 derive from the same measurement grid;
// requesting either runs the grid for the selected scenario(s). hotcold
// compares the per-group multi-model controller against the global
// controller on a hot/cold key split; regroup compares learned online
// regrouping against build-time-pinned groups under a migrating hotspot;
// lag measures time-from-regime-change-to-stable-level on the drifting
// scenario; partition splits the cluster majority/minority under load and
// enforces the availability/fail-fast/re-convergence contract (nonzero exit
// on violation); -json writes results (plus any figures) as
// machine-readable JSON for CI artifacts.
//
// -backend live replaces the simulated cluster with a spawned cluster of
// real server processes (re-executions of this binary dispatching into
// internal/server) driven over real TCP; the hotcold and churn experiments
// then measure the deployed stack — kernel sockets, kill -9 failure
// injection, dual-read staleness probes — instead of the model.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"harmony/internal/bench"
	"harmony/internal/server"
)

func main() {
	// A process carrying the child marker IS a cluster member: dispatch
	// into the server before touching bench flags.
	if os.Getenv(bench.LiveChildEnv) == "1" {
		os.Exit(server.Main(os.Args[1:]))
	}
	var (
		experiment = flag.String("experiment", "all", "fig4a|fig4b|fig5|fig6|headline|ablations|hotcold|regroup|lag|churn|partition|all")
		scenario   = flag.String("scenario", "both", "a scenario name (grid5000, ec2, wan-heavytail, degraded, congested-bimodal, drifting), 'both' paper testbeds, or 'all'")
		ops        = flag.Int64("ops", 30000, "operations per measurement point")
		seed       = flag.Int64("seed", 1, "root random seed")
		threads    = flag.String("threads", "", "comma-separated thread sweep override, e.g. 1,15,40,70,90,100")
		arrival    = flag.Float64("arrival", 0, "open-loop Poisson arrival rate (ops/s); 0 keeps the paper's closed loop")
		csvDir     = flag.String("csv", "", "directory to write per-figure CSV files")
		jsonPath   = flag.String("json", "", "file to write machine-readable JSON results")
		quiet      = flag.Bool("quiet", false, "suppress progress lines")

		backend     = flag.String("backend", "sim", "sim|live: simulated cluster or spawned server processes")
		procs       = flag.Int("procs", 0, "live: cluster size (0 = experiment default)")
		liveMeasure = flag.Duration("live-measure", 0, "live hotcold: measured duration override")
		liveOutage  = flag.Duration("live-outage", 0, "live churn/partition: outage (cut) duration override")
		livePost    = flag.Duration("live-postwatch", 0, "live churn/partition: post-recovery watch override")
		liveKeys    = flag.Int64("live-keys", 0, "live: total keyspace override (hot range scales with it)")
		liveLogs    = flag.String("live-logs", "", "live: directory for member process logs (default: temp)")
	)
	flag.Parse()

	opts := bench.Options{OpsPerPoint: *ops, Seed: *seed, ArrivalRate: *arrival}
	if !*quiet {
		opts.Progress = func(line string) { fmt.Fprintln(os.Stderr, "  "+line) }
	}
	if *threads != "" {
		for _, part := range strings.Split(*threads, ",") {
			var t int
			if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d", &t); err != nil || t <= 0 {
				fatalf("bad -threads entry %q", part)
			}
			opts.Threads = append(opts.Threads, t)
		}
	}

	switch *backend {
	case "sim":
	case "live":
		runLiveBackend(*experiment, opts, *jsonPath, liveOverrides{
			procs: *procs, measure: *liveMeasure, outage: *liveOutage,
			postWatch: *livePost, totalKeys: *liveKeys, logDir: *liveLogs,
		})
		return
	default:
		fatalf("unknown backend %q (have sim, live)", *backend)
	}

	scenarios := selectScenarios(*scenario)
	start := time.Now()
	var figures []bench.Figure
	var hotcolds []bench.HotColdResult
	var regroups []bench.RegroupResult
	var lags []bench.LagResult
	var churns []bench.ChurnResult
	var partitions []bench.PartitionResult
	var violations []string

	runGridFigures := func() {
		ids := map[string][2]string{
			"grid5000": {"fig5a", "fig5c"},
			"ec2":      {"fig5b", "fig5d"},
		}
		staleIDs := map[string]string{"grid5000": "fig6a", "ec2": "fig6b"}
		for _, sc := range scenarios {
			g, err := bench.RunGrid(sc, bench.StandardPolicies(sc), opts)
			if err != nil {
				fatalf("grid %s: %v", sc.Name, err)
			}
			pair := ids[sc.Name]
			if wants(*experiment, "fig5") {
				figures = append(figures, g.LatencyFigure(pair[0]), g.ThroughputFigure(pair[1]))
			}
			if wants(*experiment, "fig6") {
				figures = append(figures, g.StalenessFigure(staleIDs[sc.Name]))
			}
		}
	}

	switch {
	case wants(*experiment, "fig4a"):
	case wants(*experiment, "fig4b"):
	case wants(*experiment, "fig5"), wants(*experiment, "fig6"),
		wants(*experiment, "headline"), wants(*experiment, "ablations"),
		wants(*experiment, "hotcold"), wants(*experiment, "regroup"),
		wants(*experiment, "lag"), wants(*experiment, "churn"),
		wants(*experiment, "partition"):
	default:
		fatalf("unknown experiment %q", *experiment)
	}

	if wants(*experiment, "fig4a") {
		fig, err := bench.Fig4a(opts)
		if err != nil {
			fatalf("fig4a: %v", err)
		}
		figures = append(figures, fig)
	}
	if wants(*experiment, "fig4b") {
		fig, err := bench.Fig4b(opts)
		if err != nil {
			fatalf("fig4b: %v", err)
		}
		figures = append(figures, fig)
	}
	if wants(*experiment, "fig5") || wants(*experiment, "fig6") {
		runGridFigures()
	}
	if wants(*experiment, "headline") {
		for _, sc := range scenarios {
			sum, err := bench.Headline(sc, opts)
			if err != nil {
				fatalf("headline %s: %v", sc.Name, err)
			}
			fmt.Println(sum.Format())
		}
	}
	if wants(*experiment, "ablations") {
		runAblations(opts, &figures)
	}
	if wants(*experiment, "hotcold") {
		for _, sc := range scenarios {
			spec := bench.DefaultHotColdSpec()
			spec.Scenario = sc
			spec.ArrivalRate = *arrival
			res, err := bench.HotCold(spec, opts)
			if err != nil {
				fatalf("hotcold %s: %v", sc.Name, err)
			}
			fmt.Println(res.Format())
			hotcolds = append(hotcolds, res)
		}
	}

	if wants(*experiment, "regroup") {
		// The migrating-hotspot comparison runs on its default scenario:
		// group learning is scenario-independent machinery, and one testbed
		// keeps the experiment affordable in CI.
		spec := bench.DefaultRegroupSpec()
		res, err := bench.Regroup(spec, opts)
		if err != nil {
			fatalf("regroup: %v", err)
		}
		fmt.Println(res.Format())
		regroups = append(regroups, res)
	}
	if wants(*experiment, "lag") {
		res, err := bench.AdaptationLag(bench.Drifting(), opts)
		if err != nil {
			fatalf("lag: %v", err)
		}
		fmt.Println(res.Format())
		lags = append(lags, res)
	}
	if wants(*experiment, "churn") {
		// The failure/churn comparison runs on its purpose-built small
		// cluster (6 nodes, RF=5): anti-entropy's payoff is independent of
		// the WAN profiles, and one schedule keeps it affordable in CI.
		res, err := bench.Churn(bench.DefaultChurnSpec(), opts)
		if err != nil {
			fatalf("churn: %v", err)
		}
		fmt.Println(res.Format())
		churns = append(churns, res)
	}
	if wants(*experiment, "partition") {
		// The partition experiment runs on its purpose-built small cluster
		// and checks its own availability/fail-fast/re-convergence contract;
		// violations fail the invocation after results are written.
		res, err := bench.Partition(bench.DefaultPartitionSpec(), opts)
		if err != nil {
			fatalf("partition: %v", err)
		}
		fmt.Println(res.Format())
		partitions = append(partitions, res)
		violations = append(violations, bench.CheckPartition(res)...)
	}

	if *jsonPath != "" {
		writeJSON(*jsonPath, figures, hotcolds, regroups, lags, churns, partitions)
	}

	for _, f := range figures {
		fmt.Println(f.Format())
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fatalf("csv dir: %v", err)
			}
			path := filepath.Join(*csvDir, f.ID+".csv")
			if err := os.WriteFile(path, []byte(f.CSV()), 0o644); err != nil {
				fatalf("write %s: %v", path, err)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", path)
		}
	}
	fmt.Fprintf(os.Stderr, "done in %v\n", time.Since(start).Round(time.Millisecond))
	failOnViolations(violations)
}

// failOnViolations exits nonzero when a checked experiment's contract was
// violated — after results and artifacts are already written, so the failed
// run is still inspectable.
func failOnViolations(violations []string) {
	if len(violations) == 0 {
		return
	}
	for _, v := range violations {
		fmt.Fprintln(os.Stderr, "harmony-bench: partition contract: "+v)
	}
	os.Exit(1)
}

// liveOverrides carries the CLI knobs that shrink (or grow) the live
// experiment defaults — CI smoke runs a 3-process cluster for seconds.
type liveOverrides struct {
	procs     int
	measure   time.Duration
	outage    time.Duration
	postWatch time.Duration
	totalKeys int64
	logDir    string
}

// runLiveBackend executes the live-cluster experiments and writes their own
// JSON document (the out/live.json CI artifact).
func runLiveBackend(experiment string, opts bench.Options, jsonPath string, ov liveOverrides) {
	if !wants(experiment, "hotcold") && !wants(experiment, "churn") && !wants(experiment, "partition") {
		fatalf("backend live supports -experiment hotcold, churn, partition, or all (got %q)", experiment)
	}
	start := time.Now()
	var hots []bench.LiveHotColdResult
	var churns []bench.LiveChurnResult
	var partitions []bench.PartitionResult
	var violations []string
	if wants(experiment, "hotcold") {
		spec := bench.DefaultLiveHotColdSpec()
		if ov.procs > 0 {
			spec.Procs = ov.procs
			spec.RF = min(spec.RF, ov.procs)
		}
		if ov.measure > 0 {
			spec.Measure = ov.measure
		}
		if ov.totalKeys > 0 {
			spec.TotalKeys = ov.totalKeys
			spec.HotKeys = max(ov.totalKeys/20, 1)
		}
		spec.LogDir = ov.logDir
		res, err := bench.LiveHotCold(spec, opts)
		if err != nil {
			fatalf("live hotcold: %v", err)
		}
		fmt.Println(res.Format())
		hots = append(hots, res)
	}
	if wants(experiment, "churn") {
		spec := bench.DefaultLiveChurnSpec()
		if ov.procs > 0 {
			spec.Procs = ov.procs
			spec.RF = min(spec.RF, ov.procs)
		}
		if ov.outage > 0 {
			spec.Outage = ov.outage
		}
		if ov.postWatch > 0 {
			spec.PostWatch = ov.postWatch
		}
		if ov.totalKeys > 0 {
			spec.TotalKeys = ov.totalKeys
			spec.HotKeys = max(ov.totalKeys/15, 1)
		}
		spec.LogDir = ov.logDir
		res, err := bench.LiveChurn(spec, opts)
		if err != nil {
			fatalf("live churn: %v", err)
		}
		fmt.Println(res.Format())
		churns = append(churns, res)
	}
	if wants(experiment, "partition") {
		spec := bench.DefaultLivePartitionSpec()
		if ov.procs > 0 {
			spec.Procs = ov.procs
			// Keep a strict majority: the small side is at most half minus one.
			spec.MinorityNodes = max((ov.procs-1)/2, 1)
		}
		if ov.outage > 0 {
			spec.Cut = ov.outage
		}
		if ov.postWatch > 0 {
			spec.PostWatch = ov.postWatch
		}
		if ov.totalKeys > 0 {
			spec.TotalKeys = ov.totalKeys
			spec.HotKeys = max(ov.totalKeys/15, 1)
		}
		spec.LogDir = ov.logDir
		res, err := bench.LivePartition(spec, opts)
		if err != nil {
			fatalf("live partition: %v", err)
		}
		fmt.Println(res.Format())
		partitions = append(partitions, res)
		violations = append(violations, bench.CheckPartition(res)...)
	}
	if jsonPath != "" {
		doc := struct {
			LiveHotCold   []bench.LiveHotColdResult `json:"live_hotcold,omitempty"`
			LiveChurn     []bench.LiveChurnResult   `json:"live_churn,omitempty"`
			LivePartition []bench.PartitionResult   `json:"live_partition,omitempty"`
		}{LiveHotCold: hots, LiveChurn: churns, LivePartition: partitions}
		b, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			fatalf("marshal live json: %v", err)
		}
		if dir := filepath.Dir(jsonPath); dir != "." {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				fatalf("json dir: %v", err)
			}
		}
		if err := os.WriteFile(jsonPath, append(b, '\n'), 0o644); err != nil {
			fatalf("write %s: %v", jsonPath, err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", jsonPath)
	}
	fmt.Fprintf(os.Stderr, "done in %v\n", time.Since(start).Round(time.Millisecond))
	failOnViolations(violations)
}

func runAblations(opts bench.Options, figures *[]bench.Figure) {
	if fig, err := bench.AblationFixedTp(opts); err != nil {
		fatalf("ablation fixedtp: %v", err)
	} else {
		*figures = append(*figures, fig)
	}
	if fig, err := bench.AblationMonitorInterval(opts); err != nil {
		fatalf("ablation interval: %v", err)
	} else {
		*figures = append(*figures, fig)
	}
	if fig, err := bench.AblationReadRepair(opts); err != nil {
		fatalf("ablation read-repair: %v", err)
	} else {
		*figures = append(*figures, fig)
	}
	if figs, err := bench.AblationVsQuorum(opts); err != nil {
		fatalf("ablation quorum: %v", err)
	} else {
		*figures = append(*figures, figs...)
	}
	if fig, err := bench.AblationStrategy(opts); err != nil {
		fatalf("ablation strategy: %v", err)
	} else {
		*figures = append(*figures, fig)
	}
}

// writeJSON persists every result of the invocation as one machine-readable
// document (the CI artifact format).
func writeJSON(path string, figures []bench.Figure, hotcolds []bench.HotColdResult,
	regroups []bench.RegroupResult, lags []bench.LagResult, churns []bench.ChurnResult,
	partitions []bench.PartitionResult) {
	doc := struct {
		Figures   []bench.Figure          `json:"figures,omitempty"`
		HotCold   []bench.HotColdResult   `json:"hotcold,omitempty"`
		Regroup   []bench.RegroupResult   `json:"regroup,omitempty"`
		Lag       []bench.LagResult       `json:"lag,omitempty"`
		Churn     []bench.ChurnResult     `json:"churn,omitempty"`
		Partition []bench.PartitionResult `json:"partition,omitempty"`
	}{Figures: figures, HotCold: hotcolds, Regroup: regroups, Lag: lags, Churn: churns,
		Partition: partitions}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fatalf("marshal json: %v", err)
	}
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			fatalf("json dir: %v", err)
		}
	}
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		fatalf("write %s: %v", path, err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
}

func selectScenarios(name string) []bench.Scenario {
	all := bench.Scenarios()
	names := make([]string, 0, len(all))
	for n := range all {
		names = append(names, n)
	}
	sort.Strings(names)
	switch name {
	case "both":
		return []bench.Scenario{bench.Grid5000(), bench.EC2()}
	case "all":
		out := make([]bench.Scenario, 0, len(all))
		for _, n := range names {
			out = append(out, all[n])
		}
		return out
	}
	if sc, ok := all[name]; ok {
		return []bench.Scenario{sc}
	}
	fatalf("unknown scenario %q (have %s, both, all)", name, strings.Join(names, ", "))
	return nil
}

func wants(experiment, which string) bool {
	return experiment == which || experiment == "all"
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "harmony-bench: "+format+"\n", args...)
	os.Exit(1)
}

package wire

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"testing"
	"testing/quick"
)

// TestBodySizeMatchesEncoding pins bodySize to the Encode switch: for every
// message kind the declared body size must equal the encoded body exactly,
// or Encode's direct-into-dst framing would corrupt the stream.
func TestBodySizeMatchesEncoding(t *testing.T) {
	for _, m := range allSampleMessages() {
		want, err := bodySize(m)
		if err != nil {
			t.Fatalf("%T: bodySize: %v", m, err)
		}
		b, err := Encode(nil, m)
		if err != nil {
			t.Fatalf("%T: encode: %v", m, err)
		}
		n, sz := binary.Uvarint(b)
		if sz <= 0 || int(n) != len(b)-sz {
			t.Fatalf("%T: frame header says %d, body is %d bytes", m, n, len(b)-sz)
		}
		if int(n) != want {
			t.Fatalf("%T: bodySize = %d, encoded body = %d", m, want, n)
		}
	}
}

// TestBodySizeProperty drives bodySize vs Encode over randomized field
// contents for the hot-path messages (varint widths vary with magnitude).
func TestBodySizeProperty(t *testing.T) {
	if err := quick.Check(func(id uint64, key, data []byte, ts int64, tomb, hint bool) bool {
		for _, m := range []Message{
			Mutation{ID: id, Key: key, Value: Value{Data: data, Timestamp: ts, Tombstone: tomb}, Hint: hint},
			ReadRequest{ID: id, Key: key, Level: Quorum},
			WriteRequest{ID: id, Key: key, Value: data, Level: One},
			ReplicaReadResp{ID: id, Found: tomb, Value: Value{Data: data, Timestamp: ts}},
			WriteResponse{ID: id, OK: hint, Timestamp: ts},
			StatsResponse{ID: id, Reads: id >> 3, Writes: id >> 7,
				KeySamples: []KeySample{{Key: key, Reads: float64(ts)}}},
		} {
			want, err := bodySize(m)
			if err != nil {
				return false
			}
			b, err := Encode(nil, m)
			if err != nil {
				return false
			}
			n, sz := binary.Uvarint(b)
			if sz <= 0 || int(n) != len(b)-sz || int(n) != want {
				return false
			}
			if Size(m) != len(b) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestEncodeZeroAllocs is the double-copy regression gate: encoding into a
// buffer with capacity must not allocate at all (the old codec built a
// scratch buffer and copied it into dst, costing several allocations per
// message).
func TestEncodeZeroAllocs(t *testing.T) {
	msgs := []Message{
		Mutation{ID: 42, Key: bytes.Repeat([]byte("k"), 24), Value: Value{Data: bytes.Repeat([]byte("v"), 1024), Timestamp: 1234567}},
		ReadRequest{ID: 7, Key: []byte("user00001234"), Level: Quorum},
		ReplicaReadResp{ID: 9, Found: true, Value: Value{Data: bytes.Repeat([]byte("p"), 256), Timestamp: 55}},
		MutationAck{ID: 3},
		WriteResponse{ID: 4, OK: true, Timestamp: 99},
	}
	buf := make([]byte, 0, 8192)
	for _, m := range msgs {
		m := m
		allocs := testing.AllocsPerRun(200, func() {
			var err error
			if buf, err = Encode(buf[:0], m); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("%T: Encode into pre-sized dst allocates %.1f/op, want 0", m, allocs)
		}
	}
}

// TestSizeZeroAllocs: Size runs on every simulated-fabric send, so it must
// not encode (the old implementation serialized the whole message and threw
// it away).
func TestSizeZeroAllocs(t *testing.T) {
	// Pre-boxed so the measurement sees Size itself, not interface boxing.
	var m Message = Mutation{ID: 42, Key: bytes.Repeat([]byte("k"), 24), Value: Value{Data: bytes.Repeat([]byte("v"), 1024), Timestamp: 1234567}}
	allocs := testing.AllocsPerRun(200, func() {
		if Size(m) == 0 {
			t.Fatal("zero size")
		}
	})
	if allocs != 0 {
		t.Errorf("Size allocates %.1f/op, want 0", allocs)
	}
}

// TestDecodeSharedAliases verifies both halves of the borrow contract: the
// decoded message equals the copying decode, and its byte fields alias the
// input buffer (mutating the input mutates the message).
func TestDecodeSharedAliases(t *testing.T) {
	for _, m := range allSampleMessages() {
		b, err := Encode(nil, m)
		if err != nil {
			t.Fatal(err)
		}
		shared, n, err := DecodeShared(b)
		if err != nil {
			t.Fatalf("%T: DecodeShared: %v", m, err)
		}
		if n != len(b) {
			t.Fatalf("%T: consumed %d of %d", m, n, len(b))
		}
		if !reflect.DeepEqual(shared, m) {
			t.Fatalf("%T: shared decode mismatch:\n got %#v\nwant %#v", m, shared, m)
		}
	}
	// Aliasing: scribbling on the input must show through the message.
	mut := Mutation{ID: 1, Key: []byte("aliased-key"), Value: Value{Data: []byte("aliased-value"), Timestamp: 5}}
	b, err := Encode(nil, mut)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := DecodeShared(b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range b {
		b[i] = 'X'
	}
	gm := got.(Mutation)
	if string(gm.Key) == "aliased-key" || string(gm.Value.Data) == "aliased-value" {
		t.Fatal("DecodeShared copied fields; expected them to alias the input")
	}
	// And the copying Decode must NOT alias.
	b2, _ := Encode(nil, mut)
	got2, _, err := Decode(b2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range b2 {
		b2[i] = 'X'
	}
	g2 := got2.(Mutation)
	if string(g2.Key) != "aliased-key" || string(g2.Value.Data) != "aliased-value" {
		t.Fatal("Decode aliased the input; expected owned copies")
	}
}

// TestDecodeSharedFewerAllocs pins the point of the borrow path: no
// per-field byte copies.
func TestDecodeSharedFewerAllocs(t *testing.T) {
	m := Mutation{ID: 42, Key: bytes.Repeat([]byte("k"), 24), Value: Value{Data: bytes.Repeat([]byte("v"), 1024), Timestamp: 1234567}}
	b, err := Encode(nil, m)
	if err != nil {
		t.Fatal(err)
	}
	shared := testing.AllocsPerRun(200, func() {
		if _, _, err := DecodeShared(b); err != nil {
			t.Fatal(err)
		}
	})
	copied := testing.AllocsPerRun(200, func() {
		if _, _, err := Decode(b); err != nil {
			t.Fatal(err)
		}
	})
	if shared >= copied {
		t.Errorf("DecodeShared allocs (%.1f) not below Decode allocs (%.1f)", shared, copied)
	}
	if shared > 1 { // the Message interface box is the only allocation left
		t.Errorf("DecodeShared allocates %.1f/op, want <=1", shared)
	}
}

// TestFramePoolRoundTrip covers the pooled transport-send path.
func TestFramePoolRoundTrip(t *testing.T) {
	m := Mutation{ID: 8, Key: []byte("mk"), Value: Value{Data: []byte("mv"), Timestamp: 99}}
	bp, err := GetFrame(m)
	if err != nil {
		t.Fatal(err)
	}
	got, n, err := Decode(*bp)
	if err != nil || n != len(*bp) {
		t.Fatalf("decode pooled frame: %v (n=%d len=%d)", err, n, len(*bp))
	}
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("pooled frame mismatch: %#v", got)
	}
	PutFrame(bp)
	// Reuse must not leak the previous frame's bytes into the next encode.
	bp2, err := GetFrame(MutationAck{ID: 1})
	if err != nil {
		t.Fatal(err)
	}
	got2, _, err := Decode(*bp2)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := got2.(MutationAck); !ok {
		t.Fatalf("pooled reuse decoded %#v", got2)
	}
	PutFrame(bp2)
}

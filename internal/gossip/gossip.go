// Package gossip implements the cluster-membership substrate: periodic
// anti-entropy heartbeat exchange (a simplified Cassandra-style gossiper)
// and a phi-accrual failure detector. Nodes learn about peer liveness
// transitively, and the detector's Alive answer feeds the store's hinted
// handoff decisions.
package gossip

import (
	"math"
	"math/rand"
	"sync"
	"time"

	"harmony/internal/ring"
	"harmony/internal/sim"
	"harmony/internal/transport"
	"harmony/internal/wire"
)

// state is what a gossiper knows about one peer.
type state struct {
	generation uint64
	version    uint64
	lastSeen   time.Time
	arrivals   *arrivalWindow
	convicted  bool // phi crossed the threshold; cleared on recovery
}

// arrivalWindow tracks heartbeat inter-arrival statistics for phi-accrual.
type arrivalWindow struct {
	intervals []float64 // seconds, ring buffer
	next      int
	full      bool
	last      time.Time
	haveLast  bool
}

const arrivalWindowSize = 32

func (w *arrivalWindow) observe(t time.Time) {
	if !w.haveLast {
		w.last = t
		w.haveLast = true
		return
	}
	dt := t.Sub(w.last).Seconds()
	w.last = t
	if dt <= 0 {
		return
	}
	if w.intervals == nil {
		w.intervals = make([]float64, arrivalWindowSize)
	}
	w.intervals[w.next] = dt
	w.next = (w.next + 1) % arrivalWindowSize
	if w.next == 0 {
		w.full = true
	}
}

func (w *arrivalWindow) mean() float64 {
	n := w.next
	if w.full {
		n = arrivalWindowSize
	}
	if n == 0 {
		return 0
	}
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += w.intervals[i]
	}
	return sum / float64(n)
}

// phi computes the phi-accrual suspicion level at time now: the negative
// log-probability (base 10) that a heartbeat gap this long occurs under an
// exponential inter-arrival model fitted to the observed mean.
func (w *arrivalWindow) phi(now time.Time) float64 {
	if !w.haveLast {
		return 0
	}
	mean := w.mean()
	if mean <= 0 {
		return 0
	}
	elapsed := now.Sub(w.last).Seconds()
	if elapsed <= 0 {
		return 0
	}
	// P(gap > elapsed) = exp(-elapsed/mean); phi = -log10(P).
	return elapsed / mean * math.Log10(math.E)
}

// Config parameterizes a Gossiper.
type Config struct {
	// ID is this node's identity.
	ID ring.NodeID
	// Peers is the full member list (static clusters; joins arrive via
	// gossip from any seed inside Peers).
	Peers []ring.NodeID
	// Interval between gossip rounds; zero means 1s.
	Interval time.Duration
	// Fanout peers contacted per round; zero means 3.
	Fanout int
	// PhiThreshold above which a peer is convicted; zero means 8 (the
	// Cassandra default).
	PhiThreshold float64
	// Seed for peer selection.
	Seed int64
	// OnRecover, when set, fires once per down→up transition: a peer this
	// gossiper had convicted starts heartbeating again. It is the trigger
	// anti-entropy repair uses to schedule a priority session with the
	// recovered node (wire it to the node's repair.Manager.PeerRecovered).
	// The callback runs on the gossiper's runtime, outside its lock.
	OnRecover func(ring.NodeID)
}

// Gossiper exchanges heartbeat digests and answers liveness queries. Alive
// is safe to call from any goroutine; everything else runs on the node's
// runtime.
type Gossiper struct {
	cfg  Config
	rt   sim.Runtime
	send transport.Sender
	rng  *rand.Rand

	mu     sync.Mutex
	states map[ring.NodeID]*state
	self   *state
	stop   func()
	rounds uint64
}

// New creates a gossiper; Start begins rounds. Register it on the fabric
// (typically multiplexed with the storage node under the same ID; see Mux).
func New(cfg Config, rt sim.Runtime, send transport.Sender) *Gossiper {
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	if cfg.Fanout <= 0 {
		cfg.Fanout = 3
	}
	if cfg.PhiThreshold <= 0 {
		cfg.PhiThreshold = 8
	}
	g := &Gossiper{
		cfg:    cfg,
		rt:     rt,
		send:   send,
		rng:    rand.New(rand.NewSource(cfg.Seed ^ int64(len(cfg.ID)))),
		states: make(map[ring.NodeID]*state),
	}
	g.self = &state{generation: 1, version: 0, lastSeen: rt.Now()}
	g.states[cfg.ID] = g.self
	return g
}

// Start begins periodic gossip rounds.
func (g *Gossiper) Start() {
	if g.stop != nil {
		return
	}
	// sim.Every's stop is safe to call from any goroutine (real-runtime
	// deployments stop the gossiper from outside the mailbox goroutine).
	g.stop = sim.Every(g.rt, func() time.Duration { return g.cfg.Interval }, g.round)
}

// Stop halts gossip rounds.
func (g *Gossiper) Stop() {
	if g.stop != nil {
		g.stop()
		g.stop = nil
	}
}

// Rounds reports completed gossip rounds (for tests).
func (g *Gossiper) Rounds() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.rounds
}

func (g *Gossiper) round() {
	g.mu.Lock()
	g.self.version++
	g.self.lastSeen = g.rt.Now()
	g.self.arrivalsObserve(g.rt.Now())
	recovered := g.sweepConvictionsLocked()
	digests := g.digestsLocked()
	g.rounds++
	// Pick fanout random peers.
	peers := make([]ring.NodeID, 0, len(g.cfg.Peers))
	for _, p := range g.cfg.Peers {
		if p != g.cfg.ID {
			peers = append(peers, p)
		}
	}
	g.rng.Shuffle(len(peers), func(i, j int) { peers[i], peers[j] = peers[j], peers[i] })
	if len(peers) > g.cfg.Fanout {
		peers = peers[:g.cfg.Fanout]
	}
	g.mu.Unlock()
	if g.cfg.OnRecover != nil {
		for _, id := range recovered {
			g.cfg.OnRecover(id)
		}
	}
	for _, p := range peers {
		g.send.Send(g.cfg.ID, p, wire.GossipSyn{From: string(g.cfg.ID), Digests: digests})
	}
}

// sweepConvictionsLocked re-evaluates every peer's phi, recording
// conviction transitions and returning the peers that just recovered
// (down→up) this round.
func (g *Gossiper) sweepConvictionsLocked() []ring.NodeID {
	now := g.rt.Now()
	var recovered []ring.NodeID
	for id, st := range g.states {
		if id == g.cfg.ID || st.arrivals == nil {
			continue
		}
		alive := st.arrivals.phi(now) < g.cfg.PhiThreshold
		switch {
		case !alive && !st.convicted:
			st.convicted = true
		case alive && st.convicted:
			st.convicted = false
			recovered = append(recovered, id)
		}
	}
	return recovered
}

func (s *state) observe(t time.Time) {
	s.lastSeen = t
	if s.arrivals == nil {
		s.arrivals = &arrivalWindow{}
	}
	s.arrivals.observe(t)
}

// arrivalsObserve keeps the self state's window warm so phi for self stays
// ~0 and Members/Phi treat self uniformly.
func (s *state) arrivalsObserve(t time.Time) { s.observe(t) }

func (g *Gossiper) digestsLocked() []wire.GossipEntry {
	out := make([]wire.GossipEntry, 0, len(g.states))
	for id, st := range g.states {
		out = append(out, wire.GossipEntry{Node: string(id), Generation: st.generation, Version: st.version})
	}
	return out
}

// Deliver implements transport.Handler for gossip messages.
func (g *Gossiper) Deliver(from ring.NodeID, m wire.Message) {
	switch msg := m.(type) {
	case wire.GossipSyn:
		g.mergeEntries(msg.Digests)
		g.mu.Lock()
		reply := g.digestsLocked()
		g.mu.Unlock()
		g.send.Send(g.cfg.ID, from, wire.GossipAck{From: string(g.cfg.ID), Entries: reply})
	case wire.GossipAck:
		g.mergeEntries(msg.Entries)
	}
}

func (g *Gossiper) mergeEntries(entries []wire.GossipEntry) {
	now := g.rt.Now()
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, e := range entries {
		id := ring.NodeID(e.Node)
		if id == g.cfg.ID {
			continue
		}
		st, ok := g.states[id]
		if !ok {
			st = &state{}
			g.states[id] = st
		}
		newer := e.Generation > st.generation ||
			(e.Generation == st.generation && e.Version > st.version)
		if newer {
			st.generation = e.Generation
			st.version = e.Version
			st.observe(now)
		}
	}
}

// Phi returns the current suspicion level for a peer (0 when unknown).
func (g *Gossiper) Phi(id ring.NodeID) float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	st, ok := g.states[id]
	if !ok || st.arrivals == nil {
		return 0
	}
	return st.arrivals.phi(g.rt.Now())
}

// Alive reports whether a peer is believed up: it is alive until its phi
// exceeds the conviction threshold. Unknown peers (never heard from) are
// optimistically alive, matching Cassandra's behaviour at bootstrap.
func (g *Gossiper) Alive(id ring.NodeID) bool {
	if id == g.cfg.ID {
		return true
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	st, ok := g.states[id]
	if !ok || st.arrivals == nil {
		return true
	}
	return st.arrivals.phi(g.rt.Now()) < g.cfg.PhiThreshold
}

// Members returns every node this gossiper has state for.
func (g *Gossiper) Members() []ring.NodeID {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]ring.NodeID, 0, len(g.states))
	for id := range g.states {
		out = append(out, id)
	}
	return out
}

// Mux fans incoming messages to a gossiper and a fallback handler, letting
// one fabric endpoint serve both the storage node and its gossiper.
type Mux struct {
	Gossip *Gossiper
	Rest   transport.Handler
}

// Deliver implements transport.Handler.
func (m Mux) Deliver(from ring.NodeID, msg wire.Message) {
	switch msg.(type) {
	case wire.GossipSyn, wire.GossipAck:
		m.Gossip.Deliver(from, msg)
	default:
		if m.Rest != nil {
			m.Rest.Deliver(from, msg)
		}
	}
}

var (
	_ transport.Handler = (*Gossiper)(nil)
	_ transport.Handler = Mux{}
)

package server

import (
	"encoding/json"
	"errors"
	"net/http"
	"strings"
	"testing"
	"time"

	"harmony/internal/client"
	"harmony/internal/faults"
	"harmony/internal/ring"
	"harmony/internal/sim"
	"harmony/internal/transport"
	"harmony/internal/wire"
)

func httpPost(t *testing.T, url, body string) (int, string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return resp.StatusCode, sb.String()
}

// TestLiveFaultEndpointPartitions drives the whole live fault plane: two
// real server processes-worth of stacks in one test binary, a partition
// installed at runtime via POST /faults, strict writes failing across the
// cut while the endpoint reports the rules, then a heal restoring service.
func TestLiveFaultEndpointPartitions(t *testing.T) {
	addr1, addr2 := reservePort(t), reservePort(t)
	members := []Member{{ID: "n1", Addr: addr1}, {ID: "n2", Addr: addr2}}
	mk := func(id ring.NodeID, listen string) *Server {
		s, err := New(Config{
			ID: id, Listen: listen, Members: members, RF: 2,
			AdminAddr: "127.0.0.1:0", LogLevel: "error", Logf: func(string, ...any) {},
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(s.Close)
		return s
	}
	s1 := mk("n1", addr1)
	mk("n2", addr2)

	rt := sim.NewRealRuntime()
	defer rt.Stop()
	tcp, err := transport.NewTCPNode(transport.TCPConfig{
		ID:    "cli",
		Peers: map[ring.NodeID]string{"n1": addr1},
		Logf:  func(string, ...any) {},
	}, rt, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer tcp.Close()
	drv, err := client.New(client.Options{
		ID: "cli", Coordinators: []ring.NodeID{"n1"}, Timeout: 400 * time.Millisecond,
		Policy: client.Fixed{Write: wire.All},
	}, rt, tcp)
	if err != nil {
		t.Fatal(err)
	}
	tcp.SetHandler(drv)

	write := func(key string) error {
		done := make(chan error, 1)
		rt.Post(func() {
			drv.Write([]byte(key), []byte("v"), func(w client.WriteResult) { done <- w.Err })
		})
		return <-done
	}

	if err := write("before"); err != nil {
		t.Fatalf("pre-cut ALL write: %v", err)
	}

	base := "http://" + s1.AdminAddr()
	code, body := httpPost(t, base+"/faults", `{"partition":{"a":["n1"],"b":["*"]}}`)
	if code != http.StatusOK {
		t.Fatalf("POST /faults: %d %s", code, body)
	}
	var st faults.State
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("snapshot decode: %v\n%s", err, body)
	}
	if len(st.Partitions) != 1 {
		t.Fatalf("snapshot partitions = %+v, want 1", st.Partitions)
	}

	err = write("during")
	if err == nil {
		t.Fatal("ALL write across the cut succeeded")
	}
	if !errors.Is(err, client.ErrTimeout) && !errors.Is(err, client.ErrUnavailable) {
		t.Fatalf("cut write err = %v, want timeout/unavailable", err)
	}

	if code, body = httpPost(t, base+"/faults", `{"heal":true}`); code != http.StatusOK {
		t.Fatalf("heal: %d %s", code, body)
	}
	// Gossip may need a round or two to see the peer as UP again.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if err = write("after"); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("post-heal ALL write still failing: %v", err)
		}
		time.Sleep(100 * time.Millisecond)
	}

	if code, _ = httpGet(t, base+"/faults"); code != http.StatusOK {
		t.Fatalf("GET /faults: %d", code)
	}
}

package cluster

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"harmony/internal/client"
	"harmony/internal/ring"
	"harmony/internal/sim"
	"harmony/internal/simnet"
	"harmony/internal/wire"
)

// statsProbe captures StatsResponses sent to a test endpoint. (A struct
// pointer, not transport.HandlerFunc: the bus compares handler identity at
// delivery time and func values are not comparable.)
type statsProbe struct {
	got chan wire.StatsResponse
}

func (p *statsProbe) Deliver(_ ring.NodeID, m wire.Message) {
	if resp, ok := m.(wire.StatsResponse); ok {
		select {
		case p.got <- resp:
		default:
		}
	}
}

// broadcastUpdate sends a GroupUpdate to every node and lets it settle.
func broadcastUpdate(h *testHarness, u wire.GroupUpdate) {
	for _, id := range h.c.NodeIDs() {
		h.c.Bus.Send("probe", id, u)
	}
	h.s.RunFor(time.Second)
}

func TestGroupUpdateSwapsAssignmentAndRebaselines(t *testing.T) {
	spec := DefaultSpec()
	spec.Groups = 2
	spec.GroupFn = groupByPrefix
	h := newHarness(t, spec, client.Options{})
	h.write(t, "a0", "v")
	h.write(t, "b0", "v")
	h.read(t, "a0", wire.One)

	before := h.c.AggregateMetrics()
	if before.GroupWrites[0] != 1 || before.GroupWrites[1] != 1 || before.GroupEpoch != 0 {
		t.Fatalf("pre-update metrics = %+v", before)
	}

	// Epoch 1: three groups, 'a0' now belongs to group 2, everything else
	// defaults to group 1.
	broadcastUpdate(h, wire.GroupUpdate{
		Epoch:      1,
		Tolerances: []float64{0.02, 0.4, 0.9},
		Default:    1,
		Entries:    []wire.GroupAssign{{Key: []byte("a0"), Group: 2}},
	})
	m := h.c.AggregateMetrics()
	if m.GroupEpoch != 1 {
		t.Fatalf("epoch = %d, want 1", m.GroupEpoch)
	}
	if len(m.GroupReads) != 3 {
		t.Fatalf("group slices not resized: %v", m.GroupReads)
	}
	if m.GroupReads[0]+m.GroupReads[1]+m.GroupReads[2] != 0 ||
		m.GroupWrites[0]+m.GroupWrites[1]+m.GroupWrites[2] != 0 {
		t.Fatalf("counters not re-baselined: %+v", m)
	}
	if m.Reads != before.Reads || m.Writes != before.Writes {
		t.Fatal("aggregate counters must stay cumulative across epochs")
	}

	// New traffic tallies under the new assignment.
	h.read(t, "a0", wire.One)  // assigned group 2
	h.read(t, "zzz", wire.One) // unassigned -> default group 1
	h.write(t, "a0", "vv")
	m = h.c.AggregateMetrics()
	if m.GroupReads[2] != 1 || m.GroupReads[1] != 1 || m.GroupReads[0] != 0 {
		t.Fatalf("post-update reads = %v", m.GroupReads)
	}
	if m.GroupWrites[2] != 1 || m.GroupBytesWritten[2] != 2 {
		t.Fatalf("post-update writes = %v bytes = %v", m.GroupWrites, m.GroupBytesWritten)
	}
}

func TestGroupUpdateAppliesExactlyOncePerEpoch(t *testing.T) {
	spec := DefaultSpec()
	spec.Groups = 2
	spec.GroupFn = groupByPrefix
	h := newHarness(t, spec, client.Options{})

	up := wire.GroupUpdate{Epoch: 1, Tolerances: []float64{0.1, 0.5}, Default: 1}
	broadcastUpdate(h, up)
	h.write(t, "a0", "v")
	h.read(t, "a0", wire.One)
	mid := h.c.AggregateMetrics()
	if mid.GroupWrites[1] != 1 || mid.GroupReads[1] != 1 {
		t.Fatalf("mid metrics = %+v", mid)
	}

	// Redelivering the same epoch (and older epochs) must not zero the
	// counters a second time.
	broadcastUpdate(h, up)
	broadcastUpdate(h, wire.GroupUpdate{Epoch: 0, Tolerances: []float64{0.3}})
	after := h.c.AggregateMetrics()
	if after.GroupWrites[1] != 1 || after.GroupReads[1] != 1 || after.GroupEpoch != 1 {
		t.Fatalf("duplicate update re-baselined: %+v", after)
	}

	// A malformed update (no groups) is ignored outright.
	broadcastUpdate(h, wire.GroupUpdate{Epoch: 9})
	if got := h.c.AggregateMetrics().GroupEpoch; got != 1 {
		t.Fatalf("malformed update advanced the epoch to %d", got)
	}

	// The next epoch re-baselines exactly once more.
	broadcastUpdate(h, wire.GroupUpdate{Epoch: 2, Tolerances: []float64{0.1, 0.5}, Default: 0})
	final := h.c.AggregateMetrics()
	if final.GroupEpoch != 2 || final.GroupWrites[1] != 0 {
		t.Fatalf("epoch 2 not applied cleanly: %+v", final)
	}
}

func TestStatsResponseCarriesEpochAndKeySamples(t *testing.T) {
	spec := DefaultSpec()
	spec.Groups = 2
	spec.GroupFn = groupByPrefix
	spec.KeySampleLimit = 4
	h := newHarness(t, spec, client.Options{})

	// Hammer one key through a single coordinator so its sampler sees it.
	coord := h.c.NodeIDs()[0]
	probe := &statsProbe{got: make(chan wire.StatsResponse, 1)}
	h.c.Bus.Register("probe", h.s, probe)
	for i := 0; i < 6; i++ {
		h.c.Bus.Send("probe", coord, wire.ReadRequest{ID: uint64(100 + i), Key: []byte("a-hot"), Level: wire.One})
		h.c.Bus.Send("probe", coord, wire.WriteRequest{ID: uint64(200 + i), Key: []byte("a-hot"), Value: []byte("v"), Level: wire.One})
	}
	h.s.RunFor(time.Second)

	broadcastUpdate(h, wire.GroupUpdate{Epoch: 3, Tolerances: []float64{0.1, 0.5}, Default: 1})
	h.c.Bus.Send("probe", coord, wire.StatsRequest{ID: 1})
	h.s.RunFor(time.Second)

	select {
	case resp := <-probe.got:
		if resp.Epoch != 3 {
			t.Fatalf("stats epoch = %d, want 3", resp.Epoch)
		}
		if len(resp.Groups) != 2 {
			t.Fatalf("stats groups = %d, want 2", len(resp.Groups))
		}
		if len(resp.KeySamples) == 0 || len(resp.KeySamples) > 4 {
			t.Fatalf("key samples = %d, want 1..4", len(resp.KeySamples))
		}
		top := resp.KeySamples[0]
		if string(top.Key) != "a-hot" || top.Reads <= 0 || top.Writes <= 0 {
			t.Fatalf("top sample = %+v, want the hammered key with both weights", top)
		}
	default:
		t.Fatal("no stats response captured")
	}
}

func TestAggregateMetricsSkipsLaggardEpochGroups(t *testing.T) {
	spec := DefaultSpec()
	spec.Groups = 2
	spec.GroupFn = groupByPrefix
	h := newHarness(t, spec, client.Options{})
	h.write(t, "a0", "v")
	h.read(t, "a0", wire.One)

	// Roll only one node forward: the cluster is mid-rollout with mixed
	// epochs, and the laggards' old-group counters must not blend into the
	// new epoch's aggregate.
	h.c.Bus.Send("probe", h.c.NodeIDs()[0], wire.GroupUpdate{
		Epoch: 1, Tolerances: []float64{0.1, 0.5, 0.9}, Default: 2,
	})
	h.s.RunFor(time.Second)
	m := h.c.AggregateMetrics()
	if m.GroupEpoch != 1 {
		t.Fatalf("aggregate epoch = %d, want the newest (1)", m.GroupEpoch)
	}
	var groupOps uint64
	for _, v := range m.GroupReads {
		groupOps += v
	}
	for _, v := range m.GroupWrites {
		groupOps += v
	}
	if groupOps != 0 {
		t.Fatalf("laggard nodes' old-epoch group counters leaked into the aggregate: %+v", m)
	}
	if m.Reads == 0 || m.Writes == 0 {
		t.Fatal("aggregate counters must still cover every node")
	}

	// Once every node is at the same epoch the group aggregate resumes.
	broadcastUpdate(h, wire.GroupUpdate{Epoch: 2, Tolerances: []float64{0.1, 0.5}, Default: 1})
	h.write(t, "zz", "v")
	m = h.c.AggregateMetrics()
	if m.GroupEpoch != 2 || m.GroupWrites[1] != 1 {
		t.Fatalf("post-rollout aggregate = %+v", m)
	}
}

func TestKeySamplerRankEvictionSurvivesUniformWeights(t *testing.T) {
	ks := newKeySampler(0.5, 8)
	for i := 0; i < 8; i++ {
		ks.observe([]byte(fmt.Sprintf("u%d", i)), 1, 0) // all tied
	}
	ks.observe([]byte("next"), 1, 0) // triggers eviction at the cap
	if got := len(ks.keys); got != 7 {
		t.Fatalf("tied-weight eviction left %d keys, want 7 (evict 25%% by rank, not the whole tie)", got)
	}
}

func TestKeySamplerEvictsLightKeysAtCap(t *testing.T) {
	ks := newKeySampler(0.5, 8)
	for i := 0; i < 8; i++ {
		ks.observe([]byte(fmt.Sprintf("k%d", i)), float64(i+1), 0)
	}
	ks.observe([]byte("newcomer"), 100, 0) // must fit despite the cap
	out := ks.export(3)
	if len(out) != 3 || string(out[0].Key) != "newcomer" {
		t.Fatalf("export = %+v, want newcomer on top", out)
	}
	// Decay ages everything out after enough exports.
	for i := 0; i < 16; i++ {
		ks.export(0)
	}
	if got := len(ks.export(0)); got != 0 {
		t.Fatalf("%d keys survived full decay", got)
	}
}

// TestGroupUpdateRebaselineUnderRace exercises the epoch swap with real
// concurrency: goroutine runtimes deliver duplicate GroupUpdates and client
// traffic while another goroutine snapshots metrics. Under -race this
// proves the re-baseline happens exactly once per epoch with no data races
// between the swap, the counter writes, and the snapshots.
func TestGroupUpdateRebaselineUnderRace(t *testing.T) {
	spec := DefaultSpec()
	spec.DCs, spec.RacksPerDC, spec.NodesPerRack = 1, 1, 3
	spec.RF = 3
	spec.Groups = 2
	spec.GroupFn = groupByPrefix
	spec.Profile = simnet.UniformProfile(100 * time.Microsecond)
	c, err := BuildReal(spec, 7)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	rt := sim.NewRealRuntime()
	defer rt.Stop()
	drv, err := client.New(client.Options{ID: "race-client", Coordinators: c.NodeIDs()}, rt, c.Bus)
	if err != nil {
		t.Fatal(err)
	}
	c.Bus.Register("race-client", rt, drv)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // concurrent snapshot reader
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				for _, n := range c.Nodes {
					_ = n.Snapshot()
					_ = n.Epoch()
				}
			}
		}
	}()

	writeSync := func(key string) {
		done := make(chan struct{})
		rt.Post(func() {
			drv.Write([]byte(key), []byte("v"), func(client.WriteResult) { close(done) })
		})
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Error("write timed out")
		}
	}

	for epoch := uint64(1); epoch <= 5; epoch++ {
		u := wire.GroupUpdate{Epoch: epoch, Tolerances: []float64{0.1, 0.5}, Default: 1}
		// Duplicate deliveries of the same epoch from multiple goroutines.
		var du sync.WaitGroup
		for dup := 0; dup < 3; dup++ {
			du.Add(1)
			go func() {
				defer du.Done()
				for _, id := range c.NodeIDs() {
					c.Bus.Send("probe", id, u)
				}
			}()
		}
		du.Wait()
		writeSync(fmt.Sprintf("a%d", epoch))
	}
	// Let updates land everywhere, then verify every node converged on the
	// final epoch having re-baselined exactly once per epoch (counters
	// reflect only post-final-epoch traffic, bounded by total writes).
	deadline := time.Now().Add(5 * time.Second)
	for {
		all := true
		for _, n := range c.Nodes {
			if n.Epoch() != 5 {
				all = false
			}
		}
		if all || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	m := c.AggregateMetrics()
	if m.GroupEpoch != 5 {
		t.Fatalf("final epoch = %d, want 5", m.GroupEpoch)
	}
	if len(m.GroupReads) != 2 || len(m.GroupWrites) != 2 {
		t.Fatalf("final group slices = %v/%v", m.GroupReads, m.GroupWrites)
	}
	if m.Writes != 5 {
		t.Fatalf("aggregate writes = %d, want 5 (cumulative across epochs)", m.Writes)
	}
	if got := m.GroupWrites[0] + m.GroupWrites[1]; got > 1 {
		t.Fatalf("post-epoch-5 group writes = %d, want <= 1 (re-baselined)", got)
	}
}

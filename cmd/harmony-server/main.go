// Command harmony-server runs one storage node of the replicated key-value
// store over TCP. A cluster is a set of these processes sharing the same
// -cluster description; any node can coordinate client operations.
//
// Example three-node local cluster:
//
//	harmony-server -id n1 -listen 127.0.0.1:7001 -rf 3 \
//	  -cluster n1=127.0.0.1:7001/dc1/r1,n2=127.0.0.1:7002/dc1/r1,n3=127.0.0.1:7003/dc1/r2 &
//	harmony-server -id n2 -listen 127.0.0.1:7002 -rf 3 -cluster ... &
//	harmony-server -id n3 -listen 127.0.0.1:7003 -rf 3 -cluster ... &
//
// Then read and write with harmony-client. All assembly lives in
// internal/server, which harmony-bench's live backend re-executes as its
// cluster member processes.
package main

import (
	"os"

	"harmony/internal/server"
)

func main() { os.Exit(server.Main(os.Args[1:])) }

// Package storage implements a node-local storage engine with the write
// path the paper describes for Cassandra (§II-B): a mutation is appended to
// a commit log and applied to an in-memory table before it is acknowledged;
// memtables are periodically frozen and flushed to immutable tables that
// reads merge with last-writer-wins timestamp reconciliation.
//
// The engine is deliberately log-structured like Cassandra's, but flushed
// tables live in memory by default (the simulator runs thousands of node
// instances); a file-backed commit log is available for the real TCP
// deployment.
//
// The engine is lock-striped: keys hash onto N independent shards, each
// with its own mutex, memtable, and flushed tables, so concurrent
// operations on different shards never contend and a flush or compaction
// freezes one shard instead of stopping the world. Within a shard the
// engine maintains the invariant that the memtable always holds the newest
// visible version of a key and later tables shadow earlier ones, so a
// lookup probes the memtable and then tables newest-first, stopping at the
// first hit.
package storage

import (
	"fmt"
	"hash/maphash"
	"runtime"
	"slices"
	"sync"

	"harmony/internal/versioning"
	"harmony/internal/wire"
)

// maxShards bounds the stripe count (shard state is ~page-sized once maps
// warm up, and past the core count more stripes only dilute memtables).
const maxShards = 128

// shard is one lock stripe: an independent memtable plus flushed tables.
// The lock is a plain mutex, not an RWMutex: with operations spread over
// the stripes, intra-shard reader concurrency buys little, while the
// RWMutex write path costs roughly twice the atomic read-modify-writes per
// Apply (measured ~20% of the write hot path). All counters mutate under
// mu. The struct is padded to its own cache lines so one shard's hot mutex
// never false-shares with a neighbor's.
type shard struct {
	mu       sync.Mutex
	memtable map[string]*wire.Value
	memBytes int
	tables   []*table

	reads     uint64
	writes    uint64
	flushes   uint64
	compacted uint64
	siblings  uint64 // concurrent versions settled by the resolver

	_ [40]byte // pad to 128 bytes
}

// table is an immutable flushed memtable with sorted keys for scans.
type table struct {
	keys []string
	vals map[string]*wire.Value
}

// Engine is a single replica's storage. It is safe for concurrent use.
type Engine struct {
	shards    []shard
	mask      uint64 // len(shards)-1; shard selection is hash&mask
	seed      maphash.Seed
	flushAt   int // per-shard freeze threshold in bytes
	maxTables int // per-shard compaction trigger
	log       CommitLog
	resolver  versioning.Resolver
	onApply   func(key []byte, v wire.Value)
	onReplace func(key []byte, old wire.Value, hadOld bool, v wire.Value)
}

// Options configure an Engine.
type Options struct {
	// Shards is the lock-stripe count, rounded up to a power of two and
	// capped at 128; <=0 picks a power of two a small multiple above
	// GOMAXPROCS (see defaultShards). One shard reproduces the classic
	// single-lock engine exactly.
	Shards int
	// FlushThresholdBytes freezes a memtable after this much data across
	// the whole engine (each shard freezes at its 1/Shards slice);
	// <=0 means 4 MiB.
	FlushThresholdBytes int
	// MaxFlushedTables triggers a per-shard compaction when a shard's
	// flushed-table count exceeds it; <=0 means 4.
	MaxFlushedTables int
	// CommitLog, when non-nil, receives every mutation before it is applied
	// (durability hook). Nil disables logging.
	CommitLog CommitLog
	// Resolver arbitrates concurrent (sibling) versions detected by
	// vector-clock comparison; nil means versioning.LWW, which reproduces
	// the engine's historical last-writer-wins behavior exactly. Resolvers
	// must be deterministic or anti-entropy cannot converge replicas.
	Resolver versioning.Resolver
	// OnApply, when non-nil, observes every mutation that actually changed
	// the engine (last-writer-wins accepted it), after the shard's lock is
	// released. The callback runs on the applying goroutine and must not
	// call back into the engine's write path.
	OnApply func(key []byte, v wire.Value)
	// OnReplace is OnApply with the displaced version: old is the newest
	// value the engine held for key before this mutation (hadOld false for
	// a first write). The anti-entropy subsystem uses it to fold the
	// replaced row's digest out of — and the new row's digest into — the
	// affected Merkle leaf in place, instead of invalidating the whole
	// token arc. Same timing and restrictions as OnApply; when both hooks
	// are set, OnReplace runs first.
	OnReplace func(key []byte, old wire.Value, hadOld bool, v wire.Value)
}

// CommitLog receives mutations before they are applied.
type CommitLog interface {
	Append(key []byte, v wire.Value) error
}

// defaultShards picks the power of two at or above four times GOMAXPROCS:
// with exclusive per-shard locks, a stripe surplus drives the chance that
// two runnable goroutines collide on one stripe toward zero — measured at
// 8 workers, 4x stripes benchmark ~10-15% faster reads than 2x and ~25%
// faster than 1x, with flat write cost (a shard is ~128 B + one empty map
// until data arrives, so the surplus is nearly free).
func defaultShards() int {
	n := 4 * runtime.GOMAXPROCS(0)
	p := 1
	for p < n && p < maxShards {
		p <<= 1
	}
	return p
}

// NewEngine creates an empty engine.
func NewEngine(opts Options) *Engine {
	if opts.FlushThresholdBytes <= 0 {
		opts.FlushThresholdBytes = 4 << 20
	}
	if opts.MaxFlushedTables <= 0 {
		opts.MaxFlushedTables = 4
	}
	n := opts.Shards
	if n <= 0 {
		n = defaultShards()
	}
	if n > maxShards {
		n = maxShards
	}
	p := 1
	for p < n {
		p <<= 1
	}
	e := &Engine{
		shards:    make([]shard, p),
		mask:      uint64(p - 1),
		seed:      maphash.MakeSeed(),
		flushAt:   max(1, opts.FlushThresholdBytes/p),
		maxTables: opts.MaxFlushedTables,
		log:       opts.CommitLog,
		resolver:  opts.Resolver,
		onApply:   opts.OnApply,
		onReplace: opts.OnReplace,
	}
	for i := range e.shards {
		e.shards[i].memtable = make(map[string]*wire.Value)
	}
	return e
}

// shardOf routes a key to its stripe.
func (e *Engine) shardOf(key []byte) *shard {
	if e.mask == 0 {
		return &e.shards[0]
	}
	return &e.shards[maphash.Bytes(e.seed, key)&e.mask]
}

// Apply writes v under key if it wins the engine's version comparison
// against what is already held: causal (vector-clock) order when both
// versions carry clocks, the configured Resolver for concurrent siblings
// and clock-less values (last-writer-wins by default). It reports whether
// the value was applied.
//
// The hot path is allocation-free for keys already resident in the
// memtable: the stored value is updated in place under the shard lock, so a
// steady-state overwrite workload performs no per-operation allocation.
func (e *Engine) Apply(key []byte, v wire.Value) (bool, error) {
	if len(key) == 0 {
		return false, fmt.Errorf("storage: empty key")
	}
	if e.log != nil {
		if err := e.log.Append(key, v); err != nil {
			return false, fmt.Errorf("storage: commit log: %w", err)
		}
	}
	s := e.shardOf(key)
	var old wire.Value
	var hadOld bool
	s.mu.Lock()
	s.writes++
	if p, ok := s.memtable[string(key)]; ok {
		// Invariant: a memtable entry is the newest visible version.
		old, hadOld = *p, true
		take, conc := versioning.Decide(v, old, e.resolver)
		if conc {
			s.siblings++
		}
		if !take {
			s.mu.Unlock()
			return false, nil
		}
		s.memBytes += len(v.Data) - len(p.Data)
		*p = v
	} else {
		if tp := s.tableLookup(key); tp != nil {
			old, hadOld = *tp, true
			take, conc := versioning.Decide(v, old, e.resolver)
			if conc {
				s.siblings++
			}
			if !take {
				s.mu.Unlock()
				return false, nil
			}
		}
		k := string(key)
		vp := new(wire.Value)
		*vp = v
		s.memtable[k] = vp
		s.memBytes += len(v.Data) + len(k)
	}
	if s.memBytes >= e.flushAt {
		e.flushShard(s)
	}
	s.mu.Unlock()
	if e.onReplace != nil {
		e.onReplace(key, old, hadOld, v)
	}
	if e.onApply != nil {
		e.onApply(key, v)
	}
	return true, nil
}

// tableLookup returns the newest flushed version of key in s, newest table
// first (later tables shadow earlier ones), or nil. Caller holds s.mu.
func (s *shard) tableLookup(key []byte) *wire.Value {
	for i := len(s.tables) - 1; i >= 0; i-- {
		if p, ok := s.tables[i].vals[string(key)]; ok {
			return p
		}
	}
	return nil
}

// Get returns the newest value for key across the memtable and all flushed
// tables. ok is false when the key was never written (a tombstoned key
// returns ok=true with Value.Tombstone set, so replication can propagate
// deletes).
func (e *Engine) Get(key []byte) (wire.Value, bool) {
	s := e.shardOf(key)
	s.mu.Lock()
	s.reads++
	if p, ok := s.memtable[string(key)]; ok {
		v := *p
		s.mu.Unlock()
		return v, true
	}
	if p := s.tableLookup(key); p != nil {
		v := *p
		s.mu.Unlock()
		return v, true
	}
	s.mu.Unlock()
	return wire.Value{}, false
}

// Flush freezes every shard's current memtable into an immutable table.
// Each shard freezes independently — concurrent operations on other shards
// proceed while one shard flushes.
func (e *Engine) Flush() {
	for i := range e.shards {
		s := &e.shards[i]
		s.mu.Lock()
		e.flushShard(s)
		s.mu.Unlock()
	}
}

// flushShard freezes s's memtable. Caller holds s.mu.
func (e *Engine) flushShard(s *shard) {
	if len(s.memtable) == 0 {
		return
	}
	t := &table{vals: s.memtable, keys: make([]string, 0, len(s.memtable))}
	for k := range t.vals {
		t.keys = append(t.keys, k)
	}
	slices.Sort(t.keys)
	s.tables = append(s.tables, t)
	s.memtable = make(map[string]*wire.Value)
	s.memBytes = 0
	s.flushes++
	if len(s.tables) > e.maxTables {
		e.compactShard(s)
	}
}

// Compact merges each shard's flushed tables into one, dropping shadowed
// versions. Shards compact independently.
func (e *Engine) Compact() {
	for i := range e.shards {
		s := &e.shards[i]
		s.mu.Lock()
		e.compactShard(s)
		s.mu.Unlock()
	}
}

// compactShard merges s's tables by k-way merging their already-sorted key
// slices — no intermediate map rebuild, no re-sort — reusing the stored
// value boxes. Later tables shadow earlier ones, so the newest version of a
// key is taken from the highest-indexed table holding it. Caller holds s.mu.
//
// Tombstones are retained across compactions: peer replicas may still need
// them for read repair, and the simulator's working sets are small enough
// that GC-grace bookkeeping would add machinery without adding fidelity to
// the experiments.
func (e *Engine) compactShard(s *shard) {
	if len(s.tables) <= 1 {
		return
	}
	total := 0
	for _, t := range s.tables {
		total += len(t.keys)
	}
	merged := &table{keys: make([]string, 0, total), vals: make(map[string]*wire.Value, total)}
	idx := make([]int, len(s.tables))
	for {
		// Smallest current key across tables (table counts are tiny, a
		// linear min beats a heap).
		best := -1
		var bestK string
		for i, t := range s.tables {
			if idx[i] < len(t.keys) && (best == -1 || t.keys[idx[i]] < bestK) {
				best, bestK = i, t.keys[idx[i]]
			}
		}
		if best == -1 {
			break
		}
		// The newest version lives in the highest-indexed table holding the
		// key; advance every table past it.
		var vp *wire.Value
		for i := len(s.tables) - 1; i >= 0; i-- {
			t := s.tables[i]
			if idx[i] < len(t.keys) && t.keys[idx[i]] == bestK {
				if vp == nil {
					vp = t.vals[bestK]
				}
				idx[i]++
			}
		}
		merged.keys = append(merged.keys, bestK)
		merged.vals[bestK] = vp
	}
	s.tables = []*table{merged}
	s.compacted++
}

// kv is one scan result row.
type kv struct {
	k string
	v wire.Value
}

// Scan invokes fn over every live key/value in [start, end) in key order
// (nil bounds mean unbounded); fn returning false stops the scan.
// Tombstoned entries are skipped.
//
// Each shard contributes one sorted, deduplicated slice (its flushed tables
// already keep sorted keys; only the memtable snapshot is sorted per scan),
// and the shard slices k-way merge into the result. Shards are snapshotted
// one at a time under their read locks, so a scan is consistent per shard
// but not a point-in-time snapshot across shards — concurrent writers to
// other shards may or may not be observed, exactly like a range read over a
// striped store.
func (e *Engine) Scan(start, end []byte, fn func(key []byte, v wire.Value) bool) {
	e.scan(start, end, false, fn)
}

// ScanVersions is Scan including tombstoned entries: anti-entropy repair
// must exchange deletes the same way it exchanges writes, or a tombstone on
// one replica against live data on another would diverge forever.
func (e *Engine) ScanVersions(start, end []byte, fn func(key []byte, v wire.Value) bool) {
	e.scan(start, end, true, fn)
}

func (e *Engine) scan(start, end []byte, tombstones bool, fn func(key []byte, v wire.Value) bool) {
	parts := make([][]kv, 0, len(e.shards))
	for i := range e.shards {
		if part := e.shards[i].collect(start, end, tombstones); len(part) > 0 {
			parts = append(parts, part)
		}
	}
	// Merge the per-shard sorted runs via a min-heap of run heads: unlike
	// the in-shard merge (whose source count is bounded by maxTables+1),
	// the run count here grows with the stripe count, so a linear min would
	// cost O(shards) per output row. Keys never repeat across shards, so
	// this is a pure merge with no cross-part dedup; each part is non-empty.
	heap := make([]int, len(parts)) // heap of part indices, keyed by head key
	idx := make([]int, len(parts))  // per-part cursor
	head := func(p int) string { return parts[p][idx[p]].k }
	less := func(a, b int) bool { return head(heap[a]) < head(heap[b]) }
	for i := range heap {
		heap[i] = i
	}
	for i := len(parts)/2 - 1; i >= 0; i-- {
		siftDown(heap, i, less)
	}
	for len(heap) > 0 {
		p := heap[0]
		item := parts[p][idx[p]]
		idx[p]++
		if idx[p] == len(parts[p]) {
			heap[0] = heap[len(heap)-1]
			heap = heap[:len(heap)-1]
		}
		if len(heap) > 0 {
			siftDown(heap, 0, less)
		}
		if !fn([]byte(item.k), item.v) {
			return
		}
	}
}

// siftDown restores the min-heap property for the subtree rooted at i.
func siftDown(h []int, i int, less func(a, b int) bool) {
	for {
		small := i
		if l := 2*i + 1; l < len(h) && less(l, small) {
			small = l
		}
		if r := 2*i + 2; r < len(h) && less(r, small) {
			small = r
		}
		if small == i {
			return
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
}

// collect returns the shard's live (or all-version) rows in [start, end) in
// key order: a k-way merge over the flushed tables' sorted key slices plus
// one sorted snapshot of the memtable keys, resolved to the newest version
// under the shard's read lock.
func (s *shard) collect(start, end []byte, tombstones bool) []kv {
	s.mu.Lock()
	defer s.mu.Unlock()
	srcs := make([][]string, 0, len(s.tables)+1)
	if len(s.memtable) > 0 {
		mk := make([]string, 0, len(s.memtable))
		for k := range s.memtable {
			mk = append(mk, k)
		}
		slices.Sort(mk)
		srcs = append(srcs, mk)
	}
	for _, t := range s.tables {
		srcs = append(srcs, t.keys)
	}
	idx := make([]int, len(srcs))
	if start != nil {
		for i, src := range srcs {
			idx[i], _ = slices.BinarySearch(src, string(start))
		}
	}
	endKey := string(end)
	var out []kv
	for {
		best := -1
		var bestK string
		for i, src := range srcs {
			if idx[i] < len(src) && (best == -1 || src[idx[i]] < bestK) {
				best, bestK = i, src[idx[i]]
			}
		}
		if best == -1 {
			break
		}
		if end != nil && bestK >= endKey {
			break // merge order: every remaining key is out of bounds too
		}
		// Advance every source past this key (cross-source dedup).
		for i, src := range srcs {
			for idx[i] < len(src) && src[idx[i]] == bestK {
				idx[i]++
			}
		}
		var vp *wire.Value
		if p, ok := s.memtable[bestK]; ok {
			vp = p // memtable always holds the newest visible version
		} else {
			vp = s.tableLookup([]byte(bestK))
		}
		if vp != nil && (tombstones || !vp.Tombstone) {
			out = append(out, kv{bestK, *vp})
		}
	}
	return out
}

// Stats is a snapshot of engine counters. Sums aggregate across shards;
// FlushedTables is the total table count over all shards.
type Stats struct {
	Writes      uint64
	Reads       uint64
	Flushes     uint64
	Compactions uint64
	// Siblings counts applies where the incoming and held versions were
	// causally concurrent and the resolver had to arbitrate — the store's
	// conflict-rate gauge.
	Siblings      uint64
	MemtableKeys  int
	MemtableBytes int
	FlushedTables int
	LiveKeys      int
	Shards        int
}

// Stats returns a snapshot of the engine's counters, aggregated over
// shards. Each shard is snapshotted consistently under its lock; the
// aggregate is not a cross-shard point-in-time snapshot.
func (e *Engine) Stats() Stats {
	st := Stats{Shards: len(e.shards)}
	for i := range e.shards {
		s := &e.shards[i]
		s.mu.Lock()
		st.Writes += s.writes
		st.Reads += s.reads
		st.Flushes += s.flushes
		st.Compactions += s.compacted
		st.Siblings += s.siblings
		st.MemtableKeys += len(s.memtable)
		st.MemtableBytes += s.memBytes
		st.FlushedTables += len(s.tables)
		live := make(map[string]struct{}, len(s.memtable))
		for k := range s.memtable {
			live[k] = struct{}{}
		}
		for _, t := range s.tables {
			for _, k := range t.keys {
				live[k] = struct{}{}
			}
		}
		st.LiveKeys += len(live)
		s.mu.Unlock()
	}
	return st
}

package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"
)

// event is a scheduled callback in virtual time. seq breaks ties so that
// events scheduled earlier at the same instant run first, keeping the
// simulation deterministic.
type event struct {
	at       time.Time
	seq      uint64
	fn       func()
	canceled bool
	index    int // heap index, -1 when popped
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Sim is a single-threaded discrete-event simulator. It implements Runtime,
// so protocol actors written against sim.Runtime run unmodified under
// virtual time. Sim is not safe for concurrent use: all interaction must
// happen from the goroutine driving Run/Step (which is also the goroutine
// executing event callbacks).
type Sim struct {
	now    time.Time
	queue  eventHeap
	seq    uint64
	rng    *rand.Rand
	events uint64 // total events executed
}

// New creates a simulator whose clock starts at a fixed epoch and whose
// random streams derive from seed. The epoch is arbitrary but stable so that
// virtual timestamps are reproducible across runs.
func New(seed int64) *Sim {
	return &Sim{
		now: time.Date(2012, time.September, 24, 0, 0, 0, 0, time.UTC),
		rng: rand.New(rand.NewSource(seed)),
	}
}

// Now returns the current virtual time.
func (s *Sim) Now() time.Time { return s.now }

// Rand returns the simulator's deterministic random source. Callers needing
// independent streams should derive child RNGs via NewStream.
func (s *Sim) Rand() *rand.Rand { return s.rng }

// NewStream derives an independent deterministic random stream. Each call
// consumes one value from the parent stream, so creation order matters and
// must itself be deterministic.
func (s *Sim) NewStream() *rand.Rand {
	return rand.New(rand.NewSource(s.rng.Int63()))
}

// Events reports how many event callbacks have executed.
func (s *Sim) Events() uint64 { return s.events }

// After schedules fn at now+d. A negative d is treated as zero. The returned
// cancel function prevents the callback from running if it has not yet fired.
func (s *Sim) After(d time.Duration, fn func()) (cancel func()) {
	if d < 0 {
		d = 0
	}
	return s.At(s.now.Add(d), fn)
}

// At schedules fn at the absolute virtual time t (clamped to now).
func (s *Sim) At(t time.Time, fn func()) (cancel func()) {
	if t.Before(s.now) {
		t = s.now
	}
	e := &event{at: t, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.queue, e)
	return func() { e.canceled = true }
}

// Post schedules fn to run at the current instant, after already-queued
// events for this instant.
func (s *Sim) Post(fn func()) { s.After(0, fn) }

// Step executes the next event, advancing the clock. It reports false when
// the queue is empty.
func (s *Sim) Step() bool {
	for s.queue.Len() > 0 {
		e := heap.Pop(&s.queue).(*event)
		if e.canceled {
			continue
		}
		if e.at.After(s.now) {
			s.now = e.at
		}
		s.events++
		e.fn()
		return true
	}
	return false
}

// Run executes events until the queue empties or the virtual clock passes
// deadline. Events scheduled exactly at the deadline still execute. It
// returns the number of events executed during this call.
func (s *Sim) Run(deadline time.Time) uint64 {
	start := s.events
	for s.queue.Len() > 0 {
		next := s.peek()
		if next.After(deadline) {
			break
		}
		s.Step()
	}
	if s.now.Before(deadline) {
		s.now = deadline
	}
	return s.events - start
}

// RunFor advances the simulation by d of virtual time.
func (s *Sim) RunFor(d time.Duration) uint64 { return s.Run(s.now.Add(d)) }

// RunUntilIdle executes events until none remain, with a safety cap on the
// number of events to guard against runaway feedback loops in tests.
func (s *Sim) RunUntilIdle(maxEvents uint64) error {
	start := s.events
	for s.queue.Len() > 0 {
		if s.events-start >= maxEvents {
			return fmt.Errorf("sim: exceeded %d events without going idle", maxEvents)
		}
		s.Step()
	}
	return nil
}

func (s *Sim) peek() time.Time {
	// Skip leading canceled events so Run's deadline check sees the next
	// live event.
	for s.queue.Len() > 0 && s.queue[0].canceled {
		heap.Pop(&s.queue)
	}
	if s.queue.Len() == 0 {
		return s.now
	}
	return s.queue[0].at
}

// Pending reports the number of queued (possibly canceled) events.
func (s *Sim) Pending() int { return s.queue.Len() }

// Ticker repeatedly invokes fn every interval until the returned stop
// function is called. The first invocation happens after one full interval.
func (s *Sim) Ticker(interval time.Duration, fn func()) (stop func()) {
	if interval <= 0 {
		panic("sim: non-positive ticker interval")
	}
	return Every(s, func() time.Duration { return interval }, fn)
}

// Every repeatedly invokes fn on rt, waiting next() before each
// invocation. It is the variable-interval generalization of Ticker and
// works on any Runtime: stochastic arrival processes (Poisson open-loop
// load, jittered maintenance cadences) supply a next that samples an
// inter-arrival distribution. Non-positive gaps are scheduled immediately.
// The returned stop function halts the loop; it is safe to call from
// within fn, and — because RealRuntime callbacks run on a mailbox
// goroutine — from any other goroutine.
func Every(rt Runtime, next func() time.Duration, fn func()) (stop func()) {
	var stopped atomic.Bool
	var schedule func()
	schedule = func() {
		rt.After(next(), func() {
			if stopped.Load() {
				return
			}
			fn()
			if !stopped.Load() {
				schedule()
			}
		})
	}
	schedule()
	return func() { stopped.Store(true) }
}

var _ Runtime = (*Sim)(nil)
var _ Runtime = (*RealRuntime)(nil)

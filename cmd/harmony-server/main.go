// Command harmony-server runs one storage node of the replicated key-value
// store over TCP. A cluster is a set of these processes sharing the same
// -cluster description; any node can coordinate client operations.
//
// Example three-node local cluster:
//
//	harmony-server -id n1 -listen 127.0.0.1:7001 -rf 3 \
//	  -cluster n1=127.0.0.1:7001/dc1/r1,n2=127.0.0.1:7002/dc1/r1,n3=127.0.0.1:7003/dc1/r2 &
//	harmony-server -id n2 -listen 127.0.0.1:7002 -rf 3 -cluster ... &
//	harmony-server -id n3 -listen 127.0.0.1:7003 -rf 3 -cluster ... &
//
// Then read and write with harmony-client.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"harmony/internal/cluster"
	"harmony/internal/gossip"
	"harmony/internal/ring"
	"harmony/internal/sim"
	"harmony/internal/storage"
	"harmony/internal/transport"
	"harmony/internal/wire"
)

// member is one parsed -cluster entry.
type member struct {
	id   ring.NodeID
	addr string
	dc   string
	rack string
}

func parseCluster(spec string) ([]member, error) {
	var out []member
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		eq := strings.SplitN(entry, "=", 2)
		if len(eq) != 2 {
			return nil, fmt.Errorf("entry %q: want id=addr/dc/rack", entry)
		}
		parts := strings.Split(eq[1], "/")
		if len(parts) != 3 {
			return nil, fmt.Errorf("entry %q: want id=addr/dc/rack", entry)
		}
		out = append(out, member{
			id:   ring.NodeID(eq[0]),
			addr: parts[0],
			dc:   parts[1],
			rack: parts[2],
		})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty cluster description")
	}
	return out, nil
}

// lateHandler lets the TCP endpoint start before the node exists (the node
// needs the endpoint as its Sender). Messages arriving before binding are
// dropped like network loss; protocol timeouts cover the window.
type lateHandler struct {
	mu sync.RWMutex
	h  transport.Handler
}

func (l *lateHandler) bind(h transport.Handler) {
	l.mu.Lock()
	l.h = h
	l.mu.Unlock()
}

func (l *lateHandler) Deliver(from ring.NodeID, m wire.Message) {
	l.mu.RLock()
	h := l.h
	l.mu.RUnlock()
	if h != nil {
		h.Deliver(from, m)
	}
}

func main() {
	var (
		id          = flag.String("id", "", "this node's id (must appear in -cluster)")
		listen      = flag.String("listen", ":7000", "listen address")
		clusterSpec = flag.String("cluster", "", "comma list of id=addr/dc/rack")
		rf          = flag.Int("rf", 3, "replication factor")
		vnodes      = flag.Int("vnodes", 16, "virtual nodes per member")
		readRepair  = flag.Float64("read-repair-chance", 0.1, "probability a read fans out for repair")
		hints       = flag.Bool("hinted-handoff", true, "queue hints for down replicas")
		commitLog   = flag.String("commitlog", "", "path to a commit log file (durability); empty disables")
		gossipEvery = flag.Duration("gossip-interval", time.Second, "gossip round interval")
	)
	flag.Parse()
	if *id == "" || *clusterSpec == "" {
		fmt.Fprintln(os.Stderr, "harmony-server: -id and -cluster are required")
		flag.Usage()
		os.Exit(2)
	}
	members, err := parseCluster(*clusterSpec)
	if err != nil {
		log.Fatalf("harmony-server: -cluster: %v", err)
	}
	var infos []ring.NodeInfo
	peers := map[ring.NodeID]string{}
	var peerIDs []ring.NodeID
	found := false
	for _, m := range members {
		infos = append(infos, ring.NodeInfo{ID: m.id, DC: m.dc, Rack: m.rack})
		peers[m.id] = m.addr
		peerIDs = append(peerIDs, m.id)
		if m.id == ring.NodeID(*id) {
			found = true
		}
	}
	if !found {
		log.Fatalf("harmony-server: id %q not present in -cluster", *id)
	}
	topo, err := ring.NewTopology(infos)
	if err != nil {
		log.Fatalf("harmony-server: topology: %v", err)
	}
	rng, err := ring.Build(topo, *vnodes)
	if err != nil {
		log.Fatalf("harmony-server: ring: %v", err)
	}

	rt := sim.NewRealRuntime()
	defer rt.Stop()

	var engineOpts storage.Options
	if *commitLog != "" {
		cl, err := storage.OpenFileCommitLog(*commitLog)
		if err != nil {
			log.Fatalf("harmony-server: commit log: %v", err)
		}
		defer cl.Close()
		engineOpts.CommitLog = cl
	}

	late := &lateHandler{}
	tcp, err := transport.NewTCPNode(transport.TCPConfig{
		ID:     ring.NodeID(*id),
		Listen: *listen,
		Peers:  peers,
	}, rt, late)
	if err != nil {
		log.Fatalf("harmony-server: %v", err)
	}
	defer tcp.Close()

	g := gossip.New(gossip.Config{
		ID:       ring.NodeID(*id),
		Peers:    peerIDs,
		Interval: *gossipEvery,
	}, rt, tcp)

	node := cluster.New(cluster.Config{
		ID:               ring.NodeID(*id),
		Ring:             rng,
		Strategy:         ring.NetworkTopologyStrategy{RF: *rf},
		ReadRepairChance: *readRepair,
		HintedHandoff:    *hints,
		Engine:           engineOpts,
		Alive:            g.Alive,
	}, rt, tcp)

	// Replay the durability log into the engine before serving traffic.
	if *commitLog != "" {
		replayed := 0
		if err := storage.Replay(*commitLog, func(key []byte, v wire.Value) error {
			_, err := node.Engine().Apply(key, v)
			replayed++
			return err
		}); err != nil {
			log.Fatalf("harmony-server: replay: %v", err)
		}
		if replayed > 0 {
			log.Printf("harmony-server %s: replayed %d commit-log records", *id, replayed)
		}
	}

	late.bind(gossip.Mux{Gossip: g, Rest: node})
	node.Start()
	g.Start()
	log.Printf("harmony-server %s: serving on %s (rf=%d, %d members)", *id, tcp.Addr(), *rf, len(members))

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	<-sigs
	log.Printf("harmony-server %s: shutting down", *id)
	g.Stop()
	node.Stop()
}
